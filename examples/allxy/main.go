// AllXY: the paper's Section 8 validation experiment, reproduced on the
// simulated stack (Figure 9). Runs the 21 gate-pair sequence (each pair
// twice), averages over N rounds, rescales by the in-experiment
// calibration points, and prints the staircase with its deviation.
//
// Flags allow injecting the classic calibration errors to see their
// AllXY signatures:
//
//	go run ./examples/allxy                     # calibrated
//	go run ./examples/allxy -amp-error -0.1     # 10% under-rotation
//	go run ./examples/allxy -detuning 200e3     # 200 kHz off resonance
package main

import (
	"flag"
	"fmt"
	"log"

	"quma/internal/core"
	"quma/internal/expt"
	"quma/internal/qphys"
)

func main() {
	var (
		rounds   = flag.Int("rounds", 800, "averaging rounds N (paper: 25600)")
		ampError = flag.Float64("amp-error", 0, "fractional pulse amplitude error ε")
		detuning = flag.Float64("detuning", 0, "drive-qubit detuning in Hz")
		seed     = flag.Int64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.AmplitudeError = *ampError
	qp := qphys.DefaultQubitParams()
	qp.FreqDetuningHz = *detuning
	cfg.Qubit = []qphys.QubitParams{qp}

	params := expt.DefaultAllXYParams()
	params.Rounds = *rounds

	res, err := expt.RunAllXY(cfg, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Staircase())
	fmt.Printf("\npulses played: %d  |  lookup-table memory: %d bytes (vs 2520 for whole waveforms)\n",
		res.PulsesPlayed, res.MemoryBytes)
	if *ampError == 0 && *detuning == 0 {
		fmt.Println("calibrated run: expect a clean 0 / 0.5 / 1 staircase (paper: deviation 0.012)")
	} else {
		fmt.Println("miscalibrated run: compare the signature against the calibrated staircase")
	}
}
