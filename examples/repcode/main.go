// Repetition code: the error-correction workload that motivates QuMA's
// fast measurement discrimination and feedback (the paper cites the
// repetition-code demonstrations of Kelly et al. and Ristè et al. as the
// architecture's target applications).
//
// Three data qubits encode logical |1⟩; two ancillas extract the bit-flip
// syndromes through microcoded CNOTs; the controller branches on the
// measured syndromes and applies the correction pulse — all inside one
// program on the simulated QuMA box. The run compares the logical error
// of a bare qubit, the code without feedback, and the code with feedback,
// as the memory time grows.
package main

import (
	"flag"
	"fmt"
	"log"

	"quma/internal/core"
	"quma/internal/expt"
)

func main() {
	var (
		rounds  = flag.Int("rounds", 300, "shots per variant per memory time")
		seed    = flag.Int64("seed", 3, "PRNG seed")
		backend = flag.String("backend", "density", "state backend for the memory sweep (density or trajectory)")
	)
	flag.Parse()

	// First: the deterministic syndrome table (noiseless injected errors).
	fmt.Println("syndrome decoding table (injected X errors, noiseless):")
	for _, inject := range []string{"", "q0", "q1", "q2"} {
		out, err := expt.RunRepCodeInjection(inject)
		if err != nil {
			log.Fatal(err)
		}
		label := inject
		if label == "" {
			label = "none"
		}
		fmt.Printf("  error %-5s -> syndrome (%d,%d), corrected data %v\n",
			label, out.S0, out.S1, out.Data)
	}

	// Then: the memory experiment at increasing wait times.
	fmt.Println("\nlogical memory error vs memory time:")
	fmt.Printf("%-10s %-10s %-10s %-12s %s\n", "τ (µs)", "phys p", "bare", "no-feedback", "corrected")
	for _, waitCycles := range []int{400, 800, 1600, 3200} {
		cfg := core.DefaultConfig()
		cfg.Seed = *seed
		cfg.Backend = core.Backend(*backend)
		p := expt.DefaultRepCodeParams()
		p.Rounds = *rounds
		p.WaitCycles = waitCycles
		res, err := expt.RunRepCode(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.1f %-10.3f %-10.3f %-12.3f %.3f\n",
			float64(waitCycles)*5e-3, res.PhysicalP, res.Unprotected, res.Uncorrected, res.Protected)
	}
	fmt.Println("\nexpected shape: corrected < bare for small p (≈3p² vs p)")

	// Finally: the distance-5 code (9 qubits — only the trajectory
	// backend can hold the register).
	fmt.Println("\ndistance-5 code (9 qubits, trajectory backend):")
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Backend = core.BackendTrajectory
	p := expt.DefaultRepCodeParams()
	p.DataQubits = 5
	p.Rounds = *rounds
	p.WaitCycles = 800
	res, err := expt.RunRepCode(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
}
