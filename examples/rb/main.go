// Randomized benchmarking (paper Section 8 mentions RB among the
// validation experiments): random Clifford sequences of increasing
// length, each closed by the recovery Clifford, with the ground-state
// survival fitted to F(m) = A·p^m + B.
package main

import (
	"flag"
	"fmt"
	"log"

	"quma/internal/core"
	"quma/internal/expt"
)

func main() {
	var (
		trials   = flag.Int("trials", 6, "random sequences per length")
		rounds   = flag.Int("rounds", 100, "shots per sequence")
		ampError = flag.Float64("amp-error", 0, "pulse amplitude miscalibration ε")
		seed     = flag.Int64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.AmplitudeError = *ampError

	p := expt.DefaultRBParams()
	p.Lengths = []int{1, 2, 4, 8, 16, 32, 64}
	p.Trials = *trials
	p.Rounds = *rounds
	p.Seed = *seed

	res, err := expt.RunRB(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Printf("avg pulses per Clifford: %.2f\n", res.AvgPulsesPerClifford)
	fmt.Println("\nper-trial survivals:")
	for i, m := range p.Lengths {
		fmt.Printf("  m=%-4d %v\n", m, res.PerTrial[i])
	}
}
