// Feedback / active reset: the capability the paper's fast hardware
// measurement discrimination enables (Section 5.1.2) and its future work
// targets — branching on a measurement result within the qubit's
// coherence time.
//
// The program prepares a superposition, measures, and applies a
// conditional X180 only when the result was |1⟩; a verification
// measurement then shows the qubit reset to |0⟩ far more often than the
// unconditioned 50 %.
package main

import (
	"flag"
	"fmt"
	"log"

	"quma/internal/core"
)

func main() {
	var (
		shots = flag.Int("shots", 2000, "number of reset cycles")
		seed  = flag.Int64("seed", 7, "PRNG seed")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	err = m.RunAssembly(fmt.Sprintf(`
mov r15, 40000
mov r1, 0
mov r2, %d
mov r9, 0           # |1> count on first measurement
mov r10, 0          # |1> count on verification measurement
mov r6, 0
Loop:
QNopReg r15
Pulse {q0}, X90     # 50/50 superposition
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
Wait 340            # integration window + MDU latency
beq r7, r6, Verify  # measured |0>: nothing to fix
Pulse {q0}, X180    # measured |1>: flip back to ground
Wait 4
Verify:
MPG {q0}, 300
MD {q0}, r8
add r10, r10, r8
addi r1, r1, 1
bne r1, r2, Loop
halt
`, *shots))
	if err != nil {
		log.Fatal(err)
	}

	before := float64(m.Controller.Regs[9]) / float64(*shots)
	after := float64(m.Controller.Regs[10]) / float64(*shots)
	fmt.Printf("shots: %d\n", *shots)
	fmt.Printf("P(|1>) before feedback: %.3f (superposition: expect ≈ 0.5)\n", before)
	fmt.Printf("P(|1>) after active reset: %.3f (expect ≈ readout error + T1 decay during verify)\n", after)
	fmt.Printf("feedback latency budget: measurement %d cycles + discrimination %d cycles ≪ T1\n",
		cfg.Readout.IntegrationSamples, int(cfg.Readout.DiscriminationLatency))
}
