// CNOT via microcode (the paper's Algorithm 2): the technology-
// independent CNOT instruction is emulated by the physical microcode
// unit as Ym90(target) · CZ · Y90(target), executed through the full
// codeword/queue pipeline on a two-qubit simulated chip.
//
// The example prints the truth table obtained by preparing each
// computational basis state, then builds a Bell state from an OpenQL
// description to show the compiler path.
package main

import (
	"fmt"
	"log"

	"quma/internal/core"
	"quma/internal/openql"
	"quma/internal/qphys"
)

func main() {
	fmt.Println("CNOT truth table (control q0, target q1), via Algorithm 2 microprogram:")
	for _, in := range []struct {
		label string
		prep  string
	}{
		{"|00>", ""},
		{"|01>", "Pulse {q1}, X180\nWait 4\n"},
		{"|10>", "Pulse {q0}, X180\nWait 4\n"},
		{"|11>", "Pulse {q0}, X180\nWait 4\nPulse {q1}, X180\nWait 4\n"},
	} {
		cfg := core.DefaultConfig()
		cfg.NumQubits = 2
		cfg.Qubit = []qphys.QubitParams{{}, {}} // noiseless for a crisp table
		m, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.RunAssembly("Wait 8\n" + in.prep + "Apply2 CNOT, q1, q0\nhalt"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> P(q0=1)=%.2f P(q1=1)=%.2f\n",
			in.label, m.State.ProbExcited(0), m.State.ProbExcited(1))
	}

	fmt.Println("\nBell state from an OpenQL program (H + CNOT):")
	p := openql.NewProgram("bell", 2)
	p.InitCycles = 0
	p.Add(openql.NewKernel("bell").Wait(8).H(0).CNOT(0, 1))
	src, err := p.CompileText()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled assembly:")
	fmt.Println(src)

	cfg := core.DefaultConfig()
	cfg.NumQubits = 2
	cfg.Qubit = []qphys.QubitParams{{}, {}}
	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.RunAssembly(src); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("marginals: P(q0=1)=%.2f P(q1=1)=%.2f, purity %.3f (entangled pure state)\n",
		m.State.ProbExcited(0), m.State.ProbExcited(1), m.State.Purity())
}
