// Quickstart: build a simulated QuMA control box, run a tiny QuMIS
// program (π/2 pulse, measure, repeat), and read back the results — the
// smallest end-to-end tour of the stack.
package main

import (
	"fmt"
	"log"

	"quma/internal/core"
)

func main() {
	// A one-qubit machine with the paper's defaults: 30 µs T1, 20 µs T2,
	// -50 MHz single-sideband modulation, calibrated Table 1 pulses in
	// the CTPG lookup table.
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The program is the combined classical + QuMIS assembly of the
	// paper's prototype: classical registers drive the averaging loop,
	// QuMIS instructions (Pulse/Wait/MPG/MD) drive the qubit.
	err = m.RunAssembly(`
mov r15, 40000     # 200 µs initialization (several T1)
mov r1, 0          # loop counter
mov r2, 1000       # shots
mov r9, 0          # |1> counter
Loop:
QNopReg r15        # init by waiting
Pulse {q0}, X90    # π/2 rotation: 50/50 superposition
Wait 4
MPG {q0}, 300      # 1.5 µs measurement pulse
MD {q0}, r7        # discriminate into r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("executed %d instructions, played %d pulses, %d measurements\n",
		m.Controller.Steps, m.PulsesPlayed, m.Measurements)
	fmt.Printf("|1> outcomes: %d / 1000 (expect ≈ 500 for a π/2 pulse)\n", m.Controller.Regs[9])
	fmt.Printf("CTPG lookup-table memory: %d bytes for 7 calibrated pulses\n", m.MemoryFootprintBytes())
}
