// T1 / T2 Ramsey / T2 Echo: the coherence-time experiments the paper
// lists among its validation runs. Each is a delay sweep compiled to one
// program whose data-collection indices cover the sweep points; the
// analysis fits the standard models and compares against the configured
// simulator parameters.
package main

import (
	"flag"
	"fmt"
	"log"

	"quma/internal/core"
	"quma/internal/expt"
	"quma/internal/qphys"
)

func main() {
	var (
		rounds   = flag.Int("rounds", 300, "averaging rounds per delay point")
		detuning = flag.Float64("detuning", 100e3, "Ramsey artificial detuning in Hz")
		seed     = flag.Int64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	qp := qphys.DefaultQubitParams()
	fmt.Printf("simulated qubit: T1 = %.0f µs, T2 = %.0f µs\n\n", qp.T1*1e6, qp.T2*1e6)

	// ---- T1
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	p := expt.DefaultSweepParams()
	p.Rounds = *rounds
	t1, err := expt.RunT1(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T1 sweep (%d points): fitted T1 = %.1f µs\n", len(t1.DelaysSec), t1.Fit.Tau*1e6)
	printCurve(t1.DelaysSec, t1.Excited)

	// ---- Ramsey with artificial detuning
	cfg = core.DefaultConfig()
	cfg.Seed = *seed
	qpd := qp
	qpd.FreqDetuningHz = *detuning
	cfg.Qubit = []qphys.QubitParams{qpd}
	pr := expt.DefaultSweepParams()
	pr.Rounds = *rounds
	pr.DelaysCycles = nil
	for i := 0; i < 40; i++ {
		pr.DelaysCycles = append(pr.DelaysCycles, i*200) // 1 µs steps
	}
	ram, err := expt.RunRamsey(cfg, pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRamsey: fringe %.1f kHz (set %.1f kHz), T2* = %.1f µs\n",
		ram.Fit.Freq/1e3, *detuning/1e3, ram.Fit.Tau*1e6)
	printCurve(ram.DelaysSec, ram.Excited)

	// ---- Echo refocuses the same detuning
	cfg = core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Qubit = []qphys.QubitParams{qpd}
	pe := expt.DefaultSweepParams()
	pe.Rounds = *rounds
	echo, err := expt.RunEcho(cfg, pe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEcho: tau = %.1f µs, floor %.2f (fringes refocused by the π pulse)\n",
		echo.Fit.Tau*1e6, echo.Fit.C)
	printCurve(echo.DelaysSec, echo.Excited)
}

// printCurve renders a crude ASCII plot: one row per point.
func printCurve(xs, ys []float64) {
	for i := range xs {
		bar := int(ys[i]*40 + 0.5)
		if bar < 0 {
			bar = 0
		}
		if bar > 40 {
			bar = 40
		}
		fmt.Printf("  %6.1f µs  %6.3f  |%s\n", xs[i]*1e6, ys[i], repeat('#', bar))
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
