package quma

// Golden end-to-end tests for the examples: each example runs as a real
// `go run` subprocess with pinned seeds and its stdout is compared
// byte-for-byte against the committed snapshot under testdata/golden/.
// User-facing behaviour therefore cannot drift silently — any change to
// program output, float formatting, experiment defaults, or the
// simulator physics shows up as a golden diff that must be reviewed and
// regenerated deliberately:
//
//	go test -run TestExamplesGolden -update .
//
// The outputs are deterministic by the repo's standing contracts: fixed
// seeds fix every PRNG stream, and sweep results are independent of
// worker count and replay mode.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden outputs under testdata/golden/ instead of diffing against them")

// goldenExamples pins each example's invocation. Flags keep the runs
// small; every example retains its default seed so the snapshot also
// guards the documented outputs users first see.
var goldenExamples = []struct {
	name string
	args []string
}{
	{"quickstart", nil},
	{"cnot", nil},
	{"feedback", []string{"-shots", "500"}},
	{"rb", []string{"-trials", "3", "-rounds", "60"}},
	{"repcode", []string{"-rounds", "150"}},
}

func TestExamplesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run as subprocesses; skipped in -short")
	}
	for _, ex := range goldenExamples {
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", "./examples/" + ex.name}, ex.args...)
			cmd := exec.Command("go", args...)
			cmd.Dir = "."
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go %v: %v\nstderr:\n%s", args, err, stderr.Bytes())
			}
			path := filepath.Join("testdata", "golden", ex.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test -run TestExamplesGolden -update .` to create the snapshot)", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Fatalf("output drifted from %s:\n%s", path, diffLines(want, stdout.Bytes()))
			}
		})
	}
}

// diffLines renders a minimal first-divergence report: full diffs of
// multi-screen outputs drown the signal.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			return fmt.Sprintf("first divergence at line %d:\n  golden: %q\n  got:    %q", i+1, wl, gl)
		}
	}
	return "outputs differ only in length"
}
