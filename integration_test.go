// End-to-end integration scenarios: each runs a complete program through
// assembler → execution controller → microcode → QMB → timing controller
// → µop unit → CTPG → simulated chip → readout, and asserts a physical
// outcome — the way a downstream user exercises the stack.
package quma

import (
	"math"
	"strings"
	"testing"

	"quma/internal/core"
	"quma/internal/openql"
	"quma/internal/qphys"
)

func noiselessMachine(t *testing.T, qubits int) *core.Machine {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.NumQubits = qubits
	cfg.Qubit = make([]qphys.QubitParams, qubits)
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEndToEndScenarios(t *testing.T) {
	cases := []struct {
		name   string
		qubits int
		src    string
		// wantP1 is each qubit's expected P(|1⟩) after the program.
		wantP1 []float64
	}{
		{
			name:   "pi pulse",
			qubits: 1,
			src:    "Wait 8\nPulse {q0}, X180\nWait 4\nhalt",
			wantP1: []float64{1},
		},
		{
			name:   "four quarter turns",
			qubits: 1,
			src: `Wait 8
Pulse {q0}, X90
Wait 4
Pulse {q0}, X90
Wait 4
Pulse {q0}, X90
Wait 4
Pulse {q0}, X90
Wait 4
halt`,
			wantP1: []float64{0},
		},
		{
			name:   "plus minus cancel",
			qubits: 1,
			src:    "Wait 8\nPulse {q0}, Y90\nWait 4\nPulse {q0}, Ym90\nWait 4\nhalt",
			wantP1: []float64{0},
		},
		{
			name:   "hadamard twice",
			qubits: 1,
			src:    "Wait 8\nApply H, q0\nApply H, q0\nhalt",
			wantP1: []float64{0},
		},
		{
			name:   "microcoded z echo",
			qubits: 1,
			src:    "Wait 8\nApply Y90, q0\nApply Z, q0\nApply Ym90, q0\nhalt",
			wantP1: []float64{1},
		},
		{
			name:   "cz phase kickback",
			qubits: 2,
			// |1⟩⊗|+⟩ —CZ→ |1⟩⊗|−⟩; Ym90 maps |−⟩→|1⟩.
			src: `Wait 8
Pulse {q0}, X180
Wait 4
Pulse {q1}, Y90
Wait 4
Pulse {q0, q1}, CZ
Wait 8
Pulse {q1}, Ym90
Wait 4
halt`,
			wantP1: []float64{1, 1},
		},
		{
			name:   "ghz state marginals",
			qubits: 3,
			src: `Wait 8
Apply H, q0
Apply2 CNOT, q1, q0
Apply2 CNOT, q2, q1
halt`,
			wantP1: []float64{0.5, 0.5, 0.5},
		},
		{
			name:   "swap via three cnots",
			qubits: 2,
			src: `Wait 8
Pulse {q0}, X180
Wait 4
Apply2 CNOT, q1, q0
Apply2 CNOT, q0, q1
Apply2 CNOT, q1, q0
halt`,
			wantP1: []float64{0, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := noiselessMachine(t, tc.qubits)
			if err := m.RunAssembly(tc.src); err != nil {
				t.Fatal(err)
			}
			for q, want := range tc.wantP1 {
				if got := m.State.ProbExcited(q); math.Abs(got-want) > 2e-3 {
					t.Errorf("q%d: P(1) = %v, want %v", q, got, want)
				}
			}
		})
	}
}

func TestEndToEndGHZIsEntangled(t *testing.T) {
	m := noiselessMachine(t, 3)
	err := m.RunAssembly(`
Wait 8
Apply H, q0
Apply2 CNOT, q1, q0
Apply2 CNOT, q2, q1
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if pur := m.State.Purity(); math.Abs(pur-1) > 1e-3 {
		t.Errorf("GHZ global purity = %v, want 1", pur)
	}
	r := m.State.ReducedQubit(1)
	if pur := real(r.Mul(r).Trace()); math.Abs(pur-0.5) > 1e-3 {
		t.Errorf("GHZ marginal purity = %v, want 0.5", pur)
	}
}

func TestEndToEndGHZMeasurementCorrelations(t *testing.T) {
	// Measuring all three GHZ qubits yields 000 or 111 only.
	cfg := core.DefaultConfig()
	cfg.NumQubits = 3
	cfg.Qubit = make([]qphys.QubitParams, 3)
	cfg.Readout.NoiseSigma = 0
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
mov r1, 0
mov r2, 50
mov r13, 0   # mismatch counter
Loop:
Wait 8
Apply H, q0
Apply2 CNOT, q1, q0
Apply2 CNOT, q2, q1
Measure q0, r7
Measure q1, r8
Measure q2, r9
Wait 340
xor r10, r7, r8
xor r11, r8, r9
or  r12, r10, r11
add r13, r13, r12
# active reset for the next round (deterministic: flip if read 1)
mov r6, 0
beq r7, r6, R0
Pulse {q0}, X180
Wait 4
R0:
beq r8, r6, R1
Pulse {q1}, X180
Wait 4
R1:
beq r9, r6, R2
Pulse {q2}, X180
Wait 4
R2:
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Controller.Regs[13] != 0 {
		t.Errorf("GHZ produced %d mismatched readouts in 50 shots", m.Controller.Regs[13])
	}
}

func TestEndToEndOpenQLPipeline(t *testing.T) {
	// High-level description → compiler → machine, asserting through the
	// same physics.
	p := openql.NewProgram("chain", 2)
	p.InitCycles = 0
	p.Add(openql.NewKernel("k").
		Wait(8).
		X(0).
		CNOT(0, 1). // q1 flips because q0 is |1⟩
		Z(1).       // phase only: populations unchanged
		Measure(1, 7))
	src, err := p.CompileText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "Apply2 CNOT, q1, q0") {
		t.Fatalf("unexpected compilation:\n%s", src)
	}
	cfg := core.DefaultConfig()
	cfg.NumQubits = 2
	cfg.Qubit = make([]qphys.QubitParams, 2)
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunAssembly(src); err != nil {
		t.Fatal(err)
	}
	if m.Controller.Regs[7] != 1 {
		t.Errorf("measured r7 = %d, want 1", m.Controller.Regs[7])
	}
}

func TestEndToEndDeterministicTimelineAccounting(t *testing.T) {
	// The machine's pulse count, measurement count, and digital-output
	// accounting all agree with the program structure.
	m := noiselessMachine(t, 1)
	err := m.RunAssembly(`
mov r1, 0
mov r2, 7
Loop:
Wait 400
Pulse {q0}, X180
Wait 4
Pulse {q0}, X180
Wait 4
MPG {q0}, 300
MD {q0}, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.PulsesPlayed != 14 {
		t.Errorf("pulses = %d, want 14", m.PulsesPlayed)
	}
	if m.Measurements != 7 {
		t.Errorf("measurements = %d, want 7", m.Measurements)
	}
	if got := m.Digital.TotalHighCycles(0); got != 7*300 {
		t.Errorf("gate cycles = %d, want 2100", got)
	}
	if len(m.Digital.Intervals(0)) != 7 {
		t.Errorf("gate intervals = %d, want 7", len(m.Digital.Intervals(0)))
	}
}
