package main

// Output-shape tests for the artifact printers: each fast printer must
// succeed and produce its table header plus the expected number of body
// rows. These are deliberately shape tests, not golden tests — the
// artifact values are pinned elsewhere (package tests, examples
// goldens); here the contract is that every wired-up flag still renders
// its table.

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected into a buffer.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("printer failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

func TestPrintTable1Shape(t *testing.T) {
	out := capture(t, printTable1)
	if !strings.Contains(out, "codeword") || !strings.Contains(out, "rotation") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, name := range []string{"X180", "X90", "Xm90", "Y180", "Y90", "Ym90"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing pulse row %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "total lookup-table memory: 420 bytes") {
		t.Errorf("LUT footprint drifted from the paper's 420 bytes:\n%s", out)
	}
}

func TestPrintMemoryShape(t *testing.T) {
	out := capture(t, printMemory)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 3 combination counts × 2 register sizes + footnote.
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "QuMA bytes") {
		t.Errorf("missing header:\n%s", out)
	}
	for _, l := range lines[1:7] {
		if !strings.Contains(l, "x") {
			t.Errorf("body row %q missing ratio column", l)
		}
	}
}

func TestPrintQueuesShape(t *testing.T) {
	out := capture(t, printQueues)
	if len(strings.TrimSpace(out)) == 0 {
		t.Fatal("printQueues produced no output")
	}
	for _, q := range []string{"Timing Queue", "Pulse Queue", "MPG Queue", "MD Queue"} {
		if !strings.Contains(out, q) {
			t.Errorf("missing queue column %s:\n%s", q, out)
		}
	}
}

func TestPrintTimingShape(t *testing.T) {
	out := capture(t, printTiming)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("timing table too short:\n%s", out)
	}
	if !strings.Contains(lines[0], "delay (ns)") {
		t.Errorf("missing header:\n%s", out)
	}
}
