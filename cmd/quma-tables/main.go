// Command quma-tables regenerates every table and figure of the paper's
// evaluation from the simulated QuMA stack. Each flag selects one
// artifact; -all prints everything. See EXPERIMENTS.md for the mapping.
//
// Usage:
//
//	quma-tables -all
//	quma-tables -fig9 -rounds 25600      # full-size AllXY
//	quma-tables -table1 -table5 -queues -memory -timing -timeline
//	quma-tables -t1 -ramsey -echo -rb -aps2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"quma/internal/aps2"
	"quma/internal/asm"
	"quma/internal/awg"
	"quma/internal/clock"
	"quma/internal/core"
	"quma/internal/exec"
	"quma/internal/expt"
	"quma/internal/isa"
	"quma/internal/microcode"
	"quma/internal/pulse"
	"quma/internal/qphys"
	"quma/internal/readout"
	"quma/internal/uop"
)

var (
	all      = flag.Bool("all", false, "print every artifact")
	fig9     = flag.Bool("fig9", false, "Figure 9: AllXY staircase")
	table1   = flag.Bool("table1", false, "Table 1: CTPG lookup table")
	table5   = flag.Bool("table5", false, "Table 5: four-level decoding trace")
	queues   = flag.Bool("queues", false, "Tables 2-4: queue states")
	memoryF  = flag.Bool("memory", false, "§5.1.1 memory comparison")
	timingF  = flag.Bool("timing", false, "§4.2.3 timing sensitivity")
	timeline = flag.Bool("timeline", false, "Figures 3/5: one-round timeline")
	t1F      = flag.Bool("t1", false, "T1 relaxation experiment")
	ramseyF  = flag.Bool("ramsey", false, "T2* Ramsey experiment")
	echoF    = flag.Bool("echo", false, "T2 echo experiment")
	rbF      = flag.Bool("rb", false, "randomized benchmarking")
	aps2F    = flag.Bool("aps2", false, "§6 QuMA vs APS2 comparison")
	fig3     = flag.Bool("fig3", false, "Figure 3: one-round waveform oscillogram")
	rabiF    = flag.Bool("rabi", false, "Rabi amplitude calibration sweep")
	repcodeF = flag.Bool("repcode", false, "3-qubit repetition code with feedback")
	phaseF   = flag.Bool("phasecode", false, "3-qubit phase-flip code under dephasing")
	muxF     = flag.Bool("mux", false, "§5.1.2 frequency-multiplexed readout")
	icacheF  = flag.Bool("icache", false, "quantum instruction cache locality")
	vliwF    = flag.Bool("vliw", false, "§6 VLIW issue-rate study")
	rounds   = flag.Int("rounds", 400, "averaging rounds for fig9 (paper: 25600)")
	seed     = flag.Int64("seed", 1, "PRNG seed")
)

func main() {
	flag.Parse()
	any := false
	run := func(enabled bool, name string, fn func() error) {
		if !enabled && !*all {
			return
		}
		any = true
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "quma-tables: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run(*table1, "Table 1: CTPG lookup table", printTable1)
	run(*queues, "Tables 2-4: AllXY queue states", printQueues)
	run(*table5, "Table 5: multilevel decoding trace", printTable5)
	run(*timeline, "Figures 3/5: one-round timeline", printTimeline)
	run(*memoryF, "§5.1.1: memory footprint comparison", printMemory)
	run(*timingF, "§4.2.3: SSB timing sensitivity", printTiming)
	run(*fig9, "Figure 9: AllXY staircase", printFig9)
	run(*t1F, "T1 relaxation", printT1)
	run(*ramseyF, "T2* Ramsey", printRamsey)
	run(*echoF, "T2 echo", printEcho)
	run(*rbF, "Randomized benchmarking", printRB)
	run(*aps2F, "§6: QuMA vs APS2", printAPS2)
	run(*fig3, "Figure 3: one-round waveform oscillogram", printFig3)
	run(*rabiF, "Rabi amplitude calibration", printRabi)
	run(*repcodeF, "3-qubit repetition code with feedback", printRepCode)
	run(*phaseF, "3-qubit phase-flip code under dephasing", printPhaseCode)
	run(*muxF, "§5.1.2: frequency-multiplexed readout", printMux)
	run(*icacheF, "quantum instruction cache locality", printICache)
	run(*vliwF, "§6: VLIW issue rate", printVLIW)
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

func printTable1() error {
	c := awg.NewCTPG()
	if err := c.UploadStandardLibrary(0); err != nil {
		return err
	}
	fmt.Printf("%-9s %-6s %-8s %-10s %s\n", "codeword", "pulse", "samples", "bytes@12b", "rotation")
	for _, p := range awg.StandardLibrary() {
		w, name, _ := c.Lookup(p.Codeword)
		phi, theta := pulse.Rotation(w, c.SSBHz, 0)
		rot := "identity"
		if theta > 1e-9 {
			rot = fmt.Sprintf("θ=%.3fπ about φ=%.2fπ", theta/3.14159265, phi/3.14159265)
		}
		fmt.Printf("%-9d %-6s %-8d %-10d %s\n", p.Codeword, name, w.Len(), w.MemoryBytes(12), rot)
	}
	fmt.Printf("total lookup-table memory: %d bytes (paper: 420)\n", c.MemoryBytes(12))
	return nil
}

func printQueues() error {
	qmb := exec.NewQMB(nil, nil, nil)
	ctrl := exec.NewController(microcode.StandardControlStore(), qmb)
	prog := asm.MustAssemble(`
mov r15, 40000
QNopReg r15
Pulse {q0}, I
Wait 4
Pulse {q0}, I
Wait 4
MPG {q0}, 300
MD {q0}, r7
QNopReg r15
Pulse {q0}, X180
Wait 4
Pulse {q0}, X180
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`)
	if err := ctrl.Load(prog); err != nil {
		return err
	}
	for i := 0; i < len(prog.Instrs)-1; i++ {
		if err := ctrl.Step(); err != nil {
			return err
		}
	}
	dump := func(title string) {
		fmt.Printf("-- %s\n", title)
		fmt.Printf("%-24s %-18s %-12s %s\n", "Timing Queue", "Pulse Queue", "MPG Queue", "MD Queue")
		tq := qmb.TC.TQ.Snapshot()
		pq := qmb.PulseQ.Snapshot()
		mq := qmb.MPGQ.Snapshot()
		dq := qmb.MDQ.Snapshot()
		rows := len(tq)
		for _, n := range []int{len(pq), len(mq), len(dq)} {
			if n > rows {
				rows = n
			}
		}
		for i := 0; i < rows; i++ {
			var c1, c2, c3, c4 string
			if i < len(tq) {
				c1 = fmt.Sprintf("(%d, %d)", tq[i].Interval, tq[i].Label)
			}
			if i < len(pq) {
				c2 = fmt.Sprintf("(%s, %d)", pq[i].Event.UOp, pq[i].Label)
			}
			if i < len(mq) {
				c3 = fmt.Sprintf("(%d)", mq[i].Label)
			}
			if i < len(dq) {
				c4 = fmt.Sprintf("(r%d, %d)", dq[i].Event.Rd, dq[i].Label)
			}
			fmt.Printf("%-24s %-18s %-12s %s\n", c1, c2, c3, c4)
		}
	}
	dump("Table 2: TD = 0 (before start)")
	qmb.TC.Start()
	if _, err := qmb.TC.Step(); err != nil {
		return err
	}
	dump(fmt.Sprintf("Table 3: TD = %d", qmb.TC.TD()))
	for i := 0; i < 2; i++ {
		if _, err := qmb.TC.Step(); err != nil {
			return err
		}
	}
	dump(fmt.Sprintf("Table 4: TD = %d", qmb.TC.TD()))
	return nil
}

func printTable5() error {
	// Level 1: QIS input.
	qis := `QNopReg r15
Apply I, q0
Apply I, q0
Measure q0, r7
QNopReg r15
Apply X180, q0
Apply X180, q0
Measure q0, r7`
	fmt.Println("-- Level 1: QIS (input to the execution controller)")
	fmt.Println(qis)

	// Level 2: QuMIS after microcode expansion (r15 = 40000).
	cs := microcode.StandardControlStore()
	prog := asm.MustAssemble(qis + "\nhalt")
	fmt.Println("\n-- Level 2: QuMIS (input to the QMB)")
	var mis []isa.Instruction
	for _, in := range prog.Instrs {
		switch in.Op {
		case isa.OpQNopReg:
			w := isa.Instruction{Op: isa.OpWait, Imm: 40000}
			mis = append(mis, w)
			fmt.Println(w.String())
		case isa.OpHalt:
		default:
			out, err := cs.Expand(in)
			if err != nil {
				return err
			}
			for _, mi := range out {
				mis = append(mis, mi)
				fmt.Println(mi.String())
			}
		}
	}

	// Level 3: micro-operations with deterministic timing.
	fmt.Println("\n-- Level 3: micro-operations (input to the u-op units)")
	type firing struct {
		td   clock.Cycle
		text string
	}
	var pulses []firing
	var meas []firing
	qmb := exec.NewQMB(
		func(e exec.PulseEvent, td clock.Cycle) {
			pulses = append(pulses, firing{td, fmt.Sprintf("TD=%d: %s sent to u-op unit0", td, e.UOp)})
		},
		func(e exec.MPGEvent, td clock.Cycle) {
			meas = append(meas, firing{td, fmt.Sprintf("TD=%d: MPG bypasses to digital output (D=%d)", td, e.Duration)})
		},
		func(e exec.MDEvent, td clock.Cycle) {
			meas = append(meas, firing{td, fmt.Sprintf("TD=%d: MD(r%d) sent to MDU0", td, e.Rd)})
		},
	)
	for _, mi := range mis {
		if err := qmb.Submit(mi); err != nil {
			return err
		}
	}
	qmb.TC.Start()
	if _, err := qmb.TC.Drain(); err != nil {
		return err
	}
	for _, f := range pulses {
		fmt.Println(f.text)
	}

	// Level 4: codeword triggers out of the u-op unit + CTPG targets.
	fmt.Println("\n-- Level 4: codeword triggers (input to the CTPG / MDU)")
	u := uop.NewUnit()
	u.DefineStandardLibrary()
	lut := map[string]awg.Codeword{}
	for _, p := range awg.StandardLibrary() {
		lut[p.Name] = p.Codeword
	}
	for _, f := range pulses {
		name := strings.Fields(strings.SplitN(f.text, ": ", 2)[1])[0]
		trs, err := u.Expand(name, f.td)
		if err != nil {
			return err
		}
		for _, tr := range trs {
			fmt.Printf("TD=%d+Δ: CW %d (%s) sent to CTPG0\n", tr.At-u.Delay, tr.CW, name)
		}
	}
	for _, f := range meas {
		fmt.Println(f.text)
	}
	return nil
}

func printTimeline() error {
	cfg := core.DefaultConfig()
	cfg.TraceEvents = true
	cfg.Seed = *seed
	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	err = m.RunAssembly(`
Wait 40000
Pulse {q0}, X90
Wait 4
Pulse {q0}, Y180
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`)
	if err != nil {
		return err
	}
	for _, e := range m.Trace() {
		fmt.Println(e.String())
	}
	return nil
}

func printMemory() error {
	c := core.DefaultConfig()
	_ = c
	fmt.Printf("%-14s %-10s %-16s %-16s %s\n", "combinations", "qubits", "QuMA bytes", "waveform bytes", "ratio")
	model := defaultCost()
	for _, combos := range []int{21, 100, 1000} {
		for _, q := range []int{1, 8} {
			qm := model.QuMAMemoryBytes(q)
			wf := model.WaveformMemoryBytes(q, combos, 2)
			fmt.Printf("%-14d %-10d %-16d %-16d %.1fx\n", combos, q, qm, wf, float64(wf)/float64(qm))
		}
	}
	fmt.Println("(paper's AllXY point: 420 vs 2520 bytes)")
	return nil
}

func printTiming() error {
	fmt.Printf("%-12s %-18s %s\n", "delay (ns)", "axis shift (deg)", "effective gate")
	env := pulse.GaussianEnvelope(20, 4, pulse.CalibratedGaussianAmp(20, 4, 3.14159265))
	w := pulse.Synthesize(env, pulse.DefaultSSBHz, 0)
	phi0, _ := pulse.Rotation(w, pulse.DefaultSSBHz, 0)
	for d := 0; d <= 20; d += 5 {
		phi, _ := pulse.Rotation(w, pulse.DefaultSSBHz, clock.Sample(d))
		shift := (phi - phi0) * 180 / 3.14159265
		for shift < 0 {
			shift += 360
		}
		gate := "X180"
		switch int(shift+0.5) % 360 {
		case 90:
			gate = "Y180"
		case 180:
			gate = "Xm180"
		case 270:
			gate = "Ym180"
		}
		fmt.Printf("%-12d %-18.1f %s\n", d, shift, gate)
	}
	fmt.Println("(paper: at 50 MHz SSB, a 5 ns late x pulse becomes a y pulse)")
	return nil
}

func printFig9() error {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	p := expt.DefaultAllXYParams()
	p.Rounds = *rounds
	res, err := expt.RunAllXY(cfg, p)
	if err != nil {
		return err
	}
	fmt.Print(res.Staircase())
	fmt.Printf("(paper measured deviation 0.012 at N=25600 on hardware)\n")
	return nil
}

func printT1() error {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	res, err := expt.RunT1(cfg, expt.DefaultSweepParams())
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-10s %s\n", "delay (µs)", "P(|1>)", "fit")
	for i, d := range res.DelaysSec {
		fmt.Printf("%-12.1f %-10.4f %.4f\n", d*1e6, res.Excited[i], res.Fit.Eval(d))
	}
	fmt.Printf("fitted T1 = %.1f µs (configured %.1f µs)\n", res.Fit.Tau*1e6, qphys.DefaultQubitParams().T1*1e6)
	return nil
}

func printRamsey() error {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	qp := qphys.DefaultQubitParams()
	qp.FreqDetuningHz = 100e3
	cfg.Qubit = []qphys.QubitParams{qp}
	p := expt.DefaultSweepParams()
	p.DelaysCycles = nil
	for i := 0; i < 40; i++ {
		p.DelaysCycles = append(p.DelaysCycles, i*200)
	}
	res, err := expt.RunRamsey(cfg, p)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-10s %s\n", "delay (µs)", "P(|1>)", "fit")
	for i, d := range res.DelaysSec {
		fmt.Printf("%-12.2f %-10.4f %.4f\n", d*1e6, res.Excited[i], res.Fit.Eval(d))
	}
	fmt.Printf("fringe = %.1f kHz (detuning 100.0 kHz), T2* = %.1f µs (configured T2 %.1f µs)\n",
		res.Fit.Freq/1e3, res.Fit.Tau*1e6, qp.T2*1e6)
	return nil
}

func printEcho() error {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	qp := qphys.DefaultQubitParams()
	qp.FreqDetuningHz = 100e3
	cfg.Qubit = []qphys.QubitParams{qp}
	res, err := expt.RunEcho(cfg, expt.DefaultSweepParams())
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-10s %s\n", "delay (µs)", "P(|1>)", "fit")
	for i, d := range res.DelaysSec {
		fmt.Printf("%-12.1f %-10.4f %.4f\n", d*1e6, res.Excited[i], res.Fit.Eval(d))
	}
	fmt.Printf("fitted echo tau = %.1f µs (detuning refocused)\n", res.Fit.Tau*1e6)
	return nil
}

func printRB() error {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	res, err := expt.RunRB(cfg, expt.DefaultRBParams())
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Printf("avg pulses per Clifford: %.2f\n", res.AvgPulsesPerClifford)
	return nil
}

func printAPS2() error {
	model := defaultCost()
	fmt.Println("axis                       QuMA                     APS2-style baseline")
	fmt.Println("binaries                   1 (centralized)          1 per module (9 for 8 qubits)")
	fmt.Printf("memory, AllXY, 1 qubit     %-24d %d\n", model.QuMAMemoryBytes(1), model.WaveformMemoryBytes(1, 21, 2))
	fmt.Printf("memory, AllXY, 8 qubits    %-24d %d\n", model.QuMAMemoryBytes(8), model.WaveformMemoryBytes(8, 21, 2))
	fmt.Printf("reconfigure 1 combination  %-24d %d bytes re-uploaded\n",
		model.ReconfigureUploadBytes(false, 2), model.ReconfigureUploadBytes(true, 2))
	fmt.Println("synchronization            timing labels, no stall  TDM trigger: sequencer stalls")
	return nil
}

func printFig3() error {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	// One AllXY-style round: two gates back to back, then measurement.
	err = m.RunAssembly(`
Wait 400
Pulse {q0}, X180
Wait 4
Pulse {q0}, Y90
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`)
	if err != nil {
		return err
	}
	var events []pulse.Timed
	for _, pb := range m.CTPG[0].Playbacks() {
		events = append(events, pulse.Timed{Start: pb.Start, Wave: pb.Wave})
	}
	// Drive pulses are 20 ns; the measurement gate is 1.5 µs. Like the
	// paper's figure, the gate-pulse region is shown zoomed.
	first := events[0].Start
	fmt.Printf("drive I-channel, zoomed (X180 then Y90, 20 ns apart; starts at %.3f µs):\n", float64(first)*1e-3)
	fmt.Print(pulse.RenderTrack(events, first-10, first+60, 70, 11))
	var highs [][2]clock.Sample
	for _, iv := range m.Digital.Intervals(0) {
		highs = append(highs, [2]clock.Sample{iv.Start.Samples(), iv.End.Samples()})
	}
	from := first - 100
	to := highs[len(highs)-1][1] + 100
	fmt.Println("\nfull round — measurement gate (digital output 0):")
	fmt.Println(pulse.RenderGate(highs, from, to, 100))
	fmt.Printf("window: %.2f µs .. %.2f µs\n", float64(from)*1e-3, float64(to)*1e-3)
	return nil
}

func printRabi() error {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	res, err := expt.RunRabi(cfg, expt.DefaultRabiParams())
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func printRepCode() error {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	res, err := expt.RunRepCode(cfg, expt.DefaultRepCodeParams())
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func printPhaseCode() error {
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	for i := 0; i < 5; i++ {
		cfg.Qubit = append(cfg.Qubit, expt.DephasingQubit(20e-6))
	}
	p := expt.DefaultRepCodeParams()
	p.WaitCycles = 800
	res, err := expt.RunPhaseCode(cfg, p)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func printMux() error {
	p, err := readout.DefaultMuxParams(4)
	if err != nil {
		return err
	}
	x, err := readout.CrosstalkMatrix(p)
	if err != nil {
		return err
	}
	fmt.Println("4 qubits on one feedline, one digitizer; demodulation crosstalk matrix:")
	for i := range x {
		fmt.Print("  ")
		for j := range x[i] {
			fmt.Printf("%6.3f ", x[i][j])
		}
		fmt.Println()
	}
	fmt.Println("(identity = channels separate exactly; the §5.1.2 scalability claim)")
	return nil
}

func printICache() error {
	for _, scenario := range []struct {
		name string
		src  string
	}{
		{"Algorithm-3 loop (compact)", `
mov r15, 100
mov r1, 0
mov r2, 500
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
addi r1, r1, 1
bne r1, r2, Loop
halt`},
		{"fully unrolled equivalent", unrolledProgram(500)},
	} {
		qmb := exec.NewQMB(nil, nil, nil)
		ctrl := exec.NewController(microcode.StandardControlStore(), qmb)
		ic, err := exec.NewICache(64, 4, 20)
		if err != nil {
			return err
		}
		ctrl.ICache = ic
		prog, err := asm.Assemble(scenario.src)
		if err != nil {
			return err
		}
		if err := ctrl.Load(prog); err != nil {
			return err
		}
		if err := ctrl.Run(0); err != nil {
			return err
		}
		fmt.Printf("%-28s %7d instrs, %6d fetch misses, hit rate %.4f, %d stall cycles\n",
			scenario.name, len(prog.Instrs), ic.Misses(), ic.HitRate(), ic.StallCycles())
	}
	return nil
}

func unrolledProgram(rounds int) string {
	var b strings.Builder
	b.WriteString("mov r15, 100\n")
	for i := 0; i < rounds; i++ {
		b.WriteString("QNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\n")
	}
	b.WriteString("halt\n")
	return b.String()
}

func printVLIW() error {
	// Issue-rate study on the AllXY program body: how much a VLIW front
	// end relaxes the single-stream issue bottleneck (§6).
	src := expt.AllXYProgram(expt.DefaultAllXYParams())
	prog, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %s\n", "width", "bundles", "instrs/bundle")
	for _, width := range []int{1, 2, 4, 8} {
		bp, err := exec.BundleProgram(prog, width)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-10d %.2f\n", width, len(bp.Bundles), bp.IssueRate())
	}
	fmt.Println("(paper §6: VLIW proposed to raise issue rate for more qubits)")
	fmt.Println("\nsustainable qubit count (continuous back-to-back gating):")
	for _, width := range []float64{1, 2, 4, 8} {
		m := exec.PrototypeIssueModel()
		m.IssueWidth = width
		fmt.Printf("  width %g: %s\n", width, m)
	}
	return nil
}

func defaultCost() aps2.CostModel { return aps2.DefaultCostModel() }
