package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkReplayRepCode/trajectory/replay-8   \t 12\t  9123456 ns/op\t  1024 B/op\t 12 allocs/op\t 0.031 corrected-err")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkReplayRepCode/trajectory/replay" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Iterations != 12 || r.NsPerOp != 9123456 || r.BytesPerOp != 1024 || r.AllocsPerOp != 12 {
		t.Errorf("metrics = %+v", r)
	}
	if r.Metrics["corrected-err"] != 0.031 {
		t.Errorf("custom metric missing: %+v", r.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"ok  \tquma\t1.2s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken notanumber",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as benchmark", line)
		}
	}
}

func TestParseLineKeepsSubBenchDashes(t *testing.T) {
	// A trailing -N is GOMAXPROCS; an interior dash in the name is not.
	r, ok := parseLine("BenchmarkTimingControllerEventDriven/interval-40000-8 100 5 ns/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkTimingControllerEventDriven/interval-40000" {
		t.Errorf("name = %q", r.Name)
	}
}

// TestOutputShape pushes a realistic multi-line bench text through
// parseLine and JSON marshaling — the whole pipeline main runs — and
// asserts the document shape downstream consumers (the CI perf-trajectory
// diff) rely on: an array ordered as the input, with standard metrics as
// fixed keys and custom metrics namespaced under "metrics".
func TestOutputShape(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: quma
BenchmarkApply1-8          	 3000000	       402 ns/op	       0 B/op	       0 allocs/op
BenchmarkReplayRB/full-8   	      10	 105000000 ns/op	 9100000 B/op	   84000 allocs/op
BenchmarkServeBatch        	       5	   2000000 ns/op	    1442 experiments/s
PASS
ok  	quma	12.3s
`
	var results []Result
	for _, line := range strings.Split(input, "\n") {
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	enc, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	var doc []map[string]any
	if err := json.Unmarshal(enc, &doc); err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"BenchmarkApply1", "BenchmarkReplayRB/full", "BenchmarkServeBatch"}
	for i, want := range wantNames {
		if doc[i]["name"] != want {
			t.Errorf("doc[%d].name = %v, want %q", i, doc[i]["name"], want)
		}
		if _, ok := doc[i]["ns_per_op"].(float64); !ok {
			t.Errorf("doc[%d] missing ns_per_op: %v", i, doc[i])
		}
	}
	// The kernel bench reports explicit zero B/op and allocs/op: those
	// are omitempty zeros, absent from the document by design.
	if _, ok := doc[0]["bytes_per_op"]; ok {
		t.Errorf("zero B/op must be omitted: %v", doc[0])
	}
	metrics, ok := doc[2]["metrics"].(map[string]any)
	if !ok || metrics["experiments/s"] != 1442.0 {
		t.Errorf("custom metric lost: %v", doc[2])
	}
}
