package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkReplayRepCode/trajectory/replay-8   \t 12\t  9123456 ns/op\t  1024 B/op\t 12 allocs/op\t 0.031 corrected-err")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkReplayRepCode/trajectory/replay" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Iterations != 12 || r.NsPerOp != 9123456 || r.BytesPerOp != 1024 || r.AllocsPerOp != 12 {
		t.Errorf("metrics = %+v", r)
	}
	if r.Metrics["corrected-err"] != 0.031 {
		t.Errorf("custom metric missing: %+v", r.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"ok  \tquma\t1.2s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken notanumber",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as benchmark", line)
		}
	}
}

func TestParseLineKeepsSubBenchDashes(t *testing.T) {
	// A trailing -N is GOMAXPROCS; an interior dash in the name is not.
	r, ok := parseLine("BenchmarkTimingControllerEventDriven/interval-40000-8 100 5 ns/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkTimingControllerEventDriven/interval-40000" {
		t.Errorf("name = %q", r.Name)
	}
}
