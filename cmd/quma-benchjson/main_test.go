package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkReplayRepCode/trajectory/replay-8   \t 12\t  9123456 ns/op\t  1024 B/op\t 12 allocs/op\t 0.031 corrected-err")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkReplayRepCode/trajectory/replay-8" {
		t.Errorf("name = %q (parseLine must keep names verbatim; stripping is global)", r.Name)
	}
	if r.Iterations != 12 || r.NsPerOp != 9123456 || r.BytesPerOp != 1024 || r.AllocsPerOp != 12 {
		t.Errorf("metrics = %+v", r)
	}
	if r.Metrics["corrected-err"] != 0.031 {
		t.Errorf("custom metric missing: %+v", r.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"ok  \tquma\t1.2s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken notanumber",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as benchmark", line)
		}
	}
}

// TestStripMaxprocs pins the global suffix rule: the -GOMAXPROCS
// suffix exists exactly when GOMAXPROCS != 1, and then on every line —
// so it is stripped only when every name carries the same trailing
// -<digits>. A single-proc run whose sub-benchmarks happen to end in
// -<digits> (lane widths, sizes) keeps its names verbatim.
func TestStripMaxprocs(t *testing.T) {
	multi := []Result{
		{Name: "BenchmarkApply1-8"},
		{Name: "BenchmarkBatchedRepCode/d3/lanes-4-8"},
		{Name: "BenchmarkTimingControllerEventDriven/interval-40000-8"},
	}
	stripMaxprocs(multi)
	want := []string{
		"BenchmarkApply1",
		"BenchmarkBatchedRepCode/d3/lanes-4",
		"BenchmarkTimingControllerEventDriven/interval-40000",
	}
	for i, w := range want {
		if multi[i].Name != w {
			t.Errorf("multi[%d].Name = %q, want %q", i, multi[i].Name, w)
		}
	}

	single := []Result{
		{Name: "BenchmarkBatchedRepCode/d3/scalar"},
		{Name: "BenchmarkBatchedRepCode/d3/lanes-4"},
		{Name: "BenchmarkBatchedRepCode/d3/lanes-8"},
	}
	stripMaxprocs(single)
	if single[1].Name != "BenchmarkBatchedRepCode/d3/lanes-4" || single[2].Name != "BenchmarkBatchedRepCode/d3/lanes-8" {
		t.Errorf("single-proc names mangled: %+v", single)
	}

	mixed := []Result{
		{Name: "BenchmarkA-8"},
		{Name: "BenchmarkB-4"},
	}
	stripMaxprocs(mixed)
	if mixed[0].Name != "BenchmarkA-8" || mixed[1].Name != "BenchmarkB-4" {
		t.Errorf("differing suffixes must not strip: %+v", mixed)
	}
}

// TestOutputShape pushes a realistic multi-line bench text through
// parseLine, stripMaxprocs, and JSON marshaling — the whole pipeline
// main runs — and asserts the document shape downstream consumers (the
// CI perf-trajectory diff) rely on: an array ordered as the input, with
// standard metrics as fixed keys and custom metrics namespaced under
// "metrics".
func TestOutputShape(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: quma
BenchmarkApply1-8          	 3000000	       402 ns/op	       0 B/op	       0 allocs/op
BenchmarkReplayRB/full-8   	      10	 105000000 ns/op	 9100000 B/op	   84000 allocs/op
BenchmarkServeBatch-8      	       5	   2000000 ns/op	    1442 experiments/s
PASS
ok  	quma	12.3s
`
	var results []Result
	for _, line := range strings.Split(input, "\n") {
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	stripMaxprocs(results)
	enc, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	var doc []map[string]any
	if err := json.Unmarshal(enc, &doc); err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"BenchmarkApply1", "BenchmarkReplayRB/full", "BenchmarkServeBatch"}
	for i, want := range wantNames {
		if doc[i]["name"] != want {
			t.Errorf("doc[%d].name = %v, want %q", i, doc[i]["name"], want)
		}
		if _, ok := doc[i]["ns_per_op"].(float64); !ok {
			t.Errorf("doc[%d] missing ns_per_op: %v", i, doc[i])
		}
	}
	// The kernel bench reports explicit zero B/op and allocs/op: those
	// are omitempty zeros, absent from the document by design.
	if _, ok := doc[0]["bytes_per_op"]; ok {
		t.Errorf("zero B/op must be omitted: %v", doc[0])
	}
	metrics, ok := doc[2]["metrics"].(map[string]any)
	if !ok || metrics["experiments/s"] != 1442.0 {
		t.Errorf("custom metric lost: %v", doc[2])
	}
}
