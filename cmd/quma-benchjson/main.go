// Command quma-benchjson converts `go test -bench` text output (stdin)
// into a structured JSON artifact, so the per-PR bench smoke is
// machine-readable and the perf trajectory (ns/op, allocs/op, custom
// metrics) can be tracked across PRs without parsing free text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | quma-benchjson -o BENCH_smoke.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (sub-benchmarks keep their slash-separated path).
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard metrics (0 when
	// absent from the line).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every custom b.ReportMetric unit on the line.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "quma-benchjson:", err)
		os.Exit(1)
	}
	stripMaxprocs(results)

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "quma-benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "quma-benchjson:", err)
		os.Exit(1)
	}
}

// stripMaxprocs removes the trailing -GOMAXPROCS suffix from every
// result name, but only when one is actually present: the go tool
// appends it exactly when GOMAXPROCS != 1, and then every benchmark
// line in the run carries the same suffix. Stripping per-line would
// mangle legitimate names that end in -<digits> (a lane-width or size
// sub-benchmark like lanes-8) on single-proc runs, so the suffix is
// recognized globally — every name must end in the same -<digits> —
// before any name is touched.
func stripMaxprocs(results []Result) {
	if len(results) == 0 {
		return
	}
	suffix := ""
	for i, r := range results {
		j := strings.LastIndex(r.Name, "-")
		if j < 0 || strings.Contains(r.Name[j:], "/") {
			return
		}
		if _, err := strconv.Atoi(r.Name[j+1:]); err != nil {
			return
		}
		if i == 0 {
			suffix = r.Name[j:]
		} else if r.Name[j:] != suffix {
			return
		}
	}
	for i := range results {
		results[i].Name = strings.TrimSuffix(results[i].Name, suffix)
	}
}

// parseLine parses one `Benchmark... N value unit value unit ...` line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
