package main

import (
	"testing"

	"quma/internal/replay"
)

func TestValidateFlags(t *testing.T) {
	good := []struct {
		backend, mode string
		shots         int
		want          replay.Mode
	}{
		{"density", "auto", 1, replay.ModeAuto},
		{"trajectory", "compiled", 10000, replay.ModeCompiled},
		{"trajectory", "interp", 2, replay.ModeInterp},
		{"density", "off", 5, replay.ModeOff},
		{"density", "", 1, replay.ModeAuto},
	}
	for _, c := range good {
		mode, err := validateFlags(c.backend, c.mode, c.shots)
		if err != nil || mode != c.want {
			t.Errorf("validateFlags(%q, %q, %d) = (%q, %v), want (%q, nil)", c.backend, c.mode, c.shots, mode, err, c.want)
		}
	}
	bad := []struct {
		backend, mode string
		shots         int
	}{
		{"densty", "auto", 1},     // typo'd backend must not default
		{"", "auto", 1},           // empty backend is not a selection
		{"density", "repaly", 10}, // typo'd mode must not default
		{"density", "auto", 0},    // zero shots runs nothing
		{"density", "auto", -3},
	}
	for _, c := range bad {
		if _, err := validateFlags(c.backend, c.mode, c.shots); err == nil {
			t.Errorf("validateFlags(%q, %q, %d) accepted invalid flags", c.backend, c.mode, c.shots)
		}
	}
}
