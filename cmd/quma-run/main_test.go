package main

import (
	"testing"

	"quma/internal/replay"
)

func TestValidateFlags(t *testing.T) {
	good := []struct {
		backend, mode             string
		shots, shotWorkers, lanes int
		want                      replay.Mode
	}{
		{"density", "auto", 1, 0, 0, replay.ModeAuto},
		{"trajectory", "compiled", 10000, 0, 8, replay.ModeCompiled},
		{"trajectory", "interp", 2, 1, 0, replay.ModeInterp},
		{"density", "off", 5, 8, 1, replay.ModeOff},
		{"density", "", 1, 0, 0, replay.ModeAuto},
	}
	for _, c := range good {
		mode, err := validateFlags(c.backend, c.mode, c.shots, c.shotWorkers, c.lanes)
		if err != nil || mode != c.want {
			t.Errorf("validateFlags(%q, %q, %d, %d, %d) = (%q, %v), want (%q, nil)", c.backend, c.mode, c.shots, c.shotWorkers, c.lanes, mode, err, c.want)
		}
	}
	bad := []struct {
		backend, mode             string
		shots, shotWorkers, lanes int
	}{
		{"densty", "auto", 1, 0, 0},     // typo'd backend must not default
		{"", "auto", 1, 0, 0},           // empty backend is not a selection
		{"density", "repaly", 10, 0, 0}, // typo'd mode must not default
		{"density", "auto", 0, 0, 0},    // zero shots runs nothing
		{"density", "auto", -3, 0, 0},
		{"density", "auto", 10, -1, 0}, // negative shot-workers must not default
		{"density", "auto", 10, 0, -2}, // negative lanes must not default
	}
	for _, c := range bad {
		if _, err := validateFlags(c.backend, c.mode, c.shots, c.shotWorkers, c.lanes); err == nil {
			t.Errorf("validateFlags(%q, %q, %d, %d, %d) accepted invalid flags", c.backend, c.mode, c.shots, c.shotWorkers, c.lanes)
		}
	}
}
