// Command quma-run executes a QuMA assembly program on the simulated
// control box + transmon chip and reports the machine state afterwards:
// registers, measurement counts, averaged integration results, and
// (optionally) the deterministic-domain event timeline.
//
// With -shots N > 1 the program runs N times through the shot-replay
// engine (internal/replay): the classical pipeline is simulated for the
// leading shots and, when the program is detected replay-safe, the
// recorded quantum schedule is replayed for the rest — bit-identical
// results, order-of-magnitude faster on shot-heavy programs. -replay=off
// forces full per-shot simulation. Note that replayed shots perform no
// classical execution, so final register contents reflect the last fully
// simulated shot; programs whose registers matter are detected unsafe and
// fall back automatically.
//
// Shot counts above expt.ShotShardSize are split across the fixed shot-
// shard plan (expt.ShotShardPlan): shard k runs on its own machine seeded
// DeriveSeed(seed, k), up to -shot-workers shards concurrently. The plan,
// seeds, and merge order depend only on the shot count, so results are
// bit-identical for any -shot-workers value. On the trajectory backend,
// -lanes L > 1 additionally runs groups of up to L equal-size shards in
// lockstep on the batched SoA executor (one lane per shard, same seeds,
// same streams — bit-identical results, higher throughput). Instruction, pulse, and
// measurement counters sum across shards; registers, final qubit state,
// and the timeline come from the last shard's machine; the data
// collection unit's averages merge exactly across the shards.
//
// Usage:
//
//	quma-run [-qubits N] [-backend density|trajectory] [-seed S] [-trace] [-collect K] prog.qasm
//	quma-run -shots 10000 -replay auto prog.qasm
//	quma-run -shots 100000 -shot-workers 8 prog.qasm
//	quma-run -backend trajectory -shots 100000 -lanes 8 prog.qasm
//	quma-run -cpuprofile cpu.pprof -shots 10000 prog.qasm
//	quma-run -bin prog.bin          # hex words from quma-asm
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"sync"
	"sync/atomic"

	"quma/internal/asm"
	"quma/internal/core"
	"quma/internal/expt"
	"quma/internal/isa"
	"quma/internal/replay"
)

func main() {
	var (
		qubits      = flag.Int("qubits", 1, "number of simulated qubits (1-8 density, 1-16 trajectory)")
		backend     = flag.String("backend", "density", "quantum-state backend: density (exact, O(4^n)) or trajectory (Monte-Carlo statevector, O(2^n))")
		seed        = flag.Int64("seed", 1, "PRNG seed")
		trace       = flag.Bool("trace", false, "print the deterministic-domain event timeline")
		collect     = flag.Int("collect", 0, "enable the data collection unit with K results per round")
		amperr      = flag.Float64("amp-error", 0, "fractional pulse amplitude miscalibration ε")
		binary      = flag.Bool("bin", false, "input is a binary (hex words) produced by quma-asm")
		shots       = flag.Int("shots", 1, "number of times to run the program on one machine (the shot loop of an experiment)")
		shotWorkers = flag.Int("shot-workers", 0, "bound on concurrent shot shards when -shots exceeds the shard threshold (0 = one per CPU); results are bit-identical for any value")
		lanes       = flag.Int("lanes", 0, "run groups of up to this many equal-size shot shards in lockstep on the batched SoA trajectory executor (0 or 1 = scalar shards); results are bit-identical for any value")
		replayMode  = flag.String("replay", "auto", "shot-replay engine mode: compiled (replay the compiled schedule when safe), interp (op-by-op replay, the A/B baseline), auto (best available = compiled), or off (full simulation per shot)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: quma-run [flags] <prog.qasm>")
		os.Exit(2)
	}
	// Validate flag values up front with a clear non-zero exit: an
	// unknown backend or replay mode, or a non-positive shot count, must
	// never silently fall back to a default.
	mode, err := validateFlags(*backend, *replayMode, *shots, *shotWorkers, *lanes)
	if err != nil {
		fail(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
		// fail() exits the process, which would skip the deferred flush
		// and truncate the profile — precisely when profiling a failing
		// hot path. Flush before any error exit.
		cpuProfiling = true
	}

	cfg := core.DefaultConfig()
	cfg.NumQubits = *qubits
	cfg.Backend = core.Backend(*backend)
	cfg.Seed = *seed
	cfg.CollectK = *collect
	cfg.AmplitudeError = *amperr
	cfg.TraceEvents = *trace

	m, err := core.New(cfg)
	if err != nil {
		fail(err)
	}

	var prog *isa.Program
	if *binary {
		var words []uint32
		for lineNo, line := range strings.Split(string(src), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			var word uint32
			if _, err := fmt.Sscanf(line, "%x", &word); err != nil {
				fail(fmt.Errorf("line %d: %q is not a hex word", lineNo+1, line))
			}
			words = append(words, word)
		}
		prog, err = isa.DecodeProgram(words, isa.StandardSymbols())
	} else {
		prog, err = asm.Assemble(string(src))
	}
	if err != nil {
		fail(err)
	}

	machines := []*core.Machine{m}
	plan := expt.ShotShardPlan(*shots)
	switch {
	case *shots == 1:
		if err := m.RunProgram(prog); err != nil {
			fail(err)
		}
	case plan == nil:
		stats, err := replay.Run(context.Background(), m, prog, replay.Options{Shots: *shots, Mode: mode})
		if err != nil {
			fail(err)
		}
		printEngine(stats)
	default:
		stats, shardMachines, err := runSharded(cfg, prog, plan, *shotWorkers, *lanes, mode)
		if err != nil {
			fail(err)
		}
		machines = shardMachines
		m = machines[len(machines)-1]
		// Lead/Overhead come from the merged engine stats: overhead is
		// the recording cost sharding added over an unsharded run (zero
		// at or below the shard threshold, where this line never prints).
		fmt.Printf("shot-shard plan: %d shards of ≤%d shots (%d lead/detect shots, %d sharding overhead)\n",
			len(plan), expt.ShotShardSize, stats.Lead, stats.Overhead)
		printEngine(stats)
	}

	var steps, pulses, measurements uint64
	for _, sm := range machines {
		steps += sm.Controller.Steps
		pulses += sm.PulsesPlayed
		measurements += sm.Measurements
	}
	fmt.Printf("program completed: %d instructions executed\n", steps)
	fmt.Printf("pulses played: %d, measurements: %d\n", pulses, measurements)
	fmt.Printf("CTPG memory footprint: %d bytes (12-bit samples)\n", m.MemoryFootprintBytes())
	fmt.Println("registers:")
	for r, v := range m.Controller.Regs {
		if v != 0 {
			fmt.Printf("  r%-2d = %d\n", r, v)
		}
	}
	for q := 0; q < *qubits; q++ {
		fmt.Printf("qubit %d final P(|1>) = %.4f\n", q, m.State.ProbExcited(q))
	}
	if m.Collector != nil {
		// Merge the shard collectors exactly: sums and counts added in
		// shard order, divided once (identical to a single collector when
		// there is one machine).
		sums := make([]float64, m.Collector.K)
		counts := make([]int, m.Collector.K)
		rounds := 0
		for _, sm := range machines {
			for i, s := range sm.Collector.Sums() {
				sums[i] += s
			}
			for i, c := range sm.Collector.Counts() {
				counts[i] += c
			}
			rounds += sm.Collector.Rounds()
		}
		fmt.Printf("data collection unit: %d complete rounds, averages:\n", rounds)
		for i := range sums {
			avg := 0.0
			if counts[i] > 0 {
				avg = sums[i] / float64(counts[i])
			}
			fmt.Printf("  S[%d] = %.4f\n", i, avg)
		}
	}
	if *trace {
		fmt.Println("deterministic-domain timeline:")
		for _, e := range m.Trace() {
			fmt.Println("  " + e.String())
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}
}

// printEngine reports what the shot-replay engine did.
func printEngine(stats replay.Stats) {
	switch {
	case stats.Safe && stats.Compiled:
		fmt.Printf("shot-replay engine: %d/%d shots replayed from the compiled schedule\n", stats.Replayed, stats.Shots)
	case stats.Safe:
		fmt.Printf("shot-replay engine: %d/%d shots replayed from the recorded schedule\n", stats.Replayed, stats.Shots)
	default:
		fmt.Printf("shot-replay engine: full simulation (%s)\n", stats.Reason)
	}
}

// runSharded executes the shot-shard plan: shard k runs plan[k] shots on
// a fresh machine seeded expt.DeriveSeed(cfg.Seed, k) with its global
// shot offset as replay.Options.BaseShot. With lanes > 1 the shards are
// partitioned into lockstep batch groups (expt.LaneGroups) and each
// group runs as one replay.RunBatch call — one lane per shard, same
// seeds, same streams, so the grouping can never change a result byte.
// Up to `workers` groups run concurrently (0 = one per CPU). Stats
// merge in shard order; the machines return in shard order too, so the
// caller's "last machine" state is deterministic.
func runSharded(cfg core.Config, prog *isa.Program, plan []int, workers, lanes int, mode replay.Mode) (replay.Stats, []*core.Machine, error) {
	if mode == replay.ModeOff || mode == replay.ModeInterp {
		lanes = 1 // no batched executor for these modes
	}
	groups := expt.LaneGroups(plan, lanes)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	starts := make([]int, len(plan))
	for k := 1; k < len(plan); k++ {
		starts[k] = starts[k-1] + plan[k-1]
	}
	machines := make([]*core.Machine, len(plan))
	statsv := make([]replay.Stats, len(plan))
	errs := make([]error, len(groups))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1))
				if gi >= len(groups) {
					return
				}
				g0, g1 := groups[gi][0], groups[gi][1]
				bl := make([]replay.BatchLane, 0, g1-g0)
				for k := g0; k < g1; k++ {
					scfg := cfg
					scfg.Seed = expt.DeriveSeed(cfg.Seed, k)
					sm, err := core.New(scfg)
					if err != nil {
						errs[gi] = err
						break
					}
					machines[k] = sm
					bl = append(bl, replay.BatchLane{M: sm, BaseShot: starts[k]})
				}
				if errs[gi] != nil {
					continue
				}
				sts, err := replay.RunBatch(context.Background(), prog, bl, plan[g0], mode)
				copy(statsv[g0:g1], sts)
				errs[gi] = err
			}
		}()
	}
	wg.Wait()
	for gi := range groups {
		if errs[gi] != nil {
			return replay.Stats{}, nil, errs[gi]
		}
	}
	var merged replay.Stats
	for k := range plan {
		merged.Merge(statsv[k])
	}
	return merged, machines, nil
}

// validateFlags rejects unknown -backend/-replay values, non-positive
// -shots, and negative -shot-workers/-lanes before any machine is
// built, so a typo fails loudly instead of silently running under a
// default.
func validateFlags(backend, replayMode string, shots, shotWorkers, lanes int) (replay.Mode, error) {
	if shots < 1 {
		return "", fmt.Errorf("-shots must be positive, got %d", shots)
	}
	if shotWorkers < 0 {
		return "", fmt.Errorf("-shot-workers must be non-negative (0 selects one per CPU), got %d", shotWorkers)
	}
	if lanes < 0 {
		return "", fmt.Errorf("-lanes must be non-negative (0 and 1 select scalar shard execution), got %d", lanes)
	}
	switch core.Backend(backend) {
	case core.BackendDensity, core.BackendTrajectory:
	default:
		return "", fmt.Errorf("unknown -backend %q (want %q or %q)", backend, core.BackendDensity, core.BackendTrajectory)
	}
	mode, err := replay.ParseMode(replayMode)
	if err != nil {
		return "", fmt.Errorf("invalid -replay value: %w", err)
	}
	return mode, nil
}

// cpuProfiling records that a CPU profile is active, so fail can flush
// it before os.Exit skips the deferred stop.
var cpuProfiling bool

func fail(err error) {
	if cpuProfiling {
		pprof.StopCPUProfile()
	}
	fmt.Fprintln(os.Stderr, "quma-run:", err)
	os.Exit(1)
}
