// Command quma-run executes a QuMA assembly program on the simulated
// control box + transmon chip and reports the machine state afterwards:
// registers, measurement counts, averaged integration results, and
// (optionally) the deterministic-domain event timeline.
//
// Usage:
//
//	quma-run [-qubits N] [-backend density|trajectory] [-seed S] [-trace] [-collect K] prog.qasm
//	quma-run -bin prog.bin          # hex words from quma-asm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"quma/internal/core"
	"quma/internal/isa"
)

func main() {
	var (
		qubits  = flag.Int("qubits", 1, "number of simulated qubits (1-8 density, 1-16 trajectory)")
		backend = flag.String("backend", "density", "quantum-state backend: density (exact, O(4^n)) or trajectory (Monte-Carlo statevector, O(2^n))")
		seed    = flag.Int64("seed", 1, "PRNG seed")
		trace   = flag.Bool("trace", false, "print the deterministic-domain event timeline")
		collect = flag.Int("collect", 0, "enable the data collection unit with K results per round")
		amperr  = flag.Float64("amp-error", 0, "fractional pulse amplitude miscalibration ε")
		binary  = flag.Bool("bin", false, "input is a binary (hex words) produced by quma-asm")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: quma-run [flags] <prog.qasm>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	cfg := core.DefaultConfig()
	cfg.NumQubits = *qubits
	cfg.Backend = core.Backend(*backend)
	cfg.Seed = *seed
	cfg.CollectK = *collect
	cfg.AmplitudeError = *amperr
	cfg.TraceEvents = *trace

	m, err := core.New(cfg)
	if err != nil {
		fail(err)
	}
	if *binary {
		var words []uint32
		for lineNo, line := range strings.Split(string(src), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			var word uint32
			if _, err := fmt.Sscanf(line, "%x", &word); err != nil {
				fail(fmt.Errorf("line %d: %q is not a hex word", lineNo+1, line))
			}
			words = append(words, word)
		}
		prog, err := isa.DecodeProgram(words, isa.StandardSymbols())
		if err != nil {
			fail(err)
		}
		if err := m.RunProgram(prog); err != nil {
			fail(err)
		}
	} else if err := m.RunAssembly(string(src)); err != nil {
		fail(err)
	}

	fmt.Printf("program completed: %d instructions executed\n", m.Controller.Steps)
	fmt.Printf("pulses played: %d, measurements: %d\n", m.PulsesPlayed, m.Measurements)
	fmt.Printf("CTPG memory footprint: %d bytes (12-bit samples)\n", m.MemoryFootprintBytes())
	fmt.Println("registers:")
	for r, v := range m.Controller.Regs {
		if v != 0 {
			fmt.Printf("  r%-2d = %d\n", r, v)
		}
	}
	for q := 0; q < *qubits; q++ {
		fmt.Printf("qubit %d final P(|1>) = %.4f\n", q, m.State.ProbExcited(q))
	}
	if m.Collector != nil {
		fmt.Printf("data collection unit: %d complete rounds, averages:\n", m.Collector.Rounds())
		for i, s := range m.Collector.Averages() {
			fmt.Printf("  S[%d] = %.4f\n", i, s)
		}
	}
	if *trace {
		fmt.Println("deterministic-domain timeline:")
		for _, e := range m.Trace() {
			fmt.Println("  " + e.String())
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "quma-run:", err)
	os.Exit(1)
}
