// Command quma-run executes a QuMA assembly program on the simulated
// control box + transmon chip and reports the machine state afterwards:
// registers, measurement counts, averaged integration results, and
// (optionally) the deterministic-domain event timeline.
//
// With -shots N > 1 the program runs N times on one machine through the
// shot-replay engine (internal/replay): the classical pipeline is
// simulated for the leading shots and, when the program is detected
// replay-safe, the recorded quantum schedule is replayed for the rest —
// bit-identical results, order-of-magnitude faster on shot-heavy
// programs. -replay=off forces full per-shot simulation. Note that
// replayed shots perform no classical execution, so final register
// contents reflect the last fully simulated shot; programs whose
// registers matter are detected unsafe and fall back automatically.
//
// Usage:
//
//	quma-run [-qubits N] [-backend density|trajectory] [-seed S] [-trace] [-collect K] prog.qasm
//	quma-run -shots 10000 -replay auto prog.qasm
//	quma-run -cpuprofile cpu.pprof -shots 10000 prog.qasm
//	quma-run -bin prog.bin          # hex words from quma-asm
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"quma/internal/asm"
	"quma/internal/core"
	"quma/internal/isa"
	"quma/internal/replay"
)

func main() {
	var (
		qubits     = flag.Int("qubits", 1, "number of simulated qubits (1-8 density, 1-16 trajectory)")
		backend    = flag.String("backend", "density", "quantum-state backend: density (exact, O(4^n)) or trajectory (Monte-Carlo statevector, O(2^n))")
		seed       = flag.Int64("seed", 1, "PRNG seed")
		trace      = flag.Bool("trace", false, "print the deterministic-domain event timeline")
		collect    = flag.Int("collect", 0, "enable the data collection unit with K results per round")
		amperr     = flag.Float64("amp-error", 0, "fractional pulse amplitude miscalibration ε")
		binary     = flag.Bool("bin", false, "input is a binary (hex words) produced by quma-asm")
		shots      = flag.Int("shots", 1, "number of times to run the program on one machine (the shot loop of an experiment)")
		replayMode = flag.String("replay", "auto", "shot-replay engine mode: compiled (replay the compiled schedule when safe), interp (op-by-op replay, the A/B baseline), auto (best available = compiled), or off (full simulation per shot)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: quma-run [flags] <prog.qasm>")
		os.Exit(2)
	}
	// Validate flag values up front with a clear non-zero exit: an
	// unknown backend or replay mode, or a non-positive shot count, must
	// never silently fall back to a default.
	mode, err := validateFlags(*backend, *replayMode, *shots)
	if err != nil {
		fail(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
		// fail() exits the process, which would skip the deferred flush
		// and truncate the profile — precisely when profiling a failing
		// hot path. Flush before any error exit.
		cpuProfiling = true
	}

	cfg := core.DefaultConfig()
	cfg.NumQubits = *qubits
	cfg.Backend = core.Backend(*backend)
	cfg.Seed = *seed
	cfg.CollectK = *collect
	cfg.AmplitudeError = *amperr
	cfg.TraceEvents = *trace

	m, err := core.New(cfg)
	if err != nil {
		fail(err)
	}

	var prog *isa.Program
	if *binary {
		var words []uint32
		for lineNo, line := range strings.Split(string(src), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			var word uint32
			if _, err := fmt.Sscanf(line, "%x", &word); err != nil {
				fail(fmt.Errorf("line %d: %q is not a hex word", lineNo+1, line))
			}
			words = append(words, word)
		}
		prog, err = isa.DecodeProgram(words, isa.StandardSymbols())
	} else {
		prog, err = asm.Assemble(string(src))
	}
	if err != nil {
		fail(err)
	}

	if *shots == 1 {
		if err := m.RunProgram(prog); err != nil {
			fail(err)
		}
	} else {
		stats, err := replay.Run(context.Background(), m, prog, replay.Options{Shots: *shots, Mode: mode})
		if err != nil {
			fail(err)
		}
		switch {
		case stats.Safe && stats.Compiled:
			fmt.Printf("shot-replay engine: %d/%d shots replayed from the compiled schedule\n", stats.Replayed, stats.Shots)
		case stats.Safe:
			fmt.Printf("shot-replay engine: %d/%d shots replayed from the recorded schedule\n", stats.Replayed, stats.Shots)
		default:
			fmt.Printf("shot-replay engine: full simulation (%s)\n", stats.Reason)
		}
	}

	fmt.Printf("program completed: %d instructions executed\n", m.Controller.Steps)
	fmt.Printf("pulses played: %d, measurements: %d\n", m.PulsesPlayed, m.Measurements)
	fmt.Printf("CTPG memory footprint: %d bytes (12-bit samples)\n", m.MemoryFootprintBytes())
	fmt.Println("registers:")
	for r, v := range m.Controller.Regs {
		if v != 0 {
			fmt.Printf("  r%-2d = %d\n", r, v)
		}
	}
	for q := 0; q < *qubits; q++ {
		fmt.Printf("qubit %d final P(|1>) = %.4f\n", q, m.State.ProbExcited(q))
	}
	if m.Collector != nil {
		fmt.Printf("data collection unit: %d complete rounds, averages:\n", m.Collector.Rounds())
		for i, s := range m.Collector.Averages() {
			fmt.Printf("  S[%d] = %.4f\n", i, s)
		}
	}
	if *trace {
		fmt.Println("deterministic-domain timeline:")
		for _, e := range m.Trace() {
			fmt.Println("  " + e.String())
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}
}

// validateFlags rejects unknown -backend/-replay values and non-positive
// -shots before any machine is built, so a typo fails loudly instead of
// silently running under a default.
func validateFlags(backend, replayMode string, shots int) (replay.Mode, error) {
	if shots < 1 {
		return "", fmt.Errorf("-shots must be positive, got %d", shots)
	}
	switch core.Backend(backend) {
	case core.BackendDensity, core.BackendTrajectory:
	default:
		return "", fmt.Errorf("unknown -backend %q (want %q or %q)", backend, core.BackendDensity, core.BackendTrajectory)
	}
	mode, err := replay.ParseMode(replayMode)
	if err != nil {
		return "", fmt.Errorf("invalid -replay value: %w", err)
	}
	return mode, nil
}

// cpuProfiling records that a CPU profile is active, so fail can flush
// it before os.Exit skips the deferred stop.
var cpuProfiling bool

func fail(err error) {
	if cpuProfiling {
		pprof.StopCPUProfile()
	}
	fmt.Fprintln(os.Stderr, "quma-run:", err)
	os.Exit(1)
}
