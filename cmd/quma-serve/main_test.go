package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"quma/internal/expt"
	"quma/internal/service"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for _, tc := range []struct{ queue, workers, maxBatch int }{
		{0, 2, 64}, {4, 0, 64}, {4, 2, 0}, {-1, -1, -1},
	} {
		if err := run(":0", tc.queue, tc.workers, time.Minute, tc.maxBatch, ""); err == nil {
			t.Errorf("run accepted queue=%d workers=%d max-batch=%d", tc.queue, tc.workers, tc.maxBatch)
		}
	}
}

func TestRunOnceMatchesDirectExecution(t *testing.T) {
	batch := service.SubmitRequest{Experiments: []service.ExperimentRequest{
		{Type: "asm", Seed: 7, Rounds: 50,
			Program: "mov r15, 4000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
		{Type: "t1", Seed: 3, Backend: "trajectory", Rounds: 30},
	}}
	raw, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Capture runOnce's stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.Bytes()
	}()
	onceErr := runOnce(path)
	w.Close()
	os.Stdout = old
	data := <-done
	if onceErr != nil {
		t.Fatalf("runOnce: %v", onceErr)
	}

	var results []json.RawMessage
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("runOnce output is not a JSON array: %v\n%s", err, data)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	env := expt.NewEnv()
	for i, ex := range batch.Experiments {
		direct, err := service.Execute(env, ex)
		if err != nil {
			t.Fatal(err)
		}
		var got, want any
		if err := json.Unmarshal(results[i], &got); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(direct, &want); err != nil {
			t.Fatal(err)
		}
		gs, _ := json.Marshal(got)
		ws, _ := json.Marshal(want)
		if string(gs) != string(ws) {
			t.Fatalf("experiments[%d]: -once result differs from direct execution\nonce:   %s\ndirect: %s", i, gs, ws)
		}
	}
}

func TestRunOnceRejectsInvalidBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"experiments": [{"type": "warpdrive"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runOnce(path)
	if err == nil || !strings.Contains(err.Error(), "type") {
		t.Fatalf("want a validation error naming the field, got %v", err)
	}
}
