package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quma/internal/expt"
	"quma/internal/service"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for _, tc := range []struct{ queue, workers, maxBatch int }{
		{0, 2, 64}, {4, 0, 64}, {4, 2, 0}, {-1, -1, -1},
	} {
		o := options{addr: ":0", queue: tc.queue, workers: tc.workers, jobTimeout: time.Minute, maxBatch: tc.maxBatch}
		if err := run(o); err == nil {
			t.Errorf("run accepted queue=%d workers=%d max-batch=%d", tc.queue, tc.workers, tc.maxBatch)
		}
	}
	if err := run(options{addr: ":0", queue: 4, workers: 2, jobTimeout: time.Minute, maxBatch: 64, client: "http://127.0.0.1:1"}); err == nil {
		t.Error("run accepted -client with no batch file argument")
	}
	// A journal dir that cannot be created fails startup loudly (it is
	// the durability root, not a best-effort cache).
	if err := run(options{addr: ":0", queue: 4, workers: 2, jobTimeout: time.Minute, maxBatch: 64, journalDir: string([]byte{0})}); err == nil {
		t.Error("run accepted an uncreatable -journal-dir")
	}
	// An unreadable API-key file fails startup loudly too: silently
	// booting without the declared tenants would drop their quotas.
	if err := run(options{addr: ":0", queue: 4, workers: 2, jobTimeout: time.Minute, maxBatch: 64, apiKeys: "/nonexistent/tenants.json"}); err == nil {
		t.Error("run accepted an unreadable -api-keys file")
	}
}

func TestRetryDelayGrowsCapsAndHonorsHint(t *testing.T) {
	for attempt := 0; attempt < 10; attempt++ {
		d := retryDelay(attempt, "")
		if d < 100*time.Millisecond || d > 2*time.Second+500*time.Millisecond {
			t.Errorf("attempt %d: delay %v outside the capped-backoff envelope", attempt, d)
		}
	}
	if d := retryDelay(0, "1"); d < time.Second || d > 1250*time.Millisecond {
		t.Errorf("Retry-After 1 produced %v, want ~1s with jitter", d)
	}
	if d := retryDelay(0, "3600"); d > 7*time.Second {
		t.Errorf("huge Retry-After must be capped, got %v", d)
	}
}

func TestRunOnceMatchesDirectExecution(t *testing.T) {
	batch := service.SubmitRequest{Experiments: []service.ExperimentRequest{
		{Type: "asm", Seed: 7, Rounds: 50,
			Program: "mov r15, 4000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
		{Type: "t1", Seed: 3, Backend: "trajectory", Rounds: 30},
	}}
	raw, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Capture runOnce's stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.Bytes()
	}()
	onceErr := runOnce(path)
	w.Close()
	os.Stdout = old
	data := <-done
	if onceErr != nil {
		t.Fatalf("runOnce: %v", onceErr)
	}

	var results []json.RawMessage
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("runOnce output is not a JSON array: %v\n%s", err, data)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	env := expt.NewEnv()
	for i, ex := range batch.Experiments {
		direct, err := service.Execute(context.Background(), env, ex)
		if err != nil {
			t.Fatal(err)
		}
		var got, want any
		if err := json.Unmarshal(results[i], &got); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(direct, &want); err != nil {
			t.Fatal(err)
		}
		gs, _ := json.Marshal(got)
		ws, _ := json.Marshal(want)
		if string(gs) != string(ws) {
			t.Fatalf("experiments[%d]: -once result differs from direct execution\nonce:   %s\ndirect: %s", i, gs, ws)
		}
	}
}

// TestClientRetriesTransientRejections puts a flaky front door in front
// of a real server: the first submissions bounce with 429 + Retry-After,
// after which the batch must still complete and print byte-identically
// to -once (the client's backoff absorbing the rejections).
func TestClientRetriesTransientRejections(t *testing.T) {
	batch := service.SubmitRequest{Experiments: []service.ExperimentRequest{
		{Type: "asm", Seed: 7, Rounds: 40,
			Program: "mov r15, 4000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
	}}
	raw, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srv := service.New(service.Config{Workers: 1}).Start()
	defer srv.Drain()
	var rejected atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && rejected.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"resource_exhausted","reason":"queue_full","message":"injected"}}`))
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer hs.Close()

	var got bytes.Buffer
	if err := runClient(hs.URL, path, "", "", &got); err != nil {
		t.Fatalf("runClient: %v", err)
	}
	if n := rejected.Load(); n < 3 {
		t.Fatalf("flaky front door saw only %d submissions; retries never happened", n)
	}

	// Byte-identity with the -once path for the same batch.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.Bytes()
	}()
	onceErr := runOnce(path)
	w.Close()
	os.Stdout = old
	want := <-done
	if onceErr != nil {
		t.Fatalf("runOnce: %v", onceErr)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("-client output differs from -once output:\nclient: %s\nonce:   %s", got.Bytes(), want)
	}
}

// TestClientRidesThroughConnectionLoss slams the connection shut on the
// client's first status polls — the restart window of a crashed server —
// and asserts the poll loop retries through it and still prints the
// results byte-identically to -once.
func TestClientRidesThroughConnectionLoss(t *testing.T) {
	batch := service.SubmitRequest{Experiments: []service.ExperimentRequest{
		{Type: "asm", Seed: 7, Rounds: 40,
			Program: "mov r15, 4000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
	}}
	raw, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srv := service.New(service.Config{Workers: 1}).Start()
	defer srv.Drain()
	var dropped atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && dropped.Add(1) <= 2 {
			// Kill the TCP connection mid-request: the client sees a
			// reset/EOF, exactly what a crashed server produces.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("test server cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer hs.Close()

	var got bytes.Buffer
	if err := runClient(hs.URL, path, "", "", &got); err != nil {
		t.Fatalf("runClient did not ride through dropped connections: %v", err)
	}
	if dropped.Load() < 3 {
		t.Fatalf("front door dropped only %d GETs; the retry path never ran", dropped.Load())
	}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.Bytes()
	}()
	onceErr := runOnce(path)
	w.Close()
	os.Stdout = old
	want := <-done
	if onceErr != nil {
		t.Fatalf("runOnce: %v", onceErr)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("-client output differs from -once output after connection loss:\nclient: %s\nonce:   %s", got.Bytes(), want)
	}
}

// TestClientIdempotencyKeyDedupes submits the same batch twice under one
// key: the second submission must be answered with the replayed original
// job (200, not 202) and both invocations must print identical results.
func TestClientIdempotencyKeyDedupes(t *testing.T) {
	batch := service.SubmitRequest{Experiments: []service.ExperimentRequest{
		{Type: "asm", Seed: 7, Rounds: 40,
			Program: "mov r15, 4000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
	}}
	raw, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srv := service.New(service.Config{Workers: 1}).Start()
	defer srv.Drain()
	var statuses []int
	var mu sync.Mutex
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, r)
			mu.Lock()
			statuses = append(statuses, rec.Code)
			mu.Unlock()
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer hs.Close()

	var first, second bytes.Buffer
	if err := runClient(hs.URL, path, "dedupe-key", "", &first); err != nil {
		t.Fatalf("first runClient: %v", err)
	}
	if err := runClient(hs.URL, path, "dedupe-key", "", &second); err != nil {
		t.Fatalf("second runClient: %v", err)
	}
	mu.Lock()
	got := append([]int(nil), statuses...)
	mu.Unlock()
	if len(got) != 2 || got[0] != http.StatusAccepted || got[1] != http.StatusOK {
		t.Fatalf("submit statuses %v, want [202 200] (second deduped to the original job)", got)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("deduped submission printed different results:\nfirst:  %s\nsecond: %s", first.Bytes(), second.Bytes())
	}
}

func TestRunOnceRejectsInvalidBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"experiments": [{"type": "warpdrive"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runOnce(path)
	if err == nil || !strings.Contains(err.Error(), "type") {
		t.Fatalf("want a validation error naming the field, got %v", err)
	}
}
