// Command quma-serve runs the quma batch experiment service: a
// long-lived HTTP/JSON API (internal/service) that accepts batches of
// experiment requests, executes them on a bounded worker pool over a
// shared machine/schedule cache environment, and serves job status,
// results, and streaming progress.
//
// The service determinism contract makes it a drop-in for the one-shot
// CLIs: a job's result JSON is bit-identical to running the same
// experiments directly through internal/expt, regardless of load,
// queue order, or worker count.
//
// Usage:
//
//	quma-serve -addr :8077 -queue 64 -workers 4 -job-timeout 5m
//	quma-serve -once batch.json     # no HTTP: execute a batch file,
//	                                # print the results array (the CI
//	                                # smoke diffs this against the
//	                                # server's /result body)
//
// Shutdown: SIGINT/SIGTERM stops intake (503), finishes every queued
// and running job, then exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"quma/internal/expt"
	"quma/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "HTTP listen address")
		queue      = flag.Int("queue", 64, "job queue bound (full queue returns 429)")
		workers    = flag.Int("workers", 2, "concurrent job executors (results never depend on this)")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "per-job execution time bound")
		maxBatch   = flag.Int("max-batch", 64, "experiments allowed per job")
		once       = flag.String("once", "", "execute the batch request in this JSON file directly (no HTTP) and print the results array")
	)
	flag.Parse()
	if err := run(*addr, *queue, *workers, *jobTimeout, *maxBatch, *once); err != nil {
		fmt.Fprintln(os.Stderr, "quma-serve:", err)
		os.Exit(1)
	}
}

func run(addr string, queue, workers int, jobTimeout time.Duration, maxBatch int, once string) error {
	if queue <= 0 || workers <= 0 || maxBatch <= 0 {
		return fmt.Errorf("-queue, -workers and -max-batch must be positive")
	}
	if once != "" {
		return runOnce(once)
	}

	srv := service.New(service.Config{
		QueueSize:  queue,
		Workers:    workers,
		JobTimeout: jobTimeout,
		MaxBatch:   maxBatch,
	}).Start()
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("quma-serve listening on %s (queue %d, workers %d, job timeout %v)\n", addr, queue, workers, jobTimeout)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("quma-serve: %v — draining\n", sig)
		srv.Drain()
		// Every accepted job has finished; let in-flight status/result
		// responses complete instead of resetting their connections.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}

// runOnce executes a batch request file through the same validation and
// execution path the HTTP service uses, on a fresh environment, and
// prints exactly the JSON array the service's /result endpoint returns
// in its "results" field — so `quma-serve -once batch.json` and a live
// server given the same batch must produce byte-identical documents
// (the CI smoke asserts this).
func runOnce(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var req service.SubmitRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(req.Experiments) == 0 {
		return fmt.Errorf("%s: batch has no experiments", path)
	}
	var invalid []error
	for i, ex := range req.Experiments {
		for _, fe := range ex.Validate(i) {
			invalid = append(invalid, fmt.Errorf("%s: %w", path, fe))
		}
	}
	if len(invalid) > 0 {
		// Report every problem at once, exactly as the HTTP path's
		// structured 400 details would.
		return errors.Join(invalid...)
	}
	env := expt.NewEnv()
	results := make([]json.RawMessage, len(req.Experiments))
	for i, ex := range req.Experiments {
		if results[i], err = service.Execute(env, ex); err != nil {
			return fmt.Errorf("experiments[%d] (%s): %w", i, ex.Type, err)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
