// Command quma-serve runs the quma batch experiment service: a
// long-lived HTTP/JSON API (internal/service) that accepts batches of
// experiment requests, executes them on a bounded worker pool over a
// shared machine/schedule cache environment, and serves job status,
// results, and streaming progress.
//
// The service determinism contract makes it a drop-in for the one-shot
// CLIs: a job's result JSON is bit-identical to running the same
// experiments directly through internal/expt, regardless of load,
// queue order, or worker count.
//
// Usage:
//
//	quma-serve -addr :8077 -queue 64 -workers 4 -job-timeout 5m
//	quma-serve -once batch.json     # no HTTP: execute a batch file,
//	                                # print the results array (the CI
//	                                # smoke diffs this against the
//	                                # server's /result body)
//	quma-serve -client http://host:8077 batch.json
//	                                # submit the batch to a live server,
//	                                # retrying transient 429/503 and
//	                                # connection errors with capped
//	                                # exponential backoff, poll to
//	                                # completion, print the results array
//	                                # (byte-identical to -once output)
//	quma-serve -journal-dir /var/lib/quma/journal
//	                                # durable mode: accepted jobs survive
//	                                # a crash — on restart the journal
//	                                # replays, unfinished jobs re-execute
//	                                # deterministically under their
//	                                # original IDs
//	quma-serve -api-keys tenants.json -cache 1024
//	                                # multi-tenant mode: requests carrying
//	                                # Authorization: Bearer <key> run under
//	                                # their tenant's quotas and priority
//	                                # class; unauthenticated requests stay
//	                                # the anonymous tenant. -cache sizes
//	                                # the content-addressed result cache
//	                                # (0 disables): repeat submissions of
//	                                # an identical batch are answered
//	                                # immediately from the retained
//	                                # original job, byte-identical by
//	                                # construction
//	quma-serve -client http://host:8077 -api-key k3y batch.json
//	                                # authenticate the client submission
//	                                # as the tenant owning k3y
//
// The -api-keys file is JSON: {"tenants": [{"name": ..., "key": ...,
// "class": "interactive"|"batch", "max_queued_jobs": N,
// "max_experiments_in_flight": M}, ...]} — see service.TenantConfig.
//
// Durability: with -journal-dir set, every accepted job is appended to
// an fsync'd write-ahead log before the submission is acknowledged,
// and every state transition after it. A killed server restarted on
// the same directory recovers: finished jobs serve their journaled
// results byte-for-byte, unfinished jobs re-execute — and because
// results are pure functions of requests, re-execution reproduces the
// exact bytes a crash-free run would have produced. Clients pair this
// with the Idempotency-Key header (-key) to make resubmission after a
// connection loss safe: a duplicate submission returns the original
// job instead of creating a new one.
//
// Shutdown: SIGINT/SIGTERM stops intake (503), finishes every queued
// and running job, then exits. With -drain-timeout set, jobs still
// running when the deadline expires are canceled through the job
// context (they end `canceled`, retaining no partial results) so the
// process exit time is bounded.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"quma/internal/expt"
	"quma/internal/journal"
	"quma/internal/service"
)

// options collects the parsed flags; one struct rather than a positional
// parade so tests can state only what they exercise.
type options struct {
	addr         string
	queue        int
	workers      int
	jobTimeout   time.Duration
	maxBatch     int
	drainTimeout time.Duration
	once         string
	client       string
	journalDir   string
	key          string
	apiKeys      string
	apiKey       string
	cacheSize    int
	args         []string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8077", "HTTP listen address")
	flag.IntVar(&o.queue, "queue", 64, "job queue bound (full queue returns 429)")
	flag.IntVar(&o.workers, "workers", 2, "concurrent job executors (results never depend on this)")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 5*time.Minute, "per-job execution time bound")
	flag.IntVar(&o.maxBatch, "max-batch", 64, "experiments allowed per job")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 0, "hard deadline for shutdown drain; expiring cancels in-flight jobs (0 waits forever)")
	flag.StringVar(&o.once, "once", "", "execute the batch request in this JSON file directly (no HTTP) and print the results array")
	flag.StringVar(&o.client, "client", "", "submit the batch file given as the positional argument to this server URL and print the results array")
	flag.StringVar(&o.journalDir, "journal-dir", "", "directory for the durable job journal; accepted jobs survive a crash and recover on restart (empty disables durability)")
	flag.StringVar(&o.key, "key", "", "Idempotency-Key header for -client submissions: resubmitting the same batch under the same key returns the original job instead of a duplicate")
	flag.StringVar(&o.apiKeys, "api-keys", "", "tenant API-key file (JSON); enables per-tenant quotas and priority classes, anonymous requests still admitted (empty leaves the server anonymous-only)")
	flag.StringVar(&o.apiKey, "api-key", "", "bearer API key for -client requests (Authorization: Bearer <key>)")
	flag.IntVar(&o.cacheSize, "cache", 256, "content-addressed result cache entries: repeat submissions of an identical batch are served from the retained original job (0 disables)")
	flag.Parse()
	o.args = flag.Args()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "quma-serve:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.queue <= 0 || o.workers <= 0 || o.maxBatch <= 0 {
		return fmt.Errorf("-queue, -workers and -max-batch must be positive")
	}
	if o.once != "" {
		return runOnce(o.once)
	}
	if o.client != "" {
		if len(o.args) != 1 {
			return fmt.Errorf("-client needs exactly one batch file argument, got %d", len(o.args))
		}
		return runClient(o.client, o.args[0], o.key, o.apiKey, os.Stdout)
	}

	cfg := service.Config{
		QueueSize:  o.queue,
		Workers:    o.workers,
		JobTimeout: o.jobTimeout,
		MaxBatch:   o.maxBatch,
		CacheSize:  o.cacheSize,
	}
	if o.cacheSize <= 0 {
		cfg.CacheSize = -1 // flag 0 means off; Config 0 means default
	}
	if o.apiKeys != "" {
		tenants, err := service.LoadAPIKeys(o.apiKeys)
		if err != nil {
			return fmt.Errorf("load api keys: %w", err)
		}
		cfg.Tenants = tenants
		fmt.Printf("quma-serve: %d tenants loaded from %s\n", len(tenants), o.apiKeys)
	}
	if o.journalDir != "" {
		jr, err := journal.Open(journal.Options{Dir: o.journalDir})
		if err != nil {
			return fmt.Errorf("open journal: %w", err)
		}
		// The server journals through jr until Drain returns; close after.
		defer jr.Close()
		cfg.Journal = jr
		st := jr.Stats()
		fmt.Printf("quma-serve: journal %s replayed %d records across %d segments (%d jobs)\n",
			o.journalDir, st.Records, st.Segments, st.Jobs)
		if st.TruncatedBytes > 0 || st.DroppedSegments > 0 {
			fmt.Printf("quma-serve: journal recovered with truncation: %d bytes of torn tail, %d later segments dropped\n",
				st.TruncatedBytes, st.DroppedSegments)
		}
	}
	srv := service.New(cfg).Start()
	hs := &http.Server{Addr: o.addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("quma-serve listening on %s (queue %d, workers %d, job timeout %v)\n", o.addr, o.queue, o.workers, o.jobTimeout)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("quma-serve: %v — draining\n", sig)
		srv.DrainTimeout(o.drainTimeout)
		// Every accepted job has reached a terminal state; let in-flight
		// status/result responses complete instead of resetting their
		// connections.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}

// retryDelay computes the backoff before retry `attempt` (0-based):
// capped exponential growth from 100ms with up to 25% random jitter, or
// the server's Retry-After hint (seconds) when one was given — the hint
// still gets jitter so a herd of clients told "1" does not return as a
// herd. The jitter source is math/rand/v2, which is seeded per process:
// a fleet of clients restarted together (the crash-recovery stampede)
// draws distinct jitter, where the old global math/rand source gave
// every process the identical backoff schedule and defeated the herd
// protection it existed for.
func retryDelay(attempt int, retryAfter string) time.Duration {
	d := 100 * time.Millisecond << attempt
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	if s, err := strconv.Atoi(retryAfter); err == nil && s >= 0 {
		d = time.Duration(s) * time.Second
		if d > 5*time.Second {
			d = 5 * time.Second
		}
	}
	return d + time.Duration(rand.Int64N(int64(d)/4+1))
}

// drainClose drains a response body before closing it so the underlying
// HTTP connection returns to the keep-alive pool. Closing an undrained
// body (the decoder stops at the JSON value, leaving the trailing
// newline) forces a new TCP connection per request — under a retry storm
// that multiplies exactly when the server is least able to absorb it.
// The drain is capped: a response too large to be one of ours is not
// worth a connection.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}

// runClient drives a live server through one batch: submit (retrying
// transient rejections — 429 queue_full with its Retry-After hint, 503
// draining, connection errors while the server is still coming up),
// poll status to a terminal state, fetch the result, and print the
// results array byte-identically to what -once prints for the same
// batch (the CI smoke diffs the two).
//
// Connection errors during polling are retryable with the same capped
// backoff: against a journaled server (-journal-dir) a crash-restart
// mid-job is invisible to the client beyond latency — the job recovers
// under the same ID and the poll loop rides through the outage.
func runClient(base, path, key, apiKey string, out io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	hc := &http.Client{Timeout: 30 * time.Second}
	const maxAttempts = 8
	authorize := func(req *http.Request) {
		if apiKey != "" {
			req.Header.Set("Authorization", "Bearer "+apiKey)
		}
	}
	// getRetry absorbs connection refused/reset — the window where the
	// server is restarting — and hands back the first real response.
	getRetry := func(url string) (*http.Response, error) {
		for attempt := 0; ; attempt++ {
			hreq, err := http.NewRequest(http.MethodGet, url, nil)
			if err != nil {
				return nil, err
			}
			authorize(hreq)
			resp, err := hc.Do(hreq)
			if err == nil {
				return resp, nil
			}
			if attempt >= maxAttempts-1 {
				return nil, fmt.Errorf("after %d attempts: %w", maxAttempts, err)
			}
			time.Sleep(retryDelay(attempt, ""))
		}
	}
	var id string
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		if key != "" {
			hreq.Header.Set("Idempotency-Key", key)
		}
		authorize(hreq)
		resp, err := hc.Do(hreq)
		var retryAfter string
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				err = rerr
			} else {
				switch resp.StatusCode {
				// 200 is the idempotent-replay response: the key was
				// already used for this batch and the original job (possibly
				// already finished) is returned.
				case http.StatusAccepted, http.StatusOK:
					var acc struct {
						ID string `json:"id"`
					}
					if err := json.Unmarshal(body, &acc); err != nil {
						return fmt.Errorf("submit response: %w", err)
					}
					id = acc.ID
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					retryAfter = resp.Header.Get("Retry-After")
					err = fmt.Errorf("submit rejected: %d %s", resp.StatusCode, bytes.TrimSpace(body))
				default:
					// Structurally bad requests never become good by
					// retrying.
					return fmt.Errorf("submit failed: %d %s", resp.StatusCode, bytes.TrimSpace(body))
				}
			}
		}
		if id != "" {
			break
		}
		if attempt >= maxAttempts-1 {
			return fmt.Errorf("submit did not succeed after %d attempts: %w", maxAttempts, err)
		}
		time.Sleep(retryDelay(attempt, retryAfter))
	}
	for {
		resp, err := getRetry(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var st struct {
			Status string `json:"status"`
			Code   string `json:"code"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		drainClose(resp.Body)
		if err != nil {
			return err
		}
		switch st.Status {
		case service.StatusDone:
		case service.StatusFailed, service.StatusCanceled:
			return fmt.Errorf("job %s %s (%s): %s", id, st.Status, st.Code, st.Error)
		default:
			time.Sleep(25 * time.Millisecond)
			continue
		}
		break
	}
	resp, err := getRetry(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result fetch failed: %d %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var doc struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	// The encoder re-indents the raw messages, normalizing whitespace to
	// exactly what runOnce prints for the same batch.
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc.Results)
}

// runOnce executes a batch request file through the same validation and
// execution path the HTTP service uses, on a fresh environment, and
// prints exactly the JSON array the service's /result endpoint returns
// in its "results" field — so `quma-serve -once batch.json` and a live
// server given the same batch must produce byte-identical documents
// (the CI smoke asserts this).
func runOnce(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var req service.SubmitRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(req.Experiments) == 0 {
		return fmt.Errorf("%s: batch has no experiments", path)
	}
	var invalid []error
	for i, ex := range req.Experiments {
		for _, fe := range ex.Validate(i) {
			invalid = append(invalid, fmt.Errorf("%s: %w", path, fe))
		}
	}
	if len(invalid) > 0 {
		// Report every problem at once, exactly as the HTTP path's
		// structured 400 details would.
		return errors.Join(invalid...)
	}
	env := expt.NewEnv()
	results := make([]json.RawMessage, len(req.Experiments))
	for i, ex := range req.Experiments {
		if results[i], err = service.Execute(context.Background(), env, ex); err != nil {
			return fmt.Errorf("experiments[%d] (%s): %w", i, ex.Type, err)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
