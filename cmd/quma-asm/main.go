// Command quma-asm assembles QuMA assembly source (the combined auxiliary
// classical + QuMIS instruction set) into 32-bit binary words, and
// disassembles binaries back to listings.
//
// Usage:
//
//	quma-asm [-o out.bin] prog.qasm        assemble to binary (hex words)
//	quma-asm -d prog.bin                   disassemble
//	quma-asm -list prog.qasm               assemble and print the listing
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"quma/internal/asm"
	"quma/internal/isa"
)

func main() {
	var (
		out     = flag.String("o", "", "output file (default: stdout)")
		disasm  = flag.Bool("d", false, "disassemble a binary instead of assembling")
		listing = flag.Bool("list", false, "print the program listing after assembling")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: quma-asm [-o out] [-d] [-list] <file>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	syms := isa.StandardSymbols()
	if *disasm {
		var words []uint32
		for lineNo, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			var word uint32
			if _, err := fmt.Sscanf(line, "%x", &word); err != nil {
				fail(fmt.Errorf("line %d: %q is not a hex word", lineNo+1, line))
			}
			words = append(words, word)
		}
		prog, err := isa.DecodeProgram(words, syms)
		if err != nil {
			fail(err)
		}
		fmt.Fprint(bw, prog.String())
		return
	}

	prog, err := asm.Assemble(string(data))
	if err != nil {
		fail(err)
	}
	if *listing {
		fmt.Fprint(bw, prog.String())
		return
	}
	words, err := isa.EncodeProgram(prog, syms)
	if err != nil {
		fail(err)
	}
	for _, word := range words {
		fmt.Fprintf(bw, "%08x\n", word)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "quma-asm:", err)
	os.Exit(1)
}
