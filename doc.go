// Package quma is a full-system reproduction, in pure Go, of
// "An Experimental Microarchitecture for a Superconducting Quantum
// Processor" (Fu et al., MICRO 2017) — the QuMA control microarchitecture.
//
// The paper's FPGA control box and transmon chip are replaced by
// simulated substrates with the same interfaces and timing behaviour; the
// microarchitecture itself (codeword-based event control, queue-based
// event timing control, multilevel instruction decoding) is implemented
// cycle-accurately. ROADMAP.md records the architecture invariants and
// open items, and bench_test.go is the harness that regenerates every
// table and figure of the paper's evaluation.
//
// # Pluggable quantum-state backends
//
// The control pipeline never touches a concrete state type: core.Machine
// evolves the simulated chip through the qphys.State interface
// (Apply1/Apply2/ApplyKraus1/Measure/Reset/ProbExcited/ExpectationZ/
// NumQubits plus the Purity/ReducedQubit diagnostics), selected by
// core.Config.Backend and by the -backend flag of cmd/quma-run. Two
// implementations exist:
//
//   - qphys.Density — the exact backend. O(4^n) memory, every channel
//     applied as a full Kraus sum, so a single run yields ensemble
//     averages and mixed states. Register size 1–8. Pick it for
//     few-qubit physics validation, purity/entanglement diagnostics, and
//     anything that must be exact per run.
//
//   - qphys.Trajectory — the pure-state Monte-Carlo backend. O(2^n)
//     memory; every channel application samples one Kraus operator by
//     the Born rule from the machine's deterministic PRNG, so each shot
//     is one stochastic trajectory and means converge to the density
//     result (cross-backend agreement is pinned by tests in
//     internal/expt/backend_test.go, and the unitary kernels are pinned
//     to Density at 1e-12 in internal/qphys/trajectory_test.go).
//     Register size 1–16 — past the density wall — and substantially
//     faster per shot (BenchmarkBackendRepCode). Pick it for multi-shot
//     experiments, wide registers (the 9+-qubit repetition code), and
//     throughput-bound sweeps.
//
// Backend selection rides through the sweep engine untouched: workers
// deep-copy the Config, so cfg.Backend applies to every sweep point, and
// per-point seeds fix each trajectory, keeping results bit-identical for
// any worker count.
//
// # Simulator performance architecture
//
// The simulated chip is the hot path, and several layers keep it fast:
//
//   - In-place sparse gate kernels (internal/qphys/kernels.go and
//     trajectory.go). A k-qubit gate only couples basis indices differing
//     on its k bits, so both backends update their state block-by-block
//     in place — O(4^n) per single-qubit gate on Density, O(2^n) on
//     Trajectory — with zero heap allocation in steady state (the
//     full-register Apply/ApplyKraus paths reuse scratch buffers held on
//     Density). The trajectory kernels additionally exploit operator
//     structure: channels whose operators are all diagonal or
//     anti-diagonal (every DecoherenceChannel) price all candidates from
//     one population pass, and diagonal two-qubit unitaries (the CZ flux
//     pulse) touch only the amplitudes their non-unit entries scale. New
//     evolution code must use these kernels, not dense embedding;
//     kernels_test.go holds the property tests pinning them to the dense
//     reference.
//
//   - Channel caches in core.Machine. advance() memoizes the decoherence
//     Kraus set and detuning rotation per (qubit, idle duration), the
//     rotation cache stores the demodulated REquator matrix per
//     (qubit, codeword, SSB phase), and the SSB period itself is computed
//     once in New — the steady-state shot loop performs no channel
//     construction, no demodulation, and no allocation.
//
//   - The analytic readout path. The measurement chain samples the
//     matched-filter integration result S directly from its exact
//     sampling distribution (readout.MDU.SampleMeasure: S is Gaussian
//     with mean Re[mean·W] and sd σ·|W|/√n), consuming one PRNG variate
//     where per-sample trace synthesis consumed 2n — identical
//     statistics (assignment fidelity, collector averages), pinned to
//     the trace path by distribution tests. SynthesizeTrace remains the
//     sample-level reference and the multiplexed-readout route.
//
//   - The parallel sweep engine (internal/expt/sweep.go). Experiments
//     decompose into independent sweep points (delay values, Rabi
//     amplitude scales, AllXY pairs, RB (length, trial) pairs,
//     repetition-code round chunks); each point runs on a pooled
//     core.Machine seeded with DeriveSeed(baseSeed, index) across a
//     worker pool. Machines are reused across points via
//     Machine.ResetState (bit-identical to a fresh construction), each
//     distinct program text assembles once per sweep, and the seeding
//     contract makes results bit-identical for any worker count
//     (Params.Workers; 0 = all CPUs) on both backends.
//
// # Shot-replay execution engine
//
// internal/replay exploits the paper's own architectural split — a
// deterministic classical microarchitecture driving a stochastic quantum
// substrate — to avoid re-simulating the deterministic half per shot.
// The shot loop of every experiment lives in the engine (replay.Run with
// Shots as a parameter), not in the assembly Round_Loop. In ModeAuto the
// engine runs three leading shots through the full pipeline (shot 0
// carries the cold-start transient; shots 1 and 2 are recorded via
// core.Probe), then replays the recorded quantum schedule — idle
// channels, pulse rotations, flux unitaries, measurement chains — against
// the state backend for all remaining shots.
//
// Invariants:
//
//   - Safety detection is conservative and two-fold. The execution
//     controller tracks measurement-tainted and cross-shot register
//     state (exec.Controller.ReplayUnsafeReason): any classical
//     consumption of a measurement result (feedback) or of state
//     surviving from a previous shot marks the program unsafe. And the
//     two recorded steady-state schedules must be identical, which also
//     catches timing-induced drift (e.g. a shot period that is not a
//     multiple of the SSB period, which would change demodulated
//     rotations from shot to shot).
//   - PRNG consumption order is preserved exactly: replay applies the
//     same operations in the same TD order — trajectory channel
//     sampling, projection, integration-noise draw — so replayed results
//     are bit-identical to full simulation (enforced per experiment, per
//     backend, per worker count by internal/expt/replay_test.go).
//   - Unsafe programs transparently fall back to full per-shot
//     simulation with identical results (examples/feedback, the
//     corrected repetition code, and the phase code's active reset all
//     exercise this). Correctness never depends on the detector saying
//     yes.
//   - Replayed shots perform no classical execution: controller
//     registers, data memory, the digital-output log, and the trace
//     timeline reflect only fully simulated shots. Results flow through
//     the data collection unit and the engine's per-shot measurement
//     stream, which replay maintains exactly.
//
// # Compiled replay schedules
//
// Replay's default engine compiles the recorded schedule once into
// specialized closure-free steps (internal/replay/compile.go lowering
// into qphys.SchedOp) instead of interpreting it op-by-op; ModeInterp
// keeps the interpreter as the A/B baseline. The compiled-schedule
// invariants:
//
//   - PRNG-order preservation. Compilation never adds, removes, or
//     reorders a PRNG draw: one variate per multi-operator channel in
//     recorded TD order, then the projection and integration draws of
//     each measurement. Every pricing decision feeds on the same float64
//     inputs as the interpreted path, so the selected Kraus operators,
//     outcomes, and results are bit-identical across off/interp/compiled
//     for every decoherent configuration. Two qualified slacks remain:
//     the sign of zeros from real-coefficient scaling (observable by
//     nothing), and — only when decoherence is disabled outright —
//     unitary fusion, which makes amplitudes float-equivalent rather
//     than bit-exact (measured results still agree; regression-tested).
//   - Per-schedule tables. Each decoherence channel's axis-aligned
//     pricing coefficients and operator tables are hoisted out of the
//     shot loop into one qphys.ChannelTable, deduplicated by the
//     machine cache's Kraus-slice identity; adjacent deterministic
//     single-qubit unitaries on one qubit fuse into one matrix
//     (qphys.FuseUnitaries, pinned to the dense reference at 1e-12).
//   - Population carries. A kernel that already sweeps the state
//     (channel application, same-qubit unitary, projection) accumulates
//     the next consumer's populations in exactly the addition order a
//     standalone pass would use, eliminating most per-channel population
//     passes; carries thread through phase-safe gates (CZ) and across
//     consecutive shots (the steady-state schedule is circular).
//   - Devirtualized dispatch. A type switch binds the whole shot loop to
//     the concrete backend: *qphys.Trajectory runs one RunSchedule pass
//     per shot with the hot channel path inlined, *qphys.Density gets
//     direct concrete-type calls and hoisted operator/conjugate tables,
//     and a qphys.State interface fallback covers future backends.
//   - Zero allocations per shot. All scratch (step slice, tables,
//     measurement buffer) is allocated at compile time, and the compiled
//     form is memoized on the machine (core.Machine.ReplayCache, keyed
//     by program identity), validated entry-for-entry against each
//     fresh recording — pooled machines compile each program once per
//     lifetime, however many programs interleave on them.
//
// # Shot-sharded parallel replay
//
// Above the sweep-point level, internal/expt shards the shot range of a
// single job across a worker pool (expt.ShotShardPlan, shotshard.go).
// The shard plan is a pure function of the shot count — fixed chunks of
// ShotShardSize shots, independent of worker count, like chunkRounds —
// so it is part of the determinism contract, not a scheduling detail:
// shard k runs on its own pooled machine seeded DeriveSeed(pointSeed, k),
// executes its own lead/detect shots plus its slice of the replay loop,
// and results merge in shard order (measurement streams buffered
// per shard and delivered with global shot indices; collector averages
// recomputed exactly from per-shard sums and counts). The result is
// bit-identical for any ShotWorkers value (0 = all CPUs), on both
// backends, in every replay mode. Shot counts at or below ShotShardSize
// keep the legacy single PRNG stream exactly; above it the stream layout
// changes — statistically equal, pinned at 5σ against the unsharded path
// by internal/conformance — which is why the service result schema
// version bumped (service.ResultSchemaVersion). The chunked
// repetition-code experiments keep their historical fixed chunk plan and
// DeriveSeed2 seeds, so their results are bit-identical to every
// prior release. Sharded error handling preserves the taxonomy: an
// injected or real panic in one shard cancels its siblings but is
// reported itself (never masked by the sibling aborts it caused), and
// cancellation mid-shard still aborts without perturbing
// (internal/expt/cancel_test.go, internal/faultinject).
//
// # Batch experiment service
//
// internal/service and cmd/quma-serve put a long-lived, concurrent
// HTTP/JSON front end over the experiment layer: batches of experiment
// requests (coherence sweeps, AllXY, Rabi, RB, repetition/phase codes,
// raw assembly programs) are validated, queued on a bounded job queue
// (429 on overflow, 503 while draining), and executed by a worker pool
// over one shared expt.Env — the caller-controlled cache environment
// that promotes the per-sweep program cache and machine pools (and with
// them every compiled replay schedule) to service lifetime. The service
// determinism contract: a job's result is bit-identical to a direct
// internal/expt call with the same (seed, params), regardless of
// concurrency, queue order, worker count, or which pooled machine
// served it. internal/conformance adds the randomized differential
// layer that keeps the whole execution matrix — {density, trajectory} ×
// {off, interp, auto, compiled} — agreeing on generated programs, safe
// and unsafe alike. See the package documentation of internal/service
// for the API and the invariant list.
//
// The service is preemptible and fault-isolated: every experiment entry
// point takes a context.Context that flows through the sweep engine
// into the replay shot loop (checked with bounded staleness, so
// cancellation and deadlines land mid-sweep), DELETE /v1/jobs/{id}
// cancels queued or running jobs, draining can enforce a hard deadline,
// and worker panics are recovered into structured per-job failures
// without taking the process down. Cancellation can only abort a job,
// never perturb one — a completing job stays bit-identical to an
// uncancellable run, and a canceled job returns no partial results.
// internal/faultinject holds the deterministic fault plans and the
// chaos suite that pins availability, the stable error taxonomy, and
// post-fault byte-identity.
//
// The service is also crash-safe: with a journal directory configured
// (quma-serve -journal-dir), every accepted job is recorded in an
// append-only, fsync'd, checksummed log (internal/journal) before the
// submission is acknowledged, and a restarted server replays the log —
// finished jobs keep their journaled results, unfinished jobs
// re-execute deterministically under their original IDs, and a torn
// tail from a mid-write crash is truncated away rather than failing
// startup. Determinism is what turns this at-least-once re-execution
// into exactly-once-observable semantics; the Idempotency-Key request
// header extends the same guarantee to client resubmission. The
// kill-based crash harness (internal/service/crash_test.go and the CI
// crash-recovery smoke) SIGKILLs live servers mid-sweep, with and
// without injected disk faults (faultinject disk plans), and asserts
// nothing accepted is lost and every recovered byte matches an
// uncrashed run.
//
// Determinism also makes the service memoizable and multi-tenant:
// every batch reduces to a canonical form (result-neutral scheduling
// knobs scrubbed, everything else hashed), and a bounded
// content-addressed cache answers repeat submissions of a cached form
// terminal-immediately with the original retained job — byte-identical
// by construction, rebuilt from the journal across restarts. Static
// API-key tenants (quma-serve -api-keys) add per-tenant admission
// quotas (429 with a backlog-derived Retry-After) and priority
// classes drained by a deterministic weighted-fair stride scheduler;
// anonymous traffic keeps the pre-tenancy behavior unchanged.
//
// # Shot-batched execution
//
// The trajectory backend can run groups of shot shards in lockstep on
// a structure-of-arrays executor (internal/qphys.TrajBatch): one lane
// per shard, amplitudes interleaved lane-minor so each schedule step
// becomes flat vectorized passes (AVX2/AVX-512 on amd64, with
// register-resident specializations at eight lanes) instead of L
// scalar state walks. Lanes keep the schema-v2 shard contract exactly
// — shard k's rng stream still starts at DeriveSeed(pointSeed, k) and
// shards merge in shard order — and every kernel reproduces the scalar
// executor's float operations and rounding order, so a batched run's
// result bytes are identical to the scalar sharded path (and to the
// pre-sharding builds) per lane by construction, not by tolerance.
// Lanes that diverge (an anti-diagonal jump, a dense Kraus selection,
// a mid-schedule branch) fall out to the scalar tail for that step and
// rejoin; steady state allocates nothing per shot. The lane width is a
// result-neutral scheduling knob (expt.RepCodeParams.BatchLanes, shard
// groups of up to that many lanes), and QUMA_NOSIMD=1 disables the
// SIMD kernels at process level — every suite passes both ways, and
// the conformance suite pins batched-vs-scalar byte identity per
// kernel and per experiment.
package quma
