// Package quma is a full-system reproduction, in pure Go, of
// "An Experimental Microarchitecture for a Superconducting Quantum
// Processor" (Fu et al., MICRO 2017) — the QuMA control microarchitecture.
//
// The paper's FPGA control box and transmon chip are replaced by
// simulated substrates with the same interfaces and timing behaviour; the
// microarchitecture itself (codeword-based event control, queue-based
// event timing control, multilevel instruction decoding) is implemented
// cycle-accurately. See DESIGN.md for the system inventory, EXPERIMENTS.md
// for the paper-vs-measured record, and bench_test.go for the harness
// that regenerates every table and figure.
package quma
