// Package quma is a full-system reproduction, in pure Go, of
// "An Experimental Microarchitecture for a Superconducting Quantum
// Processor" (Fu et al., MICRO 2017) — the QuMA control microarchitecture.
//
// The paper's FPGA control box and transmon chip are replaced by
// simulated substrates with the same interfaces and timing behaviour; the
// microarchitecture itself (codeword-based event control, queue-based
// event timing control, multilevel instruction decoding) is implemented
// cycle-accurately. See DESIGN.md for the system inventory, EXPERIMENTS.md
// for the paper-vs-measured record, and bench_test.go for the harness
// that regenerates every table and figure.
//
// # Simulator performance architecture
//
// The simulated chip is the hot path, and three layers keep it fast:
//
//   - In-place sparse gate kernels (internal/qphys/kernels.go). A k-qubit
//     gate only couples basis indices differing on its k bits, so
//     Density.Apply1/Apply2/ApplyKraus1 update ρ block-by-block in place:
//     O(4^n) per single-qubit gate instead of the O(8^n) dense
//     Embed-then-multiply path, with zero heap allocation in steady state
//     (the full-register Apply/ApplyKraus paths reuse scratch buffers held
//     on Density). New evolution code must use these kernels, not dense
//     embedding; kernels_test.go holds the property tests pinning them to
//     the dense reference.
//
//   - Channel caches in core.Machine. advance() memoizes the decoherence
//     Kraus set and detuning rotation per (qubit, idle duration), and the
//     rotation cache stores the demodulated REquator matrix per
//     (qubit, codeword, SSB phase) — the steady-state shot loop performs
//     no channel construction, no demodulation, and no allocation.
//
//   - The parallel sweep engine (internal/expt/sweep.go). Experiments
//     decompose into independent sweep points (delay values, AllXY pairs,
//     RB (length, trial) pairs, repetition-code round chunks); each point
//     runs on its own core.Machine seeded with DeriveSeed(baseSeed, index)
//     across a worker pool. The seeding contract makes results
//     bit-identical for any worker count (Params.Workers; 0 = all CPUs).
package quma
