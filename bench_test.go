// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see EXPERIMENTS.md for the mapping), plus ablations for the
// design choices called out in DESIGN.md. Custom metrics report the
// scientific quantity each artifact is about (deviation, bytes, fitted
// times); ns/op reports the simulation cost.
//
// Run with: go test -bench=. -benchmem
package quma

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"quma/internal/aps2"
	"quma/internal/asm"
	"quma/internal/awg"
	"quma/internal/clock"
	"quma/internal/core"
	"quma/internal/exec"
	"quma/internal/expt"
	"quma/internal/isa"
	"quma/internal/microcode"
	"quma/internal/pulse"
	"quma/internal/qphys"
	"quma/internal/readout"
	"quma/internal/replay"
	"quma/internal/timing"
	"quma/internal/uop"
)

// BenchmarkFig9AllXY regenerates the paper's Figure 9 staircase (E1): 42
// AllXY points averaged over a reduced round count, reporting the RMS
// deviation from the ideal staircase (paper: 0.012 at N=25600).
func BenchmarkFig9AllXY(b *testing.B) {
	var dev float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		p := expt.DefaultAllXYParams()
		p.Rounds = 50
		res, err := expt.RunAllXY(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		dev = res.Deviation
	}
	b.ReportMetric(dev, "deviation")
}

// BenchmarkTable1LUT measures the codeword-triggered pulse generation
// path (E2): lookup + trigger + playback scheduling for the Table 1
// library.
func BenchmarkTable1LUT(b *testing.B) {
	c := awg.NewCTPG()
	if err := c.UploadStandardLibrary(0); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(c.MemoryBytes(12)), "LUT-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := awg.Codeword(i % 7)
		if _, err := c.Trigger(cw, clock.Cycle(i*4)); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			c.ResetPlaybacks()
		}
	}
}

// BenchmarkTables2to4QueueFill measures the execution-controller fill
// path of the Tables 2–4 scenario (E3): one AllXY round decoded into the
// queues and drained.
func BenchmarkTables2to4QueueFill(b *testing.B) {
	prog := asm.MustAssemble(`
mov r15, 40000
QNopReg r15
Pulse {q0}, I
Wait 4
Pulse {q0}, I
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qmb := exec.NewQMB(nil, nil, nil)
		ctrl := exec.NewController(microcode.StandardControlStore(), qmb)
		if err := ctrl.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := ctrl.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Decoding measures the multilevel decoding path (E4):
// QIS → QuMIS expansion through the Q control store.
func BenchmarkTable5Decoding(b *testing.B) {
	cs := microcode.StandardControlStore()
	instr := []isa.Instruction{
		{Op: isa.OpApply, QAddr: isa.MaskQ(0), UOp: "X180"},
		{Op: isa.OpApply, QAddr: isa.MaskQ(0), UOp: "Z"},
		{Op: isa.OpApply2, QAddr: isa.MaskQ(0, 1), UOp: "CNOT", Imm: 1},
		{Op: isa.OpMeasure, QAddr: isa.MaskQ(0), Rd: 7},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range instr {
			if _, err := cs.Expand(in); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMemoryFootprint reports the §5.1.1 memory comparison (E5):
// QuMA's flat lookup table vs combination-linear waveform memory.
func BenchmarkMemoryFootprint(b *testing.B) {
	model := aps2.DefaultCostModel()
	var q, w int
	for i := 0; i < b.N; i++ {
		q = model.QuMAMemoryBytes(1)
		w = model.WaveformMemoryBytes(1, 21, 2)
	}
	b.ReportMetric(float64(q), "quma-bytes")
	b.ReportMetric(float64(w), "waveform-bytes")
	b.ReportMetric(float64(w)/float64(q), "ratio")
}

// BenchmarkTimingSensitivity measures the §4.2.3 effect (E6): demodulate
// a π pulse at shifted start times; the metric reports the axis shift per
// 5 ns, which must be 90° at 50 MHz SSB.
func BenchmarkTimingSensitivity(b *testing.B) {
	env := pulse.GaussianEnvelope(20, 4, pulse.CalibratedGaussianAmp(20, 4, math.Pi))
	w := pulse.Synthesize(env, pulse.DefaultSSBHz, 0)
	var shift float64
	for i := 0; i < b.N; i++ {
		phi0, _ := pulse.Rotation(w, pulse.DefaultSSBHz, 0)
		phi5, _ := pulse.Rotation(w, pulse.DefaultSSBHz, 5)
		shift = math.Mod(phi5-phi0+2*math.Pi, 2*math.Pi) * 180 / math.Pi
	}
	b.ReportMetric(shift, "deg-per-5ns")
}

// BenchmarkFig5Timeline runs the one-round trace of Figures 3/5 (E7).
func BenchmarkFig5Timeline(b *testing.B) {
	src := `
Wait 40000
Pulse {q0}, X90
Wait 4
Pulse {q0}, Y180
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.TraceEvents = true
		m, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.RunAssembly(src); err != nil {
			b.Fatal(err)
		}
		if len(m.Trace()) != 4 {
			b.Fatal("wrong trace length")
		}
	}
}

// BenchmarkT1 runs the T1 experiment (E8) and reports the fitted T1 in
// microseconds (configured: 30 µs).
func BenchmarkT1(b *testing.B) {
	var tau float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		p := expt.DefaultSweepParams()
		p.Rounds = 60
		res, err := expt.RunT1(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		tau = res.Fit.Tau * 1e6
	}
	b.ReportMetric(tau, "T1-µs")
}

// BenchmarkRamsey runs the Ramsey experiment (E8) and reports the fitted
// fringe frequency in kHz (configured detuning: 100 kHz).
func BenchmarkRamsey(b *testing.B) {
	var freq float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		qp := qphys.DefaultQubitParams()
		qp.FreqDetuningHz = 100e3
		cfg.Qubit = []qphys.QubitParams{qp}
		p := expt.DefaultSweepParams()
		p.Rounds = 60
		p.DelaysCycles = nil
		for k := 0; k < 40; k++ {
			p.DelaysCycles = append(p.DelaysCycles, k*200)
		}
		res, err := expt.RunRamsey(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		freq = res.Fit.Freq / 1e3
	}
	b.ReportMetric(freq, "fringe-kHz")
}

// BenchmarkEcho runs the echo experiment (E8) and reports the fitted
// echo time constant in microseconds.
func BenchmarkEcho(b *testing.B) {
	var tau float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		qp := qphys.DefaultQubitParams()
		qp.FreqDetuningHz = 100e3
		cfg.Qubit = []qphys.QubitParams{qp}
		p := expt.DefaultSweepParams()
		p.Rounds = 60
		res, err := expt.RunEcho(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		tau = res.Fit.Tau * 1e6
	}
	b.ReportMetric(tau, "T2echo-µs")
}

// BenchmarkRB runs randomized benchmarking (E9) and reports the fitted
// error per Clifford.
func BenchmarkRB(b *testing.B) {
	var epc float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		p := expt.DefaultRBParams()
		p.Trials = 3
		p.Rounds = 40
		res, err := expt.RunRB(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		epc = res.Fit.ErrorPerClifford()
	}
	b.ReportMetric(epc, "err/Clifford")
}

// BenchmarkQuMAvsAPS2 exercises the §6 comparison (E10): the APS2-style
// sequencer with TDM synchronization stalls vs QuMA's stall-free
// label-based timing; metrics report the stall cycles per synchronized
// round and the memory ratio.
func BenchmarkQuMAvsAPS2(b *testing.B) {
	model := aps2.DefaultCostModel()
	var stalls clock.Cycle
	for i := 0; i < b.N; i++ {
		mod := aps2.NewModule("awg")
		for s := 0; s < 21; s++ {
			mod.LoadSegment(s, 40)
		}
		prog := []aps2.Instr{}
		for s := 0; s < 21; s++ {
			prog = append(prog,
				aps2.Instr{Kind: aps2.OpWaitTrigger},
				aps2.Instr{Kind: aps2.OpOutput, Segment: s},
			)
		}
		prog = append(prog, aps2.Instr{Kind: aps2.OpHalt})
		mod.Program = prog
		sys := aps2.NewSystem(mod)
		res, err := sys.Run(1000)
		if err != nil {
			b.Fatal(err)
		}
		stalls = res.StallCycles
	}
	b.ReportMetric(float64(stalls), "stall-cycles")
	b.ReportMetric(float64(model.WaveformMemoryBytes(1, 21, 2))/float64(model.QuMAMemoryBytes(1)), "mem-ratio")
}

// BenchmarkAlgorithm2CNOT runs the microcoded CNOT end to end (E11).
func BenchmarkAlgorithm2CNOT(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.NumQubits = 2
	cfg.Qubit = []qphys.QubitParams{{}, {}}
	for i := 0; i < b.N; i++ {
		m, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.RunAssembly("Wait 8\nPulse {q0}, X180\nWait 4\nApply2 CNOT, q1, q0\nhalt"); err != nil {
			b.Fatal(err)
		}
		if p := m.State.ProbExcited(1); math.Abs(p-1) > 1e-3 {
			b.Fatalf("CNOT broken: P=%v", p)
		}
	}
}

// BenchmarkFeedbackActiveReset measures the feedback loop (E14): one
// measure-branch-correct cycle through the whole stack.
func BenchmarkFeedbackActiveReset(b *testing.B) {
	src := `
mov r15, 40000
mov r6, 0
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
Wait 340
beq r7, r6, Done
Pulse {q0}, X180
Wait 4
Done:
halt
`
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		m, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.RunAssembly(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkTimingControllerEventDriven demonstrates that the timing
// controller's cost is O(events), not O(cycles): the same event count
// with 4-cycle vs 40000-cycle intervals must cost the same.
func BenchmarkTimingControllerEventDriven(b *testing.B) {
	for _, interval := range []clock.Cycle{4, 40000} {
		b.Run(fmt.Sprintf("interval-%d", interval), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc := timing.NewController()
				q := timing.NewEventQueue[int]("p", nil)
				tc.Register(q)
				for k := 1; k <= 1000; k++ {
					tc.TQ.Push(timing.TimePoint{Interval: interval, Label: timing.Label(k)})
					q.Push(k, timing.Label(k))
				}
				tc.Start()
				if _, err := tc.Drain(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHorizontalMicrocode compares one horizontal Pulse addressing 8
// qubits against 8 vertical single-qubit Pulses: the horizontal form
// costs one instruction decode instead of eight.
func BenchmarkHorizontalMicrocode(b *testing.B) {
	all := isa.MaskQ(0, 1, 2, 3, 4, 5, 6, 7)
	b.Run("horizontal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qmb := exec.NewQMB(nil, nil, nil)
			for k := 0; k < 100; k++ {
				qmb.Wait(4)
				if err := qmb.Submit(isa.Instruction{Op: isa.OpPulse, QAddr: all, UOp: "X180"}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("vertical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qmb := exec.NewQMB(nil, nil, nil)
			for k := 0; k < 100; k++ {
				qmb.Wait(4)
				for q := 0; q < 8; q++ {
					if err := qmb.Submit(isa.Instruction{Op: isa.OpPulse, QAddr: isa.MaskQ(q), UOp: "X180"}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// BenchmarkSeqZMicroOpExpansion measures the µop-level Z emulation (E12):
// one micro-operation expanding to two codeword triggers, vs the
// microcode-level expansion that sends two separate pulse events through
// the timing control unit. The µop route halves the timing-control
// traffic.
func BenchmarkSeqZMicroOpExpansion(b *testing.B) {
	b.Run("uop-level", func(b *testing.B) {
		u := newSeqZUnit(b)
		for i := 0; i < b.N; i++ {
			trs, err := u.Expand("Z", clock.Cycle(i*8))
			if err != nil {
				b.Fatal(err)
			}
			if len(trs) != 2 {
				b.Fatal("bad expansion")
			}
		}
	})
	b.Run("microcode-level", func(b *testing.B) {
		cs := microcode.StandardControlStore()
		in := isa.Instruction{Op: isa.OpApply, QAddr: isa.MaskQ(0), UOp: "Z"}
		for i := 0; i < b.N; i++ {
			mis, err := cs.Expand(in)
			if err != nil {
				b.Fatal(err)
			}
			if len(mis) != 4 {
				b.Fatal("bad expansion")
			}
		}
	})
}

// BenchmarkEncodeDecode measures the binary ISA round trip (E13).
func BenchmarkEncodeDecode(b *testing.B) {
	syms := isa.StandardSymbols()
	in := isa.Instruction{Op: isa.OpPulse, QAddr: isa.MaskQ(2), UOp: "X180"}
	for i := 0; i < b.N; i++ {
		w, err := isa.Encode(in, syms)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := isa.Decode(w, syms); err != nil {
			b.Fatal(err)
		}
	}
}

func newSeqZUnit(b *testing.B) *uop.Unit {
	b.Helper()
	u := uop.NewUnit()
	if err := u.Define("Z", uop.SeqZ()); err != nil {
		b.Fatal(err)
	}
	return u
}

// BenchmarkRabiCalibration runs the amplitude-calibration sweep (E15)
// and reports the extracted π-pulse scale (1.0 = nominal calibration
// correct).
func BenchmarkRabiCalibration(b *testing.B) {
	var piScale float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		p := expt.DefaultRabiParams()
		p.Rounds = 60
		res, err := expt.RunRabi(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		piScale = res.PiScale
	}
	b.ReportMetric(piScale, "pi-scale")
}

// BenchmarkRepCode runs the feedback-corrected repetition code (E16)
// and reports the bare and corrected logical error rates.
func BenchmarkRepCode(b *testing.B) {
	var bare, corrected float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		p := expt.DefaultRepCodeParams()
		p.Rounds = 100
		res, err := expt.RunRepCode(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		bare, corrected = res.Unprotected, res.Protected
	}
	b.ReportMetric(bare, "bare-err")
	b.ReportMetric(corrected, "corrected-err")
}

// BenchmarkShardedRepCode measures the shot-sharding lever on a
// shot-heavy repetition-code job (E18): 100k replay-safe code rounds
// through Env.RunProgram — one shard per expt.ShotShardSize shots — at
// 1 vs NumCPU shot workers, on the density backend at the paper-era
// d = 3 and on the trajectory backend at the d = 7 scale only it can
// reach. Results are bit-identical across the worker axis (the shard
// plan and seeds are pure functions of the shot count); only the wall
// clock moves, which is exactly what ns/op isolates.
func BenchmarkShardedRepCode(b *testing.B) {
	cases := []struct {
		name    string
		backend core.Backend
		d       int
	}{
		{"density-d3", core.BackendDensity, 3},
		{"trajectory-d7", core.BackendTrajectory, 7},
	}
	// The full 100k-shot job is the acceptance measurement; -short (the
	// CI bench smoke) scales it down to breakage-detection size.
	shots := 100_000
	if testing.Short() {
		shots = 10_000
	}
	workerAxis := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		workerAxis = workerAxis[:1] // the axes coincide; skip the duplicate
	}
	for _, c := range cases {
		p := expt.DefaultRepCodeParams()
		p.DataQubits = c.d
		src := expt.RepCodeShotProgram(p, false)
		for _, sw := range workerAxis {
			b.Run(fmt.Sprintf("%s/shot-workers-%d", c.name, sw), func(b *testing.B) {
				b.ReportAllocs()
				env := expt.NewEnv()
				cfg := core.DefaultConfig()
				cfg.Backend = c.backend
				cfg.NumQubits = 2*c.d - 1
				cfg.Seed = 1
				for i := 0; i < b.N; i++ {
					if _, err := env.RunProgram(context.Background(), cfg, expt.ProgramParams{
						Source: src, Shots: shots, ShotWorkers: sw,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkVLIWIssueRate bundles the AllXY program at increasing widths
// (E17, the paper's §6 proposal) and reports instructions per bundle.
func BenchmarkVLIWIssueRate(b *testing.B) {
	prog := asm.MustAssemble(expt.AllXYProgram(expt.DefaultAllXYParams()))
	for _, width := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("width-%d", width), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				bp, err := exec.BundleProgram(prog, width)
				if err != nil {
					b.Fatal(err)
				}
				rate = bp.IssueRate()
			}
			b.ReportMetric(rate, "instrs/bundle")
		})
	}
}

// BenchmarkVLIWExecution compares scalar vs width-4 VLIW execution of
// the same pulse-heavy program (ablation for DESIGN.md §5).
func BenchmarkVLIWExecution(b *testing.B) {
	src := `
mov r15, 400
mov r1, 0
mov r2, 20
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 4
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`
	prog := asm.MustAssemble(src)
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qmb := exec.NewQMB(nil, nil, nil)
			c := exec.NewController(microcode.StandardControlStore(), qmb)
			if err := c.Load(prog); err != nil {
				b.Fatal(err)
			}
			if err := c.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vliw-4", func(b *testing.B) {
		bp, err := exec.BundleProgram(prog, 4)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			qmb := exec.NewQMB(nil, nil, nil)
			vc := exec.NewVLIWController(exec.NewController(microcode.StandardControlStore(), qmb), bp)
			if err := vc.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMuxReadout measures the §5.1.2 multiplexed-readout path
// (E19): one combined 4-channel trace demultiplexed and discriminated.
func BenchmarkMuxReadout(b *testing.B) {
	p, err := readout.DefaultMuxParams(4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := readout.CalibrateMux(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	trace, err := readout.SynthesizeMuxTrace(p, []int{0, 1, 0, 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	errs := 0
	for i := 0; i < b.N; i++ {
		results, _ := m.Measure(trace)
		if results[1] != 1 || results[3] != 1 {
			errs++
		}
	}
	b.ReportMetric(float64(errs)/float64(b.N), "err-rate")
	b.ReportMetric(4, "qubits-per-MDU")
}

// BenchmarkICacheLocality compares the quantum-instruction-cache
// behaviour of the compact Algorithm-3 loop against its unrolled
// equivalent (E20): hit rates and modelled fetch stalls.
func BenchmarkICacheLocality(b *testing.B) {
	loop := asm.MustAssemble(`
mov r15, 100
mov r1, 0
mov r2, 200
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	var hitRate float64
	for i := 0; i < b.N; i++ {
		qmb := exec.NewQMB(nil, nil, nil)
		ctrl := exec.NewController(microcode.StandardControlStore(), qmb)
		ic, err := exec.NewICache(64, 4, 20)
		if err != nil {
			b.Fatal(err)
		}
		ctrl.ICache = ic
		if err := ctrl.Load(loop); err != nil {
			b.Fatal(err)
		}
		if err := ctrl.Run(0); err != nil {
			b.Fatal(err)
		}
		hitRate = ic.HitRate()
	}
	b.ReportMetric(hitRate, "hit-rate")
}

// --- Gate-kernel micro-benchmarks (simulator hot path) ---
//
// The in-place kernels must report 0 allocs/op: every gate and idle step
// of every shot goes through them, so a single allocation here multiplies
// into millions per experiment.

// BenchmarkApply1 measures the single-qubit unitary kernel at n=3.
func BenchmarkApply1(b *testing.B) {
	d := qphys.NewDensity(3)
	u := qphys.RX(0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Apply1(u, 1)
	}
}

// BenchmarkApply2 measures the two-qubit unitary kernel at n=3 (the CZ
// flux-pulse path).
func BenchmarkApply2(b *testing.B) {
	d := qphys.NewDensity(3)
	cz := qphys.CZ()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Apply2(cz, 0, 2)
	}
}

// BenchmarkKraus1 measures the single-qubit channel kernel at n=3 with
// the full 8-operator decoherence set of advance().
func BenchmarkKraus1(b *testing.B) {
	d := qphys.NewDensity(3)
	d.Apply1(qphys.RX(math.Pi/2), 1)
	ops := qphys.DecoherenceChannel(20e-9, qphys.DefaultQubitParams())
	b.ReportMetric(float64(len(ops)), "kraus-ops")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ApplyKraus1(ops, 1)
	}
}

// --- Trajectory-backend kernels (must also report 0 allocs/op) ---

// BenchmarkTrajectoryApply1 measures the statevector single-qubit kernel
// at n=12 — a register size the density backend cannot even allocate.
func BenchmarkTrajectoryApply1(b *testing.B) {
	tr := qphys.NewTrajectory(12, rand.New(rand.NewSource(1)))
	u := qphys.RX(0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Apply1(u, 5)
	}
}

// BenchmarkTrajectoryApply2 measures the statevector two-qubit kernel at
// n=12.
func BenchmarkTrajectoryApply2(b *testing.B) {
	tr := qphys.NewTrajectory(12, rand.New(rand.NewSource(1)))
	cz := qphys.CZ()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Apply2(cz, 3, 9)
	}
}

// BenchmarkTrajectoryKraus1 measures Monte-Carlo channel unwinding at
// n=12 with the full 8-operator decoherence set of advance().
func BenchmarkTrajectoryKraus1(b *testing.B) {
	tr := qphys.NewTrajectory(12, rand.New(rand.NewSource(1)))
	tr.Apply1(qphys.RX(math.Pi/2), 5)
	ops := qphys.DecoherenceChannel(20e-9, qphys.DefaultQubitParams())
	b.ReportMetric(float64(len(ops)), "kraus-ops")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ApplyKraus1(ops, 5)
	}
}

// BenchmarkBackendRepCode runs the 5-qubit repetition-code memory
// experiment at equal shot count on both backends: the trajectory
// backend's O(2^n) state should make it the faster substrate for this
// multi-shot workload.
func BenchmarkBackendRepCode(b *testing.B) {
	for _, backend := range []core.Backend{core.BackendDensity, core.BackendTrajectory} {
		b.Run(string(backend), func(b *testing.B) {
			var bare, corrected float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Backend = backend
				cfg.Seed = int64(i + 1)
				p := expt.DefaultRepCodeParams()
				p.Rounds = 100
				res, err := expt.RunRepCode(cfg, p)
				if err != nil {
					b.Fatal(err)
				}
				bare, corrected = res.Unprotected, res.Protected
			}
			b.ReportMetric(bare, "bare-err")
			b.ReportMetric(corrected, "corrected-err")
		})
	}
}

// BenchmarkBackendRB runs randomized benchmarking at equal shot count on
// both backends.
func BenchmarkBackendRB(b *testing.B) {
	for _, backend := range []core.Backend{core.BackendDensity, core.BackendTrajectory} {
		b.Run(string(backend), func(b *testing.B) {
			var epc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Backend = backend
				cfg.Seed = int64(i + 1)
				p := expt.DefaultRBParams()
				p.Trials = 3
				p.Rounds = 40
				res, err := expt.RunRB(cfg, p)
				if err != nil {
					b.Fatal(err)
				}
				epc = res.Fit.ErrorPerClifford()
			}
			b.ReportMetric(epc, "err/Clifford")
		})
	}
}

// BenchmarkBackendRepCode9Q runs the distance-5 (9-qubit) code — the
// scenario only the trajectory backend can reach.
func BenchmarkBackendRepCode9Q(b *testing.B) {
	var protected float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Backend = core.BackendTrajectory
		cfg.Seed = int64(i + 1)
		p := expt.DefaultRepCodeParams()
		p.DataQubits = 5
		p.Rounds = 60
		p.WaitCycles = 800
		res, err := expt.RunRepCode(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		protected = res.Protected
	}
	b.ReportMetric(protected, "protected-err")
}

// --- Shot-replay engine benchmarks (full simulation vs replay) ---
//
// Each group runs the same experiment at equal shot count with the
// engine forced off (every shot through fetch/decode/QMB/timing queues),
// in interpreted replay (the PR 3 engine: op-by-op through the
// qphys.State interface), and in compiled replay (per-schedule fused
// kernels, PR 4). Results are bit-identical by the engine contract; only
// ns/op moves.

// replayBenchModes maps engine modes to their sub-benchmark names.
var replayBenchModes = []struct {
	mode replay.Mode
	name string
}{
	{replay.ModeOff, "full"},
	{replay.ModeInterp, "interp"},
	{replay.ModeCompiled, "compiled"},
}

// BenchmarkReplayRB runs randomized benchmarking — the pulse-heaviest
// replay-safe workload (up to ~350 pulses per shot at m=128) — on both
// backends.
func BenchmarkReplayRB(b *testing.B) {
	for _, backend := range []core.Backend{core.BackendDensity, core.BackendTrajectory} {
		for _, bm := range replayBenchModes {
			mode := bm.mode
			b.Run(string(backend)+"/"+bm.name, func(b *testing.B) {
				var epc float64
				for i := 0; i < b.N; i++ {
					cfg := core.DefaultConfig()
					cfg.Backend = backend
					cfg.Seed = int64(i + 1)
					p := expt.DefaultRBParams()
					p.Trials = 3
					p.Rounds = 120
					p.Replay = mode
					res, err := expt.RunRB(cfg, p)
					if err != nil {
						b.Fatal(err)
					}
					epc = res.Fit.ErrorPerClifford()
				}
				b.ReportMetric(epc, "err/Clifford")
			})
		}
	}
}

// BenchmarkReplayRepCode drives the syndromes-only repetition-code memory
// round (encode, CNOT syndrome extraction, 5 measurements per shot)
// directly through the engine at equal shot count — the physics-bound
// workload the compiled-schedule engine (PR 4) is measured on
// (trajectory backend, compiled vs the PR 3 interp number).
func BenchmarkReplayRepCode(b *testing.B) {
	p := expt.DefaultRepCodeParams()
	src := expt.RepCodeShotProgram(p, false)
	prog := asm.MustAssemble(src)
	const shots = 400
	for _, backend := range []core.Backend{core.BackendDensity, core.BackendTrajectory} {
		cfg := core.DefaultConfig()
		cfg.Backend = backend
		cfg.NumQubits = 5
		m, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, bm := range replayBenchModes {
			mode := bm.mode
			b.Run(string(backend)+"/"+bm.name, func(b *testing.B) {
				var logicalErr float64
				for i := 0; i < b.N; i++ {
					m.ResetState(int64(i + 1))
					errs := 0
					st, err := replay.Run(context.Background(), m, prog, replay.Options{
						Shots: shots,
						Mode:  mode,
						OnShot: func(_ int, md []replay.MD) {
							ones := 0
							for _, r := range md[len(md)-3:] {
								ones += r.Result
							}
							if ones < 2 {
								errs++
							}
						},
					})
					if err != nil {
						b.Fatal(err)
					}
					if mode != replay.ModeOff && !st.Safe {
						b.Fatalf("syndromes-only round must be replay-safe: %+v", st)
					}
					if mode == replay.ModeCompiled && !st.Compiled {
						b.Fatalf("compiled mode must use the compiled engine: %+v", st)
					}
					logicalErr = float64(errs) / shots
				}
				b.ReportMetric(logicalErr, "logical-err")
				b.ReportMetric(shots, "shots")
			})
		}
	}
}

// BenchmarkSweepEngine measures the parallel sweep engine on the T1
// delay sweep: 1 worker vs one worker per CPU, same results either way.
func BenchmarkSweepEngine(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "all-cpus"
		}
		b.Run(name, func(b *testing.B) {
			var tau float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Seed = int64(i + 1)
				p := expt.DefaultSweepParams()
				p.Rounds = 60
				p.Workers = workers
				res, err := expt.RunT1(cfg, p)
				if err != nil {
					b.Fatal(err)
				}
				tau = res.Fit.Tau * 1e6
			}
			b.ReportMetric(tau, "T1-µs")
		})
	}
}

// BenchmarkPhaseCode runs the dephasing-protected memory (E21).
func BenchmarkPhaseCode(b *testing.B) {
	var bare, protected float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(i + 1)
		for q := 0; q < 5; q++ {
			cfg.Qubit = append(cfg.Qubit, expt.DephasingQubit(20e-6))
		}
		p := expt.DefaultRepCodeParams()
		p.Rounds = 80
		p.WaitCycles = 800
		res, err := expt.RunPhaseCode(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		bare, protected = res.Bare, res.Protected
	}
	b.ReportMetric(bare, "bare-err")
	b.ReportMetric(protected, "protected-err")
}
