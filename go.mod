module quma

go 1.24
