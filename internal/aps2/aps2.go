// Package aps2 models the baseline architecture QuMA is evaluated
// against in the paper's Section 6: the Raytheon BBN APS2 system — a
// distributed set of arbitrary-pulse-sequencer modules coordinated by a
// trigger distribution module (TDM) over an interconnect network.
//
// Contrasts captured by the model, following the paper:
//
//   - one binary per module (vs QuMA's single binary);
//   - low-level output instructions referencing waveform memory, with
//     idle waveforms implementing timing (vs explicit timing at the
//     instruction level);
//   - synchronization via TDM triggers, during which a module can process
//     no output instructions (the stall the paper calls out);
//   - whole-combination waveform memory that grows with the number of
//     operation combinations (vs QuMA's fixed primitive lookup table).
//
// The package provides both an executable sequencer model (to count
// stalls and playback behaviour) and the analytic memory/upload cost
// model used in the comparison benchmarks.
package aps2

import (
	"fmt"

	"quma/internal/clock"
)

// OpKind enumerates APS2 sequencer instructions.
type OpKind int

const (
	// OpOutput plays a waveform segment from waveform memory.
	OpOutput OpKind = iota
	// OpWaitTrigger blocks until the TDM trigger arrives; no output
	// instructions are processed while waiting.
	OpWaitTrigger
	// OpGoto jumps to an instruction index (loops).
	OpGoto
	// OpHalt ends the sequence.
	OpHalt
)

// Instr is one APS2 sequencer instruction.
type Instr struct {
	Kind    OpKind
	Segment int // OpOutput: waveform-memory segment id
	Target  int // OpGoto: destination index
}

// Module is one APS2 module: private waveform memory plus a sequencer.
type Module struct {
	Name string
	// SegmentSamples maps segment id → length in samples (content is
	// irrelevant to the cost model; lengths drive memory and timing).
	SegmentSamples map[int]int
	Program        []Instr

	// BitsPerSample is the storage accounting resolution.
	BitsPerSample int
}

// NewModule returns an empty module with 12-bit accounting (matching the
// paper's memory arithmetic).
func NewModule(name string) *Module {
	return &Module{Name: name, SegmentSamples: map[int]int{}, BitsPerSample: 12}
}

// LoadSegment stores a waveform segment of n samples.
func (m *Module) LoadSegment(id, samples int) { m.SegmentSamples[id] = samples }

// MemoryBytes returns the waveform-memory footprint (I and Q channels).
func (m *Module) MemoryBytes() int {
	total := 0
	for _, n := range m.SegmentSamples {
		total += (2*n*m.BitsPerSample + 7) / 8
	}
	return total
}

// Playback records one segment playback with its start time.
type Playback struct {
	Module  string
	Segment int
	Start   clock.Sample
}

// System is a set of modules plus the trigger distribution module.
type System struct {
	Modules []*Module
	// TriggerLatencyCycles is the interconnect latency from TDM trigger
	// issue to module release.
	TriggerLatencyCycles clock.Cycle
	// TriggerPeriodCycles is the spacing of TDM trigger broadcasts.
	TriggerPeriodCycles clock.Cycle
}

// NewSystem returns a system with representative trigger timing.
func NewSystem(modules ...*Module) *System {
	return &System{Modules: modules, TriggerLatencyCycles: 4, TriggerPeriodCycles: 2000}
}

// RunResult summarizes a system execution.
type RunResult struct {
	Playbacks []Playback
	// StallCycles is the total time modules spent blocked in WaitTrigger
	// — time during which, per the paper, "no output instructions can be
	// processed".
	StallCycles clock.Cycle
	// Triggers is the number of TDM trigger broadcasts consumed.
	Triggers int
}

// Run executes all module programs against the shared TDM trigger
// schedule and returns playbacks and stall accounting. Each module runs
// its own program; WaitTrigger blocks until the next trigger broadcast
// after the module's current time.
func (s *System) Run(maxInstr int) (*RunResult, error) {
	res := &RunResult{}
	triggersUsed := 0
	for _, mod := range s.Modules {
		var t clock.Cycle
		pc := 0
		steps := 0
		for pc >= 0 && pc < len(mod.Program) {
			if steps++; steps > maxInstr {
				return nil, fmt.Errorf("aps2: module %s exceeded %d instructions", mod.Name, maxInstr)
			}
			in := mod.Program[pc]
			switch in.Kind {
			case OpOutput:
				n, ok := mod.SegmentSamples[in.Segment]
				if !ok {
					return nil, fmt.Errorf("aps2: module %s: missing segment %d", mod.Name, in.Segment)
				}
				res.Playbacks = append(res.Playbacks, Playback{Module: mod.Name, Segment: in.Segment, Start: t.Samples()})
				t += clock.Sample(n).Cycles()
				pc++
			case OpWaitTrigger:
				// Next trigger boundary strictly after t, plus latency.
				period := s.TriggerPeriodCycles
				if period == 0 {
					period = 1
				}
				k := (uint64(t) / uint64(period)) + 1
				release := clock.Cycle(k*uint64(period)) + s.TriggerLatencyCycles
				res.StallCycles += release - t
				t = release
				triggersUsed++
				pc++
			case OpGoto:
				pc = in.Target
			case OpHalt:
				pc = -1
			default:
				return nil, fmt.Errorf("aps2: module %s: bad opcode %d", mod.Name, in.Kind)
			}
		}
	}
	res.Triggers = triggersUsed
	return res, nil
}

// CostModel compares the memory and reconfiguration costs of the two
// control approaches for an AllXY-style workload.
type CostModel struct {
	// PulseSamples is the per-pulse sample count (20 for the paper's
	// single-qubit gates).
	PulseSamples int
	// BitsPerSample is the accounting resolution (12 in the paper).
	BitsPerSample int
	// PrimitivePulses is the size of QuMA's lookup table (7 for AllXY).
	PrimitivePulses int
	// UploadBytesPerSec models the configuration link.
	UploadBytesPerSec float64
}

// DefaultCostModel returns the paper's accounting parameters.
func DefaultCostModel() CostModel {
	return CostModel{PulseSamples: 20, BitsPerSample: 12, PrimitivePulses: 7, UploadBytesPerSec: 10e6}
}

func (c CostModel) pulseBytes() int {
	return (2*c.PulseSamples*c.BitsPerSample + 7) / 8
}

// QuMAMemoryBytes returns the codeword-scheme memory: the primitive
// lookup table per qubit, independent of the number of combinations.
func (c CostModel) QuMAMemoryBytes(qubits int) int {
	return qubits * c.PrimitivePulses * c.pulseBytes()
}

// WaveformMemoryBytes returns the conventional scheme's memory: one
// pre-combined waveform per combination per qubit.
func (c CostModel) WaveformMemoryBytes(qubits, combinations, pulsesPerCombination int) int {
	return qubits * combinations * pulsesPerCombination * c.pulseBytes()
}

// ReconfigureUploadBytes returns the bytes pushed over the link when one
// combination's sequence changes: QuMA uploads nothing (instructions
// only); the waveform scheme re-uploads the whole combination.
func (c CostModel) ReconfigureUploadBytes(waveformScheme bool, pulsesPerCombination int) int {
	if !waveformScheme {
		return 0
	}
	return pulsesPerCombination * c.pulseBytes()
}

// UploadSeconds converts bytes to link time.
func (c CostModel) UploadSeconds(bytes int) float64 {
	return float64(bytes) / c.UploadBytesPerSec
}
