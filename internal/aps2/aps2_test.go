package aps2

import "testing"

func TestModuleMemoryAccounting(t *testing.T) {
	m := NewModule("awg1")
	m.LoadSegment(0, 20) // one 20 ns pulse
	if got := m.MemoryBytes(); got != 60 {
		t.Errorf("segment memory = %d, want 60", got)
	}
	// 21 two-pulse combinations.
	m2 := NewModule("awg2")
	for i := 0; i < 21; i++ {
		m2.LoadSegment(i, 40)
	}
	if got := m2.MemoryBytes(); got != 2520 {
		t.Errorf("combination memory = %d, want 2520", got)
	}
}

func TestSequencerPlaysSegments(t *testing.T) {
	m := NewModule("awg1")
	m.LoadSegment(0, 20)
	m.LoadSegment(1, 40)
	m.Program = []Instr{
		{Kind: OpOutput, Segment: 0},
		{Kind: OpOutput, Segment: 1},
		{Kind: OpHalt},
	}
	sys := NewSystem(m)
	res, err := sys.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Playbacks) != 2 {
		t.Fatalf("playbacks = %v", res.Playbacks)
	}
	if res.Playbacks[1].Start != 20 {
		t.Errorf("second segment starts at %d, want 20 (back to back)", res.Playbacks[1].Start)
	}
	if res.StallCycles != 0 {
		t.Errorf("stalls = %d, want 0", res.StallCycles)
	}
}

func TestWaitTriggerStalls(t *testing.T) {
	m := NewModule("awg1")
	m.LoadSegment(0, 20)
	m.Program = []Instr{
		{Kind: OpOutput, Segment: 0},
		{Kind: OpWaitTrigger},
		{Kind: OpOutput, Segment: 0},
		{Kind: OpHalt},
	}
	sys := NewSystem(m)
	res, err := sys.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles == 0 {
		t.Error("WaitTrigger must stall the sequencer")
	}
	if res.Triggers != 1 {
		t.Errorf("triggers = %d, want 1", res.Triggers)
	}
	// Output resumes only after the trigger boundary + latency.
	want := (sys.TriggerPeriodCycles + sys.TriggerLatencyCycles).Samples()
	if res.Playbacks[1].Start != want {
		t.Errorf("post-trigger output at %d, want %d", res.Playbacks[1].Start, want)
	}
}

func TestGotoLoop(t *testing.T) {
	m := NewModule("awg1")
	m.LoadSegment(0, 20)
	m.Program = []Instr{
		{Kind: OpOutput, Segment: 0},
		{Kind: OpGoto, Target: 0},
	}
	sys := NewSystem(m)
	if _, err := sys.Run(50); err == nil {
		t.Error("unbounded loop must hit the instruction cap")
	}
}

func TestMissingSegment(t *testing.T) {
	m := NewModule("awg1")
	m.Program = []Instr{{Kind: OpOutput, Segment: 9}}
	sys := NewSystem(m)
	if _, err := sys.Run(10); err == nil {
		t.Error("missing segment must fail")
	}
}

func TestCostModelMatchesPaperNumbers(t *testing.T) {
	c := DefaultCostModel()
	// Paper §5.1.1: QuMA stores 7 pulses = 420 bytes; the conventional
	// method stores 21 two-pulse waveforms = 2520 bytes.
	if got := c.QuMAMemoryBytes(1); got != 420 {
		t.Errorf("QuMA memory = %d, want 420", got)
	}
	if got := c.WaveformMemoryBytes(1, 21, 2); got != 2520 {
		t.Errorf("waveform memory = %d, want 2520", got)
	}
}

func TestCostModelScaling(t *testing.T) {
	c := DefaultCostModel()
	// QuMA memory is flat in combinations; waveform memory is linear.
	q1 := c.QuMAMemoryBytes(1)
	for _, combos := range []int{10, 100, 1000} {
		if c.QuMAMemoryBytes(1) != q1 {
			t.Fatal("QuMA memory must not depend on combinations")
		}
		w := c.WaveformMemoryBytes(1, combos, 2)
		if w != combos*2*60 {
			t.Errorf("waveform memory for %d combos = %d", combos, w)
		}
	}
	// Both scale linearly in qubits.
	if c.QuMAMemoryBytes(8) != 8*q1 {
		t.Error("QuMA memory must scale linearly in qubits")
	}
}

func TestReconfigureCost(t *testing.T) {
	c := DefaultCostModel()
	if c.ReconfigureUploadBytes(false, 2) != 0 {
		t.Error("QuMA reconfiguration must be free of waveform uploads")
	}
	if got := c.ReconfigureUploadBytes(true, 2); got != 120 {
		t.Errorf("waveform reconfiguration = %d bytes, want 120", got)
	}
	if c.UploadSeconds(120) <= 0 {
		t.Error("upload time must be positive")
	}
}

func TestMultiModuleIndependentTimelines(t *testing.T) {
	a := NewModule("a")
	a.LoadSegment(0, 20)
	a.Program = []Instr{{Kind: OpOutput, Segment: 0}, {Kind: OpHalt}}
	b := NewModule("b")
	b.LoadSegment(0, 40)
	b.Program = []Instr{{Kind: OpWaitTrigger}, {Kind: OpOutput, Segment: 0}, {Kind: OpHalt}}
	sys := NewSystem(a, b)
	res, err := sys.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Playbacks) != 2 {
		t.Fatalf("playbacks = %v", res.Playbacks)
	}
	if res.Playbacks[0].Start == res.Playbacks[1].Start {
		t.Error("modules must have independent timelines")
	}
}
