package microcode

import (
	"strings"
	"testing"

	"quma/internal/isa"
)

func TestExpandApplyPrimitive(t *testing.T) {
	cs := StandardControlStore()
	out, err := cs.Expand(isa.Instruction{Op: isa.OpApply, QAddr: isa.MaskQ(2), UOp: "X180"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Pulse {q2}, X180", "Wait 4"}
	assertListing(t, out, want)
}

func TestExpandMeasure(t *testing.T) {
	cs := StandardControlStore()
	out, err := cs.Expand(isa.Instruction{Op: isa.OpMeasure, QAddr: isa.MaskQ(0), Rd: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertListing(t, out, []string{"MPG {q0}, 300", "MD {q0}, r7"})
}

func TestExpandCNOTAlgorithm2(t *testing.T) {
	cs := StandardControlStore()
	// CNOT qt=q1, qc=q0: assembler encodes first operand (target) in Imm.
	in := isa.Instruction{Op: isa.OpApply2, QAddr: isa.MaskQ(0, 1), UOp: "CNOT", Imm: 1}
	out, err := cs.Expand(in)
	if err != nil {
		t.Fatal(err)
	}
	assertListing(t, out, []string{
		"Pulse {q1}, Ym90",
		"Wait 4",
		"Pulse {q0, q1}, CZ",
		"Wait 8",
		"Pulse {q1}, Y90",
		"Wait 4",
	})
}

func TestExpandCNOTOperandOrderMatters(t *testing.T) {
	cs := StandardControlStore()
	// Swap: target q0, control q1.
	in := isa.Instruction{Op: isa.OpApply2, QAddr: isa.MaskQ(0, 1), UOp: "CNOT", Imm: 0}
	out, err := cs.Expand(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].String() != "Pulse {q0}, Ym90" {
		t.Errorf("first step = %q, want target q0", out[0])
	}
}

func TestExpandQuMISPassThrough(t *testing.T) {
	cs := StandardControlStore()
	for _, in := range []isa.Instruction{
		{Op: isa.OpWait, Imm: 4},
		{Op: isa.OpQNopReg, Rs: 15},
		{Op: isa.OpPulse, QAddr: isa.MaskQ(2), UOp: "I"},
		{Op: isa.OpMPG, QAddr: isa.MaskQ(2), Imm: 300},
		{Op: isa.OpMD, QAddr: isa.MaskQ(2), Rd: 7},
	} {
		out, err := cs.Expand(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(out) != 1 || out[0].String() != in.String() {
			t.Errorf("%q did not pass through: %v", in, out)
		}
	}
}

func TestExpandRejectsClassical(t *testing.T) {
	cs := StandardControlStore()
	if _, err := cs.Expand(isa.Instruction{Op: isa.OpAdd}); err == nil {
		t.Error("classical instruction must be rejected")
	}
}

func TestExpandUnknownGate(t *testing.T) {
	cs := StandardControlStore()
	if _, err := cs.Expand(isa.Instruction{Op: isa.OpApply, QAddr: isa.MaskQ(0), UOp: "T"}); err == nil {
		t.Error("unknown gate must be rejected")
	}
}

func TestExpandArityMismatch(t *testing.T) {
	cs := StandardControlStore()
	if _, err := cs.Expand(isa.Instruction{Op: isa.OpApply, QAddr: isa.MaskQ(0), UOp: "CNOT"}); err == nil {
		t.Error("one-operand CNOT must be rejected")
	}
}

func TestUploadValidation(t *testing.T) {
	cs := NewControlStore()
	cases := []struct {
		name string
		m    Microprogram
	}{
		{"empty name", Microprogram{Arity: 1, Steps: []Step{{Op: isa.OpWait, Imm: 1}}}},
		{"bad arity", Microprogram{Name: "x", Arity: 3}},
		{"zero wait", Microprogram{Name: "x", Arity: 1, Steps: []Step{{Op: isa.OpWait}}}},
		{"pulse without name", Microprogram{Name: "x", Arity: 1, Steps: []Step{{Op: isa.OpPulse, Operands: []int{0}}}}},
		{"pulse without operands", Microprogram{Name: "x", Arity: 1, Steps: []Step{{Op: isa.OpPulse, UOp: "X180"}}}},
		{"selector out of arity", Microprogram{Name: "x", Arity: 1, Steps: []Step{{Op: isa.OpPulse, UOp: "X180", Operands: []int{1}}}}},
		{"classical step", Microprogram{Name: "x", Arity: 1, Steps: []Step{{Op: isa.OpAdd}}}},
	}
	for _, c := range cases {
		if err := cs.Upload(c.m); err == nil {
			t.Errorf("%s: expected upload error", c.name)
		}
	}
}

func TestUploadReplaceAndIsolation(t *testing.T) {
	cs := StandardControlStore()
	// Re-upload X180 with a longer wait — recalibration path.
	err := cs.Upload(Microprogram{
		Name:  "X180",
		Arity: 1,
		Steps: []Step{
			{Op: isa.OpPulse, UOp: "X180", Operands: []int{Q0}},
			{Op: isa.OpWait, Imm: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cs.Expand(isa.Instruction{Op: isa.OpApply, QAddr: isa.MaskQ(0), UOp: "X180"})
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Imm != 8 {
		t.Error("re-upload did not take effect")
	}
}

func TestStandardStoreContents(t *testing.T) {
	cs := StandardControlStore()
	names := cs.Names()
	want := []string{"CNOT", "CZ", "H", "I", "X180", "X90", "Xm90", "Y180", "Y90", "Ym90", "Z"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("names = %v, want %v", names, want)
	}
	cnot, _ := cs.Lookup("CNOT")
	if cnot.Duration() != 16 {
		t.Errorf("CNOT duration = %d cycles, want 16 (4+8+4)", cnot.Duration())
	}
}

func TestHorizontalStepAddressesMultipleQubits(t *testing.T) {
	cs := StandardControlStore()
	in := isa.Instruction{Op: isa.OpApply2, QAddr: isa.MaskQ(3, 5), UOp: "CZ", Imm: 3}
	out, err := cs.Expand(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].QAddr != isa.MaskQ(3, 5) {
		t.Errorf("horizontal CZ mask = %s", out[0].QAddr)
	}
}

func TestExpandZUsesSeqZOrder(t *testing.T) {
	// Z = X·Y: time order is Y pulse then X pulse.
	cs := StandardControlStore()
	out, err := cs.Expand(isa.Instruction{Op: isa.OpApply, QAddr: isa.MaskQ(0), UOp: "Z"})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].UOp != "Y180" || out[2].UOp != "X180" {
		t.Errorf("Z expansion order wrong: %v, %v", out[0], out[2])
	}
}

func assertListing(t *testing.T, got []isa.Instruction, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d instructions, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("step %d = %q, want %q", i, got[i], want[i])
		}
	}
}
