// Package microcode implements QuMA's physical microcode unit and its Q
// control store (paper Section 5.3): the stage that translates
// technology-independent QIS gate instructions (Apply, Apply2, Measure)
// into sequences of technology-dependent QuMIS microinstructions (Pulse,
// Wait, MPG, MD).
//
// Each QIS operation is backed by a microprogram — a template over the
// instruction's qubit operands — stored in the control store. Templates
// are horizontal: one Pulse step may address several qubits at once (the
// CZ step of the CNOT microprogram pulses both operands simultaneously).
// The worked example of the paper's Algorithm 2 is the CNOT microprogram:
//
//	Pulse {qt}, Ym90
//	Wait 4
//	Pulse {qt, qc}, CZ
//	Wait 8
//	Pulse {qt}, Y90
//	Wait 4
//
// Uploading different microprograms changes what an instruction means
// without touching the rest of the architecture — the paper's mechanism
// for absorbing rapid quantum-technology evolution.
package microcode

import (
	"fmt"
	"sort"

	"quma/internal/isa"
)

// Operand selectors for template steps: which of the QIS instruction's
// qubit operands a step addresses.
const (
	// Q0 selects the first operand qubit (the only one for Apply/Measure;
	// the first-listed one — e.g. the target of CNOT qt, qc — for Apply2).
	Q0 = 0
	// Q1 selects the second operand qubit of Apply2.
	Q1 = 1
)

// Step is one template step of a microprogram.
type Step struct {
	// Op is one of OpPulse, OpWait, OpMPG, OpMD.
	Op isa.Opcode
	// UOp names the micro-operation for Pulse steps.
	UOp string
	// Operands lists operand selectors (Q0/Q1) for Pulse/MPG/MD steps;
	// a horizontal step lists several.
	Operands []int
	// Imm is the Wait interval or MPG duration in cycles.
	Imm int64
}

// Microprogram is a named template stored in the Q control store.
type Microprogram struct {
	Name  string
	Arity int // number of qubit operands (1 or 2)
	Steps []Step
}

// Duration returns the total timeline the microprogram occupies, i.e. the
// sum of its Wait steps.
func (m Microprogram) Duration() int64 {
	var d int64
	for _, s := range m.Steps {
		if s.Op == isa.OpWait {
			d += s.Imm
		}
	}
	return d
}

// ControlStore is the Q control store: the uploadable mapping from QIS
// operation names to microprograms.
type ControlStore struct {
	programs map[string]Microprogram
	// MeasurePulseCycles is the MPG duration used when expanding Measure
	// (the paper's AllXY run uses 300 cycles = 1.5 µs).
	MeasurePulseCycles int64
}

// NewControlStore returns an empty control store with the paper's
// 300-cycle measurement pulse.
func NewControlStore() *ControlStore {
	return &ControlStore{programs: make(map[string]Microprogram), MeasurePulseCycles: 300}
}

// Upload stores (or replaces) a microprogram. Steps are validated: only
// QuMIS opcodes are allowed, and operand selectors must be within arity.
func (cs *ControlStore) Upload(m Microprogram) error {
	if m.Name == "" {
		return fmt.Errorf("microcode: empty microprogram name")
	}
	if m.Arity != 1 && m.Arity != 2 {
		return fmt.Errorf("microcode: %s: arity %d unsupported", m.Name, m.Arity)
	}
	for i, s := range m.Steps {
		switch s.Op {
		case isa.OpWait:
			if s.Imm <= 0 {
				return fmt.Errorf("microcode: %s step %d: Wait needs positive interval", m.Name, i)
			}
		case isa.OpPulse:
			if s.UOp == "" {
				return fmt.Errorf("microcode: %s step %d: Pulse needs a micro-operation name", m.Name, i)
			}
			fallthrough
		case isa.OpMPG, isa.OpMD:
			if len(s.Operands) == 0 {
				return fmt.Errorf("microcode: %s step %d: %s needs operands", m.Name, i, s.Op)
			}
			for _, o := range s.Operands {
				if o < 0 || o >= m.Arity {
					return fmt.Errorf("microcode: %s step %d: operand selector %d out of arity %d", m.Name, i, o, m.Arity)
				}
			}
		default:
			return fmt.Errorf("microcode: %s step %d: opcode %s not allowed in microprograms", m.Name, i, s.Op)
		}
	}
	steps := make([]Step, len(m.Steps))
	copy(steps, m.Steps)
	m.Steps = steps
	cs.programs[m.Name] = m
	return nil
}

// Lookup returns the microprogram for a QIS operation name.
func (cs *ControlStore) Lookup(name string) (Microprogram, bool) {
	m, ok := cs.programs[name]
	return m, ok
}

// Names returns the stored operation names, sorted.
func (cs *ControlStore) Names() []string {
	out := make([]string, 0, len(cs.programs))
	for n := range cs.programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Expand translates one QIS instruction into QuMIS microinstructions.
// QuMIS instructions pass through unchanged (the prototype in the paper
// accepts a mix of both), and classical instructions are rejected — they
// never reach the physical microcode unit.
func (cs *ControlStore) Expand(in isa.Instruction) ([]isa.Instruction, error) {
	switch in.Op {
	case isa.OpWait, isa.OpWaitReg, isa.OpQNopReg, isa.OpPulse, isa.OpMPG, isa.OpMD:
		return []isa.Instruction{in}, nil
	case isa.OpMeasure:
		q := in.QAddr
		return []isa.Instruction{
			{Op: isa.OpMPG, QAddr: q, Imm: cs.MeasurePulseCycles},
			{Op: isa.OpMD, QAddr: q, Rd: in.Rd},
		}, nil
	case isa.OpApply, isa.OpApply2:
		operands, err := operandQubits(in)
		if err != nil {
			return nil, err
		}
		mp, ok := cs.programs[in.UOp]
		if !ok {
			return nil, fmt.Errorf("microcode: no microprogram for operation %q", in.UOp)
		}
		if mp.Arity != len(operands) {
			return nil, fmt.Errorf("microcode: %s has arity %d, instruction %q supplies %d operands",
				in.UOp, mp.Arity, in, len(operands))
		}
		out := make([]isa.Instruction, 0, len(mp.Steps))
		for _, s := range mp.Steps {
			mi := isa.Instruction{Op: s.Op, UOp: s.UOp, Imm: s.Imm}
			if s.Op != isa.OpWait {
				var mask isa.QubitMask
				for _, o := range s.Operands {
					mask |= isa.MaskQ(operands[o])
				}
				mi.QAddr = mask
			}
			if s.Op == isa.OpMD {
				mi.Rd = in.Rd
			}
			out = append(out, mi)
		}
		return out, nil
	}
	return nil, fmt.Errorf("microcode: classical instruction %q reached the physical microcode unit", in)
}

// operandQubits recovers the ordered operand list from a QIS instruction:
// Apply has one qubit; Apply2 stores the first-listed operand index in
// Imm (see the assembler) and the pair in QAddr.
func operandQubits(in isa.Instruction) ([]int, error) {
	qs := in.QAddr.Qubits()
	switch in.Op {
	case isa.OpApply:
		if len(qs) != 1 {
			return nil, fmt.Errorf("microcode: Apply needs exactly one qubit, got %s", in.QAddr)
		}
		return qs, nil
	case isa.OpApply2:
		if len(qs) != 2 {
			return nil, fmt.Errorf("microcode: Apply2 needs exactly two qubits, got %s", in.QAddr)
		}
		first := int(in.Imm)
		if first != qs[0] && first != qs[1] {
			return nil, fmt.Errorf("microcode: Apply2 first-operand %d not in %s", first, in.QAddr)
		}
		second := qs[0]
		if second == first {
			second = qs[1]
		}
		return []int{first, second}, nil
	}
	return nil, fmt.Errorf("microcode: %s has no qubit operands", in.Op)
}

// StandardControlStore returns a control store loaded with the default
// microprogram library:
//
//   - every Table 1 primitive as a single Pulse + 4-cycle Wait;
//   - Z and H emulated from primitives (Z = X·Y as in the paper's SeqZ
//     discussion, lifted to the microcode level; H = Ry(π/2)·X·Y);
//   - CZ as a horizontal two-qubit pulse (8 cycles = 40 ns);
//   - CNOT as the paper's Algorithm 2.
func StandardControlStore() *ControlStore {
	cs := NewControlStore()
	for _, prim := range []string{"I", "X180", "X90", "Xm90", "Y180", "Y90", "Ym90"} {
		mustUpload(cs, Microprogram{
			Name:  prim,
			Arity: 1,
			Steps: []Step{
				{Op: isa.OpPulse, UOp: prim, Operands: []int{Q0}},
				{Op: isa.OpWait, Imm: 4},
			},
		})
	}
	mustUpload(cs, Microprogram{
		Name:  "Z",
		Arity: 1,
		Steps: []Step{
			{Op: isa.OpPulse, UOp: "Y180", Operands: []int{Q0}},
			{Op: isa.OpWait, Imm: 4},
			{Op: isa.OpPulse, UOp: "X180", Operands: []int{Q0}},
			{Op: isa.OpWait, Imm: 4},
		},
	})
	mustUpload(cs, Microprogram{
		Name:  "H",
		Arity: 1,
		Steps: []Step{
			{Op: isa.OpPulse, UOp: "Y180", Operands: []int{Q0}},
			{Op: isa.OpWait, Imm: 4},
			{Op: isa.OpPulse, UOp: "X180", Operands: []int{Q0}},
			{Op: isa.OpWait, Imm: 4},
			{Op: isa.OpPulse, UOp: "Y90", Operands: []int{Q0}},
			{Op: isa.OpWait, Imm: 4},
		},
	})
	mustUpload(cs, Microprogram{
		Name:  "CZ",
		Arity: 2,
		Steps: []Step{
			{Op: isa.OpPulse, UOp: "CZ", Operands: []int{Q0, Q1}},
			{Op: isa.OpWait, Imm: 8},
		},
	})
	// Algorithm 2: CNOT qt, qc — Q0 is the target (first listed), Q1 the
	// control.
	mustUpload(cs, Microprogram{
		Name:  "CNOT",
		Arity: 2,
		Steps: []Step{
			{Op: isa.OpPulse, UOp: "Ym90", Operands: []int{Q0}},
			{Op: isa.OpWait, Imm: 4},
			{Op: isa.OpPulse, UOp: "CZ", Operands: []int{Q0, Q1}},
			{Op: isa.OpWait, Imm: 8},
			{Op: isa.OpPulse, UOp: "Y90", Operands: []int{Q0}},
			{Op: isa.OpWait, Imm: 4},
		},
	})
	return cs
}

func mustUpload(cs *ControlStore, m Microprogram) {
	if err := cs.Upload(m); err != nil {
		panic(err)
	}
}
