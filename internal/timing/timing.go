// Package timing implements QuMA's queue-based event timing control — the
// mechanism that decouples non-deterministic instruction execution from
// the deterministic, cycle-accurate triggering of quantum operations
// (paper Section 5.2).
//
// The timing control unit consists of:
//
//   - a timing queue of (interval, label) pairs designating time points on
//     the deterministic timeline TD (intervals are in 5 ns cycles,
//     relative to the previous time point);
//   - one event queue per event class (the AllXY experiment uses three:
//     pulse, measurement-pulse generation, measurement discrimination),
//     each holding (event, label) pairs;
//   - a timing controller that owns the TD counter: when the counter
//     reaches the next interval it broadcasts the associated label to all
//     event queues, and every front entry whose label matches fires.
//
// The controller here is event-driven rather than ticked: it jumps TD
// directly between time points, so a 40000-cycle initialization wait costs
// the same as a 4-cycle gate gap. The observable behaviour — which events
// fire at which TD — is identical to a per-cycle implementation, and the
// benchmark BenchmarkTimingController demonstrates the O(events) cost.
package timing

import (
	"fmt"

	"quma/internal/clock"
)

// Label identifies a time point on the deterministic timeline. Labels are
// assigned in program order by the quantum microinstruction buffer and are
// strictly increasing.
type Label uint64

// TimePoint is one timing-queue entry: the interval in cycles since the
// previous time point, and the label broadcast when it is reached.
type TimePoint struct {
	Interval clock.Cycle
	Label    Label
}

// TimingQueue buffers time points in FIFO order.
type TimingQueue struct {
	entries []TimePoint
	head    int
}

// Push appends a time point.
func (q *TimingQueue) Push(tp TimePoint) { q.entries = append(q.entries, tp) }

// Len returns the number of buffered time points.
func (q *TimingQueue) Len() int { return len(q.entries) - q.head }

// Peek returns the front time point without removing it.
func (q *TimingQueue) Peek() (TimePoint, bool) {
	if q.Len() == 0 {
		return TimePoint{}, false
	}
	return q.entries[q.head], true
}

// Pop removes and returns the front time point.
func (q *TimingQueue) Pop() (TimePoint, bool) {
	tp, ok := q.Peek()
	if !ok {
		return TimePoint{}, false
	}
	q.head++
	if q.head > 64 && q.head*2 > len(q.entries) {
		q.entries = append(q.entries[:0], q.entries[q.head:]...)
		q.head = 0
	}
	return tp, true
}

// Snapshot returns the queued time points front-first (for the paper's
// Tables 2–4 reproduction).
func (q *TimingQueue) Snapshot() []TimePoint {
	out := make([]TimePoint, q.Len())
	copy(out, q.entries[q.head:])
	return out
}

// queue is the controller-facing side of an event queue.
type queue interface {
	name() string
	frontLabel() (Label, bool)
	fireFront(td clock.Cycle)
}

// EventQueue buffers events of type E, each tagged with the label of the
// time point at which it must fire. OnFire is invoked from the controller
// with the event and the deterministic time TD at which it fired.
type EventQueue[E any] struct {
	Name   string
	OnFire func(ev E, td clock.Cycle)

	entries []labeled[E]
	head    int
}

type labeled[E any] struct {
	ev    E
	label Label
}

// NewEventQueue returns an event queue with the given name and fire
// callback. A nil callback discards fired events (useful in tests).
func NewEventQueue[E any](name string, onFire func(ev E, td clock.Cycle)) *EventQueue[E] {
	return &EventQueue[E]{Name: name, OnFire: onFire}
}

// Push appends an event scheduled for the time point with the given label.
func (q *EventQueue[E]) Push(ev E, label Label) {
	q.entries = append(q.entries, labeled[E]{ev: ev, label: label})
}

// Len returns the number of pending events.
func (q *EventQueue[E]) Len() int { return len(q.entries) - q.head }

// Peek returns the front event and its label.
func (q *EventQueue[E]) Peek() (E, Label, bool) {
	if q.Len() == 0 {
		var zero E
		return zero, 0, false
	}
	e := q.entries[q.head]
	return e.ev, e.label, true
}

// Snapshot returns pending (event, label) pairs front-first.
func (q *EventQueue[E]) Snapshot() []struct {
	Event E
	Label Label
} {
	out := make([]struct {
		Event E
		Label Label
	}, 0, q.Len())
	for _, e := range q.entries[q.head:] {
		out = append(out, struct {
			Event E
			Label Label
		}{e.ev, e.label})
	}
	return out
}

func (q *EventQueue[E]) name() string { return q.Name }

func (q *EventQueue[E]) frontLabel() (Label, bool) {
	if q.Len() == 0 {
		return 0, false
	}
	return q.entries[q.head].label, true
}

func (q *EventQueue[E]) fireFront(td clock.Cycle) {
	e := q.entries[q.head]
	q.head++
	if q.head > 64 && q.head*2 > len(q.entries) {
		q.entries = append(q.entries[:0], q.entries[q.head:]...)
		q.head = 0
	}
	if q.OnFire != nil {
		q.OnFire(e.ev, td)
	}
}

// Controller is the timing controller: it owns the deterministic-domain
// clock TD and drains the timing queue, broadcasting labels to the
// registered event queues.
type Controller struct {
	TQ      TimingQueue
	queues  []queue
	td      clock.Cycle
	started bool
}

// NewController returns a stopped controller with an empty timing queue.
func NewController() *Controller { return &Controller{} }

// Register attaches an event queue to the label broadcast. Queues fire in
// registration order within a time point.
func (c *Controller) Register(q queue) {
	c.queues = append(c.queues, q)
}

// Start begins the deterministic timeline at TD = 0. On hardware this
// corresponds to the start instruction or an external trigger.
func (c *Controller) Start() {
	c.td = 0
	c.started = true
}

// Started reports whether the timeline is running.
func (c *Controller) Started() bool { return c.started }

// TD returns the current deterministic-domain time in cycles.
func (c *Controller) TD() clock.Cycle { return c.td }

// Step advances to the next time point: TD jumps by the front interval,
// the label is broadcast, and every front event with a matching label
// fires (in queue-registration order; consecutive matching entries within
// one queue all fire, which is how the MPG and MD events of a measurement
// share one time point).
//
// Step returns false with a nil error when the timing queue is empty —
// the caller may push more time points and continue, which is how
// feedback-dependent schedules are played out.
//
// A front event whose label is *smaller* than the broadcast label can
// never fire again; this indicates out-of-order queue filling and is
// reported as an error rather than silently dropped.
func (c *Controller) Step() (bool, error) {
	if !c.started {
		return false, fmt.Errorf("timing: controller not started")
	}
	tp, ok := c.TQ.Pop()
	if !ok {
		return false, nil
	}
	c.td += tp.Interval
	for _, q := range c.queues {
		for {
			fl, ok := q.frontLabel()
			if !ok {
				break
			}
			if fl < tp.Label {
				return false, fmt.Errorf("timing: queue %s front label %d already passed (broadcast %d at TD=%d)",
					q.name(), fl, tp.Label, c.td)
			}
			if fl != tp.Label {
				break
			}
			q.fireFront(c.td)
		}
	}
	return true, nil
}

// Drain steps until the timing queue is empty, returning the number of
// time points processed.
func (c *Controller) Drain() (int, error) {
	n := 0
	for {
		ok, err := c.Step()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// PendingEvents returns the total number of events still waiting across
// all registered queues.
func (c *Controller) PendingEvents() int {
	n := 0
	for _, q := range c.queues {
		if eq, ok := q.(interface{ Len() int }); ok {
			n += eq.Len()
		}
	}
	return n
}
