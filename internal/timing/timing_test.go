package timing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quma/internal/clock"
)

type firing struct {
	queue string
	ev    string
	td    clock.Cycle
}

// rig builds a controller with named string-event queues and a shared
// firing log.
func rig(names ...string) (*Controller, map[string]*EventQueue[string], *[]firing) {
	c := NewController()
	log := &[]firing{}
	qs := make(map[string]*EventQueue[string])
	for _, n := range names {
		n := n
		q := NewEventQueue[string](n, func(ev string, td clock.Cycle) {
			*log = append(*log, firing{queue: n, ev: ev, td: td})
		})
		c.Register(q)
		qs[n] = q
	}
	return c, qs, log
}

func TestStepRequiresStart(t *testing.T) {
	c, _, _ := rig("p")
	if _, err := c.Step(); err == nil {
		t.Fatal("expected error before Start")
	}
}

func TestAllXYQueueScenario(t *testing.T) {
	// Reproduce the paper's Tables 2–4 schedule: labels 1..6 with
	// intervals 40000,4,4,40000,4,4; pulse events at 1,2,4,5; MPG at 3,6;
	// MD at 3,6.
	c, qs, log := rig("pulse", "mpg", "md")
	intervals := []clock.Cycle{40000, 4, 4, 40000, 4, 4}
	for i, iv := range intervals {
		c.TQ.Push(TimePoint{Interval: iv, Label: Label(i + 1)})
	}
	qs["pulse"].Push("I", 1)
	qs["pulse"].Push("I", 2)
	qs["pulse"].Push("X180", 4)
	qs["pulse"].Push("X180", 5)
	qs["mpg"].Push("300", 3)
	qs["mpg"].Push("300", 6)
	qs["md"].Push("r7", 3)
	qs["md"].Push("r7", 6)

	c.Start()
	n, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("processed %d time points, want 6", n)
	}
	want := []firing{
		{"pulse", "I", 40000},
		{"pulse", "I", 40004},
		{"mpg", "300", 40008},
		{"md", "r7", 40008},
		{"pulse", "X180", 80008},
		{"pulse", "X180", 80012},
		{"mpg", "300", 80016},
		{"md", "r7", 80016},
	}
	if len(*log) != len(want) {
		t.Fatalf("fired %d events, want %d: %+v", len(*log), len(want), *log)
	}
	for i, w := range want {
		if (*log)[i] != w {
			t.Errorf("firing %d = %+v, want %+v", i, (*log)[i], w)
		}
	}
	if c.TD() != 80016 {
		t.Errorf("final TD = %d, want 80016", c.TD())
	}
}

func TestMultipleEventsSameLabelSameQueue(t *testing.T) {
	// Horizontal microinstructions can schedule several events in the
	// same queue at one time point; all consecutive matches must fire.
	c, qs, log := rig("pulse")
	c.TQ.Push(TimePoint{Interval: 10, Label: 1})
	qs["pulse"].Push("a", 1)
	qs["pulse"].Push("b", 1)
	qs["pulse"].Push("c", 2)
	c.Start()
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 2 || (*log)[0].ev != "a" || (*log)[1].ev != "b" {
		t.Errorf("log = %+v", *log)
	}
	if qs["pulse"].Len() != 1 {
		t.Error("event with future label must stay queued")
	}
}

func TestEventWithNoMatchingLabelStays(t *testing.T) {
	c, qs, _ := rig("pulse")
	c.TQ.Push(TimePoint{Interval: 5, Label: 1})
	qs["pulse"].Push("later", 7)
	c.Start()
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if qs["pulse"].Len() != 1 {
		t.Error("unmatched event must remain")
	}
}

func TestStaleLabelIsError(t *testing.T) {
	c, qs, _ := rig("pulse")
	c.TQ.Push(TimePoint{Interval: 5, Label: 3})
	qs["pulse"].Push("missed", 2) // label 2 never broadcast
	c.Start()
	if _, err := c.Drain(); err == nil {
		t.Fatal("expected out-of-order error")
	}
}

func TestIncrementalFillAndDrain(t *testing.T) {
	// Feedback pattern: drain, observe, push more, continue. TD must
	// accumulate across drains.
	c, qs, log := rig("pulse")
	c.Start()
	c.TQ.Push(TimePoint{Interval: 100, Label: 1})
	qs["pulse"].Push("first", 1)
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	c.TQ.Push(TimePoint{Interval: 50, Label: 2})
	qs["pulse"].Push("second", 2)
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 2 || (*log)[1].td != 150 {
		t.Errorf("log = %+v, want second firing at TD=150", *log)
	}
}

func TestZeroIntervalTimePoint(t *testing.T) {
	// Two labels at the same instant (interval 0) are legal and fire at
	// the same TD.
	c, qs, log := rig("pulse")
	c.TQ.Push(TimePoint{Interval: 8, Label: 1})
	c.TQ.Push(TimePoint{Interval: 0, Label: 2})
	qs["pulse"].Push("a", 1)
	qs["pulse"].Push("b", 2)
	c.Start()
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if (*log)[0].td != 8 || (*log)[1].td != 8 {
		t.Errorf("log = %+v, want both at TD=8", *log)
	}
}

func TestTimingQueueFIFOAndSnapshot(t *testing.T) {
	var q TimingQueue
	for i := 1; i <= 5; i++ {
		q.Push(TimePoint{Interval: clock.Cycle(i), Label: Label(i)})
	}
	snap := q.Snapshot()
	if len(snap) != 5 || snap[0].Label != 1 || snap[4].Label != 5 {
		t.Errorf("snapshot = %+v", snap)
	}
	tp, ok := q.Pop()
	if !ok || tp.Label != 1 {
		t.Error("FIFO violated")
	}
	if q.Len() != 4 {
		t.Errorf("len = %d", q.Len())
	}
}

func TestEventQueuePeekSnapshot(t *testing.T) {
	q := NewEventQueue[int]("n", nil)
	q.Push(10, 1)
	q.Push(20, 2)
	ev, l, ok := q.Peek()
	if !ok || ev != 10 || l != 1 {
		t.Errorf("peek = %v %v %v", ev, l, ok)
	}
	snap := q.Snapshot()
	if len(snap) != 2 || snap[1].Event != 20 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestQueueCompaction(t *testing.T) {
	// Push/pop enough to trigger internal compaction and verify order
	// survives.
	var q TimingQueue
	next := 0
	popped := 0
	for i := 0; i < 1000; i++ {
		q.Push(TimePoint{Interval: 1, Label: Label(next)})
		next++
		if i%2 == 1 {
			tp, ok := q.Pop()
			if !ok || tp.Label != Label(popped) {
				t.Fatalf("pop %d: got %v", popped, tp.Label)
			}
			popped++
		}
	}
	for {
		tp, ok := q.Pop()
		if !ok {
			break
		}
		if tp.Label != Label(popped) {
			t.Fatalf("drain pop: got %v want %d", tp.Label, popped)
		}
		popped++
	}
	if popped != next {
		t.Errorf("popped %d of %d", popped, next)
	}
}

func TestPendingEvents(t *testing.T) {
	c, qs, _ := rig("a", "b")
	qs["a"].Push("x", 1)
	qs["b"].Push("y", 1)
	qs["b"].Push("z", 2)
	if c.PendingEvents() != 3 {
		t.Errorf("pending = %d, want 3", c.PendingEvents())
	}
}

// Property: for a randomly generated consistent schedule, every event
// fires exactly once, at the TD equal to the prefix sum of intervals up to
// its label, and firings are globally ordered by TD.
func TestPropertyScheduleConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, qs, log := rig("q0", "q1", "q2")
		nPoints := rng.Intn(40) + 1
		tds := make(map[Label]clock.Cycle)
		var td clock.Cycle
		expected := 0
		for i := 1; i <= nPoints; i++ {
			iv := clock.Cycle(rng.Intn(1000))
			td += iv
			label := Label(i)
			c.TQ.Push(TimePoint{Interval: iv, Label: label})
			tds[label] = td
			// Attach 0..2 events to this label, each on a random queue.
			for e := rng.Intn(3); e > 0; e-- {
				name := []string{"q0", "q1", "q2"}[rng.Intn(3)]
				qs[name].Push(name, label)
				expected++
			}
		}
		c.Start()
		if _, err := c.Drain(); err != nil {
			return false
		}
		if len(*log) != expected {
			return false
		}
		prev := clock.Cycle(0)
		for _, f := range *log {
			if f.td < prev {
				return false
			}
			prev = f.td
		}
		return c.TD() == td
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the controller's cost is O(events), independent of interval
// magnitude — long waits are free (checked behaviourally: huge intervals
// drain in the same number of steps).
func TestPropertyLongWaitsFree(t *testing.T) {
	c, qs, _ := rig("p")
	for i := 1; i <= 100; i++ {
		c.TQ.Push(TimePoint{Interval: 1 << 40, Label: Label(i)})
		qs["p"].Push("x", Label(i))
	}
	c.Start()
	n, err := c.Drain()
	if err != nil || n != 100 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if c.TD() != 100<<40 {
		t.Errorf("TD = %d", c.TD())
	}
}
