// Package awg models the arbitrary-waveform-generation hardware of the
// control box: the codeword-triggered pulse generation unit (CTPG) that is
// QuMA's analog-digital interface for qubit drive, and — as the baseline
// QuMA is compared against — a conventional whole-sequence waveform AWG.
//
// The CTPG stores a small lookup table of calibrated primitive pulses,
// indexed by codeword (the paper's Table 1). At runtime it receives only
// codeword triggers; each trigger plays the corresponding waveform after a
// fixed, short delay (80 ns in the paper's implementation). Because the
// delay is fixed, flexible pulse combination reduces to issuing codewords
// at precise times.
package awg

import (
	"fmt"
	"math"
	"sort"

	"quma/internal/clock"
	"quma/internal/pulse"
)

// Codeword indexes an entry of the CTPG lookup table.
type Codeword uint32

// FixedDelayCycles is the paper's measured trigger→output latency of the
// implemented CTPG: 80 ns = 16 control cycles.
const FixedDelayCycles clock.Cycle = 16

// Playback records one pulse emitted by the CTPG: which codeword fired,
// the waveform played, and the absolute sample time at which the first
// sample left the DAC. The simulated chip consumes these records.
type Playback struct {
	Codeword Codeword
	Wave     pulse.Waveform
	Start    clock.Sample
}

// CTPG is a codeword-triggered pulse generation unit for one drive channel.
type CTPG struct {
	// Delay is the fixed trigger→output latency in cycles.
	Delay clock.Cycle
	// SSBHz is the single-sideband modulation frequency the stored
	// waveforms were synthesized with.
	SSBHz float64
	// DACBits is the vertical resolution applied to uploaded waveforms.
	DACBits int

	lut       map[Codeword]lutEntry
	playbacks []Playback
}

type lutEntry struct {
	name string
	wave pulse.Waveform
}

// NewCTPG returns a CTPG with the paper's fixed delay, -50 MHz SSB and
// 14-bit DACs, and an empty lookup table.
func NewCTPG() *CTPG {
	return &CTPG{
		Delay:   FixedDelayCycles,
		SSBHz:   pulse.DefaultSSBHz,
		DACBits: 14,
		lut:     make(map[Codeword]lutEntry),
	}
}

// Upload stores a calibrated waveform under the given codeword, quantizing
// it to the DAC resolution. Re-uploading a codeword replaces the entry,
// which is how recalibration works on the real device.
func (c *CTPG) Upload(cw Codeword, name string, w pulse.Waveform) error {
	if w.MaxAbs() > 1 {
		return fmt.Errorf("awg: waveform %q exceeds DAC full scale (max %.3f)", name, w.MaxAbs())
	}
	c.lut[cw] = lutEntry{name: name, wave: pulse.Quantize(w, c.DACBits)}
	return nil
}

// Lookup returns the waveform and name stored under cw.
func (c *CTPG) Lookup(cw Codeword) (pulse.Waveform, string, bool) {
	e, ok := c.lut[cw]
	return e.wave, e.name, ok
}

// Codewords returns the populated codewords in ascending order.
func (c *CTPG) Codewords() []Codeword {
	out := make([]Codeword, 0, len(c.lut))
	for cw := range c.lut {
		out = append(out, cw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Trigger fires codeword cw at control-cycle time at. The pulse leaves the
// DAC Delay cycles later. Unknown codewords are an error: on hardware they
// would play garbage.
func (c *CTPG) Trigger(cw Codeword, at clock.Cycle) (Playback, error) {
	e, ok := c.lut[cw]
	if !ok {
		return Playback{}, fmt.Errorf("awg: codeword %d not in lookup table", cw)
	}
	pb := Playback{Codeword: cw, Wave: e.wave, Start: (at + c.Delay).Samples()}
	c.playbacks = append(c.playbacks, pb)
	return pb, nil
}

// Playbacks returns every pulse played so far, in trigger order.
func (c *CTPG) Playbacks() []Playback { return c.playbacks }

// ResetPlaybacks clears the playback log (e.g. between experiment rounds).
func (c *CTPG) ResetPlaybacks() { c.playbacks = c.playbacks[:0] }

// MemoryBytes returns the total lookup-table storage at the given
// bits-per-sample accounting (the paper uses 12-bit samples for its
// 420-byte AllXY figure).
func (c *CTPG) MemoryBytes(bitsPerSample int) int {
	total := 0
	for _, e := range c.lut {
		total += e.wave.MemoryBytes(bitsPerSample)
	}
	return total
}

// StandardPulse describes one calibrated primitive operation: a rotation
// by Theta about the equatorial axis at angle Phi. Negative angles are
// realized by offsetting the drive phase by π.
type StandardPulse struct {
	Codeword Codeword
	Name     string
	Phi      float64 // drive phase: 0 = x axis, π/2 = y axis
	Theta    float64 // rotation angle, radians (≥ 0 after phase folding)
}

// StandardDurationSamples is the paper's typical single-qubit pulse
// duration: 20 ns.
const StandardDurationSamples = 20

// StandardSigma is the Gaussian width (in samples) of the standard pulse.
const StandardSigma = 4.0

// StandardLibrary returns the paper's Table 1 lookup-table content: the
// seven primitive operations sufficient for AllXY.
//
//	CW 0: I    CW 1: Rx(π)   CW 2: Rx(π/2)  CW 3: Rx(-π/2)
//	CW 4: Ry(π) CW 5: Ry(π/2) CW 6: Ry(-π/2)
func StandardLibrary() []StandardPulse {
	return []StandardPulse{
		{0, "I", 0, 0},
		{1, "X180", 0, math.Pi},
		{2, "X90", 0, math.Pi / 2},
		{3, "Xm90", math.Pi, math.Pi / 2},
		{4, "Y180", math.Pi / 2, math.Pi},
		{5, "Y90", math.Pi / 2, math.Pi / 2},
		{6, "Ym90", 3 * math.Pi / 2, math.Pi / 2},
	}
}

// SynthesizeStandard produces the waveform for a standard pulse with an
// optional fractional amplitude miscalibration ε (every rotation angle is
// scaled by 1+ε), the knob used to demonstrate AllXY error signatures.
func SynthesizeStandard(p StandardPulse, ssbHz, amplitudeError float64) pulse.Waveform {
	if p.Theta == 0 {
		// The identity is an explicit zero-amplitude pulse occupying the
		// standard duration, so timing bookkeeping is identical to real
		// pulses.
		return pulse.Synthesize(make([]float64, StandardDurationSamples), ssbHz, 0)
	}
	theta := p.Theta * (1 + amplitudeError)
	amp := pulse.CalibratedGaussianAmp(StandardDurationSamples, StandardSigma, theta)
	env := pulse.GaussianEnvelope(StandardDurationSamples, StandardSigma, amp)
	return pulse.Synthesize(env, ssbHz, p.Phi)
}

// UploadStandardLibrary fills the CTPG with the Table 1 content.
func (c *CTPG) UploadStandardLibrary(amplitudeError float64) error {
	for _, p := range StandardLibrary() {
		if err := c.Upload(p.Codeword, p.Name, SynthesizeStandard(p, c.SSBHz, amplitudeError)); err != nil {
			return err
		}
	}
	return nil
}
