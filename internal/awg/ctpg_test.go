package awg

import (
	"math"
	"testing"

	"quma/internal/clock"
	"quma/internal/pulse"
	"quma/internal/qphys"
)

func TestStandardLibraryMatchesTable1(t *testing.T) {
	lib := StandardLibrary()
	if len(lib) != 7 {
		t.Fatalf("library has %d entries, want 7 (paper Table 1)", len(lib))
	}
	want := []struct {
		cw   Codeword
		name string
	}{
		{0, "I"}, {1, "X180"}, {2, "X90"}, {3, "Xm90"},
		{4, "Y180"}, {5, "Y90"}, {6, "Ym90"},
	}
	for i, w := range want {
		if lib[i].Codeword != w.cw || lib[i].Name != w.name {
			t.Errorf("entry %d = (%d,%s), want (%d,%s)", i, lib[i].Codeword, lib[i].Name, w.cw, w.name)
		}
	}
}

func TestStandardPulsesImplementTheirGates(t *testing.T) {
	// Every Table 1 waveform, played at t0=0, must apply the advertised
	// rotation to the simulated qubit.
	wantGate := map[string]qphys.Matrix{
		"I":    qphys.Identity(2),
		"X180": qphys.RX(math.Pi),
		"X90":  qphys.RX(math.Pi / 2),
		"Xm90": qphys.RX(-math.Pi / 2),
		"Y180": qphys.RY(math.Pi),
		"Y90":  qphys.RY(math.Pi / 2),
		"Ym90": qphys.RY(-math.Pi / 2),
	}
	for _, p := range StandardLibrary() {
		w := SynthesizeStandard(p, pulse.DefaultSSBHz, 0)
		phi, theta := pulse.Rotation(w, pulse.DefaultSSBHz, 0)
		got := qphys.REquator(phi, theta)
		if !got.EqualUpToGlobalPhase(wantGate[p.Name], 1e-3) {
			t.Errorf("%s: waveform implements wrong gate (phi=%v theta=%v)", p.Name, phi, theta)
		}
	}
}

func TestUploadStandardLibraryAndLookup(t *testing.T) {
	c := NewCTPG()
	if err := c.UploadStandardLibrary(0); err != nil {
		t.Fatal(err)
	}
	cws := c.Codewords()
	if len(cws) != 7 {
		t.Fatalf("LUT has %d codewords, want 7", len(cws))
	}
	w, name, ok := c.Lookup(1)
	if !ok || name != "X180" {
		t.Fatalf("Lookup(1) = %q, %v", name, ok)
	}
	if w.Len() != StandardDurationSamples {
		t.Errorf("pulse length %d, want %d", w.Len(), StandardDurationSamples)
	}
}

func TestUploadRejectsOverdrive(t *testing.T) {
	c := NewCTPG()
	w := pulse.Waveform{I: []float64{1.5}, Q: []float64{0}}
	if err := c.Upload(9, "too-big", w); err == nil {
		t.Error("expected error for waveform exceeding DAC range")
	}
}

func TestTriggerFixedDelay(t *testing.T) {
	c := NewCTPG()
	if err := c.UploadStandardLibrary(0); err != nil {
		t.Fatal(err)
	}
	pb, err := c.Trigger(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	wantStart := (clock.Cycle(100) + FixedDelayCycles).Samples()
	if pb.Start != wantStart {
		t.Errorf("playback start %d, want %d (fixed 80 ns delay)", pb.Start, wantStart)
	}
	if len(c.Playbacks()) != 1 {
		t.Error("playback not logged")
	}
}

func TestTriggerUnknownCodeword(t *testing.T) {
	c := NewCTPG()
	if _, err := c.Trigger(42, 0); err == nil {
		t.Error("expected error for unknown codeword")
	}
}

func TestBackToBackTriggersPreserveSpacing(t *testing.T) {
	// Two codewords 4 cycles (20 ns) apart must emerge exactly 20 ns
	// apart: the fixed delay cancels, which is the property that makes
	// codeword timing equivalent to pulse timing.
	c := NewCTPG()
	if err := c.UploadStandardLibrary(0); err != nil {
		t.Fatal(err)
	}
	pb1, _ := c.Trigger(1, 1000)
	pb2, _ := c.Trigger(1, 1004)
	if got := pb2.Start - pb1.Start; got != 20 {
		t.Errorf("output spacing %d samples, want 20", got)
	}
}

func TestResetPlaybacks(t *testing.T) {
	c := NewCTPG()
	if err := c.UploadStandardLibrary(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trigger(0, 0); err != nil {
		t.Fatal(err)
	}
	c.ResetPlaybacks()
	if len(c.Playbacks()) != 0 {
		t.Error("playback log not cleared")
	}
}

func TestMemoryBytes420(t *testing.T) {
	// The paper's headline number: the 7 AllXY pulses consume 420 bytes
	// at 12-bit samples; the waveform method needs 2520 bytes.
	c := NewCTPG()
	if err := c.UploadStandardLibrary(0); err != nil {
		t.Fatal(err)
	}
	if got := c.MemoryBytes(12); got != 420 {
		t.Errorf("CTPG memory = %d bytes, want 420", got)
	}
}

func TestAmplitudeErrorScalesRotation(t *testing.T) {
	p := StandardPulse{Codeword: 1, Name: "X180", Phi: 0, Theta: math.Pi}
	w := SynthesizeStandard(p, pulse.DefaultSSBHz, -0.1)
	_, theta := pulse.Rotation(w, pulse.DefaultSSBHz, 0)
	if math.Abs(theta-0.9*math.Pi) > 1e-9 {
		t.Errorf("theta with ε=-0.1: %v, want 0.9π", theta)
	}
}

func TestReUploadReplacesEntry(t *testing.T) {
	c := NewCTPG()
	if err := c.UploadStandardLibrary(0); err != nil {
		t.Fatal(err)
	}
	recal := SynthesizeStandard(StandardPulse{1, "X180", 0, math.Pi}, c.SSBHz, 0.05)
	if err := c.Upload(1, "X180-recal", recal); err != nil {
		t.Fatal(err)
	}
	_, name, _ := c.Lookup(1)
	if name != "X180-recal" {
		t.Error("re-upload did not replace the entry")
	}
	if len(c.Codewords()) != 7 {
		t.Error("re-upload must not add a codeword")
	}
}

func TestWaveformAWGBaseline(t *testing.T) {
	a := NewWaveformAWG()
	seg := pulse.Synthesize(pulse.GaussianEnvelope(40, 4, 0.5), pulse.DefaultSSBHz, 0)
	for i := 0; i < 21; i++ {
		a.UploadSegment(i, seg)
	}
	if a.NumSegments() != 21 {
		t.Fatalf("segments = %d", a.NumSegments())
	}
	if got := a.MemoryBytes(); got != 2520 {
		t.Errorf("baseline memory = %d bytes, want paper's 2520", got)
	}
	if _, err := a.Play(3); err != nil {
		t.Error(err)
	}
	if _, err := a.Play(99); err == nil {
		t.Error("expected error for missing segment")
	}
	if a.UploadSeconds() <= 0 {
		t.Error("upload time must be positive")
	}
	// Re-uploading (a sequence change) accumulates link cost but not memory.
	before := a.UploadedBytes()
	a.UploadSegment(0, seg)
	if a.UploadedBytes() != before+seg.MemoryBytes(12) {
		t.Error("re-upload must accumulate link bytes")
	}
	if a.MemoryBytes() != 2520 {
		t.Error("re-upload must not grow memory")
	}
}
