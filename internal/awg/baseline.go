package awg

import (
	"fmt"

	"quma/internal/pulse"
)

// WaveformAWG models the conventional control method the paper contrasts
// with QuMA (Section 4.2.2): for every distinct *combination* of
// operations, an entire pre-combined waveform is uploaded to the
// generator's memory and played back as a unit. Any change to the sequence
// requires re-uploading whole waveforms, and memory grows with the number
// of combinations rather than the number of primitive pulses.
type WaveformAWG struct {
	// UploadBytesPerSec models the configuration link bandwidth (the
	// paper's control box uses USB; 10 MB/s is representative).
	UploadBytesPerSec float64
	// BitsPerSample is the storage accounting resolution.
	BitsPerSample int

	segments      map[int]pulse.Waveform
	uploadedBytes int
}

// NewWaveformAWG returns a baseline AWG with a 10 MB/s upload link and
// 12-bit sample accounting (matching the paper's 420 B vs 2520 B example).
func NewWaveformAWG() *WaveformAWG {
	return &WaveformAWG{
		UploadBytesPerSec: 10e6,
		BitsPerSample:     12,
		segments:          make(map[int]pulse.Waveform),
	}
}

// UploadSegment stores the complete waveform for one operation combination
// under the given index, accumulating upload-cost accounting.
func (a *WaveformAWG) UploadSegment(index int, w pulse.Waveform) {
	a.segments[index] = w.Clone()
	a.uploadedBytes += w.MemoryBytes(a.BitsPerSample)
}

// Play returns the waveform for a stored combination.
func (a *WaveformAWG) Play(index int) (pulse.Waveform, error) {
	w, ok := a.segments[index]
	if !ok {
		return pulse.Waveform{}, fmt.Errorf("awg: no waveform uploaded for segment %d", index)
	}
	return w, nil
}

// MemoryBytes returns the total waveform memory in use.
func (a *WaveformAWG) MemoryBytes() int {
	total := 0
	for _, w := range a.segments {
		total += w.MemoryBytes(a.BitsPerSample)
	}
	return total
}

// UploadedBytes returns the cumulative bytes pushed over the configuration
// link, including re-uploads.
func (a *WaveformAWG) UploadedBytes() int { return a.uploadedBytes }

// UploadSeconds returns the time spent uploading at the modelled link rate.
func (a *WaveformAWG) UploadSeconds() float64 {
	return float64(a.uploadedBytes) / a.UploadBytesPerSec
}

// NumSegments returns the number of stored combinations.
func (a *WaveformAWG) NumSegments() int { return len(a.segments) }
