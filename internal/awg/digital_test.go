package awg

import "testing"

func TestDigitalTriggerValidation(t *testing.T) {
	d := NewDigitalOutputUnit()
	if err := d.Trigger(0b01, 0, 10); err == nil {
		t.Error("zero duration must fail")
	}
	if err := d.Trigger(0, 300, 10); err == nil {
		t.Error("empty mask must fail")
	}
}

func TestDigitalLevels(t *testing.T) {
	d := NewDigitalOutputUnit()
	// The paper's measurement trigger: output 1 high for 300 cycles.
	if err := d.Trigger(0b10, 300, 1000); err != nil {
		t.Fatal(err)
	}
	if !d.High(1, 1000) || !d.High(1, 1299) {
		t.Error("output must be high inside the window")
	}
	if d.High(1, 999) || d.High(1, 1300) {
		t.Error("output must be low outside the window")
	}
	if d.High(0, 1100) {
		t.Error("unselected output must stay low")
	}
	if d.High(9, 1100) || d.High(-1, 1100) {
		t.Error("out-of-range channels are always low")
	}
}

func TestDigitalMaskFansOut(t *testing.T) {
	d := NewDigitalOutputUnit()
	if err := d.Trigger(0b1001_0001, 10, 0); err != nil {
		t.Fatal(err)
	}
	for _, ch := range []int{0, 4, 7} {
		if !d.High(ch, 5) {
			t.Errorf("channel %d should be high", ch)
		}
	}
	for _, ch := range []int{1, 2, 3, 5, 6} {
		if d.High(ch, 5) {
			t.Errorf("channel %d should be low", ch)
		}
	}
}

func TestDigitalIntervalsMerge(t *testing.T) {
	d := NewDigitalOutputUnit()
	// Overlapping and abutting triggers coalesce.
	if err := d.Trigger(1, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Trigger(1, 10, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.Trigger(1, 5, 15); err != nil {
		t.Fatal(err)
	}
	if err := d.Trigger(1, 5, 100); err != nil {
		t.Fatal(err)
	}
	ivs := d.Intervals(0)
	if len(ivs) != 2 {
		t.Fatalf("intervals = %v, want 2 merged spans", ivs)
	}
	if ivs[0].Start != 0 || ivs[0].End != 20 {
		t.Errorf("merged span = %v, want [0,20)", ivs[0])
	}
	if d.TotalHighCycles(0) != 25 {
		t.Errorf("total high = %d, want 25", d.TotalHighCycles(0))
	}
}

func TestDigitalIntervalsSortedInput(t *testing.T) {
	d := NewDigitalOutputUnit()
	if err := d.Trigger(1, 5, 100); err != nil {
		t.Fatal(err)
	}
	if err := d.Trigger(1, 5, 0); err != nil {
		t.Fatal(err)
	}
	ivs := d.Intervals(0)
	if len(ivs) != 2 || ivs[0].Start != 0 {
		t.Errorf("intervals not sorted: %v", ivs)
	}
}

func TestDigitalReset(t *testing.T) {
	d := NewDigitalOutputUnit()
	if err := d.Trigger(0xff, 10, 0); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	if d.High(3, 5) || d.Intervals(3) != nil {
		t.Error("reset must clear history")
	}
}
