package awg

import (
	"fmt"
	"sort"

	"quma/internal/clock"
)

// NumDigitalOutputs is the output count of the simulated master
// controller. The paper's box has 8; the simulation matches the widened
// 16-qubit instruction-set address so trajectory-backend registers stay
// measurable.
const NumDigitalOutputs = 16

// DigitalOutputUnit models the master controller's digital output stage
// (paper §7.1): it converts a measurement-operation tuple (QAddr, D)
// into a logic '1' of duration D cycles on each of the digital outputs
// selected by QAddr. On the real box these outputs gate the
// pulse-modulated microwave sources that produce measurement pulses.
type DigitalOutputUnit struct {
	intervals [NumDigitalOutputs][]HighInterval
}

// HighInterval is one '1' period on a digital output.
type HighInterval struct {
	Start clock.Cycle
	End   clock.Cycle // exclusive
}

// NewDigitalOutputUnit returns a unit with all outputs low.
func NewDigitalOutputUnit() *DigitalOutputUnit { return &DigitalOutputUnit{} }

// Trigger raises the outputs in mask for duration cycles starting at
// cycle at. mask bit q drives output q.
func (d *DigitalOutputUnit) Trigger(mask uint16, duration, at clock.Cycle) error {
	if duration == 0 {
		return fmt.Errorf("awg: digital trigger needs positive duration")
	}
	if mask == 0 {
		return fmt.Errorf("awg: digital trigger needs a non-empty mask")
	}
	for ch := 0; ch < NumDigitalOutputs; ch++ {
		if mask&(1<<ch) != 0 {
			d.intervals[ch] = append(d.intervals[ch], HighInterval{Start: at, End: at + duration})
		}
	}
	return nil
}

// High reports whether output ch is '1' at cycle t.
func (d *DigitalOutputUnit) High(ch int, t clock.Cycle) bool {
	if ch < 0 || ch >= NumDigitalOutputs {
		return false
	}
	for _, iv := range d.intervals[ch] {
		if t >= iv.Start && t < iv.End {
			return true
		}
	}
	return false
}

// Intervals returns output ch's '1' periods merged and sorted; abutting
// or overlapping triggers coalesce, as the physical OR of levels would.
func (d *DigitalOutputUnit) Intervals(ch int) []HighInterval {
	if ch < 0 || ch >= NumDigitalOutputs || len(d.intervals[ch]) == 0 {
		return nil
	}
	ivs := append([]HighInterval{}, d.intervals[ch]...)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	out := []HighInterval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// TotalHighCycles returns the summed '1' time on output ch.
func (d *DigitalOutputUnit) TotalHighCycles(ch int) clock.Cycle {
	var total clock.Cycle
	for _, iv := range d.Intervals(ch) {
		total += iv.End - iv.Start
	}
	return total
}

// Reset returns all outputs to idle with no history.
func (d *DigitalOutputUnit) Reset() {
	for ch := range d.intervals {
		d.intervals[ch] = nil
	}
}
