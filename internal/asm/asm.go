// Package asm assembles the paper's textual assembly syntax (as seen in
// Table 5 and Algorithm 3) into isa.Program values, and disassembles them
// back. It is the front door for the cmd/quma-asm tool and for the
// OpenQL-style compiler's output.
//
// Syntax, one instruction per line:
//
//	# comment (also //)
//	Outer_Loop:              ; label definition
//	mov r15, 40000
//	QNopReg r15
//	Pulse {q2}, X180         ; one or more qubits: {q0, q1}
//	Wait 4
//	MPG {q2}, 300
//	MD {q2}, r7              ; destination register optional (default r0)
//	Apply X180, q0           ; QIS gate, expanded by microcode
//	Apply2 CNOT, q1, q0
//	Measure q0, r7
//	load r9, r3[0]
//	store r9, r3[1]
//	addi r1, r1, 1
//	bne r1, r2, Outer_Loop
//	halt
//
// Mnemonics are case-insensitive; operation names (X180, CZ, …) are
// case-sensitive because they index the micro-operation tables.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"quma/internal/isa"
)

// Assemble parses source text into a validated program.
func Assemble(src string) (*isa.Program, error) {
	p := &isa.Program{Labels: map[string]int{}}
	type patch struct {
		instr int
		label string
		line  int
	}
	var patches []patch

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels: one or more "name:" prefixes on a line.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !isIdent(name) {
				return nil, fmt.Errorf("line %d: invalid label %q", lineNo+1, name)
			}
			if _, dup := p.Labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, name)
			}
			p.Labels[name] = len(p.Instrs)
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		in, labelRef, err := parseInstruction(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if labelRef != "" {
			patches = append(patches, patch{instr: len(p.Instrs), label: labelRef, line: lineNo + 1})
		}
		p.Instrs = append(p.Instrs, in)
	}
	for _, pt := range patches {
		tgt, ok := p.Labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", pt.line, pt.label)
		}
		p.Instrs[pt.instr].Imm = int64(tgt)
		p.Instrs[pt.instr].Label = pt.label
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error, for tests and fixed
// built-in programs.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders a program back to assembly text.
func Disassemble(p *isa.Program) string { return p.String() }

func stripComment(line string) string {
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseInstruction parses one mnemonic line. It returns the instruction
// and, for branches, the referenced label (resolved by the caller).
func parseInstruction(line string) (isa.Instruction, string, error) {
	mnemonic, rest, _ := strings.Cut(line, " ")
	args := splitArgs(rest)
	var in isa.Instruction

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d (%q)", mnemonic, n, len(args), rest)
		}
		return nil
	}

	switch strings.ToLower(mnemonic) {
	case "nop":
		in.Op = isa.OpNop
		return in, "", need(0)
	case "halt":
		in.Op = isa.OpHalt
		return in, "", need(0)
	case "mov":
		in.Op = isa.OpMov
		if err := need(2); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseReg(args[0], &in.Rd), parseImm(args[1], &in.Imm))
	case "movr":
		in.Op = isa.OpMovReg
		if err := need(2); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseReg(args[0], &in.Rd), parseReg(args[1], &in.Rs))
	case "add", "sub", "and", "or", "xor":
		in.Op = map[string]isa.Opcode{
			"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd,
			"or": isa.OpOr, "xor": isa.OpXor,
		}[strings.ToLower(mnemonic)]
		if err := need(3); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseReg(args[0], &in.Rd), parseReg(args[1], &in.Rs), parseReg(args[2], &in.Rt))
	case "addi":
		in.Op = isa.OpAddi
		if err := need(3); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseReg(args[0], &in.Rd), parseReg(args[1], &in.Rs), parseImm(args[2], &in.Imm))
	case "load":
		in.Op = isa.OpLoad
		if err := need(2); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseReg(args[0], &in.Rd), parseMem(args[1], &in.Rs, &in.Imm))
	case "store":
		in.Op = isa.OpStore
		if err := need(2); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseReg(args[0], &in.Rs), parseMem(args[1], &in.Rd, &in.Imm))
	case "hld":
		in.Op = isa.OpHostLoad
		if err := need(2); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseReg(args[0], &in.Rd), parseImm(args[1], &in.Imm))
	case "hst":
		in.Op = isa.OpHostStore
		if err := need(2); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseReg(args[0], &in.Rs), parseImm(args[1], &in.Imm))
	case "beq", "bne", "blt":
		in.Op = map[string]isa.Opcode{"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt}[strings.ToLower(mnemonic)]
		if err := need(3); err != nil {
			return in, "", err
		}
		if err := firstErr(parseReg(args[0], &in.Rs), parseReg(args[1], &in.Rt)); err != nil {
			return in, "", err
		}
		return parseTarget(in, args[2])
	case "jmp":
		in.Op = isa.OpJmp
		if err := need(1); err != nil {
			return in, "", err
		}
		return parseTarget(in, args[0])
	case "qnopreg":
		in.Op = isa.OpQNopReg
		if err := need(1); err != nil {
			return in, "", err
		}
		return in, "", parseReg(args[0], &in.Rs)
	case "wait":
		in.Op = isa.OpWait
		if err := need(1); err != nil {
			return in, "", err
		}
		return in, "", parseImm(args[0], &in.Imm)
	case "waitreg":
		in.Op = isa.OpWaitReg
		if err := need(1); err != nil {
			return in, "", err
		}
		return in, "", parseReg(args[0], &in.Rs)
	case "pulse":
		in.Op = isa.OpPulse
		if err := need(2); err != nil {
			return in, "", err
		}
		if err := parseMask(args[0], &in.QAddr); err != nil {
			return in, "", err
		}
		in.UOp = args[1]
		return in, "", nil
	case "mpg":
		in.Op = isa.OpMPG
		if err := need(2); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseMask(args[0], &in.QAddr), parseImm(args[1], &in.Imm))
	case "md":
		in.Op = isa.OpMD
		if len(args) == 1 {
			// Algorithm 3 writes "MD {q2}" with an implicit destination.
			return in, "", parseMask(args[0], &in.QAddr)
		}
		if err := need(2); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseMask(args[0], &in.QAddr), parseReg(args[1], &in.Rd))
	case "apply":
		in.Op = isa.OpApply
		if err := need(2); err != nil {
			return in, "", err
		}
		in.UOp = args[0]
		return in, "", parseQubit(args[1], &in.QAddr)
	case "apply2":
		in.Op = isa.OpApply2
		if err := need(3); err != nil {
			return in, "", err
		}
		in.UOp = args[0]
		var a, b isa.QubitMask
		if err := firstErr(parseQubit(args[1], &a), parseQubit(args[2], &b)); err != nil {
			return in, "", err
		}
		if a == b {
			return in, "", fmt.Errorf("Apply2 operands must be distinct qubits")
		}
		in.QAddr = a | b
		// Encode operand order: the first-listed qubit index goes in Imm
		// so microcode can distinguish control/target.
		in.Imm = int64(a.Qubits()[0])
		return in, "", nil
	case "measure":
		in.Op = isa.OpMeasure
		if err := need(2); err != nil {
			return in, "", err
		}
		return in, "", firstErr(parseQubit(args[0], &in.QAddr), parseReg(args[1], &in.Rd))
	}
	return in, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
}

func parseTarget(in isa.Instruction, arg string) (isa.Instruction, string, error) {
	if n, err := strconv.ParseInt(arg, 10, 64); err == nil {
		in.Imm = n
		return in, "", nil
	}
	if !isIdent(arg) {
		return in, "", fmt.Errorf("invalid branch target %q", arg)
	}
	return in, arg, nil
}

// splitArgs splits an operand list on commas, but keeps {q0, q1} masks
// intact.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	cur := strings.Builder{}
	for _, r := range s {
		switch r {
		case '{':
			depth++
			cur.WriteRune(r)
		case '}':
			depth--
			cur.WriteRune(r)
		case ',':
			if depth > 0 {
				cur.WriteRune(r)
			} else {
				out = append(out, strings.TrimSpace(cur.String()))
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out
}

func parseReg(s string, r *isa.Reg) error {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "$")
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return fmt.Errorf("invalid register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return fmt.Errorf("invalid register %q", s)
	}
	*r = isa.Reg(n)
	return nil
}

func parseImm(s string, v *int64) error {
	n, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return fmt.Errorf("invalid immediate %q", s)
	}
	*v = n
	return nil
}

// parseMem parses rbase[offset].
func parseMem(s string, base *isa.Reg, off *int64) error {
	open := strings.Index(s, "[")
	if open < 0 || !strings.HasSuffix(s, "]") {
		return fmt.Errorf("invalid memory operand %q (want rN[imm])", s)
	}
	if err := parseReg(s[:open], base); err != nil {
		return err
	}
	return parseImm(s[open+1:len(s)-1], off)
}

// parseMask parses {q0, q1, …}.
func parseMask(s string, m *isa.QubitMask) error {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return fmt.Errorf("invalid qubit set %q (want {q0, q1})", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return fmt.Errorf("empty qubit set")
	}
	var mask isa.QubitMask
	for _, part := range strings.Split(inner, ",") {
		var single isa.QubitMask
		if err := parseQubit(part, &single); err != nil {
			return err
		}
		mask |= single
	}
	*m = mask
	return nil
}

func parseQubit(s string, m *isa.QubitMask) error {
	s = strings.TrimSpace(s)
	if len(s) < 2 || (s[0] != 'q' && s[0] != 'Q') {
		return fmt.Errorf("invalid qubit %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.MaxQubits {
		return fmt.Errorf("invalid qubit %q", s)
	}
	*m = isa.MaskQ(n)
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
