package asm

import (
	"math/rand"
	"strings"
	"testing"

	"quma/internal/isa"
)

func TestAssembleAlgorithm3Prefix(t *testing.T) {
	// The opening of the paper's Algorithm 3 (AllXY QuMIS program).
	src := `
mov r15 , 40000  # 200 us
mov r1, 0        # loop counter
mov r2, 25600    # number of averages

Outer_Loop:
QNopReg r15      # Identity , Identity
Pulse {q2}, I
Wait 4
Pulse {q2}, I
Wait 4
MPG {q2}, 300
MD {q2}
addi r1, r1, 1
bne r1, r2, Outer_Loop
halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 13 {
		t.Fatalf("got %d instructions, want 13", len(p.Instrs))
	}
	if p.Labels["Outer_Loop"] != 3 {
		t.Errorf("Outer_Loop = %d, want 3", p.Labels["Outer_Loop"])
	}
	bne := p.Instrs[11]
	if bne.Op != isa.OpBne || bne.Imm != 3 || bne.Label != "Outer_Loop" {
		t.Errorf("bne = %+v", bne)
	}
	if p.Instrs[4].Op != isa.OpPulse || p.Instrs[4].UOp != "I" || !p.Instrs[4].QAddr.Contains(2) {
		t.Errorf("pulse = %+v", p.Instrs[4])
	}
	if p.Instrs[8].Op != isa.OpMPG || p.Instrs[8].Imm != 300 {
		t.Errorf("mpg = %+v", p.Instrs[8])
	}
	if p.Instrs[9].Op != isa.OpMD || p.Instrs[9].Rd != 0 {
		t.Errorf("md with implicit rd = %+v", p.Instrs[9])
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
mov r3, 100
Loop:
QNopReg r15
Pulse {q0, q1}, CZ
Wait 8
MPG {q0}, 300
MD {q0}, r7
load r9, r3[0]
add r9, r9, r7
store r9, r3[0]
addi r1, r1, 1
bne r1, r2, Loop
halt
`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p1)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatal("instruction count changed")
	}
	for i := range p1.Instrs {
		if p1.Instrs[i].String() != p2.Instrs[i].String() {
			t.Errorf("instr %d: %q != %q", i, p1.Instrs[i], p2.Instrs[i])
		}
	}
}

func TestAssembleQISInstructions(t *testing.T) {
	p, err := Assemble(`
Apply X180, q0
Apply2 CNOT, q1, q0
Measure q0, r7
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Op != isa.OpApply || p.Instrs[0].UOp != "X180" {
		t.Errorf("apply = %+v", p.Instrs[0])
	}
	a2 := p.Instrs[1]
	if a2.Op != isa.OpApply2 || a2.QAddr != isa.MaskQ(0, 1) || a2.Imm != 1 {
		t.Errorf("apply2 = %+v (Imm must record first operand q1)", a2)
	}
	if p.Instrs[2].Op != isa.OpMeasure || p.Instrs[2].Rd != 7 {
		t.Errorf("measure = %+v", p.Instrs[2])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frobnicate r1", "unknown mnemonic"},
		{"bad register", "mov r99, 1", "invalid register"},
		{"bad qubit", "Pulse {q16}, X180", "invalid qubit"},
		{"empty mask", "Pulse {}, X180", "empty qubit set"},
		{"missing brace", "Pulse q0, X180", "invalid qubit set"},
		{"undefined label", "bne r1, r2, Nowhere", "undefined label"},
		{"duplicate label", "L:\nnop\nL:\nnop", "duplicate label"},
		{"bad mem operand", "load r1, r2", "invalid memory operand"},
		{"bad immediate", "Wait abc", "invalid immediate"},
		{"same qubits apply2", "Apply2 CNOT, q1, q1", "distinct"},
		{"operand count", "add r1, r2", "expects 3 operands"},
		{"bad label", "9bad:\nnop", "invalid label"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantSub)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble(`
# full line comment
// another comment style

nop   # trailing
halt  // trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 2 {
		t.Errorf("got %d instrs, want 2", len(p.Instrs))
	}
}

func TestCaseInsensitiveMnemonics(t *testing.T) {
	p, err := Assemble("PULSE {q0}, X180\nwait 4\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Op != isa.OpPulse || p.Instrs[0].UOp != "X180" {
		t.Error("mnemonic case-insensitivity broken")
	}
}

func TestLabelOnSameLineAsInstruction(t *testing.T) {
	p, err := Assemble("Start: nop\njmp Start")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["Start"] != 0 || p.Instrs[1].Imm != 0 {
		t.Errorf("labels = %v, jmp = %+v", p.Labels, p.Instrs[1])
	}
}

func TestNumericBranchTarget(t *testing.T) {
	p, err := Assemble("nop\nnop\njmp 0")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[2].Imm != 0 {
		t.Error("numeric target not parsed")
	}
}

func TestDollarRegisterSyntax(t *testing.T) {
	// Table 6 writes "MD QAddr, $rd".
	p, err := Assemble("MD {q0}, $r7")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Rd != 7 {
		t.Errorf("rd = %v", p.Instrs[0].Rd)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAssemble("bogus")
}

func TestEncodedRoundTripThroughBinary(t *testing.T) {
	// Assemble → encode → decode → reassemble-from-listing equality.
	p, err := Assemble(`
mov r15, 40000
Loop:
QNopReg r15
Pulse {q2}, X180
Wait 4
MPG {q2}, 300
MD {q2}, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	syms := isa.StandardSymbols()
	words, err := isa.EncodeProgram(p, syms)
	if err != nil {
		t.Fatal(err)
	}
	back, err := isa.DecodeProgram(words, syms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Instrs {
		want := p.Instrs[i]
		want.Label = "" // labels do not survive binary
		if back.Instrs[i].String() != want.String() {
			t.Errorf("instr %d: %q != %q", i, back.Instrs[i], want)
		}
	}
}

func TestHostExchangeAssembly(t *testing.T) {
	p, err := Assemble("hld r1, 3\nhst r2, 4\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Op != isa.OpHostLoad || p.Instrs[0].Rd != 1 || p.Instrs[0].Imm != 3 {
		t.Errorf("hld = %+v", p.Instrs[0])
	}
	if p.Instrs[1].Op != isa.OpHostStore || p.Instrs[1].Rs != 2 || p.Instrs[1].Imm != 4 {
		t.Errorf("hst = %+v", p.Instrs[1])
	}
	// Round trip through the listing.
	p2, err := Assemble(Disassemble(p))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Instrs[0].String() != p.Instrs[0].String() {
		t.Error("hld listing round trip failed")
	}
}

// Property: any structurally valid random program survives
// disassemble → reassemble with identical instruction listings.
func TestPropertyListingRoundTrip(t *testing.T) {
	uops := []string{"I", "X180", "X90", "Xm90", "Y180", "Y90", "Ym90", "CZ"}
	gen := func(rng *rand.Rand) *isa.Program {
		n := rng.Intn(30) + 2
		p := &isa.Program{Labels: map[string]int{}}
		for i := 0; i < n-1; i++ {
			var in isa.Instruction
			switch rng.Intn(12) {
			case 0:
				in = isa.Instruction{Op: isa.OpMov, Rd: isa.Reg(rng.Intn(16)), Imm: int64(rng.Intn(100000))}
			case 1:
				in = isa.Instruction{Op: isa.OpAdd, Rd: isa.Reg(rng.Intn(16)), Rs: isa.Reg(rng.Intn(16)), Rt: isa.Reg(rng.Intn(16))}
			case 2:
				in = isa.Instruction{Op: isa.OpAddi, Rd: isa.Reg(rng.Intn(16)), Rs: isa.Reg(rng.Intn(16)), Imm: int64(rng.Intn(200) - 100)}
			case 3:
				in = isa.Instruction{Op: isa.OpLoad, Rd: isa.Reg(rng.Intn(16)), Rs: isa.Reg(rng.Intn(16)), Imm: int64(rng.Intn(64))}
			case 4:
				in = isa.Instruction{Op: isa.OpStore, Rs: isa.Reg(rng.Intn(16)), Rd: isa.Reg(rng.Intn(16)), Imm: int64(rng.Intn(64))}
			case 5:
				in = isa.Instruction{Op: isa.OpWait, Imm: int64(rng.Intn(40000) + 1)}
			case 6:
				in = isa.Instruction{Op: isa.OpQNopReg, Rs: isa.Reg(rng.Intn(16))}
			case 7:
				in = isa.Instruction{Op: isa.OpPulse, QAddr: isa.MaskQ(rng.Intn(8)), UOp: uops[rng.Intn(len(uops))]}
			case 8:
				in = isa.Instruction{Op: isa.OpMPG, QAddr: isa.MaskQ(rng.Intn(8)), Imm: int64(rng.Intn(1000) + 1)}
			case 9:
				in = isa.Instruction{Op: isa.OpMD, QAddr: isa.MaskQ(rng.Intn(8)), Rd: isa.Reg(rng.Intn(16))}
			case 10:
				in = isa.Instruction{Op: isa.OpBne, Rs: isa.Reg(rng.Intn(16)), Rt: isa.Reg(rng.Intn(16)), Imm: int64(rng.Intn(n))}
			case 11:
				in = isa.Instruction{Op: isa.OpHostLoad, Rd: isa.Reg(rng.Intn(16)), Imm: int64(rng.Intn(64))}
			}
			p.Instrs = append(p.Instrs, in)
		}
		p.Instrs = append(p.Instrs, isa.Instruction{Op: isa.OpHalt})
		return p
	}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := gen(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid program: %v", seed, err)
		}
		back, err := Assemble(Disassemble(p))
		if err != nil {
			t.Fatalf("seed %d: reassembly failed: %v\n%s", seed, err, Disassemble(p))
		}
		if len(back.Instrs) != len(p.Instrs) {
			t.Fatalf("seed %d: length changed", seed)
		}
		for i := range p.Instrs {
			want := p.Instrs[i]
			want.Label = ""
			got := back.Instrs[i]
			got.Label = ""
			if got.String() != want.String() {
				t.Errorf("seed %d instr %d: %q != %q", seed, i, got, want)
			}
		}
	}
}
