package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble fuzzes the assembler with arbitrary source text. The
// contract under fuzzing:
//
//   - Assemble never panics, whatever the input — malformed sources must
//     come back as errors.
//   - Errors are diagnostic: non-empty, and for line-scoped problems
//     they name the line ("line N:"), so a failing program points at its
//     own defect.
//   - Accepted programs are self-consistent: they validate, disassemble,
//     and the disassembly re-assembles to the same instruction sequence
//     (labels at the very end of a program are the one documented
//     exception — they address no instruction and are dropped by the
//     renderer).
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"halt\n",
		"# comment only\n",
		"mov r15, 40000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n",
		"Loop:\naddi r1, r1, 1\nbne r1, r2, Loop\nhalt\n",
		"Apply2 CNOT, q1, q0\nMeasure q0, r7\n",
		"Pulse {q0, q15}, X180\nWait 4\n",
		"load r9, r3[0]\nstore r9, r3[1]\nhld r1, 2\nhst r1, 3\n",
		"beq r7, r6, Done\nPulse {q0}, X180\nDone:\nhalt\n",
		"mov r1, 999999999999999999\n",
		"a:b:c: nop\n",
		"Pulse {q0}, \n",
		"bne r1, r2, Nowhere\n",
		"Pulse {q99}, X180\n",
		"jmp 0\n",
		"\tMD {q2}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("Assemble returned an empty error message")
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\n%s", err, src)
		}
		// Disassembly must re-assemble to the same instructions.
		text := Disassemble(p)
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("disassembly does not re-assemble: %v\noriginal:\n%s\ndisassembly:\n%s", err, src, text)
		}
		if len(p2.Instrs) != len(p.Instrs) {
			t.Fatalf("round trip changed instruction count: %d vs %d\n%s", len(p.Instrs), len(p2.Instrs), text)
		}
		for i := range p.Instrs {
			if p.Instrs[i] != p2.Instrs[i] {
				t.Fatalf("round trip changed instr %d: %q vs %q", i, p.Instrs[i], p2.Instrs[i])
			}
		}
	})
}

// TestAssembleErrorsAreDiagnostic spot-checks that common mistakes carry
// the offending line number.
func TestAssembleErrorsAreDiagnostic(t *testing.T) {
	cases := []struct{ src, want string }{
		{"nop\nbogus r1\n", "line 2"},
		{"Pulse {q0}\n", "line 1"},
		{"mov r99, 1\n", "line 1"},
		{"jmp Missing\n", "line 1"},
		{"x:\nx:\nnop\n", "line 2"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%q assembled without error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not name %q", c.src, err, c.want)
		}
	}
}
