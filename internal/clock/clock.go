// Package clock defines the time base shared by every QuMA component.
//
// The paper's control electronics run at 200 MHz, i.e. one control cycle
// every 5 ns, while the arbitrary waveform generators sample analog
// envelopes at 1 GSample/s, i.e. one sample every 1 ns. All timing in the
// deterministic domain is expressed in cycles; all waveform content is
// expressed in samples. This package holds the two units and the
// conversions between them so that no other package hard-codes the ratio.
package clock

import "fmt"

// Cycle counts 5 ns control cycles of the deterministic timing domain.
// TD, the deterministic-domain clock maintained by the timing controller,
// is a Cycle value.
type Cycle uint64

// Sample counts 1 ns DAC/ADC samples.
type Sample uint64

const (
	// CycleNanos is the duration of one control cycle in nanoseconds
	// (200 MHz control clock).
	CycleNanos = 5
	// SampleNanos is the duration of one DAC sample in nanoseconds
	// (1 GSample/s).
	SampleNanos = 1
	// SamplesPerCycle is the number of DAC samples per control cycle.
	SamplesPerCycle = CycleNanos / SampleNanos
	// SampleRateHz is the DAC/ADC sampling rate.
	SampleRateHz = 1e9
	// CycleRateHz is the control clock rate.
	CycleRateHz = 200e6
)

// Nanos returns the cycle count expressed in nanoseconds.
func (c Cycle) Nanos() uint64 { return uint64(c) * CycleNanos }

// Seconds returns the cycle count expressed in seconds.
func (c Cycle) Seconds() float64 { return float64(c) * CycleNanos * 1e-9 }

// Samples returns the number of 1 ns samples spanned by c cycles.
func (c Cycle) Samples() Sample { return Sample(uint64(c) * SamplesPerCycle) }

// String renders the cycle count with its wall-clock equivalent, e.g.
// "40000cy (200µs)".
func (c Cycle) String() string {
	ns := c.Nanos()
	switch {
	case ns >= 1e3 && ns%1e3 == 0:
		return fmt.Sprintf("%dcy (%gµs)", uint64(c), float64(ns)/1e3)
	case ns >= 1e3:
		return fmt.Sprintf("%dcy (%gns)", uint64(c), float64(ns))
	default:
		return fmt.Sprintf("%dcy (%dns)", uint64(c), ns)
	}
}

// Nanos returns the sample count expressed in nanoseconds.
func (s Sample) Nanos() uint64 { return uint64(s) * SampleNanos }

// Seconds returns the sample count expressed in seconds.
func (s Sample) Seconds() float64 { return float64(s) * SampleNanos * 1e-9 }

// Cycles returns the number of whole control cycles spanned by s samples,
// rounding up: a pulse of 22 samples occupies 5 cycles of the control clock.
func (s Sample) Cycles() Cycle {
	return Cycle((uint64(s) + SamplesPerCycle - 1) / SamplesPerCycle)
}

// FromNanos converts a duration in nanoseconds to whole cycles, rounding up.
func FromNanos(ns uint64) Cycle {
	return Cycle((ns + CycleNanos - 1) / CycleNanos)
}

// FromSeconds converts a duration in seconds to whole cycles, rounding to
// the nearest cycle.
func FromSeconds(sec float64) Cycle {
	return Cycle(sec*1e9/CycleNanos + 0.5)
}
