package clock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCycleConversions(t *testing.T) {
	c := Cycle(4)
	if c.Nanos() != 20 {
		t.Errorf("4 cycles = %d ns, want 20", c.Nanos())
	}
	if c.Samples() != 20 {
		t.Errorf("4 cycles = %d samples, want 20", c.Samples())
	}
	if c.Seconds() != 20e-9 {
		t.Errorf("seconds = %v", c.Seconds())
	}
}

func TestSampleCyclesRoundsUp(t *testing.T) {
	cases := []struct {
		s Sample
		c Cycle
	}{{0, 0}, {1, 1}, {5, 1}, {6, 2}, {20, 4}, {22, 5}}
	for _, tc := range cases {
		if got := tc.s.Cycles(); got != tc.c {
			t.Errorf("%d samples -> %d cycles, want %d", tc.s, got, tc.c)
		}
	}
}

func TestFromNanosRoundsUp(t *testing.T) {
	if FromNanos(1) != 1 || FromNanos(5) != 1 || FromNanos(6) != 2 {
		t.Error("FromNanos rounding wrong")
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(200e-6); got != 40000 {
		t.Errorf("200µs = %d cycles, want 40000", got)
	}
}

func TestStringFormats(t *testing.T) {
	if s := Cycle(40000).String(); s != "40000cy (200µs)" {
		t.Errorf("string = %q", s)
	}
	if s := Cycle(4).String(); s != "4cy (20ns)" {
		t.Errorf("string = %q", s)
	}
	if s := Cycle(300).String(); s != "300cy (1500ns)" {
		t.Errorf("string = %q", s)
	}
}

// Property: cycle→sample→cycle round-trips exactly.
func TestPropertySampleCycleRoundTrip(t *testing.T) {
	f := func(c uint32) bool {
		cy := Cycle(c)
		return cy.Samples().Cycles() == cy
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
