package replay

import (
	"context"
	"strings"
	"testing"

	"quma/internal/asm"
	"quma/internal/core"
	"quma/internal/qphys"
)

// runEngine executes src for `shots` on a fresh machine and returns the
// stats plus the full per-shot measurement history and end-of-run
// counters.
func runEngine(t *testing.T, cfg core.Config, src string, shots int, mode Mode) (Stats, [][]MD, *core.Machine) {
	t.Helper()
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var hist [][]MD
	st, err := Run(context.Background(), m, prog, Options{Shots: shots, Mode: mode, OnShot: func(_ int, md []MD) {
		hist = append(hist, append([]MD(nil), md...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	return st, hist, m
}

const simpleShot = `
mov r15, 40000
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`

// feedbackShot is the examples/feedback active-reset cycle: the X180 is
// conditioned on the measured result, the canonical unsafe program.
const feedbackShot = `
mov r15, 40000
mov r6, 0
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
Wait 340
beq r7, r6, Verify
Pulse {q0}, X180
Wait 4
Verify:
MPG {q0}, 300
MD {q0}, r8
halt
`

func backends(t *testing.T, f func(t *testing.T, cfg core.Config)) {
	for _, b := range []core.Backend{core.BackendDensity, core.BackendTrajectory} {
		t.Run(string(b), func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.Backend = b
			cfg.Seed = 11
			cfg.CollectK = 1
			f(t, cfg)
		})
	}
}

func requireIdentical(t *testing.T, off, auto [][]MD, moff, mauto *core.Machine) {
	t.Helper()
	if len(off) != len(auto) {
		t.Fatalf("shot counts differ: %d vs %d", len(off), len(auto))
	}
	for s := range off {
		if len(off[s]) != len(auto[s]) {
			t.Fatalf("shot %d: MD counts differ: %d vs %d", s, len(off[s]), len(auto[s]))
		}
		for k := range off[s] {
			if off[s][k] != auto[s][k] {
				t.Fatalf("shot %d md %d: %+v vs %+v", s, k, off[s][k], auto[s][k])
			}
		}
	}
	if moff.PulsesPlayed != mauto.PulsesPlayed {
		t.Errorf("PulsesPlayed %d vs %d", moff.PulsesPlayed, mauto.PulsesPlayed)
	}
	if moff.Measurements != mauto.Measurements {
		t.Errorf("Measurements %d vs %d", moff.Measurements, mauto.Measurements)
	}
	aoff, aauto := moff.Collector.Averages(), mauto.Collector.Averages()
	for i := range aoff {
		if aoff[i] != aauto[i] {
			t.Errorf("collector average %d: %v vs %v", i, aoff[i], aauto[i])
		}
	}
}

func TestReplayBitIdenticalToFullSimulation(t *testing.T) {
	backends(t, func(t *testing.T, cfg core.Config) {
		const shots = 60
		stOff, off, moff := runEngine(t, cfg, simpleShot, shots, ModeOff)
		if stOff.Replayed != 0 {
			t.Errorf("ModeOff replayed %d shots", stOff.Replayed)
		}
		for _, mode := range []Mode{ModeAuto, ModeInterp, ModeCompiled} {
			st, got, m := runEngine(t, cfg, simpleShot, shots, mode)
			if !st.Safe || st.Replayed != shots-detectShots {
				t.Errorf("%s stats = %+v, want safe with %d replayed", mode, st, shots-detectShots)
			}
			wantCompiled := mode != ModeInterp
			if st.Compiled != wantCompiled {
				t.Errorf("%s stats = %+v, want Compiled=%v", mode, st, wantCompiled)
			}
			requireIdentical(t, off, got, moff, m)
		}
	})
}

// TestCompiledBitIdenticalToInterpreted is the engine-level A/B of the
// schedule compiler on a CZ + multi-measure program: the compiled
// executor must reproduce the interpreted replay loop bit for bit on
// both backends.
func TestCompiledBitIdenticalToInterpreted(t *testing.T) {
	src := `
mov r15, 40000
QNopReg r15
Pulse {q0}, X90
Wait 4
Pulse {q0, q1}, CZ
Wait 4
Pulse {q1}, Y180
Wait 4
MPG {q0}, 300
MD {q0}, r7
MPG {q1}, 300
MD {q1}, r8
halt
`
	backends(t, func(t *testing.T, cfg core.Config) {
		cfg.NumQubits = 2
		cfg.CollectK = 2
		const shots = 50
		stI, interp, mi := runEngine(t, cfg, src, shots, ModeInterp)
		stC, comp, mc := runEngine(t, cfg, src, shots, ModeCompiled)
		if !stI.Safe || stI.Compiled {
			t.Fatalf("interp stats = %+v", stI)
		}
		if !stC.Safe || !stC.Compiled {
			t.Fatalf("compiled stats = %+v", stC)
		}
		requireIdentical(t, interp, comp, mi, mc)
	})
}

// TestNoiselessFusionKeepsResultsIdentical covers the one configuration
// where compiled replay is float-equivalent rather than provably
// bit-exact: with decoherence disabled, no channel separates same-qubit
// pulses, so adjacent unitaries fuse into one precomputed matrix. The
// measured results must still be identical across every mode at fixed
// seeds (the amplitudes agree to rounding, and no pricing decision sits
// within an ulp of a draw).
func TestNoiselessFusionKeepsResultsIdentical(t *testing.T) {
	src := `
mov r15, 400
QNopReg r15
Pulse {q0}, X90
Wait 4
Pulse {q0}, Y90
Wait 4
Pulse {q0}, Xm90
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`
	for _, b := range []core.Backend{core.BackendDensity, core.BackendTrajectory} {
		t.Run(string(b), func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.Backend = b
			cfg.Qubit = []qphys.QubitParams{{}} // decoherence disabled: fusion fires
			cfg.Seed = 13
			cfg.CollectK = 1
			const shots = 50
			_, off, moff := runEngine(t, cfg, src, shots, ModeOff)
			for _, mode := range []Mode{ModeInterp, ModeCompiled} {
				st, got, m := runEngine(t, cfg, src, shots, mode)
				if !st.Safe {
					t.Fatalf("%s: noiseless pulse program must replay: %+v", mode, st)
				}
				requireIdentical(t, off, got, moff, m)
			}
		})
	}
}

// TestFeedbackFallbackUnderResetStatePooling runs the active-reset
// feedback program on a pooled machine (ResetState after serving an
// unrelated program) across every replay mode: the fallback must stay
// bit-identical to a fresh machine in every combination.
func TestFeedbackFallbackUnderResetStatePooling(t *testing.T) {
	backends(t, func(t *testing.T, cfg core.Config) {
		cfg.CollectK = 2
		const shots = 30
		const seed = 77
		fresh := func(mode Mode) (Stats, [][]MD, *core.Machine) {
			c := cfg
			c.Seed = seed
			return runEngine(t, c, feedbackShot, shots, mode)
		}
		_, want, mwant := fresh(ModeOff)
		for _, mode := range []Mode{ModeOff, ModeInterp, ModeCompiled, ModeAuto} {
			// Pooled machine: constructed under another seed, used for an
			// unrelated replay-safe program, then reset — it must behave
			// exactly like a fresh machine under the target seed.
			c := cfg
			c.Seed = 5
			m, err := core.New(c)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(context.Background(), m, asm.MustAssemble(simpleShot), Options{Shots: 10, Mode: mode}); err != nil {
				t.Fatal(err)
			}
			m.ResetState(seed)
			prog := asm.MustAssemble(feedbackShot)
			var hist [][]MD
			st, err := Run(context.Background(), m, prog, Options{Shots: shots, Mode: mode, OnShot: func(_ int, md []MD) {
				hist = append(hist, append([]MD(nil), md...))
			}})
			if err != nil {
				t.Fatal(err)
			}
			if st.Safe || st.Replayed != 0 {
				t.Fatalf("%s: feedback program must not replay on a pooled machine: %+v", mode, st)
			}
			requireIdentical(t, want, hist, mwant, m)
		}
	})
}

func TestFeedbackProgramFallsBack(t *testing.T) {
	backends(t, func(t *testing.T, cfg core.Config) {
		cfg.CollectK = 2
		const shots = 40
		_, off, moff := runEngine(t, cfg, feedbackShot, shots, ModeOff)
		stAuto, auto, mauto := runEngine(t, cfg, feedbackShot, shots, ModeAuto)
		if stAuto.Safe || stAuto.Replayed != 0 {
			t.Fatalf("feedback program must not replay: %+v", stAuto)
		}
		if !strings.Contains(stAuto.Reason, "measurement result") {
			t.Errorf("reason = %q, want measurement-consumption detection", stAuto.Reason)
		}
		requireIdentical(t, off, auto, moff, mauto)
		// And the program must actually have performed active reset: the
		// verify measurement reads |1⟩ far less often than the first.
		var first, verify int
		for _, md := range auto {
			first += md[0].Result
			verify += md[1].Result
		}
		if verify*3 >= first {
			t.Errorf("active reset ineffective under fallback: first=%d verify=%d", first, verify)
		}
	})
}

func TestCrossShotRegisterStateFallsBack(t *testing.T) {
	// r3 persists across shots; after two shots the branch flips and the
	// pulse schedule changes. Schedule comparison alone (shots 1 vs 2)
	// would not catch a flip at shot 5 — the cross-shot taint does.
	src := `
mov r15, 40000
mov r4, 2
addi r3, r3, 1
QNopReg r15
blt r4, r3, Skip
Pulse {q0}, X180
Wait 4
Skip:
MPG {q0}, 300
MD {q0}, r7
halt
`
	backends(t, func(t *testing.T, cfg core.Config) {
		const shots = 30
		_, off, moff := runEngine(t, cfg, src, shots, ModeOff)
		stAuto, auto, mauto := runEngine(t, cfg, src, shots, ModeAuto)
		if stAuto.Safe || stAuto.Replayed != 0 {
			t.Fatalf("cross-shot counter program must not replay: %+v", stAuto)
		}
		if !strings.Contains(stAuto.Reason, "cross-shot") {
			t.Errorf("reason = %q, want cross-shot detection", stAuto.Reason)
		}
		requireIdentical(t, off, auto, moff, mauto)
	})
}

func TestShotPeriodMisalignmentFallsBack(t *testing.T) {
	// Wait 5 instead of Wait 4 makes the shot period a non-multiple of
	// the 4-cycle SSB period, so the demodulated rotation drifts from
	// shot to shot: the recorded schedules of shots 1 and 2 differ and
	// the engine must fall back (still bit-identical).
	src := `
mov r15, 40000
QNopReg r15
Pulse {q0}, X90
Wait 5
MPG {q0}, 300
MD {q0}, r7
halt
`
	backends(t, func(t *testing.T, cfg core.Config) {
		const shots = 24
		_, off, moff := runEngine(t, cfg, src, shots, ModeOff)
		stAuto, auto, mauto := runEngine(t, cfg, src, shots, ModeAuto)
		if stAuto.Safe || stAuto.Replayed != 0 {
			t.Fatalf("misaligned program must not replay: %+v", stAuto)
		}
		if !strings.Contains(stAuto.Reason, "shot-invariant") {
			t.Errorf("reason = %q, want schedule-invariance detection", stAuto.Reason)
		}
		requireIdentical(t, off, auto, moff, mauto)
	})
}

func TestTooFewShotsRunFull(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CollectK = 1
	st, hist, _ := runEngine(t, cfg, simpleShot, detectShots, ModeAuto)
	if st.Safe || st.Replayed != 0 || len(hist) != detectShots {
		t.Fatalf("stats = %+v with %d shots", st, len(hist))
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	m, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog := asm.MustAssemble("halt\n")
	if _, err := Run(context.Background(), m, prog, Options{Shots: 0}); err == nil {
		t.Error("Shots=0 must fail")
	}
	if _, err := Run(context.Background(), m, prog, Options{Shots: 1, Mode: "sometimes"}); err == nil {
		t.Error("unknown mode must fail")
	}
}

func TestReplayMultiQubitCZSchedule(t *testing.T) {
	// Two-qubit flux pulses and multi-qubit measurement land in the
	// schedule and replay bit-identically.
	src := `
mov r15, 40000
QNopReg r15
Pulse {q0}, X180
Wait 4
Pulse {q0, q1}, CZ
Wait 4
MPG {q0}, 300
MD {q0}, r7
MPG {q1}, 300
MD {q1}, r8
halt
`
	backends(t, func(t *testing.T, cfg core.Config) {
		cfg.NumQubits = 2
		cfg.CollectK = 2
		const shots = 30
		stAuto, auto, mauto := runEngine(t, cfg, src, shots, ModeAuto)
		if !stAuto.Safe {
			t.Fatalf("CZ program should replay: %+v", stAuto)
		}
		_, off, moff := runEngine(t, cfg, src, shots, ModeOff)
		requireIdentical(t, off, auto, moff, mauto)
	})
}
