// Package replay implements the shot-replay execution engine: the
// record/replay split that exploits the paper's own architectural divide
// between a deterministic classical microarchitecture and a stochastic
// quantum substrate.
//
// For feedback-free programs, every shot's trip through fetch/decode, the
// physical microcode unit, the QMB, and the timing-control queues is
// bit-identical; only the quantum substrate (PRNG-driven channel
// unwinding, projection, readout noise) differs. The engine therefore:
//
//   - Records: runs leading shots through the full pipeline, capturing the
//     timestamped quantum event schedule via core.Probe — idle-advance
//     channel applications, pulse rotations, two-qubit flux unitaries, and
//     measurement chains, in deterministic-domain order.
//   - Detects: conservatively decides whether the schedule is
//     shot-invariant. Two conditions must hold: (1) the execution
//     controller observed no classical consumption of a measurement
//     result or of cross-shot register/memory state
//     (exec.Controller.ReplayUnsafeReason), and (2) the schedules of two
//     consecutive steady-state shots are identical — which also catches
//     timing-induced variation such as SSB-phase drift when the shot
//     period is not a multiple of the modulation period.
//   - Replays: drives the qphys.State backend directly from the recorded
//     schedule for all remaining shots — no assembler, no pipeline, no
//     timing queues — preserving the exact PRNG consumption order
//     (channel sampling → projection → integration noise, in TD order),
//     so results are bit-identical to full simulation.
//   - Compiles (the default): before replaying, the schedule is lowered
//     once into specialized closure-free steps bound to the concrete
//     backend type (see compile.go): fused adjacent unitaries, hoisted
//     per-schedule channel pricing tables, population carries threaded
//     between steps and across shots, and devirtualized executors. The
//     compiled form is memoized on the machine (core.Machine.ReplayCache)
//     and validated against each fresh recording, so pooled machines
//     compile each program once per lifetime. ModeInterp keeps the
//     op-by-op interpreter as the A/B baseline; both are bit-identical
//     to full simulation.
//
// Feedback programs (e.g. examples/feedback, the corrected repetition
// code) are detected as unsafe and transparently fall back to full
// per-shot simulation; correctness never depends on the detection saying
// yes, only performance does.
//
// Invariants replayed shots do NOT maintain: controller registers and
// data memory (no classical execution happens), the digital output unit's
// gating log, and the TraceEvents timeline. Anything consuming those must
// run with ModeOff. Experiment results flow through the data collection
// unit and the per-shot measurement callback, which replay maintains
// exactly.
package replay

import (
	"context"
	"fmt"

	"quma/internal/core"
	"quma/internal/isa"
	"quma/internal/qphys"
)

// Mode selects the engine behaviour.
type Mode string

const (
	// ModeAuto records leading shots, then replays the schedule when the
	// program is detected replay-safe, using the best available engine —
	// currently the compiled one (the default; "" means auto).
	ModeAuto Mode = "auto"
	// ModeOff runs every shot through the full pipeline.
	ModeOff Mode = "off"
	// ModeCompiled records leading shots and, when safe, compiles the
	// schedule once into specialized closure-free steps bound to the
	// concrete backend type (see compile.go), then replays the compiled
	// form. Bit-identical to ModeInterp and ModeOff whenever the
	// schedule separates same-qubit unitaries with at least one
	// channel application — every decoherent configuration. With
	// decoherence disabled, adjacent unitaries fuse into one
	// precomputed matrix (qphys.FuseUnitaries): amplitudes then agree
	// to floating-point rounding rather than bit-for-bit, which leaves
	// measured results identical in practice (regression-tested) but
	// not provably bit-exact.
	ModeCompiled Mode = "compiled"
	// ModeInterp records leading shots and, when safe, replays the
	// schedule by interpreting the recorded operation stream op-by-op
	// through the qphys.State interface — the pre-compilation engine,
	// kept as the A/B baseline for ModeCompiled.
	ModeInterp Mode = "interp"
)

// ParseMode validates a mode string and resolves the default: the empty
// string selects ModeAuto. Callers that accept a mode from the outside
// (flags, config) should reject anything ParseMode rejects instead of
// silently defaulting.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "":
		return ModeAuto, nil
	case ModeAuto, ModeOff, ModeCompiled, ModeInterp:
		return Mode(s), nil
	}
	return "", fmt.Errorf("replay: unknown mode %q (want %q, %q, %q or %q)",
		s, ModeAuto, ModeCompiled, ModeInterp, ModeOff)
}

// maxCompiledPrograms bounds the per-machine compiled-schedule memo.
const maxCompiledPrograms = 256

// detectShots is the number of leading shots executed through the full
// pipeline in ModeAuto: shot 0 carries the cold-start transient (TD = 0,
// all qubits idle since construction, so its idle durations differ from
// every later shot); shots 1 and 2 are recorded and compared — two
// consecutive steady-state shots with identical schedules prove
// shot-invariance for all that follow.
const detectShots = 3

// ctxCheckShots is the bounded-staleness interval of the cancellation
// check inside the replayed shot loops: the context is consulted once
// every ctxCheckShots shots, so a cancellation or deadline preempts a
// sweep within that many shots (a compiled repcode shot is ~2.7µs, so
// the bound is well under a millisecond) while the per-shot cost of the
// check amortizes to nothing. Full-pipeline shots are individually slow
// enough that their loops check every shot instead.
const ctxCheckShots = 32

// MD is one per-qubit measurement of a shot: the addressed qubit and the
// binary discrimination result the controller would see.
type MD struct {
	Qubit  int
	Result int
}

// Options configures one engine run.
type Options struct {
	// Shots is the number of times the program is executed (the averaging
	// count that used to live in the assembly Round_Loop).
	Shots int
	// Mode selects full simulation vs record/replay ("" = ModeAuto).
	Mode Mode
	// OnShot, when non-nil, is invoked after every shot with the shot's
	// measurement results in deterministic-domain order. The slice is
	// reused across shots; copy it to retain.
	OnShot func(shot int, md []MD)
	// BaseShot offsets the shot indices reported to OnShot and in
	// preemption/error messages: the global index of this run's first
	// shot when the caller splits one logical shot range across several
	// Runs on separate machines (the expt shot-sharding engine).
	// Execution is unaffected — lead/detection shots, replay-safety
	// detection, and the ctx-check cadence are all relative to this
	// run's own local shot range.
	BaseShot int
}

// Stats reports what the engine did.
type Stats struct {
	// Shots is the total number executed (full + replayed).
	Shots int
	// Replayed counts shots executed by schedule replay.
	Replayed int
	// Safe reports whether the program was detected replay-safe.
	Safe bool
	// Compiled reports whether replayed shots ran from the compiled
	// schedule (false: interpreted replay or no replay at all).
	Compiled bool
	// Lead counts the full-pipeline lead/detect shots this run paid
	// before replay engaged. It is zero whenever replay did not engage
	// (ModeOff, unsafe programs, too few shots): those runs execute
	// every shot through the full pipeline anyway, so their leading
	// shots are ordinary work, not recording overhead.
	Lead int
	// Overhead counts lead shots attributable to shot-sharding: merged
	// job stats (Merge, in shard order) count every shard's lead shots
	// beyond the first shard's as overhead, since an unsharded run of
	// the same job would pay the lead exactly once. Always zero on the
	// stats of a single engine run.
	Overhead int
	// Reason explains why replay was not used (empty when Safe).
	Reason string
}

// Merge folds the stats of the next shard of a shot-sharded run into s,
// in shard order: shot counts add, Safe/Compiled hold only if every
// shard held them (each shard detects independently; identical programs
// agree, so the AND is diagnostic, not lossy), and the first non-empty
// Reason is kept. Merging into a zero Stats adopts t wholesale.
func (s *Stats) Merge(t Stats) {
	if s.Shots == 0 {
		*s = t
		return
	}
	s.Shots += t.Shots
	s.Replayed += t.Replayed
	s.Lead += t.Lead
	// Every lead shot of a later shard is sharding overhead: the first
	// shard's recording would have covered the whole job unsharded.
	// (t.Lead already contains t.Overhead when t is itself a merged
	// aggregate, so this is not additive with t.Overhead.)
	s.Overhead += t.Lead
	s.Safe = s.Safe && t.Safe
	s.Compiled = s.Compiled && t.Compiled
	if s.Reason == "" {
		s.Reason = t.Reason
	}
}

// op kinds of a recorded schedule.
const (
	opIdle = iota
	opPulse
	opGate2
	opMeasure
)

// op is one recorded quantum operation. Matrices and Kraus slices alias
// the machine's rotation/decoherence cache entries, which are immutable
// for the duration of a run — the schedule stores no copies.
type op struct {
	kind  uint8
	q, qb int
	u     qphys.Matrix
	kraus []qphys.Matrix
}

// recorder implements core.Probe: it always collects per-shot measurement
// results (for OnShot delivery) and, when recording, appends the
// operation stream to the schedule.
type recorder struct {
	recording bool
	sched     []op
	md        []MD
}

func (r *recorder) Idle(q int, rz qphys.Matrix, kraus []qphys.Matrix) {
	if r.recording {
		r.sched = append(r.sched, op{kind: opIdle, q: q, u: rz, kraus: kraus})
	}
}

func (r *recorder) Pulse1(u qphys.Matrix, q int) {
	if r.recording {
		r.sched = append(r.sched, op{kind: opPulse, q: q, u: u})
	}
}

func (r *recorder) Gate2(u qphys.Matrix, qa, qb int) {
	if r.recording {
		r.sched = append(r.sched, op{kind: opGate2, q: qa, qb: qb, u: u})
	}
}

func (r *recorder) Measured(q, result int) {
	if r.recording {
		r.sched = append(r.sched, op{kind: opMeasure, q: q})
	}
	r.md = append(r.md, MD{Qubit: q, Result: result})
}

// sameMatrix reports whether two matrices are the same cached entry (or
// both empty). Matrices in a schedule come from the machine's caches, so
// identical operations share backing storage; value-equal matrices from
// different cache entries compare unequal, which errs toward fallback.
func sameMatrix(a, b qphys.Matrix) bool {
	if a.N != b.N || len(a.Data) != len(b.Data) {
		return false
	}
	return len(a.Data) == 0 || &a.Data[0] == &b.Data[0]
}

// sameKraus reports whether two Kraus sets are the same cached slice.
func sameKraus(a, b []qphys.Matrix) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// schedulesEqual compares two recorded shot schedules operation by
// operation.
func schedulesEqual(a, b []op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.kind != y.kind || x.q != y.q || x.qb != y.qb {
			return false
		}
		if !sameMatrix(x.u, y.u) || !sameKraus(x.kraus, y.kraus) {
			return false
		}
	}
	return true
}

// Run executes the program Shots times on the machine, per Options.Mode.
// The machine should be freshly constructed or ResetState so the engine
// owns its full deterministic timeline. Results (data collection unit,
// OnShot measurement streams, PulsesPlayed/Measurements counters) are
// bit-identical across modes for every program with decoherent qubits —
// replay only changes how fast they are produced. (The one qualified
// case: with decoherence disabled entirely, compiled replay fuses
// adjacent same-qubit unitaries, and results are float-equivalent rather
// than provably bit-exact — see ModeCompiled.)
//
// Cancellation: a done ctx preempts the run between full-pipeline shots
// and, inside replayed loops, within ctxCheckShots shots, returning the
// wrapped ctx.Err() (errors.Is-matchable against context.Canceled /
// context.DeadlineExceeded). A preempted run produces no usable result;
// a run that returns nil error is bit-identical to one executed with a
// context that was never canceled — cancellation can only abort a run,
// never perturb it. The machine is left mid-timeline; ResetState returns
// it to a sound pooled state (enforced by expt's cancellation tests).
func Run(ctx context.Context, m *core.Machine, p *isa.Program, opts Options) (Stats, error) {
	st := Stats{Shots: opts.Shots}
	if opts.Shots <= 0 {
		return st, fmt.Errorf("replay: Shots must be positive, got %d", opts.Shots)
	}
	mode, err := ParseMode(string(opts.Mode))
	if err != nil {
		return st, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	rec := &recorder{}
	m.SetProbe(rec)
	defer m.SetProbe(nil)
	m.Controller.ResetReplayTracking()

	base := opts.BaseShot
	fullShot := func(shot int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("replay: preempted before shot %d: %w", base+shot, err)
		}
		rec.md = rec.md[:0]
		if err := m.RunProgram(p); err != nil {
			return fmt.Errorf("replay: shot %d: %w", base+shot, err)
		}
		if opts.OnShot != nil {
			opts.OnShot(base+shot, rec.md)
		}
		return nil
	}

	if mode == ModeOff {
		for shot := 0; shot < opts.Shots; shot++ {
			if err := fullShot(shot); err != nil {
				return st, err
			}
		}
		st.Reason = "replay disabled"
		return st, nil
	}

	lead := opts.Shots
	if lead > detectShots {
		lead = detectShots
	}
	var s1, s2 []op
	for shot := 0; shot < lead; shot++ {
		if shot == 1 || shot == 2 {
			rec.recording, rec.sched = true, nil
		} else {
			rec.recording = false
		}
		if err := fullShot(shot); err != nil {
			return st, err
		}
		switch shot {
		case 1:
			s1 = rec.sched
		case 2:
			s2 = rec.sched
		}
	}
	rec.recording = false

	if opts.Shots <= detectShots {
		st.Reason = "too few shots to amortize recording"
		return st, nil
	}
	if reason := m.Controller.ReplayUnsafeReason(); reason != "" {
		st.Reason = reason
	} else if !schedulesEqual(s1, s2) {
		st.Reason = "schedule is not shot-invariant"
	}
	if st.Reason != "" {
		for shot := lead; shot < opts.Shots; shot++ {
			if err := fullShot(shot); err != nil {
				return st, err
			}
		}
		return st, nil
	}

	// Replay: drive the state backend directly from the steady-state
	// schedule, consuming the machine PRNG in exactly the recorded order.
	st.Safe = true
	st.Lead = lead
	m.SetProbe(nil)
	if mode != ModeInterp {
		// Compiled replay (ModeAuto, ModeCompiled): specialize the
		// schedule once, then run closure-free steps per shot. The
		// compiled form is memoized on the machine, keyed by program
		// identity — a machine pooled for the lifetime of a sweep (or of
		// the batch service, which also makes program pointers stable via
		// its service-lifetime assembly cache) compiles each distinct
		// program once, however many programs interleave on it. Every
		// hit is still validated entry-for-entry against the freshly
		// recorded schedule (whose matrices alias stable machine-cache
		// entries), so a stale entry — e.g. after core invalidated the
		// cache on UploadPulse/SetQubitParams — can only miss, never
		// corrupt.
		st.Compiled = true
		comp := memoizedCompile(m, p, s2)
		st.Replayed, err = comp.run(ctx, m, base, lead, opts.Shots, opts.OnShot)
		return st, err
	}
	state := m.State
	nMD := 0
	for i := range s2 {
		if s2[i].kind == opMeasure {
			nMD++
		}
	}
	md := make([]MD, 0, nMD)
	for shot := lead; shot < opts.Shots; shot++ {
		if (shot-lead)%ctxCheckShots == 0 {
			if err := ctx.Err(); err != nil {
				return st, fmt.Errorf("replay: preempted at shot %d: %w", base+shot, err)
			}
		}
		md = md[:0]
		for i := range s2 {
			o := &s2[i]
			switch o.kind {
			case opIdle:
				if o.u.N != 0 {
					state.Apply1(o.u, o.q)
				}
				if o.kraus != nil {
					state.ApplyKraus1(o.kraus, o.q)
				}
			case opPulse:
				if o.u.N != 0 {
					state.Apply1(o.u, o.q)
				}
				m.PulsesPlayed++
			case opGate2:
				state.Apply2(o.u, o.q, o.qb)
				m.PulsesPlayed++
			case opMeasure:
				md = append(md, MD{Qubit: o.q, Result: m.MeasureQubit(o.q)})
			}
		}
		st.Replayed++
		if opts.OnShot != nil {
			opts.OnShot(base+shot, md)
		}
	}
	return st, nil
}
