// compile.go turns a validated shot schedule into a compiled form:
// closure-free specialized steps (qphys.SchedOp) bound to the concrete
// state-backend type. The interpreted replay loop (replay.go) still pays,
// per shot, for interface dispatch on every operation, per-call operator
// classification and Born-weight derivation inside ApplyKraus1, and one
// population pass per channel application and measurement. Compilation
// hoists all of that out of the shot loop:
//
//   - Runs of adjacent deterministic single-qubit unitaries on the same
//     qubit fuse into one precomputed 2×2 matrix (qphys.FuseUnitaries),
//     and unitaries with real diagonal entries (every pulse rotation) are
//     classified for the cheaper Apply1RD kernel.
//   - Each decoherence channel's axis-aligned Kraus pricing coefficients
//     and operator tables are hoisted once per schedule into a
//     qphys.ChannelTable, deduplicated by the machine cache's Kraus-slice
//     identity. The PRNG draw order per step is unchanged, so results
//     stay bit-identical to interpreted replay.
//   - Population passes are chained: a channel application or measurement
//     asks the nearest preceding state-modifying step to accumulate its
//     populations during that step's own application pass, in the exact
//     addition order a standalone pass would use. Carries flow through
//     phase-safe two-qubit gates (CZ), which preserve every |a|² bit for
//     bit.
//   - The executors are devirtualized: the trajectory backend runs the
//     whole shot in one qphys.RunSchedule pass; the density backend gets
//     direct concrete-type calls; an interface fallback covers future
//     backends.
//
// All per-schedule scratch (step slice, channel tables, measurement
// buffer) is allocated at compile time, so compiled replay performs zero
// heap allocations per shot.
package replay

import (
	"context"
	"fmt"

	"quma/internal/core"
	"quma/internal/qphys"
)

// compileCache is one entry of the machine-resident compiled-schedule
// memo (core.Machine.ReplayCache holds a map keyed by *isa.Program): the
// recorded schedule the entry was built from, for entry-for-entry
// validation, and the compiled form.
type compileCache struct {
	sched []op
	c     *compiled
}

// compiled is a shot schedule after compilation.
type compiled struct {
	ops []qphys.SchedOp
	// pulses is the per-shot PulsesPlayed increment (pulse playbacks —
	// including timing-only zero-rotation ones — and two-qubit flux
	// pulses), applied once per replayed shot instead of per operation.
	pulses uint64
	// nMD is the number of measurements per shot (sizes the MD buffer).
	nMD int
	// fused counts unitary-fusion events (compile diagnostics, tests).
	fused int
}

// compileSchedule compiles a recorded steady-state schedule. Channel
// tables are deduplicated by the identity of the machine-cached Kraus
// slice, so every application of one decoherence channel shares one
// table.
func compileSchedule(sched []op) *compiled {
	c := &compiled{}
	tables := make(map[*qphys.Matrix]*qphys.ChannelTable)
	addUnitary := func(q int, u qphys.Matrix) {
		if n := len(c.ops); n > 0 {
			if s := &c.ops[n-1]; (s.Kind == qphys.SchedApply1 || s.Kind == qphys.SchedApply1RD) && int(s.Q) == q {
				s.U = qphys.FuseUnitaries(s.U, u)
				s.Kind = qphys.SchedApply1
				if qphys.RealDiag2(s.U) {
					s.Kind = qphys.SchedApply1RD
				}
				c.fused++
				return
			}
		}
		kind := qphys.SchedApply1
		if qphys.RealDiag2(u) {
			kind = qphys.SchedApply1RD
		}
		c.ops = append(c.ops, qphys.SchedOp{Kind: kind, Q: int16(q), U: u, CarryFor: -1})
	}
	for i := range sched {
		o := &sched[i]
		switch o.kind {
		case opIdle:
			if o.u.N != 0 {
				addUnitary(o.q, o.u)
			}
			if len(o.kraus) == 1 {
				// ApplyKraus1 applies a single-operator channel as a plain
				// unitary without drawing a variate, so it fuses like one.
				addUnitary(o.q, o.kraus[0])
			} else if o.kraus != nil {
				ct, ok := tables[&o.kraus[0]]
				if !ok {
					ct = qphys.NewChannelTable(o.kraus)
					tables[&o.kraus[0]] = ct
				}
				c.ops = append(c.ops, qphys.SchedOp{Kind: qphys.SchedChannel, Q: int16(o.q), Ch: ct, CarryFor: -1})
			}
		case opPulse:
			if o.u.N != 0 {
				addUnitary(o.q, o.u)
			}
			c.pulses++
		case opGate2:
			kind := qphys.SchedApply2
			if qphys.IsCZ(o.u) {
				kind = qphys.SchedCZ
			}
			c.ops = append(c.ops, qphys.SchedOp{
				Kind: kind, Q: int16(o.q), Qb: int16(o.qb), U: o.u,
				CarryFor: -1, PhaseSafe: phaseSafeGate2(o.u),
			})
			c.pulses++
		case opMeasure:
			c.ops = append(c.ops, qphys.SchedOp{Kind: qphys.SchedMeasure, Q: int16(o.q), CarryFor: -1})
			c.nMD++
		}
	}
	// Link population carries: every population consumer (a channel
	// application prices from one population pass; a measurement samples
	// from one) asks the nearest preceding state-modifying step to
	// accumulate its populations during that step's own application pass.
	// Phase-safe gate2 steps are transparent (they preserve |a|² bit for
	// bit). Producer eligibility follows the kernels: a channel can carry
	// any qubit; a unitary or a measurement only its own qubit — their
	// passes are pair-ordered, and a cross-qubit carry would have to
	// revisit half the state, the very pass it is meant to save (measured
	// twice to cost more than a standalone pass; see ROADMAP). The
	// executor still validates every carry at runtime: an anti-diagonal
	// or dense operator draw produces none.
	last := -1
	for i := range c.ops {
		s := &c.ops[i]
		if (s.Kind == qphys.SchedChannel || s.Kind == qphys.SchedMeasure) && last >= 0 {
			p := &c.ops[last]
			switch p.Kind {
			case qphys.SchedChannel:
				p.CarryFor = s.Q
			case qphys.SchedApply1, qphys.SchedApply1RD, qphys.SchedMeasure:
				if p.Q == s.Q {
					p.CarryFor = s.Q
				}
			}
		}
		if !(s.Kind == qphys.SchedCZ || (s.Kind == qphys.SchedApply2 && s.PhaseSafe)) {
			last = i
		}
	}
	// Wrap-around link: steady-state shots run back to back on one
	// machine, so the schedule is circular — the last state-modifying
	// step of shot k can carry populations for the first consumer of
	// shot k+1 (the state is the same and the accumulation order matches
	// a fresh pass; the executor threads the carry between shots).
	if last >= 0 {
		for i := range c.ops {
			s := &c.ops[i]
			if s.Kind == qphys.SchedChannel || s.Kind == qphys.SchedMeasure {
				p := &c.ops[last]
				switch p.Kind {
				case qphys.SchedChannel:
					p.CarryFor = s.Q
				case qphys.SchedApply1, qphys.SchedApply1RD, qphys.SchedMeasure:
					if p.Q == s.Q {
						p.CarryFor = s.Q
					}
				}
				break
			}
			if !(s.Kind == qphys.SchedCZ || (s.Kind == qphys.SchedApply2 && s.PhaseSafe)) {
				break
			}
		}
	}
	return c
}

// phaseSafeGate2 reports whether a two-qubit unitary is diagonal with
// every diagonal entry in {1, −1, i, −i}. Such a gate multiplies each
// amplitude by a unit that changes at most the sign or position of its
// real/imaginary parts, so |a|² terms — squares summed with IEEE's
// commutative addition — keep the same bits, and a population carry
// accumulated before the gate equals a standalone pass run after it.
func phaseSafeGate2(u qphys.Matrix) bool {
	if u.N != 4 {
		return false
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v := u.Data[i*4+j]
			if i != j {
				if v != 0 {
					return false
				}
				continue
			}
			re, im := real(v), imag(v)
			if !(im == 0 && (re == 1 || re == -1)) && !(re == 0 && (im == 1 || im == -1)) {
				return false
			}
		}
	}
	return true
}

// runDensity executes one compiled shot against the devirtualized density
// backend. The density kernels apply channels exactly (no PRNG, no
// populations), so the win here is hoisted operator tables, fused
// unitaries, and direct calls.
func (c *compiled) runDensity(m *core.Machine, d *qphys.Density, md []MD) []MD {
	for i := range c.ops {
		o := &c.ops[i]
		switch o.Kind {
		case qphys.SchedApply1, qphys.SchedApply1RD:
			d.Apply1(o.U, int(o.Q))
		case qphys.SchedChannel:
			d.ApplyChannel(o.Ch, int(o.Q))
		case qphys.SchedCZ, qphys.SchedApply2:
			d.Apply2(o.U, int(o.Q), int(o.Qb))
		case qphys.SchedMeasure:
			md = append(md, MD{Qubit: int(o.Q), Result: m.MeasureQubit(int(o.Q))})
		}
	}
	m.PulsesPlayed += c.pulses
	return md
}

// runGeneric executes one compiled shot through the qphys.State
// interface — the fallback for backends the compiler has no fast path
// for. Fused unitaries and per-shot counter batching still apply.
func (c *compiled) runGeneric(m *core.Machine, state qphys.State, md []MD) []MD {
	for i := range c.ops {
		o := &c.ops[i]
		switch o.Kind {
		case qphys.SchedApply1, qphys.SchedApply1RD:
			state.Apply1(o.U, int(o.Q))
		case qphys.SchedChannel:
			state.ApplyKraus1(o.Ch.Ops(), int(o.Q))
		case qphys.SchedCZ, qphys.SchedApply2:
			state.Apply2(o.U, int(o.Q), int(o.Qb))
		case qphys.SchedMeasure:
			md = append(md, MD{Qubit: int(o.Q), Result: m.MeasureQubit(int(o.Q))})
		}
	}
	m.PulsesPlayed += c.pulses
	return md
}

// run replays shots first..shots-1 from the compiled schedule, binding
// the whole shot loop to the concrete backend type once. The context is
// consulted every ctxCheckShots shots (bounded-staleness preemption); a
// preempted run returns the wrapped ctx.Err() with the count of shots
// already replayed. base offsets the shot indices reported to onShot and
// in preemption messages (Options.BaseShot): shot-sharded callers run
// each shard as its own engine invocation but number shots globally.
func (c *compiled) run(ctx context.Context, m *core.Machine, base, first, shots int, onShot func(int, []MD)) (int, error) {
	md := make([]MD, 0, c.nMD)
	replayed := 0
	check := func(shot int) error {
		if (shot-first)%ctxCheckShots != 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("replay: preempted at shot %d: %w", base+shot, err)
		}
		return nil
	}
	switch state := m.State.(type) {
	case *qphys.Trajectory:
		// The trajectory executor lives in qphys (one devirtualized pass
		// per shot); the callback finishes each measurement through the
		// machine chain and collects the shot's results. The population
		// carry threads across shots — the schedule is circular.
		measure := func(q, outcome int) {
			md = append(md, MD{Qubit: q, Result: m.FinishMeasure(outcome)})
		}
		carry, carryQ := qphys.PopCarry{}, -1
		for shot := first; shot < shots; shot++ {
			if err := check(shot); err != nil {
				return replayed, err
			}
			md = md[:0]
			carry, carryQ = state.RunSchedule(c.ops, carry, carryQ, measure)
			m.PulsesPlayed += c.pulses
			replayed++
			if onShot != nil {
				onShot(base+shot, md)
			}
		}
	case *qphys.Density:
		for shot := first; shot < shots; shot++ {
			if err := check(shot); err != nil {
				return replayed, err
			}
			md = c.runDensity(m, state, md[:0])
			replayed++
			if onShot != nil {
				onShot(base+shot, md)
			}
		}
	default:
		for shot := first; shot < shots; shot++ {
			if err := check(shot); err != nil {
				return replayed, err
			}
			md = c.runGeneric(m, m.State, md[:0])
			replayed++
			if onShot != nil {
				onShot(base+shot, md)
			}
		}
	}
	return replayed, nil
}
