package replay

import (
	"context"
	"testing"

	"quma/internal/asm"
	"quma/internal/core"
	"quma/internal/isa"
	"quma/internal/qphys"
)

// Unit tests of the schedule compiler: lowering, fusion, channel-table
// deduplication, carry linking, and the machine-resident compile cache.

func TestCompileScheduleLowering(t *testing.T) {
	kraus := qphys.DecoherenceChannel(8e-6, qphys.DefaultQubitParams())
	single := []qphys.Matrix{qphys.RX(0.3)}
	x90 := qphys.REquator(0, 1.5)
	y180 := qphys.REquator(1.2, 3.1)
	cz := qphys.CZ()
	sched := []op{
		{kind: opPulse, q: 0, u: x90},
		{kind: opPulse, q: 0, u: y180},           // adjacent same-qubit: fuses
		{kind: opIdle, q: 0, kraus: single},      // single-operator channel: fuses too
		{kind: opIdle, q: 1, kraus: kraus},       // multi-operator channel
		{kind: opIdle, q: 2, kraus: kraus},       // same cached slice: shared table
		{kind: opGate2, q: 0, qb: 1, u: cz},      // CZ: phase-safe, NegateBoth
		{kind: opIdle, q: 0, kraus: kraus},       // carry passes through the CZ
		{kind: opPulse, q: 3, u: qphys.Matrix{}}, // timing-only pulse: counter only
		{kind: opMeasure, q: 0},
	}
	c := compileSchedule(sched)
	if c.fused != 2 {
		t.Errorf("fused = %d, want 2 (adjacent pulse + single-op channel)", c.fused)
	}
	if c.pulses != 4 {
		t.Errorf("pulses = %d, want 4 (3 pulses + 1 flux)", c.pulses)
	}
	if c.nMD != 1 {
		t.Errorf("nMD = %d, want 1", c.nMD)
	}
	kinds := []uint8{qphys.SchedApply1, qphys.SchedChannel, qphys.SchedChannel, qphys.SchedCZ, qphys.SchedChannel, qphys.SchedMeasure}
	if len(c.ops) != len(kinds) {
		t.Fatalf("compiled to %d steps, want %d: %+v", len(c.ops), len(kinds), c.ops)
	}
	for i, k := range kinds {
		if c.ops[i].Kind != k {
			t.Errorf("step %d kind = %d, want %d", i, c.ops[i].Kind, k)
		}
	}
	if c.ops[1].Ch != c.ops[2].Ch || c.ops[1].Ch != c.ops[4].Ch {
		t.Error("identical cached Kraus slices must share one ChannelTable")
	}
	// Carry links: channel(q1)→channel(q2); channel(q2)→channel(q0)
	// through the phase-safe CZ; channel(q0)→measure(q0); the wrap-around
	// link points the last producer at the first consumer (channel q1).
	if got := c.ops[1].CarryFor; got != 2 {
		t.Errorf("step 1 carries for %d, want 2", got)
	}
	if got := c.ops[2].CarryFor; got != 0 {
		t.Errorf("step 2 carries for %d, want 0 (through the CZ)", got)
	}
	if got := c.ops[4].CarryFor; got != 0 {
		t.Errorf("step 4 carries for %d, want 0 (the measurement)", got)
	}
	if got := c.ops[5].CarryFor; got != -1 {
		t.Errorf("measure of q0 carries for %d, want -1 (wrap consumer is q1)", got)
	}
}

func TestPhaseSafeGate2(t *testing.T) {
	if !phaseSafeGate2(qphys.CZ()) {
		t.Error("CZ must be phase-safe")
	}
	if !phaseSafeGate2(qphys.Identity(4)) {
		t.Error("the identity must be phase-safe")
	}
	s := qphys.Identity(4)
	s.Set(3, 3, 1i)
	if !phaseSafeGate2(s) {
		t.Error("diag(1,1,1,i) must be phase-safe")
	}
	g := qphys.Identity(4)
	g.Set(3, 3, complex(0.6, 0.8))
	if phaseSafeGate2(g) {
		t.Error("a generic phase must not be phase-safe")
	}
	if phaseSafeGate2(qphys.Identity(2).Kron(qphys.Hadamard())) {
		t.Error("a non-diagonal gate must not be phase-safe")
	}
}

// TestCompileCacheReuse verifies the machine-resident memo: a second run
// of the same program on the same machine reuses the compiled schedule,
// a different program recompiles, and results stay bit-identical to a
// fresh machine either way.
func TestCompileCacheReuse(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Backend = core.BackendTrajectory
	cfg.Seed = 3
	cfg.CollectK = 1
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := asm.MustAssemble(simpleShot)
	if _, err := Run(context.Background(), m, prog, Options{Shots: 20, Mode: ModeCompiled}); err != nil {
		t.Fatal(err)
	}
	cache1, ok := m.ReplayCache.(map[*isa.Program]*compileCache)
	if !ok || cache1[prog] == nil {
		t.Fatal("first compiled run must populate the machine cache")
	}
	e1 := cache1[prog]
	m.ResetState(4)
	if _, err := Run(context.Background(), m, prog, Options{Shots: 20, Mode: ModeCompiled}); err != nil {
		t.Fatal(err)
	}
	e2 := m.ReplayCache.(map[*isa.Program]*compileCache)[prog]
	if e1.c != e2.c {
		t.Error("re-running the same program must reuse the compiled schedule")
	}
	// A different program compiles its own keyed entry — and leaves the
	// first program's entry in place, so interleaving programs on one
	// pooled machine (the batch-service pattern) never thrashes the memo.
	other := asm.MustAssemble(`
mov r15, 40000
QNopReg r15
Pulse {q0}, X180
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`)
	m.ResetState(5)
	if _, err := Run(context.Background(), m, other, Options{Shots: 20, Mode: ModeCompiled}); err != nil {
		t.Fatal(err)
	}
	cache2 := m.ReplayCache.(map[*isa.Program]*compileCache)
	if cache2[other] == nil || cache2[other].c == e1.c {
		t.Error("a different program must compile its own entry")
	}
	if cache2[prog] == nil || cache2[prog].c != e2.c {
		t.Error("the first program's entry must survive a second program")
	}
	m.ResetState(6)
	if _, err := Run(context.Background(), m, prog, Options{Shots: 20, Mode: ModeCompiled}); err != nil {
		t.Fatal(err)
	}
	if got := m.ReplayCache.(map[*isa.Program]*compileCache)[prog]; got == nil || got.c != e2.c {
		t.Error("returning to the first program must hit its keyed entry")
	}
	// And a cached run must equal a fresh machine bit for bit.
	m.ResetState(9)
	var pooled [][]MD
	if _, err := Run(context.Background(), m, prog, Options{Shots: 25, Mode: ModeCompiled, OnShot: func(_ int, md []MD) {
		pooled = append(pooled, append([]MD(nil), md...))
	}}); err != nil {
		t.Fatal(err)
	}
	c2 := cfg
	c2.Seed = 9
	_, fresh, mf := runEngine(t, c2, simpleShot, 25, ModeCompiled)
	requireIdentical(t, fresh, pooled, mf, m)
}

// BenchmarkCompiledShot measures one compiled replayed shot of the d=3
// repetition-code round in isolation — the per-shot unit the issue's
// 0 allocs/shot acceptance is stated over.
func BenchmarkCompiledShot(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Backend = core.BackendTrajectory
	cfg.NumQubits = 5
	cfg.Seed = 1
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	prog := asm.MustAssemble(repCodeShotSrc)
	// Record and compile through the engine once.
	if _, err := Run(context.Background(), m, prog, Options{Shots: detectShots + 1, Mode: ModeCompiled}); err != nil {
		b.Fatal(err)
	}
	cacheMap, ok := m.ReplayCache.(map[*isa.Program]*compileCache)
	if !ok || cacheMap[prog] == nil {
		b.Fatal("no compiled schedule cached")
	}
	cache := cacheMap[prog]
	tr := m.State.(*qphys.Trajectory)
	md := make([]MD, 0, cache.c.nMD)
	measure := func(q, outcome int) {
		md = append(md, MD{Qubit: q, Result: m.FinishMeasure(outcome)})
	}
	carry, carryQ := qphys.PopCarry{}, -1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md = md[:0]
		carry, carryQ = tr.RunSchedule(cache.c.ops, carry, carryQ, measure)
	}
}

// repCodeShotSrc is the d=3 syndromes-only repetition-code shot (the
// expt generator's output for the default parameters), inlined to avoid
// an import cycle with internal/expt.
const repCodeShotSrc = `
mov r15, 40000
QNopReg r15
Pulse {q0}, X180
Wait 4
Apply2 CNOT, q1, q0
Apply2 CNOT, q2, q0
Wait 1600
Apply2 CNOT, q3, q0
Apply2 CNOT, q3, q1
Apply2 CNOT, q4, q1
Apply2 CNOT, q4, q2
Measure q3, r7
Measure q4, r8
Wait 340
Measure q0, r9
Measure q1, r10
Measure q2, r11
Wait 340
halt
`
