// batch.go — the batch-aware compiled entry: one engine invocation that
// runs several shot shards ("lanes") in lockstep on a shared compiled
// schedule via qphys.TrajBatch.
//
// The division of labour mirrors the scalar engine exactly. Lead and
// detection shots stay per lane on the scalar machines — they feed each
// lane's PRNG stream (cold-start transient, recording, comparison) and
// let every lane validate replay safety against its own controller and
// caches. Only the steady-state replayed shots run batched, and only
// when every lane independently detected safety, every lane's recorded
// schedule is value-identical to lane 0's (lanes are distinct machines,
// so pointer identity cannot hold across them — but identical configs
// produce value-identical schedules, and the compiled tables derive
// from matrix values), and every lane's backend is the trajectory
// state. Any lane failing any gate demotes the whole group to the
// per-lane scalar paths, which are bit-identical anyway — batching is
// only ever a throughput fast path, never a semantic one.
package replay

import (
	"context"
	"fmt"

	"quma/internal/core"
	"quma/internal/isa"
	"quma/internal/qphys"
)

// BatchLane is one member of a lockstep batch: a machine that would
// otherwise run its own replay.Run invocation. BaseShot and OnShot mean
// exactly what they mean in Options — per-lane global shot numbering
// and per-lane result delivery.
type BatchLane struct {
	M        *core.Machine
	BaseShot int
	OnShot   func(shot int, md []MD)
}

// RunBatch executes the program Shots times on every lane, preserving
// each lane's bit-exact equivalence to a standalone Run(lane.M, p,
// Options{Shots, Mode, OnShot, BaseShot}) — same PRNG consumption, same
// state evolution, same OnShot streams, same Stats. The returned slice
// holds one Stats per lane, index-aligned with lanes.
//
// Cancellation and failure abort the whole batch: the first error (a
// shot failure during a lane's lead phase, or a context preemption
// inside the batched loop) is returned and the remaining work of every
// lane is abandoned — callers treat the group as one failed job, which
// matches the sharded engine's cancel-the-siblings semantics. A panic
// unwinds with the machines mid-timeline; callers must discard them.
func RunBatch(ctx context.Context, p *isa.Program, lanes []BatchLane, shots int, mode Mode) ([]Stats, error) {
	stats := make([]Stats, len(lanes))
	if len(lanes) == 0 {
		return stats, fmt.Errorf("replay: RunBatch requires at least one lane")
	}
	for i := range stats {
		stats[i].Shots = shots
	}
	if shots <= 0 {
		return stats, fmt.Errorf("replay: Shots must be positive, got %d", shots)
	}
	mode, err := ParseMode(string(mode))
	if err != nil {
		return stats, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(lanes) == 1 || mode == ModeOff || mode == ModeInterp {
		// Nothing to amortize (or a mode whose executor has no batched
		// form): run the lanes as plain sequential engine invocations.
		for i, ln := range lanes {
			st, err := Run(ctx, ln.M, p, Options{Shots: shots, Mode: mode, OnShot: ln.OnShot, BaseShot: ln.BaseShot})
			stats[i] = st
			if err != nil {
				return stats, err
			}
		}
		return stats, nil
	}

	lead := shots
	if lead > detectShots {
		lead = detectShots
	}
	recs := make([]*recorder, len(lanes))
	scheds := make([][]op, len(lanes))
	reasons := make([]string, len(lanes))
	for i, ln := range lanes {
		m := ln.M
		rec := &recorder{}
		recs[i] = rec
		m.SetProbe(rec)
		m.Controller.ResetReplayTracking()
		var s1, s2 []op
		for shot := 0; shot < lead; shot++ {
			if shot == 1 || shot == 2 {
				rec.recording, rec.sched = true, nil
			} else {
				rec.recording = false
			}
			if err := laneFullShot(ctx, m, p, rec, ln, shot); err != nil {
				clearProbes(lanes[:i+1])
				return stats, err
			}
			switch shot {
			case 1:
				s1 = rec.sched
			case 2:
				s2 = rec.sched
			}
		}
		rec.recording = false
		scheds[i] = s2
		if reason := m.Controller.ReplayUnsafeReason(); reason != "" {
			reasons[i] = reason
		} else if !schedulesEqual(s1, s2) {
			reasons[i] = "schedule is not shot-invariant"
		}
	}
	if shots <= detectShots {
		for i := range stats {
			stats[i].Reason = "too few shots to amortize recording"
		}
		clearProbes(lanes)
		return stats, nil
	}

	batchable := true
	var trajs []*qphys.Trajectory
	for i, ln := range lanes {
		if reasons[i] != "" {
			batchable = false
			break
		}
		t, ok := ln.M.State.(*qphys.Trajectory)
		if !ok {
			batchable = false
			break
		}
		if i > 0 && !schedulesEqualValue(scheds[0], scheds[i]) {
			batchable = false
			break
		}
		trajs = append(trajs, t)
	}

	if !batchable {
		// Demote to per-lane scalar completion: each lane finishes
		// exactly as its own Run invocation would from this point.
		for i, ln := range lanes {
			st := &stats[i]
			if reasons[i] != "" {
				st.Reason = reasons[i]
				for shot := lead; shot < shots; shot++ {
					if err := laneFullShot(ctx, ln.M, p, recs[i], ln, shot); err != nil {
						clearProbes(lanes[i:])
						return stats, err
					}
				}
				ln.M.SetProbe(nil)
				continue
			}
			st.Safe = true
			st.Lead = lead
			ln.M.SetProbe(nil)
			st.Compiled = true
			comp := memoizedCompile(ln.M, p, scheds[i])
			st.Replayed, err = comp.run(ctx, ln.M, ln.BaseShot, lead, shots, ln.OnShot)
			if err != nil {
				clearProbes(lanes[i+1:])
				return stats, err
			}
		}
		return stats, nil
	}

	// Batched steady state: one compiled schedule (lane 0's memo slot —
	// validated value-identical across lanes above), one lockstep SoA
	// executor, per-lane measurement chains and result delivery.
	clearProbes(lanes)
	comp := memoizedCompile(lanes[0].M, p, scheds[0])
	for i := range stats {
		stats[i].Safe = true
		stats[i].Compiled = true
		stats[i].Lead = lead
	}
	batch := qphys.NewTrajBatch(trajs)
	md := make([][]MD, len(lanes))
	for i := range md {
		md[i] = make([]MD, 0, comp.nMD)
	}
	measure := func(lane, q, outcome int) {
		md[lane] = append(md[lane], MD{Qubit: q, Result: lanes[lane].M.FinishMeasure(outcome)})
	}
	for shot := lead; shot < shots; shot++ {
		if (shot-lead)%ctxCheckShots == 0 {
			if err := ctx.Err(); err != nil {
				batch.Scatter()
				return stats, fmt.Errorf("replay: preempted at shot %d: %w", lanes[0].BaseShot+shot, err)
			}
		}
		for i := range md {
			md[i] = md[i][:0]
		}
		batch.RunScheduleBatch(comp.ops, measure)
		for i, ln := range lanes {
			ln.M.PulsesPlayed += comp.pulses
			stats[i].Replayed++
			if ln.OnShot != nil {
				ln.OnShot(ln.BaseShot+shot, md[i])
			}
		}
	}
	batch.Scatter()
	return stats, nil
}

// laneFullShot runs one full-pipeline shot for a lane, mirroring Run's
// fullShot closure (ctx gate, recorder MD reset, OnShot delivery, error
// decoration with the lane's global shot index).
func laneFullShot(ctx context.Context, m *core.Machine, p *isa.Program, rec *recorder, ln BatchLane, shot int) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("replay: preempted before shot %d: %w", ln.BaseShot+shot, err)
	}
	rec.md = rec.md[:0]
	if err := m.RunProgram(p); err != nil {
		return fmt.Errorf("replay: shot %d: %w", ln.BaseShot+shot, err)
	}
	if ln.OnShot != nil {
		ln.OnShot(ln.BaseShot+shot, rec.md)
	}
	return nil
}

// clearProbes detaches the lead-phase recorders (error paths included:
// machines go back to the pool or are discarded, never with a live
// probe).
func clearProbes(lanes []BatchLane) {
	for _, ln := range lanes {
		ln.M.SetProbe(nil)
	}
}

// memoizedCompile resolves the compiled form of a freshly recorded
// schedule through the machine-resident memo, exactly as Run does:
// every hit is validated entry-for-entry against the recording, a miss
// compiles and (bounded) stores.
func memoizedCompile(m *core.Machine, p *isa.Program, sched []op) *compiled {
	cache, _ := m.ReplayCache.(map[*isa.Program]*compileCache)
	if cache == nil {
		cache = make(map[*isa.Program]*compileCache)
		m.ReplayCache = cache
	}
	if e := cache[p]; e != nil && schedulesEqual(e.sched, sched) {
		return e.c
	}
	comp := compileSchedule(sched)
	if len(cache) >= maxCompiledPrograms {
		cache = make(map[*isa.Program]*compileCache)
		m.ReplayCache = cache
	}
	cache[p] = &compileCache{sched: sched, c: comp}
	return comp
}

// matrixEqualValue compares two matrices entry by entry — the cross-
// machine analogue of sameMatrix, which relies on cache-pointer
// identity that cannot hold between distinct machines.
func matrixEqualValue(a, b qphys.Matrix) bool {
	if a.N != b.N || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// krausEqualValue compares two Kraus sets operator by operator.
func krausEqualValue(a, b []qphys.Matrix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !matrixEqualValue(a[i], b[i]) {
			return false
		}
	}
	return true
}

// schedulesEqualValue compares two recorded schedules by value. Lanes of
// a batch are separate machines whose schedules alias separate caches;
// identical configurations record value-identical schedules, and the
// compiled form derives from matrix values alone, so value equality is
// exactly the condition under which one compiled schedule serves every
// lane bit-identically.
func schedulesEqualValue(a, b []op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.kind != y.kind || x.q != y.q || x.qb != y.qb {
			return false
		}
		if !matrixEqualValue(x.u, y.u) || !krausEqualValue(x.kraus, y.kraus) {
			return false
		}
	}
	return true
}
