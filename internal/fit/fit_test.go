package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("stddev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input must give 0")
	}
}

func TestRMSDeviation(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 4}
	if d := RMSDeviation(a, b); math.Abs(d-1/math.Sqrt(3)) > 1e-12 {
		t.Errorf("rms = %v", d)
	}
	if d := MaxAbsDeviation(a, b); d != 1 {
		t.Errorf("max = %v", d)
	}
	if RMSDeviation(nil, nil) != 0 {
		t.Error("empty = 0")
	}
}

func TestLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7}
	a, b, err := Linear(x, y)
	if err != nil || math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Errorf("a=%v b=%v err=%v", a, b, err)
	}
}

func TestLinearDegenerate(t *testing.T) {
	if _, _, err := Linear([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("expected degenerate error")
	}
	if _, _, err := Linear([]float64{1}, []float64{2}); err == nil {
		t.Error("expected too-few-points error")
	}
}

func TestFitExpDecayCleanData(t *testing.T) {
	truth := ExpDecay{A: 0.9, Tau: 30e-6, C: 0.05}
	var x, y []float64
	for i := 0; i < 30; i++ {
		xi := float64(i) * 5e-6
		x = append(x, xi)
		y = append(y, truth.Eval(xi))
	}
	got, err := FitExpDecay(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Tau-truth.Tau)/truth.Tau > 0.01 {
		t.Errorf("tau = %v, want %v", got.Tau, truth.Tau)
	}
	if math.Abs(got.A-truth.A) > 0.01 || math.Abs(got.C-truth.C) > 0.01 {
		t.Errorf("A=%v C=%v", got.A, got.C)
	}
}

func TestFitExpDecayNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth := ExpDecay{A: 1.0, Tau: 20e-6, C: 0}
	var x, y []float64
	for i := 0; i < 50; i++ {
		xi := float64(i) * 2e-6
		x = append(x, xi)
		y = append(y, truth.Eval(xi)+rng.NormFloat64()*0.01)
	}
	got, err := FitExpDecay(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Tau-truth.Tau)/truth.Tau > 0.1 {
		t.Errorf("tau = %v, want %v ±10%%", got.Tau, truth.Tau)
	}
}

func TestFitDampedCosineRamsey(t *testing.T) {
	truth := DampedCosine{A: 0.5, Tau: 20e-6, Freq: 250e3, Phase: 0, C: 0.5}
	var x, y []float64
	for i := 0; i < 80; i++ {
		xi := float64(i) * 0.25e-6
		x = append(x, xi)
		y = append(y, truth.Eval(xi))
	}
	got, err := FitDampedCosine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Freq-truth.Freq)/truth.Freq > 0.02 {
		t.Errorf("freq = %v, want %v", got.Freq, truth.Freq)
	}
	if math.Abs(got.Tau-truth.Tau)/truth.Tau > 0.15 {
		t.Errorf("tau = %v, want %v", got.Tau, truth.Tau)
	}
}

func TestFitRBDecay(t *testing.T) {
	truth := RBDecay{A: 0.5, P: 0.985, B: 0.5}
	var m, f []float64
	for _, mi := range []float64{1, 3, 6, 10, 20, 40, 80, 120, 200} {
		m = append(m, mi)
		f = append(f, truth.Eval(mi))
	}
	got, err := FitRBDecay(m, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.P-truth.P) > 0.003 {
		t.Errorf("p = %v, want %v", got.P, truth.P)
	}
	if r := got.ErrorPerClifford(); math.Abs(r-(1-truth.P)/2) > 0.002 {
		t.Errorf("error per Clifford = %v", r)
	}
}

func TestFitErrorsOnBadInput(t *testing.T) {
	if _, err := FitExpDecay([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error")
	}
	if _, err := FitDampedCosine([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("expected error")
	}
	if _, err := FitRBDecay([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error")
	}
}

// Property: fitting data generated from the model recovers tau for a
// range of decay constants.
func TestPropertyExpDecayRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := ExpDecay{
			A:   0.5 + rng.Float64(),
			Tau: 5e-6 + rng.Float64()*50e-6,
			C:   rng.Float64() * 0.2,
		}
		var x, y []float64
		for i := 0; i < 40; i++ {
			xi := float64(i) * truth.Tau / 10
			x = append(x, xi)
			y = append(y, truth.Eval(xi))
		}
		got, err := FitExpDecay(x, y)
		if err != nil {
			return false
		}
		return math.Abs(got.Tau-truth.Tau)/truth.Tau < 0.05
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSolveSingular(t *testing.T) {
	if _, ok := solve([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); ok {
		t.Error("singular system must fail")
	}
}
