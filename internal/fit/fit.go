// Package fit provides the curve-fitting and statistics routines used to
// analyze experiment results: exponential decays (T1, randomized
// benchmarking), exponentially damped cosines (Ramsey fringes), and basic
// descriptive statistics. Everything is stdlib-only: fits use coarse grid
// search refined by Gauss–Newton least squares.
package fit

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// RMSDeviation returns sqrt(mean((a-b)²)) — the deviation metric quoted
// in the paper's Figure 9 ("Deviation: 0.012" against the ideal
// staircase).
func RMSDeviation(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var ss float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// MaxAbsDeviation returns max |a_i - b_i|.
func MaxAbsDeviation(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var m float64
	for i := 0; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Linear fits y = a + b·x by ordinary least squares.
func Linear(x, y []float64) (a, b float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, errors.New("fit: need at least two matched points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("fit: degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// ExpDecay holds the parameters of y = A·exp(-x/Tau) + C.
type ExpDecay struct {
	A, Tau, C float64
}

// Eval evaluates the model at x.
func (e ExpDecay) Eval(x float64) float64 { return e.A*math.Exp(-x/e.Tau) + e.C }

// FitExpDecay fits y = A·e^{-x/τ} + C. The initial guess comes from the
// data range and a log-linear fit; Gauss–Newton refines it.
func FitExpDecay(x, y []float64) (ExpDecay, error) {
	if len(x) != len(y) || len(x) < 3 {
		return ExpDecay{}, errors.New("fit: need at least three matched points")
	}
	c0 := y[len(y)-1]
	a0 := y[0] - c0
	if a0 == 0 {
		a0 = 1e-9
	}
	// Log-linear initial tau: use points with same sign as a0.
	var lx, ly []float64
	for i := range x {
		v := (y[i] - c0) / a0
		if v > 1e-6 {
			lx = append(lx, x[i])
			ly = append(ly, math.Log(v))
		}
	}
	tau0 := (x[len(x)-1] - x[0]) / 2
	if len(lx) >= 2 {
		if _, slope, err := Linear(lx, ly); err == nil && slope < 0 {
			tau0 = -1 / slope
		}
	}
	if tau0 <= 0 {
		tau0 = (x[len(x)-1] - x[0]) / 2
	}
	p := []float64{a0, tau0, c0}
	model := func(p []float64, xi float64) float64 {
		return p[0]*math.Exp(-xi/p[1]) + p[2]
	}
	grad := func(p []float64, xi float64) []float64 {
		e := math.Exp(-xi / p[1])
		return []float64{e, p[0] * e * xi / (p[1] * p[1]), 1}
	}
	p, err := gaussNewton(x, y, p, model, grad, func(p []float64) bool { return p[1] > 0 })
	if err != nil {
		return ExpDecay{}, err
	}
	return ExpDecay{A: p[0], Tau: p[1], C: p[2]}, nil
}

// DampedCosine holds y = A·e^{-x/τ}·cos(2πf·x + φ) + C.
type DampedCosine struct {
	A, Tau, Freq, Phase, C float64
}

// Eval evaluates the model at x.
func (d DampedCosine) Eval(x float64) float64 {
	return d.A*math.Exp(-x/d.Tau)*math.Cos(2*math.Pi*d.Freq*x+d.Phase) + d.C
}

// FitDampedCosine fits a Ramsey fringe. The frequency seed is scanned on
// a grid (no FFT in stdlib... actually the grid is robust enough for the
// clean simulated data) and all five parameters are refined together.
func FitDampedCosine(x, y []float64) (DampedCosine, error) {
	if len(x) != len(y) || len(x) < 8 {
		return DampedCosine{}, errors.New("fit: need at least eight matched points")
	}
	c0 := Mean(y)
	a0 := 0.0
	for i := range y {
		if d := math.Abs(y[i] - c0); d > a0 {
			a0 = d
		}
	}
	if a0 == 0 {
		a0 = 1e-9
	}
	span := x[len(x)-1] - x[0]
	if span <= 0 {
		return DampedCosine{}, errors.New("fit: x span must be positive")
	}
	// Grid-search frequency, coarse phase, and coarse damping: the data
	// may start anywhere on the fringe, and for strongly damped fringes
	// an undamped trial cosine would lose to a constant.
	bestF, bestPh, bestTau, bestR := 0.0, 0.0, span, math.Inf(1)
	maxF := float64(len(x)-1) / (2 * span) // Nyquist for roughly uniform sampling
	taus := []float64{span / 4, span, 100 * span}
	for k := 0; k < 400; k++ {
		f := maxF * float64(k) / 400
		for _, ph := range []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2} {
			for _, tau := range taus {
				var r float64
				for i := range x {
					env := a0 * math.Exp(-(x[i]-x[0])/tau)
					d := y[i] - (c0 + env*math.Cos(2*math.Pi*f*(x[i]-x[0])+ph))
					r += d * d
				}
				if r < bestR {
					bestR, bestF, bestPh, bestTau = r, f, ph, tau
				}
			}
		}
	}
	// Refine the seed amplitude/offset at the chosen (f, phase) before
	// the joint fit: with a decaying envelope the max-deviation estimate
	// of a0 can be far off.
	p := []float64{a0, bestTau, bestF, bestPh - 2*math.Pi*bestF*x[0], c0}
	model := func(p []float64, xi float64) float64 {
		return p[0]*math.Exp(-xi/p[1])*math.Cos(2*math.Pi*p[2]*xi+p[3]) + p[4]
	}
	grad := func(p []float64, xi float64) []float64 {
		e := math.Exp(-xi / p[1])
		arg := 2*math.Pi*p[2]*xi + p[3]
		cos, sin := math.Cos(arg), math.Sin(arg)
		return []float64{
			e * cos,
			p[0] * e * cos * xi / (p[1] * p[1]),
			-p[0] * e * sin * 2 * math.Pi * xi,
			-p[0] * e * sin,
			1,
		}
	}
	seed := append([]float64{}, p...)
	p, err := gaussNewton(x, y, p, model, grad, func(p []float64) bool { return p[1] > 0 && p[2] >= 0 })
	if err != nil {
		return DampedCosine{}, err
	}
	// Guard against a refinement that collapsed the frequency while the
	// grid had found a real fringe: keep whichever parameter set has the
	// smaller residual.
	resid := func(q []float64) float64 {
		var s float64
		for i := range x {
			d := model(q, x[i]) - y[i]
			s += d * d
		}
		return s
	}
	if resid(seed) < resid(p) {
		p = seed
	}
	d := DampedCosine{A: p[0], Tau: p[1], Freq: p[2], Phase: p[3], C: p[4]}
	// Normalize sign/phase: amplitude positive, frequency positive.
	if d.Freq < 0 {
		d.Freq, d.Phase = -d.Freq, -d.Phase
	}
	if d.A < 0 {
		d.A, d.Phase = -d.A, d.Phase+math.Pi
	}
	d.Phase = math.Mod(d.Phase, 2*math.Pi)
	return d, nil
}

// FitRabi fits the fixed-phase Rabi model y = C − A·cos(2πf·x) with
// A ≥ 0: an amplitude sweep starting at zero drive must start at the
// bottom of its fringe, so the phase is pinned rather than fitted. That
// makes the fit variance-robust — for any candidate frequency the model
// is *linear* in (A, C) and solved in closed form, and only f is
// searched, so shot noise on individual points cannot steer the
// optimizer into the phase/amplitude degeneracies the free five-
// parameter damped-cosine fit is prone to. The result is returned as an
// undamped DampedCosine (Tau = +Inf, Phase = π).
func FitRabi(x, y []float64) (DampedCosine, error) {
	if len(x) != len(y) || len(x) < 8 {
		return DampedCosine{}, errors.New("fit: need at least eight matched points")
	}
	span := x[len(x)-1] - x[0]
	if span <= 0 {
		return DampedCosine{}, errors.New("fit: x span must be positive")
	}
	maxF := float64(len(x)-1) / (2 * span) // Nyquist for roughly uniform sampling
	// For fixed f solve min Σ (C − A·cos(2πf·x_i) − y_i)² by the 2×2
	// normal equations over basis {1, −cos}.
	solveAt := func(f float64) (amp, off, resid float64) {
		var sb, sbb, sy, sby float64
		n := float64(len(x))
		for i := range x {
			b := -math.Cos(2 * math.Pi * f * x[i])
			sb += b
			sbb += b * b
			sy += y[i]
			sby += b * y[i]
		}
		det := n*sbb - sb*sb
		if math.Abs(det) < 1e-12 {
			return 0, sy / n, math.Inf(1)
		}
		amp = (n*sby - sb*sy) / det
		if amp < 0 {
			// An inverted fringe violates the pinned phase (zero drive
			// sits at the bottom); the best admissible fit at this f is
			// the flat model, which the scan will discard.
			amp = 0
		}
		off = (sy - amp*sb) / n
		for i := range x {
			d := off - amp*math.Cos(2*math.Pi*f*x[i]) - y[i]
			resid += d * d
		}
		return amp, off, resid
	}
	const coarse = 800
	bestF, bestR := 0.0, math.Inf(1)
	for k := 1; k <= coarse; k++ {
		f := maxF * float64(k) / coarse
		if _, _, r := solveAt(f); r < bestR {
			bestR, bestF = r, f
		}
	}
	// Fine scan one coarse step around the winner.
	step := maxF / coarse
	for k := -50; k <= 50; k++ {
		f := bestF + step*float64(k)/50
		if f <= 0 {
			continue
		}
		if _, _, r := solveAt(f); r < bestR {
			bestR, bestF = r, f
		}
	}
	amp, off, _ := solveAt(bestF)
	if amp == 0 {
		return DampedCosine{}, errors.New("fit: no oscillation consistent with a pinned-phase Rabi fringe")
	}
	return DampedCosine{A: amp, Tau: math.Inf(1), Freq: bestF, Phase: math.Pi, C: off}, nil
}

// RBDecay holds the randomized-benchmarking model F(m) = A·p^m + B.
type RBDecay struct {
	A, P, B float64
}

// Eval evaluates the model at sequence length m.
func (r RBDecay) Eval(m float64) float64 { return r.A*math.Pow(r.P, m) + r.B }

// ErrorPerClifford returns the average Clifford error r = (1-p)/2 for a
// single qubit.
func (r RBDecay) ErrorPerClifford() float64 { return (1 - r.P) / 2 }

// FitRBDecay fits F(m) = A·p^m + B, with 0 < p < 1.
func FitRBDecay(m, f []float64) (RBDecay, error) {
	if len(m) != len(f) || len(m) < 3 {
		return RBDecay{}, errors.New("fit: need at least three matched points")
	}
	// Reuse the exponential fit: p^m = e^{-m/τ} with τ = -1/ln p.
	e, err := FitExpDecay(m, f)
	if err != nil {
		return RBDecay{}, err
	}
	p := math.Exp(-1 / e.Tau)
	if p <= 0 || p >= 1 {
		return RBDecay{}, errors.New("fit: decay constant outside (0,1)")
	}
	return RBDecay{A: e.A, P: p, B: e.C}, nil
}

// gaussNewton refines params to minimize Σ (model(p, x_i) - y_i)² with a
// simple damped Gauss–Newton iteration.
func gaussNewton(
	x, y, p0 []float64,
	model func(p []float64, x float64) float64,
	grad func(p []float64, x float64) []float64,
	valid func(p []float64) bool,
) ([]float64, error) {
	p := append([]float64{}, p0...)
	n := len(p)
	residual := func(p []float64) float64 {
		var s float64
		for i := range x {
			d := model(p, x[i]) - y[i]
			s += d * d
		}
		return s
	}
	cur := residual(p)
	lambda := 1e-3
	for iter := 0; iter < 200; iter++ {
		// Build normal equations J^T J Δ = -J^T r.
		jtj := make([][]float64, n)
		for i := range jtj {
			jtj[i] = make([]float64, n)
		}
		jtr := make([]float64, n)
		for i := range x {
			g := grad(p, x[i])
			r := model(p, x[i]) - y[i]
			for a := 0; a < n; a++ {
				jtr[a] += g[a] * r
				for b := 0; b < n; b++ {
					jtj[a][b] += g[a] * g[b]
				}
			}
		}
		for a := 0; a < n; a++ {
			jtj[a][a] *= 1 + lambda
		}
		delta, ok := solve(jtj, jtr)
		if !ok {
			lambda *= 10
			if lambda > 1e12 {
				break
			}
			continue
		}
		trial := make([]float64, n)
		for a := 0; a < n; a++ {
			trial[a] = p[a] - delta[a]
		}
		if valid != nil && !valid(trial) {
			lambda *= 10
			continue
		}
		tr := residual(trial)
		if tr < cur {
			improvement := cur - tr
			p, cur = trial, tr
			lambda = math.Max(lambda/3, 1e-12)
			if improvement < 1e-15*(1+cur) {
				break
			}
		} else {
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
	}
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("fit: diverged")
		}
	}
	return p, nil
}

// solve solves the small dense system A·x = b by Gaussian elimination
// with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv, best := col, math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				piv, best = r, v
			}
		}
		if best < 1e-300 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}
