package pulse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quma/internal/clock"
)

const (
	stdLen   = 20 // 20 ns standard single-qubit pulse
	stdSigma = 4.0
)

func stdGaussian(theta float64) []float64 {
	return GaussianEnvelope(stdLen, stdSigma, CalibratedGaussianAmp(stdLen, stdSigma, theta))
}

func TestGaussianEnvelopeShape(t *testing.T) {
	env := GaussianEnvelope(21, 4, 0.8)
	if len(env) != 21 {
		t.Fatalf("len = %d, want 21", len(env))
	}
	if math.Abs(env[10]-0.8) > 1e-12 {
		t.Errorf("peak = %v, want 0.8", env[10])
	}
	// Symmetric about the midpoint.
	for k := 0; k < 10; k++ {
		if math.Abs(env[k]-env[20-k]) > 1e-12 {
			t.Errorf("asymmetric at %d: %v vs %v", k, env[k], env[20-k])
		}
	}
	// Monotone rise to the peak.
	for k := 1; k <= 10; k++ {
		if env[k] <= env[k-1] {
			t.Errorf("not increasing at %d", k)
		}
	}
}

func TestGaussianEnvelopeEmpty(t *testing.T) {
	if env := GaussianEnvelope(0, 4, 1); env != nil {
		t.Error("n=0 must return nil")
	}
}

func TestSquareEnvelope(t *testing.T) {
	env := SquareEnvelope(5, 0.3)
	for _, v := range env {
		if v != 0.3 {
			t.Fatalf("square envelope sample = %v", v)
		}
	}
}

func TestDRAGQuadratureAntisymmetric(t *testing.T) {
	i, q := DRAGEnvelope(20, 4, 1, 0.5)
	if len(i) != 20 || len(q) != 20 {
		t.Fatal("length mismatch")
	}
	for k := 0; k < 10; k++ {
		if math.Abs(q[k]+q[19-k]) > 1e-12 {
			t.Errorf("DRAG quadrature not antisymmetric at %d", k)
		}
	}
}

func TestCalibratedAmpWithinDACRange(t *testing.T) {
	amp := CalibratedGaussianAmp(stdLen, stdSigma, math.Pi)
	if amp <= 0 || amp > 1 {
		t.Errorf("π-pulse amplitude %v outside DAC range (0,1]", amp)
	}
}

func TestRotationRecoversAngleAndPhase(t *testing.T) {
	for _, tc := range []struct {
		phi, theta float64
	}{
		{0, math.Pi},
		{0, math.Pi / 2},
		{math.Pi / 2, math.Pi},
		{math.Pi / 2, math.Pi / 2},
		{1.1, 0.7},
	} {
		w := Synthesize(stdGaussian(tc.theta), DefaultSSBHz, tc.phi)
		phi, theta := Rotation(w, DefaultSSBHz, 0)
		if math.Abs(theta-tc.theta) > 1e-9 {
			t.Errorf("theta = %v, want %v", theta, tc.theta)
		}
		if phaseDiff(phi, tc.phi) > 1e-9 {
			t.Errorf("phi = %v, want %v", phi, tc.phi)
		}
	}
}

func TestFiveNanosecondSlipRotatesAxis90Degrees(t *testing.T) {
	// The paper's Section 4.2.3: at 50 MHz SSB, playing an x pulse 5 ns
	// late produces a y rotation.
	w := Synthesize(stdGaussian(math.Pi), DefaultSSBHz, 0)
	phi0, _ := Rotation(w, DefaultSSBHz, 0)
	phi5, theta5 := Rotation(w, DefaultSSBHz, 5)
	shift := phaseDiff(phi5, phi0)
	if math.Abs(shift-math.Pi/2) > 1e-9 {
		t.Errorf("5 ns slip shifted axis by %v rad, want π/2", shift)
	}
	if math.Abs(theta5-math.Pi) > 1e-9 {
		t.Errorf("slip must not change the angle: %v", theta5)
	}
	// 20 ns (one SSB period) restores the original axis.
	phi20, _ := Rotation(w, DefaultSSBHz, 20)
	if phaseDiff(phi20, phi0) > 1e-9 {
		t.Errorf("20 ns slip must restore axis, got diff %v", phaseDiff(phi20, phi0))
	}
}

func TestSynthesizeIQMatchesSynthesizeForZeroQ(t *testing.T) {
	env := stdGaussian(1.0)
	zero := make([]float64, len(env))
	a := Synthesize(env, DefaultSSBHz, 0.4)
	b := SynthesizeIQ(env, zero, DefaultSSBHz, 0.4)
	for k := range a.I {
		if math.Abs(a.I[k]-b.I[k]) > 1e-12 || math.Abs(a.Q[k]-b.Q[k]) > 1e-12 {
			t.Fatalf("mismatch at sample %d", k)
		}
	}
}

func TestSynthesizeIQLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SynthesizeIQ([]float64{1, 2}, []float64{1}, DefaultSSBHz, 0)
}

func TestQuantizeIdempotentAndBounded(t *testing.T) {
	w := Synthesize(stdGaussian(math.Pi), DefaultSSBHz, 0.3)
	q := Quantize(w, 14)
	if q.MaxAbs() > 1 {
		t.Error("quantized samples exceed full scale")
	}
	q2 := Quantize(q, 14)
	for k := range q.I {
		if q.I[k] != q2.I[k] || q.Q[k] != q2.Q[k] {
			t.Fatal("quantization not idempotent")
		}
	}
	// 14-bit quantization error per sample is below 2^-13.
	for k := range w.I {
		if math.Abs(w.I[k]-q.I[k]) > 1.0/8192 {
			t.Errorf("quantization error too large at %d", k)
		}
	}
}

func TestQuantizeClips(t *testing.T) {
	w := Waveform{I: []float64{2.0, -3.0}, Q: []float64{0, 0}}
	q := Quantize(w, 8)
	if q.I[0] != 1 || q.I[1] != -1 {
		t.Errorf("clipping failed: %v", q.I)
	}
}

func TestQuantize14BitPreservesRotation(t *testing.T) {
	w := Synthesize(stdGaussian(math.Pi), DefaultSSBHz, 0)
	q := Quantize(w, 14)
	phi, theta := Rotation(q, DefaultSSBHz, 0)
	if math.Abs(theta-math.Pi) > 1e-3 {
		t.Errorf("DAC quantization changed angle too much: %v", theta)
	}
	if phaseDiff(phi, 0) > 1e-3 {
		t.Errorf("DAC quantization changed axis too much: %v", phi)
	}
}

func TestMemoryBytesMatchesPaperAccounting(t *testing.T) {
	// Paper §5.1.1: 7 pulses × 2 × 20 ns × 1 GS/s samples = 280 samples;
	// at one byte per sample that is 420... the paper counts
	// 7 × 2 × 20 = 280 samples = 420 bytes at 12-bit (1.5-byte) samples.
	w := Synthesize(GaussianEnvelope(20, 4, 1), DefaultSSBHz, 0)
	if got := w.MemoryBytes(12); got != 60 {
		t.Errorf("20-sample waveform at 12 bits = %d bytes, want 60", got)
	}
	if got := 7 * w.MemoryBytes(12); got != 420 {
		t.Errorf("7 pulses = %d bytes, want paper's 420", got)
	}
	if got := 21 * w.Append(w).MemoryBytes(12); got != 2520 {
		t.Errorf("21 two-pulse waveforms = %d bytes, want paper's 2520", got)
	}
}

func TestAppendConcatenates(t *testing.T) {
	a := Waveform{I: []float64{1}, Q: []float64{2}}
	b := Waveform{I: []float64{3, 4}, Q: []float64{5, 6}}
	c := a.Append(b)
	if c.Len() != 3 || c.I[2] != 4 || c.Q[0] != 2 {
		t.Errorf("append result wrong: %+v", c)
	}
	if a.Len() != 1 {
		t.Error("append must not mutate the receiver")
	}
}

func TestDurationRoundsUpToCycles(t *testing.T) {
	w := Waveform{I: make([]float64, 22), Q: make([]float64, 22)}
	if w.Duration() != 5 {
		t.Errorf("22 samples = %v cycles, want 5", w.Duration())
	}
}

// Property: the axis shift from delayed playback is exactly
// -2π·f_ssb·Δt for any delay.
func TestPropertyDelayPhaseLinear(t *testing.T) {
	w := Synthesize(stdGaussian(math.Pi/2), DefaultSSBHz, 0.2)
	f := func(delay uint8) bool {
		d := clock.Sample(delay)
		phi, _ := Rotation(w, DefaultSSBHz, d)
		want := 0.2 - 2*math.Pi*DefaultSSBHz*float64(d)*1e-9
		return phaseDiff(phi, want) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: rotation angle scales linearly with envelope amplitude until
// DAC clipping.
func TestPropertyAngleLinearInAmplitude(t *testing.T) {
	f := func(s float64) bool {
		scale := math.Mod(math.Abs(s), 1.0)
		if scale < 0.01 {
			scale = 0.01
		}
		env := GaussianEnvelope(stdLen, stdSigma, scale*0.5)
		w := Synthesize(env, DefaultSSBHz, 0)
		_, theta := Rotation(w, DefaultSSBHz, 0)
		want := RabiRadPerSampleUnit * EnvelopeArea(env)
		return math.Abs(theta-want) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func phaseDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}
