package pulse

import (
	"fmt"
	"math"
	"strings"

	"quma/internal/clock"
)

// ASCII waveform rendering, used to regenerate the paper's Figure 3
// (waveforms and timings for one AllXY round) as text.

// Timed is a waveform placed on the absolute sample timeline.
type Timed struct {
	Start clock.Sample
	Wave  Waveform
}

// RenderTrack draws the I channel of the given playbacks over the window
// [from, to) as an ASCII oscillogram of the given size. Columns are time
// bins (each annotated sample takes the maximum-magnitude value in its
// bin so narrow pulses stay visible); rows span [-1, 1].
func RenderTrack(events []Timed, from, to clock.Sample, cols, rows int) string {
	if cols < 8 || rows < 3 || to <= from {
		return ""
	}
	binned := make([]float64, cols)
	span := float64(to - from)
	for _, ev := range events {
		for k := range ev.Wave.I {
			t := uint64(ev.Start) + uint64(k)
			if t < uint64(from) || t >= uint64(to) {
				continue
			}
			col := int(float64(t-uint64(from)) / span * float64(cols))
			if col >= cols {
				col = cols - 1
			}
			v := ev.Wave.I[k]
			if math.Abs(v) > math.Abs(binned[col]) {
				binned[col] = v
			}
		}
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	mid := (rows - 1) / 2
	for c := 0; c < cols; c++ {
		grid[mid][c] = '-'
	}
	for c, v := range binned {
		if v == 0 {
			continue
		}
		r := mid - int(math.Round(v*float64(mid)))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		// Draw a vertical bar from the axis to the value.
		lo, hi := r, mid
		if lo > hi {
			lo, hi = hi, lo
		}
		for rr := lo; rr <= hi; rr++ {
			grid[rr][c] = '*'
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	// Time axis in microseconds.
	fmt.Fprintf(&b, "%-*s%s\n", cols/2, fmt.Sprintf("^%.2fµs", float64(from)*1e-3),
		fmt.Sprintf("%*s", cols-cols/2, fmt.Sprintf("%.2fµs^", float64(to)*1e-3)))
	return b.String()
}

// RenderGate draws a digital gate line ('_' low, '#' high) for the given
// high-intervals (in samples) over [from, to).
func RenderGate(highs [][2]clock.Sample, from, to clock.Sample, cols int) string {
	if cols < 8 || to <= from {
		return ""
	}
	line := []byte(strings.Repeat("_", cols))
	span := float64(to - from)
	for _, h := range highs {
		for t := h[0]; t < h[1]; t++ {
			if t < from || t >= to {
				continue
			}
			col := int(float64(t-from) / span * float64(cols))
			if col >= cols {
				col = cols - 1
			}
			line[col] = '#'
		}
	}
	return string(line)
}
