package pulse

import (
	"strings"
	"testing"

	"quma/internal/clock"
)

func TestRenderTrackShowsPulse(t *testing.T) {
	w := Synthesize(GaussianEnvelope(20, 4, 0.9), DefaultSSBHz, 0)
	out := RenderTrack([]Timed{{Start: 50, Wave: w}}, 0, 100, 50, 9)
	if out == "" {
		t.Fatal("empty rendering")
	}
	if !strings.Contains(out, "*") {
		t.Error("pulse not visible in rendering")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // 9 rows + axis
		t.Errorf("got %d lines, want 10", len(lines))
	}
	// The first half of the window is empty: column 0 must be axis-only.
	for _, l := range lines[:9] {
		if len(l) != 50 {
			t.Errorf("row width %d, want 50", len(l))
		}
	}
	if strings.ContainsRune(lines[0][:20], '*') {
		t.Error("leading empty region should have no signal")
	}
}

func TestRenderTrackDegenerate(t *testing.T) {
	if RenderTrack(nil, 0, 100, 4, 9) != "" {
		t.Error("too-narrow rendering must be empty")
	}
	if RenderTrack(nil, 100, 100, 50, 9) != "" {
		t.Error("empty window must be empty")
	}
}

func TestRenderTrackClipsOutOfWindow(t *testing.T) {
	w := Synthesize(GaussianEnvelope(20, 4, 0.9), DefaultSSBHz, 0)
	out := RenderTrack([]Timed{{Start: 500, Wave: w}}, 0, 100, 50, 9)
	if strings.Contains(out, "*") {
		t.Error("out-of-window pulse must not render")
	}
}

func TestRenderGate(t *testing.T) {
	line := RenderGate([][2]clock.Sample{{25, 75}}, 0, 100, 20)
	if len(line) != 20 {
		t.Fatalf("width = %d", len(line))
	}
	if line[0] != '_' || line[19] != '_' {
		t.Error("edges must be low")
	}
	if !strings.Contains(line, "#") {
		t.Error("gate must be visible")
	}
	if strings.Count(line, "#") < 8 {
		t.Errorf("gate too short: %q", line)
	}
}

func TestRenderGateDegenerate(t *testing.T) {
	if RenderGate(nil, 0, 0, 20) != "" {
		t.Error("empty window must render empty")
	}
}
