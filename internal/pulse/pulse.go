// Package pulse synthesizes and analyzes the analog control waveforms of
// the quantum-classical interface.
//
// Single-qubit gates on a transmon are 20 ns microwave pulses produced by
// single-sideband (SSB) modulation: the AWG plays in-phase (I) and
// quadrature (Q) envelope samples that embed a sideband at f_ssb (the paper
// uses -50 MHz); an I-Q mixer combines them with a carrier so that the
// qubit sees a resonant drive. The drive phase — and therefore the rotation
// axis on the Bloch sphere — depends on the *absolute* start time of the
// pulse: playing the same samples Δt later rotates the axis by
// 2π·f_ssb·Δt. This is the paper's Section 4.2.3 example: at 50 MHz SSB a
// 5 ns slip turns an x rotation into a y rotation.
//
// The package provides envelope generators, SSB synthesis, DAC
// quantization, and the inverse operation used by the simulated chip: given
// the played samples and their absolute start time, recover the rotation
// (axis, angle) applied to the qubit.
package pulse

import (
	"fmt"
	"math"
	"math/cmplx"

	"quma/internal/clock"
)

// DefaultSSBHz is the single-sideband modulation frequency used throughout
// the paper's experiments: -50 MHz.
const DefaultSSBHz = -50e6

// RabiRadPerSampleUnit converts integrated envelope area (unit amplitude ×
// one 1 ns sample) into rotation angle in radians. It is the simulated
// chip's drive-strength calibration constant, chosen so that a π pulse of
// the standard 20 ns Gaussian stays within the DAC's [-1, 1] range.
const RabiRadPerSampleUnit = 0.35

// Waveform holds the I and Q sample streams for one pulse, sampled at
// 1 GSample/s. Amplitudes are normalized to the DAC full scale [-1, 1].
type Waveform struct {
	I, Q []float64
}

// Len returns the number of samples (I and Q always have equal length).
func (w Waveform) Len() int { return len(w.I) }

// Duration returns the pulse length in control cycles, rounded up.
func (w Waveform) Duration() clock.Cycle { return clock.Sample(len(w.I)).Cycles() }

// MemoryBytes returns the storage cost of the waveform at the given DAC
// resolution, matching the paper's accounting: Ns = 2·Td·Rs samples for I
// and Q together, each of bitsPerSample bits (the paper's Section 5.1.1
// example uses one byte per sample at ~12-bit vertical resolution, i.e.
// 420 bytes for 7 single-qubit pulses of 20 ns).
func (w Waveform) MemoryBytes(bitsPerSample int) int {
	bits := 2 * len(w.I) * bitsPerSample
	return (bits + 7) / 8
}

// Clone returns a deep copy.
func (w Waveform) Clone() Waveform {
	c := Waveform{I: make([]float64, len(w.I)), Q: make([]float64, len(w.Q))}
	copy(c.I, w.I)
	copy(c.Q, w.Q)
	return c
}

// Append concatenates two waveforms back to back, the operation a
// conventional AWG performs at upload time to build whole-sequence
// waveforms (the baseline QuMA replaces).
func (w Waveform) Append(other Waveform) Waveform {
	out := Waveform{
		I: append(append([]float64{}, w.I...), other.I...),
		Q: append(append([]float64{}, w.Q...), other.Q...),
	}
	return out
}

// MaxAbs returns the largest |sample| across both channels.
func (w Waveform) MaxAbs() float64 {
	var m float64
	for _, v := range w.I {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	for _, v := range w.Q {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// GaussianEnvelope returns n 1 ns samples of a Gaussian centred at
// (n-1)/2 with standard deviation sigma (in samples) and peak amplitude
// amp. The tails are truncated, not shifted, which is adequate for the
// n ≈ 4·sigma pulses used here.
func GaussianEnvelope(n int, sigma, amp float64) []float64 {
	if n <= 0 {
		return nil
	}
	env := make([]float64, n)
	mid := float64(n-1) / 2
	for k := range env {
		x := (float64(k) - mid) / sigma
		env[k] = amp * math.Exp(-x*x/2)
	}
	return env
}

// SquareEnvelope returns n samples at constant amplitude amp, used for
// measurement pulses.
func SquareEnvelope(n int, amp float64) []float64 {
	env := make([]float64, n)
	for k := range env {
		env[k] = amp
	}
	return env
}

// DRAGEnvelope returns the in-phase Gaussian and the derivative-shaped
// quadrature correction (Derivative Removal by Adiabatic Gate) with
// coefficient beta. DRAG suppresses leakage on real transmons; here it
// exercises the two-channel synthesis path.
func DRAGEnvelope(n int, sigma, amp, beta float64) (i, q []float64) {
	i = GaussianEnvelope(n, sigma, amp)
	q = make([]float64, n)
	mid := float64(n-1) / 2
	for k := range q {
		x := float64(k) - mid
		q[k] = -beta * x / (sigma * sigma) * i[k]
	}
	return i, q
}

// EnvelopeArea returns the integrated area of an envelope in
// sample·amplitude units; the rotation angle is RabiRadPerSampleUnit times
// this area.
func EnvelopeArea(env []float64) float64 {
	var a float64
	for _, v := range env {
		a += v
	}
	return a
}

// Synthesize converts a real envelope into SSB-modulated I/Q samples with
// drive phase phi (phi = 0 drives an x rotation, phi = π/2 a y rotation):
//
//	I[k] = env[k]·cos(2π·f_ssb·k·1ns + φ)
//	Q[k] = env[k]·sin(2π·f_ssb·k·1ns + φ)
//
// The modulation phase starts at zero at the first sample of the pulse, so
// the physical drive axis depends on when the waveform is played — the
// timing sensitivity the paper's queues exist to control.
func Synthesize(env []float64, ssbHz, phi float64) Waveform {
	w := Waveform{I: make([]float64, len(env)), Q: make([]float64, len(env))}
	for k, e := range env {
		ph := 2*math.Pi*ssbHz*float64(k)*1e-9 + phi
		w.I[k] = e * math.Cos(ph)
		w.Q[k] = e * math.Sin(ph)
	}
	return w
}

// SynthesizeIQ is Synthesize for two-channel (DRAG-style) envelopes, where
// envQ is the quadrature envelope before modulation.
func SynthesizeIQ(envI, envQ []float64, ssbHz, phi float64) Waveform {
	if len(envI) != len(envQ) {
		panic(fmt.Sprintf("pulse: envelope length mismatch %d vs %d", len(envI), len(envQ)))
	}
	w := Waveform{I: make([]float64, len(envI)), Q: make([]float64, len(envI))}
	for k := range envI {
		ph := 2*math.Pi*ssbHz*float64(k)*1e-9 + phi
		c, s := math.Cos(ph), math.Sin(ph)
		// Complex envelope (envI + i·envQ) rotated by the SSB phase.
		w.I[k] = envI[k]*c - envQ[k]*s
		w.Q[k] = envI[k]*s + envQ[k]*c
	}
	return w
}

// Quantize rounds every sample to the grid of a DAC with the given bit
// resolution (the paper's AWGs use 14-bit DACs), clipping to [-1, 1].
func Quantize(w Waveform, bits int) Waveform {
	if bits <= 1 || bits > 30 {
		panic(fmt.Sprintf("pulse: unsupported DAC resolution %d bits", bits))
	}
	levels := float64(int64(1)<<(bits-1)) - 1
	q := func(v float64) float64 {
		v = math.Max(-1, math.Min(1, v))
		return math.Round(v*levels) / levels
	}
	out := Waveform{I: make([]float64, len(w.I)), Q: make([]float64, len(w.Q))}
	for k := range w.I {
		out.I[k] = q(w.I[k])
	}
	for k := range w.Q {
		out.Q[k] = q(w.Q[k])
	}
	return out
}

// Demodulate mixes the waveform back down by the SSB frequency assuming it
// is played starting at absolute sample time t0, and returns the complex
// envelope integral Σ (I+iQ)[k]·e^{-i·2π·f_ssb·(t0+k)·1ns}. Its magnitude
// is the envelope area; its argument is the physical drive phase in the
// frame of a carrier that started at t=0 — exactly what the qubit sees.
func Demodulate(w Waveform, ssbHz float64, t0 clock.Sample) complex128 {
	var sum complex128
	for k := range w.I {
		t := float64(uint64(t0)+uint64(k)) * 1e-9
		sum += complex(w.I[k], w.Q[k]) * cmplx.Exp(complex(0, -2*math.Pi*ssbHz*t))
	}
	return sum
}

// Rotation returns the (axis phase, rotation angle) the waveform applies
// to a resonant qubit when played starting at absolute sample time t0.
// The axis phase is measured from the x axis of the rotating frame.
//
// Because Demodulate removes the SSB phase referenced to t=0, a waveform
// synthesized with phase φ and played at t0 has axis φ - 2π·f_ssb·t0·1ns
// — delayed playback rotates the axis, reproducing the paper's x→y example.
func Rotation(w Waveform, ssbHz float64, t0 clock.Sample) (phi, theta float64) {
	sum := Demodulate(w, ssbHz, t0)
	theta = RabiRadPerSampleUnit * cmplx.Abs(sum)
	if theta == 0 {
		return 0, 0
	}
	phi = cmplx.Phase(sum)
	// The drive phase enters through e^{+iφ} in the synthesis; demodulation
	// returns that phase directly. Negative-area envelopes appear as φ+π.
	return phi, theta
}

// CalibratedGaussianAmp returns the Gaussian peak amplitude that produces a
// rotation by |theta| with the standard envelope shape (n samples, given
// sigma), under the chip's Rabi calibration.
func CalibratedGaussianAmp(n int, sigma, theta float64) float64 {
	unit := EnvelopeArea(GaussianEnvelope(n, sigma, 1))
	return math.Abs(theta) / (RabiRadPerSampleUnit * unit)
}
