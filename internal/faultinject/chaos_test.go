package faultinject_test

// The chaos suite: drive a real quma-serve server (httptest, full HTTP
// round trips) through deterministic injected faults and assert the
// three hardening invariants from the robustness contract:
//
//  1. Availability — no injected fault (pool-get failure, worker panic,
//     forced slowness, cancellation) takes the server down; it keeps
//     accepting and completing jobs afterwards.
//  2. Taxonomy — every failure surfaces exactly one stable error code:
//     invalid_argument, canceled, deadline_exceeded, resource_exhausted,
//     or internal. Messages are free text; codes are the contract.
//  3. Determinism — a fault can only abort work, never perturb it:
//     fault-free (re)runs of the same requests are byte-identical to
//     runs on a server that never had fault hooks installed.
//
// Everything is seeded/ordinal-driven, so a failing case replays
// exactly. CI runs this package under -race.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"quma/internal/faultinject"
	"quma/internal/journal"
	"quma/internal/service"
)

func startServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	s := service.New(cfg).Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() { s.DrainTimeout(5 * time.Second) })
	return s, hs
}

func submitOne(t *testing.T, base string, ex service.ExperimentRequest) string {
	t.Helper()
	body, _ := json.Marshal(service.SubmitRequest{Experiments: []service.ExperimentRequest{ex}})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc.ID
}

// jobState is the polled terminal state of one job.
type jobState struct {
	Status string `json:"status"`
	Code   string `json:"code"`
	Error  string `json:"error"`
}

func waitTerminal(t *testing.T, base, id string) jobState {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobState
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.Status {
		case service.StatusDone, service.StatusFailed, service.StatusCanceled:
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return jobState{}
}

func fetchResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, b)
	}
	return b
}

// errCode extracts the taxonomy code from a non-2xx error envelope.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not structured: %v (%s)", err, body)
	}
	return e.Error.Code
}

// chaosRequest is the standard small experiment the suite injects
// faults into, parameterized by backend and replay mode so every
// backend × mode pairing sees every fault class.
func chaosRequest(backend, mode string) service.ExperimentRequest {
	return service.ExperimentRequest{
		Type: "t1", Seed: 11, Backend: backend, Replay: mode,
		Rounds: 24, DelaysCycles: []int{0, 400, 800, 1600},
	}
}

var chaosCombos = []struct{ backend, mode string }{
	{"density", "off"},
	{"density", "compiled"},
	{"trajectory", "interp"},
	{"trajectory", "auto"},
}

// cleanResult runs ex on a freshly built, never-faulted server and
// returns the result document — the byte-identity reference.
func cleanResult(t *testing.T, ex service.ExperimentRequest) []byte {
	t.Helper()
	_, hs := startServer(t, service.Config{Workers: 2})
	id := submitOne(t, hs.URL, ex)
	if st := waitTerminal(t, hs.URL, id); st.Status != service.StatusDone {
		t.Fatalf("clean run ended %s: %s", st.Status, st.Error)
	}
	return fetchResult(t, hs.URL, id)
}

// TestPoolGetFailureFailsOnlyThatJob injects an error on the first
// machine-pool acquisition: the first job must fail `internal` with the
// injected error in its message, and the very same server must then run
// the identical request to completion with a result byte-identical to
// an unfaulted server's.
func TestPoolGetFailureFailsOnlyThatJob(t *testing.T) {
	for _, c := range chaosCombos {
		t.Run(c.backend+"/"+c.mode, func(t *testing.T) {
			ex := chaosRequest(c.backend, c.mode)
			_, hs := startServer(t, service.Config{
				Workers: 2,
				Faults:  faultinject.Plan{FailPoolGet: 1}.Hooks(),
			})
			st := waitTerminal(t, hs.URL, submitOne(t, hs.URL, ex))
			if st.Status != service.StatusFailed || st.Code != service.CodeInternal {
				t.Fatalf("faulted job ended %s/%s, want failed/internal (%s)", st.Status, st.Code, st.Error)
			}
			if !strings.Contains(st.Error, "injected pool-get failure") {
				t.Fatalf("failure message %q does not carry the injected error", st.Error)
			}
			// The fault is spent; the server must still serve, identically.
			id2 := submitOne(t, hs.URL, ex)
			if st2 := waitTerminal(t, hs.URL, id2); st2.Status != service.StatusDone {
				t.Fatalf("post-fault job ended %s: %s", st2.Status, st2.Error)
			}
			if got, want := fetchResult(t, hs.URL, id2), cleanResult(t, ex); !bytes.Equal(got, want) {
				t.Fatalf("post-fault result differs from clean server:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// TestInjectedPanicIsIsolated panics inside the engine shot loop of one
// job: that job alone fails `internal` with the recovered stack in its
// message, the process survives, and subsequent identical jobs on the
// same server produce byte-identical results.
func TestInjectedPanicIsIsolated(t *testing.T) {
	for _, c := range chaosCombos {
		t.Run(c.backend+"/"+c.mode, func(t *testing.T) {
			ex := chaosRequest(c.backend, c.mode)
			_, hs := startServer(t, service.Config{
				Workers: 2,
				Faults:  faultinject.Plan{PanicShot: 7}.Hooks(),
			})
			st := waitTerminal(t, hs.URL, submitOne(t, hs.URL, ex))
			if st.Status != service.StatusFailed || st.Code != service.CodeInternal {
				t.Fatalf("panicked job ended %s/%s, want failed/internal (%s)", st.Status, st.Code, st.Error)
			}
			if !strings.Contains(st.Error, "injected panic") || !strings.Contains(st.Error, "goroutine") {
				t.Fatalf("failure message %q lacks the panic value or captured stack", st.Error)
			}
			// The panicked machine was discarded, not pooled; the server
			// must keep serving bit-identical results.
			id2 := submitOne(t, hs.URL, ex)
			if st2 := waitTerminal(t, hs.URL, id2); st2.Status != service.StatusDone {
				t.Fatalf("post-panic job ended %s: %s", st2.Status, st2.Error)
			}
			if got, want := fetchResult(t, hs.URL, id2), cleanResult(t, ex); !bytes.Equal(got, want) {
				t.Fatalf("post-panic result differs from clean server:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// shardedChaosRequest is the chaos workload for the shot-shard engine:
// Rounds exceeds expt.ShotShardSize, so each sweep point splits across
// shards and injected faults land inside the sharded shot loops. lanes
// sets batch_lanes: above 1 (and on the trajectory backend with a
// batchable replay mode) the shards run lockstep on the batched SoA
// executor, so injected faults land mid-batch with sibling lanes in
// flight inside the same goroutine.
func shardedChaosRequest(backend, mode string, lanes int) service.ExperimentRequest {
	return service.ExperimentRequest{
		Type: "t1", Seed: 13, Backend: backend, Replay: mode,
		Rounds: 600, DelaysCycles: []int{0, 400, 800, 1600}, ShotWorkers: 2,
		BatchLanes: lanes,
	}
}

// TestShardedInjectedPanicIsIsolated panics deep inside a sharded shot
// loop (ordinal 300 > the 256-shot shard size, so the panic fires in a
// shard, with sibling shards in flight). The taxonomy must stay stable:
// the job fails `internal` with the recovered stack — the sibling
// shards' context aborts must never mask the panicking shard as
// `canceled` — the panicked machine is discarded, and the same server
// then produces byte-identical results. The lanes axis repeats every
// combination in batched mode: a panic mid-batch must discard every
// machine in the batch (never pool a possibly-corrupt lane) and abort
// sibling groups through the shard context, under the same taxonomy.
func TestShardedInjectedPanicIsIsolated(t *testing.T) {
	for _, c := range chaosCombos {
		for _, lanes := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/%s/lanes-%d", c.backend, c.mode, lanes), func(t *testing.T) {
				ex := shardedChaosRequest(c.backend, c.mode, lanes)
				_, hs := startServer(t, service.Config{
					Workers: 2,
					Faults:  faultinject.Plan{PanicShot: 300}.Hooks(),
				})
				st := waitTerminal(t, hs.URL, submitOne(t, hs.URL, ex))
				if st.Status != service.StatusFailed || st.Code != service.CodeInternal {
					t.Fatalf("panicked sharded job ended %s/%s, want failed/internal (%s)", st.Status, st.Code, st.Error)
				}
				if !strings.Contains(st.Error, "injected panic") || !strings.Contains(st.Error, "goroutine") {
					t.Fatalf("failure message %q lacks the panic value or captured stack", st.Error)
				}
				id2 := submitOne(t, hs.URL, ex)
				if st2 := waitTerminal(t, hs.URL, id2); st2.Status != service.StatusDone {
					t.Fatalf("post-panic sharded job ended %s: %s", st2.Status, st2.Error)
				}
				if got, want := fetchResult(t, hs.URL, id2), cleanResult(t, ex); !bytes.Equal(got, want) {
					t.Fatalf("post-panic sharded result differs from clean server:\n%s\nvs\n%s", got, want)
				}
			})
		}
	}
}

// TestShardedSlowShotExpiresDeadline forces shots slow inside sharded
// loops under a short job timeout: the layered deadline must preempt the
// shards mid-loop and surface `deadline_exceeded` — the sibling-abort
// machinery must not reclassify the preemption — with no partial result.
// The batched case preempts inside a lockstep batch, where the context
// is only polled at the batch's shot-granular checkpoints.
func TestShardedSlowShotExpiresDeadline(t *testing.T) {
	cases := []struct {
		name string
		ex   service.ExperimentRequest
	}{
		{"scalar", shardedChaosRequest("density", "auto", 0)},
		{"batched", shardedChaosRequest("trajectory", "auto", 4)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, hs := startServer(t, service.Config{
				Workers:    1,
				JobTimeout: 50 * time.Millisecond,
				Faults:     faultinject.Plan{SlowShot: 1, SlowFor: 2 * time.Millisecond}.Hooks(),
			})
			id := submitOne(t, hs.URL, c.ex)
			st := waitTerminal(t, hs.URL, id)
			if st.Status != service.StatusFailed || st.Code != service.CodeDeadlineExceeded {
				t.Fatalf("slow sharded job ended %s/%s, want failed/deadline_exceeded (%s)", st.Status, st.Code, st.Error)
			}
			resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/result")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusConflict || errCode(t, b) != service.CodeDeadlineExceeded {
				t.Fatalf("preempted sharded result status %d body %s, want 409 deadline_exceeded", resp.StatusCode, b)
			}
		})
	}
}

// TestSlowShotExpiresDeadline forces every shot slow under a short job
// timeout: the job must end failed/deadline_exceeded (preempted
// mid-sweep by the layered deadline), never hang and never return a
// partial result.
func TestSlowShotExpiresDeadline(t *testing.T) {
	ex := chaosRequest("density", "auto")
	_, hs := startServer(t, service.Config{
		Workers:    1,
		JobTimeout: 50 * time.Millisecond,
		Faults:     faultinject.Plan{SlowShot: 1, SlowFor: 2 * time.Millisecond}.Hooks(),
	})
	id := submitOne(t, hs.URL, ex)
	st := waitTerminal(t, hs.URL, id)
	if st.Status != service.StatusFailed || st.Code != service.CodeDeadlineExceeded {
		t.Fatalf("slow job ended %s/%s, want failed/deadline_exceeded (%s)", st.Status, st.Code, st.Error)
	}
	// No partial result may leak from the preempted job.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusConflict || errCode(t, b) != service.CodeDeadlineExceeded {
		t.Fatalf("preempted result status %d body %s, want 409 deadline_exceeded", resp.StatusCode, b)
	}
}

// TestTaxonomyUnderChaos sweeps the five taxonomy codes end to end on
// live servers: invalid_argument (bad submit), canceled (DELETE mid
// sweep), deadline_exceeded (forced slowness), resource_exhausted
// (draining intake), internal (injected panic).
func TestTaxonomyUnderChaos(t *testing.T) {
	t.Run("invalid_argument", func(t *testing.T) {
		_, hs := startServer(t, service.Config{Workers: 1})
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"experiments":[{"type":"warp-drive"}]}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusBadRequest || errCode(t, b) != service.CodeInvalidArgument {
			t.Fatalf("status %d code %s, want 400 invalid_argument", resp.StatusCode, errCode(t, b))
		}
	})
	t.Run("canceled", func(t *testing.T) {
		// Slow every shot (without a deadline) so the DELETE reliably
		// lands mid-sweep, then cancel and assert the canceled taxonomy
		// plus no result body.
		_, hs := startServer(t, service.Config{
			Workers: 1,
			Faults:  faultinject.Plan{SlowShot: 1, SlowFor: time.Millisecond}.Hooks(),
		})
		id := submitOne(t, hs.URL, chaosRequest("trajectory", "compiled"))
		time.Sleep(10 * time.Millisecond) // let it start sweeping
		req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE status %d, want 200", dresp.StatusCode)
		}
		st := waitTerminal(t, hs.URL, id)
		if st.Status != service.StatusCanceled || st.Code != service.CodeCanceled {
			t.Fatalf("canceled job ended %s/%s (%s)", st.Status, st.Code, st.Error)
		}
		rresp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer rresp.Body.Close()
		b, _ := io.ReadAll(rresp.Body)
		if rresp.StatusCode != http.StatusConflict || errCode(t, b) != service.CodeCanceled {
			t.Fatalf("canceled result status %d body %s, want 409 canceled", rresp.StatusCode, b)
		}
	})
	t.Run("deadline_exceeded", func(t *testing.T) {
		_, hs := startServer(t, service.Config{
			Workers:    1,
			JobTimeout: 30 * time.Millisecond,
			Faults:     faultinject.Plan{SlowShot: 1, SlowFor: 2 * time.Millisecond}.Hooks(),
		})
		st := waitTerminal(t, hs.URL, submitOne(t, hs.URL, chaosRequest("density", "interp")))
		if st.Code != service.CodeDeadlineExceeded {
			t.Fatalf("code %s, want deadline_exceeded (%s)", st.Code, st.Error)
		}
	})
	t.Run("resource_exhausted", func(t *testing.T) {
		s, hs := startServer(t, service.Config{Workers: 1})
		s.Drain()
		body, _ := json.Marshal(service.SubmitRequest{Experiments: []service.ExperimentRequest{chaosRequest("density", "")}})
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, b) != service.CodeResourceExhausted {
			t.Fatalf("status %d body %s, want 503 resource_exhausted", resp.StatusCode, b)
		}
	})
	t.Run("internal", func(t *testing.T) {
		_, hs := startServer(t, service.Config{
			Workers: 1,
			Faults:  faultinject.Plan{PanicShot: 3}.Hooks(),
		})
		st := waitTerminal(t, hs.URL, submitOne(t, hs.URL, chaosRequest("density", "off")))
		if st.Code != service.CodeInternal {
			t.Fatalf("code %s, want internal (%s)", st.Code, st.Error)
		}
	})
}

// TestSeededPlansKeepServerAvailable sweeps seed-derived fault plans —
// whatever fault at whatever ordinal each seed picks — and asserts the
// availability invariant: after every plan's job reaches a terminal
// state (done, failed, or timed out under the plan), the same server
// completes a fresh fault-free-by-exhaustion check or, for persistent
// slowness, still answers /healthz.
func TestSeededPlansKeepServerAvailable(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			plan := faultinject.NewPlan(seed)
			_, hs := startServer(t, service.Config{
				Workers:    2,
				JobTimeout: 2 * time.Second,
				Faults:     plan.Hooks(),
			})
			st := waitTerminal(t, hs.URL, submitOne(t, hs.URL, chaosRequest("trajectory", "auto")))
			switch st.Status {
			case service.StatusDone:
			case service.StatusFailed:
				switch st.Code {
				case service.CodeInternal, service.CodeDeadlineExceeded:
				default:
					t.Fatalf("plan %+v produced unexpected code %s (%s)", plan, st.Code, st.Error)
				}
			default:
				t.Fatalf("plan %+v ended status %s", plan, st.Status)
			}
			resp, err := http.Get(hs.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("healthz %d after plan %+v", resp.StatusCode, plan)
			}
		})
	}
}

// TestSeededDiskPlansKeepServerAvailable sweeps seed-derived disk fault
// plans against a journaled server: whichever journal fault at whichever
// ordinal each seed picks, the server stays available (an accepted-append
// failure rejects only that submission with the stable taxonomy code),
// later work completes, and the journal directory the faulted server
// leaves behind always reopens cleanly — the recovery invariant even a
// wedged, torn, or append-starved journal must preserve.
func TestSeededDiskPlansKeepServerAvailable(t *testing.T) {
	quick := service.ExperimentRequest{Type: "t1", Seed: 3, Backend: "trajectory", Rounds: 20}
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			plan := faultinject.NewDiskPlan(seed)
			if plan != faultinject.NewDiskPlan(seed) {
				t.Fatalf("NewDiskPlan(%d) is not deterministic", seed)
			}
			dir := t.TempDir()
			jr, err := journal.Open(journal.Options{Dir: dir, Faults: plan.JournalFaults()})
			if err != nil {
				t.Fatal(err)
			}
			_, hs := startServer(t, service.Config{Workers: 1, Journal: jr})
			t.Cleanup(func() { jr.Close() })

			// Drive enough submissions past the plan's ordinal window
			// (NewDiskPlan ordinals are ≤ 8; each job appends ≥ 3 records).
			rejected := 0
			for i := 0; i < 4; i++ {
				// Distinct seeds: identical batches would be answered from
				// the result cache without touching the journal.
				exp := quick
				exp.Seed = quick.Seed + int64(i)
				body, _ := json.Marshal(service.SubmitRequest{Experiments: []service.ExperimentRequest{exp}})
				resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var acc struct {
						ID string `json:"id"`
					}
					if err := json.Unmarshal(b, &acc); err != nil {
						t.Fatal(err)
					}
					if st := waitTerminal(t, hs.URL, acc.ID); st.Status != service.StatusDone {
						t.Fatalf("plan %+v: job %s ended %s/%s (%s)", plan, acc.ID, st.Status, st.Code, st.Error)
					}
				case http.StatusInternalServerError:
					// Only the load-bearing accepted-record append may reject,
					// and only with the stable code.
					rejected++
					if code := errCode(t, b); code != service.CodeInternal {
						t.Fatalf("plan %+v: rejected submission code %s, want internal", plan, code)
					}
				default:
					t.Fatalf("plan %+v: submit status %d: %s", plan, resp.StatusCode, b)
				}
			}
			if plan.FailJournalAppend == 0 && rejected != 0 {
				t.Fatalf("plan %+v rejected %d submissions without an append fault", plan, rejected)
			}

			// Whatever state the faulted journal left on disk, a fresh open
			// must succeed — torn tails truncate, they never brick recovery.
			jr2, err := journal.Open(journal.Options{Dir: dir})
			if err != nil {
				t.Fatalf("plan %+v left an unrecoverable journal: %v", plan, err)
			}
			jr2.Close()
		})
	}
}

// TestCacheHitsImmuneToDiskFaults pins a resilience property of the
// content-addressed result cache: a cache hit performs no journal
// append and touches no machine, so once a form is cached, resubmitting
// it keeps working — with byte-identical results — even while every
// journal append fails.
func TestCacheHitsImmuneToDiskFaults(t *testing.T) {
	quick := service.ExperimentRequest{Type: "t1", Seed: 7, Backend: "trajectory", Rounds: 20}
	var failing atomic.Bool
	faults := &journal.Faults{Append: func() error {
		if failing.Load() {
			return errors.New("injected: disk full")
		}
		return nil
	}}
	jr, err := journal.Open(journal.Options{Dir: t.TempDir(), Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	_, hs := startServer(t, service.Config{Workers: 1, Journal: jr})
	t.Cleanup(func() { jr.Close() })

	id := submitOne(t, hs.URL, quick)
	if st := waitTerminal(t, hs.URL, id); st.Status != service.StatusDone {
		t.Fatalf("seed job ended %s (%s)", st.Status, st.Error)
	}
	cold := fetchResult(t, hs.URL, id)

	// Every append fails from here on: fresh submissions are rejected
	// with the stable internal code...
	failing.Store(true)
	other := quick
	other.Seed = 8
	body, _ := json.Marshal(service.SubmitRequest{Experiments: []service.ExperimentRequest{other}})
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || errCode(t, rb) != service.CodeInternal {
		t.Fatalf("fresh submit under append faults: status %d (%s)", resp.StatusCode, rb)
	}

	// ...but the cached form keeps answering, byte-identical.
	body, _ = json.Marshal(service.SubmitRequest{Experiments: []service.ExperimentRequest{quick}})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cached resubmit %d under append faults: status %d (%s)", i, resp.StatusCode, hb)
		}
		var env struct {
			ID    string `json:"id"`
			Cache string `json:"cache"`
		}
		if err := json.Unmarshal(hb, &env); err != nil {
			t.Fatal(err)
		}
		if env.Cache != "hit" || env.ID != id {
			t.Fatalf("resubmit %d: cache %q id %s, want hit on %s", i, env.Cache, env.ID, id)
		}
		if got := fetchResult(t, hs.URL, env.ID); !bytes.Equal(got, cold) {
			t.Fatalf("resubmit %d served different bytes under faults", i)
		}
	}
}
