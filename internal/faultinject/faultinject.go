// Package faultinject builds deterministic fault plans for the
// quma-serve hardening suite. A Plan names, by global ordinal, the
// machine-pool acquisition that should fail, the engine shot that
// should panic, or the shot from which every shot turns slow — and
// compiles into the expt.FaultHooks hook points of the sweep engine.
// Disk fault plans (FailJournalAppend, TornWrite, SlowFsync) compile
// the same way into the journal's hook points (journal.Faults) and
// drive the kill-based crash-recovery harness in internal/service.
// Determinism is the point: a chaos test that fails replays exactly by
// rerunning with the same plan, because the injection sites are counted
// with atomic ordinals, not sampled per call.
//
// The package deliberately knows nothing about HTTP or the service
// layer. It only produces hooks; internal/service carries them to the
// Env (service.Config.Faults), and the chaos suite in this package's
// tests drives a real server through each fault and asserts the three
// hardening invariants: the server stays available, every failure maps
// to a stable taxonomy code, and a fault-free rerun of the same
// requests is byte-identical to a run on an unfaulted server.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"quma/internal/expt"
	"quma/internal/journal"
)

// ErrInjected marks an injected pool-acquisition failure, so tests can
// errors.Is their way past the service's message formatting.
var ErrInjected = errors.New("faultinject: injected pool-get failure")

// ErrInjectedAppend marks an injected journal append failure.
var ErrInjectedAppend = errors.New("faultinject: injected journal append failure")

// Plan is one deterministic fault schedule. Ordinals are 1-based and
// counted across the whole Env the hooks are installed on (all sweep
// points, all requests); zero disables that fault. The zero Plan
// injects nothing and compiles to nil hooks.
type Plan struct {
	// FailPoolGet fails the Nth machine-pool acquisition with an error
	// wrapping ErrInjected — the construction-error path between the
	// pool and the sweep runner.
	FailPoolGet int
	// PanicShot panics on the Nth engine shot, exercising worker panic
	// isolation: the job must fail `internal` with a captured stack, the
	// machine must be discarded, and the server must keep serving.
	PanicShot int
	// SlowShot makes every engine shot from the Nth onward sleep SlowFor,
	// forcing a job deadline to expire mid-sweep (the bounded-staleness
	// preemption path). SlowFor defaults to 1ms when SlowShot is set.
	SlowShot int
	SlowFor  time.Duration

	// Disk fault plan — compiled by JournalFaults into the journal's
	// hook points (same nil-check-only pattern), for the kill-based
	// crash harness in internal/service.
	//
	// FailJournalAppend fails the Nth journal append with an error
	// wrapping ErrInjectedAppend: at the accepted record this rejects
	// the submission (500 journal_append_failed); at any later record it
	// is absorbed (best-effort transitions re-execute after a crash).
	FailJournalAppend int
	// TornWrite tears the Nth journal append: only a prefix of the
	// framed record reaches disk and the journal wedges, reproducing
	// exactly the tail a crash mid-write leaves. Recovery must truncate
	// it, never fail startup.
	TornWrite int
	// SlowFsync makes every journal fsync from the Nth onward sleep
	// SlowFsyncFor (default 1ms): durability latency without failure.
	SlowFsync    int
	SlowFsyncFor time.Duration
}

// NewPlan derives a single-fault plan from a seed: the fault kind and
// its (small) ordinal are both functions of the seed alone, so a seed
// is a complete, replayable description of the injection. Used by the
// chaos suite to sweep many distinct injection sites without
// hand-picking them.
func NewPlan(seed int64) Plan {
	kind := expt.DeriveSeed(seed, 0) % 3
	ord := int(expt.DeriveSeed(seed, 1)%64) + 1
	switch kind {
	case 0:
		return Plan{FailPoolGet: ord}
	case 1:
		return Plan{PanicShot: ord}
	default:
		return Plan{SlowShot: ord, SlowFor: time.Millisecond}
	}
}

// Hooks compiles the plan into sweep-engine hooks. The returned hooks
// carry their own atomic ordinal counters, so each Hooks() call is an
// independent injection run; nil is returned for the empty plan (and a
// nil hook set is free — see expt.FaultHooks).
func (p Plan) Hooks() *expt.FaultHooks {
	if p.FailPoolGet <= 0 && p.PanicShot <= 0 && p.SlowShot <= 0 {
		return nil
	}
	slowFor := p.SlowFor
	if slowFor <= 0 {
		slowFor = time.Millisecond
	}
	var gets, shots atomic.Int64
	h := &expt.FaultHooks{}
	if p.FailPoolGet > 0 {
		h.PoolGet = func() error {
			if gets.Add(1) == int64(p.FailPoolGet) {
				return fmt.Errorf("%w (acquisition %d)", ErrInjected, p.FailPoolGet)
			}
			return nil
		}
	}
	if p.PanicShot > 0 || p.SlowShot > 0 {
		h.Shot = func(int) {
			n := shots.Add(1)
			if p.PanicShot > 0 && n == int64(p.PanicShot) {
				panic(fmt.Sprintf("faultinject: injected panic at engine shot %d", n))
			}
			if p.SlowShot > 0 && n >= int64(p.SlowShot) {
				time.Sleep(slowFor)
			}
		}
	}
	return h
}

// NewDiskPlan derives a single disk-fault plan from a seed, the same
// way NewPlan derives sweep-engine faults (NewPlan's seed→fault mapping
// is part of replayability and must not change, so disk faults get
// their own derivation). The ordinal stays small so the fault lands
// within the first few appends of a test workload.
func NewDiskPlan(seed int64) Plan {
	kind := expt.DeriveSeed(seed, 2) % 3
	ord := int(expt.DeriveSeed(seed, 3)%8) + 1
	switch kind {
	case 0:
		return Plan{FailJournalAppend: ord}
	case 1:
		return Plan{TornWrite: ord}
	default:
		return Plan{SlowFsync: ord, SlowFsyncFor: time.Millisecond}
	}
}

// JournalFaults compiles the plan's disk faults into journal hook
// points. Like Hooks, each call carries independent atomic ordinal
// counters; nil is returned when the plan injects no disk fault.
func (p Plan) JournalFaults() *journal.Faults {
	if p.FailJournalAppend <= 0 && p.TornWrite <= 0 && p.SlowFsync <= 0 {
		return nil
	}
	slowFor := p.SlowFsyncFor
	if slowFor <= 0 {
		slowFor = time.Millisecond
	}
	var appends, syncs atomic.Int64
	f := &journal.Faults{}
	if p.FailJournalAppend > 0 || p.TornWrite > 0 {
		// One counter covers both append-shaped faults so their ordinals
		// share a timeline, like PanicShot/SlowShot do.
		f.Append = func() error {
			if appends.Add(1) == int64(p.FailJournalAppend) {
				return fmt.Errorf("%w (append %d)", ErrInjectedAppend, p.FailJournalAppend)
			}
			return nil
		}
		if p.TornWrite > 0 {
			f.Torn = func(frame []byte) []byte {
				if appends.Load() == int64(p.TornWrite) {
					return frame[:len(frame)/2]
				}
				return nil
			}
		}
	}
	if p.SlowFsync > 0 {
		f.Fsync = func() {
			if syncs.Add(1) >= int64(p.SlowFsync) {
				time.Sleep(slowFor)
			}
		}
	}
	return f
}
