package exec

import (
	"fmt"
	"strings"
	"testing"

	"quma/internal/asm"
	"quma/internal/microcode"
)

func TestICacheGeometryValidation(t *testing.T) {
	if _, err := NewICache(0, 8, 10); err == nil {
		t.Error("zero lines must fail")
	}
	if _, err := NewICache(8, 0, 10); err == nil {
		t.Error("zero line words must fail")
	}
}

func TestICacheColdMissThenHit(t *testing.T) {
	c, err := NewICache(4, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fetch(0) {
		t.Error("cold fetch must miss")
	}
	for pc := 1; pc < 4; pc++ {
		if !c.Fetch(pc) {
			t.Errorf("same-line fetch at %d must hit", pc)
		}
	}
	if !c.Fetch(0) {
		t.Error("refetch must hit")
	}
	if c.Misses() != 1 || c.Fetches() != 5 {
		t.Errorf("stats = %d/%d", c.Misses(), c.Fetches())
	}
	if c.StallCycles() != 10 {
		t.Errorf("stalls = %d", c.StallCycles())
	}
}

func TestICacheConflictEviction(t *testing.T) {
	c, err := NewICache(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// PCs 0 and 2 map to line 0 with 1-word lines and 2 lines.
	c.Fetch(0)
	c.Fetch(2)
	if c.Fetch(0) {
		t.Error("conflicting line must have been evicted")
	}
}

func TestICacheReset(t *testing.T) {
	c, err := NewICache(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Fetch(0)
	c.Reset()
	if c.Fetches() != 0 || c.HitRate() != 1 {
		t.Error("reset incomplete")
	}
	if c.Fetch(0) {
		t.Error("post-reset fetch must miss")
	}
}

func TestICacheLoopLocality(t *testing.T) {
	// An Algorithm-3-style loop fits in the cache: after the first
	// iteration the hit rate approaches 1 — the property that lets the
	// paper's controller stream one small binary for a 25600-round
	// experiment.
	qmb := NewQMB(nil, nil, nil)
	ctrl := NewController(microcode.StandardControlStore(), qmb)
	ic, err := NewICache(64, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.ICache = ic
	prog := asm.MustAssemble(`
mov r15, 100
mov r1, 0
mov r2, 200
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err := ctrl.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Run(0); err != nil {
		t.Fatal(err)
	}
	if hr := ic.HitRate(); hr < 0.99 {
		t.Errorf("loop hit rate = %v, want > 0.99", hr)
	}
	if ic.Misses() > uint64(ic.Lines) {
		t.Errorf("misses = %d, want only cold misses", ic.Misses())
	}
}

func TestICacheUnrolledProgramThrashes(t *testing.T) {
	// A fully unrolled program larger than the cache misses on every
	// line — the cost the compact loop encoding avoids.
	var b strings.Builder
	for i := 0; i < 600; i++ {
		fmt.Fprintf(&b, "Wait 4\nPulse {q0}, I\n")
	}
	b.WriteString("halt\n")
	qmb := NewQMB(nil, nil, nil)
	ctrl := NewController(microcode.StandardControlStore(), qmb)
	ic, err := NewICache(16, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.ICache = ic
	if err := ctrl.Load(asm.MustAssemble(b.String())); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Run(0); err != nil {
		t.Fatal(err)
	}
	// 1201 instructions / 4 words per line ≈ 301 lines streamed once.
	if ic.Misses() < 300 {
		t.Errorf("misses = %d, want ≈ one per line", ic.Misses())
	}
	if ic.HitRate() > 0.8 {
		t.Errorf("hit rate = %v, expected streaming behaviour", ic.HitRate())
	}
}
