// Package exec implements QuMA's execution controller — the classical
// pipeline that executes auxiliary instructions and streams quantum
// instructions toward the physical execution layer — together with the
// quantum microinstruction buffer (QMB) that decomposes QuMIS
// microinstructions into labelled micro-operations and fills the timing
// control unit's queues (paper Sections 5.2 and 5.3).
package exec

import (
	"fmt"

	"quma/internal/clock"
	"quma/internal/isa"
	"quma/internal/timing"
)

// PulseEvent is a micro-operation scheduled in the pulse queue: a named
// micro-operation addressed to one qubit (single-qubit decomposition of a
// horizontal Pulse) or to a qubit pair (two-qubit operations such as CZ,
// which are physically one flux pulse).
type PulseEvent struct {
	Qubits isa.QubitMask
	UOp    string
}

func (e PulseEvent) String() string { return fmt.Sprintf("(%s, %s)", e.UOp, e.Qubits) }

// MPGEvent triggers measurement-pulse generation on the addressed qubits
// for Duration cycles.
type MPGEvent struct {
	Qubits   isa.QubitMask
	Duration clock.Cycle
}

func (e MPGEvent) String() string { return fmt.Sprintf("(MPG %s, %d)", e.Qubits, e.Duration) }

// MDEvent triggers measurement discrimination on the addressed qubits,
// with the binary result written back to register Rd.
type MDEvent struct {
	Qubits isa.QubitMask
	Rd     isa.Reg
}

func (e MDEvent) String() string { return fmt.Sprintf("(%s, %s)", e.Rd, e.Qubits) }

// QMB is the quantum microinstruction buffer. It accepts QuMIS
// microinstructions in program order, assigns each event a time point on
// the deterministic timeline (a timing label plus an interval from the
// previous time point), and pushes the resulting micro-operations into
// the event queues of the timing control unit.
//
// Timing rule (derived from the paper's Tables 2–4): Wait accumulates
// interval; the first event instruction after accumulated interval opens
// a new time point; event instructions with no intervening Wait share the
// current time point (as the MPG/MD pair of a measurement does).
type QMB struct {
	// TC is the timing controller whose queues this QMB fills.
	TC *timing.Controller
	// PulseQ, MPGQ, MDQ are the three event queues of the AllXY
	// configuration (and of the implemented prototype).
	PulseQ *timing.EventQueue[PulseEvent]
	MPGQ   *timing.EventQueue[MPGEvent]
	MDQ    *timing.EventQueue[MDEvent]
	// TwoQubitOps names micro-operations that address a qubit *pair* with
	// a single physical pulse; horizontal Pulse instructions naming them
	// are not decomposed per qubit.
	TwoQubitOps map[string]bool

	nextLabel timing.Label
	acc       clock.Cycle
	haveLabel bool
	curLabel  timing.Label
}

// NewQMB builds a QMB wired to a fresh timing controller. Fire handlers
// for the three queues are supplied by the machine integration (package
// core); nil handlers discard events.
func NewQMB(
	onPulse func(PulseEvent, clock.Cycle),
	onMPG func(MPGEvent, clock.Cycle),
	onMD func(MDEvent, clock.Cycle),
) *QMB {
	q := &QMB{
		TC:          timing.NewController(),
		TwoQubitOps: map[string]bool{"CZ": true},
	}
	q.PulseQ = timing.NewEventQueue("Pulse", onPulse)
	q.MPGQ = timing.NewEventQueue("MPG", onMPG)
	q.MDQ = timing.NewEventQueue("MD", onMD)
	q.TC.Register(q.PulseQ)
	q.TC.Register(q.MPGQ)
	q.TC.Register(q.MDQ)
	return q
}

// Wait accumulates interval before the next time point.
func (q *QMB) Wait(cycles clock.Cycle) { q.acc += cycles }

// label returns the label for the next event, opening a new time point if
// interval has accumulated (or none exists yet).
func (q *QMB) label() timing.Label {
	if !q.haveLabel || q.acc > 0 {
		q.nextLabel++
		q.curLabel = q.nextLabel
		q.TC.TQ.Push(timing.TimePoint{Interval: q.acc, Label: q.curLabel})
		q.acc = 0
		q.haveLabel = true
	}
	return q.curLabel
}

// Submit decomposes one QuMIS microinstruction into micro-operations and
// pushes them into the queues. Register-timed waits must be resolved by
// the caller (the execution controller) before submission.
func (q *QMB) Submit(in isa.Instruction) error {
	switch in.Op {
	case isa.OpWait:
		if in.Imm < 0 {
			return fmt.Errorf("exec: negative Wait %d", in.Imm)
		}
		q.Wait(clock.Cycle(in.Imm))
		return nil
	case isa.OpPulse:
		l := q.label()
		if q.TwoQubitOps[in.UOp] {
			q.PulseQ.Push(PulseEvent{Qubits: in.QAddr, UOp: in.UOp}, l)
			return nil
		}
		for _, qb := range in.QAddr.Qubits() {
			q.PulseQ.Push(PulseEvent{Qubits: isa.MaskQ(qb), UOp: in.UOp}, l)
		}
		return nil
	case isa.OpMPG:
		if in.Imm <= 0 {
			return fmt.Errorf("exec: MPG needs positive duration, got %d", in.Imm)
		}
		q.MPGQ.Push(MPGEvent{Qubits: in.QAddr, Duration: clock.Cycle(in.Imm)}, q.label())
		return nil
	case isa.OpMD:
		q.MDQ.Push(MDEvent{Qubits: in.QAddr, Rd: in.Rd}, q.label())
		return nil
	}
	return fmt.Errorf("exec: %s is not a queue-fillable microinstruction", in.Op)
}

// PendingInterval returns the interval accumulated since the last time
// point (test/inspection hook).
func (q *QMB) PendingInterval() clock.Cycle { return q.acc }

// LabelsIssued returns how many time points have been opened.
func (q *QMB) LabelsIssued() uint64 { return uint64(q.nextLabel) }
