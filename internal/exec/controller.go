package exec

import (
	"fmt"

	"quma/internal/clock"
	"quma/internal/isa"
	"quma/internal/microcode"
)

// DefaultMemWords is the default data-memory size in 64-bit words.
const DefaultMemWords = 4096

// DefaultMaxSteps bounds Run against runaway programs.
const DefaultMaxSteps = 200_000_000

// Controller is the execution controller: register file, data memory,
// program counter, the classical ALU, and the dispatch path that sends
// quantum instructions through the physical microcode unit into the QMB.
//
// Timing domains: the controller executes instructions "as fast as
// possible" (each Step fills queues without advancing the deterministic
// clock). The deterministic domain is drained lazily — whenever a
// classical instruction needs a register that a pending measurement
// discrimination will write, or when the program halts. This mirrors the
// hardware, where instruction execution runs ahead during waits and only
// feedback reads synchronize the two domains.
type Controller struct {
	Regs [isa.NumRegs]int64
	Mem  []int64
	// HostMem is the shared region the host CPU and the quantum
	// coprocessor exchange data through (hld/hst) — the heterogeneous-
	// platform extension of the paper's Section 6.
	HostMem []int64
	PC      int

	// CS is the Q control store used by the physical microcode unit.
	CS *microcode.ControlStore
	// QMB is the quantum microinstruction buffer fed by quantum
	// instructions.
	QMB *QMB
	// ICache, when non-nil, records every instruction fetch through the
	// quantum instruction cache model (Figures 6/7).
	ICache *ICache

	prog   *isa.Program
	halted bool
	// Steps counts executed instructions.
	Steps uint64
	// pendingMD counts queued MD events per destination register; reads
	// of such registers force a drain.
	pendingMD [isa.NumRegs]int

	// Replay-safety tracking (consumed by internal/replay). The engine
	// replays only the quantum event schedule of a recorded shot, so a
	// program is replayable only if its classical execution can never
	// change the schedule or depend on per-shot state. Two taints are
	// tracked per register:
	//
	//   - tainted: the value derives from a measurement write-back
	//     (WriteReg). Any read of a tainted register is feedback — the
	//     defining unsafe pattern.
	//   - everWritten vs writtenThisRun: a register written in a previous
	//     program run (Load resets writtenThisRun, not everWritten) may
	//     hold cross-shot state; reading it before rewriting it makes
	//     behaviour shot-dependent. Never-written registers are constant
	//     zero and safe.
	//
	// Data-memory and host-memory loads are conservatively unsafe: their
	// cells can carry cross-shot state and are not tracked per address.
	tainted        [isa.NumRegs]bool
	everWritten    [isa.NumRegs]bool
	writtenThisRun [isa.NumRegs]bool
	unsafeReason   string
}

// NewController returns a controller wired to the given control store and
// QMB, with zeroed registers and DefaultMemWords words of data memory.
func NewController(cs *microcode.ControlStore, qmb *QMB) *Controller {
	return &Controller{
		CS:      cs,
		QMB:     qmb,
		Mem:     make([]int64, DefaultMemWords),
		HostMem: make([]int64, 256),
	}
}

// Load installs a program and resets PC and halt state (registers and
// memory are preserved, as on the real box where the PC uploads programs
// without clearing data).
func (c *Controller) Load(p *isa.Program) error {
	// Re-loading the same immutable program (the engine's shot loop) skips
	// re-validation.
	if p != c.prog {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	c.prog = p
	c.PC = 0
	c.halted = false
	c.writtenThisRun = [isa.NumRegs]bool{}
	return nil
}

// Halted reports whether the program has stopped.
func (c *Controller) Halted() bool { return c.halted }

// WriteReg writes a register (used by the MD fire handler for measurement
// write-back) and retires one pending-MD marker for it. The register is
// marked measurement-tainted for replay-safety detection.
func (c *Controller) WriteReg(r isa.Reg, v int64) {
	c.Regs[r] = v
	c.tainted[r] = true
	c.everWritten[r] = true
	c.writtenThisRun[r] = true
	if c.pendingMD[r] > 0 {
		c.pendingMD[r]--
	}
}

// setReg is the classical write-back path: the destination value is a
// deterministic function of values already vetted by readReg, so it clears
// the measurement taint.
func (c *Controller) setReg(r isa.Reg, v int64) {
	c.Regs[r] = v
	c.tainted[r] = false
	c.everWritten[r] = true
	c.writtenThisRun[r] = true
}

// markUnsafe records the first reason the running program cannot be
// schedule-replayed.
func (c *Controller) markUnsafe(reason string) {
	if c.unsafeReason == "" {
		c.unsafeReason = reason
	}
}

// ReplayUnsafeReason returns why the program(s) executed since the last
// ResetReplayTracking cannot be replayed from a recorded schedule, or ""
// if no unsafe pattern was observed. The detection is conservative: it
// can flag safe programs (and the engine then falls back to full
// simulation), never the reverse.
func (c *Controller) ReplayUnsafeReason() string { return c.unsafeReason }

// ResetReplayTracking clears all replay-safety state; the replay engine
// calls it once before its first shot.
func (c *Controller) ResetReplayTracking() {
	c.tainted = [isa.NumRegs]bool{}
	c.everWritten = [isa.NumRegs]bool{}
	c.writtenThisRun = [isa.NumRegs]bool{}
	c.unsafeReason = ""
}

// drain runs the deterministic domain to exhaustion.
func (c *Controller) drain() error {
	if !c.QMB.TC.Started() {
		c.QMB.TC.Start()
	}
	_, err := c.QMB.TC.Drain()
	return err
}

// syncIfRead drains the timing domain if register r has a pending
// measurement write — the feedback synchronization point. It also feeds
// the replay-safety detector: consuming a measurement-derived value, or a
// value carried over from a previous program run, makes the program
// unsafe to schedule-replay.
func (c *Controller) syncIfRead(r isa.Reg) error {
	if c.pendingMD[r] > 0 {
		if err := c.drain(); err != nil {
			return err
		}
	}
	if c.tainted[r] {
		c.markUnsafe(fmt.Sprintf("instruction at PC %d consumed measurement result in %s", c.PC, r))
	} else if c.everWritten[r] && !c.writtenThisRun[r] {
		c.markUnsafe(fmt.Sprintf("instruction at PC %d consumed cross-shot state in %s", c.PC, r))
	}
	return nil
}

// Step executes one instruction. Quantum instructions are expanded by the
// physical microcode unit and submitted to the QMB; classical
// instructions retire immediately.
func (c *Controller) Step() error {
	if c.prog == nil {
		return fmt.Errorf("exec: no program loaded")
	}
	if c.halted {
		return fmt.Errorf("exec: stepping a halted controller")
	}
	if c.PC < 0 || c.PC >= len(c.prog.Instrs) {
		return fmt.Errorf("exec: PC %d outside program", c.PC)
	}
	if c.ICache != nil {
		c.ICache.Fetch(c.PC)
	}
	in := c.prog.Instrs[c.PC]
	c.Steps++
	nextPC := c.PC + 1

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		c.halted = true
		if err := c.drain(); err != nil {
			return err
		}
	case isa.OpMov:
		c.setReg(in.Rd, in.Imm)
	case isa.OpMovReg:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		c.setReg(in.Rd, c.Regs[in.Rs])
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		if err := c.syncIfRead(in.Rt); err != nil {
			return err
		}
		a, b := c.Regs[in.Rs], c.Regs[in.Rt]
		switch in.Op {
		case isa.OpAdd:
			c.setReg(in.Rd, a+b)
		case isa.OpSub:
			c.setReg(in.Rd, a-b)
		case isa.OpAnd:
			c.setReg(in.Rd, a&b)
		case isa.OpOr:
			c.setReg(in.Rd, a|b)
		case isa.OpXor:
			c.setReg(in.Rd, a^b)
		}
	case isa.OpAddi:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		c.setReg(in.Rd, c.Regs[in.Rs]+in.Imm)
	case isa.OpLoad:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		addr := c.Regs[in.Rs] + in.Imm
		if addr < 0 || addr >= int64(len(c.Mem)) {
			return fmt.Errorf("exec: load address %d out of range at PC %d", addr, c.PC)
		}
		// Memory cells are not tracked per address, so any load may be
		// consuming cross-shot state.
		c.markUnsafe(fmt.Sprintf("data-memory load at PC %d", c.PC))
		c.setReg(in.Rd, c.Mem[addr])
	case isa.OpStore:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		if err := c.syncIfRead(in.Rd); err != nil {
			return err
		}
		addr := c.Regs[in.Rd] + in.Imm
		if addr < 0 || addr >= int64(len(c.Mem)) {
			return fmt.Errorf("exec: store address %d out of range at PC %d", addr, c.PC)
		}
		c.Mem[addr] = c.Regs[in.Rs]
	case isa.OpBeq, isa.OpBne, isa.OpBlt:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		if err := c.syncIfRead(in.Rt); err != nil {
			return err
		}
		a, b := c.Regs[in.Rs], c.Regs[in.Rt]
		taken := false
		switch in.Op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlt:
			taken = a < b
		}
		if taken {
			nextPC = int(in.Imm)
		}
	case isa.OpJmp:
		nextPC = int(in.Imm)

	case isa.OpHostLoad:
		if in.Imm < 0 || in.Imm >= int64(len(c.HostMem)) {
			return fmt.Errorf("exec: host load address %d out of range at PC %d", in.Imm, c.PC)
		}
		c.markUnsafe(fmt.Sprintf("host-memory load at PC %d", c.PC))
		c.setReg(in.Rd, c.HostMem[in.Imm])
	case isa.OpHostStore:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		if in.Imm < 0 || in.Imm >= int64(len(c.HostMem)) {
			return fmt.Errorf("exec: host store address %d out of range at PC %d", in.Imm, c.PC)
		}
		c.HostMem[in.Imm] = c.Regs[in.Rs]

	case isa.OpQNopReg, isa.OpWaitReg:
		// Register-timed wait: the interval is read at issue time, which
		// is what lets one static instruction produce run-time-computed
		// timing (paper Section 5.3.2).
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		v := c.Regs[in.Rs]
		if v < 0 {
			return fmt.Errorf("exec: %s read negative interval %d", in, v)
		}
		c.QMB.Wait(clock.Cycle(v))

	default:
		if !in.Op.IsQuantum() {
			return fmt.Errorf("exec: unhandled opcode %s at PC %d", in.Op, c.PC)
		}
		mis, err := c.CS.Expand(in)
		if err != nil {
			return fmt.Errorf("exec: PC %d: %w", c.PC, err)
		}
		for _, mi := range mis {
			if mi.Op == isa.OpMD {
				c.pendingMD[mi.Rd]++
			}
			if err := c.QMB.Submit(mi); err != nil {
				return fmt.Errorf("exec: PC %d: %w", c.PC, err)
			}
		}
	}

	c.PC = nextPC
	return nil
}

// Run executes until halt or maxSteps instructions (DefaultMaxSteps when
// maxSteps <= 0).
func (c *Controller) Run(maxSteps uint64) error {
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	start := c.Steps
	for !c.halted {
		if c.Steps-start >= maxSteps {
			return fmt.Errorf("exec: exceeded %d steps without halting", maxSteps)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}
