package exec

import (
	"fmt"

	"quma/internal/clock"
	"quma/internal/isa"
	"quma/internal/microcode"
)

// DefaultMemWords is the default data-memory size in 64-bit words.
const DefaultMemWords = 4096

// DefaultMaxSteps bounds Run against runaway programs.
const DefaultMaxSteps = 200_000_000

// Controller is the execution controller: register file, data memory,
// program counter, the classical ALU, and the dispatch path that sends
// quantum instructions through the physical microcode unit into the QMB.
//
// Timing domains: the controller executes instructions "as fast as
// possible" (each Step fills queues without advancing the deterministic
// clock). The deterministic domain is drained lazily — whenever a
// classical instruction needs a register that a pending measurement
// discrimination will write, or when the program halts. This mirrors the
// hardware, where instruction execution runs ahead during waits and only
// feedback reads synchronize the two domains.
type Controller struct {
	Regs [isa.NumRegs]int64
	Mem  []int64
	// HostMem is the shared region the host CPU and the quantum
	// coprocessor exchange data through (hld/hst) — the heterogeneous-
	// platform extension of the paper's Section 6.
	HostMem []int64
	PC      int

	// CS is the Q control store used by the physical microcode unit.
	CS *microcode.ControlStore
	// QMB is the quantum microinstruction buffer fed by quantum
	// instructions.
	QMB *QMB
	// ICache, when non-nil, records every instruction fetch through the
	// quantum instruction cache model (Figures 6/7).
	ICache *ICache

	prog   *isa.Program
	halted bool
	// Steps counts executed instructions.
	Steps uint64
	// pendingMD counts queued MD events per destination register; reads
	// of such registers force a drain.
	pendingMD [isa.NumRegs]int
}

// NewController returns a controller wired to the given control store and
// QMB, with zeroed registers and DefaultMemWords words of data memory.
func NewController(cs *microcode.ControlStore, qmb *QMB) *Controller {
	return &Controller{
		CS:      cs,
		QMB:     qmb,
		Mem:     make([]int64, DefaultMemWords),
		HostMem: make([]int64, 256),
	}
}

// Load installs a program and resets PC and halt state (registers and
// memory are preserved, as on the real box where the PC uploads programs
// without clearing data).
func (c *Controller) Load(p *isa.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.prog = p
	c.PC = 0
	c.halted = false
	return nil
}

// Halted reports whether the program has stopped.
func (c *Controller) Halted() bool { return c.halted }

// WriteReg writes a register (used by the MD fire handler for measurement
// write-back) and retires one pending-MD marker for it.
func (c *Controller) WriteReg(r isa.Reg, v int64) {
	c.Regs[r] = v
	if c.pendingMD[r] > 0 {
		c.pendingMD[r]--
	}
}

// drain runs the deterministic domain to exhaustion.
func (c *Controller) drain() error {
	if !c.QMB.TC.Started() {
		c.QMB.TC.Start()
	}
	_, err := c.QMB.TC.Drain()
	return err
}

// syncIfRead drains the timing domain if register r has a pending
// measurement write — the feedback synchronization point.
func (c *Controller) syncIfRead(r isa.Reg) error {
	if c.pendingMD[r] > 0 {
		return c.drain()
	}
	return nil
}

// Step executes one instruction. Quantum instructions are expanded by the
// physical microcode unit and submitted to the QMB; classical
// instructions retire immediately.
func (c *Controller) Step() error {
	if c.prog == nil {
		return fmt.Errorf("exec: no program loaded")
	}
	if c.halted {
		return fmt.Errorf("exec: stepping a halted controller")
	}
	if c.PC < 0 || c.PC >= len(c.prog.Instrs) {
		return fmt.Errorf("exec: PC %d outside program", c.PC)
	}
	if c.ICache != nil {
		c.ICache.Fetch(c.PC)
	}
	in := c.prog.Instrs[c.PC]
	c.Steps++
	nextPC := c.PC + 1

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		c.halted = true
		if err := c.drain(); err != nil {
			return err
		}
	case isa.OpMov:
		c.Regs[in.Rd] = in.Imm
	case isa.OpMovReg:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		c.Regs[in.Rd] = c.Regs[in.Rs]
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		if err := c.syncIfRead(in.Rt); err != nil {
			return err
		}
		a, b := c.Regs[in.Rs], c.Regs[in.Rt]
		switch in.Op {
		case isa.OpAdd:
			c.Regs[in.Rd] = a + b
		case isa.OpSub:
			c.Regs[in.Rd] = a - b
		case isa.OpAnd:
			c.Regs[in.Rd] = a & b
		case isa.OpOr:
			c.Regs[in.Rd] = a | b
		case isa.OpXor:
			c.Regs[in.Rd] = a ^ b
		}
	case isa.OpAddi:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		c.Regs[in.Rd] = c.Regs[in.Rs] + in.Imm
	case isa.OpLoad:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		addr := c.Regs[in.Rs] + in.Imm
		if addr < 0 || addr >= int64(len(c.Mem)) {
			return fmt.Errorf("exec: load address %d out of range at PC %d", addr, c.PC)
		}
		c.Regs[in.Rd] = c.Mem[addr]
	case isa.OpStore:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		if err := c.syncIfRead(in.Rd); err != nil {
			return err
		}
		addr := c.Regs[in.Rd] + in.Imm
		if addr < 0 || addr >= int64(len(c.Mem)) {
			return fmt.Errorf("exec: store address %d out of range at PC %d", addr, c.PC)
		}
		c.Mem[addr] = c.Regs[in.Rs]
	case isa.OpBeq, isa.OpBne, isa.OpBlt:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		if err := c.syncIfRead(in.Rt); err != nil {
			return err
		}
		a, b := c.Regs[in.Rs], c.Regs[in.Rt]
		taken := false
		switch in.Op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlt:
			taken = a < b
		}
		if taken {
			nextPC = int(in.Imm)
		}
	case isa.OpJmp:
		nextPC = int(in.Imm)

	case isa.OpHostLoad:
		if in.Imm < 0 || in.Imm >= int64(len(c.HostMem)) {
			return fmt.Errorf("exec: host load address %d out of range at PC %d", in.Imm, c.PC)
		}
		c.Regs[in.Rd] = c.HostMem[in.Imm]
	case isa.OpHostStore:
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		if in.Imm < 0 || in.Imm >= int64(len(c.HostMem)) {
			return fmt.Errorf("exec: host store address %d out of range at PC %d", in.Imm, c.PC)
		}
		c.HostMem[in.Imm] = c.Regs[in.Rs]

	case isa.OpQNopReg, isa.OpWaitReg:
		// Register-timed wait: the interval is read at issue time, which
		// is what lets one static instruction produce run-time-computed
		// timing (paper Section 5.3.2).
		if err := c.syncIfRead(in.Rs); err != nil {
			return err
		}
		v := c.Regs[in.Rs]
		if v < 0 {
			return fmt.Errorf("exec: %s read negative interval %d", in, v)
		}
		c.QMB.Wait(clock.Cycle(v))

	default:
		if !in.Op.IsQuantum() {
			return fmt.Errorf("exec: unhandled opcode %s at PC %d", in.Op, c.PC)
		}
		mis, err := c.CS.Expand(in)
		if err != nil {
			return fmt.Errorf("exec: PC %d: %w", c.PC, err)
		}
		for _, mi := range mis {
			if mi.Op == isa.OpMD {
				c.pendingMD[mi.Rd]++
			}
			if err := c.QMB.Submit(mi); err != nil {
				return fmt.Errorf("exec: PC %d: %w", c.PC, err)
			}
		}
	}

	c.PC = nextPC
	return nil
}

// Run executes until halt or maxSteps instructions (DefaultMaxSteps when
// maxSteps <= 0).
func (c *Controller) Run(maxSteps uint64) error {
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	start := c.Steps
	for !c.halted {
		if c.Steps-start >= maxSteps {
			return fmt.Errorf("exec: exceeded %d steps without halting", maxSteps)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}
