package exec

import "fmt"

// Issue-rate scalability model for the paper's Section 6 discussion:
// "the limited time for executing instructions in quantum computers may
// form a challenge in QuMA when more qubits ask for a higher operation
// output rate while only a single instruction stream is used."
//
// The model balances instruction supply against micro-operation demand:
//
//   - supply: the controller issues IssueWidth instructions per 5 ns
//     cycle (1 for the scalar prototype, more with VLIW);
//   - demand: each qubit performs one gate every OpIntervalCycles, and
//     driving one gate costs InstrsPerOp instructions (Pulse + Wait = 2
//     in the prototype); horizontal instructions spread that cost over
//     HorizontalQubits qubits at once.
type IssueModel struct {
	// IssueWidth is instructions issued per cycle.
	IssueWidth float64
	// InstrsPerOp is the instruction cost of one gate slot (2 for
	// Pulse + Wait).
	InstrsPerOp float64
	// OpIntervalCycles is the gate repetition interval per qubit in
	// cycles (4 for back-to-back 20 ns gates).
	OpIntervalCycles float64
	// HorizontalQubits is how many qubits one horizontal instruction
	// addresses (1 = fully vertical code).
	HorizontalQubits float64
}

// PrototypeIssueModel returns the paper's single-stream prototype:
// 1 instruction per cycle, 2 instructions per gate slot, gates every 4
// cycles, vertical code.
func PrototypeIssueModel() IssueModel {
	return IssueModel{IssueWidth: 1, InstrsPerOp: 2, OpIntervalCycles: 4, HorizontalQubits: 1}
}

// DemandPerQubit returns the instructions per cycle one qubit consumes.
func (m IssueModel) DemandPerQubit() float64 {
	if m.OpIntervalCycles <= 0 || m.HorizontalQubits <= 0 {
		return 0
	}
	return m.InstrsPerOp / m.OpIntervalCycles / m.HorizontalQubits
}

// MaxQubits returns the largest qubit count whose gate stream the
// instruction issue can sustain.
func (m IssueModel) MaxQubits() float64 {
	d := m.DemandPerQubit()
	if d == 0 {
		return 0
	}
	return m.IssueWidth / d
}

// Utilization returns the fraction of issue bandwidth consumed by n
// qubits (>1 means the stream cannot keep up and the deterministic
// queues will eventually underrun).
func (m IssueModel) Utilization(n int) float64 {
	if m.IssueWidth <= 0 {
		return 0
	}
	return float64(n) * m.DemandPerQubit() / m.IssueWidth
}

func (m IssueModel) String() string {
	return fmt.Sprintf("issue=%g instr/cy, %g instr/op, op every %g cy, horizontal×%g → max %.1f qubits",
		m.IssueWidth, m.InstrsPerOp, m.OpIntervalCycles, m.HorizontalQubits, m.MaxQubits())
}
