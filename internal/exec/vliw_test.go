package exec

import (
	"fmt"
	"testing"

	"quma/internal/asm"
	"quma/internal/clock"
	"quma/internal/isa"
	"quma/internal/microcode"
)

func TestBundleProgramWidthValidation(t *testing.T) {
	p := asm.MustAssemble("halt")
	if _, err := BundleProgram(p, 0); err == nil {
		t.Error("width 0 must fail")
	}
	if _, err := BundleProgram(p, 17); err == nil {
		t.Error("width 17 must fail")
	}
}

func TestBundlePacksIndependentInstructions(t *testing.T) {
	p := asm.MustAssemble(`
mov r1, 1
mov r2, 2
mov r3, 3
mov r4, 4
halt
`)
	bp, err := BundleProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 independent movs pack into one bundle; halt is its own.
	if len(bp.Bundles) != 2 {
		t.Fatalf("bundles = %d, want 2: %v", len(bp.Bundles), bp.Bundles)
	}
	if len(bp.Bundles[0]) != 4 {
		t.Errorf("first bundle has %d slots", len(bp.Bundles[0]))
	}
	if got := bp.IssueRate(); got != 2.5 {
		t.Errorf("issue rate = %v, want 2.5 (5 instrs / 2 bundles)", got)
	}
}

func TestBundleBreaksOnRAW(t *testing.T) {
	p := asm.MustAssemble(`
mov r1, 1
addi r2, r1, 1
halt
`)
	bp, err := BundleProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// addi reads r1 written by mov: must start a new bundle.
	if len(bp.Bundles[0]) != 1 {
		t.Errorf("RAW not split: first bundle %v", bp.Bundles[0])
	}
}

func TestBundleBreaksOnWAW(t *testing.T) {
	p := asm.MustAssemble("mov r1, 1\nmov r1, 2\nhalt")
	bp, err := BundleProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Bundles[0]) != 1 {
		t.Errorf("WAW not split: %v", bp.Bundles[0])
	}
}

func TestBundleBranchTerminatesAndLabelStarts(t *testing.T) {
	p := asm.MustAssemble(`
mov r1, 0
mov r2, 3
Loop:
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	bp, err := BundleProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Find the bundle containing the bne: it must be the last slot, and
	// its target must be the bundle starting at the label.
	for bi, b := range bp.Bundles {
		for si, in := range b {
			if in.Op == isa.OpBne {
				if si != len(b)-1 {
					t.Error("branch must be the bundle's last slot")
				}
				tgt := int(in.Imm)
				if tgt < 0 || tgt >= len(bp.Bundles) {
					t.Fatalf("branch target %d outside bundles", tgt)
				}
				if bp.Bundles[tgt][0].Op != isa.OpAddi {
					t.Errorf("bundle %d branch target %d starts with %v", bi, tgt, bp.Bundles[tgt][0])
				}
			}
		}
	}
}

func TestBundleQuantumInstructionsPack(t *testing.T) {
	p := asm.MustAssemble(`
Pulse {q0}, X180
Wait 4
Pulse {q1}, Y180
Wait 4
halt
`)
	bp, err := BundleProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Bundles[0]) != 4 {
		t.Errorf("quantum stream should pack: %v", bp.Bundles[0])
	}
}

func TestBundleMDWriteIsHazard(t *testing.T) {
	p := asm.MustAssemble(`
MD {q0}, r7
add r9, r9, r7
halt
`)
	bp, err := BundleProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Bundles[0]) != 1 {
		t.Error("read of MD destination must not share the bundle")
	}
}

// vliwRig builds scalar and VLIW controllers over the same program and
// returns their pulse logs.
func runBoth(t *testing.T, src string, width int) (scalar, vliw *Controller, logS, logV *[]string) {
	t.Helper()
	build := func() (*Controller, *[]string) {
		log := &[]string{}
		qmb := NewQMB(
			func(e PulseEvent, td clock.Cycle) {
				*log = append(*log, fmt.Sprintf("%d:%s:%s", td, e.UOp, e.Qubits))
			}, nil, nil)
		c := NewController(microcode.StandardControlStore(), qmb)
		qmb.MDQ.OnFire = func(e MDEvent, td clock.Cycle) { c.WriteReg(e.Rd, 1) }
		return c, log
	}
	p := asm.MustAssemble(src)

	s, logS0 := build()
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}

	v, logV0 := build()
	bp, err := BundleProgram(p, width)
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVLIWController(v, bp)
	if err := vc.Run(0); err != nil {
		t.Fatal(err)
	}
	if !vc.Halted() {
		t.Fatal("VLIW did not halt")
	}
	return s, v, logS0, logV0
}

func TestVLIWEquivalentToScalar(t *testing.T) {
	src := `
mov r15, 100
mov r1, 0
mov r2, 5
mov r9, 0
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 4
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`
	for _, width := range []int{1, 2, 4, 8} {
		s, v, logS, logV := runBoth(t, src, width)
		if s.Regs != v.Regs {
			t.Errorf("width %d: register files differ:\n%v\n%v", width, s.Regs, v.Regs)
		}
		if len(*logS) != len(*logV) {
			t.Fatalf("width %d: pulse counts differ %d vs %d", width, len(*logS), len(*logV))
		}
		for i := range *logS {
			if (*logS)[i] != (*logV)[i] {
				t.Errorf("width %d: pulse %d: %s vs %s", width, i, (*logS)[i], (*logV)[i])
			}
		}
	}
}

func TestVLIWIssueRateImproves(t *testing.T) {
	// The AllXY round body (straight-line quantum stream) should pack
	// significantly better than width 1.
	src := `
Wait 40000
Pulse {q0}, I
Wait 4
Pulse {q0}, I
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`
	p := asm.MustAssemble(src)
	bp1, err := BundleProgram(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	bp4, err := BundleProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bp1.IssueRate() != 1 {
		t.Errorf("width-1 issue rate = %v", bp1.IssueRate())
	}
	if bp4.IssueRate() < 2 {
		t.Errorf("width-4 issue rate = %v, want ≥ 2", bp4.IssueRate())
	}
}

func TestVLIWFeedbackStillSynchronizes(t *testing.T) {
	// The branch reads a pending-MD register: VLIW must still drain the
	// deterministic domain before deciding.
	src := `
mov r15, 100
mov r6, 1
QNopReg r15
MPG {q0}, 300
MD {q0}, r7
Wait 300
beq r7, r6, Done
Pulse {q0}, X180
Wait 4
Done:
halt
`
	_, v, _, logV := runBoth(t, src, 4)
	if v.Regs[7] != 1 {
		t.Fatalf("r7 = %d, want 1", v.Regs[7])
	}
	for _, l := range *logV {
		if l == "400:X180:{q0}" {
			t.Error("correction pulse must have been skipped under VLIW too")
		}
	}
}

func TestVLIWStepAfterHalt(t *testing.T) {
	p := asm.MustAssemble("halt")
	bp, err := BundleProgram(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	qmb := NewQMB(nil, nil, nil)
	vc := NewVLIWController(NewController(microcode.StandardControlStore(), qmb), bp)
	if err := vc.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := vc.StepBundle(); err == nil {
		t.Error("stepping after halt must fail")
	}
}

func TestVLIWRunawayGuard(t *testing.T) {
	p := asm.MustAssemble("Loop:\njmp Loop")
	bp, err := BundleProgram(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	qmb := NewQMB(nil, nil, nil)
	vc := NewVLIWController(NewController(microcode.StandardControlStore(), qmb), bp)
	if err := vc.Run(100); err == nil {
		t.Error("expected bundle-limit error")
	}
}
