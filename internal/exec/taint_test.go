package exec

import (
	"strings"
	"testing"

	"quma/internal/asm"
	"quma/internal/clock"
	"quma/internal/microcode"
)

// runTaint executes src on a controller whose MD events write back a
// fixed value (standing in for the machine's measurement chain) and
// returns the controller for replay-safety inspection. Programs run
// `loads` times through the same controller to exercise cross-run state.
func runTaint(t *testing.T, src string, mdValue int64, runs int) *Controller {
	t.Helper()
	qmb := NewQMB(nil, nil, nil)
	c := NewController(microcode.StandardControlStore(), qmb)
	qmb.MDQ.OnFire = func(e MDEvent, _ clock.Cycle) { c.WriteReg(e.Rd, mdValue) }
	prog := asm.MustAssemble(src)
	c.ResetReplayTracking()
	for i := 0; i < runs; i++ {
		if err := c.Load(prog); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestBranchOnMeasurementResultIsUnsafe(t *testing.T) {
	c := runTaint(t, `
mov r6, 0
MPG {q0}, 300
MD {q0}, r7
Wait 340
beq r7, r6, Done
Done:
halt
`, 1, 1)
	if r := c.ReplayUnsafeReason(); !strings.Contains(r, "measurement result") {
		t.Errorf("reason = %q, want measurement consumption", r)
	}
}

func TestArithmeticOnMeasurementResultIsUnsafe(t *testing.T) {
	// Even a non-branch consumption (accumulating the result) is unsafe:
	// replayed shots perform no classical execution, so the accumulated
	// register would silently go stale.
	c := runTaint(t, `
mov r9, 0
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
halt
`, 1, 1)
	if r := c.ReplayUnsafeReason(); !strings.Contains(r, "measurement result") {
		t.Errorf("reason = %q, want measurement consumption", r)
	}
}

func TestUnconsumedMeasurementIsSafe(t *testing.T) {
	c := runTaint(t, `
mov r15, 400
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`, 1, 3)
	if r := c.ReplayUnsafeReason(); r != "" {
		t.Errorf("feedback-free program flagged unsafe: %q", r)
	}
}

func TestOverwritingMeasurementClearsTaint(t *testing.T) {
	// The MD result retires at the halt drain of the run; the next run
	// overwrites the register before branching on it, so the branch
	// consumes a classical constant, not a measurement result (and not
	// cross-shot state: the mov re-establishes it this run). Note that
	// overwriting *before* the result retires does not help — the lazy
	// drain writes the measurement over the mov at the consuming read,
	// and the detector correctly flags that as feedback.
	c := runTaint(t, `
mov r6, 0
MPG {q0}, 300
MD {q0}, r7
Wait 340
mov r7, 0
beq r7, r6, Done
Done:
halt
`, 1, 1)
	if r := c.ReplayUnsafeReason(); !strings.Contains(r, "measurement result") {
		t.Errorf("lazy write-back consumption not flagged: %q", r)
	}

	qmb := NewQMB(nil, nil, nil)
	ctrl := NewController(microcode.StandardControlStore(), qmb)
	qmb.MDQ.OnFire = func(e MDEvent, _ clock.Cycle) { ctrl.WriteReg(e.Rd, 1) }
	ctrl.ResetReplayTracking()
	for _, src := range []string{
		"MPG {q0}, 300\nMD {q0}, r7\nhalt\n",
		"mov r6, 0\nmov r7, 0\nbeq r7, r6, Done\nDone:\nhalt\n",
	} {
		if err := ctrl.Load(asm.MustAssemble(src)); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	if r := ctrl.ReplayUnsafeReason(); r != "" {
		t.Errorf("overwritten register still tainted: %q", r)
	}
}

func TestCrossRunRegisterReadIsUnsafe(t *testing.T) {
	// r3 is written in run k and read (before being rewritten) in run
	// k+1: per-shot behaviour may differ, so it must be flagged — but
	// only from the second run on.
	src := `
mov r4, 2
blt r3, r4, Small
Small:
addi r3, r3, 1
halt
`
	if c := runTaint(t, src, 1, 1); c.ReplayUnsafeReason() != "" {
		t.Errorf("single run flagged: %q", c.ReplayUnsafeReason())
	}
	c := runTaint(t, src, 1, 2)
	if r := c.ReplayUnsafeReason(); !strings.Contains(r, "cross-shot") {
		t.Errorf("reason = %q, want cross-shot detection", r)
	}
}

func TestNeverWrittenRegisterReadIsSafe(t *testing.T) {
	// A register nothing ever wrote is constant zero in every run.
	c := runTaint(t, `
mov r4, 2
blt r3, r4, Done
Done:
halt
`, 1, 3)
	if r := c.ReplayUnsafeReason(); r != "" {
		t.Errorf("constant-zero read flagged: %q", r)
	}
}

func TestDataMemoryLoadIsUnsafe(t *testing.T) {
	c := runTaint(t, `
mov r2, 5
store r2, r0[3]
load r1, r0[3]
halt
`, 1, 1)
	if r := c.ReplayUnsafeReason(); !strings.Contains(r, "memory") {
		t.Errorf("reason = %q, want memory-load detection", r)
	}
}
