package exec

import (
	"math"
	"strings"
	"testing"
)

func TestPrototypeIssueModel(t *testing.T) {
	m := PrototypeIssueModel()
	// 2 instructions per gate / 4 cycles = 0.5 instr/cycle per qubit;
	// a 1-wide stream sustains 2 qubits of continuous gating.
	if got := m.DemandPerQubit(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("demand = %v, want 0.5", got)
	}
	if got := m.MaxQubits(); math.Abs(got-2) > 1e-12 {
		t.Errorf("max qubits = %v, want 2", got)
	}
	if u := m.Utilization(1); math.Abs(u-0.5) > 1e-12 {
		t.Errorf("utilization(1) = %v", u)
	}
	if u := m.Utilization(4); u <= 1 {
		t.Errorf("4 qubits must oversubscribe a scalar stream: %v", u)
	}
}

func TestIssueModelLevers(t *testing.T) {
	// The paper's two mitigations: VLIW width and horizontal microcode.
	base := PrototypeIssueModel()
	vliw := base
	vliw.IssueWidth = 4
	if vliw.MaxQubits() != 4*base.MaxQubits() {
		t.Error("issue width must scale capacity linearly")
	}
	horiz := base
	horiz.HorizontalQubits = 8
	if horiz.MaxQubits() != 8*base.MaxQubits() {
		t.Error("horizontal addressing must scale capacity linearly")
	}
	// Realistic experiments gate far less often than back to back:
	// AllXY's 200 µs init means the average demand is tiny.
	idle := base
	idle.OpIntervalCycles = 40000
	if idle.MaxQubits() < 10000 {
		t.Errorf("sparse gating capacity = %v", idle.MaxQubits())
	}
}

func TestIssueModelDegenerate(t *testing.T) {
	m := IssueModel{}
	if m.DemandPerQubit() != 0 || m.MaxQubits() != 0 || m.Utilization(3) != 0 {
		t.Error("degenerate model must return zeros")
	}
}

func TestIssueModelString(t *testing.T) {
	if !strings.Contains(PrototypeIssueModel().String(), "max 2.0 qubits") {
		t.Errorf("string = %s", PrototypeIssueModel())
	}
}
