package exec

import (
	"fmt"
	"testing"

	"quma/internal/asm"
	"quma/internal/clock"
	"quma/internal/isa"
	"quma/internal/microcode"
	"quma/internal/timing"
)

func newRig() (*Controller, *QMB, *[]string) {
	log := &[]string{}
	qmb := NewQMB(
		func(e PulseEvent, td clock.Cycle) {
			*log = append(*log, fmt.Sprintf("TD=%d pulse %s %s", td, e.UOp, e.Qubits))
		},
		func(e MPGEvent, td clock.Cycle) {
			*log = append(*log, fmt.Sprintf("TD=%d mpg %s %d", td, e.Qubits, e.Duration))
		},
		nil, // MD handler set below to allow write-back
	)
	c := NewController(microcode.StandardControlStore(), qmb)
	qmb.MDQ.OnFire = func(e MDEvent, td clock.Cycle) {
		*log = append(*log, fmt.Sprintf("TD=%d md %s -> %s", td, e.Qubits, e.Rd))
		c.WriteReg(e.Rd, 1) // pretend every measurement reads |1⟩
	}
	return c, qmb, log
}

func TestClassicalALU(t *testing.T) {
	c, _, _ := newRig()
	p := asm.MustAssemble(`
mov r1, 7
mov r2, 5
add r3, r1, r2
sub r4, r1, r2
and r5, r1, r2
or  r6, r1, r2
xor r7, r1, r2
addi r8, r1, -3
movr r9, r3
halt
`)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	want := map[isa.Reg]int64{3: 12, 4: 2, 5: 5, 6: 7, 7: 2, 8: 4, 9: 12}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestLoadStore(t *testing.T) {
	c, _, _ := newRig()
	p := asm.MustAssemble(`
mov r1, 100
mov r2, 42
store r2, r1[3]
load r3, r1[3]
halt
`)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.Mem[103] != 42 || c.Regs[3] != 42 {
		t.Errorf("mem[103]=%d r3=%d", c.Mem[103], c.Regs[3])
	}
}

func TestLoadStoreBounds(t *testing.T) {
	c, _, _ := newRig()
	p := asm.MustAssemble("mov r1, 100000\nload r2, r1[0]\nhalt")
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err == nil {
		t.Error("expected out-of-range load error")
	}
}

func TestLoopExecution(t *testing.T) {
	c, _, _ := newRig()
	p := asm.MustAssemble(`
mov r1, 0
mov r2, 10
mov r3, 0
Loop:
add r3, r3, r1
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.Regs[3] != 45 {
		t.Errorf("sum = %d, want 45", c.Regs[3])
	}
}

func TestRunawayGuard(t *testing.T) {
	c, _, _ := newRig()
	p := asm.MustAssemble("Loop:\njmp Loop")
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1000); err == nil {
		t.Error("expected step-limit error")
	}
}

func TestQMBTimingRuleSharedLabel(t *testing.T) {
	// MPG and MD with no Wait between them share one time point; Wait
	// opens a new one.
	qmb := NewQMB(nil, nil, nil)
	submit := func(src string) {
		for _, in := range asm.MustAssemble(src).Instrs {
			if in.Op == isa.OpHalt {
				continue
			}
			if err := qmb.Submit(in); err != nil {
				panic(err)
			}
		}
	}
	submit("Wait 10\nPulse {q0}, I\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt")
	if got := qmb.LabelsIssued(); got != 2 {
		t.Errorf("labels issued = %d, want 2", got)
	}
	tq := qmb.TC.TQ.Snapshot()
	if len(tq) != 2 || tq[0].Interval != 10 || tq[1].Interval != 4 {
		t.Errorf("timing queue = %+v", tq)
	}
	// MPG and MD both carry label 2.
	_, ml, _ := qmb.MPGQ.Peek()
	_, dl, _ := qmb.MDQ.Peek()
	if ml != 2 || dl != 2 {
		t.Errorf("MPG label %d, MD label %d, want both 2", ml, dl)
	}
}

func TestQMBHorizontalPulseDecomposition(t *testing.T) {
	qmb := NewQMB(nil, nil, nil)
	if err := qmb.Submit(isa.Instruction{Op: isa.OpPulse, QAddr: isa.MaskQ(0, 3), UOp: "X180"}); err != nil {
		t.Fatal(err)
	}
	snap := qmb.PulseQ.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("horizontal X180 must decompose into 2 micro-operations, got %d", len(snap))
	}
	if snap[0].Label != snap[1].Label {
		t.Error("decomposed micro-operations must share the time point")
	}
	if !snap[0].Event.Qubits.Contains(0) || !snap[1].Event.Qubits.Contains(3) {
		t.Errorf("wrong qubits: %v", snap)
	}
}

func TestQMBTwoQubitOpStaysWhole(t *testing.T) {
	qmb := NewQMB(nil, nil, nil)
	if err := qmb.Submit(isa.Instruction{Op: isa.OpPulse, QAddr: isa.MaskQ(0, 1), UOp: "CZ"}); err != nil {
		t.Fatal(err)
	}
	snap := qmb.PulseQ.Snapshot()
	if len(snap) != 1 || snap[0].Event.Qubits != isa.MaskQ(0, 1) {
		t.Errorf("CZ must stay one event: %v", snap)
	}
}

func TestQMBRejections(t *testing.T) {
	qmb := NewQMB(nil, nil, nil)
	if err := qmb.Submit(isa.Instruction{Op: isa.OpWait, Imm: -1}); err == nil {
		t.Error("negative wait must fail")
	}
	if err := qmb.Submit(isa.Instruction{Op: isa.OpMPG, QAddr: isa.MaskQ(0)}); err == nil {
		t.Error("zero-duration MPG must fail")
	}
	if err := qmb.Submit(isa.Instruction{Op: isa.OpAdd}); err == nil {
		t.Error("classical instruction must fail")
	}
}

// TestTables2to4QueueTrace reproduces the paper's Tables 2–4: the queue
// states of the AllXY experiment before TD starts, at TD=40000, and at
// TD=40008 (experiment E3).
func TestTables2to4QueueTrace(t *testing.T) {
	c, qmb, _ := newRig()
	p := asm.MustAssemble(`
mov r15, 40000
QNopReg r15
Pulse {q0}, I
Wait 4
Pulse {q0}, I
Wait 4
MPG {q0}, 300
MD {q0}, r7
QNopReg r15
Pulse {q0}, X180
Wait 4
Pulse {q0}, X180
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	// Execute everything except halt so the queues stay filled.
	for i := 0; i < len(p.Instrs)-1; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// ---- Table 2: before TD starts.
	tq := qmb.TC.TQ.Snapshot()
	wantTQ := []struct {
		iv clock.Cycle
		l  timing.Label
	}{{40000, 1}, {4, 2}, {4, 3}, {40000, 4}, {4, 5}, {4, 6}}
	if len(tq) != len(wantTQ) {
		t.Fatalf("timing queue has %d entries, want %d", len(tq), len(wantTQ))
	}
	for i, w := range wantTQ {
		if tq[i].Interval != w.iv || tq[i].Label != w.l {
			t.Errorf("timing[%d] = (%d,%d), want (%d,%d)", i, tq[i].Interval, tq[i].Label, w.iv, w.l)
		}
	}
	pq := qmb.PulseQ.Snapshot()
	wantPulse := []struct {
		uop string
		l   timing.Label
	}{{"I", 1}, {"I", 2}, {"X180", 4}, {"X180", 5}}
	if len(pq) != len(wantPulse) {
		t.Fatalf("pulse queue has %d entries, want %d", len(pq), len(wantPulse))
	}
	for i, w := range wantPulse {
		if pq[i].Event.UOp != w.uop || pq[i].Label != w.l {
			t.Errorf("pulse[%d] = (%s,%d), want (%s,%d)", i, pq[i].Event.UOp, pq[i].Label, w.uop, w.l)
		}
	}
	if mq := qmb.MPGQ.Snapshot(); len(mq) != 2 || mq[0].Label != 3 || mq[1].Label != 6 {
		t.Errorf("MPG queue = %v", mq)
	}
	if dq := qmb.MDQ.Snapshot(); len(dq) != 2 || dq[0].Label != 3 || dq[0].Event.Rd != 7 || dq[1].Label != 6 {
		t.Errorf("MD queue = %v", dq)
	}

	// ---- Table 3: TD = 40000 (first time point fired).
	qmb.TC.Start()
	if _, err := qmb.TC.Step(); err != nil {
		t.Fatal(err)
	}
	if qmb.TC.TD() != 40000 {
		t.Fatalf("TD = %d, want 40000", qmb.TC.TD())
	}
	if pq := qmb.PulseQ.Snapshot(); len(pq) != 3 || pq[0].Event.UOp != "I" || pq[0].Label != 2 {
		t.Errorf("Table 3 pulse queue = %v", pq)
	}
	if qmb.MPGQ.Len() != 2 || qmb.MDQ.Len() != 2 {
		t.Error("Table 3: MPG/MD queues must be untouched")
	}

	// ---- Table 4: TD = 40008 (labels 2 and 3 fired).
	for i := 0; i < 2; i++ {
		if _, err := qmb.TC.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if qmb.TC.TD() != 40008 {
		t.Fatalf("TD = %d, want 40008", qmb.TC.TD())
	}
	if pq := qmb.PulseQ.Snapshot(); len(pq) != 2 || pq[0].Event.UOp != "X180" || pq[0].Label != 4 {
		t.Errorf("Table 4 pulse queue = %v", pq)
	}
	if mq := qmb.MPGQ.Snapshot(); len(mq) != 1 || mq[0].Label != 6 {
		t.Errorf("Table 4 MPG queue = %v", mq)
	}
	if dq := qmb.MDQ.Snapshot(); len(dq) != 1 || dq[0].Label != 6 {
		t.Errorf("Table 4 MD queue = %v", dq)
	}
	if tq := qmb.TC.TQ.Snapshot(); len(tq) != 3 || tq[0].Interval != 40000 || tq[0].Label != 4 {
		t.Errorf("Table 4 timing queue = %v", tq)
	}
}

func TestFeedbackReadSynchronizes(t *testing.T) {
	// A branch on a measurement register must see the deterministic-
	// domain result: MD writes 1, so the conditional pulse is skipped.
	c, qmb, log := newRig()
	p := asm.MustAssemble(`
mov r15, 100
mov r6, 1
QNopReg r15
MPG {q0}, 300
MD {q0}, r7
Wait 300
beq r7, r6, Done     # r7 reads 1 -> skip the correction pulse
Pulse {q0}, X180
Wait 4
Done:
halt
`)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.Regs[7] != 1 {
		t.Fatalf("r7 = %d, want measurement result 1", c.Regs[7])
	}
	for _, l := range *log {
		if l == "TD=400 pulse X180 {q0}" {
			t.Error("correction pulse must have been skipped")
		}
	}
	_ = qmb
}

func TestApplyGateExpandsThroughMicrocode(t *testing.T) {
	c, qmb, _ := newRig()
	p := asm.MustAssemble(`
Wait 8
Apply X180, q0
Apply2 CNOT, q1, q0
halt
`)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(p.Instrs)-1; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := qmb.PulseQ.Snapshot()
	// X180 (1 pulse) + CNOT (Ym90, CZ, Y90 = 3 pulses).
	if len(snap) != 4 {
		t.Fatalf("pulse queue = %v", snap)
	}
	if snap[1].Event.UOp != "Ym90" || snap[2].Event.UOp != "CZ" || snap[3].Event.UOp != "Y90" {
		t.Errorf("CNOT expansion wrong: %v", snap)
	}
	if snap[2].Event.Qubits != isa.MaskQ(0, 1) {
		t.Errorf("CZ qubits = %s", snap[2].Event.Qubits)
	}
}

func TestQNopRegReadsRegisterAtIssue(t *testing.T) {
	// Updating r15 between issues changes the produced interval, the
	// paper's run-time-computed timing example.
	c, qmb, _ := newRig()
	p := asm.MustAssemble(`
mov r15, 100
QNopReg r15
Pulse {q0}, I
mov r15, 200
QNopReg r15
Pulse {q0}, I
halt
`)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(p.Instrs)-1; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	tq := qmb.TC.TQ.Snapshot()
	if len(tq) != 2 || tq[0].Interval != 100 || tq[1].Interval != 200 {
		t.Errorf("timing queue = %v", tq)
	}
}

func TestQNopRegNegativeErrors(t *testing.T) {
	c, _, _ := newRig()
	p := asm.MustAssemble("mov r15, -5\nQNopReg r15\nhalt")
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err == nil {
		t.Error("negative register wait must fail")
	}
}

func TestHaltDrainsQueues(t *testing.T) {
	c, qmb, log := newRig()
	p := asm.MustAssemble("Wait 20\nPulse {q0}, X180\nWait 4\nhalt")
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if qmb.PulseQ.Len() != 0 {
		t.Error("halt must drain pending events")
	}
	if len(*log) != 1 || (*log)[0] != "TD=20 pulse X180 {q0}" {
		t.Errorf("log = %v", *log)
	}
}

func TestStepAfterHaltErrors(t *testing.T) {
	c, _, _ := newRig()
	if err := c.Load(asm.MustAssemble("halt")); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err == nil {
		t.Error("stepping after halt must fail")
	}
}

func TestRunWithoutProgram(t *testing.T) {
	c, _, _ := newRig()
	if err := c.Step(); err == nil {
		t.Error("expected error with no program")
	}
}

func TestHostDataExchange(t *testing.T) {
	// The §6 heterogeneous extension: the host seeds shared memory, the
	// program computes on it and writes results back.
	c, _, _ := newRig()
	c.HostMem[0] = 21
	p := asm.MustAssemble(`
hld r1, 0
add r2, r1, r1
hst r2, 1
halt
`)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.HostMem[1] != 42 {
		t.Errorf("host mem[1] = %d, want 42", c.HostMem[1])
	}
}

func TestHostMemBounds(t *testing.T) {
	c, _, _ := newRig()
	p := asm.MustAssemble("hld r1, 9999\nhalt")
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err == nil {
		t.Error("out-of-range host load must fail")
	}
	c2, _, _ := newRig()
	p2 := asm.MustAssemble("hst r1, -1\nhalt")
	if err := c2.Load(p2); err != nil {
		t.Fatal(err)
	}
	if err := c2.Run(0); err == nil {
		t.Error("negative host store must fail")
	}
}

func TestHostStoreAfterMeasurementSynchronizes(t *testing.T) {
	// Writing a measurement result to the host must see the
	// deterministic-domain value.
	c, _, _ := newRig()
	p := asm.MustAssemble(`
mov r15, 100
QNopReg r15
MPG {q0}, 300
MD {q0}, r7
Wait 300
hst r7, 5
halt
`)
	if err := c.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.HostMem[5] != 1 {
		t.Errorf("host mem[5] = %d, want measurement result 1", c.HostMem[5])
	}
}
