package exec

import (
	"fmt"

	"quma/internal/isa"
)

// VLIW support — the paper's Section 6 scalability proposal and stated
// future work: "A Very-Long-Instruction-Word (VLIW) architecture can be
// adopted to provide much larger instruction issue rate" when more
// qubits demand a higher operation output rate than a single instruction
// stream can sustain.
//
// The implementation has two parts: a static bundler that packs an
// ordinary program into hazard-free bundles of up to Width slots, and a
// VLIWController that issues one bundle per issue step. Bundles are
// constructed so that executing their slots sequentially is
// indistinguishable from parallel issue:
//
//   - no slot reads a register written by an earlier slot (RAW);
//   - no two slots write the same register (WAW);
//   - no two slots access data memory when either access is a store;
//   - branches and halt terminate a bundle (and are its last slot);
//   - branch targets (labels) start a new bundle.
//
// Quantum instructions keep their program order inside a bundle, which
// the QMB requires; the win is that one issue step now pushes several
// micro-operations toward the queues.

// Bundle is one VLIW issue packet.
type Bundle []isa.Instruction

// BundledProgram is a program scheduled into bundles.
type BundledProgram struct {
	Width   int
	Bundles []Bundle
	// bundleOf maps original instruction index → bundle index, used to
	// re-target branches.
	bundleOf []int
	// NumInstrs is the original instruction count.
	NumInstrs int
}

// IssueRate returns the achieved instructions-per-bundle — the paper's
// figure of merit for VLIW (1.0 means no packing).
func (bp *BundledProgram) IssueRate() float64 {
	if len(bp.Bundles) == 0 {
		return 0
	}
	return float64(bp.NumInstrs) / float64(len(bp.Bundles))
}

// regUse summarizes the registers an instruction reads and writes, for
// hazard checks.
func regUse(in isa.Instruction) (reads, writes []isa.Reg, memRead, memWrite bool) {
	switch in.Op {
	case isa.OpMov:
		writes = []isa.Reg{in.Rd}
	case isa.OpMovReg, isa.OpAddi:
		reads = []isa.Reg{in.Rs}
		writes = []isa.Reg{in.Rd}
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor:
		reads = []isa.Reg{in.Rs, in.Rt}
		writes = []isa.Reg{in.Rd}
	case isa.OpLoad:
		reads = []isa.Reg{in.Rs}
		writes = []isa.Reg{in.Rd}
		memRead = true
	case isa.OpStore:
		reads = []isa.Reg{in.Rs, in.Rd}
		memWrite = true
	case isa.OpHostLoad:
		writes = []isa.Reg{in.Rd}
		memRead = true
	case isa.OpHostStore:
		reads = []isa.Reg{in.Rs}
		memWrite = true
	case isa.OpBeq, isa.OpBne, isa.OpBlt:
		reads = []isa.Reg{in.Rs, in.Rt}
	case isa.OpQNopReg, isa.OpWaitReg:
		reads = []isa.Reg{in.Rs}
	case isa.OpMD, isa.OpMeasure:
		// The asynchronous measurement write-back is a register write
		// for hazard purposes.
		writes = []isa.Reg{in.Rd}
	}
	return
}

// BundleProgram statically schedules p into bundles of at most width
// slots under the hazard rules above.
func BundleProgram(p *isa.Program, width int) (*BundledProgram, error) {
	if width < 1 || width > 16 {
		return nil, fmt.Errorf("exec: VLIW width %d out of range 1..16", width)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	isTarget := make([]bool, len(p.Instrs)+1)
	for _, idx := range p.Labels {
		isTarget[idx] = true
	}
	for _, in := range p.Instrs {
		if in.Op.IsBranch() {
			isTarget[in.Imm] = true
		}
	}

	bp := &BundledProgram{Width: width, NumInstrs: len(p.Instrs), bundleOf: make([]int, len(p.Instrs))}
	var cur Bundle
	written := map[isa.Reg]bool{}
	readSet := map[isa.Reg]bool{}
	memTouched := false

	flush := func() {
		if len(cur) > 0 {
			bp.Bundles = append(bp.Bundles, cur)
			cur = nil
			written = map[isa.Reg]bool{}
			readSet = map[isa.Reg]bool{}
			memTouched = false
		}
	}
	for i, in := range p.Instrs {
		if isTarget[i] {
			flush()
		}
		reads, writes, mr, mw := regUse(in)
		hazard := false
		for _, r := range reads {
			if written[r] {
				hazard = true // RAW
			}
		}
		for _, w := range writes {
			if written[w] || readSet[w] {
				hazard = true // WAW / WAR (WAR kept conservative: the
				// sequential model is equivalent either way, but
				// forbidding it keeps bundles debuggable)
			}
		}
		if (mw && memTouched) || (mr && memTouched) {
			hazard = true
		}
		if len(cur) >= width || hazard {
			flush()
		}
		bp.bundleOf[i] = len(bp.Bundles)
		cur = append(cur, in)
		for _, r := range reads {
			readSet[r] = true
		}
		for _, w := range writes {
			written[w] = true
		}
		memTouched = memTouched || mr || mw
		if in.Op.IsBranch() || in.Op == isa.OpHalt {
			flush()
		}
	}
	flush()

	// Re-target branches to bundle indices.
	for bi := range bp.Bundles {
		for si := range bp.Bundles[bi] {
			in := &bp.Bundles[bi][si]
			if in.Op.IsBranch() {
				in.Imm = int64(bp.bundleOf[in.Imm])
			}
		}
	}
	return bp, nil
}

// VLIWController issues one bundle per step on top of the scalar
// controller's datapath.
type VLIWController struct {
	*Controller
	BP *BundledProgram
	// BPC is the bundle program counter.
	BPC int
	// BundlesIssued counts issue steps.
	BundlesIssued uint64
	vhalted       bool
}

// NewVLIWController wraps a scalar controller (its program slot is
// unused; the bundled program drives execution).
func NewVLIWController(c *Controller, bp *BundledProgram) *VLIWController {
	return &VLIWController{Controller: c, BP: bp}
}

// Halted reports whether the bundled program has stopped.
func (v *VLIWController) Halted() bool { return v.vhalted }

// StepBundle issues the current bundle: every slot executes with the
// hazard guarantees making sequential slot execution equivalent to
// parallel issue. Branches (always the last slot) redirect the bundle
// PC.
func (v *VLIWController) StepBundle() error {
	if v.vhalted {
		return fmt.Errorf("exec: stepping a halted VLIW controller")
	}
	if v.BPC < 0 || v.BPC >= len(v.BP.Bundles) {
		return fmt.Errorf("exec: bundle PC %d outside program", v.BPC)
	}
	bundle := v.BP.Bundles[v.BPC]
	next := v.BPC + 1
	v.BundlesIssued++
	for _, in := range bundle {
		// Reuse the scalar datapath by running the instruction through a
		// one-instruction program window.
		taken, err := v.execSlot(in)
		if err != nil {
			return err
		}
		if taken >= 0 {
			next = taken
		}
	}
	v.BPC = next
	return nil
}

// execSlot executes one slot; it returns the branch target bundle index
// (or -1).
func (v *VLIWController) execSlot(in isa.Instruction) (int, error) {
	c := v.Controller
	switch in.Op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt:
		if err := c.syncIfRead(in.Rs); err != nil {
			return -1, err
		}
		if err := c.syncIfRead(in.Rt); err != nil {
			return -1, err
		}
		a, b := c.Regs[in.Rs], c.Regs[in.Rt]
		taken := false
		switch in.Op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlt:
			taken = a < b
		}
		c.Steps++
		if taken {
			return int(in.Imm), nil
		}
		return -1, nil
	case isa.OpJmp:
		c.Steps++
		return int(in.Imm), nil
	case isa.OpHalt:
		c.Steps++
		v.vhalted = true
		if err := c.drain(); err != nil {
			return -1, err
		}
		return -1, nil
	default:
		// Non-control-flow slots run through the scalar Step by loading
		// a transient single-instruction program.
		saved := c.prog
		savedPC, savedHalt := c.PC, c.halted
		c.prog = &isa.Program{Instrs: []isa.Instruction{in}}
		c.PC = 0
		c.halted = false
		err := c.Step()
		c.prog = saved
		c.PC, c.halted = savedPC, savedHalt
		return -1, err
	}
}

// Run issues bundles until halt or maxBundles.
func (v *VLIWController) Run(maxBundles uint64) error {
	if maxBundles == 0 {
		maxBundles = DefaultMaxSteps
	}
	start := v.BundlesIssued
	for !v.vhalted {
		if v.BundlesIssued-start >= maxBundles {
			return fmt.Errorf("exec: exceeded %d bundles without halting", maxBundles)
		}
		if err := v.StepBundle(); err != nil {
			return err
		}
	}
	return nil
}
