package exec

import "fmt"

// ICache models the quantum instruction cache that sits in front of the
// execution controller in the paper's implementation (Figures 6 and 7:
// the host CPU streams the combined classical + QuMIS binary into the
// "quantum instruction cache", from which the execution controller
// fetches). It is a direct-mapped cache with configurable line length;
// misses model the host-link fetch penalty.
//
// The experiment programs of Section 8 are tight loops (Algorithm 3), so
// after the first iteration every fetch hits — which is why the paper's
// single-stream design sustains the required issue rate for one qubit.
// The miss accounting quantifies what unrolled or very large programs
// would cost.
type ICache struct {
	// Lines is the number of cache lines (power of two not required).
	Lines int
	// LineWords is the number of 32-bit instruction words per line.
	LineWords int
	// MissPenaltyCycles is the modelled host-fetch latency per miss.
	MissPenaltyCycles uint64

	tags []int64

	fetches    uint64
	misses     uint64
	stalls     uint64
	capacityOK bool
}

// NewICache returns a cache of the given geometry. The paper's prototype
// buffers the whole (small) experiment program; 64 lines × 16 words
// covers Algorithm 3 comfortably.
func NewICache(lines, lineWords int, missPenalty uint64) (*ICache, error) {
	if lines < 1 || lineWords < 1 {
		return nil, fmt.Errorf("exec: invalid icache geometry %d×%d", lines, lineWords)
	}
	c := &ICache{Lines: lines, LineWords: lineWords, MissPenaltyCycles: missPenalty}
	c.tags = make([]int64, lines)
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c, nil
}

// Fetch records an instruction fetch at the given PC and returns whether
// it hit.
func (c *ICache) Fetch(pc int) bool {
	c.fetches++
	block := int64(pc / c.LineWords)
	idx := int(block) % c.Lines
	if c.tags[idx] == block {
		return true
	}
	c.tags[idx] = block
	c.misses++
	c.stalls += c.MissPenaltyCycles
	return false
}

// Reset clears contents and statistics.
func (c *ICache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
	}
	c.fetches, c.misses, c.stalls = 0, 0, 0
}

// Fetches returns the total fetch count.
func (c *ICache) Fetches() uint64 { return c.fetches }

// Misses returns the miss count.
func (c *ICache) Misses() uint64 { return c.misses }

// StallCycles returns the accumulated modelled fetch-stall cycles.
func (c *ICache) StallCycles() uint64 { return c.stalls }

// HitRate returns hits/fetches (1.0 for an empty history).
func (c *ICache) HitRate() float64 {
	if c.fetches == 0 {
		return 1
	}
	return 1 - float64(c.misses)/float64(c.fetches)
}

// CapacityWords returns the total instruction capacity.
func (c *ICache) CapacityWords() int { return c.Lines * c.LineWords }
