// Package qphys simulates the quantum processor that QuMA controls.
//
// The paper drives a transmon qubit on a real chip; here the chip is
// replaced by a density-matrix simulation of one or more qubits with
// amplitude-damping (T1) and pure-dephasing (T2) noise. Gates arrive as
// unitaries produced by the pulse layer, idling decoheres the state, and
// measurement projectively collapses it — so control-level mistakes
// (wrong pulse, wrong timing) manifest exactly as they would on hardware.
package qphys

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense square complex matrix, row-major. It is the common
// currency for unitaries and density matrices.
type Matrix struct {
	N    int // dimension
	Data []complex128
}

// NewMatrix returns a zero N×N matrix.
func NewMatrix(n int) Matrix {
	return Matrix{N: n, Data: make([]complex128, n*n)}
}

// Identity returns the N×N identity matrix.
func Identity(n int) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from row slices. It panics if the rows do not
// form a square matrix; matrices in this package are always constructed
// from literals in code, so a malformed shape is a programming error.
func FromRows(rows ...[]complex128) Matrix {
	n := len(rows)
	m := NewMatrix(n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("qphys: row %d has %d entries, want %d", i, len(r), n))
		}
		copy(m.Data[i*n:(i+1)*n], r)
	}
	return m
}

// At returns element (i, j).
func (m Matrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// Mul returns the matrix product m·b.
func (m Matrix) Mul(b Matrix) Matrix {
	if m.N != b.N {
		panic(fmt.Sprintf("qphys: dimension mismatch %d×%d", m.N, b.N))
	}
	n := m.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.Data[i*n+k]
			if a == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += a * b.Data[k*n+j]
			}
		}
	}
	return out
}

// mulInto sets dst = a·b without allocating. dst must be pre-sized to the
// operand dimension and must not alias a or b.
func mulInto(dst, a, b Matrix) {
	n := a.N
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		di := i * n
		for k := 0; k < n; k++ {
			av := a.Data[di+k]
			if av == 0 {
				continue
			}
			bk := k * n
			for j := 0; j < n; j++ {
				dst.Data[di+j] += av * b.Data[bk+j]
			}
		}
	}
}

// mulDaggerInto sets dst = a·u† (or adds it when accumulate is true)
// without forming u† or allocating. dst must not alias a or u.
func mulDaggerInto(dst, a, u Matrix, accumulate bool) {
	n := a.N
	if !accumulate {
		for i := range dst.Data {
			dst.Data[i] = 0
		}
	}
	for i := 0; i < n; i++ {
		di := i * n
		for k := 0; k < n; k++ {
			av := a.Data[di+k]
			if av == 0 {
				continue
			}
			// (u†)[k][j] = conj(u[j][k])
			for j := 0; j < n; j++ {
				dst.Data[di+j] += av * cmplx.Conj(u.Data[j*n+k])
			}
		}
	}
}

// Add returns m + b.
func (m Matrix) Add(b Matrix) Matrix {
	if m.N != b.N {
		panic(fmt.Sprintf("qphys: dimension mismatch %d×%d", m.N, b.N))
	}
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns m - b.
func (m Matrix) Sub(b Matrix) Matrix {
	if m.N != b.N {
		panic(fmt.Sprintf("qphys: dimension mismatch %d×%d", m.N, b.N))
	}
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m Matrix) Scale(s complex128) Matrix {
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Dagger returns the conjugate transpose of m.
func (m Matrix) Dagger() Matrix {
	n := m.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*n+i] = cmplx.Conj(m.Data[i*n+j])
		}
	}
	return out
}

// Kron returns the Kronecker (tensor) product m ⊗ b.
func (m Matrix) Kron(b Matrix) Matrix {
	n := m.N * b.N
	out := NewMatrix(n)
	for i1 := 0; i1 < m.N; i1++ {
		for j1 := 0; j1 < m.N; j1++ {
			a := m.Data[i1*m.N+j1]
			if a == 0 {
				continue
			}
			for i2 := 0; i2 < b.N; i2++ {
				for j2 := 0; j2 < b.N; j2++ {
					out.Data[(i1*b.N+i2)*n+(j1*b.N+j2)] = a * b.Data[i2*b.N+j2]
				}
			}
		}
	}
	return out
}

// Trace returns the trace of m.
func (m Matrix) Trace() complex128 {
	var t complex128
	for i := 0; i < m.N; i++ {
		t += m.Data[i*m.N+i]
	}
	return t
}

// MaxAbsDiff returns the largest element-wise |m_ij - b_ij|. It is the
// distance measure used throughout the tests.
func (m Matrix) MaxAbsDiff(b Matrix) float64 {
	if m.N != b.N {
		return math.Inf(1)
	}
	var d float64
	for i := range m.Data {
		if v := cmplx.Abs(m.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// IsUnitary reports whether m†·m is the identity to within tol.
func (m Matrix) IsUnitary(tol float64) bool {
	return m.Dagger().Mul(m).MaxAbsDiff(Identity(m.N)) <= tol
}

// EqualUpToGlobalPhase reports whether m = e^{iφ}·b for some phase φ,
// within tol. Gates that differ only by global phase are physically
// identical.
func (m Matrix) EqualUpToGlobalPhase(b Matrix, tol float64) bool {
	if m.N != b.N {
		return false
	}
	// Find the largest element of b to anchor the phase.
	best, bi := 0.0, -1
	for i := range b.Data {
		if v := cmplx.Abs(b.Data[i]); v > best {
			best, bi = v, i
		}
	}
	if bi < 0 || best < tol {
		return m.MaxAbsDiff(b) <= tol
	}
	if cmplx.Abs(m.Data[bi]) < tol {
		return false
	}
	phase := m.Data[bi] / b.Data[bi]
	phase /= complex(cmplx.Abs(phase), 0)
	return m.MaxAbsDiff(b.Scale(phase)) <= tol
}

// String renders the matrix with 4-digit precision, one row per line.
func (m Matrix) String() string {
	s := ""
	for i := 0; i < m.N; i++ {
		s += "["
		for j := 0; j < m.N; j++ {
			v := m.At(i, j)
			s += fmt.Sprintf(" %7.4f%+7.4fi", real(v), imag(v))
		}
		s += " ]\n"
	}
	return s
}
