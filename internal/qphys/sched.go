package qphys

import "math"

// sched.go — single-pass execution of a compiled shot schedule on the
// trajectory backend. A schedule compiler (internal/replay) lowers a
// recorded shot into []SchedOp once; RunSchedule then executes the whole
// shot with the hot channel path inlined, the state slice and PRNG
// hoisted out of the step loop, and population carries threaded between
// steps — every arithmetic decision bit-identical to executing the same
// operations through Apply1/ApplyKraus1/Measure one call at a time
// (modulo the sign of zeros, which nothing can observe; see
// compiled.go).

// SchedOp kinds. The compiler picks the most specialized kind that
// applies; RunSchedule trusts the classification.
const (
	// SchedApply1 applies a dense single-qubit unitary (U) to Q.
	SchedApply1 uint8 = iota
	// SchedApply1RD applies a single-qubit unitary with real diagonal
	// entries (RealDiag2) — every pulse rotation.
	SchedApply1RD
	// SchedChannel applies a multi-operator axis-aligned channel (Ch).
	SchedChannel
	// SchedCZ applies diag(1,1,1,−1) to (Q, Qb) via NegateBoth.
	SchedCZ
	// SchedApply2 applies a dense two-qubit unitary (U) to (Q, Qb).
	SchedApply2
	// SchedMeasure runs the projective measurement of Q; the measure
	// callback completes the machine's measurement chain.
	SchedMeasure
)

// SchedOp is one specialized, closure-free step of a compiled schedule.
type SchedOp struct {
	Kind uint8
	// PhaseSafe marks an Apply2 step that preserves every |a|² bit for
	// bit (diagonal, entries in {1,−1,i,−i}); a population carry passes
	// through it. SchedCZ steps are phase-safe by construction.
	PhaseSafe bool
	// CarryFor names the qubit whose populations this step should carry
	// to the next population consumer (-1: none). The compiler only sets
	// it in configurations the kernels support: channels carry for any
	// qubit, unitary and measure steps for their own qubit only.
	CarryFor int16
	Q, Qb    int16
	U        Matrix
	Ch       *ChannelTable
}

// RunSchedule executes one shot of a compiled schedule. measure is
// invoked for every SchedMeasure step with the projected outcome; it
// must complete the rest of the machine's measurement chain
// (discrimination sampling, recording, result delivery) and may consume
// the same PRNG. The hot channel path — axis pricing resolving to the
// first operator, diagonal with real coefficients — is inlined here;
// everything rarer re-enters the shared applyChannelSampled tail with
// the same populations and variate, so the selection is reproduced bit
// for bit.
//
// in/inQ seed the population carry and the returned values hand the
// trailing carry back: steady-state shots run back to back on one
// machine, so a carry accumulated by the last step of shot k prices the
// first consumer of shot k+1 (same state, same accumulation order — the
// schedule is circular). Pass an invalid carry for the first shot.
func (t *Trajectory) RunSchedule(ops []SchedOp, in PopCarry, inQ int, measure func(q, outcome int)) (PopCarry, int) {
	psi := t.Psi
	rng := t.rng
	carry := in
	carryQ := inQ
	for ii := range ops {
		o := &ops[ii]
		q := int(o.Q)
		switch o.Kind {
		case SchedChannel:
			ct := o.Ch
			nextQ := int(o.CarryFor)
			mask := 1 << (t.nq - 1 - q)
			r := rng.Float64()
			var p0, p1 float64
			if carry.Valid && carryQ == q {
				p0, p1 = carry.P0, carry.P1
			} else {
				for base := 0; base < len(psi); base += mask << 1 {
					for i := base; i < base+mask; i++ {
						a0, a1 := psi[i], psi[i+mask]
						p0 += real(a0)*real(a0) + imag(a0)*imag(a0)
						p1 += real(a1)*real(a1) + imag(a1)*imag(a1)
					}
				}
			}
			carryQ = nextQ
			// Inlined hot path: the first operator absorbs the draw and is
			// diagonal with real coefficients. The selection comparison is
			// exactly the general pricing loop's first iteration
			// (cum = 0.0 + p), so the branch decision is bit-identical.
			fp := ct.fw0*p0 + ct.fw1*p1
			if !(ct.fkind == chanDiag && ct.freal) || r >= fp {
				carry = t.applyChannelSampled(ct, q, mask, p0, p1, r, nextQ)
				continue
			}
			rinv := 1 / math.Sqrt(fp)
			r0, r1 := ct.fr0*rinv, ct.fr1*rinv
			switch {
			case nextQ == q:
				// Fused apply + same-qubit population pass (ascending per
				// accumulator, as a standalone pass would add them).
				var np0, np1 float64
				for base := 0; base < len(psi); base += mask << 1 {
					for i := base; i < base+mask; i++ {
						a := psi[i]
						re, im := real(a)*r0, imag(a)*r0
						psi[i] = complex(re, im)
						np0 += re*re + im*im
						b := psi[i+mask]
						re, im = real(b)*r1, imag(b)*r1
						psi[i+mask] = complex(re, im)
						np1 += re*re + im*im
					}
				}
				carry = PopCarry{P0: np0, P1: np1, Valid: true}
			case nextQ >= 0:
				// Fused apply + other-qubit population pass, nested by
				// whichever mask is larger so coefficient and accumulator
				// each change only at their own block boundaries (see
				// ApplyChannelCarry for the ordering argument).
				nmask := 1 << (t.nq - 1 - nextQ)
				var np0, np1 float64
				if nmask > mask {
					for nb := 0; nb < len(psi); nb += nmask {
						s := np0
						if nb&nmask != 0 {
							s = np1
						}
						for mb := nb; mb < nb+nmask; mb += mask << 1 {
							for i := mb; i < mb+mask; i++ {
								a := psi[i]
								re, im := real(a)*r0, imag(a)*r0
								psi[i] = complex(re, im)
								s += re*re + im*im
							}
							for i := mb + mask; i < mb+mask+mask; i++ {
								a := psi[i]
								re, im := real(a)*r1, imag(a)*r1
								psi[i] = complex(re, im)
								s += re*re + im*im
							}
						}
						if nb&nmask != 0 {
							np1 = s
						} else {
							np0 = s
						}
					}
				} else if nmask == 1 {
					for mb := 0; mb < len(psi); mb += mask {
						rr := r0
						if mb&mask != 0 {
							rr = r1
						}
						for i := mb; i+1 < mb+mask; i += 2 {
							a := psi[i]
							re, im := real(a)*rr, imag(a)*rr
							psi[i] = complex(re, im)
							np0 += re*re + im*im
							b := psi[i+1]
							re, im = real(b)*rr, imag(b)*rr
							psi[i+1] = complex(re, im)
							np1 += re*re + im*im
						}
					}
				} else {
					for mb := 0; mb < len(psi); mb += mask {
						rr := r0
						if mb&mask != 0 {
							rr = r1
						}
						for nb := mb; nb < mb+mask; nb += nmask << 1 {
							for i := nb; i < nb+nmask; i++ {
								a := psi[i]
								re, im := real(a)*rr, imag(a)*rr
								psi[i] = complex(re, im)
								np0 += re*re + im*im
							}
							for i := nb + nmask; i < nb+nmask+nmask; i++ {
								a := psi[i]
								re, im := real(a)*rr, imag(a)*rr
								psi[i] = complex(re, im)
								np1 += re*re + im*im
							}
						}
					}
				}
				carry = PopCarry{P0: np0, P1: np1, Valid: true}
			default:
				for base := 0; base < len(psi); base += mask << 1 {
					for i := base; i < base+mask; i++ {
						a := psi[i]
						psi[i] = complex(real(a)*r0, imag(a)*r0)
						b := psi[i+mask]
						psi[i+mask] = complex(real(b)*r1, imag(b)*r1)
					}
				}
				carry = PopCarry{}
			}
		case SchedApply1RD:
			if int(o.CarryFor) == q {
				carry = t.Apply1RDCarry(o.U, q)
				carryQ = q
			} else {
				t.Apply1RD(o.U, q)
				carry.Valid = false
			}
		case SchedApply1:
			if int(o.CarryFor) == q {
				carry = t.Apply1Carry(o.U, q)
				carryQ = q
			} else {
				t.Apply1(o.U, q)
				carry.Valid = false
			}
		case SchedCZ:
			t.NegateBoth(q, int(o.Qb))
		case SchedApply2:
			t.Apply2(o.U, q, int(o.Qb))
			if !o.PhaseSafe {
				carry.Valid = false
			}
		case SchedMeasure:
			in := carry
			if carryQ != q {
				in.Valid = false
			}
			p1 := in.P1
			if !in.Valid {
				p1 = t.ProbExcited(q)
			}
			var outcome int
			outcome, carry = t.MeasureCarry(q, p1, rng, int(o.CarryFor) == q)
			carryQ = q
			measure(q, outcome)
		}
	}
	return carry, carryQ
}
