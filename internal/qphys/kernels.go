package qphys

import (
	"fmt"
	"math/cmplx"
)

// In-place sparse gate kernels. A gate on k qubits of an n-qubit register
// only couples basis-index pairs that differ on those k bits, so ρ can be
// updated block-by-block: every 2^k×2^k sub-block of ρ addressed by the
// affected bits transforms independently as B ← U·B·U†. That replaces the
// Embed-then-dense-multiply path (three O(8^n) matmuls plus the O(4^n)
// embedding) with a single O(4^n) pass for single-qubit gates, with zero
// heap allocation in steady state.

// maxKraus1 is the largest operator count the allocation-free single-qubit
// channel kernel handles on the stack; DecoherenceChannel produces at most
// 8 operators. Larger sets fall back to the dense lifted path.
const maxKraus1 = 16

// Apply1 applies a single-qubit unitary to qubit q in place: for every
// index pair (i0, i1) differing only in q's bit, the 2×2 block of ρ is
// conjugated by u. O(4^n), no allocation.
func (d *Density) Apply1(u Matrix, q int) {
	if u.N != 2 {
		panic("qphys: Apply1 requires a single-qubit gate")
	}
	if q < 0 || q >= d.nq {
		panic(fmt.Sprintf("qphys: Apply1 qubit %d out of range 0..%d", q, d.nq-1))
	}
	dim := d.Rho.N
	mask := 1 << (d.nq - 1 - q)
	u00, u01, u10, u11 := u.Data[0], u.Data[1], u.Data[2], u.Data[3]
	c00, c01 := cmplx.Conj(u00), cmplx.Conj(u01)
	c10, c11 := cmplx.Conj(u10), cmplx.Conj(u11)
	rho := d.Rho.Data
	for i0 := 0; i0 < dim; i0++ {
		if i0&mask != 0 {
			continue
		}
		r0 := i0 * dim
		r1 := (i0 | mask) * dim
		for j0 := 0; j0 < dim; j0++ {
			if j0&mask != 0 {
				continue
			}
			j1 := j0 | mask
			b00, b01 := rho[r0+j0], rho[r0+j1]
			b10, b11 := rho[r1+j0], rho[r1+j1]
			// a = u·B, then B' = a·u†.
			a00 := u00*b00 + u01*b10
			a01 := u00*b01 + u01*b11
			a10 := u10*b00 + u11*b10
			a11 := u10*b01 + u11*b11
			rho[r0+j0] = a00*c00 + a01*c01
			rho[r0+j1] = a00*c10 + a01*c11
			rho[r1+j0] = a10*c00 + a11*c01
			rho[r1+j1] = a10*c10 + a11*c11
		}
	}
}

// Apply2 applies a two-qubit unitary to qubits (qa, qb) in place: every
// 4×4 block of ρ addressed by the two affected bits is conjugated by u.
// The basis order of u matches Embed2: index = bit(qa)·2 + bit(qb), so qa
// is the control of CNOT. O(4^n·16), no allocation.
func (d *Density) Apply2(u Matrix, qa, qb int) {
	if u.N != 4 {
		panic("qphys: Apply2 requires a two-qubit gate")
	}
	if qa == qb {
		panic("qphys: Apply2 requires distinct qubits")
	}
	n := d.nq
	if qa < 0 || qa >= n || qb < 0 || qb >= n {
		panic(fmt.Sprintf("qphys: Apply2 qubits (%d,%d) out of range 0..%d", qa, qb, n-1))
	}
	dim := d.Rho.N
	ma := 1 << (n - 1 - qa)
	mb := 1 << (n - 1 - qb)
	both := ma | mb
	off := [4]int{0, mb, ma, ma | mb}
	var uc [4][4]complex128
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			uc[i][j] = cmplx.Conj(u.Data[i*4+j])
		}
	}
	rho := d.Rho.Data
	for ibase := 0; ibase < dim; ibase++ {
		if ibase&both != 0 {
			continue
		}
		var rows [4]int
		for s := 0; s < 4; s++ {
			rows[s] = (ibase | off[s]) * dim
		}
		for jbase := 0; jbase < dim; jbase++ {
			if jbase&both != 0 {
				continue
			}
			var cols [4]int
			for t := 0; t < 4; t++ {
				cols[t] = jbase | off[t]
			}
			var b, a [4][4]complex128
			for s := 0; s < 4; s++ {
				for t := 0; t < 4; t++ {
					b[s][t] = rho[rows[s]+cols[t]]
				}
			}
			for s := 0; s < 4; s++ {
				us := u.Data[s*4:]
				for t := 0; t < 4; t++ {
					a[s][t] = us[0]*b[0][t] + us[1]*b[1][t] + us[2]*b[2][t] + us[3]*b[3][t]
				}
			}
			for s := 0; s < 4; s++ {
				for t := 0; t < 4; t++ {
					ct := &uc[t]
					rho[rows[s]+cols[t]] = a[s][0]*ct[0] + a[s][1]*ct[1] + a[s][2]*ct[2] + a[s][3]*ct[3]
				}
			}
		}
	}
}

// ApplyKraus1 applies a single-qubit channel ρ ← Σ_k K_k ρ K_k† to qubit
// q in place. Like Apply1 the update is local to 2×2 blocks, and the sum
// over operators is accumulated per block, so no scratch matrix is
// needed. O(4^n·len(ops)), no allocation for len(ops) ≤ 16.
func (d *Density) ApplyKraus1(ops []Matrix, q int) {
	if q < 0 || q >= d.nq {
		panic(fmt.Sprintf("qphys: ApplyKraus1 qubit %d out of range 0..%d", q, d.nq-1))
	}
	for _, k := range ops {
		if k.N != 2 {
			panic("qphys: ApplyKraus1 requires single-qubit operators")
		}
	}
	if len(ops) > maxKraus1 {
		lifted := make([]Matrix, len(ops))
		for i, k := range ops {
			lifted[i] = Embed(k, q, d.nq)
		}
		d.ApplyKraus(lifted)
		return
	}
	var kd, kc [maxKraus1][4]complex128
	for i, k := range ops {
		for e := 0; e < 4; e++ {
			kd[i][e] = k.Data[e]
			kc[i][e] = cmplx.Conj(k.Data[e])
		}
	}
	d.applyKraus1Tables(kd[:len(ops)], kc[:len(ops)], q)
}

// applyKraus1Tables is the 2×2 block kernel shared by ApplyKraus1 (which
// derives the entry/conjugate tables per call) and ApplyChannel (which
// reads them from a per-schedule ChannelTable): ρ ← Σ_k K_k ρ K_k† with
// the sum accumulated per block. Keeping one implementation is what
// keeps the two paths bit-identical by construction.
func (d *Density) applyKraus1Tables(kd, kc [][4]complex128, q int) {
	dim := d.Rho.N
	mask := 1 << (d.nq - 1 - q)
	rho := d.Rho.Data
	for i0 := 0; i0 < dim; i0++ {
		if i0&mask != 0 {
			continue
		}
		r0 := i0 * dim
		r1 := (i0 | mask) * dim
		for j0 := 0; j0 < dim; j0++ {
			if j0&mask != 0 {
				continue
			}
			j1 := j0 | mask
			b00, b01 := rho[r0+j0], rho[r0+j1]
			b10, b11 := rho[r1+j0], rho[r1+j1]
			var n00, n01, n10, n11 complex128
			for i := range kd {
				k00, k01, k10, k11 := kd[i][0], kd[i][1], kd[i][2], kd[i][3]
				c00, c01, c10, c11 := kc[i][0], kc[i][1], kc[i][2], kc[i][3]
				a00 := k00*b00 + k01*b10
				a01 := k00*b01 + k01*b11
				a10 := k10*b00 + k11*b10
				a11 := k10*b01 + k11*b11
				n00 += a00*c00 + a01*c01
				n01 += a00*c10 + a01*c11
				n10 += a10*c00 + a11*c01
				n11 += a10*c10 + a11*c11
			}
			rho[r0+j0] = n00
			rho[r0+j1] = n01
			rho[r1+j0] = n10
			rho[r1+j1] = n11
		}
	}
}
