package qphys

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDensityGroundState(t *testing.T) {
	d := NewDensity(1)
	if math.Abs(d.Trace()-1) > tol {
		t.Error("trace != 1")
	}
	if d.ProbExcited(0) != 0 {
		t.Error("ground state must have P(1)=0")
	}
	if math.Abs(d.Purity()-1) > tol {
		t.Error("ground state must be pure")
	}
}

func TestApplyXFlips(t *testing.T) {
	d := NewDensity(1)
	d.Apply1(PauliX(), 0)
	if math.Abs(d.ProbExcited(0)-1) > tol {
		t.Errorf("P(1) after X = %v, want 1", d.ProbExcited(0))
	}
	d.Apply1(PauliX(), 0)
	if d.ProbExcited(0) > tol {
		t.Error("X·X must return to ground")
	}
}

func TestHalfPiRotation(t *testing.T) {
	d := NewDensity(1)
	d.Apply1(RX(math.Pi/2), 0)
	if math.Abs(d.ProbExcited(0)-0.5) > tol {
		t.Errorf("P(1) after RX(π/2) = %v, want 0.5", d.ProbExcited(0))
	}
	x, y, _ := d.BlochVector(0)
	if math.Abs(x) > tol || math.Abs(y+1) > tol {
		t.Errorf("Bloch after RX(π/2) = (%v,%v), want (0,-1)", x, y)
	}
}

func TestTwoQubitCZEntangles(t *testing.T) {
	d := NewDensity(2)
	d.Apply1(Hadamard(), 0)
	d.Apply1(Hadamard(), 1)
	d.Apply2(CZ(), 0, 1)
	d.Apply1(Hadamard(), 1)
	// H⊗H, CZ, I⊗H is a CNOT: |00⟩ -> (|00⟩+|11⟩)/√2 from |+0⟩... check
	// we produced a Bell state: both marginals maximally mixed.
	r0 := d.ReducedQubit(0)
	if math.Abs(real(r0.At(0, 0))-0.5) > tol {
		t.Errorf("qubit 0 marginal not maximally mixed: %v", r0.At(0, 0))
	}
	if d.Purity() < 1-tol {
		t.Error("global state should remain pure")
	}
	pq0 := d.ReducedQubit(0)
	if pur := real(pq0.Mul(pq0).Trace()); math.Abs(pur-0.5) > tol {
		t.Errorf("reduced purity = %v, want 0.5 (maximally entangled)", pur)
	}
}

func TestMeasureCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := NewDensity(1)
	d.Apply1(RY(math.Pi/2), 0)
	m := d.Measure(0, rng)
	// After measurement, probability must match the outcome exactly.
	if math.Abs(d.ProbExcited(0)-float64(m)) > tol {
		t.Errorf("state not collapsed: P(1)=%v after outcome %d", d.ProbExcited(0), m)
	}
	// Re-measuring must be deterministic.
	if m2 := d.Measure(0, rng); m2 != m {
		t.Error("repeated measurement changed outcome")
	}
}

func TestMeasureStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		d := NewDensity(1)
		d.Apply1(RY(math.Pi/2), 0)
		ones += d.Measure(0, rng)
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("measured |1⟩ fraction %v, want ~0.5", frac)
	}
}

func TestMeasureEntangledPair(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		d := NewDensity(2)
		d.Apply1(Hadamard(), 0)
		d.Apply2(CNOT(), 0, 1)
		a := d.Measure(0, rng)
		b := d.Measure(1, rng)
		if a != b {
			t.Fatalf("Bell pair outcomes disagree: %d vs %d", a, b)
		}
	}
}

func TestProjectZeroProbabilityOutcome(t *testing.T) {
	d := NewDensity(1)
	// Ground state: projecting onto |1⟩ has zero probability.
	d.Project(0, 1)
	if math.Abs(d.ProbExcited(0)-1) > tol {
		t.Error("projection onto zero-probability outcome must yield that basis state")
	}
	if math.Abs(d.Trace()-1) > tol {
		t.Error("trace must stay 1")
	}
}

func TestResetClearsState(t *testing.T) {
	d := NewDensity(2)
	d.Apply1(PauliX(), 0)
	d.Apply1(Hadamard(), 1)
	d.Reset()
	if d.ProbExcited(0) > tol || d.ProbExcited(1) > tol {
		t.Error("reset must return to |00⟩")
	}
}

func TestReducedQubitOfProduct(t *testing.T) {
	d := NewDensity(2)
	d.Apply1(PauliX(), 1)
	r0 := d.ReducedQubit(0)
	r1 := d.ReducedQubit(1)
	if math.Abs(real(r0.At(0, 0))-1) > tol {
		t.Error("qubit 0 should be |0⟩")
	}
	if math.Abs(real(r1.At(1, 1))-1) > tol {
		t.Error("qubit 1 should be |1⟩")
	}
}

// Property: unitary evolution preserves trace and purity.
func TestPropertyUnitaryPreservesTracePurity(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDensity(2)
		// Random initial pure state.
		d.Apply(randomUnitary(r, 2))
		p0 := d.Purity()
		d.Apply(randomUnitary(r, 2))
		return math.Abs(d.Trace()-1) < 1e-9 && math.Abs(d.Purity()-p0) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Kraus channels preserve trace.
func TestPropertyChannelsTracePreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(g, l, p float64) bool {
		g = clampProb(math.Abs(g))
		l = clampProb(math.Abs(l))
		p = clampProb(math.Abs(p))
		d := NewDensity(1)
		d.Apply1(randomUnitary(rand.New(rand.NewSource(int64(g*1e6))), 1), 0)
		d.ApplyKraus1(AmplitudeDamping(g), 0)
		d.ApplyKraus1(PhaseDamping(l), 0)
		d.ApplyKraus1(Depolarizing(p), 0)
		return math.Abs(d.Trace()-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: purity never increases under noise channels.
func TestPropertyNoiseNeverIncreasesPurityFromMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 50; i++ {
		d := NewDensity(1)
		d.Apply1(RY(rng.Float64()*math.Pi), 0)
		d.ApplyKraus1(Depolarizing(0.3), 0)
		p0 := d.Purity()
		d.ApplyKraus1(Depolarizing(rng.Float64()*0.5), 0)
		if d.Purity() > p0+1e-9 {
			t.Fatalf("depolarizing increased purity %v -> %v", p0, d.Purity())
		}
	}
}
