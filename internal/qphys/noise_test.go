package qphys

import (
	"math"
	"testing"
)

func TestAmplitudeDampingDecaysExcited(t *testing.T) {
	d := NewDensity(1)
	d.Apply1(PauliX(), 0)
	d.ApplyKraus1(AmplitudeDamping(0.25), 0)
	if got := d.ProbExcited(0); math.Abs(got-0.75) > tol {
		t.Errorf("P(1) after γ=0.25 damping = %v, want 0.75", got)
	}
}

func TestAmplitudeDampingFixesGround(t *testing.T) {
	d := NewDensity(1)
	d.ApplyKraus1(AmplitudeDamping(0.9), 0)
	if d.ProbExcited(0) > tol {
		t.Error("ground state must be a fixed point of amplitude damping")
	}
}

func TestPhaseDampingKillsCoherence(t *testing.T) {
	d := NewDensity(1)
	d.Apply1(RY(math.Pi/2), 0)
	x0, _, _ := d.BlochVector(0)
	d.ApplyKraus1(PhaseDamping(1.0), 0)
	x1, y1, z1 := d.BlochVector(0)
	if math.Abs(x0-1) > tol {
		t.Fatalf("setup: Bloch x after RY(π/2) = %v, want 1", x0)
	}
	if math.Abs(x1) > tol || math.Abs(y1) > tol {
		t.Errorf("full dephasing must zero equatorial components, got (%v,%v)", x1, y1)
	}
	if math.Abs(z1) > tol {
		t.Errorf("dephasing must not change z, got %v", z1)
	}
}

func TestDepolarizingFullyMixes(t *testing.T) {
	d := NewDensity(1)
	d.Apply1(RY(0.7), 0)
	// p=3/4 is the fully-depolarizing point of this parameterization.
	d.ApplyKraus1(Depolarizing(0.75), 0)
	if math.Abs(d.Purity()-0.5) > 1e-9 {
		t.Errorf("purity = %v, want 0.5 (maximally mixed)", d.Purity())
	}
}

func TestDecoherenceChannelT1Exponential(t *testing.T) {
	p := QubitParams{T1: 10e-6, T2: 20e-6} // T2 = 2·T1: no pure dephasing
	d := NewDensity(1)
	d.Apply1(PauliX(), 0)
	dt := 5e-6
	d.ApplyKraus1(DecoherenceChannel(dt, p), 0)
	want := math.Exp(-dt / p.T1)
	if got := d.ProbExcited(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("P(1) after T1 decay = %v, want %v", got, want)
	}
}

func TestDecoherenceChannelT2Envelope(t *testing.T) {
	// Ramsey-style: superposition decays with T2.
	p := QubitParams{T1: 100e-6, T2: 10e-6}
	d := NewDensity(1)
	d.Apply1(RY(math.Pi/2), 0)
	dt := 7e-6
	d.ApplyKraus1(DecoherenceChannel(dt, p), 0)
	x, _, _ := d.BlochVector(0)
	want := math.Exp(-dt / p.T2)
	if math.Abs(x-want) > 1e-6 {
		t.Errorf("coherence after %vs = %v, want e^{-t/T2} = %v", dt, x, want)
	}
}

func TestDecoherenceComposition(t *testing.T) {
	// Applying the channel for t then t must equal applying it for 2t.
	p := DefaultQubitParams()
	a := NewDensity(1)
	a.Apply1(RY(1.1), 0)
	b := NewDensity(1)
	b.Apply1(RY(1.1), 0)
	a.ApplyKraus1(DecoherenceChannel(3e-6, p), 0)
	a.ApplyKraus1(DecoherenceChannel(3e-6, p), 0)
	b.ApplyKraus1(DecoherenceChannel(6e-6, p), 0)
	if a.Rho.MaxAbsDiff(b.Rho) > 1e-9 {
		t.Error("decoherence channel does not compose over time")
	}
}

func TestIdleDetuningPhase(t *testing.T) {
	// A detuned qubit precesses: after time t the Bloch vector rotates
	// about z by 2π·Δf·t. This is the Ramsey fringe mechanism.
	p := QubitParams{FreqDetuningHz: 1e6}
	d := NewDensity(1)
	d.Apply1(RY(math.Pi/2), 0) // along +x
	Idle(d, 0, 0.25e-6, p)     // quarter period of 1 MHz -> +x rotates to...
	x, y, _ := d.BlochVector(0)
	if math.Abs(x) > 1e-9 || math.Abs(math.Abs(y)-1) > 1e-9 {
		t.Errorf("Bloch after quarter-period detuning = (%v,%v), want (0,±1)", x, y)
	}
}

func TestIdleZeroDurationNoop(t *testing.T) {
	d := NewDensity(1)
	d.Apply1(RY(0.4), 0)
	before := d.Rho.Clone()
	Idle(d, 0, 0, DefaultQubitParams())
	if d.Rho.MaxAbsDiff(before) > tol {
		t.Error("zero-duration idle must be a no-op")
	}
}

func TestDefaultQubitParamsSane(t *testing.T) {
	p := DefaultQubitParams()
	if p.T1 <= 0 || p.T2 <= 0 || p.T2 > 2*p.T1 {
		t.Errorf("default params unphysical: %+v", p)
	}
}

func TestChannelsAreCPTP(t *testing.T) {
	// Σ K†K = I for every channel constructor.
	check := func(name string, ops []Matrix) {
		sum := NewMatrix(2)
		for _, k := range ops {
			sum = sum.Add(k.Dagger().Mul(k))
		}
		if sum.MaxAbsDiff(Identity(2)) > 1e-9 {
			t.Errorf("%s: Σ K†K != I", name)
		}
	}
	check("amplitude(0.3)", AmplitudeDamping(0.3))
	check("phase(0.6)", PhaseDamping(0.6))
	check("depol(0.2)", Depolarizing(0.2))
	check("decoherence", DecoherenceChannel(2e-6, DefaultQubitParams()))
}

func TestGeneralizedAmplitudeDampingEquilibrium(t *testing.T) {
	// Long evolution relaxes any state to the thermal population.
	p := QubitParams{T1: 10e-6, T2: 20e-6, ThermalPopulation: 0.03}
	for _, prep := range []Matrix{Identity(2), PauliX(), Hadamard()} {
		d := NewDensity(1)
		d.Apply1(prep, 0)
		d.ApplyKraus1(DecoherenceChannel(200e-6, p), 0) // 20·T1
		if got := d.ProbExcited(0); math.Abs(got-0.03) > 1e-3 {
			t.Errorf("equilibrium P(1) = %v, want 0.03", got)
		}
		if math.Abs(d.Trace()-1) > 1e-9 {
			t.Error("trace violated")
		}
	}
}

func TestGeneralizedAmplitudeDampingReducesToPlain(t *testing.T) {
	a := GeneralizedAmplitudeDamping(0.3, 0)
	b := AmplitudeDamping(0.3)
	if len(a) != len(b) {
		t.Fatal("pth=0 must reduce to plain amplitude damping")
	}
	for i := range a {
		if a[i].MaxAbsDiff(b[i]) > 1e-12 {
			t.Errorf("operator %d differs", i)
		}
	}
}

func TestGeneralizedAmplitudeDampingCPTP(t *testing.T) {
	ops := GeneralizedAmplitudeDamping(0.4, 0.1)
	sum := NewMatrix(2)
	for _, k := range ops {
		sum = sum.Add(k.Dagger().Mul(k))
	}
	if sum.MaxAbsDiff(Identity(2)) > 1e-9 {
		t.Error("GAD not trace preserving")
	}
}

func TestThermalPopulationRaisesAllXYFloor(t *testing.T) {
	// Idling from ground with thermal excitation climbs toward pth
	// instead of staying at zero — the physical init-fidelity limit of
	// initialization-by-waiting.
	p := QubitParams{T1: 30e-6, T2: 20e-6, ThermalPopulation: 0.02}
	d := NewDensity(1)
	Idle(d, 0, 200e-6, p)
	if got := d.ProbExcited(0); math.Abs(got-0.02) > 2e-3 {
		t.Errorf("post-init P(1) = %v, want ≈ 0.02", got)
	}
}
