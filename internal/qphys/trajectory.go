package qphys

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Trajectory is a pure-state Monte-Carlo backend: it stores the 2^n
// statevector of an n-qubit register (qubit 0 is the most significant bit
// of the basis index) and unwinds every quantum channel by sampling a
// single Kraus operator per application, weighted by the Born rule. Each
// run is therefore one stochastic trajectory whose ensemble average over
// seeds reproduces the Density backend exactly, at O(2^n) instead of
// O(4^n) memory — repetition-code and RB-style scenarios scale past the
// density-matrix wall toward ~16 qubits.
//
// The unitary kernels are in-place block updates with the same zero-
// allocation discipline as the Density kernels (see kernels.go); the
// property tests in trajectory_test.go pin them to Density at 1e-12.
type Trajectory struct {
	nq  int
	Psi []complex128
	// rng drives Kraus-operator sampling. It is bound at construction —
	// the machine hands over its deterministic PRNG — so a fixed seed
	// fixes the whole trajectory, which keeps sweep results
	// bit-reproducible for any worker count.
	rng *rand.Rand
	// diagMemo caches the diagonality classification of the last Apply2
	// matrix by identity: the machine plays the same cached CZ on every
	// flux pulse, so the 16-entry scan runs once, not once per gate.
	diagMemo       *complex128
	diagMemoIsDiag bool
}

// maxTrajectoryQubits bounds the register size: 2^20 amplitudes (16 MiB)
// is still cheap, and the ISA's qubit masks stop at 16 anyway.
const maxTrajectoryQubits = 20

// NewTrajectory returns an n-qubit register initialized to |0…0⟩ whose
// channel sampling draws from rng.
func NewTrajectory(n int, rng *rand.Rand) *Trajectory {
	if n < 1 || n > maxTrajectoryQubits {
		panic(fmt.Sprintf("qphys: unsupported trajectory register size %d", n))
	}
	psi := make([]complex128, 1<<n)
	psi[0] = 1
	return &Trajectory{nq: n, Psi: psi, rng: rng}
}

// NumQubits returns the register size.
func (t *Trajectory) NumQubits() int { return t.nq }

// Dim returns the Hilbert-space dimension 2^n.
func (t *Trajectory) Dim() int { return len(t.Psi) }

// Reset returns the register to |0…0⟩.
func (t *Trajectory) Reset() {
	for i := range t.Psi {
		t.Psi[i] = 0
	}
	t.Psi[0] = 1
}

// Apply1 applies a single-qubit unitary to qubit q in place: for every
// amplitude pair differing only in q's bit, |ψ⟩ is updated by the 2×2
// block. Pairs are visited block-wise (all bit-0 indices are contiguous
// runs of length mask), so the loop carries no skip branch. O(2^n), no
// allocation.
func (t *Trajectory) Apply1(u Matrix, q int) {
	if u.N != 2 {
		panic("qphys: Apply1 requires a single-qubit gate")
	}
	if q < 0 || q >= t.nq {
		panic(fmt.Sprintf("qphys: Apply1 qubit %d out of range 0..%d", q, t.nq-1))
	}
	mask := 1 << (t.nq - 1 - q)
	u00, u01, u10, u11 := u.Data[0], u.Data[1], u.Data[2], u.Data[3]
	psi := t.Psi
	for base := 0; base < len(psi); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			a0, a1 := psi[i], psi[i+mask]
			psi[i] = u00*a0 + u01*a1
			psi[i+mask] = u10*a0 + u11*a1
		}
	}
}

// Apply2 applies a two-qubit unitary to qubits (qa, qb) in place. The
// basis order of u matches Embed2: index = bit(qa)·2 + bit(qb), so qa is
// the control of CNOT. O(2^n·4), no allocation. Diagonal unitaries (the
// CZ flux pulse — the only two-qubit gate the machine's physical layer
// emits) take a one-multiply-per-amplitude fast path.
func (t *Trajectory) Apply2(u Matrix, qa, qb int) {
	if u.N != 4 {
		panic("qphys: Apply2 requires a two-qubit gate")
	}
	if qa == qb {
		panic("qphys: Apply2 requires distinct qubits")
	}
	if qa < 0 || qa >= t.nq || qb < 0 || qb >= t.nq {
		panic(fmt.Sprintf("qphys: Apply2 qubits (%d,%d) out of range 0..%d", qa, qb, t.nq-1))
	}
	ma := 1 << (t.nq - 1 - qa)
	mb := 1 << (t.nq - 1 - qb)
	psi := t.Psi
	isDiag := false
	if &u.Data[0] == t.diagMemo {
		isDiag = t.diagMemoIsDiag
	} else {
		isDiag = diag2(u)
		t.diagMemo, t.diagMemoIsDiag = &u.Data[0], isDiag
	}
	if isDiag {
		// Touch only the bit-pattern groups whose diagonal entry is not 1
		// (CZ touches a single group: the 2^(n-2) amplitudes with both
		// bits set), enumerating each group by walking the submasks of
		// the remaining bits.
		rest := (len(psi) - 1) &^ (ma | mb)
		for s, fixed := range [4]int{0, mb, ma, ma | mb} {
			d := u.Data[s*4+s]
			if d == 1 {
				continue
			}
			r := 0
			for {
				psi[r|fixed] *= d
				if r == rest {
					break
				}
				r = (r - rest) & rest
			}
		}
		return
	}
	both := ma | mb
	off := [4]int{0, mb, ma, ma | mb}
	for base := range psi {
		if base&both != 0 {
			continue
		}
		var a, out [4]complex128
		for s := 0; s < 4; s++ {
			a[s] = psi[base|off[s]]
		}
		for s := 0; s < 4; s++ {
			us := u.Data[s*4:]
			out[s] = us[0]*a[0] + us[1]*a[1] + us[2]*a[2] + us[3]*a[3]
		}
		for s := 0; s < 4; s++ {
			psi[base|off[s]] = out[s]
		}
	}
}

// diag2 reports whether a 4×4 unitary is diagonal.
func diag2(u Matrix) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && u.Data[i*4+j] != 0 {
				return false
			}
		}
	}
	return true
}

// ApplyKraus1 applies a single-qubit channel to qubit q by Monte-Carlo
// unraveling: operator K_k is selected with the Born probability
// p_k = ‖K_k|ψ⟩‖² (the operators must satisfy Σ K†K = I, so Σ p_k = 1)
// and the state becomes K_k|ψ⟩/√p_k. Exactly one PRNG variate is
// consumed per multi-operator channel. Exact in expectation over the
// bound PRNG. No allocation.
//
// Channels whose operators are all diagonal or anti-diagonal — every
// channel DecoherenceChannel builds (products of amplitude-damping and
// dephasing operators) and the depolarizing channel — take a fast path:
// the Born weight of such an operator depends only on the two per-bit
// populations, so one population pass prices every candidate (instead of
// one full state pass per candidate) and the sampled operator applies
// with one multiply per amplitude. A dense operator encountered during
// pricing falls back to the general per-operator-pass path, reusing the
// same variate.
func (t *Trajectory) ApplyKraus1(ops []Matrix, q int) {
	if q < 0 || q >= t.nq {
		panic(fmt.Sprintf("qphys: ApplyKraus1 qubit %d out of range 0..%d", q, t.nq-1))
	}
	if len(ops) == 0 || ops[0].N != 2 {
		// Channels are homogeneous; checking the first operator keeps the
		// guard off the per-operator hot loop.
		panic("qphys: ApplyKraus1 requires single-qubit operators")
	}
	if len(ops) == 1 {
		// A single operator of a physical channel must be (a phase times)
		// a unitary; apply it directly without drawing a variate.
		t.Apply1(ops[0], q)
		return
	}
	mask := 1 << (t.nq - 1 - q)
	psi := t.Psi
	r := t.rng.Float64()

	var p0, p1 float64
	for base := 0; base < len(psi); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			a0, a1 := psi[i], psi[i+mask]
			p0 += real(a0)*real(a0) + imag(a0)*imag(a0)
			p1 += real(a1)*real(a1) + imag(a1)*imag(a1)
		}
	}
	cum := 0.0
	chosen := -1
	lastPositive := -1
	var lastP float64
	for ki := range ops {
		k := &ops[ki]
		diag := k.Data[1] == 0 && k.Data[2] == 0
		if !diag && (k.Data[0] != 0 || k.Data[3] != 0) {
			// Dense operator: re-sample with the general path and the
			// same variate (pricing so far mutated nothing).
			t.applyKrausDense(ops, mask, r)
			return
		}
		var p float64
		if diag {
			p = norm2(k.Data[0])*p0 + norm2(k.Data[3])*p1
		} else {
			p = norm2(k.Data[1])*p1 + norm2(k.Data[2])*p0
		}
		if p > 0 {
			lastPositive, lastP = ki, p
		}
		cum += p
		if r < cum {
			chosen, lastP = ki, p
			break
		}
	}
	if chosen < 0 {
		// Numerical leftover pushed the cumulative sum just below r; fall
		// back to the last operator with nonzero weight.
		if lastPositive < 0 {
			return
		}
		chosen = lastPositive
	}
	k := ops[chosen]
	rinv := 1 / math.Sqrt(lastP)
	inv := complex(rinv, 0)
	if k.Data[1] == 0 && k.Data[2] == 0 {
		if imag(k.Data[0]) == 0 && imag(k.Data[3]) == 0 {
			// Real coefficients (every channel DecoherenceChannel builds):
			// two real multiplies per amplitude instead of a complex one.
			// Identical except for the sign of zeros, which no |a|² term,
			// comparison, or downstream decision can observe.
			r0, r1 := real(k.Data[0])*rinv, real(k.Data[3])*rinv
			for base := 0; base < len(psi); base += mask << 1 {
				for i := base; i < base+mask; i++ {
					a := psi[i]
					psi[i] = complex(real(a)*r0, imag(a)*r0)
					b := psi[i+mask]
					psi[i+mask] = complex(real(b)*r1, imag(b)*r1)
				}
			}
			return
		}
		c0, c1 := k.Data[0]*inv, k.Data[3]*inv
		for base := 0; base < len(psi); base += mask << 1 {
			for i := base; i < base+mask; i++ {
				psi[i] *= c0
				psi[i+mask] *= c1
			}
		}
	} else {
		c01, c10 := k.Data[1]*inv, k.Data[2]*inv
		for base := 0; base < len(psi); base += mask << 1 {
			for i := base; i < base+mask; i++ {
				psi[i], psi[i+mask] = c01*psi[i+mask], c10*psi[i]
			}
		}
	}
}

func norm2(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

// applyKrausDense is the general Born-rule sampling path: one full state
// pass per candidate operator until the cumulative weight passes r.
func (t *Trajectory) applyKrausDense(ops []Matrix, mask int, r float64) {
	psi := t.Psi
	cum := 0.0
	chosen := -1
	lastPositive := -1
	var lastP float64
	for ki, k := range ops {
		k00, k01, k10, k11 := k.Data[0], k.Data[1], k.Data[2], k.Data[3]
		var p float64
		for base := 0; base < len(psi); base += mask << 1 {
			for i0 := base; i0 < base+mask; i0++ {
				i1 := i0 | mask
				a0, a1 := psi[i0], psi[i1]
				b0 := k00*a0 + k01*a1
				b1 := k10*a0 + k11*a1
				p += real(b0)*real(b0) + imag(b0)*imag(b0) +
					real(b1)*real(b1) + imag(b1)*imag(b1)
			}
		}
		if p > 0 {
			lastPositive, lastP = ki, p
		}
		cum += p
		if r < cum {
			chosen, lastP = ki, p
			break
		}
	}
	if chosen < 0 {
		if lastPositive < 0 {
			return
		}
		chosen = lastPositive
	}
	k := ops[chosen]
	k00, k01, k10, k11 := k.Data[0], k.Data[1], k.Data[2], k.Data[3]
	inv := complex(1/math.Sqrt(lastP), 0)
	for base := 0; base < len(psi); base += mask << 1 {
		for i0 := base; i0 < base+mask; i0++ {
			i1 := i0 | mask
			a0, a1 := psi[i0], psi[i1]
			psi[i0] = (k00*a0 + k01*a1) * inv
			psi[i1] = (k10*a0 + k11*a1) * inv
		}
	}
}

// ProbExcited returns the probability of reading qubit q as |1⟩.
func (t *Trajectory) ProbExcited(q int) float64 {
	mask := 1 << (t.nq - 1 - q)
	psi := t.Psi
	var p float64
	for base := mask; base < len(psi); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			a := psi[i]
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return clampProb(p)
}

// ExpectationZ returns ⟨Z⟩ for qubit q.
func (t *Trajectory) ExpectationZ(q int) float64 {
	return 1 - 2*t.ProbExcited(q)
}

// Measure performs a projective measurement of qubit q using the supplied
// PRNG, collapses the state, and returns the binary outcome. The outcome
// probability from the sampling pass is reused for the renormalization,
// so the whole measurement is two state passes (probability + collapse);
// compiled schedules skip the first via MeasureWithProb when a fused
// kernel already carried the population.
func (t *Trajectory) Measure(q int, rng *rand.Rand) int {
	return t.MeasureWithProb(q, t.ProbExcited(q), rng)
}

// Project collapses qubit q onto the given outcome and renormalizes. A
// (numerically) zero-probability outcome resets the register to the basis
// state consistent with it, mirroring Density.Project.
func (t *Trajectory) Project(q, outcome int) {
	bit := t.nq - 1 - q
	var p float64
	for i, a := range t.Psi {
		if (i>>bit)&1 == outcome {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	t.projectWithProb(q, outcome, p)
}

// projectWithProb is Project with the outcome probability already known
// (Measure reuses the probability from its sampling pass).
func (t *Trajectory) projectWithProb(q, outcome int, p float64) {
	if p < 1e-15 {
		t.Reset()
		if outcome == 1 {
			t.Apply1(PauliX(), q)
		}
		return
	}
	mask := 1 << (t.nq - 1 - q)
	psi := t.Psi
	// The renormalization factor is real, so scale the parts directly
	// (differs from the complex multiply only in the sign of zeros, which
	// nothing downstream can observe).
	rinv := 1 / math.Sqrt(p)
	for base := 0; base < len(psi); base += mask << 1 {
		if outcome == 0 {
			for i := base; i < base+mask; i++ {
				a := psi[i]
				psi[i] = complex(real(a)*rinv, imag(a)*rinv)
				psi[i+mask] = 0
			}
		} else {
			for i := base; i < base+mask; i++ {
				psi[i] = 0
				a := psi[i+mask]
				psi[i+mask] = complex(real(a)*rinv, imag(a)*rinv)
			}
		}
	}
}

// Norm returns ‖ψ‖, which must stay 1 for any physical evolution.
func (t *Trajectory) Norm() float64 {
	var s float64
	for _, a := range t.Psi {
		s += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(s)
}

// Purity returns Tr(ρ²) of the represented state: 1 for any normalized
// pure state, so this reports (‖ψ‖²)² and flags norm drift.
func (t *Trajectory) Purity() float64 {
	n := t.Norm()
	return n * n * n * n
}

// ReducedQubit returns the 2×2 reduced density matrix of qubit q.
func (t *Trajectory) ReducedQubit(q int) Matrix {
	out := NewMatrix(2)
	bit := t.nq - 1 - q
	for i, a := range t.Psi {
		if a == 0 {
			continue
		}
		j := i ^ (1 << bit)
		ib := (i >> bit) & 1
		out.Data[ib*2+ib] += a * cmplx.Conj(a)
		if b := t.Psi[j]; b != 0 {
			out.Data[ib*2+(1-ib)] += a * cmplx.Conj(b)
		}
	}
	return out
}

// DensityMatrix returns |ψ⟩⟨ψ| as a dense matrix — the bridge used by the
// property tests to compare against the Density backend.
func (t *Trajectory) DensityMatrix() Matrix {
	n := len(t.Psi)
	out := NewMatrix(n)
	for i, a := range t.Psi {
		if a == 0 {
			continue
		}
		for j, b := range t.Psi {
			out.Data[i*n+j] = a * cmplx.Conj(b)
		}
	}
	return out
}
