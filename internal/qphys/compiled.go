package qphys

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Compiled-channel hooks for schedule compilers (internal/replay).
//
// A recorded shot schedule applies the same handful of cached channels
// and unitaries thousands of times. ApplyKraus1 re-derives the same
// structure on every call: it classifies each operator as diagonal /
// anti-diagonal / dense, recomputes the Born-weight coefficients from the
// operator entries, and (on the density backend) rebuilds the
// entry/conjugate tables. ChannelTable hoists all of that out of the shot
// loop into one per-schedule table, and the Carry variants additionally
// let consecutive axis-aligned steps share population passes. Every hook
// is bit-identical to the un-compiled path it replaces — pricing uses the
// same float64 coefficient values, and all accumulations preserve the
// per-accumulator addition order — so a compiled schedule produces the
// same PRNG consumption and the same state, bit for bit.

// ChannelTable is the per-schedule compiled form of a single-qubit Kraus
// channel: operator classification, Born-weight pricing coefficients, and
// application entries for the trajectory backend, plus the entry/conjugate
// tables of the density kernel. Build one per distinct channel of a
// schedule (channels are cached per (qubit, idle-duration) on the machine,
// so pointer identity of the Kraus slice is a natural dedup key).
type ChannelTable struct {
	ops []Matrix

	// Trajectory pricing tables, one entry per operator. kind classifies
	// the operator; w0/w1 are the Born-weight coefficients of the
	// populations (weight = w0·p0 + w1·p1), exactly the norm² values
	// ApplyKraus1 computes per call. e0/e1 are the two (potentially)
	// nonzero entries: (k00, k11) for diagonal operators, (k01, k10) for
	// anti-diagonal ones.
	kind   []uint8
	w0, w1 []float64
	e0, e1 []complex128
	// realc marks operators whose two entries are both real, which is
	// every operator DecoherenceChannel composes. Their application
	// scales each amplitude's parts with two real multiplies instead of
	// a full complex multiply — identical except for the sign of zeros,
	// which no |a|² term, comparison, or downstream decision can observe.
	realc []bool

	// Density kernel tables: operator entries and their conjugates, the
	// arrays ApplyKraus1 builds on the stack per call.
	kd, kc [][4]complex128

	// First-operator scalars, mirrored out of the slices: the no-jump
	// branch of a decoherence channel absorbs almost all of the Born
	// weight, so the pricing fast path reads these without slice loads.
	fkind    uint8
	freal    bool
	fw0, fw1 float64
	fr0, fr1 float64
	fe0, fe1 complex128
}

// Operator classes of a ChannelTable entry, mirroring the dynamic
// classification in Trajectory.ApplyKraus1.
const (
	chanDiag uint8 = iota
	chanAnti
	chanDense
)

// NewChannelTable compiles a single-qubit channel (Σ K†K = I) into its
// per-schedule table. The operators are retained by reference; channels
// come from the machine's immutable caches, so no copy is taken.
func NewChannelTable(ops []Matrix) *ChannelTable {
	if len(ops) == 0 {
		panic("qphys: NewChannelTable requires at least one operator")
	}
	ct := &ChannelTable{ops: ops}
	for i := range ops {
		k := &ops[i]
		if k.N != 2 {
			panic(fmt.Sprintf("qphys: NewChannelTable requires single-qubit operators, got %d×%d", k.N, k.N))
		}
		var kd, kc [4]complex128
		for e := 0; e < 4; e++ {
			kd[e] = k.Data[e]
			kc[e] = cmplx.Conj(k.Data[e])
		}
		ct.kd = append(ct.kd, kd)
		ct.kc = append(ct.kc, kc)
		switch {
		case k.Data[1] == 0 && k.Data[2] == 0:
			ct.kind = append(ct.kind, chanDiag)
			ct.w0 = append(ct.w0, norm2(k.Data[0]))
			ct.w1 = append(ct.w1, norm2(k.Data[3]))
			ct.e0 = append(ct.e0, k.Data[0])
			ct.e1 = append(ct.e1, k.Data[3])
		case k.Data[0] == 0 && k.Data[3] == 0:
			ct.kind = append(ct.kind, chanAnti)
			ct.w0 = append(ct.w0, norm2(k.Data[2]))
			ct.w1 = append(ct.w1, norm2(k.Data[1]))
			ct.e0 = append(ct.e0, k.Data[1])
			ct.e1 = append(ct.e1, k.Data[2])
		default:
			ct.kind = append(ct.kind, chanDense)
			ct.w0 = append(ct.w0, 0)
			ct.w1 = append(ct.w1, 0)
			ct.e0 = append(ct.e0, 0)
			ct.e1 = append(ct.e1, 0)
		}
		i := len(ct.e0) - 1
		ct.realc = append(ct.realc, imag(ct.e0[i]) == 0 && imag(ct.e1[i]) == 0)
	}
	ct.fkind = ct.kind[0]
	ct.freal = ct.realc[0]
	ct.fw0, ct.fw1 = ct.w0[0], ct.w1[0]
	ct.fe0, ct.fe1 = ct.e0[0], ct.e1[0]
	ct.fr0, ct.fr1 = real(ct.e0[0]), real(ct.e1[0])
	return ct
}

// Ops returns the channel's Kraus operators (the slice the table was
// built from).
func (ct *ChannelTable) Ops() []Matrix { return ct.ops }

// PopCarry carries one qubit's per-bit populations (p0 = Σ|a|² over
// amplitudes with the qubit's bit clear, p1 over the bit set) from a
// fused kernel to the next schedule step, so the next step can skip its
// own population pass. Valid reports whether the values were produced;
// a carry is only usable for the qubit it was accumulated for.
type PopCarry struct {
	P0, P1 float64
	Valid  bool
}

// ApplyChannel applies the compiled channel to qubit q, bit-identical to
// ApplyKraus1(ct.Ops(), q) with the per-call classification and pricing
// hoisted into the table.
func (t *Trajectory) ApplyChannel(ct *ChannelTable, q int) {
	t.ApplyChannelCarry(ct, q, PopCarry{}, -1)
}

// ApplyChannelCarry applies the compiled channel to qubit q. It is
// bit-identical to ApplyKraus1(ct.Ops(), q): same PRNG consumption (one
// variate per multi-operator channel, none for a single operator), same
// pricing arithmetic, same application arithmetic.
//
// in, when Valid, must hold qubit q's populations exactly as a fresh
// population pass over the current state would compute them (i.e. the
// carry produced by the immediately preceding fused kernel); the pass is
// then skipped. When nextQ ≥ 0 and the sampled operator is diagonal, the
// application pass additionally accumulates qubit nextQ's populations —
// in ascending index order per accumulator, matching a standalone pass
// bit for bit — and returns them as a Valid carry. All other outcomes
// (single-operator, anti-diagonal, dense, zero-weight) return an invalid
// carry and the next step pays its own pass.
func (t *Trajectory) ApplyChannelCarry(ct *ChannelTable, q int, in PopCarry, nextQ int) PopCarry {
	if q < 0 || q >= t.nq {
		panic(fmt.Sprintf("qphys: ApplyChannelCarry qubit %d out of range 0..%d", q, t.nq-1))
	}
	ops := ct.ops
	if len(ops) == 1 {
		// A single operator of a physical channel must be (a phase times)
		// a unitary; ApplyKraus1 applies it directly without a variate.
		t.Apply1(ops[0], q)
		return PopCarry{}
	}
	mask := 1 << (t.nq - 1 - q)
	psi := t.Psi
	r := t.rng.Float64()

	var p0, p1 float64
	if in.Valid {
		p0, p1 = in.P0, in.P1
	} else {
		for base := 0; base < len(psi); base += mask << 1 {
			for i := base; i < base+mask; i++ {
				a0, a1 := psi[i], psi[i+mask]
				p0 += real(a0)*real(a0) + imag(a0)*imag(a0)
				p1 += real(a1)*real(a1) + imag(a1)*imag(a1)
			}
		}
	}
	return t.applyChannelSampled(ct, q, mask, p0, p1, r, nextQ)
}

// Sentinel selections from priceChannel, below the valid operator
// indices: the pricing met a dense operator (the caller must fall back
// to the general per-operator-pass path with the same variate), or no
// operator had positive weight (the channel is a no-op for this draw).
const (
	chanChoseDense = -2
	chanChoseNone  = -1
)

// priceChannel reproduces the operator selection of the un-compiled
// trajectory channel path bit for bit: given the two populations and
// the draw, it returns the chosen operator index and its Born weight
// (the normalization p the application divides by), or one of the
// sentinels above. Pure — it reads only the table — so the batched
// executor prices every lane with exactly the scalar decision.
func priceChannel(ct *ChannelTable, p0, p1, r float64) (chosen int, lastP float64) {
	// Fast path for the overwhelmingly common draw: the first operator
	// (the no-jump branch of a decoherence channel) absorbs almost all of
	// the Born weight. cum accumulates from exactly 0.0, so r < w0·p0 +
	// w1·p1 reproduces the general loop's first-iteration decision bit
	// for bit.
	if ct.fkind != chanDense {
		if p := ct.fw0*p0 + ct.fw1*p1; r < p {
			return 0, p
		}
	}
	cum := 0.0
	chosen = chanChoseNone
	lastPositive := -1
	for ki := range ct.ops {
		if ct.kind[ki] == chanDense {
			return chanChoseDense, 0
		}
		// Identical arithmetic to the un-compiled pricing for both
		// operator classes: IEEE addition is commutative, so
		// w0·p0 + w1·p1 matches the anti-diagonal path's
		// norm²(k01)·p1 + norm²(k10)·p0 bit for bit.
		p := ct.w0[ki]*p0 + ct.w1[ki]*p1
		if p > 0 {
			lastPositive, lastP = ki, p
		}
		cum += p
		if r < cum {
			return ki, p
		}
	}
	// Numerical leftover pushed the cumulative sum just below r; fall
	// back to the last operator with nonzero weight.
	if lastPositive < 0 {
		return chanChoseNone, 0
	}
	return lastPositive, lastP
}

// applyChannelSampled is the pricing + application tail of
// ApplyChannelCarry, entered with the populations and the variate already
// in hand — the compiled-schedule executor (RunSchedule) jumps here
// directly when its inlined hot path does not apply. Deterministic in
// (state, ct, q, p0, p1, r), so re-entering with the same inputs
// reproduces the same selection bit for bit.
func (t *Trajectory) applyChannelSampled(ct *ChannelTable, q, mask int, p0, p1, r float64, nextQ int) PopCarry {
	ops := ct.ops
	psi := t.Psi
	chosen, lastP := priceChannel(ct, p0, p1, r)
	if chosen == chanChoseDense {
		// ApplyKraus1 falls back to the general per-operator-pass path
		// with the same variate the moment it prices a dense operator;
		// the partial pricing before it mutated nothing.
		t.applyKrausDense(ops, mask, r)
		return PopCarry{}
	}
	if chosen == chanChoseNone {
		return PopCarry{}
	}
	rinv := 1 / math.Sqrt(lastP)
	inv := complex(rinv, 0)
	if ct.kind[chosen] == chanDiag {
		if ct.realc[chosen] {
			// Real coefficients (every DecoherenceChannel operator): scale
			// each amplitude's parts with two real multiplies. Identical to
			// the complex multiply except for the sign of zeros, which no
			// |a|² term, comparison, or downstream decision can observe.
			r0, r1 := real(ct.e0[chosen])*rinv, real(ct.e1[chosen])*rinv
			switch {
			case nextQ == q:
				// Fused apply + same-qubit population pass: lo amplitudes
				// feed p0 and hi amplitudes feed p1, each in ascending
				// index order — exactly the order of a standalone pass.
				var np0, np1 float64
				for base := 0; base < len(psi); base += mask << 1 {
					for i := base; i < base+mask; i++ {
						a := psi[i]
						re, im := real(a)*r0, imag(a)*r0
						psi[i] = complex(re, im)
						np0 += re*re + im*im
						b := psi[i+mask]
						re, im = real(b)*r1, imag(b)*r1
						psi[i+mask] = complex(re, im)
						np1 += re*re + im*im
					}
				}
				return PopCarry{P0: np0, P1: np1, Valid: true}
			case nextQ >= 0 && nextQ < t.nq:
				// Fused apply + other-qubit population pass, visiting every
				// index exactly once in globally ascending order so each
				// accumulator's addition order matches a standalone pass.
				// The loops nest by whichever of the two masks is larger,
				// so the coefficient and the accumulator each change only
				// at their own block boundaries and the inner loops stay
				// branch-free with register accumulators.
				nmask := 1 << (t.nq - 1 - nextQ)
				var np0, np1 float64
				if nmask > mask {
					// Accumulator constant per outer block, coefficient
					// alternating every mask elements inside.
					for nb := 0; nb < len(psi); nb += nmask {
						s := np0
						if nb&nmask != 0 {
							s = np1
						}
						for mb := nb; mb < nb+nmask; mb += mask << 1 {
							for i := mb; i < mb+mask; i++ {
								a := psi[i]
								re, im := real(a)*r0, imag(a)*r0
								psi[i] = complex(re, im)
								s += re*re + im*im
							}
							for i := mb + mask; i < mb+mask+mask; i++ {
								a := psi[i]
								re, im := real(a)*r1, imag(a)*r1
								psi[i] = complex(re, im)
								s += re*re + im*im
							}
						}
						if nb&nmask != 0 {
							np1 = s
						} else {
							np0 = s
						}
					}
				} else if nmask == 1 {
					// Bottom-qubit carry target: accumulators alternate
					// every element, so walk each coefficient block
					// pairwise with no inner slicing.
					for mb := 0; mb < len(psi); mb += mask {
						r := r0
						if mb&mask != 0 {
							r = r1
						}
						for i := mb; i+1 < mb+mask; i += 2 {
							a := psi[i]
							re, im := real(a)*r, imag(a)*r
							psi[i] = complex(re, im)
							np0 += re*re + im*im
							b := psi[i+1]
							re, im = real(b)*r, imag(b)*r
							psi[i+1] = complex(re, im)
							np1 += re*re + im*im
						}
					}
				} else {
					// Coefficient constant per outer block, accumulator
					// alternating every nmask elements inside.
					for mb := 0; mb < len(psi); mb += mask {
						r := r0
						if mb&mask != 0 {
							r = r1
						}
						for nb := mb; nb < mb+mask; nb += nmask << 1 {
							for i := nb; i < nb+nmask; i++ {
								a := psi[i]
								re, im := real(a)*r, imag(a)*r
								psi[i] = complex(re, im)
								np0 += re*re + im*im
							}
							for i := nb + nmask; i < nb+nmask+nmask; i++ {
								a := psi[i]
								re, im := real(a)*r, imag(a)*r
								psi[i] = complex(re, im)
								np1 += re*re + im*im
							}
						}
					}
				}
				return PopCarry{P0: np0, P1: np1, Valid: true}
			}
			for base := 0; base < len(psi); base += mask << 1 {
				for i := base; i < base+mask; i++ {
					a := psi[i]
					psi[i] = complex(real(a)*r0, imag(a)*r0)
					b := psi[i+mask]
					psi[i+mask] = complex(real(b)*r1, imag(b)*r1)
				}
			}
			return PopCarry{}
		}
		c0, c1 := ct.e0[chosen]*inv, ct.e1[chosen]*inv
		if nextQ == q {
			var np0, np1 float64
			for base := 0; base < len(psi); base += mask << 1 {
				for i := base; i < base+mask; i++ {
					v0 := psi[i] * c0
					psi[i] = v0
					np0 += real(v0)*real(v0) + imag(v0)*imag(v0)
					v1 := psi[i+mask] * c1
					psi[i+mask] = v1
					np1 += real(v1)*real(v1) + imag(v1)*imag(v1)
				}
			}
			return PopCarry{P0: np0, P1: np1, Valid: true}
		}
		for base := 0; base < len(psi); base += mask << 1 {
			for i := base; i < base+mask; i++ {
				psi[i] *= c0
				psi[i+mask] *= c1
			}
		}
		return PopCarry{}
	}
	c01, c10 := ct.e0[chosen]*inv, ct.e1[chosen]*inv
	if nextQ == q {
		// An anti-diagonal operator swaps the halves, so the pair loop's
		// new lo values feed p0 ascending and new hi values feed p1
		// ascending — the same-qubit carry stays exact.
		var np0, np1 float64
		for base := 0; base < len(psi); base += mask << 1 {
			for i := base; i < base+mask; i++ {
				v0, v1 := c01*psi[i+mask], c10*psi[i]
				psi[i], psi[i+mask] = v0, v1
				np0 += real(v0)*real(v0) + imag(v0)*imag(v0)
				np1 += real(v1)*real(v1) + imag(v1)*imag(v1)
			}
		}
		return PopCarry{P0: np0, P1: np1, Valid: true}
	}
	for base := 0; base < len(psi); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			psi[i], psi[i+mask] = c01*psi[i+mask], c10*psi[i]
		}
	}
	return PopCarry{}
}

// Apply1Carry is Apply1 fused with a same-qubit population pass: it
// applies the single-qubit unitary to qubit q and accumulates q's
// populations from the new amplitudes — lo values feed p0 and hi values
// feed p1, each in ascending index order — bit-identical to Apply1
// followed by a standalone pass. (An other-qubit carry would have to
// revisit the hi half after the pair loop, which is just the pop pass it
// is meant to save; the schedule compiler links unitary producers only
// to same-qubit consumers.)
func (t *Trajectory) Apply1Carry(u Matrix, q int) PopCarry {
	if u.N != 2 {
		panic("qphys: Apply1Carry requires a single-qubit gate")
	}
	if q < 0 || q >= t.nq {
		panic(fmt.Sprintf("qphys: Apply1Carry qubit %d out of range 0..%d", q, t.nq-1))
	}
	mask := 1 << (t.nq - 1 - q)
	u00, u01, u10, u11 := u.Data[0], u.Data[1], u.Data[2], u.Data[3]
	psi := t.Psi
	var np0, np1 float64
	for base := 0; base < len(psi); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			a0, a1 := psi[i], psi[i+mask]
			v0 := u00*a0 + u01*a1
			v1 := u10*a0 + u11*a1
			psi[i] = v0
			psi[i+mask] = v1
			np0 += real(v0)*real(v0) + imag(v0)*imag(v0)
			np1 += real(v1)*real(v1) + imag(v1)*imag(v1)
		}
	}
	return PopCarry{P0: np0, P1: np1, Valid: true}
}

// MeasureWithProb is Measure with qubit q's raw excited-state population
// already known: p1 must equal the |1⟩ population a fresh pass would
// compute (e.g. the P1 of a Valid PopCarry for q). It clamps, samples,
// and collapses exactly as Measure does, consuming one variate — bit-
// identical to Measure whenever the precondition holds.
func (t *Trajectory) MeasureWithProb(q int, p1 float64, rng *rand.Rand) int {
	outcome, _ := t.MeasureCarry(q, p1, rng, false)
	return outcome
}

// MeasureCarry is MeasureWithProb that can additionally carry qubit q's
// post-collapse populations to the next schedule step: the projection
// pass accumulates the renormalized survivors' |a|² in ascending index
// order (the zeroed branch contributes an exact 0), so the carry matches
// a standalone pass bit for bit. The degenerate zero-probability reset
// path produces no carry.
func (t *Trajectory) MeasureCarry(q int, p1 float64, rng *rand.Rand, wantCarry bool) (int, PopCarry) {
	p1 = clampProb(p1)
	outcome := 0
	p := 1 - p1
	if rng.Float64() < p1 {
		outcome = 1
		p = p1
	}
	if !wantCarry {
		t.projectWithProb(q, outcome, p)
		return outcome, PopCarry{}
	}
	if p < 1e-15 {
		t.projectWithProb(q, outcome, p)
		return outcome, PopCarry{}
	}
	mask := 1 << (t.nq - 1 - q)
	psi := t.Psi
	rinv := 1 / math.Sqrt(p)
	var np float64
	for base := 0; base < len(psi); base += mask << 1 {
		if outcome == 0 {
			for i := base; i < base+mask; i++ {
				a := psi[i]
				re, im := real(a)*rinv, imag(a)*rinv
				psi[i] = complex(re, im)
				np += re*re + im*im
				psi[i+mask] = 0
			}
		} else {
			for i := base; i < base+mask; i++ {
				psi[i] = 0
				a := psi[i+mask]
				re, im := real(a)*rinv, imag(a)*rinv
				psi[i+mask] = complex(re, im)
				np += re*re + im*im
			}
		}
	}
	if outcome == 0 {
		return outcome, PopCarry{P0: np, Valid: true}
	}
	return outcome, PopCarry{P1: np, Valid: true}
}

// ApplyChannel applies the compiled channel to qubit q, bit-identical to
// ApplyKraus1(ct.Ops(), q) with the per-call entry/conjugate table
// construction hoisted into the table. Channels wider than the
// allocation-free kernel bound fall back to ApplyKraus1's lifted path.
func (d *Density) ApplyChannel(ct *ChannelTable, q int) {
	if q < 0 || q >= d.nq {
		panic(fmt.Sprintf("qphys: ApplyChannel qubit %d out of range 0..%d", q, d.nq-1))
	}
	ops := ct.ops
	if len(ops) > maxKraus1 {
		d.ApplyKraus1(ops, q)
		return
	}
	d.applyKraus1Tables(ct.kd, ct.kc, q)
}

// IsCZ reports whether a two-qubit unitary is exactly diag(1, 1, 1, −1) —
// the flux-pulse CZ, the only two-qubit gate the machine's physical layer
// emits. Compiled schedules apply it with NegateBoth.
func IsCZ(u Matrix) bool {
	if u.N != 4 {
		return false
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
				if i == 3 {
					want = -1
				}
			}
			if u.Data[i*4+j] != want {
				return false
			}
		}
	}
	return true
}

// NegateBoth negates every amplitude whose qa and qb bits are both set —
// the CZ gate, without Apply2's classification and group walk. Identical
// to Apply2(CZ, qa, qb) except for the sign of zeros (negation vs
// multiplication by −1+0i), which nothing downstream can observe.
func (t *Trajectory) NegateBoth(qa, qb int) {
	if qa == qb || qa < 0 || qa >= t.nq || qb < 0 || qb >= t.nq {
		panic(fmt.Sprintf("qphys: NegateBoth qubits (%d,%d) invalid for %d-qubit register", qa, qb, t.nq))
	}
	hi := 1 << (t.nq - 1 - qa)
	lo := 1 << (t.nq - 1 - qb)
	if lo > hi {
		hi, lo = lo, hi
	}
	psi := t.Psi
	for a := hi; a < len(psi); a += hi << 1 {
		for b := a + lo; b < a+hi; b += lo << 1 {
			seg := psi[b : b+lo : b+lo]
			for j := range seg {
				seg[j] = -seg[j]
			}
		}
	}
}

// RealDiag2 reports whether a single-qubit unitary's diagonal entries
// are both real — true for every pulse rotation the machine plays
// (REquator matrices have cos(θ/2) on the diagonal), which lets compiled
// schedules use the cheaper Apply1RD kernel.
func RealDiag2(u Matrix) bool {
	return u.N == 2 && imag(u.Data[0]) == 0 && imag(u.Data[3]) == 0
}

// Apply1RD is Apply1 specialized for unitaries with real diagonal
// entries (RealDiag2): the diagonal terms scale each amplitude's parts
// with two real multiplies instead of a complex multiply. Identical to
// Apply1 except for the sign of zeros, which nothing downstream can
// observe.
func (t *Trajectory) Apply1RD(u Matrix, q int) {
	if u.N != 2 {
		panic("qphys: Apply1RD requires a single-qubit gate")
	}
	if q < 0 || q >= t.nq {
		panic(fmt.Sprintf("qphys: Apply1RD qubit %d out of range 0..%d", q, t.nq-1))
	}
	mask := 1 << (t.nq - 1 - q)
	r00, r11 := real(u.Data[0]), real(u.Data[3])
	u01, u10 := u.Data[1], u.Data[2]
	psi := t.Psi
	for base := 0; base < len(psi); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			a0, a1 := psi[i], psi[i+mask]
			x := u01 * a1
			y := u10 * a0
			psi[i] = complex(real(a0)*r00+real(x), imag(a0)*r00+imag(x))
			psi[i+mask] = complex(real(y)+real(a1)*r11, imag(y)+imag(a1)*r11)
		}
	}
}

// Apply1RDCarry is Apply1RD fused with a same-qubit population pass (see
// Apply1Carry for the ordering argument).
func (t *Trajectory) Apply1RDCarry(u Matrix, q int) PopCarry {
	if u.N != 2 {
		panic("qphys: Apply1RDCarry requires a single-qubit gate")
	}
	if q < 0 || q >= t.nq {
		panic(fmt.Sprintf("qphys: Apply1RDCarry qubit %d out of range 0..%d", q, t.nq-1))
	}
	mask := 1 << (t.nq - 1 - q)
	r00, r11 := real(u.Data[0]), real(u.Data[3])
	u01, u10 := u.Data[1], u.Data[2]
	psi := t.Psi
	var np0, np1 float64
	for base := 0; base < len(psi); base += mask << 1 {
		for i := base; i < base+mask; i++ {
			a0, a1 := psi[i], psi[i+mask]
			x := u01 * a1
			y := u10 * a0
			v0re, v0im := real(a0)*r00+real(x), imag(a0)*r00+imag(x)
			v1re, v1im := real(y)+real(a1)*r11, imag(y)+imag(a1)*r11
			psi[i] = complex(v0re, v0im)
			psi[i+mask] = complex(v1re, v1im)
			np0 += v0re*v0re + v0im*v0im
			np1 += v1re*v1re + v1im*v1im
		}
	}
	return PopCarry{P0: np0, P1: np1, Valid: true}
}

// FuseUnitaries returns the single 2×2 matrix equivalent to applying the
// given single-qubit unitaries in slice order (us[0] first), i.e. the
// product us[n-1]·…·us[1]·us[0]. Schedule compilers use it to collapse a
// run of adjacent deterministic unitaries on one qubit into a single
// Apply1. The fused product agrees with sequential application to
// floating-point rounding (the kernel property tests pin it to the dense
// reference at 1e-12), not bit for bit — runs of adjacent unitaries do
// not occur between PRNG-consuming steps in the machine's recorded
// schedules unless decoherence is disabled, so end-to-end replay results
// remain bit-identical in practice.
func FuseUnitaries(us ...Matrix) Matrix {
	if len(us) == 0 {
		return Identity(2)
	}
	for _, u := range us {
		if u.N != 2 {
			panic("qphys: FuseUnitaries requires single-qubit unitaries")
		}
	}
	out := us[0]
	for _, u := range us[1:] {
		out = u.Mul(out)
	}
	return out
}
