package qphys

import (
	"fmt"
	"math/rand"
)

// batch.go — lockstep shot-batched execution of a compiled schedule.
//
// A compiled schedule is identical for every steady-state shot by
// construction (that is what replay safety means), so the only thing
// that differs between two shot shards of one job is the per-shard PRNG
// stream and the state it drives. TrajBatch exploits that: it runs L
// independent trajectory registers ("lanes" — one lane per shot shard)
// in lockstep over ONE decoded op stream, with the amplitudes stored
// lane-minor (amp[i*L+lane]) so the hot per-amplitude loops become
// contiguous spans — rows i..i+mask-1 occupy one mask*L run of memory —
// that the span primitives in batch_span.go walk with SIMD kernels
// where the host supports them, and the per-op dispatch/classification
// cost is paid once per batch instead of once per lane.
//
// The contract is per-lane bit-identity: lane k of a batch produces
// exactly the bytes that running the same schedule on lane k's scalar
// Trajectory would produce. Every kernel here is a port of its scalar
// counterpart (trajectory.go, compiled.go, sched.go) preserving each
// lane's floating-point operations in the same order with the same
// values (IEEE addition is commutative, so a+b reorderings inside one
// rounding step are bitwise free — but addition ORDER into an
// accumulator is pinned to the scalar pass), each lane's PRNG draws in
// the same order, and every control-flow decision (operator selection,
// measurement outcome, degenerate-projection reset) taken per lane from
// the same comparisons. Lanes are classified per channel op by the
// shared pricing helper (priceChannel — the scalar decision verbatim):
// diagonal-real selections ride the vectorized flat pass with per-lane
// coefficients, anti-diagonal jumps run a strided per-lane port of the
// scalar tail on their own column, and the rare dense/complex
// selections fall back to the scalar tail on a gathered copy — same
// code, same inputs, bit-identical by construction.
type TrajBatch struct {
	nq int
	L  int
	// amp is the lane-minor SoA amplitude block: amplitude i of lane l
	// lives at amp[i*L+l].
	amp []complex128
	// lanes are the member registers; their Psi slices are the
	// gather/scatter endpoints (Gather on construction, Scatter to hand
	// the state back).
	lanes []*Trajectory
	rngs  []*rand.Rand

	// Population-carry state, threaded across ops and shots exactly as
	// the scalar executor threads its (PopCarry, carryQ) pair. The
	// carried qubit is shared — it is determined by the schedule alone,
	// never by lane data — while validity and values are per lane.
	carry  []PopCarry
	carryQ int

	// scratch is a single-lane register used to run dense/complex
	// channel selections through the scalar tail; its rng is never used —
	// all variates are drawn from the lane rngs before divergence.
	scratch *Trajectory

	// Per-op scratch, allocated once so the steady-state shot loop
	// performs no heap allocations. The 2L-sized slices use the
	// duplicated per-lane layout of the span primitives: lane l's value
	// sits at [2l] (and, when a SIMD kernel produced it, equally at
	// [2l+1]); readers always use slot 2l.
	rv, p0, p1   []float64    // saved draw + populations for tail lanes
	pp0, pp1     []float64    // 2L: population-pass results
	r0, r1       []float64    // 2L: flat-pass scale coefficients
	np0, np1     []float64    // 2L: fused-pass accumulators
	c01, c10     []complex128 // anti-diagonal coefficients per lane
	ckind        []uint8      // per-lane channel classification
	mk0, mk1     []uint64     // 2L: collapse keep-masks (lo half, hi half)
	cr01d, ci01d []float64    // 2L: anti-pass coefficient parts, duplicated
	cr10d, ci10d []float64    // 2L
	kp           []uint64     // 2L: anti-pass keep-masks
	lastP        []float64    // L: selected weights, batched reciprocal-root input
	rinv         []float64    // L: 1/√lastP, one vector call per op
	chosen       []int        // L: selected operator index per lane
	anti, slow   []int
	outc         []int
}

// Per-lane channel classification for one batched channel op.
const (
	ckDiag uint8 = iota // diagonal-real operator: coefficients in the flat pass
	ckNone              // no positive weight: state untouched, carry invalidated
	ckAnti              // anti-diagonal operator: strided per-lane apply
	ckTail              // dense or complex-diagonal: scalar tail on a gathered copy
)

// NewTrajBatch binds L scalar trajectory registers into one lockstep
// batch, gathering their amplitudes into the SoA block. The lanes must
// share a register size; each keeps its own PRNG and its own carry. The
// lanes' Psi slices are stale while the batch runs — call Scatter to
// write the batch state back before using them.
func NewTrajBatch(lanes []*Trajectory) *TrajBatch {
	if len(lanes) == 0 {
		panic("qphys: NewTrajBatch requires at least one lane")
	}
	nq := lanes[0].nq
	for _, t := range lanes {
		if t.nq != nq {
			panic(fmt.Sprintf("qphys: NewTrajBatch lanes disagree on register size (%d vs %d)", t.nq, nq))
		}
	}
	L := len(lanes)
	dim := 1 << nq
	b := &TrajBatch{
		nq:      nq,
		L:       L,
		amp:     make([]complex128, dim*L),
		lanes:   append([]*Trajectory(nil), lanes...),
		rngs:    make([]*rand.Rand, L),
		carry:   make([]PopCarry, L),
		carryQ:  -1,
		scratch: &Trajectory{nq: nq, Psi: make([]complex128, dim)},
		rv:      make([]float64, L),
		p0:      make([]float64, L),
		p1:      make([]float64, L),
		pp0:     make([]float64, 2*L),
		pp1:     make([]float64, 2*L),
		r0:      make([]float64, 2*L),
		r1:      make([]float64, 2*L),
		np0:     make([]float64, 2*L),
		np1:     make([]float64, 2*L),
		c01:     make([]complex128, L),
		c10:     make([]complex128, L),
		ckind:   make([]uint8, L),
		mk0:     make([]uint64, 2*L),
		mk1:     make([]uint64, 2*L),
		cr01d:   make([]float64, 2*L),
		ci01d:   make([]float64, 2*L),
		cr10d:   make([]float64, 2*L),
		ci10d:   make([]float64, 2*L),
		kp:      make([]uint64, 2*L),
		lastP:   make([]float64, L),
		rinv:    make([]float64, L),
		chosen:  make([]int, L),
		anti:    make([]int, L),
		slow:    make([]int, L),
		outc:    make([]int, L),
	}
	for l, t := range lanes {
		b.rngs[l] = t.rng
		for i, a := range t.Psi {
			b.amp[i*L+l] = a
		}
	}
	return b
}

// Lanes returns the number of member registers.
func (b *TrajBatch) Lanes() int { return b.L }

// Scatter writes the batch state back into every lane's Psi slice.
func (b *TrajBatch) Scatter() {
	for l, t := range b.lanes {
		for i := range t.Psi {
			t.Psi[i] = b.amp[i*b.L+l]
		}
	}
}

// gatherLane copies lane l's column into the scratch register.
func (b *TrajBatch) gatherLane(l int) {
	psi := b.scratch.Psi
	for i := range psi {
		psi[i] = b.amp[i*b.L+l]
	}
}

// scatterLane copies the scratch register back into lane l's column.
func (b *TrajBatch) scatterLane(l int) {
	psi := b.scratch.Psi
	for i := range psi {
		b.amp[i*b.L+l] = psi[i]
	}
}

// RunScheduleBatch executes one shot of a compiled schedule on every
// lane, in lockstep. It is the batched analogue of
// Trajectory.RunSchedule: the same op dispatch, the same carry
// threading (the carries persist on the batch across calls, so shot
// k's trailing carry prices shot k+1's first consumer — the schedule
// is circular), and per lane the same arithmetic in the same order.
// measure is invoked for every SchedMeasure step, per lane in lane
// order, and must complete that lane's measurement chain (it may
// consume that lane's PRNG).
func (b *TrajBatch) RunScheduleBatch(ops []SchedOp, measure func(lane, q, outcome int)) {
	for ii := range ops {
		o := &ops[ii]
		q := int(o.Q)
		switch o.Kind {
		case SchedChannel:
			b.channelBatch(o.Ch, q, int(o.CarryFor))
		case SchedApply1RD:
			if int(o.CarryFor) == q {
				b.apply1RDCarryBatch(o.U, q)
				b.carryQ = q
			} else {
				b.apply1RDBatch(o.U, q)
				for l := range b.carry {
					b.carry[l].Valid = false
				}
			}
		case SchedApply1:
			if int(o.CarryFor) == q {
				b.apply1CarryBatch(o.U, q)
				b.carryQ = q
			} else {
				b.apply1Batch(o.U, q)
				for l := range b.carry {
					b.carry[l].Valid = false
				}
			}
		case SchedCZ:
			b.negateBothBatch(q, int(o.Qb))
		case SchedApply2:
			b.apply2Batch(o.U, q, int(o.Qb))
			if !o.PhaseSafe {
				for l := range b.carry {
					b.carry[l].Valid = false
				}
			}
		case SchedMeasure:
			b.measureBatch(q, int(o.CarryFor) == q, measure)
		}
	}
}

// popPass accumulates qubit q's per-bit populations for every lane into
// pp0/pp1 — per lane, the exact addition order of the scalar population
// pass (lo amplitudes into p0 ascending, hi into p1 ascending; the two
// accumulators are independent, so splitting the scalar interleaved row
// loop into one lo pass and one hi pass is bitwise free).
func (b *TrajBatch) popPass(q, mask int) {
	pp0, pp1 := b.pp0, b.pp1
	for i := range pp0 {
		pp0[i], pp1[i] = 0, 0
	}
	spanAccBlocks(b.amp, pp0, pp1, mask*b.L)
}

// popPassLane recomputes lane l's populations alone, striding over its
// column — the lazy form of popPass for the lanes whose own history
// (an anti jump with a cross-qubit carry target, a dense fallback)
// invalidated their carry while their siblings kept theirs. Identical
// addition order to the scalar pass.
func (b *TrajBatch) popPassLane(l, mask int) {
	L := b.L
	amp := b.amp
	mL := mask * L
	dim := 1 << b.nq
	var p0, p1 float64
	for base := 0; base < dim; base += mask << 1 {
		for i := base; i < base+mask; i++ {
			p := i*L + l
			a0, a1 := amp[p], amp[p+mL]
			p0 += real(a0)*real(a0) + imag(a0)*imag(a0)
			p1 += real(a1)*real(a1) + imag(a1)*imag(a1)
		}
	}
	b.pp0[2*l], b.pp1[2*l] = p0, p1
}

// probExcitedLane is ProbExcited for lane l alone, striding its column.
func (b *TrajBatch) probExcitedLane(l, mask int) {
	L := b.L
	amp := b.amp
	dim := 1 << b.nq
	var p float64
	for base := mask; base < dim; base += mask << 1 {
		for i := base; i < base+mask; i++ {
			a := amp[i*L+l]
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	b.pp1[2*l] = clampProb(p)
}

// probExcitedBatch fills pp1 with each lane's clamped |1⟩ population of
// qubit q — per lane, ProbExcited's exact result: the full population
// pass accumulates the hi amplitudes into pp1 in the same ascending
// order as ProbExcited's hi-only walk (pp0 rides along unused), and the
// clamp matches.
func (b *TrajBatch) probExcitedBatch(q, mask int) {
	b.popPass(q, mask)
	pp1 := b.pp1
	for l := 0; l < b.L; l++ {
		pp1[2*l] = clampProb(pp1[2*l])
	}
}

// channelBatch is the batched SchedChannel step: per lane the same
// variate draw, population sourcing, and operator selection as the
// scalar executor, via the shared pricing helper. Lanes whose selection
// is a diagonal operator with real coefficients — the no-jump branch
// and dephasing jumps, i.e. almost every draw — are applied in one
// vectorized flat pass with per-lane coefficients (including the fused
// carry pass when the schedule wants one); lanes that drew an
// anti-diagonal jump run the scalar tail's anti kernel strided over
// their own column; dense/complex selections gather their column and
// run the full scalar tail. Lanes outside the flat pass are scaled by
// an exact 1.0 there (a bitwise no-op).
func (b *TrajBatch) channelBatch(ct *ChannelTable, q, nextQ int) {
	L := b.L
	amp := b.amp
	mask := 1 << (b.nq - 1 - q)
	mL := mask * L

	// Populations: a full batched pass when the schedule broke the carry
	// chain for every lane; when only some lanes' own history (an anti
	// jump with a cross-qubit carry target, a dense fallback)
	// invalidated theirs, the cheaper of a lazy per-lane strided pass
	// and one whole-block SIMD pass that serves every invalid lane at
	// once. Valid lanes read their carry, not the pass output, so the
	// full pass recomputing their slots is harmless; invalid lanes see
	// the same sums either way (independent per-lane accumulators in
	// the same ascending order), so the choice is pure scheduling.
	if b.carryQ != q {
		b.popPass(q, mask)
	} else {
		nInv := 0
		for l := 0; l < L; l++ {
			if !b.carry[l].Valid {
				nInv++
			}
		}
		if 2*nInv > L {
			b.popPass(q, mask)
		} else if nInv > 0 {
			for l := 0; l < L; l++ {
				if !b.carry[l].Valid {
					b.popPassLane(l, mask)
				}
			}
		}
	}

	// One pass per lane: draw the variate, source the populations
	// (carry or pass — the same precedence as the scalar executor),
	// select the operator (the inline check is priceChannel's first
	// iteration, kept inline to spare the call for the common draw),
	// and classify the application.
	fastOK := ct.fkind != chanDense
	r0, r1 := b.r0, b.r1
	rngs, carry, ckind := b.rngs, b.carry, b.ckind
	pp0, pp1 := b.pp0, b.pp1
	lastPs, chosens := b.lastP, b.chosen
	carryHit := b.carryQ == q
	nDiag, nAnti, nTail := 0, 0, 0
	for l := 0; l < L; l++ {
		rv := rngs[l].Float64()
		var pl0, pl1 float64
		if carryHit && carry[l].Valid {
			pl0, pl1 = carry[l].P0, carry[l].P1
		} else {
			pl0, pl1 = pp0[2*l], pp1[2*l]
		}
		var chosen int
		var lastP float64
		if fp := ct.fw0*pl0 + ct.fw1*pl1; fastOK && rv < fp {
			chosen, lastP = 0, fp
		} else {
			chosen, lastP = priceChannel(ct, pl0, pl1, rv)
		}
		switch {
		case chosen >= 0 && ct.kind[chosen] == chanDiag && ct.realc[chosen]:
			ckind[l] = ckDiag
			nDiag++
		case chosen >= 0 && ct.kind[chosen] == chanAnti:
			ckind[l] = ckAnti
			b.anti[nAnti] = l
			nAnti++
		case chosen == chanChoseNone:
			ckind[l] = ckNone
			lastP = 1
		default:
			// Dense or complex-diagonal: the scalar tail on a gathered
			// copy with the saved (populations, variate) reproduces the
			// scalar selection and application bit for bit.
			b.rv[l], b.p0[l], b.p1[l] = rv, pl0, pl1
			ckind[l] = ckTail
			b.slow[nTail] = l
			nTail++
			lastP = 1
		}
		lastPs[l] = lastP
		chosens[l] = chosen
	}
	// One vector reciprocal-root serves every selected lane; each
	// element is bit-identical to the scalar 1/√lastP (correctly
	// rounded VSQRTPD/VDIVPD), so deferring it out of the selection
	// loop changes no bytes — it only replaces L serial SQRTSD+DIVSD
	// chains with one vector op. Unselected lanes were pinned to 1.
	recipSqrtVec(b.rinv, lastPs)
	for l := 0; l < L; l++ {
		switch ckind[l] {
		case ckDiag:
			rinv := b.rinv[l]
			chosen := chosens[l]
			cr0, cr1 := real(ct.e0[chosen])*rinv, real(ct.e1[chosen])*rinv
			r0[2*l], r0[2*l+1] = cr0, cr0
			r1[2*l], r1[2*l+1] = cr1, cr1
		case ckAnti:
			inv := complex(b.rinv[l], 0)
			chosen := chosens[l]
			b.c01[l], b.c10[l] = ct.e0[chosen]*inv, ct.e1[chosen]*inv
			r0[2*l], r0[2*l+1], r1[2*l], r1[2*l+1] = 1, 1, 1, 1
		default:
			// Coefficient 1.0 makes the flat pass a bitwise no-op for
			// this lane; the scalar path applies nothing here (a none
			// selection drops the carry, tail lanes run the scalar
			// tail below on their saved inputs).
			r0[2*l], r0[2*l+1], r1[2*l], r1[2*l+1] = 1, 1, 1, 1
		}
	}
	b.carryQ = nextQ

	if nDiag > 0 {
		switch {
		case nextQ == q:
			// Fused apply + same-qubit population pass: coefficient and
			// accumulator pairs both swap at q's half-block period. Per
			// lane, lo amplitudes feed p0 and hi feed p1, each ascending
			// — the two accumulators are independent, so the interleaved
			// scalar order and the block order are bitwise the same sums.
			np0, np1 := b.np0, b.np1
			for i := range np0 {
				np0[i], np1[i] = 0, 0
			}
			spanScaleAccBlocks(amp, r0, r1, np0, np1, mL, mL)
		case nextQ >= 0:
			// Fused apply + other-qubit population pass: the coefficient
			// pair swaps at q's period, the accumulator pair at nextQ's —
			// one whole-block walk covers all three mask-nesting
			// sub-cases of the scalar kernel, visiting every index in
			// globally ascending order so each accumulator's addition
			// order matches a standalone pass.
			nmask := 1 << (b.nq - 1 - nextQ)
			np0, np1 := b.np0, b.np1
			for i := range np0 {
				np0[i], np1[i] = 0, 0
			}
			spanScaleAccBlocks(amp, r0, r1, np0, np1, mL, nmask*L)
		default:
			spanScaleBlocks(amp, r0, r1, mL)
		}
	}

	// Carry writeback for the flat-pass lanes; anti and tail lanes set
	// their own below.
	if nextQ >= 0 {
		np0, np1 := b.np0, b.np1
		for l := 0; l < L; l++ {
			switch ckind[l] {
			case ckDiag:
				carry[l] = PopCarry{P0: np0[2*l], P1: np1[2*l], Valid: true}
			case ckNone:
				carry[l] = PopCarry{}
			}
		}
	} else {
		for l := 0; l < L; l++ {
			if k := ckind[l]; k == ckDiag || k == ckNone {
				carry[l] = PopCarry{}
			}
		}
	}

	// Anti lanes: one whole-block SIMD pass when enough lanes jumped at
	// once to amortize its fixed cost (coefficient fill plus touching
	// every lane's column), strided per-lane walks otherwise — the walk
	// touches only the jumping lane's cache lines, so it wins for
	// sparse jumps. Both produce identical bytes per anti lane.
	if nAnti > 0 {
		if useSIMD && L&1 == 0 && 2*nAnti > L {
			b.antiApplyBatch(q, mask, nextQ)
		} else {
			for s := 0; s < nAnti; s++ {
				b.antiApplyLane(b.anti[s], q, mask, nextQ)
			}
		}
	}
	for s := 0; s < nTail; s++ {
		l := b.slow[s]
		b.gatherLane(l)
		b.carry[l] = b.scratch.applyChannelSampled(ct, q, mask, b.p0[l], b.p1[l], b.rv[l], nextQ)
		b.scatterLane(l)
	}
}

// antiApplyBatch applies every anti-classified lane's jump operator in
// one whole-block SIMD pass instead of per-lane strided walks: anti
// lanes get zero keep-masks and their duplicated coefficient parts,
// every other lane gets an all-ones keep-mask that passes its
// amplitude bits through the blend untouched. Per anti lane the pass
// reproduces antiApplyLane's products and accumulation order exactly
// (the kernels form the complex products with the compiler's own
// rounding sequence); np0/np1 slots of non-anti lanes come back
// unspecified and are not read. Called only when the SIMD kernels are
// live — the Go reference body would walk L columns to serve one.
func (b *TrajBatch) antiApplyBatch(q, mask, nextQ int) {
	L := b.L
	cr01, ci01, cr10, ci10 := b.cr01d, b.ci01d, b.cr10d, b.ci10d
	kp := b.kp
	np0, np1 := b.np0, b.np1
	ckind := b.ckind
	for l := 0; l < L; l++ {
		if ckind[l] == ckAnti {
			kp[2*l], kp[2*l+1] = 0, 0
			c01, c10 := b.c01[l], b.c10[l]
			cr01[2*l], cr01[2*l+1] = real(c01), real(c01)
			ci01[2*l], ci01[2*l+1] = imag(c01), imag(c01)
			cr10[2*l], cr10[2*l+1] = real(c10), real(c10)
			ci10[2*l], ci10[2*l+1] = imag(c10), imag(c10)
			np0[2*l], np0[2*l+1] = 0, 0
			np1[2*l], np1[2*l+1] = 0, 0
		} else {
			kp[2*l], kp[2*l+1] = ^uint64(0), ^uint64(0)
		}
	}
	spanAntiAccBlocks(b.amp, cr01, ci01, cr10, ci10, kp, np0, np1, mask*L)
	for l := 0; l < L; l++ {
		if ckind[l] != ckAnti {
			continue
		}
		if nextQ == q {
			b.carry[l] = PopCarry{P0: np0[2*l], P1: np1[2*l], Valid: true}
		} else {
			b.carry[l] = PopCarry{}
		}
	}
}

// antiApplyLane applies lane l's chosen anti-diagonal operator to its
// strided column — the scalar tail's anti kernel verbatim on the
// lane-minor layout, fused same-qubit carry included.
func (b *TrajBatch) antiApplyLane(l, q, mask, nextQ int) {
	L := b.L
	amp := b.amp
	mL := mask * L
	dim := 1 << b.nq
	c01, c10 := b.c01[l], b.c10[l]
	if nextQ == q {
		// An anti-diagonal operator swaps the halves, so the pair loop's
		// new lo values feed p0 ascending and new hi values feed p1
		// ascending — the same-qubit carry stays exact.
		var np0, np1 float64
		for base := 0; base < dim; base += mask << 1 {
			for i := base; i < base+mask; i++ {
				p := i*L + l
				v0, v1 := c01*amp[p+mL], c10*amp[p]
				amp[p], amp[p+mL] = v0, v1
				np0 += real(v0)*real(v0) + imag(v0)*imag(v0)
				np1 += real(v1)*real(v1) + imag(v1)*imag(v1)
			}
		}
		b.carry[l] = PopCarry{P0: np0, P1: np1, Valid: true}
		return
	}
	for base := 0; base < dim; base += mask << 1 {
		for i := base; i < base+mask; i++ {
			p := i*L + l
			amp[p], amp[p+mL] = c01*amp[p+mL], c10*amp[p]
		}
	}
	b.carry[l] = PopCarry{}
}

// apply1Batch is Apply1 over every lane: the matrix is uniform across
// lanes, so the kernel is exactly the scalar pair loop over
// L-times-longer contiguous halves — no lane bookkeeping at all.
func (b *TrajBatch) apply1Batch(u Matrix, q int) {
	L := b.L
	amp := b.amp
	mask := 1 << (b.nq - 1 - q)
	mL := mask * L
	dim := 1 << b.nq
	u00, u01, u10, u11 := u.Data[0], u.Data[1], u.Data[2], u.Data[3]
	for base := 0; base < dim; base += mask << 1 {
		s := base * L
		lo := amp[s : s+mL : s+mL]
		hi := amp[s+mL : s+mL+mL : s+mL+mL]
		for j, a0 := range lo {
			a1 := hi[j]
			lo[j] = u00*a0 + u01*a1
			hi[j] = u10*a0 + u11*a1
		}
	}
}

// apply1CarryBatch is Apply1Carry per lane: the same span update as
// apply1Batch, plus each lane's new populations accumulated in
// ascending index order via a wrapped lane counter.
func (b *TrajBatch) apply1CarryBatch(u Matrix, q int) {
	L := b.L
	amp := b.amp
	mask := 1 << (b.nq - 1 - q)
	mL := mask * L
	dim := 1 << b.nq
	u00, u01, u10, u11 := u.Data[0], u.Data[1], u.Data[2], u.Data[3]
	np0, np1 := b.np0, b.np1
	for i := range np0 {
		np0[i], np1[i] = 0, 0
	}
	for base := 0; base < dim; base += mask << 1 {
		s := base * L
		lo := amp[s : s+mL : s+mL]
		hi := amp[s+mL : s+mL+mL : s+mL+mL]
		k := 0
		for j, a0 := range lo {
			a1 := hi[j]
			v0 := u00*a0 + u01*a1
			v1 := u10*a0 + u11*a1
			lo[j] = v0
			hi[j] = v1
			np0[k] += real(v0)*real(v0) + imag(v0)*imag(v0)
			np1[k] += real(v1)*real(v1) + imag(v1)*imag(v1)
			if k += 2; k == 2*L {
				k = 0
			}
		}
	}
	for l := 0; l < L; l++ {
		b.carry[l] = PopCarry{P0: np0[2*l], P1: np1[2*l], Valid: true}
	}
}

// apply1RDBatch is Apply1RD over flat spans (uniform real-diagonal
// matrix, no lane bookkeeping).
func (b *TrajBatch) apply1RDBatch(u Matrix, q int) {
	L := b.L
	amp := b.amp
	mask := 1 << (b.nq - 1 - q)
	mL := mask * L
	r00, r11 := real(u.Data[0]), real(u.Data[3])
	u01, u10 := u.Data[1], u.Data[2]
	spanApply1RDBlocks(amp, mL, r00, r11, u01, u10)
}

// apply1RDCarryBatch is Apply1RDCarry per lane: the span update followed
// by per-lane accumulation of the stored values. The scalar kernel
// interleaves the two accumulators per row; they are independent, so
// accumulating lo then hi per block is bitwise identical (the stored
// amplitude is the exact register value the scalar pass squared).
func (b *TrajBatch) apply1RDCarryBatch(u Matrix, q int) {
	L := b.L
	amp := b.amp
	mask := 1 << (b.nq - 1 - q)
	mL := mask * L
	r00, r11 := real(u.Data[0]), real(u.Data[3])
	u01, u10 := u.Data[1], u.Data[2]
	np0, np1 := b.np0, b.np1
	for i := range np0 {
		np0[i], np1[i] = 0, 0
	}
	spanApply1RDBlocks(amp, mL, r00, r11, u01, u10)
	spanAccBlocks(amp, np0, np1, mL)
	for l := 0; l < L; l++ {
		b.carry[l] = PopCarry{P0: np0[2*l], P1: np1[2*l], Valid: true}
	}
}

// negateBothBatch is NegateBoth over every lane (negation is exact, so
// lane order is immaterial).
func (b *TrajBatch) negateBothBatch(qa, qb int) {
	L := b.L
	hi := 1 << (b.nq - 1 - qa)
	lo := 1 << (b.nq - 1 - qb)
	if lo > hi {
		hi, lo = lo, hi
	}
	spanNegBothBlocks(b.amp, hi*L, lo*L)
}

// apply2Batch is Apply2 with the lane loop innermost: the diagonal
// fast path multiplies each touched group's rows, the dense path runs
// the 4-amplitude block per lane. Identical arithmetic to the scalar
// kernel per lane.
func (b *TrajBatch) apply2Batch(u Matrix, qa, qb int) {
	L := b.L
	amp := b.amp
	ma := 1 << (b.nq - 1 - qa)
	mb := 1 << (b.nq - 1 - qb)
	dim := 1 << b.nq
	if diag2(u) {
		rest := (dim - 1) &^ (ma | mb)
		for s, fixed := range [4]int{0, mb, ma, ma | mb} {
			d := u.Data[s*4+s]
			if d == 1 {
				continue
			}
			r := 0
			for {
				row := amp[(r|fixed)*L : (r|fixed)*L+L : (r|fixed)*L+L]
				for l := 0; l < L; l++ {
					row[l] *= d
				}
				if r == rest {
					break
				}
				r = (r - rest) & rest
			}
		}
		return
	}
	both := ma | mb
	for base := 0; base < dim; base++ {
		if base&both != 0 {
			continue
		}
		o0 := base * L
		o1 := (base | mb) * L
		o2 := (base | ma) * L
		o3 := (base | ma | mb) * L
		r0s := amp[o0 : o0+L : o0+L]
		r1s := amp[o1 : o1+L : o1+L]
		r2s := amp[o2 : o2+L : o2+L]
		r3s := amp[o3 : o3+L : o3+L]
		for l, a0 := range r0s {
			a1, a2, a3 := r1s[l], r2s[l], r3s[l]
			r0s[l] = u.Data[0]*a0 + u.Data[1]*a1 + u.Data[2]*a2 + u.Data[3]*a3
			r1s[l] = u.Data[4]*a0 + u.Data[5]*a1 + u.Data[6]*a2 + u.Data[7]*a3
			r2s[l] = u.Data[8]*a0 + u.Data[9]*a1 + u.Data[10]*a2 + u.Data[11]*a3
			r3s[l] = u.Data[12]*a0 + u.Data[13]*a1 + u.Data[14]*a2 + u.Data[15]*a3
		}
	}
}

// measureBatch is the batched SchedMeasure step: per lane the same
// population sourcing, clamp, projection draw, collapse arithmetic, and
// degenerate zero-probability reset as the scalar executor. The
// projection draws happen for every lane in lane order first, then the
// collapse runs strided per lane (outcome branch hoisted out of the
// loop, register accumulator — MeasureCarry's exact loops on the
// lane-minor layout), then the measure callback fires per lane in lane
// order (each callback may consume its own lane's PRNG — the per-lane
// draw order stays projection → callback, as in scalar execution).
func (b *TrajBatch) measureBatch(q int, wantCarry bool, measure func(lane, q, outcome int)) {
	L := b.L
	amp := b.amp
	mask := 1 << (b.nq - 1 - q)
	mL := mask * L

	// Population sourcing mirrors channelBatch, including the strided
	// vs whole-block choice for partially broken carry chains.
	if b.carryQ != q {
		b.probExcitedBatch(q, mask)
	} else {
		nInv := 0
		for l := 0; l < L; l++ {
			if !b.carry[l].Valid {
				nInv++
			}
		}
		if 2*nInv > L {
			b.probExcitedBatch(q, mask)
		} else if nInv > 0 {
			for l := 0; l < L; l++ {
				if !b.carry[l].Valid {
					b.probExcitedLane(l, mask)
				}
			}
		}
	}

	// Per lane in lane order: source p1, clamp, draw the projection
	// variate, classify. All lane draws happen before any amplitude
	// work; per lane the draw still precedes its own collapse, as in
	// the scalar executor.
	carry, rngs, outc, ckind := b.carry, b.rngs, b.outc, b.ckind
	cc := b.r0
	mk0, mk1 := b.mk0, b.mk1
	lastPs := b.lastP
	carryHit := b.carryQ == q
	for l := 0; l < L; l++ {
		var p1 float64
		if carryHit && carry[l].Valid {
			p1 = carry[l].P1
		} else {
			p1 = b.pp1[2*l]
		}
		p1 = clampProb(p1)
		outcome := 0
		p := 1 - p1
		if rngs[l].Float64() < p1 {
			outcome = 1
			p = p1
		}
		outc[l] = outcome
		if p < 1e-15 {
			ckind[l] = 1
			p = 1
		} else {
			ckind[l] = 0
		}
		lastPs[l] = p
	}
	// Batched reciprocal-roots, bit-identical per element to the scalar
	// 1/√p (degenerate lanes were pinned to 1 and ignore theirs).
	recipSqrtVec(b.rinv, lastPs)
	for l := 0; l < L; l++ {
		if ckind[l] != 0 {
			// Degenerate projection: the scalar path resets to the basis
			// state consistent with the outcome. An all-zero keep-mask
			// in both halves makes the batched pass write the reset's
			// exact +0 everywhere; the basis amplitude is restored after
			// the pass. Bitwise-equal to the scalar Reset +
			// Apply1(PauliX), which produces exact (+0,+0) everywhere
			// and 1+0i at the flipped index.
			cc[2*l], cc[2*l+1] = 0, 0
			mk0[2*l], mk0[2*l+1] = 0, 0
			mk1[2*l], mk1[2*l+1] = 0, 0
			continue
		}
		rinv := b.rinv[l]
		cc[2*l], cc[2*l+1] = rinv, rinv
		if outc[l] == 0 {
			mk0[2*l], mk0[2*l+1] = ^uint64(0), ^uint64(0)
			mk1[2*l], mk1[2*l+1] = 0, 0
		} else {
			mk0[2*l], mk0[2*l+1] = 0, 0
			mk1[2*l], mk1[2*l+1] = ^uint64(0), ^uint64(0)
		}
	}

	// One contiguous masked pass collapses every lane: the kept half is
	// scaled by rinv (the scalar multiply, bit for bit), the discarded
	// half becomes the scalar's literal +0, and each lane's new kept
	// population accumulates in ascending index order.
	np0 := b.np0
	for i := range np0 {
		np0[i] = 0
	}
	spanCollapseBlocks(amp, cc, mk0, mk1, np0, mL)

	for l := 0; l < L; l++ {
		if ckind[l] != 0 {
			idx := 0
			if outc[l] == 1 {
				idx = mask
			}
			amp[idx*L+l] = 1
			carry[l] = PopCarry{}
			continue
		}
		switch {
		case !wantCarry:
			carry[l] = PopCarry{}
		case outc[l] == 0:
			carry[l] = PopCarry{P0: np0[2*l], Valid: true}
		default:
			carry[l] = PopCarry{P1: np0[2*l], Valid: true}
		}
	}
	b.carryQ = q
	for l := 0; l < L; l++ {
		measure(l, q, outc[l])
	}
}
