package qphys

import "math/rand"

// State is the contract between the control machine (package core) and a
// quantum-state backend. The instruction pipeline only ever evolves the
// register through these operations, so backends with different
// cost/accuracy trade-offs are interchangeable:
//
//   - Density (O(4^n) memory) applies channels exactly: one run yields
//     ensemble averages, and the register may be mixed.
//   - Trajectory (O(2^n) memory) keeps a pure statevector and unwinds
//     each channel by sampling one Kraus operator, so per-shot results
//     are a Monte-Carlo sample that is exact in expectation.
//
// Contract notes shared by all implementations:
//
//   - Qubit 0 is the most significant bit of the basis index, and the
//     register starts in |0…0⟩.
//   - Apply1/Apply2/ApplyKraus1 must not allocate in steady state; they
//     are the per-gate hot path of every shot of every experiment.
//   - ApplyKraus1 takes a physical channel (Σ K†K = I). Backends that
//     sample (Trajectory) draw from the PRNG bound at construction, so a
//     fixed seed fixes the whole trajectory.
//   - Measure consumes exactly one variate from the supplied PRNG and
//     collapses the state, mirroring dispersive-readout back-action.
type State interface {
	// NumQubits returns the register size.
	NumQubits() int
	// Reset returns the register to |0…0⟩.
	Reset()
	// Apply1 applies a single-qubit unitary to qubit q in place.
	Apply1(u Matrix, q int)
	// Apply2 applies a two-qubit unitary to (qa, qb) in place; the basis
	// order matches Embed2 (qa is the high bit).
	Apply2(u Matrix, qa, qb int)
	// ApplyKraus1 applies a single-qubit channel to qubit q.
	ApplyKraus1(ops []Matrix, q int)
	// Measure projectively measures qubit q using rng and collapses the
	// state, returning the binary outcome.
	Measure(q int, rng *rand.Rand) int
	// ProbExcited returns P(|1⟩) for qubit q.
	ProbExcited(q int) float64
	// ExpectationZ returns ⟨Z⟩ for qubit q.
	ExpectationZ(q int) float64
	// Purity returns Tr(ρ²) of the represented state.
	Purity() float64
	// ReducedQubit returns the 2×2 reduced density matrix of qubit q
	// (diagnostic path; may allocate).
	ReducedQubit(q int) Matrix
}

var (
	_ State = (*Density)(nil)
	_ State = (*Trajectory)(nil)
)
