package qphys

// Per-lane bit-identity pins for the lockstep batched executor: every
// lane of a TrajBatch must produce exactly the amplitudes, measurement
// outcomes, carries, and PRNG stream position that running the same
// compiled schedule on that lane's scalar Trajectory would. The suite
// drives the same representative schedule as the scalar executor's
// pins (channels with fast and slow paths, dense Kraus fallbacks,
// rotating-frame unitaries with carry chains, CZ, dense two-qubit
// gates, measurements with and without carries) and compares under ==,
// plus targeted pins for the degenerate measurement reset and the
// zero-allocation steady state.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// batchTestSchedule is the representative compiled schedule the batch
// pins run: every op kind, carry chains (including the circular wrap),
// a dense channel that always takes the scalar fallback, and measures
// both carrying and not.
func batchTestSchedule() []SchedOp {
	chans := testChannels()
	deco := func(name string) *ChannelTable { return NewChannelTable(chans[name]) }
	x180 := REquator(0, math.Pi)
	return []SchedOp{
		{Kind: SchedChannel, Q: 0, Ch: deco("decoherence-huge"), CarryFor: -1},
		{Kind: SchedApply1RD, Q: 0, U: x180, CarryFor: 0},
		{Kind: SchedChannel, Q: 0, Ch: deco("decoherence-short"), CarryFor: 1},
		{Kind: SchedChannel, Q: 1, Ch: deco("decoherence-short"), CarryFor: 4},
		{Kind: SchedCZ, Q: 1, Qb: 0, U: CZ(), PhaseSafe: true},
		{Kind: SchedChannel, Q: 4, Ch: deco("decoherence-long"), CarryFor: -1},
		{Kind: SchedApply1, Q: 2, U: RZ(0.4).Mul(RX(0.3)), CarryFor: 2},
		{Kind: SchedChannel, Q: 2, Ch: deco("depolarizing"), CarryFor: 3},
		{Kind: SchedMeasure, Q: 3, CarryFor: 3},
		{Kind: SchedChannel, Q: 3, Ch: deco("decoherence-short"), CarryFor: -1},
		{Kind: SchedApply2, Q: 0, Qb: 2, U: Embedded2ForTest(), CarryFor: -1},
		{Kind: SchedChannel, Q: 1, Ch: deco("dense"), CarryFor: 1},
		{Kind: SchedMeasure, Q: 1, CarryFor: -1},
		{Kind: SchedChannel, Q: 2, Ch: deco("decoherence-long"), CarryFor: 0},
	}
}

// TestRunScheduleBatchMatchesScalarPerLane is the tentpole kernel pin:
// for every lane width, each lane of the batch must track its scalar
// RunSchedule twin bit for bit — amplitudes, outcomes, and PRNG
// position — across multiple shots with carries threading shot to shot.
func TestRunScheduleBatchMatchesScalarPerLane(t *testing.T) {
	const n, shots = 5, 4
	ops := batchTestSchedule()
	for _, L := range []int{1, 2, 3, 8} {
		for base := int64(1); base <= 6; base++ {
			refs := make([]*Trajectory, L)
			lanes := make([]*Trajectory, L)
			for l := 0; l < L; l++ {
				seed := base*100 + int64(l)
				refs[l] = randomTrajectory(n, seed)
				lanes[l] = randomTrajectory(n, seed)
			}
			b := NewTrajBatch(lanes)
			if b.Lanes() != L {
				t.Fatalf("Lanes() = %d, want %d", b.Lanes(), L)
			}

			refOut := make([][]int, L)
			carries := make([]PopCarry, L)
			carryQ := make([]int, L)
			for l := range carryQ {
				carryQ[l] = -1
			}
			batchOut := make([][]int, L)
			for shot := 0; shot < shots; shot++ {
				for l := 0; l < L; l++ {
					ll := l
					carries[l], carryQ[l] = refs[l].RunSchedule(ops, carries[l], carryQ[l], func(q, outcome int) {
						refOut[ll] = append(refOut[ll], outcome)
					})
				}
				b.RunScheduleBatch(ops, func(lane, q, outcome int) {
					batchOut[lane] = append(batchOut[lane], outcome)
				})
			}
			b.Scatter()

			for l := 0; l < L; l++ {
				ctx := fmt.Sprintf("L=%d base=%d lane=%d", L, base, l)
				if len(refOut[l]) != len(batchOut[l]) {
					t.Fatalf("%s: outcome counts differ: %d vs %d", ctx, len(refOut[l]), len(batchOut[l]))
				}
				for i := range refOut[l] {
					if refOut[l][i] != batchOut[l][i] {
						t.Fatalf("%s: outcome %d differs: %d vs %d", ctx, i, refOut[l][i], batchOut[l][i])
					}
				}
				samePsi(t, refs[l], lanes[l], ctx)
				sameRNG(t, refs[l], lanes[l], ctx)
			}
		}
	}
}

// fixedSource is a PRNG source returning a scripted Int63 stream —
// the lever that forces rand.Float64 to exact chosen values, which is
// the only way to reach the degenerate (p < 1e-15) measurement branch
// deterministically.
type fixedSource struct {
	vals []int64
	i    int
}

func (s *fixedSource) Int63() int64 {
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}

func (s *fixedSource) Seed(int64) {}

// TestMeasureBatchDegenerateMatchesScalar pins the degenerate
// projection: a lane whose drawn outcome has probability below 1e-15
// must reset to the outcome's basis state exactly as the scalar path
// (Reset + conditional PauliX) does — alongside a non-degenerate lane
// sharing the batch, in both the carrying and non-carrying forms.
func TestMeasureBatchDegenerateMatchesScalar(t *testing.T) {
	const n = 3
	const q = 1
	// Float64() = Int63()/2^63; 2^63-1024 is the largest Int63 value that
	// does not round up to 1.0 (which Float64 rejects and redraws),
	// yielding exactly 1-2^-53 — the largest float64 below 1.
	almostOne := int64(math.MaxInt64) - 1023
	cases := []struct {
		name string
		vals []int64 // scripted draws for the degenerate lane
		prep func(*Trajectory)
	}{
		{
			// p1 = 1 - O(1e-16): the draw lands above it, outcome 0 with
			// p0 < 1e-15 → degenerate reset to |0…0⟩.
			name: "outcome0",
			vals: []int64{almostOne},
			prep: func(tr *Trajectory) {
				for i := range tr.Psi {
					tr.Psi[i] = 0
				}
				a := math.Sqrt(1 - 1e-16)
				tr.Psi[1<<(n-1-q)] = complex(a, 0)
				tr.Psi[0] = complex(math.Sqrt(1-a*a), 0)
			},
		},
		{
			// p1 = 1e-18 > 0 with a zero draw: outcome 1 with p1 < 1e-15 →
			// degenerate reset to |0…0⟩ then X → the outcome-1 basis state.
			name: "outcome1",
			vals: []int64{0},
			prep: func(tr *Trajectory) {
				for i := range tr.Psi {
					tr.Psi[i] = 0
				}
				tr.Psi[0] = 1
				tr.Psi[1<<(n-1-q)] = 1e-9
			},
		},
	}
	for _, wantCarry := range []bool{false, true} {
		carryFor := int16(-1)
		if wantCarry {
			carryFor = q
		}
		ops := []SchedOp{{Kind: SchedMeasure, Q: q, CarryFor: carryFor}}
		for _, c := range cases {
			mk := func() []*Trajectory {
				deg := NewTrajectory(n, rand.New(&fixedSource{vals: c.vals}))
				c.prep(deg)
				return []*Trajectory{randomTrajectory(n, 77), deg}
			}
			refs, lanes := mk(), mk()
			var refOut, batchOut []int
			for l, r := range refs {
				ll := l
				r.RunSchedule(ops, PopCarry{}, -1, func(q, outcome int) {
					refOut = append(refOut, ll<<4|outcome)
				})
			}
			b := NewTrajBatch(lanes)
			b.RunScheduleBatch(ops, func(lane, q, outcome int) {
				batchOut = append(batchOut, lane<<4|outcome)
			})
			b.Scatter()
			ctx := fmt.Sprintf("%s wantCarry=%v", c.name, wantCarry)
			if len(refOut) != len(batchOut) {
				t.Fatalf("%s: outcome counts differ", ctx)
			}
			for i := range refOut {
				if refOut[i] != batchOut[i] {
					t.Fatalf("%s: outcome record %d differs: %x vs %x", ctx, i, refOut[i], batchOut[i])
				}
			}
			// The degenerate lane must land on an exact basis state: the
			// reset writes +0 everywhere and 1+0i at the outcome index.
			degOutcome := batchOut[1] & 1
			wantIdx := 0
			if degOutcome == 1 {
				wantIdx = 1 << (n - 1 - q)
			}
			for i, a := range lanes[1].Psi {
				want := complex128(0)
				if i == wantIdx {
					want = 1
				}
				if a != want {
					t.Fatalf("%s: degenerate lane Psi[%d] = %v, want %v", ctx, i, a, want)
				}
			}
			for l := range refs {
				samePsi(t, refs[l], lanes[l], fmt.Sprintf("%s lane=%d", ctx, l))
			}
		}
	}
}

// TestNewTrajBatchRejectsMismatchedLanes pins the constructor's
// self-checks: no lanes, or lanes of different register sizes, are
// programming errors.
func TestNewTrajBatchRejectsMismatchedLanes(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("empty", func() { NewTrajBatch(nil) })
	expectPanic("mismatched", func() {
		NewTrajBatch([]*Trajectory{randomTrajectory(2, 1), randomTrajectory(3, 1)})
	})
}

// TestRunScheduleBatchDoesNotAllocate pins the steady-state allocation
// discipline: after construction, a batched shot performs no heap
// allocations at any lane width (the scratch vectors are preallocated;
// divergent lanes reuse the single scratch register).
func TestRunScheduleBatchDoesNotAllocate(t *testing.T) {
	const n = 5
	ops := batchTestSchedule()
	for _, L := range []int{1, 4} {
		lanes := make([]*Trajectory, L)
		for l := range lanes {
			lanes[l] = randomTrajectory(n, int64(l+1))
		}
		b := NewTrajBatch(lanes)
		measure := func(lane, q, outcome int) {}
		allocs := testing.AllocsPerRun(100, func() {
			b.RunScheduleBatch(ops, measure)
		})
		if allocs != 0 {
			t.Fatalf("L=%d: RunScheduleBatch allocates %v times per shot, want 0", L, allocs)
		}
	}
}

// TestSpanAntiAccBlocksKernels locks the SIMD bodies of the batched
// anti pass to the pure-Go reference: for every even lane count
// (including the L=8 register-resident ZMM specialization when the
// host has it) and every qubit-mask period, random amplitudes and a
// random anti-lane subset must produce identical span bytes and
// identical accumulator slots for the anti lanes. Kept lanes'
// accumulator slots are unspecified and not compared.
func TestSpanAntiAccBlocksKernels(t *testing.T) {
	if !useSIMD {
		t.Skip("no SIMD on this host")
	}
	rng := rand.New(rand.NewSource(41))
	for _, L := range []int{2, 4, 8, 16} {
		for _, nq := range []int{1, 3, 5} {
			dim := 1 << nq
			for mask := 1; mask < dim; mask <<= 1 {
				span := make([]complex128, dim*L)
				for i := range span {
					span[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				ref := append([]complex128(nil), span...)
				cr01 := make([]float64, 2*L)
				ci01 := make([]float64, 2*L)
				cr10 := make([]float64, 2*L)
				ci10 := make([]float64, 2*L)
				kp := make([]uint64, 2*L)
				aA := make([]float64, 2*L)
				aB := make([]float64, 2*L)
				refA := make([]float64, 2*L)
				refB := make([]float64, 2*L)
				antiLane := make([]bool, L)
				for l := 0; l < L; l++ {
					if rng.Intn(2) == 0 {
						antiLane[l] = true
						cr01[2*l], cr01[2*l+1] = rng.NormFloat64(), 0
						cr01[2*l+1] = cr01[2*l]
						ci01[2*l], ci01[2*l+1] = rng.NormFloat64(), 0
						ci01[2*l+1] = ci01[2*l]
						cr10[2*l], cr10[2*l+1] = rng.NormFloat64(), 0
						cr10[2*l+1] = cr10[2*l]
						ci10[2*l], ci10[2*l+1] = rng.NormFloat64(), 0
						ci10[2*l+1] = ci10[2*l]
					} else {
						kp[2*l], kp[2*l+1] = ^uint64(0), ^uint64(0)
					}
				}
				simd512, simd := useSIMD512, useSIMD
				useSIMD512, useSIMD = false, false
				spanAntiAccBlocks(ref, cr01, ci01, cr10, ci10, kp, refA, refB, mask*L)
				useSIMD512, useSIMD = simd512, simd
				spanAntiAccBlocks(span, cr01, ci01, cr10, ci10, kp, aA, aB, mask*L)
				for i := range span {
					if span[i] != ref[i] {
						t.Fatalf("L=%d nq=%d mask=%d: span[%d] = %v, reference %v", L, nq, mask, i, span[i], ref[i])
					}
				}
				for l := 0; l < L; l++ {
					if antiLane[l] && (aA[2*l] != refA[2*l] || aB[2*l] != refB[2*l]) {
						t.Fatalf("L=%d nq=%d mask=%d lane %d: acc (%v,%v), reference (%v,%v)",
							L, nq, mask, l, aA[2*l], aB[2*l], refA[2*l], refB[2*l])
					}
				}
			}
		}
	}
}
