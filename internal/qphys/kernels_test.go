package qphys

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// The in-place kernels must match the dense Embed/Embed2 + Mul reference
// path to ≤1e-12 over random unitaries, random qubit indices, and
// register sizes n=1..5 — and must not allocate in steady state.

// randomUnitary returns a random n×n unitary via Gram-Schmidt on a
// Gaussian random complex matrix.
func randomUnitaryGS(n int, rng *rand.Rand) Matrix {
	m := NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			var dot complex128
			for i := 0; i < n; i++ {
				dot += cmplx.Conj(m.Data[i*n+k]) * m.Data[i*n+j]
			}
			for i := 0; i < n; i++ {
				m.Data[i*n+j] -= dot * m.Data[i*n+k]
			}
		}
		var norm float64
		for i := 0; i < n; i++ {
			v := m.Data[i*n+j]
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		inv := 1 / cmplx.Sqrt(complex(norm, 0))
		for i := 0; i < n; i++ {
			m.Data[i*n+j] *= inv
		}
	}
	return m
}

// randomDensityState fills d with a random physical state ρ = AA†/Tr(AA†).
func randomDensityState(d *Density, rng *rand.Rand) {
	a := NewMatrix(d.Rho.N)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	rho := a.Mul(a.Dagger())
	tr := rho.Trace()
	copy(d.Rho.Data, rho.Scale(1/tr).Data)
}

func TestRandomUnitaryGSIsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4} {
		for trial := 0; trial < 5; trial++ {
			if u := randomUnitaryGS(n, rng); !u.IsUnitary(1e-10) {
				t.Fatalf("randomUnitaryGS(%d) produced a non-unitary matrix", n)
			}
		}
	}
}

func TestApply1MatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 5; n++ {
		for trial := 0; trial < 8; trial++ {
			d := NewDensity(n)
			randomDensityState(d, rng)
			u := randomUnitaryGS(2, rng)
			q := rng.Intn(n)
			e := Embed(u, q, n)
			ref := e.Mul(d.Rho).Mul(e.Dagger())
			d.Apply1(u, q)
			if diff := d.Rho.MaxAbsDiff(ref); diff > 1e-12 {
				t.Fatalf("n=%d q=%d trial %d: Apply1 deviates from dense reference by %v", n, q, trial, diff)
			}
		}
	}
}

func TestApply2MatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 2; n <= 5; n++ {
		for trial := 0; trial < 8; trial++ {
			d := NewDensity(n)
			randomDensityState(d, rng)
			u := randomUnitaryGS(4, rng)
			qa := rng.Intn(n)
			qb := rng.Intn(n - 1)
			if qb >= qa {
				qb++
			}
			e := Embed2(u, qa, qb, n)
			ref := e.Mul(d.Rho).Mul(e.Dagger())
			d.Apply2(u, qa, qb)
			if diff := d.Rho.MaxAbsDiff(ref); diff > 1e-12 {
				t.Fatalf("n=%d (%d,%d) trial %d: Apply2 deviates from dense reference by %v", n, qa, qb, trial, diff)
			}
		}
	}
}

func TestApply2MatchesCNOTTruthTable(t *testing.T) {
	// Sanity-check the (qa, qb) basis convention against Embed2's: CNOT
	// with control qa flips qb iff qa is set.
	d := NewDensity(3)
	d.Apply1(PauliX(), 2) // |001⟩
	d.Apply2(CNOT(), 2, 0)
	if p := d.ProbExcited(0); p < 0.999 {
		t.Errorf("control q2 did not flip target q0: P(q0=1) = %v", p)
	}
}

func TestApplyKraus1MatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 1; n <= 5; n++ {
		for trial := 0; trial < 8; trial++ {
			d := NewDensity(n)
			randomDensityState(d, rng)
			q := rng.Intn(n)
			// Arbitrary operator sets exercise the kernel's linearity; a
			// physical CPTP set is a special case.
			ops := make([]Matrix, 1+rng.Intn(8))
			for i := range ops {
				ops[i] = NewMatrix(2)
				for e := range ops[i].Data {
					ops[i].Data[e] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
			}
			ref := NewMatrix(d.Rho.N)
			for _, k := range ops {
				lifted := Embed(k, q, n)
				ref = ref.Add(lifted.Mul(d.Rho).Mul(lifted.Dagger()))
			}
			d.ApplyKraus1(ops, q)
			if diff := d.Rho.MaxAbsDiff(ref); diff > 1e-12 {
				t.Fatalf("n=%d q=%d trial %d (%d ops): ApplyKraus1 deviates by %v", n, q, trial, len(ops), diff)
			}
		}
	}
}

func TestApplyKraus1PhysicalChannelPreservesTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDensity(4)
	randomDensityState(d, rng)
	for q := 0; q < 4; q++ {
		d.ApplyKraus1(DecoherenceChannel(50e-9, DefaultQubitParams()), q)
	}
	if tr := d.Trace(); tr < 1-1e-10 || tr > 1+1e-10 {
		t.Errorf("trace after decoherence = %v, want 1", tr)
	}
}

func TestApplyScratchPathMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 1; n <= 4; n++ {
		d := NewDensity(n)
		randomDensityState(d, rng)
		u := randomUnitaryGS(d.Rho.N, rng)
		ref := u.Mul(d.Rho).Mul(u.Dagger())
		d.Apply(u)
		if diff := d.Rho.MaxAbsDiff(ref); diff > 1e-12 {
			t.Fatalf("n=%d: Apply deviates from dense reference by %v", n, diff)
		}
		// Repeated application must reuse the scratch buffers.
		d.Apply(u.Dagger())
	}
}

func TestApplyKrausScratchPathMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDensity(3)
	randomDensityState(d, rng)
	dim := d.Rho.N
	ops := []Matrix{randomUnitaryGS(dim, rng).Scale(complex(0.8, 0)), randomUnitaryGS(dim, rng).Scale(complex(0.6, 0))}
	ref := NewMatrix(dim)
	for _, k := range ops {
		ref = ref.Add(k.Mul(d.Rho).Mul(k.Dagger()))
	}
	d.ApplyKraus(ops)
	if diff := d.Rho.MaxAbsDiff(ref); diff > 1e-12 {
		t.Fatalf("ApplyKraus deviates from dense reference by %v", diff)
	}
}

func TestKernelsDoNotAllocate(t *testing.T) {
	d := NewDensity(3)
	u := RX(0.3)
	cz := CZ()
	ops := DecoherenceChannel(20e-9, DefaultQubitParams())
	if allocs := testing.AllocsPerRun(50, func() { d.Apply1(u, 1) }); allocs != 0 {
		t.Errorf("Apply1 allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { d.Apply2(cz, 0, 2) }); allocs != 0 {
		t.Errorf("Apply2 allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { d.ApplyKraus1(ops, 1) }); allocs != 0 {
		t.Errorf("ApplyKraus1 allocates %v per run, want 0", allocs)
	}
	// The dense full-register paths may allocate scratch once, then reuse.
	full := Identity(d.Rho.N)
	d.Apply(full) // warm the scratch buffers
	if allocs := testing.AllocsPerRun(50, func() { d.Apply(full) }); allocs != 0 {
		t.Errorf("Apply allocates %v per run after warm-up, want 0", allocs)
	}
}
