package qphys

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func TestIdentityMul(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		id := Identity(n)
		m := randomMatrix(rand.New(rand.NewSource(int64(n))), n)
		if got := id.Mul(m); got.MaxAbsDiff(m) > tol {
			t.Errorf("I·M != M for n=%d", n)
		}
		if got := m.Mul(id); got.MaxAbsDiff(m) > tol {
			t.Errorf("M·I != M for n=%d", n)
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Identity(2).Mul(Identity(4))
}

func TestFromRowsShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([]complex128{1, 2}, []complex128{3})
}

func TestDaggerInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, 4)
	if m.Dagger().Dagger().MaxAbsDiff(m) > tol {
		t.Error("(M†)† != M")
	}
}

func TestKronDimensionsAndIdentity(t *testing.T) {
	a := Identity(2)
	b := Identity(4)
	k := a.Kron(b)
	if k.N != 8 {
		t.Fatalf("Kron dim = %d, want 8", k.N)
	}
	if k.MaxAbsDiff(Identity(8)) > tol {
		t.Error("I2 ⊗ I4 != I8")
	}
}

func TestKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	rng := rand.New(rand.NewSource(3))
	a, b := randomMatrix(rng, 2), randomMatrix(rng, 2)
	c, d := randomMatrix(rng, 2), randomMatrix(rng, 2)
	lhs := a.Kron(b).Mul(c.Kron(d))
	rhs := a.Mul(c).Kron(b.Mul(d))
	if lhs.MaxAbsDiff(rhs) > tol {
		t.Error("Kron mixed-product identity violated")
	}
}

func TestTraceLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := randomMatrix(rng, 3), randomMatrix(rng, 3)
	if cmplx.Abs(a.Add(b).Trace()-(a.Trace()+b.Trace())) > tol {
		t.Error("trace not linear")
	}
}

func TestTraceCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, b := randomMatrix(rng, 4), randomMatrix(rng, 4)
	if cmplx.Abs(a.Mul(b).Trace()-b.Mul(a).Trace()) > 1e-8 {
		t.Error("Tr(AB) != Tr(BA)")
	}
}

func TestEqualUpToGlobalPhase(t *testing.T) {
	x := PauliX()
	phased := x.Scale(cmplx.Exp(0.7i))
	if !x.EqualUpToGlobalPhase(phased, tol) {
		t.Error("X and e^{0.7i}X should be equal up to phase")
	}
	if x.EqualUpToGlobalPhase(PauliY(), tol) {
		t.Error("X and Y must not be equal up to phase")
	}
}

func TestScaleSub(t *testing.T) {
	a := Identity(2).Scale(3)
	b := a.Sub(Identity(2).Scale(1))
	if b.MaxAbsDiff(Identity(2).Scale(2)) > tol {
		t.Error("3I - I != 2I")
	}
}

// Property: (AB)† = B†A† for random 2x2 matrices.
func TestPropertyDaggerAntihomomorphism(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64) bool {
		a := FromRows(
			[]complex128{complex(a0, a1), complex(a2, a3)},
			[]complex128{complex(a3, a0), complex(a1, a2)},
		)
		b := FromRows(
			[]complex128{complex(b0, b1), complex(b2, b3)},
			[]complex128{complex(b3, b0), complex(b1, b2)},
		)
		lhs := a.Mul(b).Dagger()
		rhs := b.Dagger().Mul(a.Dagger())
		return lhs.MaxAbsDiff(rhs) < 1e-6*(1+absMax(a)+absMax(b))*(1+absMax(a)+absMax(b))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func absMax(m Matrix) float64 {
	var v float64
	for _, x := range m.Data {
		if a := cmplx.Abs(x); a > v {
			v = a
		}
	}
	return v
}

func randomMatrix(rng *rand.Rand, n int) Matrix {
	m := NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

// randomUnitary builds a Haar-ish random unitary from random rotations.
func randomUnitary(rng *rand.Rand, nq int) Matrix {
	u := Identity(1 << nq)
	for i := 0; i < 4; i++ {
		for q := 0; q < nq; q++ {
			g := REquator(rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi)
			u = Embed(g, q, nq).Mul(u)
		}
	}
	return u
}
