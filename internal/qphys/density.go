package qphys

import (
	"fmt"
	"math"
	"math/rand"
)

// Density is the density matrix of an n-qubit register. Qubit 0 is the
// most significant bit of the basis index. The register starts in |0…0⟩.
// It is the exact backend: channels are applied as full Kraus sums, so a
// single run reproduces ensemble averages, at O(4^n) memory.
type Density struct {
	nq  int
	Rho Matrix
	// scratchA/scratchB are reusable full-register buffers for the dense
	// Apply/ApplyKraus paths, allocated lazily and kept across calls so
	// steady-state evolution does not touch the heap. The single- and
	// two-qubit kernels in kernels.go update ρ block-locally and need no
	// scratch at all.
	scratchA, scratchB Matrix
}

// NewDensity returns an n-qubit register initialized to |0…0⟩⟨0…0|.
func NewDensity(n int) *Density {
	if n < 1 || n > 10 {
		panic(fmt.Sprintf("qphys: unsupported register size %d", n))
	}
	rho := NewMatrix(1 << n)
	rho.Data[0] = 1
	return &Density{nq: n, Rho: rho}
}

// NumQubits returns the register size.
func (d *Density) NumQubits() int { return d.nq }

// Reset returns the register to |0…0⟩.
func (d *Density) Reset() {
	for i := range d.Rho.Data {
		d.Rho.Data[i] = 0
	}
	d.Rho.Data[0] = 1
}

// Dim returns the Hilbert-space dimension 2^n.
func (d *Density) Dim() int { return d.Rho.N }

// scratch returns the two full-register scratch matrices, (re)allocating
// them on first use.
func (d *Density) scratch() (a, b Matrix) {
	if d.scratchA.N != d.Rho.N {
		d.scratchA = NewMatrix(d.Rho.N)
		d.scratchB = NewMatrix(d.Rho.N)
	}
	return d.scratchA, d.scratchB
}

// Apply conjugates the state by a full-register unitary: ρ ← UρU†.
// Single- and two-qubit gates should use the Apply1/Apply2 kernels, which
// are O(4^n) instead of O(8^n).
func (d *Density) Apply(u Matrix) {
	if u.N != d.Rho.N {
		panic(fmt.Sprintf("qphys: unitary dim %d does not match register dim %d", u.N, d.Rho.N))
	}
	tmp, _ := d.scratch()
	mulInto(tmp, u, d.Rho)              // tmp = u·ρ
	mulDaggerInto(d.Rho, tmp, u, false) // ρ = tmp·u†
}

// ApplyKraus applies a quantum channel given by Kraus operators on the
// full register: ρ ← Σ_k K_k ρ K_k†. Single-qubit channels should use the
// ApplyKraus1 kernel instead.
func (d *Density) ApplyKraus(ops []Matrix) {
	tmp, acc := d.scratch()
	for i := range acc.Data {
		acc.Data[i] = 0
	}
	for _, k := range ops {
		if k.N != d.Rho.N {
			panic(fmt.Sprintf("qphys: Kraus dim %d does not match register dim %d", k.N, d.Rho.N))
		}
		mulInto(tmp, k, d.Rho)           // tmp = K·ρ
		mulDaggerInto(acc, tmp, k, true) // acc += tmp·K†
	}
	copy(d.Rho.Data, acc.Data)
}

// Trace returns Tr(ρ), which must stay 1 for any physical evolution.
func (d *Density) Trace() float64 { return real(d.Rho.Trace()) }

// Purity returns Tr(ρ²) ∈ (0, 1]; 1 means a pure state.
func (d *Density) Purity() float64 { return real(d.Rho.Mul(d.Rho).Trace()) }

// ProbExcited returns the probability of reading qubit q as |1⟩.
func (d *Density) ProbExcited(q int) float64 {
	n := d.Rho.N
	bit := d.nq - 1 - q
	var p float64
	for i := 0; i < n; i++ {
		if (i>>bit)&1 == 1 {
			p += real(d.Rho.Data[i*n+i])
		}
	}
	return clampProb(p)
}

// ExpectationZ returns ⟨Z⟩ for qubit q.
func (d *Density) ExpectationZ(q int) float64 {
	return 1 - 2*d.ProbExcited(q)
}

// Measure performs a projective measurement of qubit q in the logical
// basis using the supplied PRNG, collapses the state, and returns the
// binary outcome. This models the back-action of the dispersive readout;
// the analog trace and discrimination error live in the readout package.
func (d *Density) Measure(q int, rng *rand.Rand) int {
	p1 := d.ProbExcited(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	d.Project(q, outcome)
	return outcome
}

// Project collapses qubit q onto the given outcome and renormalizes.
// If the outcome has (numerically) zero probability the register is left
// in the projected-and-renormalized-by-epsilon state closest to it.
func (d *Density) Project(q, outcome int) {
	n := d.Rho.N
	bit := d.nq - 1 - q
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i>>bit)&1 != outcome || (j>>bit)&1 != outcome {
				d.Rho.Data[i*n+j] = 0
			}
		}
	}
	tr := d.Trace()
	if tr < 1e-15 {
		// Measurement outcome had zero probability; reset to the basis
		// state consistent with the outcome.
		d.Reset()
		if outcome == 1 {
			d.Apply1(PauliX(), q)
		}
		return
	}
	inv := complex(1/tr, 0)
	for i := range d.Rho.Data {
		d.Rho.Data[i] *= inv
	}
}

// BlochVector returns the (x, y, z) Bloch coordinates of qubit q,
// tracing out all other qubits.
func (d *Density) BlochVector(q int) (x, y, z float64) {
	r := d.ReducedQubit(q)
	x = 2 * real(r.At(0, 1))
	y = 2 * imag(r.At(1, 0))
	z = real(r.At(0, 0)) - real(r.At(1, 1))
	return
}

// ReducedQubit returns the 2×2 reduced density matrix of qubit q.
func (d *Density) ReducedQubit(q int) Matrix {
	out := NewMatrix(2)
	n := d.Rho.N
	bit := d.nq - 1 - q
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Keep only elements where all other qubits agree.
			if (i &^ (1 << bit)) != (j &^ (1 << bit)) {
				continue
			}
			out.Data[((i>>bit)&1)*2+((j>>bit)&1)] += d.Rho.Data[i*n+j]
		}
	}
	return out
}

// Fidelity01 returns the overlap of qubit q's reduced state with |1⟩,
// i.e. the quantity the AllXY experiment estimates.
func (d *Density) Fidelity01(q int) float64 { return d.ProbExcited(q) }

func clampProb(p float64) float64 {
	return math.Min(1, math.Max(0, p))
}
