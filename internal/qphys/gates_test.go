package qphys

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPauliAlgebra(t *testing.T) {
	x, y, z := PauliX(), PauliY(), PauliZ()
	if x.Mul(x).MaxAbsDiff(Identity(2)) > tol {
		t.Error("X² != I")
	}
	if y.Mul(y).MaxAbsDiff(Identity(2)) > tol {
		t.Error("Y² != I")
	}
	if z.Mul(z).MaxAbsDiff(Identity(2)) > tol {
		t.Error("Z² != I")
	}
	// XY = iZ
	if x.Mul(y).MaxAbsDiff(z.Scale(1i)) > tol {
		t.Error("XY != iZ")
	}
	// The paper's SeqZ decomposition: Z = X·Y up to global phase.
	if !x.Mul(y).EqualUpToGlobalPhase(z, tol) {
		t.Error("X·Y != Z up to global phase (paper SeqZ identity)")
	}
}

func TestRotationsAtPi(t *testing.T) {
	if !RX(math.Pi).EqualUpToGlobalPhase(PauliX(), tol) {
		t.Error("RX(π) != X up to phase")
	}
	if !RY(math.Pi).EqualUpToGlobalPhase(PauliY(), tol) {
		t.Error("RY(π) != Y up to phase")
	}
	if !RZ(math.Pi).EqualUpToGlobalPhase(PauliZ(), tol) {
		t.Error("RZ(π) != Z up to phase")
	}
}

func TestREquatorAxes(t *testing.T) {
	// φ=0 is an x rotation, φ=π/2 a y rotation — the 5 ns timing-slip
	// effect in the paper maps exactly onto this φ parameter.
	for _, theta := range []float64{0.3, math.Pi / 2, math.Pi, 2.1} {
		if REquator(0, theta).MaxAbsDiff(RX(theta)) > tol {
			t.Errorf("REquator(0,%v) != RX", theta)
		}
		if REquator(math.Pi/2, theta).MaxAbsDiff(RY(theta)) > tol {
			t.Errorf("REquator(π/2,%v) != RY", theta)
		}
	}
}

func TestHadamardProperties(t *testing.T) {
	h := Hadamard()
	if h.Mul(h).MaxAbsDiff(Identity(2)) > tol {
		t.Error("H² != I")
	}
	// HXH = Z
	if h.Mul(PauliX()).Mul(h).MaxAbsDiff(PauliZ()) > tol {
		t.Error("HXH != Z")
	}
}

func TestSTGates(t *testing.T) {
	s := SGate()
	if s.Mul(s).MaxAbsDiff(PauliZ()) > tol {
		t.Error("S² != Z")
	}
	tt := TGate()
	if tt.Mul(tt).MaxAbsDiff(s) > tol {
		t.Error("T² != S")
	}
}

func TestCNOTFromCZ(t *testing.T) {
	// The paper's Algorithm 2: CNOT_{c,t} = (I⊗RY(π/2)) · CZ · (I⊗RY(-π/2))
	// with qubit 0 = control, qubit 1 = target.
	pre := Identity(2).Kron(RY(-math.Pi / 2))
	post := Identity(2).Kron(RY(math.Pi / 2))
	got := post.Mul(CZ()).Mul(pre)
	if !got.EqualUpToGlobalPhase(CNOT(), tol) {
		t.Errorf("Ry(π/2)·CZ·Ry(-π/2) != CNOT:\n%v", got)
	}
}

func TestCZSymmetric(t *testing.T) {
	cz := CZ()
	// CZ is diagonal and symmetric under qubit exchange.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && cz.At(i, j) != 0 {
				t.Fatal("CZ must be diagonal")
			}
		}
	}
	if cz.At(3, 3) != -1 {
		t.Error("CZ |11⟩ phase must be -1")
	}
}

func TestEmbedSingleQubit(t *testing.T) {
	// X on qubit 0 of 2 maps |00⟩ -> |10⟩ (basis index 0 -> 2).
	u := Embed(PauliX(), 0, 2)
	if u.At(2, 0) != 1 || u.At(0, 2) != 1 {
		t.Error("Embed(X, 0, 2) incorrect")
	}
	u = Embed(PauliX(), 1, 2)
	if u.At(1, 0) != 1 || u.At(0, 1) != 1 {
		t.Error("Embed(X, 1, 2) incorrect")
	}
}

func TestEmbed2MatchesKronForAdjacent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := randomUnitary(rng, 2)
	direct := Embed2(u, 0, 1, 2)
	if direct.MaxAbsDiff(u) > tol {
		t.Error("Embed2 on (0,1) of 2 qubits must be the gate itself")
	}
	// On 3 qubits, (0,1) should equal u ⊗ I.
	e := Embed2(u, 0, 1, 3)
	want := u.Kron(Identity(2))
	if e.MaxAbsDiff(want) > tol {
		t.Error("Embed2(u,0,1,3) != u ⊗ I")
	}
	// (1,2) should equal I ⊗ u.
	e = Embed2(u, 1, 2, 3)
	want = Identity(2).Kron(u)
	if e.MaxAbsDiff(want) > tol {
		t.Error("Embed2(u,1,2,3) != I ⊗ u")
	}
}

func TestEmbed2SwappedControl(t *testing.T) {
	// CNOT with control=1, target=0 on two qubits: |01⟩ -> |11⟩.
	u := Embed2(CNOT(), 1, 0, 2)
	// basis: |q0 q1⟩, index = q0*2+q1. Control q1=1: |01⟩(1) <-> |11⟩(3).
	if u.At(3, 1) != 1 || u.At(1, 3) != 1 {
		t.Error("swapped-control CNOT embedding incorrect")
	}
	if u.At(0, 0) != 1 || u.At(2, 2) != 1 {
		t.Error("swapped-control CNOT must fix |00⟩ and |10⟩")
	}
}

func TestEmbed2PanicsOnSameQubit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for qa == qb")
		}
	}()
	Embed2(CZ(), 1, 1, 2)
}

// Property: all rotation gates are unitary for any angle.
func TestPropertyRotationsUnitary(t *testing.T) {
	f := func(phi, theta float64) bool {
		phi = math.Mod(phi, 2*math.Pi)
		theta = math.Mod(theta, 4*math.Pi)
		return RX(theta).IsUnitary(1e-9) &&
			RY(theta).IsUnitary(1e-9) &&
			RZ(theta).IsUnitary(1e-9) &&
			REquator(phi, theta).IsUnitary(1e-9)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: rotations about the same axis compose additively.
func TestPropertyRotationComposition(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, math.Pi)
		b = math.Mod(b, math.Pi)
		lhs := RX(a).Mul(RX(b))
		return lhs.MaxAbsDiff(RX(a+b)) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Embed preserves unitarity.
func TestPropertyEmbedUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		g := REquator(rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi)
		q := rng.Intn(3)
		if !Embed(g, q, 3).IsUnitary(1e-9) {
			t.Fatalf("embedded gate not unitary (q=%d)", q)
		}
	}
}
