//go:build amd64

package qphys

// useSIMD selects the AVX2 span kernels. Resolved once at package init:
// the CPU must implement AVX2 with OS-enabled YMM state (CPUID +
// XGETBV), and the QUMA_NOSIMD kill switch must be unset. The per-call
// wrappers additionally require an even lane count; everything else
// takes the bit-identical pure-Go bodies.
var useSIMD = cpuSupportsAVX2() && !simdDisabled()

// useSIMD512 additionally selects the AVX-512 (ZMM) bodies of the
// whole-block kernels where they exist; per call the lane count must be
// a multiple of 4 so the 64-byte step divides the duplicated-array wrap
// and every swap period. The same QUMA_NOSIMD switch disables it.
var useSIMD512 = cpuSupportsAVX512() && !simdDisabled()

// cpuSupportsAVX2 reports AVX2 with OS-saved YMM state (CPUID leaf 1
// OSXSAVE+AVX, XGETBV XMM+YMM, CPUID leaf 7 AVX2). Implemented in
// span_amd64.s.
func cpuSupportsAVX2() bool

// cpuSupportsAVX512 reports AVX-512 F+DQ with OS-enabled ZMM and
// opmask state (XGETBV bits 1,2,5,6,7). Implemented in span_amd64.s.
func cpuSupportsAVX512() bool

//go:noescape
func spanScaleBlocksASM(span []complex128, cA, cB []float64, blkC int)

//go:noescape
func spanAccBlocksASM(span []complex128, aA, aB []float64, blkA int)

//go:noescape
func spanScaleAccBlocksASM(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int)

//go:noescape
func spanApply1RDBlocksASM(span []complex128, maskL int, r00, r11, u01re, u01im, u10re, u10im float64)

//go:noescape
func spanNegBothBlocksASM(span []complex128, hiL, loL int)

//go:noescape
func spanCollapseBlocksASM(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int)

//go:noescape
func spanScaleBlocksAVX512(span []complex128, cA, cB []float64, blkC int)

//go:noescape
func spanAccBlocksAVX512(span []complex128, aA, aB []float64, blkA int)

//go:noescape
func spanScaleAccBlocksAVX512(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int)

//go:noescape
func spanCollapseBlocksAVX512(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int)

//go:noescape
func spanAccBlocksZ8(span []complex128, aA, aB []float64, blkA int)

//go:noescape
func spanScaleAccBlocksZ8(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int)

//go:noescape
func spanCollapseBlocksZ8(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int)

//go:noescape
func spanAntiAccBlocksASM(span []complex128, cr01, ci01, cr10, ci10 []float64, kp []uint64, aA, aB []float64, blk int)

//go:noescape
func spanAntiAccBlocksZ8(span []complex128, cr01, ci01, cr10, ci10 []float64, kp []uint64, aA, aB []float64, blk int)

//go:noescape
func spanApply1RDBlocksAVX512(span []complex128, maskL int, r00, r11, u01re, u01im, u10re, u10im float64)

//go:noescape
func spanScaleBlocksZ8(span []complex128, cA, cB []float64, blkC int)

//go:noescape
func recipSqrtVec8ASM(dst, src []float64)

//go:noescape
func recipSqrtVec4ASM(dst, src []float64)
