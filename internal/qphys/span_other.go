//go:build !amd64

package qphys

// Non-amd64 builds have no SIMD span kernels; the wrappers always take
// the pure-Go bodies. Per-lane bit-identity holds architecture-wide
// regardless: the batch and scalar paths compile from the same Go
// expressions, so any contraction decision the compiler makes (none on
// amd64, FMA on arm64 applies to neither side's separate mul/add
// chains) affects both identically.
var useSIMD = false

var useSIMD512 = false

func cpuSupportsAVX2() bool { return false }

func cpuSupportsAVX512() bool { return false }

func spanScaleBlocksASM(span []complex128, cA, cB []float64, blkC int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanAccBlocksASM(span []complex128, aA, aB []float64, blkA int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanScaleAccBlocksASM(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanApply1RDBlocksASM(span []complex128, maskL int, r00, r11, u01re, u01im, u10re, u10im float64) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanNegBothBlocksASM(span []complex128, hiL, loL int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanCollapseBlocksASM(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanScaleBlocksAVX512(span []complex128, cA, cB []float64, blkC int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanAccBlocksAVX512(span []complex128, aA, aB []float64, blkA int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanScaleAccBlocksAVX512(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanCollapseBlocksAVX512(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanAccBlocksZ8(span []complex128, aA, aB []float64, blkA int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanScaleAccBlocksZ8(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanCollapseBlocksZ8(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanAntiAccBlocksASM(span []complex128, cr01, ci01, cr10, ci10 []float64, kp []uint64, aA, aB []float64, blk int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanAntiAccBlocksZ8(span []complex128, cr01, ci01, cr10, ci10 []float64, kp []uint64, aA, aB []float64, blk int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanApply1RDBlocksAVX512(span []complex128, maskL int, r00, r11, u01re, u01im, u10re, u10im float64) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func spanScaleBlocksZ8(span []complex128, cA, cB []float64, blkC int) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func recipSqrtVec8ASM(dst, src []float64) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}

func recipSqrtVec4ASM(dst, src []float64) {
	panic("qphys: SIMD span kernel on unsupported architecture")
}
