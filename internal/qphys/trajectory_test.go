package qphys

import (
	"math"
	"math/rand"
	"testing"
)

// The trajectory backend's unitary kernels must match the Density
// backend exactly (≤1e-12): a pure state evolved by Apply1/Apply2 must
// satisfy |ψ⟩⟨ψ| = ρ for the density register evolved by the same gates.
// Channel application is stochastic per trajectory, so it is pinned
// statistically: means over many seeds converge to the exact channel.

// randomTrajectoryState puts t (and the returned mirror Density) in the
// same random pure state.
func randomTrajectoryState(t *Trajectory, rng *rand.Rand) *Density {
	var norm float64
	for i := range t.Psi {
		t.Psi[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(t.Psi[i])*real(t.Psi[i]) + imag(t.Psi[i])*imag(t.Psi[i])
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range t.Psi {
		t.Psi[i] *= inv
	}
	d := NewDensity(t.NumQubits())
	copy(d.Rho.Data, t.DensityMatrix().Data)
	return d
}

func TestTrajectoryApply1PinnedToDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 5; n++ {
		for trial := 0; trial < 8; trial++ {
			tr := NewTrajectory(n, rng)
			d := randomTrajectoryState(tr, rng)
			u := randomUnitaryGS(2, rng)
			q := rng.Intn(n)
			tr.Apply1(u, q)
			d.Apply1(u, q)
			if diff := tr.DensityMatrix().MaxAbsDiff(d.Rho); diff > 1e-12 {
				t.Fatalf("n=%d q=%d trial %d: trajectory Apply1 deviates from density by %v", n, q, trial, diff)
			}
		}
	}
}

func TestTrajectoryApply2PinnedToDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for n := 2; n <= 5; n++ {
		for trial := 0; trial < 8; trial++ {
			tr := NewTrajectory(n, rng)
			d := randomTrajectoryState(tr, rng)
			u := randomUnitaryGS(4, rng)
			qa := rng.Intn(n)
			qb := rng.Intn(n - 1)
			if qb >= qa {
				qb++
			}
			tr.Apply2(u, qa, qb)
			d.Apply2(u, qa, qb)
			if diff := tr.DensityMatrix().MaxAbsDiff(d.Rho); diff > 1e-12 {
				t.Fatalf("n=%d (%d,%d) trial %d: trajectory Apply2 deviates from density by %v", n, qa, qb, trial, diff)
			}
		}
	}
}

func TestTrajectoryRandomCircuitPinnedToDensity(t *testing.T) {
	// A deeper random circuit catches convention mismatches (bit order,
	// control/target) that single gates can miss.
	rng := rand.New(rand.NewSource(13))
	for n := 2; n <= 4; n++ {
		tr := NewTrajectory(n, rng)
		d := NewDensity(n)
		for step := 0; step < 30; step++ {
			if rng.Intn(2) == 0 {
				u := randomUnitaryGS(2, rng)
				q := rng.Intn(n)
				tr.Apply1(u, q)
				d.Apply1(u, q)
			} else {
				u := randomUnitaryGS(4, rng)
				qa := rng.Intn(n)
				qb := rng.Intn(n - 1)
				if qb >= qa {
					qb++
				}
				tr.Apply2(u, qa, qb)
				d.Apply2(u, qa, qb)
			}
		}
		if diff := tr.DensityMatrix().MaxAbsDiff(d.Rho); diff > 1e-12 {
			t.Fatalf("n=%d: 30-gate random circuit deviates from density by %v", n, diff)
		}
		for q := 0; q < n; q++ {
			if diff := math.Abs(tr.ProbExcited(q) - d.ProbExcited(q)); diff > 1e-12 {
				t.Fatalf("n=%d q=%d: ProbExcited deviates by %v", n, q, diff)
			}
			if diff := tr.ReducedQubit(q).MaxAbsDiff(d.ReducedQubit(q)); diff > 1e-12 {
				t.Fatalf("n=%d q=%d: ReducedQubit deviates by %v", n, q, diff)
			}
		}
	}
}

func TestTrajectoryKrausSamplingIsExactInExpectation(t *testing.T) {
	// Amplitude damping γ = 0.3 on |1⟩: the exact channel leaves
	// P(|1⟩) = 0.7; the trajectory mean over many seeds must converge.
	const trials = 4000
	ops := AmplitudeDamping(0.3)
	var sum float64
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < trials; i++ {
		tr := NewTrajectory(1, rng)
		tr.Apply1(PauliX(), 0)
		tr.ApplyKraus1(ops, 0)
		sum += tr.ProbExcited(0)
	}
	mean := sum / trials
	// Binomial-ish std ≈ sqrt(0.3·0.7/4000) ≈ 0.007; 4σ margin.
	if math.Abs(mean-0.7) > 0.03 {
		t.Errorf("trajectory mean P(|1⟩) = %v, want ≈ 0.7", mean)
	}
}

func TestTrajectoryDecoherenceChannelMatchesDensityMean(t *testing.T) {
	// A full 8-operator decoherence channel on a superposition: the
	// trajectory ensemble mean of ⟨Z⟩ must match the exact density value.
	p := DefaultQubitParams()
	dt := 5e-6
	ops := DecoherenceChannel(dt, p)
	d := NewDensity(1)
	d.Apply1(RX(math.Pi/2), 0)
	d.ApplyKraus1(ops, 0)
	want := d.ExpectationZ(0)

	const trials = 4000
	var sum float64
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < trials; i++ {
		tr := NewTrajectory(1, rng)
		tr.Apply1(RX(math.Pi/2), 0)
		tr.ApplyKraus1(ops, 0)
		sum += tr.ExpectationZ(0)
	}
	mean := sum / trials
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("trajectory mean ⟨Z⟩ = %v, density exact = %v", mean, want)
	}
}

func TestTrajectoryKrausPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	tr := NewTrajectory(3, rng)
	randomTrajectoryState(tr, rng)
	ops := DecoherenceChannel(50e-9, DefaultQubitParams())
	for i := 0; i < 50; i++ {
		tr.ApplyKraus1(ops, i%3)
	}
	if n := tr.Norm(); math.Abs(n-1) > 1e-10 {
		t.Errorf("norm after 50 channel applications = %v, want 1", n)
	}
	if p := tr.Purity(); math.Abs(p-1) > 1e-9 {
		t.Errorf("purity = %v, want 1 (trajectory states stay pure)", p)
	}
}

func TestTrajectoryMeasureCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := NewTrajectory(2, rng)
	tr.Apply1(Hadamard(), 0)
	tr.Apply2(CNOT(), 0, 1) // Bell pair: outcomes must correlate
	a := tr.Measure(0, rng)
	b := tr.Measure(1, rng)
	if a != b {
		t.Errorf("Bell-pair outcomes disagree: %d vs %d", a, b)
	}
	if m2 := tr.Measure(0, rng); m2 != a {
		t.Errorf("repeated measurement changed outcome: %d then %d", a, m2)
	}
	if p := tr.ProbExcited(0); p != float64(a) {
		t.Errorf("post-measurement P(|1⟩) = %v, want %d", p, a)
	}
}

func TestTrajectoryProjectZeroProbabilityResets(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	tr := NewTrajectory(1, rng)
	tr.Project(0, 1) // P(|1⟩) = 0: reset to the consistent basis state
	if p := tr.ProbExcited(0); math.Abs(p-1) > 1e-12 {
		t.Errorf("P(|1⟩) after zero-probability projection = %v, want 1", p)
	}
}

func TestTrajectoryKernelsDoNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tr := NewTrajectory(3, rng)
	tr.Apply1(RX(math.Pi/2), 1)
	u := RX(0.3)
	cz := CZ()
	ops := DecoherenceChannel(20e-9, DefaultQubitParams())
	if allocs := testing.AllocsPerRun(50, func() { tr.Apply1(u, 1) }); allocs != 0 {
		t.Errorf("Apply1 allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { tr.Apply2(cz, 0, 2) }); allocs != 0 {
		t.Errorf("Apply2 allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { tr.ApplyKraus1(ops, 1) }); allocs != 0 {
		t.Errorf("ApplyKraus1 allocates %v per run, want 0", allocs)
	}
}

func TestTrajectoryScalesPastDensityWall(t *testing.T) {
	// 16 qubits: impossible for NewDensity (4^16 matrix), cheap here.
	rng := rand.New(rand.NewSource(20))
	tr := NewTrajectory(16, rng)
	for q := 0; q < 16; q++ {
		tr.Apply1(Hadamard(), q)
	}
	for q := 0; q < 16; q++ {
		if p := tr.ProbExcited(q); math.Abs(p-0.5) > 1e-9 {
			t.Fatalf("q%d: P(|1⟩) = %v, want 0.5", q, p)
		}
	}
	if n := tr.Norm(); math.Abs(n-1) > 1e-9 {
		t.Errorf("norm = %v, want 1", n)
	}
}
