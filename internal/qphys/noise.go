package qphys

import "math"

// QubitParams captures the coherence and control-error parameters of a
// simulated transmon, mirroring the device of the paper's Section 8
// (qubit 2: fQ = 6.466 GHz; coherence times of order tens of µs).
type QubitParams struct {
	// T1 is the energy-relaxation time in seconds. Zero disables T1 decay.
	T1 float64
	// T2 is the total dephasing time in seconds (T2 ≤ 2·T1).
	// Zero disables dephasing.
	T2 float64
	// FreqDetuningHz is the difference between the drive frequency and the
	// actual qubit transition frequency. A miscalibrated frequency makes
	// the qubit precess between pulses — one of the AllXY error
	// signatures.
	FreqDetuningHz float64
	// AmplitudeError scales every drive rotation angle by (1+ε); ±ε is the
	// classic AllXY amplitude-miscalibration signature.
	AmplitudeError float64
	// ThermalPopulation is the equilibrium excited-state population the
	// qubit relaxes toward (residual thermal excitation; real transmons
	// at 20 mK sit at ~0.1–1 %). Zero means relaxation to the pure
	// ground state, the idealization used by most tests.
	ThermalPopulation float64
}

// DefaultQubitParams returns parameters representative of the paper's
// device: T1 = 30 µs, T2 = 20 µs, no control errors.
func DefaultQubitParams() QubitParams {
	return QubitParams{T1: 30e-6, T2: 20e-6}
}

// AmplitudeDamping returns the Kraus operators of the T1 amplitude-damping
// channel with decay probability γ.
func AmplitudeDamping(gamma float64) []Matrix {
	gamma = clampProb(gamma)
	k0 := FromRows(
		[]complex128{1, 0},
		[]complex128{0, complex(math.Sqrt(1-gamma), 0)},
	)
	k1 := FromRows(
		[]complex128{0, complex(math.Sqrt(gamma), 0)},
		[]complex128{0, 0},
	)
	return []Matrix{k0, k1}
}

// PhaseDamping returns the Kraus operators of the pure-dephasing channel
// with dephasing probability λ.
func PhaseDamping(lambda float64) []Matrix {
	lambda = clampProb(lambda)
	k0 := FromRows(
		[]complex128{1, 0},
		[]complex128{0, complex(math.Sqrt(1-lambda), 0)},
	)
	k1 := FromRows(
		[]complex128{0, 0},
		[]complex128{0, complex(math.Sqrt(lambda), 0)},
	)
	return []Matrix{k0, k1}
}

// Depolarizing returns the Kraus operators of the single-qubit
// depolarizing channel with error probability p.
func Depolarizing(p float64) []Matrix {
	p = clampProb(p)
	s0 := complex(math.Sqrt(1-p), 0)
	sp := complex(math.Sqrt(p/3), 0)
	return []Matrix{
		Identity(2).Scale(s0),
		PauliX().Scale(sp),
		PauliY().Scale(sp),
		PauliZ().Scale(sp),
	}
}

// GeneralizedAmplitudeDamping returns the Kraus operators of relaxation
// with decay probability γ toward a thermal state with excited
// population pth (pth = 0 reduces to plain amplitude damping).
func GeneralizedAmplitudeDamping(gamma, pth float64) []Matrix {
	gamma = clampProb(gamma)
	pth = clampProb(pth)
	if pth == 0 {
		return AmplitudeDamping(gamma)
	}
	pDown := complex(math.Sqrt(1-pth), 0)
	pUp := complex(math.Sqrt(pth), 0)
	sg := complex(math.Sqrt(gamma), 0)
	s1g := complex(math.Sqrt(1-gamma), 0)
	return []Matrix{
		FromRows([]complex128{pDown, 0}, []complex128{0, pDown * s1g}),
		FromRows([]complex128{0, pDown * sg}, []complex128{0, 0}),
		FromRows([]complex128{pUp * s1g, 0}, []complex128{0, pUp}),
		FromRows([]complex128{0, 0}, []complex128{pUp * sg, 0}),
	}
}

// DecoherenceChannel returns the Kraus operators modelling free evolution
// for duration dt (seconds) under the given T1/T2, composed as
// (generalized) amplitude damping followed by the residual pure
// dephasing. The pure-dephasing rate is 1/Tφ = 1/T2 − 1/(2·T1).
func DecoherenceChannel(dt float64, p QubitParams) []Matrix {
	if dt <= 0 || (p.T1 <= 0 && p.T2 <= 0) {
		return []Matrix{Identity(2)}
	}
	gamma := 0.0
	if p.T1 > 0 {
		gamma = 1 - math.Exp(-dt/p.T1)
	}
	lambda := 0.0
	if p.T2 > 0 {
		invTphi := 1/p.T2 - gammaHalfRate(p)
		if invTphi > 0 {
			lambda = 1 - math.Exp(-2*dt*invTphi)
		}
	}
	ad := GeneralizedAmplitudeDamping(gamma, p.ThermalPopulation)
	pd := PhaseDamping(lambda)
	// Compose the two channels: K = {P_j · A_i}.
	out := make([]Matrix, 0, len(ad)*len(pd))
	for _, kp := range pd {
		for _, ka := range ad {
			out = append(out, kp.Mul(ka))
		}
	}
	return out
}

func gammaHalfRate(p QubitParams) float64 {
	if p.T1 <= 0 {
		return 0
	}
	return 1 / (2 * p.T1)
}

// Idle evolves qubit q of the register for dt seconds: decoherence plus
// the coherent phase accumulated from any drive/qubit detuning.
func Idle(d *Density, q int, dt float64, p QubitParams) {
	if dt <= 0 {
		return
	}
	if p.FreqDetuningHz != 0 {
		d.Apply1(RZ(2*math.Pi*p.FreqDetuningHz*dt), q)
	}
	d.ApplyKraus1(DecoherenceChannel(dt, p), q)
}
