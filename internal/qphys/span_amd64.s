//go:build amd64

#include "textflag.h"

// AVX2 bodies of the span primitives (batch_span.go). The bit-identity
// obligations are spelled out there; in short: every arithmetic
// instruction is an IEEE-754 binary64 operation in the prevailing
// round-to-nearest mode, matching the gc compiler's scalar lowering
// one rounding for one rounding (no FMA contraction anywhere), and the
// only reorderings are commuted additions, which are bitwise-neutral.
//
// Register conventions shared by the block walkers:
//   SI moving span pointer, BX span end pointer,
//   AX rolling byte cursor into the duplicated per-lane arrays,
//   DX duplicated-array byte length (16·L — one span row; the span
//      and per-lane cursors advance in lockstep and wrap together),
//   CX/R10 current/other coefficient base (swapped every blkC),
//   R8/R9 current/other accumulator base (swapped every blkA),
//   R12/R13 byte countdowns to the next coefficient/accumulator swap.
// Each iteration handles one YMM register: 2 complex128 amplitudes,
// congruent with 4 float64 of a duplicated array. The even-L gate in
// the wrappers guarantees the 32-byte step divides both swap periods
// and the wrap length, so a vector never straddles a boundary.

// func cpuSupportsAVX2() bool
TEXT ·cpuSupportsAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	// ECX bit 27 (OSXSAVE) and bit 28 (AVX).
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  no
	// XCR0 bits 1 and 2: XMM and YMM state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// CPUID.(EAX=7,ECX=0).EBX bit 5: AVX2. Any CPU with AVX has leaf 7.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func cpuSupportsAVX512() bool
TEXT ·cpuSupportsAVX512(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  no512
	// XCR0 bits 1,2 (XMM, YMM) and 5,6,7 (opmask, ZMM0-15 hi256,
	// ZMM16-31): the OS saves full AVX-512 state.
	XORL CX, CX
	XGETBV
	ANDL $0xE6, AX
	CMPL AX, $0xE6
	JNE  no512
	// CPUID.(EAX=7,ECX=0).EBX bit 16: AVX512F; bit 17: AVX512DQ
	// (VANDPD/VXORPD on ZMM).
	MOVL $7, AX
	XORL CX, CX
	CPUID
	MOVL BX, DX
	ANDL $0x10000, DX
	JZ   no512
	ANDL $0x20000, BX
	JZ   no512
	MOVB $1, ret+0(FP)
	RET

no512:
	MOVB $0, ret+0(FP)
	RET

// func spanScaleBlocksASM(span []complex128, cA, cB []float64, blkC int)
TEXT ·spanScaleBlocksASM(SB), NOSPLIT, $0-80
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ cA_base+24(FP), CX
	MOVQ cA_len+32(FP), DX
	SHLQ $3, DX
	MOVQ cB_base+48(FP), R10
	MOVQ blkC+72(FP), R12
	SHLQ $4, R12
	MOVQ R12, R11
	XORQ AX, AX

scloop:
	CMPQ    SI, BX
	JGE     scdone
	VMOVUPD (SI), Y0
	VMULPD  (CX)(AX*1), Y0, Y0
	VMOVUPD Y0, (SI)
	ADDQ    $32, SI
	ADDQ    $32, AX
	CMPQ    AX, DX
	JLT     scnowrap
	XORQ    AX, AX

scnowrap:
	SUBQ  $32, R12
	JNZ   scloop
	XCHGQ CX, R10
	MOVQ  R11, R12
	JMP   scloop

scdone:
	VZEROUPPER
	RET

// func spanAccBlocksASM(span []complex128, aA, aB []float64, blkA int)
//
// acc[slot] += re²+im² per element. The squared vector [re², im²] is
// added to its own in-lane swap [im², re²], yielding the per-element
// sum in both slots (commuted in one — bitwise equal), so both
// duplicated slots receive identical updates.
TEXT ·spanAccBlocksASM(SB), NOSPLIT, $0-80
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ aA_base+24(FP), R8
	MOVQ aA_len+32(FP), DX
	SHLQ $3, DX
	MOVQ aB_base+48(FP), R9
	MOVQ blkA+72(FP), R13
	SHLQ $4, R13
	MOVQ R13, R11
	XORQ AX, AX

acloop:
	CMPQ    SI, BX
	JGE     acdone
	VMOVUPD (SI), Y0
	VMULPD  Y0, Y0, Y1
	VSHUFPD $5, Y1, Y1, Y2
	VADDPD  Y2, Y1, Y1
	VADDPD  (R8)(AX*1), Y1, Y1
	VMOVUPD Y1, (R8)(AX*1)
	ADDQ    $32, SI
	ADDQ    $32, AX
	CMPQ    AX, DX
	JLT     acnowrap
	XORQ    AX, AX

acnowrap:
	SUBQ  $32, R13
	JNZ   acloop
	XCHGQ R8, R9
	MOVQ  R11, R13
	JMP   acloop

acdone:
	VZEROUPPER
	RET

// func spanScaleAccBlocksASM(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int)
TEXT ·spanScaleAccBlocksASM(SB), NOSPLIT, $0-136
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ cA_base+24(FP), CX
	MOVQ cA_len+32(FP), DX
	SHLQ $3, DX
	MOVQ cB_base+48(FP), R10
	MOVQ aA_base+72(FP), R8
	MOVQ aB_base+96(FP), R9
	MOVQ blkC+120(FP), R12
	SHLQ $4, R12
	MOVQ blkA+128(FP), R13
	SHLQ $4, R13
	XORQ AX, AX

scaloop:
	CMPQ    SI, BX
	JGE     scaldone
	VMOVUPD (SI), Y0
	VMULPD  (CX)(AX*1), Y0, Y0
	VMOVUPD Y0, (SI)
	VMULPD  Y0, Y0, Y1
	VSHUFPD $5, Y1, Y1, Y2
	VADDPD  Y2, Y1, Y1
	VADDPD  (R8)(AX*1), Y1, Y1
	VMOVUPD Y1, (R8)(AX*1)
	ADDQ    $32, SI
	ADDQ    $32, AX
	CMPQ    AX, DX
	JLT     scalnowrap
	XORQ    AX, AX

scalnowrap:
	SUBQ  $32, R12
	JNZ   scalcheckA
	XCHGQ CX, R10
	MOVQ  blkC+120(FP), R12
	SHLQ  $4, R12

scalcheckA:
	SUBQ  $32, R13
	JNZ   scaloop
	XCHGQ R8, R9
	MOVQ  blkA+128(FP), R13
	SHLQ  $4, R13
	JMP   scaloop

scaldone:
	VZEROUPPER
	RET

// func spanApply1RDBlocksASM(span []complex128, maskL int, r00, r11, u01re, u01im, u10re, u10im float64)
//
// Apply1RD's pair update, 2 pairs per iteration; pairs sit maskL
// elements apart within each 2·maskL group. The complex products
// u01·a1 and u10·a0 are formed as VMULPD/VMULPD/VADDSUBPD — exactly
// the separate-multiply, separate-add/sub sequence the gc compiler
// emits for a complex128 multiply: re = xre·are − xim·aim,
// im = xre·aim + xim·are, one rounding each.
TEXT ·spanApply1RDBlocksASM(SB), NOSPLIT, $0-80
	MOVQ         span_base+0(FP), SI
	MOVQ         span_len+8(FP), BX
	SHLQ         $4, BX
	ADDQ         SI, BX
	MOVQ         maskL+24(FP), R11
	SHLQ         $4, R11
	VBROADCASTSD r00+32(FP), Y8
	VBROADCASTSD r11+40(FP), Y9
	VBROADCASTSD u01re+48(FP), Y10
	VBROADCASTSD u01im+56(FP), Y11
	VBROADCASTSD u10re+64(FP), Y12
	VBROADCASTSD u10im+72(FP), Y13

rdouter:
	CMPQ SI, BX
	JGE  rddone
	LEAQ (SI)(R11*1), DI
	XORQ AX, AX

rdinner:
	VMOVUPD (SI)(AX*1), Y0            // a0
	VMOVUPD (DI)(AX*1), Y1            // a1

	// x = u01·a1
	VSHUFPD   $5, Y1, Y1, Y2          // [a1im, a1re]
	VMULPD    Y1, Y10, Y3             // [xre·a1re, xre·a1im]
	VMULPD    Y2, Y11, Y4             // [xim·a1im, xim·a1re]
	VADDSUBPD Y4, Y3, Y3              // [xre·a1re − xim·a1im, xre·a1im + xim·a1re]

	// y = u10·a0
	VSHUFPD   $5, Y0, Y0, Y2
	VMULPD    Y0, Y12, Y5
	VMULPD    Y2, Y13, Y4
	VADDSUBPD Y4, Y5, Y5

	// lo' = a0·r00 + x
	VMULPD  Y0, Y8, Y6
	VADDPD  Y3, Y6, Y6
	VMOVUPD Y6, (SI)(AX*1)

	// hi' = y + a1·r11
	VMULPD  Y1, Y9, Y7
	VADDPD  Y7, Y5, Y7
	VMOVUPD Y7, (DI)(AX*1)

	ADDQ $32, AX
	CMPQ AX, R11
	JLT  rdinner
	LEAQ (DI)(R11*1), SI
	JMP  rdouter

rddone:
	VZEROUPPER
	RET

DATA  negmask<>+0(SB)/8, $0x8000000000000000
GLOBL negmask<>(SB), RODATA, $8

// func spanNegBothBlocksASM(span []complex128, hiL, loL int)
//
// Sign-bit flip (VXORPD with the sign mask) of the CZ-selected runs:
// bit-level negation, no rounding involved at all.
TEXT ·spanNegBothBlocksASM(SB), NOSPLIT, $0-40
	MOVQ         span_base+0(FP), SI
	MOVQ         span_len+8(FP), BX
	SHLQ         $4, BX
	ADDQ         SI, BX
	MOVQ         hiL+24(FP), R10
	SHLQ         $4, R10
	MOVQ         loL+32(FP), R11
	SHLQ         $4, R11
	VBROADCASTSD negmask<>(SB), Y15
	ADDQ         R10, SI

nbouter:
	CMPQ SI, BX
	JGE  nbdone
	LEAQ (SI)(R11*1), DI
	LEAQ (SI)(R10*1), R12

nbinner:
	CMPQ DI, R12
	JGE  nbnextouter
	LEAQ (DI)(R11*1), R13

nbseg:
	VMOVUPD (DI), Y0
	VXORPD  Y15, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, DI
	CMPQ    DI, R13
	JLT     nbseg
	ADDQ    R11, DI
	JMP     nbinner

nbnextouter:
	LEAQ (SI)(R10*2), SI
	JMP  nbouter

nbdone:
	VZEROUPPER
	RET

// func spanCollapseBlocksASM(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int)
//
// Scale by the per-lane coefficient (VMULPD — the scalar collapse's
// exact multiply), mask with the per-lane keep-mask (VANDPD: all-ones
// passes the product bits through untouched, all-zeros forces the
// scalar collapse's literal +0), accumulate |new|² into the per-lane
// accumulator (same self-swap-add trick as spanAccBlocksASM). The
// mask pair swaps every blk elements; the coefficient and accumulator
// streams are fixed.
TEXT ·spanCollapseBlocksASM(SB), NOSPLIT, $0-128
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ cc_base+24(FP), CX
	MOVQ cc_len+32(FP), DX
	SHLQ $3, DX
	MOVQ mA_base+48(FP), R10
	MOVQ mB_base+72(FP), R11
	MOVQ acc_base+96(FP), R8
	MOVQ blk+120(FP), R12
	SHLQ $4, R12
	MOVQ R12, R9
	XORQ AX, AX

cploop:
	CMPQ    SI, BX
	JGE     cpdone
	VMOVUPD (SI), Y0
	VMULPD  (CX)(AX*1), Y0, Y0
	VANDPD  (R10)(AX*1), Y0, Y0
	VMOVUPD Y0, (SI)
	VMULPD  Y0, Y0, Y1
	VSHUFPD $5, Y1, Y1, Y2
	VADDPD  Y2, Y1, Y1
	VADDPD  (R8)(AX*1), Y1, Y1
	VMOVUPD Y1, (R8)(AX*1)
	ADDQ    $32, SI
	ADDQ    $32, AX
	CMPQ    AX, DX
	JLT     cpnowrap
	XORQ    AX, AX

cpnowrap:
	SUBQ  $32, R12
	JNZ   cploop
	XCHGQ R10, R11
	MOVQ  R9, R12
	JMP   cploop

cpdone:
	VZEROUPPER
	RET
// AVX-512 bodies of the whole-block walkers: the same walks with a
// 64-byte step (4 complex128 / 8 duplicated floats per iteration).
// VSHUFPD's $0x55 immediate swaps within each 128-bit pair across the
// full ZMM, so the |a|² self-swap-add trick carries over unchanged.
// The wrappers gate on a lane count divisible by 4, making 64 bytes
// divide the duplicated wrap and both swap periods. VADDSUBPD has no
// EVEX form, so spanApply1RDBlocks stays on the AVX2 body.

// func spanScaleBlocksAVX512(span []complex128, cA, cB []float64, blkC int)
TEXT ·spanScaleBlocksAVX512(SB), NOSPLIT, $0-80
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ cA_base+24(FP), CX
	MOVQ cA_len+32(FP), DX
	SHLQ $3, DX
	MOVQ cB_base+48(FP), R10
	MOVQ blkC+72(FP), R12
	SHLQ $4, R12
	MOVQ R12, R11
	XORQ AX, AX

zscloop:
	CMPQ    SI, BX
	JGE     zscdone
	VMOVUPD (SI), Z0
	VMULPD  (CX)(AX*1), Z0, Z0
	VMOVUPD Z0, (SI)
	ADDQ    $64, SI
	ADDQ    $64, AX
	CMPQ    AX, DX
	JLT     zscnowrap
	XORQ    AX, AX

zscnowrap:
	SUBQ  $64, R12
	JNZ   zscloop
	XCHGQ CX, R10
	MOVQ  R11, R12
	JMP   zscloop

zscdone:
	VZEROUPPER
	RET

// func spanAccBlocksAVX512(span []complex128, aA, aB []float64, blkA int)
TEXT ·spanAccBlocksAVX512(SB), NOSPLIT, $0-80
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ aA_base+24(FP), R8
	MOVQ aA_len+32(FP), DX
	SHLQ $3, DX
	MOVQ aB_base+48(FP), R9
	MOVQ blkA+72(FP), R13
	SHLQ $4, R13
	MOVQ R13, R11
	XORQ AX, AX

zacloop:
	CMPQ    SI, BX
	JGE     zacdone
	VMOVUPD (SI), Z0
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  (R8)(AX*1), Z1, Z1
	VMOVUPD Z1, (R8)(AX*1)
	ADDQ    $64, SI
	ADDQ    $64, AX
	CMPQ    AX, DX
	JLT     zacnowrap
	XORQ    AX, AX

zacnowrap:
	SUBQ  $64, R13
	JNZ   zacloop
	XCHGQ R8, R9
	MOVQ  R11, R13
	JMP   zacloop

zacdone:
	VZEROUPPER
	RET

// func spanScaleAccBlocksAVX512(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int)
TEXT ·spanScaleAccBlocksAVX512(SB), NOSPLIT, $0-136
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ cA_base+24(FP), CX
	MOVQ cA_len+32(FP), DX
	SHLQ $3, DX
	MOVQ cB_base+48(FP), R10
	MOVQ aA_base+72(FP), R8
	MOVQ aB_base+96(FP), R9
	MOVQ blkC+120(FP), R12
	SHLQ $4, R12
	MOVQ blkA+128(FP), R13
	SHLQ $4, R13
	XORQ AX, AX

zsaloop:
	CMPQ    SI, BX
	JGE     zsadone
	VMOVUPD (SI), Z0
	VMULPD  (CX)(AX*1), Z0, Z0
	VMOVUPD Z0, (SI)
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  (R8)(AX*1), Z1, Z1
	VMOVUPD Z1, (R8)(AX*1)
	ADDQ    $64, SI
	ADDQ    $64, AX
	CMPQ    AX, DX
	JLT     zsanowrap
	XORQ    AX, AX

zsanowrap:
	SUBQ  $64, R12
	JNZ   zsacheckA
	XCHGQ CX, R10
	MOVQ  blkC+120(FP), R12
	SHLQ  $4, R12

zsacheckA:
	SUBQ  $64, R13
	JNZ   zsaloop
	XCHGQ R8, R9
	MOVQ  blkA+128(FP), R13
	SHLQ  $4, R13
	JMP   zsaloop

zsadone:
	VZEROUPPER
	RET

// func spanCollapseBlocksAVX512(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int)
TEXT ·spanCollapseBlocksAVX512(SB), NOSPLIT, $0-128
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ cc_base+24(FP), CX
	MOVQ cc_len+32(FP), DX
	SHLQ $3, DX
	MOVQ mA_base+48(FP), R10
	MOVQ mB_base+72(FP), R11
	MOVQ acc_base+96(FP), R8
	MOVQ blk+120(FP), R12
	SHLQ $4, R12
	MOVQ R12, R9
	XORQ AX, AX

zcploop:
	CMPQ    SI, BX
	JGE     zcpdone
	VMOVUPD (SI), Z0
	VMULPD  (CX)(AX*1), Z0, Z0
	VANDPD  (R10)(AX*1), Z0, Z0
	VMOVUPD Z0, (SI)
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  (R8)(AX*1), Z1, Z1
	VMOVUPD Z1, (R8)(AX*1)
	ADDQ    $64, SI
	ADDQ    $64, AX
	CMPQ    AX, DX
	JLT     zcpnowrap
	XORQ    AX, AX

zcpnowrap:
	SUBQ  $64, R12
	JNZ   zcploop
	XCHGQ R10, R11
	MOVQ  R9, R12
	JMP   zcploop

zcpdone:
	VZEROUPPER
	RET
// 8-lane specializations of the accumulating walkers. With L = 8 a
// duplicated per-lane array is exactly 16 float64 = two ZMM registers,
// so the accumulators live in registers for the whole pass — the
// generic bodies' store-to-load round trip through the accumulator
// array every other iteration is the dependency chain that bounds
// them, not vector width. One loop iteration handles one span row
// (128 bytes); every swap period is a multiple of the row, so phase
// changes only happen between iterations. Accumulator phase switches
// jump between two loop bodies (no data movement); the coefficient /
// mask streams stay memory loads with base-pointer exchange. The
// per-slot addition order is unchanged from the generic bodies.

// func spanScaleAccBlocksZ8(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int)
TEXT ·spanScaleAccBlocksZ8(SB), NOSPLIT, $0-136
	MOVQ    span_base+0(FP), SI
	MOVQ    span_len+8(FP), BX
	SHLQ    $4, BX
	ADDQ    SI, BX
	MOVQ    cA_base+24(FP), CX
	MOVQ    cB_base+48(FP), R10
	MOVQ    aA_base+72(FP), R8
	MOVQ    aB_base+96(FP), R9
	MOVQ    blkC+120(FP), R12
	SHLQ    $4, R12
	MOVQ    blkA+128(FP), R13
	SHLQ    $4, R13
	VMOVUPD (R8), Z4
	VMOVUPD 64(R8), Z5
	VMOVUPD (R9), Z6
	VMOVUPD 64(R9), Z7

z8saA:
	CMPQ    SI, BX
	JGE     z8sadone
	VMOVUPD (SI), Z0
	VMULPD  (CX), Z0, Z0
	VMOVUPD Z0, (SI)
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z4, Z4
	VMOVUPD 64(SI), Z0
	VMULPD  64(CX), Z0, Z0
	VMOVUPD Z0, 64(SI)
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z5, Z5
	ADDQ    $128, SI
	SUBQ    $128, R12
	JNZ     z8saAckA
	XCHGQ   CX, R10
	MOVQ    blkC+120(FP), R12
	SHLQ    $4, R12

z8saAckA:
	SUBQ $128, R13
	JNZ  z8saA
	MOVQ blkA+128(FP), R13
	SHLQ $4, R13

z8saB:
	CMPQ    SI, BX
	JGE     z8sadone
	VMOVUPD (SI), Z0
	VMULPD  (CX), Z0, Z0
	VMOVUPD Z0, (SI)
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z6, Z6
	VMOVUPD 64(SI), Z0
	VMULPD  64(CX), Z0, Z0
	VMOVUPD Z0, 64(SI)
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z7, Z7
	ADDQ    $128, SI
	SUBQ    $128, R12
	JNZ     z8saBckA
	XCHGQ   CX, R10
	MOVQ    blkC+120(FP), R12
	SHLQ    $4, R12

z8saBckA:
	SUBQ $128, R13
	JNZ  z8saB
	MOVQ blkA+128(FP), R13
	SHLQ $4, R13
	JMP  z8saA

z8sadone:
	VMOVUPD Z4, (R8)
	VMOVUPD Z5, 64(R8)
	VMOVUPD Z6, (R9)
	VMOVUPD Z7, 64(R9)
	VZEROUPPER
	RET

// func spanAccBlocksZ8(span []complex128, aA, aB []float64, blkA int)
TEXT ·spanAccBlocksZ8(SB), NOSPLIT, $0-80
	MOVQ    span_base+0(FP), SI
	MOVQ    span_len+8(FP), BX
	SHLQ    $4, BX
	ADDQ    SI, BX
	MOVQ    aA_base+24(FP), R8
	MOVQ    aB_base+48(FP), R9
	MOVQ    blkA+72(FP), R13
	SHLQ    $4, R13
	MOVQ    R13, R11
	VMOVUPD (R8), Z4
	VMOVUPD 64(R8), Z5
	VMOVUPD (R9), Z6
	VMOVUPD 64(R9), Z7

z8acA:
	CMPQ    SI, BX
	JGE     z8acdone
	VMOVUPD (SI), Z0
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z4, Z4
	VMOVUPD 64(SI), Z0
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z5, Z5
	ADDQ    $128, SI
	SUBQ    $128, R13
	JNZ     z8acA
	MOVQ    R11, R13

z8acB:
	CMPQ    SI, BX
	JGE     z8acdone
	VMOVUPD (SI), Z0
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z6, Z6
	VMOVUPD 64(SI), Z0
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z7, Z7
	ADDQ    $128, SI
	SUBQ    $128, R13
	JNZ     z8acB
	MOVQ    R11, R13
	JMP     z8acA

z8acdone:
	VMOVUPD Z4, (R8)
	VMOVUPD Z5, 64(R8)
	VMOVUPD Z6, (R9)
	VMOVUPD Z7, 64(R9)
	VZEROUPPER
	RET

// func spanCollapseBlocksZ8(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int)
//
// The coefficient stream never swaps, so it loads into registers once;
// the accumulator is a single stream (two registers); only the keep-
// mask pair exchanges base pointers.
TEXT ·spanCollapseBlocksZ8(SB), NOSPLIT, $0-128
	MOVQ    span_base+0(FP), SI
	MOVQ    span_len+8(FP), BX
	SHLQ    $4, BX
	ADDQ    SI, BX
	MOVQ    cc_base+24(FP), CX
	MOVQ    mA_base+48(FP), R10
	MOVQ    mB_base+72(FP), R11
	MOVQ    acc_base+96(FP), R8
	MOVQ    blk+120(FP), R12
	SHLQ    $4, R12
	MOVQ    R12, R9
	VMOVUPD (CX), Z8
	VMOVUPD 64(CX), Z9
	VMOVUPD (R8), Z4
	VMOVUPD 64(R8), Z5

z8cp:
	CMPQ    SI, BX
	JGE     z8cpdone
	VMOVUPD (SI), Z0
	VMULPD  Z8, Z0, Z0
	VANDPD  (R10), Z0, Z0
	VMOVUPD Z0, (SI)
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z4, Z4
	VMOVUPD 64(SI), Z0
	VMULPD  Z9, Z0, Z0
	VANDPD  64(R10), Z0, Z0
	VMOVUPD Z0, 64(SI)
	VMULPD  Z0, Z0, Z1
	VSHUFPD $0x55, Z1, Z1, Z2
	VADDPD  Z2, Z1, Z1
	VADDPD  Z1, Z5, Z5
	ADDQ    $128, SI
	SUBQ    $128, R12
	JNZ     z8cp
	XCHGQ   R10, R11
	MOVQ    R9, R12
	JMP     z8cp

z8cpdone:
	VMOVUPD Z4, (R8)
	VMOVUPD Z5, 64(R8)
	VZEROUPPER
	RET

// func spanAntiAccBlocksASM(span []complex128, cr01, ci01, cr10, ci10 []float64, kp []uint64, aA, aB []float64, blk int)
//
// Whole-block batched anti-diagonal pass: within each 2·blk group,
// lo element j pairs with hi element j. Per 32-byte step (2 lanes):
// nlo = c01·hi and nhi = c10·lo via the VMULPD/VMULPD/VADDSUBPD
// complex-multiply sequence (same roundings as the gc compiler), then
// a bitwise blend against the keep-mask — all-ones slots pass the
// original amplitude bits through untouched, all-zero slots take the
// product — and a self-swap-add |·|² accumulation of the blended
// values into the aA (lo) / aB (hi) slots. The rolling dup cursor R10
// indexes all per-lane arrays; group boundaries are multiples of the
// 16L wrap, so the cursor is 0 at every group start. The four
// coefficient bases share R12/R13, reloaded from the frame per step.
TEXT ·spanAntiAccBlocksASM(SB), NOSPLIT, $0-200
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ blk+192(FP), R11
	SHLQ $4, R11
	MOVQ cr01_len+32(FP), DX
	SHLQ $3, DX
	MOVQ kp_base+120(FP), CX
	MOVQ aA_base+144(FP), R8
	MOVQ aB_base+168(FP), R9
	XORQ R10, R10

aaouter:
	CMPQ SI, BX
	JGE  aadone
	LEAQ (SI)(R11*1), DI
	XORQ AX, AX

aainner:
	VMOVUPD (SI)(AX*1), Y0            // lo
	VMOVUPD (DI)(AX*1), Y1            // hi
	VMOVUPD (CX)(R10*1), Y15          // keep-mask

	// c01·hi
	MOVQ      cr01_base+24(FP), R12
	MOVQ      ci01_base+48(FP), R13
	VSHUFPD   $5, Y1, Y1, Y2          // [hi.im, hi.re]
	VMULPD    (R12)(R10*1), Y1, Y3    // [cr·re, cr·im]
	VMULPD    (R13)(R10*1), Y2, Y4    // [ci·im, ci·re]
	VADDSUBPD Y4, Y3, Y3              // [cr·re − ci·im, cr·im + ci·re]

	// c10·lo
	MOVQ      cr10_base+72(FP), R12
	MOVQ      ci10_base+96(FP), R13
	VSHUFPD   $5, Y0, Y0, Y2
	VMULPD    (R12)(R10*1), Y0, Y5
	VMULPD    (R13)(R10*1), Y2, Y6
	VADDSUBPD Y6, Y5, Y5

	// blend: keep-lanes pass original bits, anti lanes take products
	VANDPD  Y15, Y0, Y7
	VANDNPD Y3, Y15, Y3
	VORPD   Y3, Y7, Y7                // new lo
	VANDPD  Y15, Y1, Y8
	VANDNPD Y5, Y15, Y5
	VORPD   Y5, Y8, Y8                // new hi
	VMOVUPD Y7, (SI)(AX*1)
	VMOVUPD Y8, (DI)(AX*1)

	// |new|² into the lane slots (both dup copies identical)
	VMULPD  Y7, Y7, Y9
	VSHUFPD $5, Y9, Y9, Y10
	VADDPD  Y10, Y9, Y9
	VADDPD  (R8)(R10*1), Y9, Y9
	VMOVUPD Y9, (R8)(R10*1)
	VMULPD  Y8, Y8, Y11
	VSHUFPD $5, Y11, Y11, Y12
	VADDPD  Y12, Y11, Y11
	VADDPD  (R9)(R10*1), Y11, Y11
	VMOVUPD Y11, (R9)(R10*1)

	ADDQ $32, R10
	CMPQ R10, DX
	JNE  aanowrap
	XORQ R10, R10

aanowrap:
	ADDQ $32, AX
	CMPQ AX, R11
	JLT  aainner
	LEAQ (DI)(R11*1), SI
	JMP  aaouter

aadone:
	VZEROUPPER
	RET

DATA  altsign<>+0(SB)/8, $0x8000000000000000
DATA  altsign<>+8(SB)/8, $0x0000000000000000
GLOBL altsign<>(SB), RODATA, $16

// func spanAntiAccBlocksZ8(span []complex128, cr01, ci01, cr10, ci10 []float64, kp []uint64, aA, aB []float64, blk int)
//
// L=8 ZMM specialization of the batched anti pass: every per-lane
// array is exactly two ZMM registers, so coefficients, keep-masks, and
// both accumulator pairs are loaded once and live in registers for the
// whole walk; each iteration handles one 128-byte row of each half
// with no rolling cursor. VADDSUBPD has no EVEX form, so the
// complex-multiply combine is an explicit even-slot sign flip (VXORPD
// with the alternating sign constant — exact) followed by VADDPD:
// x − y ≡ x + (−y) in IEEE-754, bit for bit.
TEXT ·spanAntiAccBlocksZ8(SB), NOSPLIT, $0-200
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ blk+192(FP), R11
	SHLQ $4, R11
	MOVQ cr01_base+24(FP), R12
	VMOVUPD (R12), Z20
	VMOVUPD 64(R12), Z21
	MOVQ ci01_base+48(FP), R12
	VMOVUPD (R12), Z22
	VMOVUPD 64(R12), Z23
	MOVQ cr10_base+72(FP), R12
	VMOVUPD (R12), Z24
	VMOVUPD 64(R12), Z25
	MOVQ ci10_base+96(FP), R12
	VMOVUPD (R12), Z26
	VMOVUPD 64(R12), Z27
	MOVQ kp_base+120(FP), R12
	VMOVUPD (R12), Z28
	VMOVUPD 64(R12), Z29
	MOVQ aA_base+144(FP), R8
	VMOVUPD (R8), Z16
	VMOVUPD 64(R8), Z17
	MOVQ aB_base+168(FP), R9
	VMOVUPD (R9), Z18
	VMOVUPD 64(R9), Z19
	VBROADCASTF64X2 altsign<>(SB), Z30

z8aaouter:
	CMPQ SI, BX
	JGE  z8aadone
	LEAQ (SI)(R11*1), DI
	XORQ AX, AX

z8aainner:
	VMOVUPD (SI)(AX*1), Z0            // lo, lanes 0–3
	VMOVUPD 64(SI)(AX*1), Z1          // lo, lanes 4–7
	VMOVUPD (DI)(AX*1), Z2            // hi, lanes 0–3
	VMOVUPD 64(DI)(AX*1), Z3          // hi, lanes 4–7

	// new lo = blend(lo, c01·hi)
	VSHUFPD $0x55, Z2, Z2, Z8
	VMULPD  Z2, Z20, Z9
	VMULPD  Z8, Z22, Z8
	VXORPD  Z30, Z8, Z8
	VADDPD  Z8, Z9, Z9
	VANDPD  Z0, Z28, Z10
	VANDNPD Z9, Z28, Z9
	VORPD   Z9, Z10, Z10
	VSHUFPD $0x55, Z3, Z3, Z8
	VMULPD  Z3, Z21, Z11
	VMULPD  Z8, Z23, Z8
	VXORPD  Z30, Z8, Z8
	VADDPD  Z8, Z11, Z11
	VANDPD  Z1, Z29, Z12
	VANDNPD Z11, Z29, Z11
	VORPD   Z11, Z12, Z12

	// new hi = blend(hi, c10·lo)
	VSHUFPD $0x55, Z0, Z0, Z8
	VMULPD  Z0, Z24, Z13
	VMULPD  Z8, Z26, Z8
	VXORPD  Z30, Z8, Z8
	VADDPD  Z8, Z13, Z13
	VANDPD  Z2, Z28, Z14
	VANDNPD Z13, Z28, Z13
	VORPD   Z13, Z14, Z14
	VSHUFPD $0x55, Z1, Z1, Z8
	VMULPD  Z1, Z25, Z15
	VMULPD  Z8, Z27, Z8
	VXORPD  Z30, Z8, Z8
	VADDPD  Z8, Z15, Z15
	VANDPD  Z3, Z29, Z31
	VANDNPD Z15, Z29, Z15
	VORPD   Z15, Z31, Z31

	VMOVUPD Z10, (SI)(AX*1)
	VMOVUPD Z12, 64(SI)(AX*1)
	VMOVUPD Z14, (DI)(AX*1)
	VMOVUPD Z31, 64(DI)(AX*1)

	// register-resident |new|² accumulation
	VMULPD  Z10, Z10, Z8
	VSHUFPD $0x55, Z8, Z8, Z9
	VADDPD  Z9, Z8, Z8
	VADDPD  Z8, Z16, Z16
	VMULPD  Z12, Z12, Z8
	VSHUFPD $0x55, Z8, Z8, Z9
	VADDPD  Z9, Z8, Z8
	VADDPD  Z8, Z17, Z17
	VMULPD  Z14, Z14, Z8
	VSHUFPD $0x55, Z8, Z8, Z9
	VADDPD  Z9, Z8, Z8
	VADDPD  Z8, Z18, Z18
	VMULPD  Z31, Z31, Z8
	VSHUFPD $0x55, Z8, Z8, Z9
	VADDPD  Z9, Z8, Z8
	VADDPD  Z8, Z19, Z19

	ADDQ $128, AX
	CMPQ AX, R11
	JLT  z8aainner
	LEAQ (DI)(R11*1), SI
	JMP  z8aaouter

z8aadone:
	VMOVUPD Z16, (R8)
	VMOVUPD Z17, 64(R8)
	VMOVUPD Z18, (R9)
	VMOVUPD Z19, 64(R9)
	VZEROUPPER
	RET

// func spanApply1RDBlocksAVX512(span []complex128, maskL int, r00, r11, u01re, u01im, u10re, u10im float64)
//
// ZMM body of the real-diagonal pair update, 4 pairs per iteration.
// VADDSUBPD has no EVEX form, so the complex-multiply combine flips
// the even slots' signs with the alternating constant (exact) and
// uses one VADDPD: x − y ≡ x + (−y) in IEEE-754, bit for bit.
TEXT ·spanApply1RDBlocksAVX512(SB), NOSPLIT, $0-80
	MOVQ            span_base+0(FP), SI
	MOVQ            span_len+8(FP), BX
	SHLQ            $4, BX
	ADDQ            SI, BX
	MOVQ            maskL+24(FP), R11
	SHLQ            $4, R11
	VBROADCASTSD    r00+32(FP), Z8
	VBROADCASTSD    r11+40(FP), Z9
	VBROADCASTSD    u01re+48(FP), Z10
	VBROADCASTSD    u01im+56(FP), Z11
	VBROADCASTSD    u10re+64(FP), Z12
	VBROADCASTSD    u10im+72(FP), Z13
	VBROADCASTF64X2 altsign<>(SB), Z14

zrdouter:
	CMPQ SI, BX
	JGE  zrddone
	LEAQ (SI)(R11*1), DI
	XORQ AX, AX

zrdinner:
	VMOVUPD (SI)(AX*1), Z0            // a0
	VMOVUPD (DI)(AX*1), Z1            // a1

	// x = u01·a1
	VSHUFPD $0x55, Z1, Z1, Z2         // [a1im, a1re]
	VMULPD  Z1, Z10, Z3               // [xre·a1re, xre·a1im]
	VMULPD  Z2, Z11, Z4               // [xim·a1im, xim·a1re]
	VXORPD  Z14, Z4, Z4
	VADDPD  Z4, Z3, Z3                // [xre·a1re − xim·a1im, xre·a1im + xim·a1re]

	// y = u10·a0
	VSHUFPD $0x55, Z0, Z0, Z2
	VMULPD  Z0, Z12, Z5
	VMULPD  Z2, Z13, Z4
	VXORPD  Z14, Z4, Z4
	VADDPD  Z4, Z5, Z5

	// lo' = a0·r00 + x
	VMULPD  Z0, Z8, Z6
	VADDPD  Z3, Z6, Z6
	VMOVUPD Z6, (SI)(AX*1)

	// hi' = y + a1·r11
	VMULPD  Z1, Z9, Z7
	VADDPD  Z7, Z5, Z7
	VMOVUPD Z7, (DI)(AX*1)

	ADDQ $64, AX
	CMPQ AX, R11
	JLT  zrdinner
	LEAQ (DI)(R11*1), SI
	JMP  zrdouter

zrddone:
	VZEROUPPER
	RET

// func spanScaleBlocksZ8(span []complex128, cA, cB []float64, blkC int)
//
// L=8 ZMM specialization of the scaling pass: each coefficient array
// is exactly two ZMM registers, preloaded once; the coefficient-pair
// swap is two phase-specific loop bodies (A-rows scale by Z20/Z21,
// B-rows by Z22/Z23) with no rolling cursor and no data movement at
// swaps. One 128-byte row per iteration; every swap period is a row
// multiple.
TEXT ·spanScaleBlocksZ8(SB), NOSPLIT, $0-80
	MOVQ span_base+0(FP), SI
	MOVQ span_len+8(FP), BX
	SHLQ $4, BX
	ADDQ SI, BX
	MOVQ blkC+72(FP), R11
	SHLQ $4, R11
	MOVQ R11, R12
	MOVQ cA_base+24(FP), CX
	VMOVUPD (CX), Z20
	VMOVUPD 64(CX), Z21
	MOVQ cB_base+48(FP), CX
	VMOVUPD (CX), Z22
	VMOVUPD 64(CX), Z23

z8scA:
	CMPQ SI, BX
	JGE  z8scdone
	VMOVUPD (SI), Z0
	VMOVUPD 64(SI), Z1
	VMULPD  Z0, Z20, Z0
	VMULPD  Z1, Z21, Z1
	VMOVUPD Z0, (SI)
	VMOVUPD Z1, 64(SI)
	ADDQ    $128, SI
	SUBQ    $128, R12
	JNZ     z8scA
	MOVQ    R11, R12

z8scB:
	CMPQ SI, BX
	JGE  z8scdone
	VMOVUPD (SI), Z0
	VMOVUPD 64(SI), Z1
	VMULPD  Z0, Z22, Z0
	VMULPD  Z1, Z23, Z1
	VMOVUPD Z0, (SI)
	VMOVUPD Z1, 64(SI)
	ADDQ    $128, SI
	SUBQ    $128, R12
	JNZ     z8scB
	MOVQ    R11, R12
	JMP     z8scA

z8scdone:
	VZEROUPPER
	RET

DATA  one64<>+0(SB)/8, $1.0
GLOBL one64<>(SB), RODATA, $8

// func recipSqrtVec8ASM(dst, src []float64)
//
// dst[i] = 1 / sqrt(src[i]), 8 elements per iteration (len a multiple
// of 8). VSQRTPD and VDIVPD are correctly rounded — each element is
// bit-identical to Go's 1 / math.Sqrt(x) (SQRTSD then DIVSD). Used to
// batch the per-lane reciprocal-roots of the channel and measurement
// decision loops, whose serial SQRTSD+DIVSD chains otherwise bound
// them.
TEXT ·recipSqrtVec8ASM(SB), NOSPLIT, $0-48
	MOVQ         dst_base+0(FP), DI
	MOVQ         src_base+24(FP), SI
	MOVQ         dst_len+8(FP), BX
	SHLQ         $3, BX
	ADDQ         SI, BX
	VBROADCASTSD one64<>(SB), Z1

rs8loop:
	CMPQ    SI, BX
	JGE     rs8done
	VSQRTPD (SI), Z0
	VDIVPD  Z0, Z1, Z0
	VMOVUPD Z0, (DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	JMP     rs8loop

rs8done:
	VZEROUPPER
	RET

// func recipSqrtVec4ASM(dst, src []float64)
//
// AVX2 form of recipSqrtVec8ASM: 4 elements per iteration, len a
// multiple of 4. Same correctly-rounded operations, same bits.
TEXT ·recipSqrtVec4ASM(SB), NOSPLIT, $0-48
	MOVQ         dst_base+0(FP), DI
	MOVQ         src_base+24(FP), SI
	MOVQ         dst_len+8(FP), BX
	SHLQ         $3, BX
	ADDQ         SI, BX
	VBROADCASTSD one64<>(SB), Y1

rs4loop:
	CMPQ    SI, BX
	JGE     rs4done
	VSQRTPD (SI), Y0
	VDIVPD  Y0, Y1, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	JMP     rs4loop

rs4done:
	VZEROUPPER
	RET
