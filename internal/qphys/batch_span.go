package qphys

// batch_span.go — the span primitives of the lockstep batched executor.
//
// The lane-minor amplitude block of an L-lane batch stores amplitude i
// of lane l at flat index i·L+l, so rows i..i+n-1 are n·L consecutive
// complex128s and the lane of flat element j is j mod L. Per-lane
// values (scale coefficients, population accumulators) use the
// DUPLICATED layout: a []float64 of length 2L where lane l's value
// occupies slots 2l and 2l+1. That layout makes the per-lane value
// stream exactly congruent with a row's float64 stream — flat float64
// index f belongs to lane (f/2) mod L, i.e. to duplicated slot
// f mod 2L — so a SIMD kernel walks amplitudes and per-lane values
// with one rolling cursor and no shuffles, and the pure-Go bodies walk
// them with one wrapped counter. Writers of duplicated arrays must
// keep the pair equal where a SIMD kernel will read it; accumulating
// SIMD kernels update both slots with identical values, pure-Go bodies
// update slot 2l only, and every reader uses slot 2l — both
// conventions satisfy it.
//
// Every single-qubit kernel of the scalar executor is, on this layout,
// ONE pass over the whole amplitude block in which the per-lane
// coefficient pair (lo-half vs hi-half of qubit q) alternates every
// mask·L elements and the accumulator pair (lo vs hi of the carry
// target) alternates every nmask·L elements. The primitives therefore
// take whole blocks with the two swap periods as arguments — one call
// per schedule op, never one call per bit-block — and handle the
// periods independently; passing the same slice for both members of a
// pair pins that stream (its swap becomes a no-op), which covers every
// mask-nesting sub-case of the scalar kernels with one code path.
//
// Each primitive has an AVX2 assembly body (span_amd64.s) selected at
// package init when the CPU supports it and the lane count is even
// (odd L takes the Go bodies), and a pure-Go body that is the
// bit-for-bit reference. The assembly is constrained to be
// bitwise-identical to the Go bodies: every float op is an IEEE-754
// binary64 mul/add/sub in round-to-nearest with no FMA contraction
// (VMULPD/VADDPD/VADDSUBPD — the gc compiler never contracts on amd64
// either), and sums the Go body forms as a+b may be formed as b+a
// (IEEE addition is commutative in value and bits for the non-NaN
// inputs these kernels see). Setting QUMA_NOSIMD=1 in the environment
// forces the Go bodies.

import (
	"math"
	"os"
)

// spanScaleBlocks multiplies each element's parts by its lane's
// current coefficient, the coefficient pair (cA, cB) swapping every
// blkC elements starting on cA: the no-carry scaling pass of the
// scalar channel kernels (blkC = mask·L). blkC must divide len(span)
// and be a multiple of the row length len(cA)/2.
func spanScaleBlocks(span []complex128, cA, cB []float64, blkC int) {
	if useSIMD512 && len(cA) == 16 {
		spanScaleBlocksZ8(span, cA, cB, blkC)
		return
	}
	if useSIMD512 && len(cA)&7 == 0 {
		spanScaleBlocksAVX512(span, cA, cB, blkC)
		return
	}
	if useSIMD && len(cA)&3 == 0 {
		spanScaleBlocksASM(span, cA, cB, blkC)
		return
	}
	k, leftC := 0, blkC
	for j, a := range span {
		c := cA[k]
		span[j] = complex(real(a)*c, imag(a)*c)
		if k += 2; k == len(cA) {
			k = 0
		}
		if leftC--; leftC == 0 {
			cA, cB = cB, cA
			leftC = blkC
		}
	}
}

// spanAccBlocks accumulates each element's |a|² into its lane's slot
// of the current accumulator, the pair (aA, aB) swapping every blkA
// elements starting on aA — the population pass of the scalar kernels
// (blkA = mask·L: lo rows feed aA, hi rows feed aB), per lane in the
// scalar addition order (each accumulator sees its elements in
// ascending index order).
func spanAccBlocks(span []complex128, aA, aB []float64, blkA int) {
	if useSIMD512 && len(aA) == 16 && &aA[0] != &aB[0] {
		spanAccBlocksZ8(span, aA, aB, blkA)
		return
	}
	if useSIMD512 && len(aA)&7 == 0 {
		spanAccBlocksAVX512(span, aA, aB, blkA)
		return
	}
	if useSIMD && len(aA)&3 == 0 {
		spanAccBlocksASM(span, aA, aB, blkA)
		return
	}
	k, leftA := 0, blkA
	for _, a := range span {
		aA[k] += real(a)*real(a) + imag(a)*imag(a)
		if k += 2; k == len(aA) {
			k = 0
		}
		if leftA--; leftA == 0 {
			aA, aB = aB, aA
			leftA = blkA
		}
	}
}

// spanScaleAccBlocks is spanScaleBlocks fused with spanAccBlocks over
// the scaled values — the fused apply+carry pass of the scalar channel
// kernels, covering all three mask-nesting sub-cases: blkC = mask·L,
// blkA = nmask·L, each stream swapping at its own period.
func spanScaleAccBlocks(span []complex128, cA, cB, aA, aB []float64, blkC, blkA int) {
	if useSIMD512 && len(cA) == 16 && &aA[0] != &aB[0] {
		spanScaleAccBlocksZ8(span, cA, cB, aA, aB, blkC, blkA)
		return
	}
	if useSIMD512 && len(cA)&7 == 0 {
		spanScaleAccBlocksAVX512(span, cA, cB, aA, aB, blkC, blkA)
		return
	}
	if useSIMD && len(cA)&3 == 0 {
		spanScaleAccBlocksASM(span, cA, cB, aA, aB, blkC, blkA)
		return
	}
	k, leftC, leftA := 0, blkC, blkA
	for j, a := range span {
		c := cA[k]
		re, im := real(a)*c, imag(a)*c
		span[j] = complex(re, im)
		aA[k] += re*re + im*im
		if k += 2; k == len(cA) {
			k = 0
		}
		if leftC--; leftC == 0 {
			cA, cB = cB, cA
			leftC = blkC
		}
		if leftA--; leftA == 0 {
			aA, aB = aB, aA
			leftA = blkA
		}
	}
}

// spanApply1RDBlocks applies a real-diagonal 2×2 unitary to every
// amplitude pair of the block: elements j and j+maskL of each
// 2·maskL-element group form a pair (maskL = mask·L) — Apply1RD's
// pair update with the coefficients uniform across lanes.
func spanApply1RDBlocks(span []complex128, maskL int, r00, r11 float64, u01, u10 complex128) {
	if useSIMD512 && maskL&3 == 0 {
		spanApply1RDBlocksAVX512(span, maskL, r00, r11, real(u01), imag(u01), real(u10), imag(u10))
		return
	}
	if useSIMD && maskL&1 == 0 {
		spanApply1RDBlocksASM(span, maskL, r00, r11, real(u01), imag(u01), real(u10), imag(u10))
		return
	}
	for base := 0; base < len(span); base += maskL << 1 {
		lo := span[base : base+maskL : base+maskL]
		hi := span[base+maskL : base+maskL+maskL : base+maskL+maskL]
		for j, a0 := range lo {
			a1 := hi[j]
			x := u01 * a1
			y := u10 * a0
			lo[j] = complex(real(a0)*r00+real(x), imag(a0)*r00+imag(x))
			hi[j] = complex(real(y)+real(a1)*r11, imag(y)+imag(a1)*r11)
		}
	}
}

// spanCollapseBlocks is the batched measurement collapse: each
// element is scaled by its lane's coefficient (1/√p) and then masked
// by its lane's keep-mask for the current half — all-ones bits keep
// the scaled value untouched, all-zero bits force an exact +0, the
// literal zero the scalar collapse stores into the discarded half.
// The mask pair (mA, mB) swaps every blk elements starting on mA
// (blk = mask·L: lo rows use mA, hi rows mB); the coefficient stream
// never swaps. |new|² accumulates into acc per lane in ascending
// index order; masked elements contribute an exact +0, which never
// perturbs a non-negative partial sum, so acc finishes bit-equal to
// the scalar kept-half-only accumulation.
func spanCollapseBlocks(span []complex128, cc []float64, mA, mB []uint64, acc []float64, blk int) {
	if useSIMD512 && len(cc) == 16 {
		spanCollapseBlocksZ8(span, cc, mA, mB, acc, blk)
		return
	}
	if useSIMD512 && len(cc)&7 == 0 {
		spanCollapseBlocksAVX512(span, cc, mA, mB, acc, blk)
		return
	}
	if useSIMD && len(cc)&3 == 0 {
		spanCollapseBlocksASM(span, cc, mA, mB, acc, blk)
		return
	}
	k, left := 0, blk
	for j, a := range span {
		c := cc[k]
		m := mA[k]
		re := math.Float64frombits(math.Float64bits(real(a)*c) & m)
		im := math.Float64frombits(math.Float64bits(imag(a)*c) & m)
		span[j] = complex(re, im)
		acc[k] += re*re + im*im
		if k += 2; k == len(cc) {
			k = 0
		}
		if left--; left == 0 {
			mA, mB = mB, mA
			left = blk
		}
	}
}

// spanAntiAccBlocks applies per-lane anti-diagonal jump operators to a
// subset of lanes in one whole-block pass: for each pair group of
// 2·blk elements (blk = mask·L), element j of the lo half and element
// j of the hi half form lane j mod L's amplitude pair, and lanes whose
// keep-mask slots are zero receive lo' = c01·hi, hi' = c10·lo (the
// scalar anti kernel's swap) with |lo'|² and |hi'|² accumulated into
// their aA/aB slots in ascending pair order; lanes whose keep-mask
// slots are all-ones keep both halves bit-untouched. The coefficients
// arrive as duplicated re/im part arrays (cr01/ci01/cr10/ci10, lane l
// at slots 2l and 2l+1); the complex products are formed exactly as
// the gc compiler forms a complex128 multiply (re = cr·hre − ci·him,
// im = cr·him + ci·hre, one rounding each), so an anti lane's bytes
// equal the strided per-lane kernel's. Keep-mask slots must be
// all-ones or all-zero; kept lanes' coefficient slots and every kept
// lane's aA/aB slots are unspecified (the SIMD bodies compute and
// mask, and accumulate all lanes — callers read only anti-lane
// accumulator slots).
func spanAntiAccBlocks(span []complex128, cr01, ci01, cr10, ci10 []float64, kp []uint64, aA, aB []float64, blk int) {
	if useSIMD512 && len(cr01) == 16 {
		spanAntiAccBlocksZ8(span, cr01, ci01, cr10, ci10, kp, aA, aB, blk)
		return
	}
	if useSIMD && len(cr01)&3 == 0 {
		spanAntiAccBlocksASM(span, cr01, ci01, cr10, ci10, kp, aA, aB, blk)
		return
	}
	L2 := len(cr01)
	for base := 0; base < len(span); base += blk << 1 {
		lo := span[base : base+blk : base+blk]
		hi := span[base+blk : base+blk+blk : base+blk+blk]
		k := 0
		for j, a0 := range lo {
			if kp[k] == 0 {
				a1 := hi[j]
				v0 := complex(cr01[k], ci01[k]) * a1
				v1 := complex(cr10[k], ci10[k]) * a0
				lo[j] = v0
				hi[j] = v1
				aA[k] += real(v0)*real(v0) + imag(v0)*imag(v0)
				aB[k] += real(v1)*real(v1) + imag(v1)*imag(v1)
			}
			if k += 2; k == L2 {
				k = 0
			}
		}
	}
}

// spanNegBothBlocks negates the CZ-selected elements of the block:
// within each 2·hiL group's hi half, every other loL-element run
// starting loL in (the elements whose indices have both control bits
// set, times L). Negation is a sign-bit flip — exact in IEEE-754 — so
// the SIMD body (VXORPD with the sign mask) is trivially bit-identical.
func spanNegBothBlocks(span []complex128, hiL, loL int) {
	if useSIMD && loL&1 == 0 {
		spanNegBothBlocksASM(span, hiL, loL)
		return
	}
	for a := hiL; a < len(span); a += hiL << 1 {
		for c := a + loL; c < a+hiL; c += loL << 1 {
			seg := span[c : c+loL : c+loL]
			for j := range seg {
				seg[j] = -seg[j]
			}
		}
	}
}

// recipSqrtVec fills dst[i] = 1/√src[i]. The SIMD bodies use the
// correctly-rounded VSQRTPD/VDIVPD, so every element is bit-identical
// to the scalar expression; inputs that are zero, negative, or stale
// produce Inf/NaN exactly as the scalar expression would, which
// callers rely on only to the extent that they read slots they
// populated. A single-ZMM-row call pays more in transition stalls than
// the extra YMM iteration costs, so length 8 takes the YMM body.
func recipSqrtVec(dst, src []float64) {
	if useSIMD512 && len(dst)&7 == 0 && len(dst) > 8 {
		recipSqrtVec8ASM(dst, src)
		return
	}
	if useSIMD && len(dst)&3 == 0 {
		recipSqrtVec4ASM(dst, src)
		return
	}
	for i, x := range src {
		dst[i] = 1 / math.Sqrt(x)
	}
}

// simdDisabled reports the environment kill switch, read once at init.
func simdDisabled() bool { return os.Getenv("QUMA_NOSIMD") != "" }
