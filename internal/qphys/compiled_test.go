package qphys

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Property tests for the compiled-channel hooks: every compiled kernel
// must be bit-identical to the un-compiled path it replaces (same PRNG
// consumption, same amplitudes under ==, which treats ±0 as equal), and
// the fused/hoisted kernels must stay pinned to the dense Embed-based
// reference at 1e-12.

// testChannels returns a representative set of axis-aligned channels —
// everything DecoherenceChannel composes, plus depolarizing — and one
// channel containing a dense operator (Hadamard-conjugated damping),
// which must take the general fallback path.
func testChannels() map[string][]Matrix {
	h := Hadamard()
	ad := AmplitudeDamping(0.2)
	dense := []Matrix{
		h.Mul(ad[0]).Mul(h.Dagger()),
		h.Mul(ad[1]).Mul(h.Dagger()),
	}
	return map[string][]Matrix{
		"decoherence-short": DecoherenceChannel(20e-9, DefaultQubitParams()),
		"decoherence-long":  DecoherenceChannel(8e-6, DefaultQubitParams()),
		"decoherence-huge":  DecoherenceChannel(200e-6, DefaultQubitParams()),
		"thermal":           DecoherenceChannel(1e-6, QubitParams{T1: 30e-6, T2: 20e-6, ThermalPopulation: 0.01}),
		"depolarizing":      Depolarizing(0.1),
		"damping":           AmplitudeDamping(0.3),
		"dephasing":         PhaseDamping(0.4),
		"single-op":         {RX(0.7)},
		"dense":             dense,
	}
}

// randomTrajectory returns a normalized random n-qubit state whose
// channel sampling draws from a PRNG seeded with seed.
func randomTrajectory(n int, seed int64) *Trajectory {
	t := NewTrajectory(n, rand.New(rand.NewSource(seed)))
	gen := rand.New(rand.NewSource(seed + 1000))
	var norm float64
	for i := range t.Psi {
		re, im := gen.NormFloat64(), gen.NormFloat64()
		t.Psi[i] = complex(re, im)
		norm += re*re + im*im
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range t.Psi {
		t.Psi[i] *= inv
	}
	return t
}

func samePsi(t *testing.T, want, got *Trajectory, context string) {
	t.Helper()
	for i := range want.Psi {
		if want.Psi[i] != got.Psi[i] {
			t.Fatalf("%s: amplitude %d differs: %v vs %v", context, i, want.Psi[i], got.Psi[i])
		}
	}
}

// sameRNG verifies both machines' PRNG streams are at the same position.
func sameRNG(t *testing.T, a, b *Trajectory, context string) {
	t.Helper()
	if x, y := a.rng.Float64(), b.rng.Float64(); x != y {
		t.Fatalf("%s: PRNG streams diverged: next draws %v vs %v", context, x, y)
	}
}

func TestApplyChannelBitIdenticalToApplyKraus1(t *testing.T) {
	for name, ops := range testChannels() {
		for _, n := range []int{1, 3, 5} {
			for q := 0; q < n; q++ {
				for seed := int64(1); seed <= 5; seed++ {
					ref := randomTrajectory(n, seed)
					cmp := randomTrajectory(n, seed)
					ref.ApplyKraus1(ops, q)
					cmp.ApplyChannel(NewChannelTable(ops), q)
					ctx := fmt.Sprintf("%s n=%d q=%d seed=%d", name, n, q, seed)
					samePsi(t, ref, cmp, ctx)
					sameRNG(t, ref, cmp, ctx)
				}
			}
		}
	}
}

// TestApplyChannelCarryChain drives a chain of channel applications with
// the carry threaded between steps — same-qubit, cross-qubit, and a
// phase-safe CZ in the middle — against plain ApplyKraus1 calls. The
// carry must change nothing, bit for bit, including when an anti-diagonal
// or dense draw breaks it mid-chain.
func TestApplyChannelCarryChain(t *testing.T) {
	chans := testChannels()
	chain := []struct {
		ch string
		q  int
	}{
		{"decoherence-long", 0}, {"decoherence-long", 1}, {"decoherence-long", 4},
		{"decoherence-huge", 2}, {"depolarizing", 3}, {"decoherence-short", 3},
		{"dense", 0}, {"decoherence-short", 1},
	}
	const n = 5
	for seed := int64(1); seed <= 20; seed++ {
		ref := randomTrajectory(n, seed)
		cmp := randomTrajectory(n, seed)
		carry := PopCarry{}
		carryQ := -1
		for i, step := range chain {
			if i == 3 {
				// A CZ between carry producer and consumer: amplitudes
				// change but every |a|² keeps its bits, so the carry must
				// survive the gate.
				ref.Apply2(CZ(), 1, 3)
				cmp.Apply2(CZ(), 1, 3)
			}
			ops := chans[step.ch]
			ref.ApplyKraus1(ops, step.q)
			nextQ := -1
			if i+1 < len(chain) {
				nextQ = chain[i+1].q
			}
			in := carry
			if carryQ != step.q {
				in.Valid = false
			}
			carry = cmp.ApplyChannelCarry(NewChannelTable(ops), step.q, in, nextQ)
			carryQ = nextQ
		}
		samePsi(t, ref, cmp, fmt.Sprintf("chain seed=%d", seed))
		sameRNG(t, ref, cmp, fmt.Sprintf("chain seed=%d", seed))
	}
}

func TestMeasureCarryMatchesMeasure(t *testing.T) {
	const n = 4
	for q := 0; q < n; q++ {
		for seed := int64(1); seed <= 10; seed++ {
			ref := randomTrajectory(n, seed)
			cmp := randomTrajectory(n, seed)
			want := ref.Measure(q, ref.rng)
			outcome, carry := cmp.MeasureCarry(q, cmp.ProbExcited(q), cmp.rng, true)
			if want != outcome {
				t.Fatalf("q=%d seed=%d: outcomes differ: %d vs %d", q, seed, want, outcome)
			}
			samePsi(t, ref, cmp, fmt.Sprintf("measure q=%d seed=%d", q, seed))
			if !carry.Valid {
				t.Fatalf("q=%d seed=%d: no carry from MeasureCarry", q, seed)
			}
			// The carried populations must equal a fresh pass bit for bit.
			var p0, p1 float64
			bit := n - 1 - q
			for i, a := range cmp.Psi {
				if (i>>bit)&1 == 0 {
					p0 += real(a)*real(a) + imag(a)*imag(a)
				} else {
					p1 += real(a)*real(a) + imag(a)*imag(a)
				}
			}
			if carry.P0 != p0 || carry.P1 != p1 {
				t.Fatalf("q=%d seed=%d: carry (%v,%v) != fresh pass (%v,%v)", q, seed, carry.P0, carry.P1, p0, p1)
			}
		}
	}
}

func TestApply1RDAndCarryMatchApply1(t *testing.T) {
	const n = 4
	us := []Matrix{REquator(0.3, 1.1), REquator(2.0, math.Pi), RX(0.5), Hadamard()}
	for ui, u := range us {
		if !RealDiag2(u) {
			t.Fatalf("test unitary %d should have real diagonal entries", ui)
		}
		for q := 0; q < n; q++ {
			ref := randomTrajectory(n, int64(ui)+7)
			rd := randomTrajectory(n, int64(ui)+7)
			fc := randomTrajectory(n, int64(ui)+7)
			ref.Apply1(u, q)
			rd.Apply1RD(u, q)
			carry := fc.Apply1RDCarry(u, q)
			samePsi(t, ref, rd, fmt.Sprintf("Apply1RD u=%d q=%d", ui, q))
			samePsi(t, ref, fc, fmt.Sprintf("Apply1RDCarry u=%d q=%d", ui, q))
			// Carry equals a fresh pass.
			var p0, p1 float64
			mask := 1 << (n - 1 - q)
			for base := 0; base < len(ref.Psi); base += mask << 1 {
				for i := base; i < base+mask; i++ {
					a0, a1 := ref.Psi[i], ref.Psi[i+mask]
					p0 += real(a0)*real(a0) + imag(a0)*imag(a0)
					p1 += real(a1)*real(a1) + imag(a1)*imag(a1)
				}
			}
			if carry.P0 != p0 || carry.P1 != p1 {
				t.Fatalf("u=%d q=%d: carry (%v,%v) != fresh pass (%v,%v)", ui, q, carry.P0, carry.P1, p0, p1)
			}
		}
	}
}

func TestNegateBothMatchesApply2CZ(t *testing.T) {
	const n = 5
	cz := CZ()
	if !IsCZ(cz) {
		t.Fatal("IsCZ must recognize the CZ matrix")
	}
	if IsCZ(Identity(4)) || IsCZ(Hadamard()) {
		t.Fatal("IsCZ must reject non-CZ matrices")
	}
	for qa := 0; qa < n; qa++ {
		for qb := 0; qb < n; qb++ {
			if qa == qb {
				continue
			}
			ref := randomTrajectory(n, int64(qa*n+qb))
			cmp := randomTrajectory(n, int64(qa*n+qb))
			ref.Apply2(cz, qa, qb)
			cmp.NegateBoth(qa, qb)
			samePsi(t, ref, cmp, fmt.Sprintf("CZ (%d,%d)", qa, qb))
		}
	}
}

// TestFusedUnitaryPinnedToDenseReference pins FuseUnitaries and the
// compiled single-qubit kernels to the dense Embed reference at 1e-12:
// the fused product applied once must agree with sequential application
// and with the lifted matrix product.
func TestFusedUnitaryPinnedToDenseReference(t *testing.T) {
	const n = 3
	runs := [][]Matrix{
		{RX(0.4), REquator(1.0, 0.7)},
		{REquator(0.2, math.Pi/2), REquator(1.9, math.Pi), RZ(0.8)},
		{Hadamard(), PauliX(), Hadamard()},
	}
	for ri, run := range runs {
		for q := 0; q < n; q++ {
			fused := FuseUnitaries(run...)
			seq := randomTrajectory(n, int64(ri)+3)
			one := randomTrajectory(n, int64(ri)+3)
			for _, u := range run {
				seq.Apply1(u, q)
			}
			one.Apply1(fused, q)
			for i := range seq.Psi {
				if d := cAbs(seq.Psi[i] - one.Psi[i]); d > 1e-12 {
					t.Fatalf("run %d q=%d: fused deviates from sequential by %g at %d", ri, q, d, i)
				}
			}
			// Dense reference: the lifted product matrix.
			lift := Identity(1 << n)
			for _, u := range run {
				lift = Embed(u, q, n).Mul(lift)
			}
			ref := randomTrajectory(n, int64(ri)+3)
			want := make([]complex128, len(ref.Psi))
			for i := range want {
				var s complex128
				for j := range ref.Psi {
					s += lift.Data[i*lift.N+j] * ref.Psi[j]
				}
				want[i] = s
			}
			for i := range want {
				if d := cAbs(want[i] - one.Psi[i]); d > 1e-12 {
					t.Fatalf("run %d q=%d: fused deviates from dense reference by %g at %d", ri, q, d, i)
				}
			}
		}
	}
}

// TestChannelTablePinnedToDenseReference pins the hoisted-channel density
// kernel to the dense lifted Kraus sum at 1e-12 (and bitwise to
// ApplyKraus1).
func TestChannelTablePinnedToDenseReference(t *testing.T) {
	const n = 3
	for name, ops := range testChannels() {
		for q := 0; q < n; q++ {
			ref := NewDensity(n)
			cmp := NewDensity(n)
			// A correlated non-trivial state.
			for _, d := range []*Density{ref, cmp} {
				d.Apply1(Hadamard(), 0)
				d.Apply2(CZ(), 0, 1)
				d.Apply1(RX(0.6), 2)
				d.Apply1(REquator(0.9, 1.3), 1)
			}
			ref.ApplyKraus1(ops, q)
			cmp.ApplyChannel(NewChannelTable(ops), q)
			for i := range ref.Rho.Data {
				if ref.Rho.Data[i] != cmp.Rho.Data[i] {
					t.Fatalf("%s q=%d: density ApplyChannel not bit-identical at %d", name, q, i)
				}
			}
			// Dense reference: ρ' = Σ K ρ K† with lifted operators.
			dense := NewDensity(n)
			dense.Apply1(Hadamard(), 0)
			dense.Apply2(CZ(), 0, 1)
			dense.Apply1(RX(0.6), 2)
			dense.Apply1(REquator(0.9, 1.3), 1)
			out := NewMatrix(dense.Rho.N)
			for _, k := range ops {
				lk := Embed(k, q, n)
				out = out.Add(lk.Mul(dense.Rho).Mul(lk.Dagger()))
			}
			if d := out.MaxAbsDiff(cmp.Rho); d > 1e-12 {
				t.Fatalf("%s q=%d: deviates from dense Kraus sum by %g", name, q, d)
			}
		}
	}
}

// TestRunScheduleMatchesSequential executes compiled schedules — with
// carry links in every supported configuration, including the wrap-around
// carry across consecutive shots — against the equivalent sequence of
// un-compiled calls, requiring bitwise-equal states, outcomes, and PRNG
// positions.
func TestRunScheduleMatchesSequential(t *testing.T) {
	const n = 5
	chans := testChannels()
	deco := func(name string) *ChannelTable { return NewChannelTable(chans[name]) }
	x180 := REquator(0, math.Pi)
	ops := []SchedOp{
		{Kind: SchedChannel, Q: 0, Ch: deco("decoherence-huge"), CarryFor: -1},
		{Kind: SchedApply1RD, Q: 0, U: x180, CarryFor: 0},
		{Kind: SchedChannel, Q: 0, Ch: deco("decoherence-short"), CarryFor: 1},
		{Kind: SchedChannel, Q: 1, Ch: deco("decoherence-short"), CarryFor: 4},
		{Kind: SchedCZ, Q: 1, Qb: 0, U: CZ(), PhaseSafe: true},
		{Kind: SchedChannel, Q: 4, Ch: deco("decoherence-long"), CarryFor: -1},
		{Kind: SchedApply1, Q: 2, U: RZ(0.4).Mul(RX(0.3)), CarryFor: 2},
		{Kind: SchedChannel, Q: 2, Ch: deco("depolarizing"), CarryFor: 3},
		{Kind: SchedMeasure, Q: 3, CarryFor: 3},
		{Kind: SchedChannel, Q: 3, Ch: deco("decoherence-short"), CarryFor: -1},
		{Kind: SchedApply2, Q: 0, Qb: 2, U: Embedded2ForTest(), CarryFor: -1},
		{Kind: SchedChannel, Q: 1, Ch: deco("dense"), CarryFor: 1},
		{Kind: SchedMeasure, Q: 1, CarryFor: -1},
		// Trailing channel carrying for the wrap-around consumer (step 0).
		{Kind: SchedChannel, Q: 2, Ch: deco("decoherence-long"), CarryFor: 0},
	}
	for seed := int64(1); seed <= 25; seed++ {
		ref := randomTrajectory(n, seed)
		cmp := randomTrajectory(n, seed)
		var refOut, cmpOut []int
		carry, carryQ := PopCarry{}, -1
		for shot := 0; shot < 3; shot++ {
			for _, o := range ops {
				switch o.Kind {
				case SchedApply1, SchedApply1RD:
					ref.Apply1(o.U, int(o.Q))
				case SchedChannel:
					ref.ApplyKraus1(o.Ch.Ops(), int(o.Q))
				case SchedCZ, SchedApply2:
					ref.Apply2(o.U, int(o.Q), int(o.Qb))
				case SchedMeasure:
					refOut = append(refOut, ref.Measure(int(o.Q), ref.rng))
				}
			}
			carry, carryQ = cmp.RunSchedule(ops, carry, carryQ, func(q, outcome int) {
				cmpOut = append(cmpOut, outcome)
			})
		}
		if len(refOut) != len(cmpOut) {
			t.Fatalf("seed %d: outcome counts differ: %d vs %d", seed, len(refOut), len(cmpOut))
		}
		for i := range refOut {
			if refOut[i] != cmpOut[i] {
				t.Fatalf("seed %d: outcome %d differs: %d vs %d", seed, i, refOut[i], cmpOut[i])
			}
		}
		samePsi(t, ref, cmp, fmt.Sprintf("schedule seed=%d", seed))
		sameRNG(t, ref, cmp, fmt.Sprintf("schedule seed=%d", seed))
	}
}

// Embedded2ForTest returns a dense (non-phase-safe) two-qubit unitary.
func Embedded2ForTest() Matrix {
	return Identity(2).Kron(Hadamard())
}

func cAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// TestCompiledKernelsDoNotAllocate pins the zero-allocation discipline of
// every compiled-schedule kernel.
func TestCompiledKernelsDoNotAllocate(t *testing.T) {
	const n = 5
	tr := randomTrajectory(n, 1)
	ct := NewChannelTable(DecoherenceChannel(8e-6, DefaultQubitParams()))
	u := REquator(0.3, 1.0)
	ops := []SchedOp{
		{Kind: SchedChannel, Q: 0, Ch: ct, CarryFor: 1},
		{Kind: SchedChannel, Q: 1, Ch: ct, CarryFor: 1},
		{Kind: SchedApply1RD, Q: 1, U: u, CarryFor: 1},
		{Kind: SchedChannel, Q: 1, Ch: ct, CarryFor: -1},
		{Kind: SchedCZ, Q: 0, Qb: 1, U: CZ(), PhaseSafe: true},
		{Kind: SchedMeasure, Q: 2, CarryFor: -1},
	}
	measure := func(q, outcome int) {}
	carry, carryQ := PopCarry{}, -1
	allocs := testing.AllocsPerRun(200, func() {
		carry, carryQ = tr.RunSchedule(ops, carry, carryQ, measure)
	})
	if allocs != 0 {
		t.Fatalf("RunSchedule allocates %v times per shot, want 0", allocs)
	}
}
