package qphys

import (
	"math"
	"math/cmplx"
)

// Pauli matrices and other fixed single-qubit gates. These are returned as
// fresh copies so callers may mutate them safely.

// PauliX returns the Pauli X matrix.
func PauliX() Matrix {
	return FromRows(
		[]complex128{0, 1},
		[]complex128{1, 0},
	)
}

// PauliY returns the Pauli Y matrix.
func PauliY() Matrix {
	return FromRows(
		[]complex128{0, -1i},
		[]complex128{1i, 0},
	)
}

// PauliZ returns the Pauli Z matrix.
func PauliZ() Matrix {
	return FromRows(
		[]complex128{1, 0},
		[]complex128{0, -1},
	)
}

// Hadamard returns the Hadamard gate.
func Hadamard() Matrix {
	s := complex(1/math.Sqrt2, 0)
	return FromRows(
		[]complex128{s, s},
		[]complex128{s, -s},
	)
}

// SGate returns the phase gate S = diag(1, i).
func SGate() Matrix {
	return FromRows(
		[]complex128{1, 0},
		[]complex128{0, 1i},
	)
}

// TGate returns the T gate = diag(1, e^{iπ/4}).
func TGate() Matrix {
	return FromRows(
		[]complex128{1, 0},
		[]complex128{0, cmplx.Exp(1i * math.Pi / 4)},
	)
}

// RX returns the rotation exp(-i θ X / 2).
func RX(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return FromRows(
		[]complex128{c, s},
		[]complex128{s, c},
	)
}

// RY returns the rotation exp(-i θ Y / 2).
func RY(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return FromRows(
		[]complex128{c, -s},
		[]complex128{s, c},
	)
}

// RZ returns the rotation exp(-i θ Z / 2).
func RZ(theta float64) Matrix {
	return FromRows(
		[]complex128{cmplx.Exp(complex(0, -theta/2)), 0},
		[]complex128{0, cmplx.Exp(complex(0, theta/2))},
	)
}

// REquator returns a rotation by theta about the equatorial Bloch-sphere
// axis at azimuthal angle phi (phi=0 is the x axis, phi=π/2 the y axis).
// This is the gate a resonant drive pulse implements: phi is set by the
// carrier phase, theta by the integrated pulse envelope — the paper's
// Section 2.2.
func REquator(phi, theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := math.Sin(theta / 2)
	// axis n = (cos φ, sin φ, 0); R = cos(θ/2) I - i sin(θ/2)(nx X + ny Y)
	off01 := complex(-s*math.Sin(phi), -s*math.Cos(phi))
	off10 := complex(s*math.Sin(phi), -s*math.Cos(phi))
	return FromRows(
		[]complex128{c, off01},
		[]complex128{off10, c},
	)
}

// CZ returns the two-qubit controlled-phase gate, the native two-qubit
// gate of the paper's transmon architecture.
func CZ() Matrix {
	m := Identity(4)
	m.Set(3, 3, -1)
	return m
}

// CNOT returns the controlled-NOT gate with qubit 0 (most significant bit
// of the basis index) as control.
func CNOT() Matrix {
	return FromRows(
		[]complex128{1, 0, 0, 0},
		[]complex128{0, 1, 0, 0},
		[]complex128{0, 0, 0, 1},
		[]complex128{0, 0, 1, 0},
	)
}

// Embed lifts a single-qubit gate u onto qubit q of an n-qubit register
// (qubit 0 is the most significant bit of the basis index).
func Embed(u Matrix, q, n int) Matrix {
	if u.N != 2 {
		panic("qphys: Embed requires a single-qubit gate")
	}
	out := Identity(1)
	for i := 0; i < n; i++ {
		if i == q {
			out = out.Kron(u)
		} else {
			out = out.Kron(Identity(2))
		}
	}
	return out
}

// Embed2 lifts a two-qubit gate u onto adjacent-index qubits (qa, qb) of an
// n-qubit register. For the symmetric CZ gate the order of qa and qb is
// irrelevant; for CNOT, qa is the control. Only the common cases needed by
// the microcode tests are supported: qa and qb must be distinct.
func Embed2(u Matrix, qa, qb, n int) Matrix {
	if u.N != 4 {
		panic("qphys: Embed2 requires a two-qubit gate")
	}
	if qa == qb {
		panic("qphys: Embed2 requires distinct qubits")
	}
	dim := 1 << n
	out := NewMatrix(dim)
	for row := 0; row < dim; row++ {
		ra := (row >> (n - 1 - qa)) & 1
		rb := (row >> (n - 1 - qb)) & 1
		for ca := 0; ca < 2; ca++ {
			for cb := 0; cb < 2; cb++ {
				v := u.At(ra*2+rb, ca*2+cb)
				if v == 0 {
					continue
				}
				col := row
				col = setBit(col, n-1-qa, ca)
				col = setBit(col, n-1-qb, cb)
				out.Data[row*dim+col] += v
			}
		}
	}
	return out
}

func setBit(x, pos, v int) int {
	x &^= 1 << pos
	return x | (v << pos)
}
