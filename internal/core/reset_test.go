package core

import (
	"testing"

	"quma/internal/qphys"
)

// resetProbeSrc exercises pulses, decoherence, measurement, and the data
// collector in a short multi-round loop.
const resetProbeSrc = `
mov r15, 4000
mov r1, 0
mov r2, 20
mov r9, 0
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`

// TestResetStateMatchesFreshMachine is the Machine.ResetState contract: a
// reset machine behaves bit-identically to a freshly constructed one with
// the same config and seed, on both backends, even after the machine has
// run an unrelated program under a different seed.
func TestResetStateMatchesFreshMachine(t *testing.T) {
	for _, backend := range []Backend{BackendDensity, BackendTrajectory} {
		t.Run(string(backend), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Backend = backend
			cfg.CollectK = 1
			cfg.Seed = 42

			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.RunAssembly(resetProbeSrc); err != nil {
				t.Fatal(err)
			}

			dirty := cfg
			dirty.Seed = 99
			reused, err := New(dirty)
			if err != nil {
				t.Fatal(err)
			}
			if err := reused.RunAssembly(resetProbeSrc); err != nil {
				t.Fatal(err)
			}
			reused.ResetState(42)
			if err := reused.RunAssembly(resetProbeSrc); err != nil {
				t.Fatal(err)
			}

			if fresh.Controller.Regs[9] != reused.Controller.Regs[9] {
				t.Errorf("ones: fresh=%d reused=%d", fresh.Controller.Regs[9], reused.Controller.Regs[9])
			}
			fa, ra := fresh.Collector.Averages(), reused.Collector.Averages()
			if fa[0] != ra[0] {
				t.Errorf("collector average: fresh=%v reused=%v", fa[0], ra[0])
			}
			if fresh.PulsesPlayed != reused.PulsesPlayed || fresh.Measurements != reused.Measurements {
				t.Errorf("counters: fresh=(%d,%d) reused=(%d,%d)",
					fresh.PulsesPlayed, fresh.Measurements, reused.PulsesPlayed, reused.Measurements)
			}
			if p, q := fresh.State.ProbExcited(0), reused.State.ProbExcited(0); p != q {
				t.Errorf("final state: fresh=%v reused=%v", p, q)
			}
		})
	}
}

// TestResetStateKeepsCalibration: LUT content and qubit-parameter caches
// survive a reset (that is the point of reusing the machine), while the
// playback log and trace are cleared.
func TestResetStateKeepsCalibration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceEvents = true
	cfg.Qubit = []qphys.QubitParams{qphys.DefaultQubitParams()}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunAssembly("Wait 8\nPulse {q0}, X180\nWait 4\nhalt"); err != nil {
		t.Fatal(err)
	}
	if len(m.CTPG[0].Playbacks()) == 0 || len(m.Trace()) == 0 {
		t.Fatal("probe program left no playbacks/trace")
	}
	before := m.MemoryFootprintBytes()
	m.ResetState(7)
	if len(m.CTPG[0].Playbacks()) != 0 {
		t.Error("playback log not cleared")
	}
	if len(m.Trace()) != 0 {
		t.Error("trace not cleared")
	}
	if got := m.MemoryFootprintBytes(); got != before {
		t.Errorf("LUT footprint changed across reset: %d -> %d", before, got)
	}
	if p := m.State.ProbExcited(0); p != 0 {
		t.Errorf("state not reset: P(|1>) = %v", p)
	}
}

// TestResetStateKeepsCustomUploads pins the documented caveat: LUT
// entries uploaded after construction survive a reset (reuse across
// points therefore requires unconditional per-point re-upload, as
// RunRabi does).
func TestResetStateKeepsCustomUploads(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const cw = 8
	w, _, ok := m.CTPG[0].Lookup(0)
	if !ok {
		t.Fatal("library codeword 0 missing")
	}
	if err := m.UploadPulse(0, cw, "CUSTOM", w); err != nil {
		t.Fatal(err)
	}
	m.ResetState(5)
	if _, name, ok := m.CTPG[0].Lookup(cw); !ok || name != "CUSTOM" {
		t.Errorf("custom upload did not survive reset: ok=%v name=%q", ok, name)
	}
}
