package core

import (
	"testing"
)

func TestDigitalOutputGatesMeasurementPulse(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
Wait 40000
Pulse {q0}, X180
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	ivs := m.Digital.Intervals(0)
	if len(ivs) != 1 {
		t.Fatalf("digital output 0 intervals = %v, want 1", ivs)
	}
	if ivs[0].Start != 40004 || ivs[0].End != 40304 {
		t.Errorf("measurement gate = [%d,%d), want [40004,40304)", ivs[0].Start, ivs[0].End)
	}
	if m.Digital.TotalHighCycles(0) != 300 {
		t.Errorf("gate length = %d cycles, want 300", m.Digital.TotalHighCycles(0))
	}
	// No other output fired.
	for ch := 1; ch < 8; ch++ {
		if m.Digital.Intervals(ch) != nil {
			t.Errorf("output %d unexpectedly fired", ch)
		}
	}
}

func TestDigitalOutputMultiQubitMeasurement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumQubits = 3
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Horizontal MPG addresses several qubits with one instruction.
	err = m.RunAssembly(`
Wait 100
MPG {q0, q2}, 300
MD {q0, q2}, r7
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Digital.TotalHighCycles(0) != 300 || m.Digital.TotalHighCycles(2) != 300 {
		t.Error("both selected outputs must gate")
	}
	if m.Digital.TotalHighCycles(1) != 0 {
		t.Error("unselected output must stay low")
	}
	// Packed multi-qubit result: both qubits read 0 (ground).
	if m.Controller.Regs[7] != 0 {
		t.Errorf("packed result = %d, want 0", m.Controller.Regs[7])
	}
}

func TestMultiQubitPackedResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumQubits = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Excite q1 only; the packed MD word must have bit 1 set.
	err = m.RunAssembly(`
Wait 100
Pulse {q1}, X180
Wait 4
MPG {q0, q1}, 300
MD {q0, q1}, r7
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Controller.Regs[7] != 0b10 {
		t.Errorf("packed result = %b, want 10", m.Controller.Regs[7])
	}
}
