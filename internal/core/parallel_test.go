package core

import (
	"math"
	"testing"

	"quma/internal/qphys"
)

// Horizontal control at the physics level: one Pulse instruction drives
// several qubits in the same time point, each through its own CTPG, and
// the resulting states are independent and correct.

func TestHorizontalPulseDrivesAllQubits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumQubits = 3
	cfg.Qubit = []qphys.QubitParams{{}, {}, {}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
Wait 8
Pulse {q0, q2}, X180
Wait 4
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.State.ProbExcited(0); math.Abs(p-1) > 1e-3 {
		t.Errorf("q0 P(1) = %v, want 1", p)
	}
	if p := m.State.ProbExcited(1); p > 1e-3 {
		t.Errorf("q1 P(1) = %v, want 0 (unaddressed)", p)
	}
	if p := m.State.ProbExcited(2); math.Abs(p-1) > 1e-3 {
		t.Errorf("q2 P(1) = %v, want 1", p)
	}
	// Both playbacks occur at the same sample time (same time point).
	pb0 := m.CTPG[0].Playbacks()
	pb2 := m.CTPG[2].Playbacks()
	if len(pb0) != 1 || len(pb2) != 1 {
		t.Fatalf("playback counts %d/%d", len(pb0), len(pb2))
	}
	if pb0[0].Start != pb2[0].Start {
		t.Errorf("horizontal pulses not simultaneous: %d vs %d", pb0[0].Start, pb2[0].Start)
	}
}

func TestParallelAllXYPairOnTwoQubits(t *testing.T) {
	// Run different gate pairs on two qubits concurrently (horizontal
	// where the gates coincide, interleaved otherwise) and verify each
	// qubit's outcome matches its own sequence: q0 gets X180·X180
	// (ends |0⟩), q1 gets X90·X90 (ends |1⟩).
	cfg := DefaultConfig()
	cfg.NumQubits = 2
	cfg.Qubit = []qphys.QubitParams{{}, {}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
Wait 8
Pulse {q0}, X180
Pulse {q1}, X90
Wait 4
Pulse {q0}, X180
Pulse {q1}, X90
Wait 4
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.State.ProbExcited(0); p > 1e-3 {
		t.Errorf("q0 P(1) = %v, want 0 (X180·X180)", p)
	}
	if p := m.State.ProbExcited(1); math.Abs(p-1) > 1e-3 {
		t.Errorf("q1 P(1) = %v, want 1 (X90·X90)", p)
	}
	// Each pulse pair shares a time point: 2 labels total.
	if got := m.QMB.LabelsIssued(); got != 2 {
		t.Errorf("labels issued = %d, want 2", got)
	}
}

func TestThermalResidualVisibleThroughStack(t *testing.T) {
	// With thermal excitation configured, initialization-by-waiting
	// leaves a residual |1⟩ population that the measurement sees.
	cfg := DefaultConfig()
	qp := qphys.DefaultQubitParams()
	qp.ThermalPopulation = 0.05 // exaggerated for statistics
	cfg.Qubit = []qphys.QubitParams{qp}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
mov r15, 40000
mov r1, 0
mov r2, 400
mov r9, 0
Loop:
QNopReg r15
Pulse {q0}, I
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(m.Controller.Regs[9]) / 400
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("thermal residual = %v, want ≈ 0.05", frac)
	}
}
