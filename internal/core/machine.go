// Package core assembles the complete QuMA machine: the quantum control
// box of the paper's Section 7 (execution controller, physical microcode
// unit, quantum microinstruction buffer, timing control unit,
// micro-operation units, codeword-triggered pulse generation units,
// measurement discrimination unit, data collection unit) wired to a
// simulated transmon chip in place of the dilution refrigerator.
//
// The machine runs programs written in the combined auxiliary-classical +
// QuMIS instruction set (optionally containing QIS gate instructions,
// which the microcode unit expands), and exposes the observables an
// experimentalist gets from the real box: per-index averaged integration
// results, measurement registers, pulse playback logs, and an event
// timeline.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"quma/internal/asm"
	"quma/internal/awg"
	"quma/internal/clock"
	"quma/internal/exec"
	"quma/internal/isa"
	"quma/internal/microcode"
	"quma/internal/pulse"
	"quma/internal/qphys"
	"quma/internal/readout"
	"quma/internal/uop"
)

// Backend selects the quantum-state substrate the machine evolves. The
// instruction pipeline is substrate-agnostic: it only touches the state
// through the qphys.State interface.
type Backend string

const (
	// BackendDensity is the exact density-matrix backend: O(4^n) memory,
	// every channel applied as a full Kraus sum, register size 1–8.
	// It is the default (an empty Backend value selects it).
	BackendDensity Backend = "density"
	// BackendTrajectory is the pure-state Monte-Carlo backend: O(2^n)
	// memory, one Kraus operator sampled per channel application from the
	// machine's deterministic PRNG, register size 1–16. Exact in
	// expectation over shots; use it for multi-shot experiments that need
	// more qubits or more speed than the density backend affords.
	BackendTrajectory Backend = "trajectory"
)

// maxQubits returns the backend's register-size ceiling.
func (b Backend) maxQubits() (int, error) {
	switch b {
	case "", BackendDensity:
		return 8, nil
	case BackendTrajectory:
		return isa.MaxQubits, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q (want %q or %q)", b, BackendDensity, BackendTrajectory)
}

// Config describes a QuMA machine instance.
type Config struct {
	// NumQubits is the simulated register size. The density backend
	// allows 1–8 (the control box has 8 digital outputs and three AWG
	// boards in the paper); the trajectory backend extends the simulated
	// chip to 1–16.
	NumQubits int
	// Backend selects the quantum-state substrate (empty = density).
	Backend Backend
	// Qubit holds per-qubit coherence/control parameters; missing entries
	// default to qphys.DefaultQubitParams. After New the values are
	// captured by the machine's decoherence-channel cache — change them
	// via Machine.SetQubitParams, not by writing Cfg.Qubit directly.
	Qubit []qphys.QubitParams
	// Readout configures the measurement chain (shared calibration).
	Readout readout.Params
	// AmplitudeError is the fractional pulse-amplitude miscalibration ε
	// applied when uploading the standard library (AllXY error-signature
	// knob).
	AmplitudeError float64
	// SSBHz is the single-sideband modulation frequency.
	SSBHz float64
	// Seed seeds the machine's deterministic PRNG.
	Seed int64
	// CollectK enables the data collection unit with K results per round
	// when positive.
	CollectK int
	// TraceEvents enables the event timeline log (Fig. 3 / Fig. 5
	// reproduction); experiments with millions of shots leave it off.
	TraceEvents bool
}

// DefaultConfig returns a single-qubit machine with the paper's
// parameters.
func DefaultConfig() Config {
	return Config{
		NumQubits: 1,
		Readout:   readout.DefaultParams(),
		SSBHz:     pulse.DefaultSSBHz,
		Seed:      1,
	}
}

// Probe observes the machine's quantum-operation stream in
// deterministic-domain (TD) order: exactly the operations applied to the
// State backend, in the order they consume the machine PRNG. The replay
// engine (internal/replay) installs one to record per-shot schedules. A
// nil probe costs one predictable branch per operation.
type Probe interface {
	// Idle reports an idle-advance channel application on qubit q: rz is
	// the detuning rotation (N == 0 when absent) and kraus the decoherence
	// Kraus set (nil when the channel is exactly the identity). Pure
	// no-op advances are not reported.
	Idle(q int, rz qphys.Matrix, kraus []qphys.Matrix)
	// Pulse1 reports a played drive pulse on qubit q. u.N == 0 means the
	// pulse was timing-only (zero rotation angle): no unitary was applied
	// but the playback still counted toward PulsesPlayed.
	Pulse1(u qphys.Matrix, q int)
	// Gate2 reports a two-qubit flux-pulse unitary applied to (qa, qb).
	Gate2(u qphys.Matrix, qa, qb int)
	// Measured reports one completed per-qubit measurement chain and its
	// binary discrimination result.
	Measured(q, result int)
}

// TraceEntry is one event of the deterministic-domain timeline.
type TraceEntry struct {
	TD   clock.Cycle
	Kind string // "pulse", "mpg", "md"
	Desc string
}

func (e TraceEntry) String() string {
	return fmt.Sprintf("TD=%-8d (%6.2fµs)  %-5s %s", e.TD, float64(e.TD.Nanos())/1e3, e.Kind, e.Desc)
}

// Machine is a fully wired QuMA control box plus simulated chip.
type Machine struct {
	Cfg        Config
	Controller *exec.Controller
	QMB        *exec.QMB
	UOp        *uop.Unit
	CTPG       []*awg.CTPG // one drive channel per qubit
	Digital    *awg.DigitalOutputUnit
	MDU        *readout.MDU
	Collector  *readout.DataCollector
	// State is the quantum register, behind the pluggable backend
	// interface — the concrete type is chosen by Cfg.Backend.
	State qphys.State

	rng      *rand.Rand
	lastTime []clock.Sample // per-qubit time up to which physics advanced
	trace    []TraceEntry
	// ssbPeriod is the single-sideband period in samples when it is an
	// integer number of samples (the cacheable case), else 0. Computed
	// once in New; rotationOf reads it on every pulse.
	ssbPeriod clock.Sample
	rotCache  map[rotKey]rotVal
	// decoCache memoizes the decoherence Kraus set (and detuning rotation)
	// per (qubit, idle duration): advance recomputes identical channels
	// millions of times per experiment, and building one allocates ~10
	// small matrices.
	decoCache map[decoKey]decoVal
	cz        qphys.Matrix // cached CZ unitary for the flux-pulse path
	// cs is the Q control store loaded at construction, kept so
	// ResetState can rebuild the execution layer without re-deriving it.
	cs *microcode.ControlStore
	// probe, when non-nil, observes the quantum-operation stream.
	probe Probe
	// ReplayCache is an opaque slot for the shot-replay engine to memoize
	// compiled schedules across runs on this machine, keyed by program
	// identity. It survives ResetState on purpose — cached entries alias
	// rotation/decoherence cache entries, which also survive, and the
	// engine validates every entry against the freshly recorded schedule
	// before reuse, so a stale entry can only miss, never corrupt. It is
	// cleared wholesale by UploadPulse and SetQubitParams: those
	// invalidate the aliased cache entries, leaving every compiled
	// schedule permanently stale — dropping them bounds the memo to live
	// programs over a machine pooled for a service lifetime.
	ReplayCache any
	// PulsesPlayed counts codeword-triggered playbacks.
	PulsesPlayed uint64
	// Measurements counts MD events executed.
	Measurements uint64
	runErr       error
}

type rotKey struct {
	q     int
	cw    awg.Codeword
	phase clock.Sample // playback start modulo the SSB period
}

type rotVal struct {
	phi, theta float64
	mat        qphys.Matrix // REquator(phi, theta), built once per entry
}

type decoKey struct {
	q     int
	delta clock.Sample // idle duration in samples
}

type decoVal struct {
	rz    qphys.Matrix   // detuning rotation; N == 0 when no detuning
	ops   []qphys.Matrix // decoherence Kraus operators
	ident bool           // channel is exactly the identity: skip it
}

// New builds and calibrates a machine: uploads the Table 1 pulse library
// to every CTPG, fills the micro-operation units with pass-through
// entries, calibrates the MDU, and loads the standard Q control store.
func New(cfg Config) (*Machine, error) {
	maxQ, err := cfg.Backend.maxQubits()
	if err != nil {
		return nil, err
	}
	if cfg.NumQubits < 1 || cfg.NumQubits > maxQ {
		return nil, fmt.Errorf("core: NumQubits %d out of range 1..%d for backend %q", cfg.NumQubits, maxQ, cfg.Backend)
	}
	if cfg.SSBHz == 0 {
		cfg.SSBHz = pulse.DefaultSSBHz
	}
	if cfg.Readout.IntegrationSamples == 0 {
		cfg.Readout = readout.DefaultParams()
	}
	for len(cfg.Qubit) < cfg.NumQubits {
		cfg.Qubit = append(cfg.Qubit, qphys.DefaultQubitParams())
	}

	m := &Machine{
		Cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		lastTime:  make([]clock.Sample, cfg.NumQubits),
		rotCache:  make(map[rotKey]rotVal),
		decoCache: make(map[decoKey]decoVal),
		cz:        qphys.CZ(),
	}
	// The trajectory backend samples Kraus operators from the machine's
	// own PRNG — the same stream measurement draws from — so a fixed
	// Config.Seed fixes the whole trajectory.
	if cfg.Backend == BackendTrajectory {
		m.State = qphys.NewTrajectory(cfg.NumQubits, m.rng)
	} else {
		m.State = qphys.NewDensity(cfg.NumQubits)
	}
	// cfg.SSBHz was defaulted above, so only a non-integral period (in
	// samples) leaves ssbPeriod at 0 — the uncacheable demodulation case.
	if p := math.Abs(1e9 / cfg.SSBHz); p == math.Trunc(p) {
		m.ssbPeriod = clock.Sample(p)
	}
	for q := 0; q < cfg.NumQubits; q++ {
		c := awg.NewCTPG()
		c.SSBHz = cfg.SSBHz
		if err := c.UploadStandardLibrary(cfg.AmplitudeError); err != nil {
			return nil, fmt.Errorf("core: calibrating qubit %d: %w", q, err)
		}
		m.CTPG = append(m.CTPG, c)
	}
	m.UOp = uop.NewUnit()
	m.UOp.DefineStandardLibrary()
	m.Digital = awg.NewDigitalOutputUnit()
	m.MDU = readout.Calibrate(cfg.Readout)
	if cfg.CollectK > 0 {
		m.Collector = readout.NewDataCollector(cfg.CollectK)
	}

	m.cs = microcode.StandardControlStore()
	m.QMB = exec.NewQMB(m.onPulse, m.onMPG, nil)
	m.Controller = exec.NewController(m.cs, m.QMB)
	// MD needs the controller for write-back, so it is wired afterwards.
	m.QMB.MDQ.OnFire = m.onMD
	return m, nil
}

// ResetState returns the machine to its just-constructed condition under a
// new PRNG seed, without reconstructing what construction paid for:
// calibrated CTPG lookup tables, micro-operation definitions, the MDU
// calibration, and the rotation/decoherence caches all survive. The
// quantum register, per-qubit clocks, deterministic-domain queues,
// controller registers/memory, collector, playback logs, trace, and event
// counters are cleared. A reset machine behaves bit-identically to a
// fresh core.New with the same Config and seed, which is what lets the
// sweep engine pool machines across points.
//
// Surviving LUT/µop state cuts both ways: custom UploadPulse /
// DefinePrimitive calls made after construction also survive, so a
// caller reusing a machine across sweep points must re-apply its
// per-point customization unconditionally on every point (as RunRabi
// does) — a conditional upload would leave a pooled machine playing the
// previous point's waveform where a fresh machine would play the
// library's.
func (m *Machine) ResetState(seed int64) {
	m.Cfg.Seed = seed
	m.rng.Seed(seed)
	// The State keeps its backend binding (the trajectory backend samples
	// from m.rng, which stays the same object).
	m.State.Reset()
	for i := range m.lastTime {
		m.lastTime[i] = 0
	}
	m.trace = nil
	m.PulsesPlayed = 0
	m.Measurements = 0
	m.runErr = nil
	m.probe = nil
	for _, c := range m.CTPG {
		c.ResetPlaybacks()
	}
	m.Digital = awg.NewDigitalOutputUnit()
	if m.Collector != nil {
		m.Collector.Reset()
	}
	m.QMB = exec.NewQMB(m.onPulse, m.onMPG, nil)
	m.Controller = exec.NewController(m.cs, m.QMB)
	m.QMB.MDQ.OnFire = m.onMD
}

// SetProbe installs (or removes, with nil) the quantum-operation stream
// observer.
func (m *Machine) SetProbe(p Probe) { m.probe = p }

// RunAssembly assembles and runs a program, returning the first error
// from either domain.
func (m *Machine) RunAssembly(src string) error {
	p, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	return m.RunProgram(p)
}

// RunProgram executes a program to completion (halt) with the default
// step bound.
func (m *Machine) RunProgram(p *isa.Program) error {
	if err := m.Controller.Load(p); err != nil {
		return err
	}
	m.runErr = nil
	if err := m.Controller.Run(0); err != nil {
		return err
	}
	return m.runErr
}

// Trace returns the deterministic-domain event timeline (empty unless
// Config.TraceEvents).
func (m *Machine) Trace() []TraceEntry { return m.trace }

// ResetTrace clears the timeline.
func (m *Machine) ResetTrace() { m.trace = nil }

// UploadPulse replaces (or adds) a calibrated waveform in qubit q's CTPG
// lookup table and invalidates the machine's cached rotations for that
// codeword. This is the recalibration path: LUT content is configuration
// state, changed without touching programs. Use this instead of writing
// to the CTPG directly, or stale rotations may be applied.
func (m *Machine) UploadPulse(q int, cw awg.Codeword, name string, w pulse.Waveform) error {
	if q < 0 || q >= len(m.CTPG) {
		return fmt.Errorf("core: no drive channel for qubit %d", q)
	}
	if err := m.CTPG[q].Upload(cw, name, w); err != nil {
		return err
	}
	for k := range m.rotCache {
		if k.q == q && k.cw == cw {
			delete(m.rotCache, k)
		}
	}
	// Compiled replay schedules alias the invalidated rotation entries;
	// they would fail validation forever, so drop them now.
	m.ReplayCache = nil
	return nil
}

// SetQubitParams replaces qubit q's coherence/control parameters and
// invalidates the cached decoherence channels built from the old values.
// Mutating Cfg.Qubit directly is not supported: advance() memoizes the
// Kraus sets per (qubit, duration), so direct writes after New would be
// silently ignored for already-seen idle durations.
func (m *Machine) SetQubitParams(q int, p qphys.QubitParams) error {
	if q < 0 || q >= m.Cfg.NumQubits {
		return fmt.Errorf("core: no qubit %d", q)
	}
	m.Cfg.Qubit[q] = p
	for k := range m.decoCache {
		if k.q == q {
			delete(m.decoCache, k)
		}
	}
	// Compiled replay schedules alias the invalidated Kraus sets; drop
	// them (see UploadPulse).
	m.ReplayCache = nil
	return nil
}

// MemoryFootprintBytes returns the total CTPG lookup-table memory at the
// paper's 12-bit accounting.
func (m *Machine) MemoryFootprintBytes() int {
	total := 0
	for _, c := range m.CTPG {
		total += c.MemoryBytes(12)
	}
	return total
}

// fail records the first deterministic-domain error; the paper's hardware
// would raise it as a fault flag.
func (m *Machine) fail(err error) {
	if m.runErr == nil && err != nil {
		m.runErr = err
	}
}

// advance applies decoherence to qubit q from its last-advanced time to
// the target sample time. The (detuning rotation, Kraus set) pair for a
// given idle duration is cached on the machine: experiment programs idle
// each qubit by a handful of distinct durations, millions of times.
func (m *Machine) advance(q int, to clock.Sample) {
	if to <= m.lastTime[q] {
		return
	}
	delta := to - m.lastTime[q]
	m.lastTime[q] = to
	key := decoKey{q: q, delta: delta}
	v, ok := m.decoCache[key]
	if !ok {
		dt := float64(delta) * 1e-9
		p := m.Cfg.Qubit[q]
		if p.FreqDetuningHz != 0 {
			v.rz = qphys.RZ(2 * math.Pi * p.FreqDetuningHz * dt)
		}
		v.ops = qphys.DecoherenceChannel(dt, p)
		// DecoherenceChannel returns {I} exactly when both coherence
		// times are disabled; applying it would be an exact no-op.
		v.ident = p.T1 <= 0 && p.T2 <= 0
		m.decoCache[key] = v
	}
	if v.rz.N != 0 {
		m.State.Apply1(v.rz, q)
	}
	if !v.ident {
		m.State.ApplyKraus1(v.ops, q)
	}
	if m.probe != nil && (v.rz.N != 0 || !v.ident) {
		ops := v.ops
		if v.ident {
			ops = nil
		}
		m.probe.Idle(q, v.rz, ops)
	}
}

// onPulse handles a fired pulse micro-operation: expand through the
// micro-operation unit, trigger the CTPG(s), and apply the resulting
// physics to the chip.
func (m *Machine) onPulse(e exec.PulseEvent, td clock.Cycle) {
	qs := e.Qubits.Qubits()
	if e.UOp == "CZ" {
		if len(qs) != 2 {
			m.fail(fmt.Errorf("core: CZ requires exactly 2 qubits, got %s", e.Qubits))
			return
		}
		// The CZ flux pulse goes out on a dedicated flux line with the
		// same fixed latency as drive pulses.
		at := (td + awg.FixedDelayCycles).Samples()
		m.advance(qs[0], at)
		m.advance(qs[1], at)
		m.State.Apply2(m.cz, qs[0], qs[1])
		if m.probe != nil {
			m.probe.Gate2(m.cz, qs[0], qs[1])
		}
		m.tracef(td, "pulse", "CZ %s", e.Qubits)
		m.PulsesPlayed++
		return
	}
	for _, q := range qs {
		if q >= len(m.CTPG) {
			m.fail(fmt.Errorf("core: qubit %d has no drive channel", q))
			return
		}
		triggers, err := m.UOp.Expand(e.UOp, td)
		if err != nil {
			m.fail(err)
			return
		}
		for _, tr := range triggers {
			pb, err := m.CTPG[q].Trigger(tr.CW, tr.At)
			if err != nil {
				m.fail(err)
				return
			}
			m.applyPlayback(q, pb)
		}
	}
	m.tracef(td, "pulse", "%s %s", e.UOp, e.Qubits)
}

// applyPlayback converts a CTPG playback into a rotation on qubit q.
func (m *Machine) applyPlayback(q int, pb awg.Playback) {
	m.advance(q, pb.Start)
	v := m.rotationOf(q, pb)
	if v.theta != 0 {
		m.State.Apply1(v.mat, q)
	}
	if m.probe != nil {
		u := v.mat
		if v.theta == 0 {
			u = qphys.Matrix{}
		}
		m.probe.Pulse1(u, q)
	}
	m.PulsesPlayed++
}

// rotationOf demodulates the played waveform at its absolute start time.
// Since the waveform content is fixed per codeword, the result depends
// only on the start time modulo the SSB period (hoisted into m.ssbPeriod
// by New), which makes it cacheable — including the rotation matrix
// itself, so the steady-state pulse path performs no demodulation and no
// allocation.
func (m *Machine) rotationOf(q int, pb awg.Playback) rotVal {
	period := m.ssbPeriod
	if period == 0 {
		phi, theta := pulse.Rotation(pb.Wave, m.Cfg.SSBHz, pb.Start)
		return rotVal{phi: phi, theta: theta, mat: qphys.REquator(phi, theta)}
	}
	key := rotKey{q: q, cw: pb.Codeword, phase: pb.Start % period}
	if v, ok := m.rotCache[key]; ok {
		return v
	}
	phi, theta := pulse.Rotation(pb.Wave, m.Cfg.SSBHz, pb.Start)
	v := rotVal{phi: phi, theta: theta, mat: qphys.REquator(phi, theta)}
	m.rotCache[key] = v
	return v
}

// onMPG handles measurement-pulse generation: the digital output unit
// raises the outputs selected by QAddr for the pulse duration, gating
// the external measurement-carrier source (paper §7.1). The pulse only
// interrogates the resonator; its effect on the qubit (projection) is
// accounted for in onMD, which fires at the same time point in the
// paper's programs.
func (m *Machine) onMPG(e exec.MPGEvent, td clock.Cycle) {
	if err := m.Digital.Trigger(uint16(e.Qubits), e.Duration, td); err != nil {
		m.fail(err)
		return
	}
	m.tracef(td, "mpg", "%s for %d cycles", e.Qubits, e.Duration)
}

// onMD runs the measurement chain for each addressed qubit: advance
// physics to TD, project the state, synthesize the transmitted trace,
// integrate and discriminate in the MDU, record the integration result,
// and write the packed binary results to the destination register.
func (m *Machine) onMD(e exec.MDEvent, td clock.Cycle) {
	var packed int64
	for _, q := range e.Qubits.Qubits() {
		if q >= m.Cfg.NumQubits {
			m.fail(fmt.Errorf("core: MD on absent qubit %d", q))
			return
		}
		m.advance(q, td.Samples())
		result := m.MeasureQubit(q)
		if m.probe != nil {
			m.probe.Measured(q, result)
		}
		if result == 1 {
			packed |= 1 << q
		}
		// The discrimination result is available Latency cycles after
		// integration; physics time advances accordingly.
		m.advance(q, (td + m.MDU.TotalLatency()).Samples())
	}
	// Single-qubit MD writes 0/1; multi-qubit MD packs bit q of the
	// result word, mirroring the combined-readout extension of §5.1.2.
	if len(e.Qubits.Qubits()) == 1 && packed != 0 {
		packed = 1
	}
	m.Controller.WriteReg(e.Rd, packed)
	m.tracef(td, "md", "%s -> %s", e.Qubits, e.Rd)
}

// MeasureQubit runs the per-qubit measurement chain at the current state:
// project the register, sample the matched-filter integration result from
// its exact distribution (readout.MDU.SampleMeasure), record it in the
// data collection unit, and return the binary discrimination result. It
// consumes exactly two PRNG variates (projection + integration noise) —
// the contract the replay engine relies on to keep replayed shots
// bit-identical to full simulation. Shared by onMD and replay.
func (m *Machine) MeasureQubit(q int) int {
	return m.FinishMeasure(m.State.Measure(q, m.rng))
}

// FinishMeasure completes the measurement chain for an already-projected
// outcome: sample the matched-filter integration result from its exact
// distribution, record it in the data collection unit, and return the
// binary discrimination result. Compiled replay schedules project inside
// qphys.RunSchedule (consuming the projection variate from the machine
// PRNG the trajectory backend is bound to) and call back here, so the
// chain consumes the same two variates in the same order as
// MeasureQubit.
func (m *Machine) FinishMeasure(outcome int) int {
	result, s := m.MDU.SampleMeasure(outcome, m.rng)
	if m.Collector != nil {
		m.Collector.Record(s)
	}
	m.Measurements++
	return result
}

func (m *Machine) tracef(td clock.Cycle, kind, format string, args ...any) {
	if !m.Cfg.TraceEvents {
		return
	}
	m.trace = append(m.trace, TraceEntry{TD: td, Kind: kind, Desc: fmt.Sprintf(format, args...)})
}
