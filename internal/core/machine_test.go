package core

import (
	"math"
	"strings"
	"testing"

	"quma/internal/qphys"
)

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumQubits = 0
	if _, err := New(cfg); err == nil {
		t.Error("NumQubits=0 must fail")
	}
	cfg.NumQubits = 9
	if _, err := New(cfg); err == nil {
		t.Error("NumQubits=9 must fail")
	}
}

func TestPiPulseThenMeasureReadsOne(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 100 shots of init → X180 → measure, counting results in r9.
	err = m.RunAssembly(`
mov r15, 40000     # 200 µs init
mov r1, 0
mov r2, 100
mov r9, 0
Loop:
QNopReg r15
Pulse {q0}, X180
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	ones := m.Controller.Regs[9]
	if ones < 90 {
		t.Errorf("π pulse measured |1⟩ only %d/100 times", ones)
	}
	if m.Measurements != 100 {
		t.Errorf("measurements = %d, want 100", m.Measurements)
	}
	if m.PulsesPlayed != 100 {
		t.Errorf("pulses = %d, want 100", m.PulsesPlayed)
	}
}

func TestIdentityStaysGround(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
mov r15, 40000
mov r1, 0
mov r2, 100
mov r9, 0
Loop:
QNopReg r15
Pulse {q0}, I
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if ones := m.Controller.Regs[9]; ones > 10 {
		t.Errorf("identity measured |1⟩ %d/100 times", ones)
	}
}

func TestHalfPiIsFiftyFifty(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
mov r15, 40000
mov r1, 0
mov r2, 400
mov r9, 0
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(m.Controller.Regs[9]) / 400
	if math.Abs(frac-0.5) > 0.1 {
		t.Errorf("X90 measured fraction %v, want ~0.5", frac)
	}
}

func TestBackToBackX90MakesPi(t *testing.T) {
	// Two X90 pulses 20 ns apart must compose to a π rotation — the
	// paper's timing-precision requirement: the second pulse's axis stays
	// x only if it starts exactly one SSB period after the first.
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
mov r15, 40000
mov r1, 0
mov r2, 100
mov r9, 0
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 4
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if ones := m.Controller.Regs[9]; ones < 90 {
		t.Errorf("X90·X90 measured |1⟩ only %d/100", ones)
	}
}

func TestMisalignedWaitRotatesAxis(t *testing.T) {
	// Shifting the second X90 by one cycle (5 ns) turns it into a y-axis
	// rotation: X90 then Y90 leaves P(1) at 1/2 + ... — crucially NOT ~1.
	// This is the paper's Section 4.2.3 sensitivity reproduced through
	// the whole stack.
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
mov r15, 40000
mov r1, 0
mov r2, 200
mov r9, 0
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 5
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(m.Controller.Regs[9]) / 200
	if frac > 0.75 {
		t.Errorf("5 ns slip still composed to π (frac=%v); SSB phase not modelled?", frac)
	}
}

func TestActiveResetFeedback(t *testing.T) {
	// The paper's future-work feedback: measure, and if |1⟩, apply X180
	// to reset. Afterwards a second measurement must read |0⟩ almost
	// always. Start from a superposition so both branches are exercised.
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
mov r15, 40000
mov r1, 0
mov r2, 200
mov r9, 0       # counts |1⟩ on verification measurement
mov r6, 0
Loop:
QNopReg r15
Pulse {q0}, X90   # superposition
Wait 4
MPG {q0}, 300
MD {q0}, r7
Wait 340          # measurement window + MDU latency
beq r7, r6, Verify  # |0⟩: no correction
Pulse {q0}, X180    # |1⟩: flip back
Wait 4
Verify:
MPG {q0}, 300
MD {q0}, r8
add r9, r9, r8
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(m.Controller.Regs[9]) / 200
	if frac > 0.08 {
		t.Errorf("active reset left |1⟩ fraction %v, want < 0.08", frac)
	}
}

func TestTraceTimeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceEvents = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
Wait 40000
Pulse {q0}, I
Wait 4
Pulse {q0}, I
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 4 {
		t.Fatalf("trace has %d entries: %v", len(tr), tr)
	}
	if tr[0].TD != 40000 || tr[1].TD != 40004 || tr[2].TD != 40008 || tr[3].TD != 40008 {
		t.Errorf("trace TDs = %v", tr)
	}
	if tr[2].Kind != "mpg" || tr[3].Kind != "md" {
		t.Errorf("trace kinds = %v", tr)
	}
	if !strings.Contains(tr[0].String(), "µs") {
		t.Error("trace formatting broken")
	}
	m.ResetTrace()
	if len(m.Trace()) != 0 {
		t.Error("ResetTrace failed")
	}
}

func TestMemoryFootprint420(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MemoryFootprintBytes(); got != 420 {
		t.Errorf("footprint = %d, want 420 (paper §5.1.1)", got)
	}
}

func TestCNOTViaMicrocodeTruthTable(t *testing.T) {
	// Algorithm 2 end to end: for each computational input, prepare,
	// run CNOT (target q1, control q0), and check populations.
	for _, tc := range []struct {
		prep     string
		wantQ0   float64
		wantQ1   float64
		scenario string
	}{
		{"", 0, 0, "|00> -> |00>"},
		{"Pulse {q0}, X180\nWait 4\n", 1, 1, "|10> -> |11>"},
		{"Pulse {q1}, X180\nWait 4\n", 0, 1, "|01> -> |01>"},
		{"Pulse {q0}, X180\nWait 4\nPulse {q1}, X180\nWait 4\n", 1, 0, "|11> -> |10>"},
	} {
		cfg := DefaultConfig()
		cfg.NumQubits = 2
		// Disable decoherence for an exact truth table.
		cfg.Qubit = []qphys.QubitParams{{}, {}}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		err = m.RunAssembly("Wait 8\n" + tc.prep + "Apply2 CNOT, q1, q0\nhalt")
		if err != nil {
			t.Fatalf("%s: %v", tc.scenario, err)
		}
		p0 := m.State.ProbExcited(0)
		p1 := m.State.ProbExcited(1)
		if math.Abs(p0-tc.wantQ0) > 1e-3 || math.Abs(p1-tc.wantQ1) > 1e-3 {
			t.Errorf("%s: P(q0)=%v P(q1)=%v, want %v/%v", tc.scenario, p0, p1, tc.wantQ0, tc.wantQ1)
		}
	}
}

func TestBellStateViaMicrocode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumQubits = 2
	cfg.Qubit = []qphys.QubitParams{{}, {}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// H on control then CNOT: Bell pair; marginals are maximally mixed.
	err = m.RunAssembly(`
Wait 8
Apply H, q0
Apply2 CNOT, q1, q0
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.State.ProbExcited(0); math.Abs(p-0.5) > 1e-3 {
		t.Errorf("P(q0)=%v, want 0.5", p)
	}
	if p := m.State.ProbExcited(1); math.Abs(p-0.5) > 1e-3 {
		t.Errorf("P(q1)=%v, want 0.5", p)
	}
	if pur := m.State.Purity(); math.Abs(pur-1) > 1e-3 {
		t.Errorf("purity = %v, want ~1 (pure entangled state)", pur)
	}
}

func TestApplyZViaMicroprogram(t *testing.T) {
	// Prepare |+⟩ with Y90, apply the microcoded Z (emulated as Y180 then
	// X180 pulses), and unwind with Ym90: with the Z the qubit ends in
	// |1⟩; without it, Y90 followed by Ym90 is the identity and it ends
	// in |0⟩.
	cfg := DefaultConfig()
	cfg.Qubit = []qphys.QubitParams{{}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
Wait 8
Apply Y90, q0
Apply Z, q0
Apply Ym90, q0
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.State.ProbExcited(0); math.Abs(p-1) > 1e-3 {
		t.Errorf("Y90·Z·Ym90 gave P(1)=%v, want 1", p)
	}

	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RunAssembly("Wait 8\nApply Y90, q0\nApply Ym90, q0\nhalt"); err != nil {
		t.Fatal(err)
	}
	if p := m2.State.ProbExcited(0); p > 1e-3 {
		t.Errorf("Y90·Ym90 gave P(1)=%v, want 0", p)
	}
}

func TestDataCollectorIntegration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollectK = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly(`
mov r15, 40000
mov r1, 0
mov r2, 50
Loop:
QNopReg r15
Pulse {q0}, I
Wait 4
MPG {q0}, 300
MD {q0}, r7
QNopReg r15
Pulse {q0}, X180
Wait 4
MPG {q0}, 300
MD {q0}, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Collector.Rounds() != 50 {
		t.Fatalf("rounds = %d", m.Collector.Rounds())
	}
	avgs := m.Collector.Averages()
	// Index 0 is the |0⟩ calibration, index 1 the |1⟩ one; they must be
	// well separated in integration units.
	if avgs[1] <= avgs[0] {
		t.Errorf("averaged integration results not separated: %v", avgs)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() int64 {
		m, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		err = m.RunAssembly(`
mov r15, 40000
mov r1, 0
mov r2, 50
mov r9, 0
Loop:
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
add r9, r9, r7
addi r1, r1, 1
bne r1, r2, Loop
halt
`)
		if err != nil {
			t.Fatal(err)
		}
		return m.Controller.Regs[9]
	}
	if run() != run() {
		t.Error("same seed must reproduce identical results")
	}
}

func TestRunAssemblyError(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunAssembly("bogus instruction"); err == nil {
		t.Error("expected assembly error")
	}
}

func TestUnknownUOpSurfacesAsRunError(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunAssembly("Wait 4\nPulse {q0}, NOSUCH\nhalt"); err == nil {
		t.Error("unknown micro-operation must surface as an error")
	}
}

func TestPulseOnAbsentQubit(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunAssembly("Wait 4\nPulse {q3}, X180\nhalt"); err == nil {
		t.Error("pulse on absent qubit must fail")
	}
}
