package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"quma/internal/qphys"
)

func TestBackendSelection(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.State.(*qphys.Density); !ok {
		t.Errorf("default backend state is %T, want *qphys.Density", m.State)
	}

	cfg.Backend = BackendTrajectory
	m, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.State.(*qphys.Trajectory); !ok {
		t.Errorf("trajectory backend state is %T, want *qphys.Trajectory", m.State)
	}

	cfg.Backend = "tensor-network"
	if _, err := New(cfg); err == nil {
		t.Error("unknown backend must fail")
	}
}

func TestBackendQubitCaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumQubits = 9
	if _, err := New(cfg); err == nil {
		t.Error("density backend must reject 9 qubits")
	}
	cfg.Backend = BackendTrajectory
	cfg.NumQubits = 16
	if _, err := New(cfg); err != nil {
		t.Errorf("trajectory backend must allow 16 qubits: %v", err)
	}
	cfg.NumQubits = 17
	if _, err := New(cfg); err == nil {
		t.Error("trajectory backend must reject 17 qubits")
	}
}

func TestTrajectoryMachineRunsPipeline(t *testing.T) {
	// The full pipeline (microcode, CTPG, MDU, feedback) on the
	// trajectory backend: a noiseless CNOT truth table must be exact.
	cfg := DefaultConfig()
	cfg.Backend = BackendTrajectory
	cfg.NumQubits = 2
	cfg.Qubit = []qphys.QubitParams{{}, {}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunAssembly("Wait 8\nPulse {q0}, X180\nWait 4\nApply2 CNOT, q1, q0\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p := m.State.ProbExcited(1); math.Abs(p-1) > 1e-3 {
		t.Errorf("CNOT on trajectory backend: P(q1=1) = %v, want 1", p)
	}
	if pur := m.State.Purity(); math.Abs(pur-1) > 1e-9 {
		t.Errorf("purity = %v, want 1", pur)
	}
}

func TestTrajectoryMachineDeterministicPerSeed(t *testing.T) {
	// Same seed → identical trajectory, including measurement feedback;
	// different seed → (here) a different measured register is likely but
	// not guaranteed, so only the equality half is asserted.
	run := func(seed int64) (int64, float64) {
		cfg := DefaultConfig()
		cfg.Backend = BackendTrajectory
		cfg.Seed = seed
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		err = m.RunAssembly(`
Wait 40000
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
Wait 340
halt
`)
		if err != nil {
			t.Fatal(err)
		}
		return m.Controller.Regs[7], m.State.ProbExcited(0)
	}
	r1, p1 := run(42)
	r2, p2 := run(42)
	if r1 != r2 || p1 != p2 {
		t.Errorf("same seed diverged: (%d, %v) vs (%d, %v)", r1, p1, r2, p2)
	}
	// The post-measurement state must be collapsed onto the outcome.
	if p1 != float64(r1) {
		t.Errorf("collapsed P(|1⟩) = %v, outcome = %d", p1, r1)
	}
}

func TestSixteenQubitGHZOnTrajectory(t *testing.T) {
	// A 16-qubit GHZ chain through the microcoded CNOT path — double the
	// paper's 8-output box, and 4^16 beyond the density backend.
	cfg := DefaultConfig()
	cfg.Backend = BackendTrajectory
	cfg.NumQubits = 16
	cfg.Qubit = make([]qphys.QubitParams, 16) // noiseless
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prog strings.Builder
	prog.WriteString("Wait 8\nApply H, q0\n")
	for q := 1; q < 16; q++ {
		fmt.Fprintf(&prog, "Apply2 CNOT, q%d, q%d\n", q, q-1)
	}
	prog.WriteString("halt")
	if err := m.RunAssembly(prog.String()); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 16; q++ {
		if p := m.State.ProbExcited(q); math.Abs(p-0.5) > 2e-3 {
			t.Fatalf("GHZ q%d: P(|1⟩) = %v, want 0.5", q, p)
		}
	}
	// Marginals of a GHZ state are maximally mixed.
	r := m.State.ReducedQubit(8)
	if pur := real(r.Mul(r).Trace()); math.Abs(pur-0.5) > 2e-3 {
		t.Errorf("GHZ marginal purity = %v, want 0.5", pur)
	}
}
