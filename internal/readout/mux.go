package readout

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Frequency-multiplexed readout — the paper's §5.1.2 scalability note:
// "Recent experiments have also demonstrated combining the measurement
// result of multiple qubits into one analog signal. This can reduce the
// number of required measurement discrimination units and exhibits
// better scalability."
//
// Each qubit's readout resonator imprints a state-dependent complex
// amplitude on its own intermediate-frequency tone; the feedline carries
// the sum. One digitizer front end plus per-qubit digital demodulation
// then recovers every qubit's bit. Tones spaced by integer multiples of
// 1/(window length) are orthogonal over the integration window, so the
// channels separate exactly in the noiseless limit.

// MuxChannel is one qubit's slice of the multiplexed readout signal.
type MuxChannel struct {
	// IFHz is the channel's intermediate frequency.
	IFHz float64
	// Mean0 and Mean1 are the complex baseband amplitudes for |0⟩/|1⟩.
	Mean0, Mean1 complex128
}

// MuxParams describes a multiplexed readout chain.
type MuxParams struct {
	Channels []MuxChannel
	// NoiseSigma is the per-sample noise on each quadrature of the
	// *summed* signal.
	NoiseSigma float64
	// IntegrationSamples is the window length (5 ns samples).
	IntegrationSamples int
}

// DefaultMuxParams returns an n-channel configuration with orthogonal
// tones over the 300-sample window and the single-qubit separation of
// DefaultParams per channel.
func DefaultMuxParams(n int) (MuxParams, error) {
	if n < 1 || n > 8 {
		return MuxParams{}, fmt.Errorf("readout: mux supports 1..8 channels, got %d", n)
	}
	const window = 300
	dt := 5e-9
	base := 1 / (float64(window) * dt) // one cycle per window ≈ 0.67 MHz
	p := MuxParams{NoiseSigma: 6.0, IntegrationSamples: window}
	for k := 0; k < n; k++ {
		p.Channels = append(p.Channels, MuxChannel{
			IFHz:  base * float64(3*(k+1)), // 2, 4, 6 MHz … spacing keeps tones apart
			Mean0: complex(1, 0),
			Mean1: complex(-0.4, 0.9),
		})
	}
	return p, nil
}

// SynthesizeMuxTrace produces the summed feedline signal for the given
// per-channel qubit states.
func SynthesizeMuxTrace(p MuxParams, states []int, rng *rand.Rand) ([]complex128, error) {
	if len(states) != len(p.Channels) {
		return nil, fmt.Errorf("readout: %d states for %d channels", len(states), len(p.Channels))
	}
	dt := 5e-9
	trace := make([]complex128, p.IntegrationSamples)
	for k := range trace {
		t := float64(k) * dt
		var v complex128
		for ci, ch := range p.Channels {
			amp := ch.Mean0
			if states[ci] == 1 {
				amp = ch.Mean1
			}
			v += amp * cmplx.Exp(complex(0, 2*math.Pi*ch.IFHz*t))
		}
		if p.NoiseSigma > 0 {
			v += complex(rng.NormFloat64()*p.NoiseSigma, rng.NormFloat64()*p.NoiseSigma)
		}
		trace[k] = v
	}
	return trace, nil
}

// MuxMDU demultiplexes and discriminates every channel of a combined
// readout signal — one discrimination unit serving several qubits.
type MuxMDU struct {
	params     MuxParams
	weights    []complex128 // per-channel matched filter at baseband
	thresholds []float64
}

// CalibrateMux builds the per-channel matched filters and thresholds.
func CalibrateMux(p MuxParams) (*MuxMDU, error) {
	if len(p.Channels) == 0 || p.IntegrationSamples <= 0 {
		return nil, fmt.Errorf("readout: empty mux configuration")
	}
	m := &MuxMDU{params: p}
	for _, ch := range p.Channels {
		sep := ch.Mean1 - ch.Mean0
		w := cmplx.Conj(sep)
		if cmplx.Abs(sep) > 0 {
			w /= complex(cmplx.Abs(sep), 0)
		}
		s0 := real(ch.Mean0 * w)
		s1 := real(ch.Mean1 * w)
		m.weights = append(m.weights, w)
		m.thresholds = append(m.thresholds, (s0+s1)/2)
	}
	return m, nil
}

// Channels returns the channel count.
func (m *MuxMDU) Channels() int { return len(m.params.Channels) }

// Integrate demodulates channel ci from the combined trace and returns
// its integration result.
func (m *MuxMDU) Integrate(trace []complex128, ci int) float64 {
	ch := m.params.Channels[ci]
	dt := 5e-9
	var s float64
	for k, v := range trace {
		t := float64(k) * dt
		base := v * cmplx.Exp(complex(0, -2*math.Pi*ch.IFHz*t))
		s += real(base * m.weights[ci])
	}
	if len(trace) > 0 {
		s /= float64(len(trace))
	}
	return s
}

// Measure demultiplexes every channel: one pass over the analog signal
// yields all qubits' binary results and integration values.
func (m *MuxMDU) Measure(trace []complex128) (results []int, values []float64) {
	for ci := range m.params.Channels {
		s := m.Integrate(trace, ci)
		values = append(values, s)
		if s > m.thresholds[ci] {
			results = append(results, 1)
		} else {
			results = append(results, 0)
		}
	}
	return results, values
}

// CrosstalkMatrix returns the normalized response of each demodulation
// channel to each tone at unit |1⟩-|0⟩ separation: entry (i, j) is the
// magnitude channel i integrates when only qubit j's state changes.
// With orthogonal tone spacing the matrix is (numerically) the identity.
func CrosstalkMatrix(p MuxParams) ([][]float64, error) {
	m, err := CalibrateMux(p)
	if err != nil {
		return nil, err
	}
	noNoise := p
	noNoise.NoiseSigma = 0
	n := len(p.Channels)
	out := make([][]float64, n)
	rng := rand.New(rand.NewSource(0)) // unused (no noise)
	base := make([]int, n)
	ref, err := SynthesizeMuxTrace(noNoise, base, rng)
	if err != nil {
		return nil, err
	}
	for j := 0; j < n; j++ {
		states := make([]int, n)
		states[j] = 1
		tr, err := SynthesizeMuxTrace(noNoise, states, rng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if out[i] == nil {
				out[i] = make([]float64, n)
			}
			di := m.Integrate(tr, i) - m.Integrate(ref, i)
			// Normalize by the channel's own full separation.
			ch := noNoise.Channels[i]
			full := real((ch.Mean1 - ch.Mean0) * m.weights[i])
			if full != 0 {
				out[i][j] = math.Abs(di / full)
			}
		}
	}
	return out, nil
}
