package readout

import (
	"math"
	"math/rand"
	"testing"
)

func TestDefaultMuxParamsValidation(t *testing.T) {
	if _, err := DefaultMuxParams(0); err == nil {
		t.Error("0 channels must fail")
	}
	if _, err := DefaultMuxParams(9); err == nil {
		t.Error("9 channels must fail")
	}
	p, err := DefaultMuxParams(4)
	if err != nil || len(p.Channels) != 4 {
		t.Fatalf("params = %+v, err %v", p, err)
	}
	// Tones must be distinct.
	seen := map[float64]bool{}
	for _, ch := range p.Channels {
		if seen[ch.IFHz] {
			t.Error("duplicate IF tone")
		}
		seen[ch.IFHz] = true
	}
}

func TestMuxNoiselessAllStatePatterns(t *testing.T) {
	p, err := DefaultMuxParams(3)
	if err != nil {
		t.Fatal(err)
	}
	p.NoiseSigma = 0
	m, err := CalibrateMux(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for pattern := 0; pattern < 8; pattern++ {
		states := []int{pattern & 1, pattern >> 1 & 1, pattern >> 2 & 1}
		trace, err := SynthesizeMuxTrace(p, states, rng)
		if err != nil {
			t.Fatal(err)
		}
		results, _ := m.Measure(trace)
		for ci := range states {
			if results[ci] != states[ci] {
				t.Errorf("pattern %03b: channel %d read %d, want %d", pattern, ci, results[ci], states[ci])
			}
		}
	}
}

func TestMuxNoisyFidelity(t *testing.T) {
	p, err := DefaultMuxParams(4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := CalibrateMux(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	errs, total := 0, 0
	for shot := 0; shot < 1000; shot++ {
		states := []int{shot & 1, shot >> 1 & 1, shot >> 2 & 1, shot >> 3 & 1}
		trace, err := SynthesizeMuxTrace(p, states, rng)
		if err != nil {
			t.Fatal(err)
		}
		results, _ := m.Measure(trace)
		for ci := range states {
			total++
			if results[ci] != states[ci] {
				errs++
			}
		}
	}
	if rate := float64(errs) / float64(total); rate > 0.02 {
		t.Errorf("multiplexed assignment error %v, want < 2%%", rate)
	}
}

func TestMuxStateCountMismatch(t *testing.T) {
	p, err := DefaultMuxParams(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SynthesizeMuxTrace(p, []int{1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("state/channel mismatch must fail")
	}
}

func TestCrosstalkMatrixNearIdentity(t *testing.T) {
	p, err := DefaultMuxParams(4)
	if err != nil {
		t.Fatal(err)
	}
	x, err := CrosstalkMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		for j := range x[i] {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(x[i][j]-want) > 0.02 {
				t.Errorf("crosstalk[%d][%d] = %v, want %v (orthogonal tones)", i, j, x[i][j], want)
			}
		}
	}
}

func TestCrosstalkWithNonOrthogonalTones(t *testing.T) {
	// Tones NOT at integer cycles per window leak into each other: the
	// off-diagonal grows, demonstrating why the spacing matters.
	p, err := DefaultMuxParams(2)
	if err != nil {
		t.Fatal(err)
	}
	p.Channels[1].IFHz = p.Channels[0].IFHz * 1.13 // deliberately close & non-orthogonal
	x, err := CrosstalkMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	if x[0][1] < 0.02 && x[1][0] < 0.02 {
		t.Errorf("expected visible crosstalk for non-orthogonal tones, got %v / %v", x[0][1], x[1][0])
	}
}

func TestCalibrateMuxEmpty(t *testing.T) {
	if _, err := CalibrateMux(MuxParams{}); err == nil {
		t.Error("empty configuration must fail")
	}
}
