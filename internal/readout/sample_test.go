package readout

import (
	"math"
	"math/rand"
	"testing"
)

// SampleMeasure must be the exact sampling distribution of the trace
// path: S = (1/n)·Σ Re[v_k·W] with v_k = mean + σ(x+iy) is Gaussian with
// mean Re[mean·W] and sd σ·|W|/√n. Compare empirical moments and error
// rates of the two paths.
func TestSampleMeasureMatchesTracePathDistribution(t *testing.T) {
	p := DefaultParams()
	p.NoiseSigma = 12 // widen noise so both paths show errors at n=300
	m := Calibrate(p)
	const shots = 20000

	stats := func(draw func(rng *rand.Rand) (int, float64)) (mean, sd, oneRate float64) {
		rng := rand.New(rand.NewSource(9))
		var sum, sumsq float64
		ones := 0
		for i := 0; i < shots; i++ {
			r, s := draw(rng)
			sum += s
			sumsq += s * s
			ones += r
		}
		mean = sum / shots
		sd = math.Sqrt(sumsq/shots - mean*mean)
		oneRate = float64(ones) / shots
		return
	}

	for state := 0; state <= 1; state++ {
		state := state
		tm, tsd, tones := stats(func(rng *rand.Rand) (int, float64) {
			return m.Measure(SynthesizeTrace(p, state, rng))
		})
		sm, ssd, sones := stats(func(rng *rand.Rand) (int, float64) {
			return m.SampleMeasure(state, rng)
		})
		terr, serr := tones, sones
		if state == 1 {
			terr, serr = 1-tones, 1-sones
		}
		// ~5σ bounds at 20k shots.
		if math.Abs(tm-sm) > 5*tsd/math.Sqrt(shots)+1e-9 {
			t.Errorf("state %d: means differ: trace %v vs sample %v", state, tm, sm)
		}
		if math.Abs(tsd-ssd)/tsd > 0.05 {
			t.Errorf("state %d: sd differ: trace %v vs sample %v", state, tsd, ssd)
		}
		if math.Abs(terr-serr) > 0.01 {
			t.Errorf("state %d: error rates differ: trace %v vs sample %v", state, terr, serr)
		}
		// Both must match the analytic assignment error.
		want := AssignmentErrorProbability(p)
		if math.Abs(serr-want) > 0.01 {
			t.Errorf("state %d: sampled error %v vs analytic %v", state, serr, want)
		}
	}
}

// The machine's PRNG-consumption contract (core.Machine.MeasureQubit and
// the replay engine both depend on it): exactly one variate per sampled
// measurement.
func TestSampleMeasureConsumesOneVariate(t *testing.T) {
	p := DefaultParams()
	m := Calibrate(p)
	rng := rand.New(rand.NewSource(4))
	ref := rand.New(rand.NewSource(4))
	m.SampleMeasure(0, rng)
	ref.NormFloat64()
	if got, want := rng.Int63(), ref.Int63(); got != want {
		t.Error("SampleMeasure consumed a variate count other than one NormFloat64")
	}
}

func TestSampleMeasureNoiselessIsDeterministic(t *testing.T) {
	p := DefaultParams()
	p.NoiseSigma = 0
	m := Calibrate(p)
	rng := rand.New(rand.NewSource(1))
	for state := 0; state <= 1; state++ {
		r, _ := m.SampleMeasure(state, rng)
		if r != state {
			t.Errorf("noiseless readout misassigned state %d as %d", state, r)
		}
	}
}
