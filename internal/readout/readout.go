// Package readout models QuMA's measurement chain: the qubit-state-
// dependent analog signal transmitted through the readout resonator and
// feedline, the measurement discrimination unit (MDU) that integrates the
// digitized trace against a calibrated weight function and thresholds it
// into a binary result, and the data collection unit that averages
// integration results over experiment rounds.
//
// On the real device, measuring a transmon pulses the feedline near the
// resonator frequency for 300 ns – 2 µs; the transmitted signal's IQ point
// depends on the qubit state. Here the same information flow is preserved:
// the chip's projective outcome selects the IQ mean, Gaussian noise is
// added per sample, and the *binary result the controller sees* comes out
// of the MDU's integrate-and-threshold — so readout infidelity arises
// physically from trace noise rather than from a coin flip bolted on top.
package readout

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"quma/internal/clock"
)

// Params describes the readout chain for one qubit.
type Params struct {
	// Mean0 and Mean1 are the demodulated IQ-plane means of the
	// transmitted signal for qubit states |0⟩ and |1⟩.
	Mean0, Mean1 complex128
	// NoiseSigma is the per-sample Gaussian noise on each quadrature.
	NoiseSigma float64
	// IntegrationSamples is the number of 5 ns demodulated samples
	// integrated per measurement (the paper's 300-cycle measurement pulse
	// yields 300 samples at one sample per control cycle).
	IntegrationSamples int
	// DiscriminationLatency is the fixed processing latency between the
	// end of integration and the binary result becoming available to the
	// controller; the paper's FPGA implementation achieves < 1 µs total.
	DiscriminationLatency clock.Cycle
}

// DefaultParams returns a readout configuration with ~99.5 % assignment
// fidelity at a 300-cycle (1.5 µs) integration window.
func DefaultParams() Params {
	return Params{
		Mean0:                 complex(1, 0),
		Mean1:                 complex(-0.4, 0.9),
		NoiseSigma:            6.0,
		IntegrationSamples:    300,
		DiscriminationLatency: 40, // 200 ns
	}
}

// SynthesizeTrace produces the demodulated IQ samples transmitted while
// the qubit is in the given state.
func SynthesizeTrace(p Params, state int, rng *rand.Rand) []complex128 {
	mean := p.Mean0
	if state == 1 {
		mean = p.Mean1
	}
	trace := make([]complex128, p.IntegrationSamples)
	for k := range trace {
		trace[k] = mean + complex(rng.NormFloat64()*p.NoiseSigma, rng.NormFloat64()*p.NoiseSigma)
	}
	return trace
}

// MDU is the measurement discrimination unit for a single qubit: a
// calibrated weight function and threshold, implementing
//
//	S = Σ_t Re[ V(t) · W(t) ],   M = 1 if S > T else 0.
type MDU struct {
	Weight    complex128 // constant optimal weight (conj of the mean separation)
	Threshold float64
	Latency   clock.Cycle
	n         int
	// s0/s1 are the noiseless integration results for |0⟩/|1⟩ and sigmaS
	// the exact standard deviation of the integrated noise — the matched
	// filter's sufficient statistic (see SampleMeasure).
	s0, s1 float64
	sigmaS float64
}

// Calibrate returns an MDU whose weight function and threshold are matched
// filters for the given readout parameters, the software analogue of the
// calibration step performed before the paper's experiments.
func Calibrate(p Params) *MDU {
	sep := p.Mean1 - p.Mean0
	w := cmplx.Conj(sep)
	if cmplx.Abs(sep) > 0 {
		w /= complex(cmplx.Abs(sep), 0)
	}
	s0 := real(p.Mean0 * w)
	s1 := real(p.Mean1 * w)
	sigmaS := 0.0
	if p.IntegrationSamples > 0 {
		sigmaS = p.NoiseSigma * cmplx.Abs(w) / math.Sqrt(float64(p.IntegrationSamples))
	}
	return &MDU{
		Weight:    w,
		Threshold: (s0 + s1) / 2,
		Latency:   p.DiscriminationLatency,
		n:         p.IntegrationSamples,
		s0:        s0,
		s1:        s1,
		sigmaS:    sigmaS,
	}
}

// Integrate applies the weight function and returns the scalar integration
// result S (normalized per sample so thresholds are trace-length
// independent).
func (m *MDU) Integrate(trace []complex128) float64 {
	var s float64
	for _, v := range trace {
		s += real(v * m.Weight)
	}
	if len(trace) > 0 {
		s /= float64(len(trace))
	}
	return s
}

// Discriminate thresholds an integration result into the binary
// measurement result Mq.
func (m *MDU) Discriminate(s float64) int {
	if s > m.Threshold {
		return 1
	}
	return 0
}

// Measure runs the full chain for one shot: integrate the trace, threshold
// it, and return both the binary result and the raw integration value.
func (m *MDU) Measure(trace []complex128) (result int, s float64) {
	s = m.Integrate(trace)
	return m.Discriminate(s), s
}

// SampleMeasure draws the integration result S directly from its exact
// sampling distribution instead of synthesizing and integrating a trace.
// With per-sample noise v_k = mean + σ(x_k + i·y_k) and x, y standard
// normal, S = (1/n)·Σ Re[v_k·W] is exactly Gaussian with mean Re[mean·W]
// and standard deviation σ·|W|/√n — so sampling S consumes one variate
// where the trace path consumed 2n, with bit-for-bit the same *statistics*
// (assignment fidelity, collector averages, thresholding behaviour).
//
// This is the multi-shot hot path used by core.Machine; SynthesizeTrace +
// Measure remain as the sample-level reference (tests pin the two paths to
// the same distribution) and as the multiplexed-readout route, which needs
// per-sample demultiplexing.
func (m *MDU) SampleMeasure(state int, rng *rand.Rand) (result int, s float64) {
	s = m.s0
	if state == 1 {
		s = m.s1
	}
	if m.sigmaS > 0 {
		s += rng.NormFloat64() * m.sigmaS
	}
	return m.Discriminate(s), s
}

// AssignmentErrorProbability returns the analytic per-shot misassignment
// probability for the matched filter under params p: Q(d·√n / 2σ) where d
// is the IQ separation.
func AssignmentErrorProbability(p Params) float64 {
	if p.NoiseSigma <= 0 {
		return 0
	}
	d := cmplx.Abs(p.Mean1 - p.Mean0)
	z := d * math.Sqrt(float64(p.IntegrationSamples)) / (2 * p.NoiseSigma)
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// TotalLatency returns the measurement-to-result latency in cycles:
// integration window plus discrimination processing. The paper requires
// this to be well below qubit coherence (< 1 µs achieved) for feedback.
func (m *MDU) TotalLatency() clock.Cycle {
	return clock.Cycle(m.n) + m.Latency
}

// DataCollector is the control box's data collection unit: it accumulates
// K consecutive integration results per round over N rounds and exposes
// the per-index averages S̄_i = (Σ_j S_{i,j}) / N — the quantity the PC
// retrieves after an experiment (paper Section 7.1).
type DataCollector struct {
	K      int
	sums   []float64
	counts []int
	idx    int
	rounds int
}

// NewDataCollector returns a collector for K integration results per round.
func NewDataCollector(k int) *DataCollector {
	if k <= 0 {
		panic(fmt.Sprintf("readout: invalid K=%d", k))
	}
	return &DataCollector{K: k, sums: make([]float64, k), counts: make([]int, k)}
}

// Record appends one integration result; results cycle through indices
// 0..K-1 in arrival order, exactly like the hardware unit.
func (d *DataCollector) Record(s float64) {
	d.sums[d.idx] += s
	d.counts[d.idx]++
	d.idx++
	if d.idx == d.K {
		d.idx = 0
		d.rounds++
	}
}

// Rounds returns the number of complete rounds recorded.
func (d *DataCollector) Rounds() int { return d.rounds }

// Sums returns a copy of the per-index running sums Σ_j S_{i,j}.
// Together with Counts it lets shot-sharded experiments merge several
// collectors exactly: summing the shard sums and counts in shard order,
// then dividing once, reproduces the single-collector average bit for
// bit when there is one shard and deterministically for any shard count.
func (d *DataCollector) Sums() []float64 {
	return append([]float64(nil), d.sums...)
}

// Counts returns a copy of the per-index record counts.
func (d *DataCollector) Counts() []int {
	return append([]int(nil), d.counts...)
}

// Averages returns S̄_i for i in 0..K-1. Indices never recorded return 0.
func (d *DataCollector) Averages() []float64 {
	out := make([]float64, d.K)
	for i := range out {
		if d.counts[i] > 0 {
			out[i] = d.sums[i] / float64(d.counts[i])
		}
	}
	return out
}

// Reset clears all accumulated state.
func (d *DataCollector) Reset() {
	for i := range d.sums {
		d.sums[i] = 0
		d.counts[i] = 0
	}
	d.idx = 0
	d.rounds = 0
}

// RescaleToFidelity converts raw averaged integration results into
// readout-corrected |1⟩-state fidelities using calibration points, the
// paper's Section 8 formula:
//
//	F_i = (S̄_i - S̄_|0⟩) / (S̄_|1⟩ - S̄_|0⟩)
func RescaleToFidelity(avgs []float64, cal0, cal1 float64) []float64 {
	out := make([]float64, len(avgs))
	den := cal1 - cal0
	if den == 0 {
		return out
	}
	for i, s := range avgs {
		out[i] = (s - cal0) / den
	}
	return out
}
