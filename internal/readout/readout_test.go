package readout

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCalibrateSeparatesMeans(t *testing.T) {
	p := DefaultParams()
	m := Calibrate(p)
	s0 := real(p.Mean0 * m.Weight)
	s1 := real(p.Mean1 * m.Weight)
	if s1 <= s0 {
		t.Fatalf("calibration must map |1⟩ above |0⟩: s0=%v s1=%v", s0, s1)
	}
	if m.Threshold <= s0 || m.Threshold >= s1 {
		t.Errorf("threshold %v not between %v and %v", m.Threshold, s0, s1)
	}
}

func TestNoiselessDiscriminationPerfect(t *testing.T) {
	p := DefaultParams()
	p.NoiseSigma = 0
	m := Calibrate(p)
	rng := rand.New(rand.NewSource(1))
	for state := 0; state <= 1; state++ {
		res, _ := m.Measure(SynthesizeTrace(p, state, rng))
		if res != state {
			t.Errorf("noiseless readout misassigned state %d", state)
		}
	}
}

func TestAssignmentFidelityMatchesAnalytic(t *testing.T) {
	p := DefaultParams()
	p.NoiseSigma = 12 // degrade so errors are observable
	p.IntegrationSamples = 100
	m := Calibrate(p)
	rng := rand.New(rand.NewSource(2))
	const shots = 40000
	errs := 0
	for i := 0; i < shots; i++ {
		state := i % 2
		res, _ := m.Measure(SynthesizeTrace(p, state, rng))
		if res != state {
			errs++
		}
	}
	got := float64(errs) / shots
	want := AssignmentErrorProbability(p)
	if want < 1e-4 {
		t.Fatalf("test setup: analytic error %v too small to sample", want)
	}
	if math.Abs(got-want) > 3*math.Sqrt(want/shots)+0.002 {
		t.Errorf("empirical error %v, analytic %v", got, want)
	}
}

func TestDefaultParamsHighFidelity(t *testing.T) {
	if p := AssignmentErrorProbability(DefaultParams()); p > 0.01 {
		t.Errorf("default assignment error %v, want < 1%%", p)
	}
}

func TestTotalLatencyUnderCoherence(t *testing.T) {
	// The paper's requirement: measurement-to-result latency well below
	// the ~100 µs coherence time; the FPGA achieves < 1 µs.
	m := Calibrate(DefaultParams())
	if lat := m.TotalLatency().Seconds(); lat >= 2e-6 {
		t.Errorf("MDU latency %v s, want < 2 µs", lat)
	}
}

func TestIntegrateEmptyTrace(t *testing.T) {
	m := Calibrate(DefaultParams())
	if s := m.Integrate(nil); s != 0 {
		t.Errorf("empty trace integrates to %v", s)
	}
}

func TestCalibrateDegenerateMeans(t *testing.T) {
	p := DefaultParams()
	p.Mean1 = p.Mean0
	m := Calibrate(p) // must not divide by zero
	if math.IsNaN(m.Threshold) {
		t.Error("degenerate calibration produced NaN threshold")
	}
}

func TestDataCollectorAveraging(t *testing.T) {
	d := NewDataCollector(3)
	// Two rounds of K=3: indices get (1,2,3) then (3,4,5).
	for _, s := range []float64{1, 2, 3, 3, 4, 5} {
		d.Record(s)
	}
	if d.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", d.Rounds())
	}
	avgs := d.Averages()
	want := []float64{2, 3, 4}
	for i := range want {
		if math.Abs(avgs[i]-want[i]) > 1e-12 {
			t.Errorf("avg[%d] = %v, want %v", i, avgs[i], want[i])
		}
	}
}

func TestDataCollectorPartialRound(t *testing.T) {
	d := NewDataCollector(4)
	d.Record(8)
	avgs := d.Averages()
	if avgs[0] != 8 || avgs[1] != 0 {
		t.Errorf("partial round averages wrong: %v", avgs)
	}
	if d.Rounds() != 0 {
		t.Error("partial round must not count")
	}
}

func TestDataCollectorReset(t *testing.T) {
	d := NewDataCollector(2)
	d.Record(1)
	d.Record(2)
	d.Reset()
	if d.Rounds() != 0 || d.Averages()[0] != 0 {
		t.Error("reset incomplete")
	}
}

func TestNewDataCollectorPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K=0")
		}
	}()
	NewDataCollector(0)
}

func TestRescaleToFidelity(t *testing.T) {
	avgs := []float64{1.0, 2.5, 4.0}
	f := RescaleToFidelity(avgs, 1.0, 4.0)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-12 {
			t.Errorf("f[%d] = %v, want %v", i, f[i], want[i])
		}
	}
}

func TestRescaleDegenerate(t *testing.T) {
	f := RescaleToFidelity([]float64{1, 2}, 3, 3)
	if f[0] != 0 || f[1] != 0 {
		t.Error("degenerate rescale must return zeros, not NaN")
	}
}

// Property: averaging N identical values returns that value for any K.
func TestPropertyCollectorConstantInput(t *testing.T) {
	f := func(kRaw uint8, v float64, roundsRaw uint8) bool {
		k := int(kRaw%8) + 1
		rounds := int(roundsRaw%5) + 1
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
			return true // summing K·rounds copies would overflow
		}
		d := NewDataCollector(k)
		for i := 0; i < k*rounds; i++ {
			d.Record(v)
		}
		for _, a := range d.Averages() {
			if math.Abs(a-v) > 1e-9*math.Max(1, math.Abs(v)) {
				return false
			}
		}
		return d.Rounds() == rounds
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: increasing integration length never increases the analytic
// assignment error.
func TestPropertyLongerIntegrationHelps(t *testing.T) {
	p := DefaultParams()
	p.NoiseSigma = 10
	prev := 1.0
	for _, n := range []int{10, 50, 100, 300, 1000} {
		p.IntegrationSamples = n
		e := AssignmentErrorProbability(p)
		if e > prev+1e-15 {
			t.Fatalf("error increased with integration length at n=%d", n)
		}
		prev = e
	}
}
