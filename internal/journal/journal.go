// Package journal is the crash-safe durable job log of the quma batch
// service: an append-only, fsync'd, checksummed write-ahead log of
// accepted jobs and their state transitions. One record is appended per
// transition — accepted (carrying the canonicalized request JSON, its
// hash, and an optional idempotency key), running, and exactly one
// terminal record (done with the result bytes and their hash, or
// failed/canceled with the taxonomy code) — so that after an unclean
// process death the service can replay the log, restore every terminal
// job byte-for-byte, and re-enqueue every non-terminal job for
// deterministic re-execution. The service determinism contract (result
// JSON is a pure function of the request) is what makes this sound:
// at-least-once re-execution of a journaled request reproduces the
// exact result bytes, so recovery gives exactly-once-observable
// semantics without distributed coordination.
//
// # On-disk format
//
// A journal is a directory of segment files seg-NNNNNNNN.wal. Each
// segment is a sequence of framed records:
//
//	[4B little-endian payload length][4B CRC32-C of payload][payload]
//
// where the payload is the JSON encoding of Record. Appends are
// fsync'd before they are acknowledged (Options.DisableFsync turns
// this off for tests). Replay walks the segments in order and stops at
// the first frame that fails to parse — short header, short payload,
// checksum mismatch, or invalid JSON. Everything from that point on is
// the torn tail of an interrupted write (or real corruption): the
// segment is truncated at the last valid record, later segments are
// dropped, and Open succeeds with the damage reported in
// RecoveryStats — a torn tail is recovered-with-truncation, never a
// startup failure. A job whose terminal record fell in the truncated
// tail simply replays as non-terminal and is re-executed.
//
// # Rotation and compaction
//
// When the active segment exceeds Options.MaxSegmentBytes, the journal
// rotates: the live state (one accepted record per known job, its
// running marker if running, and its terminal record if finished) is
// rewritten compacted into a fresh segment, the new segment is synced,
// and the old segments are deleted. Jobs the service has evicted from
// its retention window are tombstoned with an evicted record and drop
// out entirely at the next compaction, so the journal's size is
// bounded by the service's own retention bound, not by uptime.
//
// # Fault hooks
//
// Faults mirrors the nil-check-only hook pattern of expt.FaultHooks:
// a nil *Faults (the default everywhere outside crash tests) costs one
// nil check per append. internal/faultinject compiles deterministic
// disk fault plans (FailJournalAppend, TornWrite, SlowFsync) into
// these hooks for the kill-based crash harness in internal/service.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Record types: one per job state transition, plus the eviction
// tombstone. The strings are the on-disk contract — never renumber or
// reuse them.
const (
	TypeAccepted = "accepted"
	TypeRunning  = "running"
	TypeDone     = "done"
	TypeFailed   = "failed"
	TypeCanceled = "canceled"
	TypeEvicted  = "evicted"
)

// Record is one journal entry. Which fields are meaningful depends on
// Type; Seq is assigned by Append and is monotonic across segments.
type Record struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	Job  string `json:"job"`

	// Accepted records carry the submission: the canonicalized request
	// JSON (the experiments array exactly as the service will re-execute
	// it), its hash, and the client's idempotency key if one was given.
	Key     string          `json:"key,omitempty"`
	ReqHash string          `json:"req_hash,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	// Tenant names the submitting tenant on accepted records, so
	// recovery restores per-tenant quota accounting; empty means the
	// anonymous tenant (schema-additive: records written before tenancy
	// existed decode with the empty value).
	Tenant string `json:"tenant,omitempty"`

	// Failed/canceled records carry the stable taxonomy code and the
	// free-text message.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`

	// Done records carry the result document (the results array the
	// service serves) and its hash, so a recovered terminal job is
	// queryable without re-execution and the bytes are integrity-checked
	// at recovery.
	ResultHash string          `json:"result_hash,omitempty"`
	Results    json.RawMessage `json:"results,omitempty"`
}

// Record constructors — one per transition, so call sites cannot
// mis-assemble a record. The optional Tenant field is set directly on
// the Accepted record by callers that run with tenancy enabled.

func Accepted(job, key, reqHash string, request json.RawMessage) Record {
	return Record{Type: TypeAccepted, Job: job, Key: key, ReqHash: reqHash, Request: request}
}
func Running(job string) Record { return Record{Type: TypeRunning, Job: job} }
func Done(job, resultHash string, results json.RawMessage) Record {
	return Record{Type: TypeDone, Job: job, ResultHash: resultHash, Results: results}
}
func Failed(job, code, msg string) Record {
	return Record{Type: TypeFailed, Job: job, Code: code, Error: msg}
}
func Canceled(job, code, msg string) Record {
	return Record{Type: TypeCanceled, Job: job, Code: code, Error: msg}
}
func Evicted(job string) Record { return Record{Type: TypeEvicted, Job: job} }

// JobState is one job's replayed state: its accepted-record fields plus
// the latest transition observed. Status is one of the Type* constants
// except TypeEvicted (evicted jobs are deleted from the state map).
type JobState struct {
	Seq     uint64
	ID      string
	Key     string
	ReqHash string
	Request json.RawMessage
	// Tenant is the submitting tenant's name; empty means anonymous.
	Tenant string

	Status     string
	Code       string
	Error      string
	ResultHash string
	Results    json.RawMessage
}

// Terminal reports whether the job reached a terminal state before the
// crash (and so must be restored, not re-executed).
func (s *JobState) Terminal() bool {
	return s.Status == TypeDone || s.Status == TypeFailed || s.Status == TypeCanceled
}

// RecoveryStats reports what Open found and what it had to repair.
type RecoveryStats struct {
	// Segments found on disk at open (before any drop).
	Segments int
	// Records replayed successfully.
	Records int
	// Jobs live after replay (terminal + non-terminal, minus evicted).
	Jobs int
	// TruncatedBytes is the size of the torn/corrupt tail discarded from
	// the damaged segment (0 on a clean open).
	TruncatedBytes int64
	// DroppedSegments counts whole segments discarded because they
	// followed a corrupt record (0 on a clean open; a torn tail from a
	// crash always sits in the last segment).
	DroppedSegments int
}

// Faults are the journal's deterministic disk fault hooks, compiled by
// internal/faultinject. A nil *Faults is the production default and
// costs one nil check per append; none of the hooks is on any per-shot
// path.
type Faults struct {
	// Append runs before each record append; a non-nil error fails that
	// append (the caller sees a journal write failure).
	Append func() error
	// Torn may return a strict prefix of the framed record to write in
	// its place, simulating a write torn by a crash: the prefix is
	// written, the append reports success, and the journal wedges (later
	// appends become silent no-ops) so the torn bytes stay the tail —
	// exactly the on-disk state an OS-level torn write leaves behind.
	// Returning nil leaves the record intact.
	Torn func(frame []byte) []byte
	// Fsync runs before each fsync (sleep here to simulate a slow disk).
	Fsync func()
}

// Options configures Open.
type Options struct {
	// Dir is the journal directory; created if absent.
	Dir string
	// MaxSegmentBytes triggers rotation + compaction when the active
	// segment grows past it (default 4 MiB).
	MaxSegmentBytes int64
	// DisableFsync skips the per-append fsync (tests only: a SIGKILL
	// still observes everything written, but a power loss would not).
	DisableFsync bool
	// Faults installs disk fault hooks; nil in production.
	Faults *Faults
}

const (
	frameHeader           = 8
	defaultMaxSegment     = 4 << 20
	maxRecordBytes        = 64 << 20 // corrupt-length guard, far above any real record
	segmentPrefix         = "seg-"
	segmentSuffix         = ".wal"
	segmentNameFormat     = segmentPrefix + "%08d" + segmentSuffix
	firstSegmentIndex int = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	mu      sync.Mutex
	dir     string
	maxSeg  int64
	noSync  bool
	faults  *Faults
	f       *os.File
	segIdx  int
	size    int64
	nextSeq uint64
	wedged  bool
	state   map[string]*JobState
	stats   RecoveryStats
}

func segmentPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf(segmentNameFormat, idx))
}

// Open replays the journal in dir (creating it if absent), repairs any
// torn tail by truncation, and returns the journal ready for appends.
// It never fails because of a torn or corrupt tail — only on real I/O
// errors (unreadable directory, failed truncate).
func Open(opts Options) (*Journal, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("journal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	maxSeg := opts.MaxSegmentBytes
	if maxSeg <= 0 {
		maxSeg = defaultMaxSegment
	}
	j := &Journal{
		dir:     opts.Dir,
		maxSeg:  maxSeg,
		noSync:  opts.DisableFsync,
		faults:  opts.Faults,
		segIdx:  firstSegmentIndex,
		nextSeq: 1,
		state:   make(map[string]*JobState),
	}

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	j.stats.Segments = len(segs)
	if err := j.replay(segs); err != nil {
		return nil, err
	}
	j.stats.Jobs = len(j.state)

	f, err := os.OpenFile(segmentPath(j.dir, j.segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f, j.size = f, fi.Size()
	return j, nil
}

// listSegments returns the segment indices present in dir, sorted.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix))
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// replay walks the segments in order, applying every valid record. The
// first invalid frame ends the replay: that segment is truncated at the
// last valid record and every later segment is deleted (monotonic
// sequence numbers mean everything after a bad record is suspect; in
// the crash case the bad record is always the torn tail of the last
// segment and nothing follows it).
func (j *Journal) replay(segs []int) error {
	for i, idx := range segs {
		j.segIdx = idx
		path := segmentPath(j.dir, idx)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		off, bad := int64(0), false
		for off < int64(len(data)) {
			rec, n, ok := parseFrame(data[off:])
			if !ok {
				bad = true
				break
			}
			j.apply(rec)
			if rec.Seq >= j.nextSeq {
				j.nextSeq = rec.Seq + 1
			}
			j.stats.Records++
			off += n
		}
		if !bad {
			continue
		}
		j.stats.TruncatedBytes += int64(len(data)) - off
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		for _, later := range segs[i+1:] {
			fi, err := os.Stat(segmentPath(j.dir, later))
			if err == nil {
				j.stats.TruncatedBytes += fi.Size()
			}
			if err := os.Remove(segmentPath(j.dir, later)); err != nil {
				return fmt.Errorf("journal: dropping segment after corrupt record: %w", err)
			}
			j.stats.DroppedSegments++
		}
		syncDir(j.dir)
		break
	}
	return nil
}

// parseFrame decodes one framed record from the front of b, returning
// the record, the frame's total length, and whether the frame was
// valid and complete.
func parseFrame(b []byte) (Record, int64, bool) {
	var rec Record
	if len(b) < frameHeader {
		return rec, 0, false
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > maxRecordBytes || int64(len(b)-frameHeader) < int64(n) {
		return rec, 0, false
	}
	payload := b[frameHeader : frameHeader+int64(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return rec, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, false
	}
	return rec, frameHeader + int64(n), true
}

// apply folds one record into the replayed state map.
func (j *Journal) apply(rec Record) {
	switch rec.Type {
	case TypeAccepted:
		j.state[rec.Job] = &JobState{
			Seq: rec.Seq, ID: rec.Job, Key: rec.Key, ReqHash: rec.ReqHash,
			Request: rec.Request, Tenant: rec.Tenant, Status: TypeAccepted,
		}
	case TypeRunning:
		if st := j.state[rec.Job]; st != nil {
			st.Status = TypeRunning
		}
	case TypeDone:
		if st := j.state[rec.Job]; st != nil {
			st.Status, st.ResultHash, st.Results = TypeDone, rec.ResultHash, rec.Results
		}
	case TypeFailed, TypeCanceled:
		if st := j.state[rec.Job]; st != nil {
			st.Status, st.Code, st.Error = rec.Type, rec.Code, rec.Error
		}
	case TypeEvicted:
		delete(j.state, rec.Job)
	}
}

// States returns the replayed (and since-appended) job states in
// submission order. The returned values are copies.
func (j *Journal) States() []*JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*JobState, 0, len(j.state))
	for _, st := range j.state {
		cp := *st
		out = append(out, &cp)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Stats returns the recovery statistics from Open.
func (j *Journal) Stats() RecoveryStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Append durably appends one record: frame, write, fsync — the record
// is on disk (modulo DisableFsync) before Append returns nil. Rotation
// and compaction happen transparently when the active segment outgrows
// its bound.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wedged {
		// A simulated torn write ended this journal's usable life the
		// same way a crash would have; the harness SIGKILLs shortly.
		return nil
	}
	if f := j.faults; f != nil && f.Append != nil {
		if err := f.Append(); err != nil {
			return fmt.Errorf("journal: append: %w", err)
		}
	}
	rec.Seq = j.nextSeq
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	if f := j.faults; f != nil && f.Torn != nil {
		if torn := f.Torn(frame); torn != nil && len(torn) < len(frame) {
			j.f.Write(torn)
			j.syncLocked()
			j.wedged = true
			return nil
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	j.nextSeq++
	j.size += int64(len(frame))
	j.apply(rec)
	if j.size > j.maxSeg {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

func encodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

func (j *Journal) syncLocked() error {
	if f := j.faults; f != nil && f.Fsync != nil {
		f.Fsync()
	}
	if j.noSync {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// rotateLocked rewrites the live state compacted into a fresh segment
// and deletes the old ones. Crash-safe: the new segment is fully
// written and synced before any old segment is removed, and replay
// tolerates the transient duplication (a re-applied accepted record is
// idempotent).
func (j *Journal) rotateLocked() error {
	sts := make([]*JobState, 0, len(j.state))
	for _, st := range j.state {
		sts = append(sts, st)
	}
	sort.Slice(sts, func(a, b int) bool { return sts[a].Seq < sts[b].Seq })

	newIdx := j.segIdx + 1
	path := segmentPath(j.dir, newIdx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	var size int64
	for _, st := range sts {
		recs := st.records()
		// The job keeps its relative submission order under the fresh
		// sequence numbers: states were iterated in old-seq order.
		st.Seq = j.nextSeq
		for _, rec := range recs {
			rec.Seq = j.nextSeq
			j.nextSeq++
			frame, err := encodeFrame(rec)
			if err != nil {
				f.Close()
				return err
			}
			if _, err := f.Write(frame); err != nil {
				f.Close()
				return fmt.Errorf("journal: rotate: %w", err)
			}
			size += int64(len(frame))
		}
	}
	if !j.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("journal: rotate: %w", err)
		}
	}
	syncDir(j.dir)

	old, oldIdx := j.f, j.segIdx
	j.f, j.segIdx, j.size = f, newIdx, size
	old.Close()
	for idx := oldIdx; idx >= firstSegmentIndex; idx-- {
		p := segmentPath(j.dir, idx)
		if _, err := os.Stat(p); err != nil {
			break
		}
		os.Remove(p)
	}
	syncDir(j.dir)
	return nil
}

// records reconstructs the compacted record sequence for one job state.
func (st *JobState) records() []Record {
	acc := Accepted(st.ID, st.Key, st.ReqHash, st.Request)
	acc.Tenant = st.Tenant
	recs := []Record{acc}
	switch st.Status {
	case TypeRunning:
		recs = append(recs, Running(st.ID))
	case TypeDone:
		recs = append(recs, Done(st.ID, st.ResultHash, st.Results))
	case TypeFailed:
		recs = append(recs, Failed(st.ID, st.Code, st.Error))
	case TypeCanceled:
		recs = append(recs, Canceled(st.ID, st.Code, st.Error))
	}
	return recs
}

// Close syncs and closes the active segment. The journal is not usable
// afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	var err error
	if !j.noSync && !j.wedged {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// syncDir fsyncs a directory so segment creations/removals are durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
