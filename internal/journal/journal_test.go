package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func open(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	opts.Dir = dir
	j, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func appendAll(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	req := json.RawMessage(`[{"type":"t1","seed":5}]`)
	res := json.RawMessage(`[{"type":"t1","schema":2,"result":{}}]`)

	j := open(t, dir, Options{})
	appendAll(t, j,
		Accepted("job-1", "key-a", "hash-1", req),
		Running("job-1"),
		Done("job-1", "rhash-1", res),
		Accepted("job-2", "", "hash-2", req),
		Running("job-2"),
		Accepted("job-3", "", "hash-3", req),
	)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := open(t, dir, Options{})
	sts := j2.States()
	if len(sts) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(sts))
	}
	// Submission order preserved.
	for i, want := range []string{"job-1", "job-2", "job-3"} {
		if sts[i].ID != want {
			t.Fatalf("state %d is %s, want %s", i, sts[i].ID, want)
		}
	}
	if !sts[0].Terminal() || sts[0].Status != TypeDone || sts[0].Key != "key-a" ||
		sts[0].ResultHash != "rhash-1" || !bytes.Equal(sts[0].Results, res) {
		t.Fatalf("job-1 state %+v not restored", sts[0])
	}
	if sts[1].Terminal() || sts[1].Status != TypeRunning || !bytes.Equal(sts[1].Request, req) {
		t.Fatalf("job-2 state %+v, want non-terminal running with request", sts[1])
	}
	if sts[2].Status != TypeAccepted {
		t.Fatalf("job-3 status %s, want accepted", sts[2].Status)
	}
	if st := j2.Stats(); st.Records != 6 || st.TruncatedBytes != 0 || st.Jobs != 3 {
		t.Fatalf("clean reopen stats %+v", st)
	}
}

// TestTornTailTruncates covers the crash contract: a record cut mid-way
// (any prefix length, including a cut inside the frame header) must be
// truncated away at reopen — never a startup failure — and every record
// before it must survive.
func TestTornTailTruncates(t *testing.T) {
	for _, cut := range []string{"header", "payload"} {
		t.Run(cut, func(t *testing.T) {
			dir := t.TempDir()
			j := open(t, dir, Options{})
			appendAll(t, j,
				Accepted("job-1", "", "h1", json.RawMessage(`[]`)),
				Running("job-1"),
			)
			j.Close()

			seg := segmentPath(dir, firstSegmentIndex)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			whole := len(data)
			// Append a record, then tear it: keep only a few bytes of it.
			j = open(t, dir, Options{})
			appendAll(t, j, Done("job-1", "rh", json.RawMessage(`[]`)))
			j.Close()
			data, err = os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			keep := whole + 4 // cut inside the new frame's header
			if cut == "payload" {
				keep = whole + frameHeader + 3
			}
			if err := os.WriteFile(seg, data[:keep], 0o644); err != nil {
				t.Fatal(err)
			}

			j2 := open(t, dir, Options{})
			sts := j2.States()
			if len(sts) != 1 || sts[0].Terminal() || sts[0].Status != TypeRunning {
				t.Fatalf("after torn tail, states %+v; want job-1 back to running", sts)
			}
			st := j2.Stats()
			if st.TruncatedBytes != int64(keep-whole) {
				t.Fatalf("TruncatedBytes %d, want %d", st.TruncatedBytes, keep-whole)
			}
			// The file itself was repaired, so a third open is clean.
			j2.Close()
			j3 := open(t, dir, Options{})
			if st := j3.Stats(); st.TruncatedBytes != 0 {
				t.Fatalf("repair did not stick: %+v", st)
			}
			// And the repaired journal accepts appends again.
			appendAll(t, j3, Done("job-1", "rh", json.RawMessage(`[]`)))
			j3.Close()
			j4 := open(t, dir, Options{})
			if sts := j4.States(); len(sts) != 1 || sts[0].Status != TypeDone {
				t.Fatalf("append after repair lost: %+v", sts)
			}
		})
	}
}

// TestCorruptRecordDropsSuffix flips a byte mid-file: replay keeps the
// prefix, truncates from the corrupt record, and still opens.
func TestCorruptRecordDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	j := open(t, dir, Options{})
	appendAll(t, j,
		Accepted("job-1", "", "h1", json.RawMessage(`[]`)),
		Accepted("job-2", "", "h2", json.RawMessage(`[]`)),
	)
	j.Close()
	seg := segmentPath(dir, firstSegmentIndex)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second frame and corrupt one payload byte.
	_, n, ok := parseFrame(data)
	if !ok {
		t.Fatal("first frame unparseable")
	}
	data[n+frameHeader+2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := open(t, dir, Options{})
	sts := j2.States()
	if len(sts) != 1 || sts[0].ID != "job-1" {
		t.Fatalf("after corruption, states %+v; want only job-1", sts)
	}
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatalf("corruption not reported: %+v", st)
	}
}

// TestRotationCompactsAndBoundsSize drives enough records through a
// tiny segment bound to force several rotations, evicting as it goes:
// the directory must end with exactly one live segment whose replayed
// state contains only the non-evicted jobs, in order.
func TestRotationCompactsAndBoundsSize(t *testing.T) {
	dir := t.TempDir()
	j := open(t, dir, Options{MaxSegmentBytes: 2048, DisableFsync: true})
	res := json.RawMessage(`[{"result":"payload-payload-payload"}]`)
	const jobs = 50
	for i := 1; i <= jobs; i++ {
		id := fmt.Sprintf("job-%d", i)
		appendAll(t, j,
			Accepted(id, "", fmt.Sprintf("h%d", i), json.RawMessage(`[{"type":"t1"}]`)),
			Running(id),
			Done(id, "rh", res),
		)
		if i > 3 {
			// Retention bound of 3: evict the oldest.
			appendAll(t, j, Evicted(fmt.Sprintf("job-%d", i-3)))
		}
	}
	j.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("found %d segments after compaction, want 1: %v", len(segs), segs)
	}
	fi, err := os.Stat(segmentPath(dir, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 4096 {
		t.Fatalf("live segment is %d bytes; compaction is not bounding the journal", fi.Size())
	}
	j2 := open(t, dir, Options{})
	sts := j2.States()
	if len(sts) != 3 {
		t.Fatalf("replayed %d jobs, want the 3 retained", len(sts))
	}
	for i, want := range []string{"job-48", "job-49", "job-50"} {
		if sts[i].ID != want || sts[i].Status != TypeDone {
			t.Fatalf("state %d is %s/%s, want %s/done", i, sts[i].ID, sts[i].Status, want)
		}
	}
}

// TestCompactionSurvivesCrashBeforeCleanup simulates a crash between
// writing the compacted segment and deleting the old ones: replay must
// tolerate the duplicated records (old segment then compacted segment).
func TestCompactionSurvivesCrashBeforeCleanup(t *testing.T) {
	dir := t.TempDir()
	j := open(t, dir, Options{DisableFsync: true})
	appendAll(t, j,
		Accepted("job-1", "k", "h1", json.RawMessage(`[1]`)),
		Done("job-1", "rh1", json.RawMessage(`[2]`)),
	)
	j.Close()
	// Hand-write the "compacted" second segment the rotation would have
	// produced, leaving the first in place (the crash window).
	j = open(t, dir, Options{DisableFsync: true})
	sts := j.States()
	j.Close()
	f, err := os.Create(segmentPath(dir, firstSegmentIndex+1))
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(100)
	for _, st := range sts {
		for _, rec := range st.records() {
			rec.Seq = seq
			seq++
			frame, err := encodeFrame(rec)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(frame)
		}
	}
	f.Close()

	j2 := open(t, dir, Options{})
	got := j2.States()
	if len(got) != 1 || got[0].ID != "job-1" || got[0].Status != TypeDone ||
		got[0].Key != "k" || !bytes.Equal(got[0].Results, json.RawMessage(`[2]`)) {
		t.Fatalf("duplicated replay state %+v", got)
	}
}

func TestFaultHooks(t *testing.T) {
	t.Run("append failure surfaces and later appends succeed", func(t *testing.T) {
		dir := t.TempDir()
		boom := errors.New("disk on fire")
		calls := 0
		j := open(t, dir, Options{Faults: &Faults{Append: func() error {
			calls++
			if calls == 1 {
				return boom
			}
			return nil
		}}})
		if err := j.Append(Accepted("job-1", "", "h", nil)); !errors.Is(err, boom) {
			t.Fatalf("err %v, want wrapped injected failure", err)
		}
		appendAll(t, j, Accepted("job-2", "", "h", nil))
		if sts := j.States(); len(sts) != 1 || sts[0].ID != "job-2" {
			t.Fatalf("states %+v, want only job-2", sts)
		}
	})
	t.Run("torn write wedges and truncates at reopen", func(t *testing.T) {
		dir := t.TempDir()
		torn := 0
		j := open(t, dir, Options{Faults: &Faults{Torn: func(frame []byte) []byte {
			torn++
			if torn == 2 {
				return frame[:len(frame)/2]
			}
			return nil
		}}})
		appendAll(t, j,
			Accepted("job-1", "", "h", nil),
			Running("job-1"),         // torn
			Done("job-1", "rh", nil), // wedged no-op
		)
		j.Close()
		j2 := open(t, dir, Options{})
		sts := j2.States()
		if len(sts) != 1 || sts[0].Status != TypeAccepted {
			t.Fatalf("states %+v, want job-1 accepted only (running torn, done wedged)", sts)
		}
		if st := j2.Stats(); st.TruncatedBytes == 0 {
			t.Fatalf("torn write not truncated: %+v", st)
		}
	})
	t.Run("slow fsync delays but does not fail", func(t *testing.T) {
		dir := t.TempDir()
		var slept int
		j := open(t, dir, Options{Faults: &Faults{Fsync: func() {
			slept++
			time.Sleep(time.Millisecond)
		}}})
		appendAll(t, j, Accepted("job-1", "", "h", nil))
		if slept == 0 {
			t.Fatal("fsync hook never ran")
		}
	})
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open accepted empty Dir")
	}
	// A nested, not-yet-existing dir is created.
	dir := filepath.Join(t.TempDir(), "a", "b")
	j := open(t, dir, Options{})
	appendAll(t, j, Accepted("job-1", "", "h", nil))
}
