// Package openql is a Go rendition of the paper's OpenQL front end: a
// high-level circuit-description API whose compiler emits the combined
// auxiliary-classical + QuMIS assembly that the QuMA prototype executes
// ("We have designed a quantum programming language OpenQL based on C++
// with a compiler that can translate the OpenQL description into the
// auxiliary classical instructions and QuMIS instructions", Section 7.2).
//
// A program holds kernels (straight-line circuit fragments). Each kernel
// compiles to an initialization wait followed by its gate pulses; the
// program wraps all kernels in an averaging loop driven by auxiliary
// classical instructions, exactly like Algorithm 3.
package openql

import (
	"fmt"
	"strings"

	"quma/internal/asm"
	"quma/internal/isa"
)

// gateInfo describes how one high-level gate lowers to QuMIS.
type gateInfo struct {
	// uop is the Pulse micro-operation for primitive gates; empty for
	// microcoded gates (emitted as Apply) and two-qubit gates.
	uop string
	// apply marks gates lowered via the microcode unit (Apply).
	apply bool
	// waitCycles is the timeline the gate occupies.
	waitCycles int
	arity      int
}

var gateTable = map[string]gateInfo{
	"i":    {uop: "I", waitCycles: 4, arity: 1},
	"x180": {uop: "X180", waitCycles: 4, arity: 1},
	"x90":  {uop: "X90", waitCycles: 4, arity: 1},
	"xm90": {uop: "Xm90", waitCycles: 4, arity: 1},
	"y180": {uop: "Y180", waitCycles: 4, arity: 1},
	"y90":  {uop: "Y90", waitCycles: 4, arity: 1},
	"ym90": {uop: "Ym90", waitCycles: 4, arity: 1},
	"z":    {apply: true, arity: 1},
	"h":    {apply: true, arity: 1},
	"cz":   {uop: "CZ", waitCycles: 8, arity: 2},
	"cnot": {apply: true, arity: 2},
}

type opKind int

const (
	opGate opKind = iota
	opWait
	opMeasure
)

type op struct {
	kind   opKind
	gate   string
	qubits []int
	cycles int
	rd     isa.Reg
}

// Kernel is a straight-line circuit fragment.
type Kernel struct {
	Name string
	ops  []op
	errs []error
}

// NewKernel returns an empty kernel.
func NewKernel(name string) *Kernel { return &Kernel{Name: name} }

// Gate appends a named gate on the given qubits. Names are
// case-insensitive OpenQL style: i, x180, x90, xm90, y180, y90, ym90, z,
// h, cz, cnot (control, target).
func (k *Kernel) Gate(name string, qubits ...int) *Kernel {
	info, ok := gateTable[strings.ToLower(name)]
	if !ok {
		k.errs = append(k.errs, fmt.Errorf("openql: unknown gate %q", name))
		return k
	}
	if len(qubits) != info.arity {
		k.errs = append(k.errs, fmt.Errorf("openql: gate %q wants %d qubits, got %d", name, info.arity, len(qubits)))
		return k
	}
	k.ops = append(k.ops, op{kind: opGate, gate: strings.ToLower(name), qubits: qubits})
	return k
}

// X, Y, X90, Y90 are convenience spellings for the common rotations.
func (k *Kernel) X(q int) *Kernel   { return k.Gate("x180", q) }
func (k *Kernel) Y(q int) *Kernel   { return k.Gate("y180", q) }
func (k *Kernel) X90(q int) *Kernel { return k.Gate("x90", q) }
func (k *Kernel) Y90(q int) *Kernel { return k.Gate("y90", q) }
func (k *Kernel) H(q int) *Kernel   { return k.Gate("h", q) }
func (k *Kernel) Z(q int) *Kernel   { return k.Gate("z", q) }

// CZ appends a controlled-phase gate.
func (k *Kernel) CZ(qa, qb int) *Kernel { return k.Gate("cz", qa, qb) }

// CNOT appends a controlled-NOT with the given control and target.
func (k *Kernel) CNOT(control, target int) *Kernel { return k.Gate("cnot", control, target) }

// Wait appends an explicit idle of the given cycles.
func (k *Kernel) Wait(cycles int) *Kernel {
	if cycles <= 0 {
		k.errs = append(k.errs, fmt.Errorf("openql: wait needs positive cycles, got %d", cycles))
		return k
	}
	k.ops = append(k.ops, op{kind: opWait, cycles: cycles})
	return k
}

// Measure appends a measurement of qubit q with the result written to
// register rd.
func (k *Kernel) Measure(q int, rd isa.Reg) *Kernel {
	k.ops = append(k.ops, op{kind: opMeasure, qubits: []int{q}, rd: rd})
	return k
}

// Program is a compilable collection of kernels.
type Program struct {
	Name      string
	NumQubits int
	// Rounds wraps the kernels in an averaging loop when > 1.
	Rounds int
	// InitCycles is the per-kernel initialization wait (0 disables).
	InitCycles int
	// MeasureCycles is the MPG duration.
	MeasureCycles int

	kernels []*Kernel
}

// NewProgram returns a program with the paper's defaults: 200 µs init,
// 300-cycle measurement, single round.
func NewProgram(name string, numQubits int) *Program {
	return &Program{
		Name:          name,
		NumQubits:     numQubits,
		Rounds:        1,
		InitCycles:    40000,
		MeasureCycles: 300,
	}
}

// Add appends a kernel.
func (p *Program) Add(k *Kernel) *Program {
	p.kernels = append(p.kernels, k)
	return p
}

// CompileText emits the assembly source.
func (p *Program) CompileText() (string, error) {
	if p.NumQubits < 1 || p.NumQubits > isa.MaxQubits {
		return "", fmt.Errorf("openql: program needs 1..%d qubits, got %d", isa.MaxQubits, p.NumQubits)
	}
	if len(p.kernels) == 0 {
		return "", fmt.Errorf("openql: program %q has no kernels", p.Name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# compiled from OpenQL program %q\n", p.Name)
	loop := p.Rounds > 1
	if p.InitCycles > 0 {
		fmt.Fprintf(&b, "mov r15, %d\n", p.InitCycles)
	}
	if loop {
		fmt.Fprintf(&b, "mov r1, 0\nmov r2, %d\nOuter_Loop:\n", p.Rounds)
	}
	for _, k := range p.kernels {
		if len(k.errs) > 0 {
			return "", fmt.Errorf("openql: kernel %q: %w", k.Name, k.errs[0])
		}
		fmt.Fprintf(&b, "# kernel %s\n", k.Name)
		if p.InitCycles > 0 {
			fmt.Fprintf(&b, "QNopReg r15\n")
		}
		for _, o := range k.ops {
			if err := p.emit(&b, o); err != nil {
				return "", fmt.Errorf("openql: kernel %q: %w", k.Name, err)
			}
		}
	}
	if loop {
		fmt.Fprintf(&b, "addi r1, r1, 1\nbne r1, r2, Outer_Loop\n")
	}
	fmt.Fprintf(&b, "halt\n")
	return b.String(), nil
}

// Compile emits the assembled program.
func (p *Program) Compile() (*isa.Program, error) {
	src, err := p.CompileText()
	if err != nil {
		return nil, err
	}
	return asm.Assemble(src)
}

func (p *Program) emit(b *strings.Builder, o op) error {
	for _, q := range o.qubits {
		if q < 0 || q >= p.NumQubits {
			return fmt.Errorf("qubit q%d outside program size %d", q, p.NumQubits)
		}
	}
	switch o.kind {
	case opWait:
		fmt.Fprintf(b, "Wait %d\n", o.cycles)
	case opMeasure:
		fmt.Fprintf(b, "MPG {q%d}, %d\n", o.qubits[0], p.MeasureCycles)
		fmt.Fprintf(b, "MD {q%d}, r%d\n", o.qubits[0], o.rd)
	case opGate:
		info := gateTable[o.gate]
		switch {
		case info.apply && info.arity == 2:
			// cnot(control, target) → Apply2 CNOT, q<target>, q<control>
			// (the paper's CNOT qt, qc operand order).
			fmt.Fprintf(b, "Apply2 CNOT, q%d, q%d\n", o.qubits[1], o.qubits[0])
		case info.apply:
			fmt.Fprintf(b, "Apply %s, q%d\n", strings.ToUpper(o.gate[:1])+o.gate[1:], o.qubits[0])
		case info.arity == 2:
			fmt.Fprintf(b, "Pulse {q%d, q%d}, %s\n", o.qubits[0], o.qubits[1], info.uop)
			fmt.Fprintf(b, "Wait %d\n", info.waitCycles)
		default:
			fmt.Fprintf(b, "Pulse {q%d}, %s\n", o.qubits[0], info.uop)
			fmt.Fprintf(b, "Wait %d\n", info.waitCycles)
		}
	}
	return nil
}
