package openql

import (
	"math"
	"strings"
	"testing"

	"quma/internal/core"
	"quma/internal/qphys"
)

func TestCompileSimpleKernel(t *testing.T) {
	p := NewProgram("demo", 1)
	k := NewKernel("k0").X(0).Measure(0, 7)
	p.Add(k)
	src, err := p.CompileText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mov r15, 40000",
		"QNopReg r15",
		"Pulse {q0}, X180",
		"Wait 4",
		"MPG {q0}, 300",
		"MD {q0}, r7",
		"halt",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("compiled source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "Outer_Loop") {
		t.Error("single-round program must not emit a loop")
	}
}

func TestCompileLoop(t *testing.T) {
	p := NewProgram("loop", 1)
	p.Rounds = 50
	p.Add(NewKernel("k").X90(0).Measure(0, 7))
	src, err := p.CompileText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mov r2, 50", "Outer_Loop:", "bne r1, r2, Outer_Loop"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
	if _, err := p.Compile(); err != nil {
		t.Fatalf("assembled program invalid: %v", err)
	}
}

func TestCompileTwoQubitGates(t *testing.T) {
	p := NewProgram("bell", 2)
	p.InitCycles = 0
	p.Add(NewKernel("k").Wait(8).H(0).CNOT(0, 1).CZ(0, 1))
	src, err := p.CompileText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Apply H, q0",
		"Apply2 CNOT, q1, q0", // target first, control second
		"Pulse {q0, q1}, CZ",
		"Wait 8",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := NewProgram("p", 0).Add(NewKernel("k").X(0)).CompileText(); err == nil {
		t.Error("zero qubits must fail")
	}
	if _, err := NewProgram("p", 1).CompileText(); err == nil {
		t.Error("no kernels must fail")
	}
	if _, err := NewProgram("p", 1).Add(NewKernel("k").Gate("frob", 0)).CompileText(); err == nil {
		t.Error("unknown gate must fail")
	}
	if _, err := NewProgram("p", 1).Add(NewKernel("k").Gate("cz", 0)).CompileText(); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := NewProgram("p", 1).Add(NewKernel("k").X(3)).CompileText(); err == nil {
		t.Error("qubit out of range must fail")
	}
	if _, err := NewProgram("p", 1).Add(NewKernel("k").Wait(0)).CompileText(); err == nil {
		t.Error("zero wait must fail")
	}
}

func TestCompiledBellStateRunsOnMachine(t *testing.T) {
	// End-to-end: OpenQL → assembly → machine → entangled state.
	p := NewProgram("bell", 2)
	p.InitCycles = 0
	p.Add(NewKernel("k").Wait(8).H(0).CNOT(0, 1))
	prog, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.NumQubits = 2
	cfg.Qubit = []qphys.QubitParams{{}, {}}
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if pr := m.State.ProbExcited(1); math.Abs(pr-0.5) > 1e-3 {
		t.Errorf("P(q1) = %v, want 0.5", pr)
	}
	if pur := m.State.Purity(); math.Abs(pur-1) > 1e-3 {
		t.Errorf("purity = %v", pur)
	}
}

func TestCompiledAllXYFragmentMatchesHandwritten(t *testing.T) {
	// The OpenQL description of one AllXY combination compiles to the
	// same instruction sequence as the paper's Algorithm 3 fragment.
	p := NewProgram("allxy-fragment", 1)
	p.Rounds = 25600
	k := NewKernel("II").Gate("i", 0).Gate("i", 0).Measure(0, 7)
	p.Add(k)
	src, err := p.CompileText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mov r2, 25600",
		"Pulse {q0}, I",
		"MPG {q0}, 300",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFluentChaining(t *testing.T) {
	k := NewKernel("chain").X(0).Y(0).X90(0).Y90(0).Z(0).H(0)
	if len(k.ops) != 6 {
		t.Errorf("chained ops = %d, want 6", len(k.ops))
	}
}
