package expt

import (
	"math"
	"strings"
	"testing"

	"quma/internal/core"
)

func TestRabiCalibratedPiScale(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultRabiParams()
	p.Rounds = 120
	res, err := RunRabi(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// With a correct calibration, the π point sits at scale 1.
	if math.Abs(res.PiScale-1) > 0.05 {
		t.Errorf("π scale = %v, want ≈ 1\n%s", res.PiScale, res.Table())
	}
	// The sweep passes through ~0 at scale 0 and ~1 at scale 1.
	if res.Excited[0] > 0.1 {
		t.Errorf("P at zero amplitude = %v", res.Excited[0])
	}
	var at1 float64
	for i, s := range p.Scales {
		if math.Abs(s-1) < 0.03 {
			at1 = res.Excited[i]
		}
	}
	if at1 < 0.9 {
		t.Errorf("P at nominal π = %v, want ≈ 1", at1)
	}
}

func TestRabiDetectsMiscalibration(t *testing.T) {
	// A -10% amplitude error moves the apparent π point to ≈ 1/0.9.
	cfg := core.DefaultConfig()
	cfg.AmplitudeError = -0.10
	p := DefaultRabiParams()
	p.Rounds = 120
	res, err := RunRabi(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / 0.9
	if math.Abs(res.PiScale-want) > 0.07 {
		t.Errorf("π scale under ε=-0.1: %v, want ≈ %v", res.PiScale, want)
	}
}

func TestRabiSweepWithinDACRange(t *testing.T) {
	for _, s := range DefaultRabiParams().Scales {
		if !pulseSanity(s) {
			t.Errorf("scale %v exceeds DAC range", s)
		}
	}
}

func TestRabiRejectsBadParams(t *testing.T) {
	if _, err := RunRabi(core.DefaultConfig(), RabiParams{Scales: []float64{1}, Rounds: 10}); err == nil {
		t.Error("too few scales must fail")
	}
}

func TestRabiTableRenders(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultRabiParams()
	p.Rounds = 40
	res, err := RunRabi(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table(), "π amplitude scale") {
		t.Error("table missing calibration line")
	}
}
