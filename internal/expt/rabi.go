package expt

import (
	"context"
	"fmt"
	"strings"

	"quma/internal/awg"
	"quma/internal/core"
	"quma/internal/fit"
	"quma/internal/pulse"
	"quma/internal/replay"
)

// Rabi-oscillation calibration: the experiment that produces the
// calibrated pulse amplitudes living in the CTPG lookup table ("the
// pulses are calibrated and placed in the memory of these generators",
// paper §4.2; "prior to the experiment, the qubit pulses are calibrated
// and uploaded into control box AWG 2", §8). The drive amplitude is
// swept, each point uploading a scaled pulse into a spare codeword and
// measuring the excited-state population; the resulting cosine fixes the
// π-pulse amplitude. This exercises the re-upload path of the CTPG: the
// lookup table is configuration state, changed without touching the
// program.
//
// RabiCodeword is the spare LUT entry used for the swept pulse.
const RabiCodeword awg.Codeword = 8

// RabiParams configures the amplitude sweep.
type RabiParams struct {
	Qubit int
	// Scales are the amplitude multipliers applied to the nominal
	// π-pulse amplitude.
	Scales []float64
	// Rounds is the averaging count per scale point.
	Rounds int
	// InitCycles and MeasureCycles as in the other experiments.
	InitCycles    int
	MeasureCycles int
	// Workers bounds the sweep parallelism across scale points (0 = one
	// worker per CPU). Results are identical for any value; see sweep.go.
	Workers int
	// ShotWorkers bounds the shot-shard parallelism inside each scale
	// point when Rounds exceeds ShotShardSize (0 = one worker per CPU).
	// Results are identical for any value; see shotshard.go.
	ShotWorkers int
	// BatchLanes, when > 1, runs groups of up to that many equal-size
	// shot shards in lockstep on the batched SoA executor (one lane per
	// shard — same seeds, same streams). Results are bit-identical for
	// any value; see shotshard.go.
	BatchLanes int
	// Replay selects the shot-replay engine mode: replay.ModeOff,
	// ModeInterp, or ModeCompiled (default auto = compiled). Results are
	// bit-identical for any value — see internal/replay; interp vs
	// compiled is the A/B knob for the per-schedule compiler.
	Replay replay.Mode
}

// DefaultRabiParams sweeps 0..1.1× the nominal π amplitude in 23 steps
// (the nominal π pulse sits at ~0.9 of DAC full scale, so 1.1× is the
// largest headroom-safe excursion).
func DefaultRabiParams() RabiParams {
	p := RabiParams{Qubit: 0, Rounds: 150, InitCycles: 40000, MeasureCycles: 300}
	for i := 0; i <= 22; i++ {
		p.Scales = append(p.Scales, float64(i)*1.1/22)
	}
	return p
}

// RabiResult holds the sweep and its calibration outcome.
type RabiResult struct {
	Params RabiParams
	// Excited is the measured P(|1⟩) per scale point.
	Excited []float64
	// Fit is the fitted oscillation (x = amplitude scale).
	Fit fit.DampedCosine
	// PiScale is the extracted amplitude scale of a π rotation: the
	// half-period of the oscillation. 1.0 means the nominal calibration
	// was already correct.
	PiScale float64
}

// RunRabi sweeps the drive amplitude on the parallel sweep engine: each
// scale point runs on its own machine seeded with DeriveSeed(cfg.Seed,
// point), with the scaled pulse uploaded into the machine's spare LUT
// entry before the shots. The machine's AmplitudeError (if any) shifts
// the apparent π point, which is exactly what the calibration detects:
// the fitted PiScale times the nominal amplitude is the corrected
// calibration. The fixed-phase fit (fit.FitRabi) keeps the extraction
// robust to the per-point shot noise that independent seeding introduces.
func RunRabi(cfg core.Config, p RabiParams) (*RabiResult, error) {
	return NewEnv().RunRabi(context.Background(), cfg, p)
}

// RunRabi runs the Rabi calibration sweep on the environment's shared
// pools. The swept pulse is re-uploaded unconditionally on every point
// (the pooled-machine contract for custom LUT content), so sharing
// machines with other experiments is safe in both directions.
func (e *Env) RunRabi(ctx context.Context, cfg core.Config, p RabiParams) (*RabiResult, error) {
	if len(p.Scales) < 8 || p.Rounds <= 0 {
		return nil, fmt.Errorf("expt: Rabi sweep needs ≥8 scales and ≥1 round")
	}
	if cfg.NumQubits <= p.Qubit {
		cfg.NumQubits = p.Qubit + 1
	}
	// The machine applies its own AmplitudeError to the standard
	// library; the sweep reproduces that by scaling the nominal π pulse
	// and re-synthesizing with the same error knob.
	nominal := awg.StandardPulse{Codeword: RabiCodeword, Name: "RABI", Phi: 0, Theta: 3.141592653589793}

	// Every scale point shares one per-shot program (the swept quantity
	// lives in the LUT, not the program text), so the cache assembles it
	// exactly once for the whole sweep.
	var program strings.Builder
	fmt.Fprintf(&program, "mov r15, %d\nQNopReg r15\nPulse {q%d}, RABI\nWait 4\nMPG {q%d}, %d\nMD {q%d}, r7\nhalt\n",
		p.InitCycles, p.Qubit, p.Qubit, p.MeasureCycles, p.Qubit)
	src := program.String()

	res := &RabiResult{Params: p, Excited: make([]float64, len(p.Scales))}
	pool := e.poolFor(cfg)
	err := runPool(ctx, len(p.Scales), p.Workers, func(i int) error {
		prog, err := e.progs.get(src)
		if err != nil {
			return err
		}
		var ones int
		_, err = runShotJobSharded(ctx, pool, DeriveSeed(cfg.Seed, i), prog, p.Rounds, ShotShardPlan(p.Rounds), p.ShotWorkers, p.BatchLanes, p.Replay,
			func(m *core.Machine) error {
				m.UOp.DefinePrimitive("RABI", RabiCodeword)
				scaled := nominal
				scaled.Theta = nominal.Theta * p.Scales[i]
				w := awg.SynthesizeStandard(scaled, m.Cfg.SSBHz, cfg.AmplitudeError)
				if err := m.UploadPulse(p.Qubit, RabiCodeword, "RABI", w); err != nil {
					return fmt.Errorf("expt: uploading scale %.3f: %w", p.Scales[i], err)
				}
				return nil
			},
			func(_ int, md []replay.MD) {
				if len(md) > 0 && md[0].Result == 1 {
					ones++
				}
			}, nil)
		if err != nil {
			return err
		}
		res.Excited[i] = float64(ones) / float64(p.Rounds)
		return nil
	})
	if err != nil {
		return nil, err
	}
	f, err := fit.FitRabi(p.Scales, res.Excited)
	if err != nil {
		return nil, fmt.Errorf("expt: Rabi fit: %w", err)
	}
	res.Fit = f
	if f.Freq <= 0 {
		return nil, fmt.Errorf("expt: Rabi fit found non-positive frequency %v", f.Freq)
	}
	res.PiScale = 1 / (2 * f.Freq)
	return res, nil
}

// Table renders the sweep.
func (r *RabiResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %s\n", "scale", "P(|1>)", "fit")
	for i, s := range r.Params.Scales {
		fmt.Fprintf(&b, "%-8.3f %-8.4f %.4f\n", s, r.Excited[i], r.Fit.Eval(s))
	}
	fmt.Fprintf(&b, "π amplitude scale: %.4f of nominal\n", r.PiScale)
	return b.String()
}

// pulseSanity is referenced by tests to assert the nominal pulse stays
// within DAC range across the sweep.
func pulseSanity(scale float64) bool {
	theta := 3.141592653589793 * scale
	amp := pulse.CalibratedGaussianAmp(awg.StandardDurationSamples, awg.StandardSigma, theta)
	return amp <= 1
}
