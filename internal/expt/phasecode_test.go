package expt

import (
	"strings"
	"testing"

	"quma/internal/core"
	"quma/internal/qphys"
)

func TestPhaseCodeProtectsAgainstDephasing(t *testing.T) {
	cfg := core.DefaultConfig()
	for i := 0; i < 5; i++ {
		cfg.Qubit = append(cfg.Qubit, DephasingQubit(20e-6))
	}
	p := DefaultRepCodeParams()
	p.Rounds = 200
	p.WaitCycles = 800 // 4 µs: p_phase ≈ 0.16
	res, err := RunPhaseCode(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// Bare superposition error near the analytic dephasing probability.
	if res.Bare < res.PhysicalP*0.5 || res.Bare > res.PhysicalP*1.6+0.05 {
		t.Errorf("bare error %v far from analytic %v", res.Bare, res.PhysicalP)
	}
	// The code must beat the bare qubit.
	if res.Protected >= res.Bare {
		t.Errorf("phase code did not help: protected %v vs bare %v\n%s",
			res.Protected, res.Bare, res.Table())
	}
}

func TestPhaseCodeUselessAgainstPureT1(t *testing.T) {
	// Ablation: against energy relaxation (which is not a Z error) the
	// phase code gives no advantage comparable to the dephasing case —
	// codes only correct the errors they are designed for. With strong
	// T1 and weak dephasing, the protected error stays substantial.
	cfg := core.DefaultConfig()
	for i := 0; i < 5; i++ {
		cfg.Qubit = append(cfg.Qubit, qphys.QubitParams{T1: 10e-6, T2: 20e-6}) // T2 = 2·T1: no pure dephasing
	}
	p := DefaultRepCodeParams()
	p.Rounds = 150
	p.WaitCycles = 1600 // 8 µs ≈ 0.8·T1
	res, err := RunPhaseCode(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protected < 0.05 {
		t.Errorf("phase code against pure T1 reported error %v; expected it NOT to protect", res.Protected)
	}
}

func TestPhaseCodeRejectsBadParams(t *testing.T) {
	if _, err := RunPhaseCode(core.DefaultConfig(), RepCodeParams{}); err == nil {
		t.Error("Rounds=0 must fail")
	}
}

func TestPhaseCodeProgramShape(t *testing.T) {
	src := phaseCodeShotProgram(DefaultRepCodeParams(), true)
	if got := strings.Count(src, "Apply H"); got != 6 {
		t.Errorf("program has %d Hadamards, want 6 (rotate in + out)", got)
	}
	if !strings.Contains(src, "Apply2 CNOT, q3, q0") {
		t.Error("syndrome extraction missing")
	}
	// The per-shot program carries no averaging loop: the shot loop lives
	// in the replay engine.
	if strings.Contains(src, "Round_Loop") {
		t.Error("per-shot program must not contain the round loop")
	}
}
