package expt

// ctxlint_test enforces the Env contract mechanically: every exported
// method on *Env (or Env) must take a context.Context as its first
// parameter, so no future experiment entry point can silently opt out
// of cancellation. The check parses the package source with go/parser —
// a structural lint, not a style suggestion — and runs with the normal
// test suite, so CI fails the moment an uncancellable method appears.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// envReceiver reports whether a method's receiver is Env or *Env.
func envReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Env"
}

// firstParamIsContext reports whether the first parameter's type is
// context.Context.
func firstParamIsContext(fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil || len(fn.Type.Params.List) == 0 {
		return false
	}
	sel, ok := fn.Type.Params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

func TestEveryExportedEnvMethodTakesContextFirst(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !fn.Name.IsExported() || !envReceiver(fn) {
				continue
			}
			checked++
			// Non-Run accessors (SetFaults today) are configuration, not
			// experiment execution; the contract binds the Run* entry
			// points, and anything that starts a sweep is one.
			if !strings.HasPrefix(fn.Name.Name, "Run") {
				continue
			}
			if !firstParamIsContext(fn) {
				t.Errorf("%s: (*Env).%s must take a context.Context as its first parameter (cancellation contract; see env.go)",
					fset.Position(fn.Pos()), fn.Name.Name)
			}
		}
	}
	if checked == 0 {
		t.Fatal("found no exported Env methods — did the receiver type move?")
	}
}
