package expt

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"quma/internal/core"
	"quma/internal/fit"
	"quma/internal/replay"
)

// RBParams configures single-qubit randomized benchmarking.
type RBParams struct {
	Qubit int
	// Lengths are the Clifford sequence lengths m to sample.
	Lengths []int
	// Trials is the number of random sequences per length.
	Trials int
	// Rounds is the averaging count per sequence.
	Rounds int
	// InitCycles is the per-shot initialization wait.
	InitCycles int
	// MeasureCycles is the MPG duration.
	MeasureCycles int
	// Seed drives sequence sampling (independent of the machine's own
	// measurement PRNG).
	Seed int64
	// Workers bounds the sweep parallelism across (length, trial) pairs
	// (0 = one worker per CPU). Results are identical for any value; see
	// sweep.go.
	Workers int
	// ShotWorkers bounds the shot-shard parallelism inside each sequence
	// when Rounds exceeds ShotShardSize (0 = one worker per CPU). Results
	// are identical for any value; see shotshard.go.
	ShotWorkers int
	// BatchLanes, when > 1, runs groups of up to that many equal-size
	// shot shards in lockstep on the batched SoA executor (one lane per
	// shard — same seeds, same streams). Results are bit-identical for
	// any value; see shotshard.go.
	BatchLanes int
	// Replay selects the shot-replay engine mode: replay.ModeOff,
	// ModeInterp, or ModeCompiled (default auto = compiled). Results are
	// bit-identical for any value — see internal/replay; interp vs
	// compiled is the A/B knob for the per-schedule compiler.
	Replay replay.Mode
}

// DefaultRBParams returns a short benchmark suitable for tests.
func DefaultRBParams() RBParams {
	return RBParams{
		Qubit:         0,
		Lengths:       []int{1, 4, 8, 16, 32, 64, 128},
		Trials:        4,
		Rounds:        60,
		InitCycles:    40000,
		MeasureCycles: 300,
		Seed:          7,
	}
}

// RBResult holds the benchmark outcome.
type RBResult struct {
	Params RBParams
	// Survival[i] is the mean ground-state return probability at
	// Lengths[i], averaged over trials.
	Survival []float64
	// PerTrial[i][t] is the survival of each random sequence.
	PerTrial [][]float64
	// Fit is the F(m) = A·p^m + B decay.
	Fit fit.RBDecay
	// AvgPulsesPerClifford reports the decomposition cost.
	AvgPulsesPerClifford float64
}

// rbShotProgram emits the per-shot program for one Clifford sequence
// (with recovery): init, sequence, measure. The shot loop and the
// ones-count both live in the engine now — the program never consumes the
// measurement result, which is what makes RB replay-safe.
func rbShotProgram(p RBParams, pulses []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mov r15, %d\n", p.InitCycles)
	fmt.Fprintf(&b, "QNopReg r15\n")
	for _, g := range pulses {
		fmt.Fprintf(&b, "Pulse {q%d}, %s\nWait 4\n", p.Qubit, g)
	}
	fmt.Fprintf(&b, "MPG {q%d}, %d\n", p.Qubit, p.MeasureCycles)
	fmt.Fprintf(&b, "MD {q%d}, r7\n", p.Qubit)
	fmt.Fprintf(&b, "halt\n")
	return b.String()
}

// RunRB executes randomized benchmarking on the parallel sweep engine —
// every (length, trial) pair runs its own random sequence on its own
// pooled machine, with the sequence drawn from DeriveSeed(p.Seed, pair),
// the machine seeded with DeriveSeed(cfg.Seed, pair), and the Rounds
// shot loop in the replay engine (RB sequences are feedback-free, so
// shots past the detection prefix replay the recorded schedule) — and
// fits the exponential decay of the ground-state survival probability.
func RunRB(cfg core.Config, p RBParams) (*RBResult, error) {
	return NewEnv().RunRB(context.Background(), cfg, p)
}

// RunRB runs randomized benchmarking on the environment's shared pools.
func (e *Env) RunRB(ctx context.Context, cfg core.Config, p RBParams) (*RBResult, error) {
	if len(p.Lengths) < 3 || p.Trials < 1 || p.Rounds < 1 {
		return nil, fmt.Errorf("expt: RB needs ≥3 lengths and ≥1 trial/round")
	}
	if cfg.NumQubits <= p.Qubit {
		cfg.NumQubits = p.Qubit + 1
	}
	// Build the shared Clifford table before the fan-out so workers only
	// read it.
	res := &RBResult{Params: p, AvgPulsesPerClifford: AvgPulsesPerClifford()}
	njobs := len(p.Lengths) * p.Trials
	surv := make([]float64, njobs)
	pool := e.poolFor(cfg)
	err := runPool(ctx, njobs, p.Workers, func(i int) error {
		length := p.Lengths[i/p.Trials]
		seqRng := rand.New(rand.NewSource(DeriveSeed(p.Seed, i)))
		pulses, _ := RandomCliffordSequence(length, seqRng)
		prog, err := e.progs.get(rbShotProgram(p, pulses))
		if err != nil {
			return err
		}
		var ones int
		_, err = runShotJobSharded(ctx, pool, DeriveSeed(cfg.Seed, i), prog, p.Rounds, ShotShardPlan(p.Rounds), p.ShotWorkers, p.BatchLanes, p.Replay, nil,
			func(_ int, md []replay.MD) {
				if len(md) > 0 && md[0].Result == 1 {
					ones++
				}
			}, nil)
		if err != nil {
			return fmt.Errorf("expt: RB m=%d trial %d: %w", length, i%p.Trials, err)
		}
		surv[i] = 1 - float64(ones)/float64(p.Rounds)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ms, fs []float64
	for li, length := range p.Lengths {
		trials := surv[li*p.Trials : (li+1)*p.Trials]
		sum := 0.0
		for _, s := range trials {
			sum += s
		}
		res.PerTrial = append(res.PerTrial, trials)
		mean := sum / float64(p.Trials)
		res.Survival = append(res.Survival, mean)
		ms = append(ms, float64(length))
		fs = append(fs, mean)
	}
	f, err := fit.FitRBDecay(ms, fs)
	if err != nil {
		return nil, fmt.Errorf("expt: RB fit: %w", err)
	}
	res.Fit = f
	return res, nil
}

// Table renders length/survival rows plus the fitted error per Clifford.
func (r *RBResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %s\n", "m", "survival", "fit F(m)")
	for i, m := range r.Params.Lengths {
		fmt.Fprintf(&b, "%-6d %-10.4f %.4f\n", m, r.Survival[i], r.Fit.Eval(float64(m)))
	}
	fmt.Fprintf(&b, "p = %.5f, error per Clifford = %.5f\n", r.Fit.P, r.Fit.ErrorPerClifford())
	return b.String()
}
