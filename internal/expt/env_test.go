package expt

import (
	"context"
	"sync"
	"testing"

	"quma/internal/core"
)

// The Env contract: sharing one environment across many calls — the
// batch service's whole premise — never changes a single bit of any
// result. A request's outcome depends only on (config, params), not on
// which Env ran it, what ran on that Env before, or what runs on it
// concurrently.

const envTestProgram = `
mov r15, 40000
QNopReg r15
Pulse {q0}, X90
Wait 4
MPG {q0}, 300
MD {q0}, r7
halt
`

func TestSharedEnvMatchesFreshEnv(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Backend = core.BackendTrajectory
	cfg.Seed = 11

	sp := DefaultSweepParams()
	sp.Rounds = 40
	pp := ProgramParams{Source: envTestProgram, Shots: 60}

	// Reference results from fresh per-call environments.
	wantT1, err := RunT1(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	wantProg, err := RunProgram(cfg, pp)
	if err != nil {
		t.Fatal(err)
	}

	// One shared Env, calls interleaved in a different order, twice over
	// — pooled machines now carry state from unrelated prior requests.
	env := NewEnv()
	for round := 0; round < 2; round++ {
		gotProg, err := env.RunProgram(context.Background(), cfg, pp)
		if err != nil {
			t.Fatal(err)
		}
		if gotProg.StreamHash != wantProg.StreamHash {
			t.Fatalf("round %d: shared-env program stream %x, fresh %x", round, gotProg.StreamHash, wantProg.StreamHash)
		}
		gotT1, err := env.RunT1(context.Background(), cfg, sp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantT1.Excited {
			if gotT1.Excited[i] != wantT1.Excited[i] {
				t.Fatalf("round %d point %d: shared-env %v, fresh %v", round, i, gotT1.Excited[i], wantT1.Excited[i])
			}
		}
		// A Rabi call interleaves custom LUT uploads into the same pool;
		// later T1/program calls (next round) must be unaffected.
		rp := DefaultRabiParams()
		rp.Rounds = 30
		if _, err := env.RunRabi(context.Background(), cfg, rp); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSharedEnvConcurrentRequestsAreBitIdentical(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Backend = core.BackendTrajectory
	cfg.Seed = 23
	pp := ProgramParams{Source: envTestProgram, Shots: 50}
	want, err := RunProgram(cfg, pp)
	if err != nil {
		t.Fatal(err)
	}

	env := NewEnv()
	const n = 8
	got := make([]*ProgramResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = env.RunProgram(context.Background(), cfg, pp)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i].StreamHash != want.StreamHash {
			t.Fatalf("concurrent request %d: stream %x, fresh-env %x", i, got[i].StreamHash, want.StreamHash)
		}
		for j := range want.Ones {
			if got[i].Ones[j] != want.Ones[j] {
				t.Fatalf("concurrent request %d: ones[%d] = %d, want %d", i, j, got[i].Ones[j], want.Ones[j])
			}
		}
	}
}
