package expt

import (
	"context"
	"fmt"
	"math"
	"strings"

	"quma/internal/core"
	"quma/internal/qphys"
	"quma/internal/replay"
)

// Repetition-code experiment: the distance-d bit-flip code whose
// hardware demonstrations ([22, 23] in the paper) motivate a control
// microarchitecture with fast measurement discrimination and feedback.
// One round encodes |1⟩_L = |1…1⟩ across data qubits q0..q(d−1), waits a
// memory time τ (T1 decay supplies physical bit flips), extracts the d−1
// adjacent-pair parity syndromes into ancillas through microcoded CNOTs,
// branches on the measured syndromes to apply the correction pulse, and
// finally reads out the data qubits with a classical majority vote —
// every step running through the full QuMA pipeline. d = 3 is the
// paper-era demonstration; d ≥ 5 (9+ total qubits) is only reachable on
// the trajectory backend, past the density-matrix memory wall.

// RepCodeParams configures the memory experiment.
type RepCodeParams struct {
	// DataQubits is the code distance d: the number of data qubits. It
	// must be odd (majority vote) with 3 ≤ d ≤ 7; zero selects 3. The
	// experiment uses 2d−1 qubits in total (d data + d−1 ancillas), so
	// d ≥ 5 requires the trajectory backend.
	DataQubits int
	// Rounds is the number of protected/unprotected shots.
	Rounds int
	// WaitCycles is the memory time τ in cycles.
	WaitCycles int
	// InitCycles is the per-shot initialization wait.
	InitCycles int
	// MeasureCycles is the MPG duration.
	MeasureCycles int
	// Workers bounds the sweep parallelism across program variants (0 =
	// one worker per CPU). Results are identical for any value; see
	// sweep.go.
	Workers int
	// ShotWorkers bounds the shot-shard parallelism across each variant's
	// fixed round chunks (0 = one worker per CPU). The chunk partition and
	// per-chunk seeds are unchanged from earlier releases, so results are
	// bit-identical for any value — and to pre-sharding builds — for every
	// Rounds; see shotshard.go.
	ShotWorkers int
	// BatchLanes, when > 1, runs groups of up to that many equal-size
	// shot shards in lockstep on the batched SoA executor (one lane per
	// shard — same seeds, same streams). Results are bit-identical for
	// any value; see shotshard.go.
	BatchLanes int
	// Replay selects the shot-replay engine mode: replay.ModeOff,
	// ModeInterp, or ModeCompiled (default auto = compiled). Results are
	// bit-identical for any value — see internal/replay; interp vs
	// compiled is the A/B knob for the per-schedule compiler. The
	// feedback-corrected variant always falls back to full simulation:
	// its pulse schedule depends on the measured syndromes.
	Replay replay.Mode
}

// dataQubits resolves the code distance, defaulting to 3.
func (p RepCodeParams) dataQubits() int {
	if p.DataQubits == 0 {
		return 3
	}
	return p.DataQubits
}

// repSyndromeRegs is the register pool holding ancilla readouts during
// decoding (r7/r8 are the historical 3-qubit slots; the rest are free in
// the generated programs). Its length caps DataQubits at 7.
var repSyndromeRegs = []int{7, 8, 3, 4, 10, 14}

// repCodeChunkRounds is the number of shots each parallel sweep job runs.
// The partition of Rounds into chunks is fixed (chunkRounds), independent
// of the worker count, so the measured error rates are deterministic.
const repCodeChunkRounds = 50

// DefaultRepCodeParams waits 1600 cycles (8 µs): with T1 = 30 µs the
// per-qubit decay probability is p = 1 − e^{−8/30} ≈ 0.23 — large enough
// that one round of correction visibly beats the bare qubit without
// saturating the code.
func DefaultRepCodeParams() RepCodeParams {
	return RepCodeParams{Rounds: 300, WaitCycles: 1600, InitCycles: 40000, MeasureCycles: 300}
}

// emitRepCodeRound writes one round of the protected-memory sequence —
// encode, optional injected error, memory time, syndrome extraction,
// optional feedback correction, data readout. Shared by the legacy
// self-counting program (injection tests) and the per-shot engine
// programs so the two cannot drift apart. tally controls whether the
// wide-code sequential readout accumulates into r12 (the legacy majority
// vote); the engine programs pass false so the shot body never consumes a
// measurement register.
func emitRepCodeRound(w func(format string, args ...any), p RepCodeParams, inject string, correct, tally bool) {
	d := p.dataQubits()
	syn := repSyndromeRegs[:d-1]
	w("QNopReg r15")
	// Encode |1⟩_L.
	w("Pulse {q0}, X180")
	w("Wait 4")
	for i := 1; i < d; i++ {
		w("Apply2 CNOT, q%d, q0", i)
	}
	if inject != "" {
		w("Pulse {%s}, X180   # injected error", inject)
		w("Wait 4")
	}
	// Memory time.
	if p.WaitCycles > 0 {
		w("Wait %d", p.WaitCycles)
	}
	// Syndrome extraction: ancilla a_j (qubit d+j) = d_j ⊕ d_{j+1}.
	for j := 0; j < d-1; j++ {
		w("Apply2 CNOT, q%d, q%d", d+j, j)
		w("Apply2 CNOT, q%d, q%d", d+j, j+1)
	}
	for j := 0; j < d-1; j++ {
		w("Measure q%d, r%d", d+j, syn[j])
	}
	w("Wait 340          # integration + discrimination latency")
	if correct {
		// Decode by matching each single-error syndrome pattern: an X on
		// data qubit i fires exactly the adjacent syndromes {i−1, i}. For
		// d = 3 this is the textbook table (1,0)→q0, (1,1)→q1, (0,1)→q2;
		// unmatched (multi-error) patterns fall through uncorrected.
		for i := 0; i < d; i++ {
			next := fmt.Sprintf("Try_%d", i+1)
			if i == d-1 {
				next = "Readout"
			}
			if i > 0 {
				w("Try_%d:", i)
			}
			for j := 0; j < d-1; j++ {
				if j == i-1 || j == i {
					w("beq r%d, r6, %s", syn[j], next)
				} else {
					w("bne r%d, r6, %s", syn[j], next)
				}
			}
			w("Pulse {q%d}, X180", i)
			w("Wait 4")
			if i < d-1 {
				w("jmp Readout")
			}
		}
		w("Readout:")
	}
	// Data readout; the majority vote over these results happens in the
	// caller (assembly for the legacy program, Go for the engine path).
	if d == 3 {
		// Keep the historical dedicated registers so the injection test
		// can inspect each data qubit.
		w("Measure q0, r9")
		w("Measure q1, r10")
		w("Measure q2, r11")
		w("Wait 340")
	} else {
		// Wider codes read the data qubits sequentially through one
		// register; the Wait covers integration + discrimination latency
		// so each readout retires before the next opens a time point.
		if tally {
			w("mov r12, 0")
		}
		for i := 0; i < d; i++ {
			w("Measure q%d, r9", i)
			w("Wait 340")
			if tally {
				w("add r12, r12, r9")
			}
		}
	}
}

// repCodeProgram builds the self-contained protected-memory program for d
// data qubits, with the round loop and majority vote in assembly — the
// form used by the deterministic injection tests, which inspect the
// syndrome/data registers and the r13 error counter. inject names an
// explicit error location ("", "q0", …) applied after encoding.
// correct=false skips the feedback pulses (syndromes are still measured),
// isolating the value of correction.
func repCodeProgram(p RepCodeParams, inject string, correct bool) string {
	d := p.dataQubits()
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("mov r15, %d", p.InitCycles)
	w("mov r1, 0")
	w("mov r2, %d", p.Rounds)
	w("mov r6, 0       # constant 0")
	w("mov r5, %d      # majority threshold", (d+1)/2)
	w("mov r13, 0      # logical error counter")
	w("Round_Loop:")
	emitRepCodeRound(w, p, inject, correct, true)
	// Majority vote: logical 1 iff a majority reads 1 (the wide form
	// already accumulated r12 during readout).
	if d == 3 {
		w("add r12, r9, r10")
		w("add r12, r12, r11")
	}
	w("blt r12, r5, Logical_Flip   # below majority: logical error")
	w("jmp Next_Round")
	w("Logical_Flip:")
	w("addi r13, r13, 1")
	w("Next_Round:")
	w("addi r1, r1, 1")
	w("bne r1, r2, Round_Loop")
	w("halt")
	return b.String()
}

// RepCodeShotProgram returns the per-shot protected-memory program for
// the engine path: exactly one round, no classical bookkeeping — the
// majority vote over the shot's data readouts happens in Go from the
// engine's measurement stream. With correct=false the program never
// consumes a measurement result, making it replay-safe; with correct=true
// the feedback branches keep it on the full pipeline.
func RepCodeShotProgram(p RepCodeParams, correct bool) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("mov r15, %d", p.InitCycles)
	if correct {
		w("mov r6, 0       # constant 0")
	}
	emitRepCodeRound(w, p, "", correct, false)
	w("halt")
	return b.String()
}

// UnprotectedShotProgram stores one qubit in |1⟩ for the same τ and
// measures it — the per-shot baseline the code is compared against (the
// decay count happens in Go).
func UnprotectedShotProgram(p RepCodeParams) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("mov r15, %d", p.InitCycles)
	w("QNopReg r15")
	w("Pulse {q0}, X180")
	w("Wait 4")
	if p.WaitCycles > 0 {
		w("Wait %d", p.WaitCycles)
	}
	w("Measure q0, r9")
	w("Wait 340")
	w("halt")
	return b.String()
}

// SyndromeOutcome is the result of one deterministic injection test.
type SyndromeOutcome struct {
	S0, S1 int
	// Data are the final data-qubit readouts after correction.
	Data [3]int
}

// RunRepCodeInjection runs one noiseless round with an explicit injected
// X error and returns the measured syndrome and corrected data readout.
// It verifies the textbook decoding table end to end.
func RunRepCodeInjection(inject string) (*SyndromeOutcome, error) {
	cfg := core.DefaultConfig()
	cfg.NumQubits = 5
	cfg.Qubit = make([]qphys.QubitParams, 5) // noiseless
	cfg.Readout.NoiseSigma = 0               // deterministic readout
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	p := RepCodeParams{Rounds: 1, WaitCycles: 8, InitCycles: 40, MeasureCycles: 300}
	if err := m.RunAssembly(repCodeProgram(p, inject, true)); err != nil {
		return nil, err
	}
	out := &SyndromeOutcome{
		S0: int(m.Controller.Regs[7]),
		S1: int(m.Controller.Regs[8]),
	}
	out.Data[0] = int(m.Controller.Regs[9])
	out.Data[1] = int(m.Controller.Regs[10])
	out.Data[2] = int(m.Controller.Regs[11])
	return out, nil
}

// RepCodeResult summarizes the protected-memory experiment.
type RepCodeResult struct {
	Params RepCodeParams
	// PhysicalP is the analytic per-qubit decay probability 1-e^{-τ/T1}.
	PhysicalP float64
	// Unprotected is the measured logical error of a bare qubit.
	Unprotected float64
	// Uncorrected is the measured logical error of the code with
	// syndrome measurement but no feedback.
	Uncorrected float64
	// Protected is the measured logical error with feedback correction.
	Protected float64
}

// RunRepCode runs the three memory variants on identically configured
// machines and reports their logical error rates. Each variant is one
// sweep job whose rounds are shot-sharded on the experiment's fixed chunk
// plan: every (variant, chunk) pair still runs on its own machine seeded
// DeriveSeed2(cfg.Seed, variant, chunk). cfg.Backend selects the state
// substrate;
// p.DataQubits ≥ 5 (9+ total qubits) requires core.BackendTrajectory.
func RunRepCode(cfg core.Config, p RepCodeParams) (*RepCodeResult, error) {
	return NewEnv().RunRepCode(context.Background(), cfg, p)
}

// RunRepCode runs the repetition-code memory experiment on the
// environment's shared pools.
func (e *Env) RunRepCode(ctx context.Context, cfg core.Config, p RepCodeParams) (*RepCodeResult, error) {
	if p.Rounds <= 0 {
		return nil, fmt.Errorf("expt: Rounds must be positive")
	}
	d := p.dataQubits()
	if d%2 == 0 || d < 3 || d > len(repSyndromeRegs)+1 {
		return nil, fmt.Errorf("expt: DataQubits must be odd in 3..%d, got %d", len(repSyndromeRegs)+1, d)
	}
	cfg.NumQubits = 2*d - 1
	for len(cfg.Qubit) < cfg.NumQubits {
		cfg.Qubit = append(cfg.Qubit, qphys.DefaultQubitParams())
	}
	// The per-shot measurement stream of a code round is the d−1 syndrome
	// readouts followed by the d data readouts; the logical state is the
	// majority of the data bits.
	majorityError := func(md []replay.MD) bool {
		if len(md) < d {
			return true
		}
		ones := 0
		for _, r := range md[len(md)-d:] {
			ones += r.Result
		}
		return ones < (d+1)/2
	}
	variants := []chunkVariant{
		{src: UnprotectedShotProgram(p), isError: func(md []replay.MD) bool {
			return len(md) < 1 || md[0].Result == 0 // read 0: the stored 1 was lost
		}},
		{src: RepCodeShotProgram(p, false), isError: majorityError},
		{src: RepCodeShotProgram(p, true), isError: majorityError},
	}
	errors, err := runChunkedVariants(ctx, e, cfg, p.Rounds, p.Workers, p.ShotWorkers, p.BatchLanes, p.Replay, variants)
	if err != nil {
		return nil, err
	}
	res := &RepCodeResult{Params: p}
	tau := float64(p.WaitCycles) * 5e-9
	if t1 := cfg.Qubit[0].T1; t1 > 0 {
		res.PhysicalP = 1 - math.Exp(-tau/t1)
	}
	res.Unprotected, res.Uncorrected, res.Protected = errors[0], errors[1], errors[2]
	return res, nil
}

// chunkVariant is one program variant of a chunked memory experiment: a
// per-shot program (shared by every chunk, so it assembles once) and the
// predicate classifying a shot's measurement stream as a logical error.
type chunkVariant struct {
	src     string
	isError func(md []replay.MD) bool
}

// runChunkedVariants runs each per-shot program variant for a total of
// `rounds` shots on the shot-shard engine — one sweep job per variant,
// whose shot range is forced onto the experiment's historical chunk plan
// chunkRounds(rounds, repCodeChunkRounds) instead of the automatic
// ShotShardPlan — and returns each variant's logical-error fraction.
// Shard k of variant v is seeded DeriveSeed(DeriveSeed(cfg.Seed, v+1), k)
// ≡ DeriveSeed2(cfg.Seed, v+1, k), the exact seeds the pre-sharding
// (variant, chunk) job fan-out used, so the measured fractions are
// bit-identical to earlier releases for every Rounds, worker count, and
// replay mode. Error counting consumes only the engine's measurement
// stream, which is bit-identical between full simulation and replay.
func runChunkedVariants(ctx context.Context, env *Env, cfg core.Config, rounds, workers, shotWorkers, batchLanes int, mode replay.Mode, variants []chunkVariant) ([]float64, error) {
	plan := chunkRounds(rounds, repCodeChunkRounds)
	out := make([]float64, len(variants))
	pool := env.poolFor(cfg)
	err := runPool(ctx, len(variants), workers, func(v int) error {
		prog, err := env.progs.get(variants[v].src)
		if err != nil {
			return err
		}
		var errs int64
		_, err = runShotJobSharded(ctx, pool, DeriveSeed(cfg.Seed, v+1), prog, rounds, plan, shotWorkers, batchLanes, mode, nil,
			func(_ int, md []replay.MD) {
				if variants[v].isError(md) {
					errs++
				}
			}, nil)
		if err != nil {
			return err
		}
		out[v] = float64(errs) / float64(rounds)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Table renders the comparison.
func (r *RepCodeResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memory time: %d cycles (%.1f µs), physical decay p = %.3f\n",
		r.Params.WaitCycles, float64(r.Params.WaitCycles)*5e-3, r.PhysicalP)
	fmt.Fprintf(&b, "%-34s %s\n", "variant", "logical error")
	fmt.Fprintf(&b, "%-34s %.4f\n", "bare qubit", r.Unprotected)
	fmt.Fprintf(&b, "%-34s %.4f\n", "code, syndromes only (no feedback)", r.Uncorrected)
	fmt.Fprintf(&b, "%-34s %.4f\n", "code + feedback correction", r.Protected)
	return b.String()
}
