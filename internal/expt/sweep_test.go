package expt

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"quma/internal/core"
)

// The sweep-engine contract: results are bit-identical regardless of the
// worker count, and the returned error is the lowest-index failure.

func TestDeriveSeedIsStableAndSpreads(t *testing.T) {
	if DeriveSeed(1, 0) == DeriveSeed(1, 1) || DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("derived seeds collide on adjacent inputs")
	}
	if DeriveSeed(1, 5) != DeriveSeed(1, 5) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	for i := 0; i < 100; i++ {
		if DeriveSeed(42, i) < 0 {
			t.Fatalf("DeriveSeed(42, %d) is negative", i)
		}
	}
}

func TestRunPoolRunsAllJobsAndReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := runPool(context.Background(), 10, workers, func(i int) error {
			ran.Add(1)
			if i == 3 || i == 7 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if got := ran.Load(); got != 10 {
			t.Errorf("workers=%d: ran %d jobs, want all 10", workers, got)
		}
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v, want lowest-index failure (job 3)", workers, err)
		}
	}
}

func TestChunkRoundsPartition(t *testing.T) {
	got := chunkRounds(60, 25)
	want := []int{25, 25, 10}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("chunkRounds(60, 25) = %v, want %v", got, want)
	}
	total := 0
	for _, c := range chunkRounds(301, repCodeChunkRounds) {
		total += c
	}
	if total != 301 {
		t.Errorf("chunks sum to %d, want 301", total)
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	// A T1 delay sweep must be bit-identical with 1 worker and with one
	// worker per CPU.
	cfg := core.DefaultConfig()
	p := DefaultSweepParams()
	p.Rounds = 30
	p.DelaysCycles = p.DelaysCycles[:8]
	run := func(workers int) *T1Result {
		t.Helper()
		q := p
		q.Workers = workers
		res, err := RunT1(cfg, q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial.Excited, parallel.Excited) {
		t.Errorf("T1 sweep differs across worker counts:\n 1 worker: %v\n N workers: %v",
			serial.Excited, parallel.Excited)
	}
	if serial.Fit != parallel.Fit {
		t.Errorf("T1 fit differs: %+v vs %+v", serial.Fit, parallel.Fit)
	}
}

func TestRBDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultRBParams()
	p.Lengths = []int{1, 16, 64, 128}
	p.Trials = 2
	p.Rounds = 40
	run := func(workers int) *RBResult {
		t.Helper()
		q := p
		q.Workers = workers
		res, err := RunRB(cfg, q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial.Survival, parallel.Survival) {
		t.Errorf("RB survival differs across worker counts:\n%v\n%v", serial.Survival, parallel.Survival)
	}
	if !reflect.DeepEqual(serial.PerTrial, parallel.PerTrial) {
		t.Errorf("RB per-trial results differ across worker counts")
	}
	if serial.Fit.ErrorPerClifford() != parallel.Fit.ErrorPerClifford() {
		t.Errorf("RB fitted error per Clifford differs: %v vs %v",
			serial.Fit.ErrorPerClifford(), parallel.Fit.ErrorPerClifford())
	}
}

func TestRepCodeDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultRepCodeParams()
	p.Rounds = 60 // spans multiple chunks
	run := func(workers int) *RepCodeResult {
		t.Helper()
		q := p
		q.Workers = workers
		res, err := RunRepCode(cfg, q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if serial.Unprotected != parallel.Unprotected ||
		serial.Uncorrected != parallel.Uncorrected ||
		serial.Protected != parallel.Protected {
		t.Errorf("repcode error rates differ across worker counts:\n 1 worker: %+v\n N workers: %+v",
			serial, parallel)
	}
}

func TestAllXYDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultAllXYParams()
	p.Rounds = 40
	run := func(workers int) *AllXYResult {
		t.Helper()
		q := p
		q.Workers = workers
		res, err := RunAllXY(cfg, q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial.Raw, parallel.Raw) {
		t.Errorf("AllXY raw averages differ across worker counts")
	}
	if serial.Deviation != parallel.Deviation {
		t.Errorf("AllXY deviation differs: %v vs %v", serial.Deviation, parallel.Deviation)
	}
	if serial.PulsesPlayed != parallel.PulsesPlayed {
		t.Errorf("AllXY pulse accounting differs: %d vs %d", serial.PulsesPlayed, parallel.PulsesPlayed)
	}
}
