package expt

// Shot-sharding determinism: the shard plan is a pure function of the
// shot count, so every ShotWorkers value — and the legacy chunk fan-out
// the repcode experiments migrated from — must produce bit-identical
// results. CI runs this file under -race.

import (
	"context"
	"hash/fnv"
	"reflect"
	"runtime"
	"testing"

	"quma/internal/core"
	"quma/internal/qphys"
	"quma/internal/replay"
)

func TestShotShardPlanFixedness(t *testing.T) {
	for _, shots := range []int{1, 100, ShotShardSize} {
		if plan := ShotShardPlan(shots); plan != nil {
			t.Errorf("ShotShardPlan(%d) = %v, want nil (legacy single stream)", shots, plan)
		}
	}
	for _, shots := range []int{ShotShardSize + 1, 552, 600, 100_000} {
		plan := ShotShardPlan(shots)
		if plan == nil {
			t.Fatalf("ShotShardPlan(%d) = nil, want shards", shots)
		}
		total := 0
		for k, n := range plan {
			if n <= 0 || n > ShotShardSize {
				t.Errorf("ShotShardPlan(%d)[%d] = %d, want 1..%d", shots, k, n, ShotShardSize)
			}
			total += n
		}
		if total != shots {
			t.Errorf("ShotShardPlan(%d) sums to %d", shots, total)
		}
		if again := ShotShardPlan(shots); !reflect.DeepEqual(plan, again) {
			t.Errorf("ShotShardPlan(%d) not stable: %v vs %v", shots, plan, again)
		}
	}
}

// shardWorkerCounts is the ShotWorkers axis the determinism tests sweep:
// serial, small, oversubscribed, and the auto default.
func shardWorkerCounts() []int {
	return []int{1, 2, 8, runtime.NumCPU()}
}

// TestSweepBitIdenticalAcrossShotWorkers runs a T1 sweep whose Rounds
// exceed ShotShardSize (600 → 3 shards per point) at every ShotWorkers
// value and demands bit-identical results — the tentpole contract.
func TestSweepBitIdenticalAcrossShotWorkers(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultSweepParams()
	p.Rounds = 600
	p.DelaysCycles = []int{0, 800, 1600, 2400}
	var baseline *T1Result
	for _, sw := range shardWorkerCounts() {
		p.ShotWorkers = sw
		res, err := NewEnv().RunT1(context.Background(), cfg, p)
		if err != nil {
			t.Fatalf("ShotWorkers=%d: %v", sw, err)
		}
		res.Params.ShotWorkers = 0
		if baseline == nil {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(res, baseline) {
			t.Fatalf("ShotWorkers=%d result differs from ShotWorkers=%d", sw, shardWorkerCounts()[0])
		}
	}
}

// TestRunProgramStreamIdenticalAcrossShotWorkers pins the buffered
// shard-order stream merge: the FNV stream hash — sensitive to every
// (shot, index, qubit, result) in order — must match across ShotWorkers
// and replay modes for a sharded shot count (552 → 3 shards).
func TestRunProgramStreamIdenticalAcrossShotWorkers(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.NumQubits = 2
	src := "mov r15, 40\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nMPG {q1}, 300\nMD {q1}, r8\nhalt\n"
	env := NewEnv()
	var ref *ProgramResult
	for _, mode := range []replay.Mode{replay.ModeOff, replay.ModeInterp, replay.ModeCompiled} {
		for _, sw := range shardWorkerCounts() {
			res, err := env.RunProgram(context.Background(), cfg, ProgramParams{Source: src, Shots: 552, Replay: mode, ShotWorkers: sw})
			if err != nil {
				t.Fatalf("mode=%s ShotWorkers=%d: %v", mode, sw, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.StreamHash != ref.StreamHash {
				t.Fatalf("mode=%s ShotWorkers=%d: stream %x, want %x", mode, sw, res.StreamHash, ref.StreamHash)
			}
			if !reflect.DeepEqual(res.Ones, ref.Ones) {
				t.Fatalf("mode=%s ShotWorkers=%d: ones %v, want %v", mode, sw, res.Ones, ref.Ones)
			}
		}
	}
}

// TestBelowThresholdKeepsLegacySingleStream pins the compatibility half
// of the contract: at or below ShotShardSize the engine must consume the
// exact pre-sharding PRNG stream — one machine seeded with the point
// seed itself. The expected hash is computed by driving replay.Run
// directly on a fresh machine, the way the engine ran before sharding
// existed.
func TestBelowThresholdKeepsLegacySingleStream(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	src := "mov r15, 40\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"
	res, err := NewEnv().RunProgram(context.Background(), cfg, ProgramParams{Source: src, Shots: ShotShardSize, ShotWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := newProgramCache().get(src)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	_, err = replay.Run(context.Background(), m, prog, replay.Options{Shots: ShotShardSize, OnShot: func(_ int, md []replay.MD) {
		for _, r := range md {
			h.Write([]byte{byte(r.Qubit), byte(r.Result)})
		}
		h.Write([]byte{0xFF})
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamHash != h.Sum64() {
		t.Fatalf("engine stream %x, legacy single-stream %x", res.StreamHash, h.Sum64())
	}
}

// TestRepCodeMatchesLegacyChunkFanout reruns the repetition-code
// experiment at every (Workers, ShotWorkers) combination and checks all
// of them — plus a by-hand reconstruction of the pre-sharding
// (variant, chunk) job fan-out with its DeriveSeed2 seeds — agree
// bit-for-bit on the measured error fractions.
func TestRepCodeMatchesLegacyChunkFanout(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultRepCodeParams()
	p.Rounds = 120 // 3 chunks of the fixed 50-round plan
	var baseline *RepCodeResult
	for _, workers := range []int{1, 4} {
		for _, sw := range shardWorkerCounts() {
			p.Workers, p.ShotWorkers = workers, sw
			res, err := RunRepCode(cfg, p)
			if err != nil {
				t.Fatalf("Workers=%d ShotWorkers=%d: %v", workers, sw, err)
			}
			res.Params.Workers, res.Params.ShotWorkers = 0, 0
			if baseline == nil {
				baseline = res
				continue
			}
			if !reflect.DeepEqual(res, baseline) {
				t.Fatalf("Workers=%d ShotWorkers=%d differs from first combination", workers, sw)
			}
		}
	}

	// Legacy reconstruction: one runShotJob per (variant, chunk) with the
	// historical seed DeriveSeed2(cfg.Seed, variant+1, chunk).
	runCfg := cfg
	runCfg.NumQubits = 5
	for len(runCfg.Qubit) < 5 {
		runCfg.Qubit = append(runCfg.Qubit, qphys.DefaultQubitParams())
	}
	majority := func(md []replay.MD) bool {
		if len(md) < 3 {
			return true
		}
		ones := 0
		for _, r := range md[len(md)-3:] {
			ones += r.Result
		}
		return ones < 2
	}
	variants := []chunkVariant{
		{src: UnprotectedShotProgram(p), isError: func(md []replay.MD) bool { return len(md) < 1 || md[0].Result == 0 }},
		{src: RepCodeShotProgram(p, false), isError: majority},
		{src: RepCodeShotProgram(p, true), isError: majority},
	}
	env := NewEnv()
	pool := env.poolFor(runCfg)
	chunks := chunkRounds(p.Rounds, repCodeChunkRounds)
	want := []float64{baseline.Unprotected, baseline.Uncorrected, baseline.Protected}
	for v, variant := range variants {
		prog, err := env.progs.get(variant.src)
		if err != nil {
			t.Fatal(err)
		}
		errs := 0
		for k, rounds := range chunks {
			err := runShotJob(context.Background(), pool, DeriveSeed2(runCfg.Seed, v+1, k), prog, rounds, 0, p.Replay, nil,
				func(_ int, md []replay.MD) {
					if variant.isError(md) {
						errs++
					}
				}, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		if got := float64(errs) / float64(p.Rounds); got != want[v] {
			t.Errorf("variant %d: legacy chunk fan-out %v, sharded engine %v", v, got, want[v])
		}
	}
}

// TestShardPlanMismatchRejected pins the runner's self-check: a plan
// that does not cover the shot range is a programming error, reported —
// not silently truncated.
func TestShardPlanMismatchRejected(t *testing.T) {
	cfg := core.DefaultConfig()
	env := NewEnv()
	prog, err := env.progs.get("mov r1, 1\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = runShotJobSharded(context.Background(), env.poolFor(cfg), 1, prog, 500, []int{100, 100}, 2, replay.ModeAuto, nil, nil, nil)
	if err == nil {
		t.Fatal("mismatched shard plan accepted")
	}
}

// TestShardSeedDerivation pins the per-shard seed rule the docs promise:
// shard k of point seed s runs ResetState(DeriveSeed(s, k)), equal to
// DeriveSeed2 composition used by the chunked experiments.
func TestShardSeedDerivation(t *testing.T) {
	for v := 0; v < 4; v++ {
		for k := 0; k < 4; k++ {
			if got, want := DeriveSeed(DeriveSeed(7, v+1), k), DeriveSeed2(7, v+1, k); got != want {
				t.Fatalf("DeriveSeed(DeriveSeed(7,%d),%d) = %d, DeriveSeed2 = %d", v+1, k, got, want)
			}
		}
	}
}

// BenchmarkShardedT1Point measures one sharded sweep point end to end
// (engine overhead, not physics: small rounds keep it in the smoke
// budget).
func BenchmarkShardedT1Point(b *testing.B) {
	cfg := core.DefaultConfig()
	env := NewEnv()
	prog, err := env.progs.get("mov r15, 40\nQNopReg r15\nPulse {q0}, X180\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n")
	if err != nil {
		b.Fatal(err)
	}
	pool := env.poolFor(cfg)
	shots := 600
	plan := ShotShardPlan(shots)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runShotJobSharded(context.Background(), pool, 1, prog, shots, plan, 0, replay.ModeAuto, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
