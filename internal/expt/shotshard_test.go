package expt

// Shot-sharding determinism: the shard plan is a pure function of the
// shot count, so every ShotWorkers value — and the legacy chunk fan-out
// the repcode experiments migrated from — must produce bit-identical
// results. CI runs this file under -race.

import (
	"context"
	"fmt"
	"hash/fnv"
	"reflect"
	"runtime"
	"testing"

	"quma/internal/core"
	"quma/internal/qphys"
	"quma/internal/replay"
)

func TestShotShardPlanFixedness(t *testing.T) {
	for _, shots := range []int{1, 100, ShotShardSize} {
		if plan := ShotShardPlan(shots); plan != nil {
			t.Errorf("ShotShardPlan(%d) = %v, want nil (legacy single stream)", shots, plan)
		}
	}
	for _, shots := range []int{ShotShardSize + 1, 552, 600, 100_000} {
		plan := ShotShardPlan(shots)
		if plan == nil {
			t.Fatalf("ShotShardPlan(%d) = nil, want shards", shots)
		}
		total := 0
		for k, n := range plan {
			if n <= 0 || n > ShotShardSize {
				t.Errorf("ShotShardPlan(%d)[%d] = %d, want 1..%d", shots, k, n, ShotShardSize)
			}
			total += n
		}
		if total != shots {
			t.Errorf("ShotShardPlan(%d) sums to %d", shots, total)
		}
		if again := ShotShardPlan(shots); !reflect.DeepEqual(plan, again) {
			t.Errorf("ShotShardPlan(%d) not stable: %v vs %v", shots, plan, again)
		}
	}
}

// shardWorkerCounts is the ShotWorkers axis the determinism tests sweep:
// serial, small, oversubscribed, and the auto default.
func shardWorkerCounts() []int {
	return []int{1, 2, 8, runtime.NumCPU()}
}

// TestSweepBitIdenticalAcrossShotWorkers runs a T1 sweep whose Rounds
// exceed ShotShardSize (600 → 3 shards per point) at every ShotWorkers
// value and demands bit-identical results — the tentpole contract.
func TestSweepBitIdenticalAcrossShotWorkers(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultSweepParams()
	p.Rounds = 600
	p.DelaysCycles = []int{0, 800, 1600, 2400}
	var baseline *T1Result
	for _, sw := range shardWorkerCounts() {
		p.ShotWorkers = sw
		res, err := NewEnv().RunT1(context.Background(), cfg, p)
		if err != nil {
			t.Fatalf("ShotWorkers=%d: %v", sw, err)
		}
		res.Params.ShotWorkers = 0
		if baseline == nil {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(res, baseline) {
			t.Fatalf("ShotWorkers=%d result differs from ShotWorkers=%d", sw, shardWorkerCounts()[0])
		}
	}
}

// TestRunProgramStreamIdenticalAcrossShotWorkers pins the buffered
// shard-order stream merge: the FNV stream hash — sensitive to every
// (shot, index, qubit, result) in order — must match across ShotWorkers
// and replay modes for a sharded shot count (552 → 3 shards).
func TestRunProgramStreamIdenticalAcrossShotWorkers(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.NumQubits = 2
	src := "mov r15, 40\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nMPG {q1}, 300\nMD {q1}, r8\nhalt\n"
	env := NewEnv()
	var ref *ProgramResult
	for _, mode := range []replay.Mode{replay.ModeOff, replay.ModeInterp, replay.ModeCompiled} {
		for _, sw := range shardWorkerCounts() {
			res, err := env.RunProgram(context.Background(), cfg, ProgramParams{Source: src, Shots: 552, Replay: mode, ShotWorkers: sw})
			if err != nil {
				t.Fatalf("mode=%s ShotWorkers=%d: %v", mode, sw, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.StreamHash != ref.StreamHash {
				t.Fatalf("mode=%s ShotWorkers=%d: stream %x, want %x", mode, sw, res.StreamHash, ref.StreamHash)
			}
			if !reflect.DeepEqual(res.Ones, ref.Ones) {
				t.Fatalf("mode=%s ShotWorkers=%d: ones %v, want %v", mode, sw, res.Ones, ref.Ones)
			}
		}
	}
}

// TestBelowThresholdKeepsLegacySingleStream pins the compatibility half
// of the contract: at or below ShotShardSize the engine must consume the
// exact pre-sharding PRNG stream — one machine seeded with the point
// seed itself. The expected hash is computed by driving replay.Run
// directly on a fresh machine, the way the engine ran before sharding
// existed.
func TestBelowThresholdKeepsLegacySingleStream(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	src := "mov r15, 40\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"
	res, err := NewEnv().RunProgram(context.Background(), cfg, ProgramParams{Source: src, Shots: ShotShardSize, ShotWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := newProgramCache().get(src)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	_, err = replay.Run(context.Background(), m, prog, replay.Options{Shots: ShotShardSize, OnShot: func(_ int, md []replay.MD) {
		for _, r := range md {
			h.Write([]byte{byte(r.Qubit), byte(r.Result)})
		}
		h.Write([]byte{0xFF})
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamHash != h.Sum64() {
		t.Fatalf("engine stream %x, legacy single-stream %x", res.StreamHash, h.Sum64())
	}
}

// TestRepCodeMatchesLegacyChunkFanout reruns the repetition-code
// experiment at every (Workers, ShotWorkers) combination and checks all
// of them — plus a by-hand reconstruction of the pre-sharding
// (variant, chunk) job fan-out with its DeriveSeed2 seeds — agree
// bit-for-bit on the measured error fractions.
func TestRepCodeMatchesLegacyChunkFanout(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultRepCodeParams()
	p.Rounds = 120 // 3 chunks of the fixed 50-round plan
	var baseline *RepCodeResult
	for _, workers := range []int{1, 4} {
		for _, sw := range shardWorkerCounts() {
			p.Workers, p.ShotWorkers = workers, sw
			res, err := RunRepCode(cfg, p)
			if err != nil {
				t.Fatalf("Workers=%d ShotWorkers=%d: %v", workers, sw, err)
			}
			res.Params.Workers, res.Params.ShotWorkers = 0, 0
			if baseline == nil {
				baseline = res
				continue
			}
			if !reflect.DeepEqual(res, baseline) {
				t.Fatalf("Workers=%d ShotWorkers=%d differs from first combination", workers, sw)
			}
		}
	}

	// Legacy reconstruction: one runShotJob per (variant, chunk) with the
	// historical seed DeriveSeed2(cfg.Seed, variant+1, chunk).
	runCfg := cfg
	runCfg.NumQubits = 5
	for len(runCfg.Qubit) < 5 {
		runCfg.Qubit = append(runCfg.Qubit, qphys.DefaultQubitParams())
	}
	majority := func(md []replay.MD) bool {
		if len(md) < 3 {
			return true
		}
		ones := 0
		for _, r := range md[len(md)-3:] {
			ones += r.Result
		}
		return ones < 2
	}
	variants := []chunkVariant{
		{src: UnprotectedShotProgram(p), isError: func(md []replay.MD) bool { return len(md) < 1 || md[0].Result == 0 }},
		{src: RepCodeShotProgram(p, false), isError: majority},
		{src: RepCodeShotProgram(p, true), isError: majority},
	}
	env := NewEnv()
	pool := env.poolFor(runCfg)
	chunks := chunkRounds(p.Rounds, repCodeChunkRounds)
	want := []float64{baseline.Unprotected, baseline.Uncorrected, baseline.Protected}
	for v, variant := range variants {
		prog, err := env.progs.get(variant.src)
		if err != nil {
			t.Fatal(err)
		}
		errs := 0
		for k, rounds := range chunks {
			err := runShotJob(context.Background(), pool, DeriveSeed2(runCfg.Seed, v+1, k), prog, rounds, 0, p.Replay, nil,
				func(_ int, md []replay.MD) {
					if variant.isError(md) {
						errs++
					}
				}, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		if got := float64(errs) / float64(p.Rounds); got != want[v] {
			t.Errorf("variant %d: legacy chunk fan-out %v, sharded engine %v", v, got, want[v])
		}
	}
}

// TestLaneGroups pins the lane-grouping rule: maximal runs of
// consecutive equal-size shards, sliced to the lane width. The grouping
// is a pure function of (plan, lanes) — and per the tentpole contract it
// could be anything at all without changing a single result byte.
func TestLaneGroups(t *testing.T) {
	cases := []struct {
		plan  []int
		lanes int
		want  [][2]int
	}{
		{[]int{200, 200, 200}, 8, [][2]int{{0, 3}}},
		{[]int{200, 200, 200}, 2, [][2]int{{0, 2}, {2, 3}}},
		{[]int{200, 200, 200}, 1, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{[]int{200, 200, 200}, 0, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{[]int{256, 256, 100}, 4, [][2]int{{0, 2}, {2, 3}}},
		{[]int{100, 256, 256}, 4, [][2]int{{0, 1}, {1, 3}}},
		{[]int{256}, 4, [][2]int{{0, 1}}},
	}
	for _, c := range cases {
		if got := LaneGroups(c.plan, c.lanes); !reflect.DeepEqual(got, c.want) {
			t.Errorf("LaneGroups(%v, %d) = %v, want %v", c.plan, c.lanes, got, c.want)
		}
	}
}

// TestRunProgramStreamIdenticalAcrossBatchLanes is the tentpole
// bit-identity contract at the engine boundary: the full (shot, index,
// qubit, result) stream hash must not move by one bit when shards run
// in lockstep lanes, at any lane width, in any replay mode, under any
// shot-worker fan-out. The trajectory backend is the one with a batched
// executor; the density sweep below pins the graceful demotion.
func TestRunProgramStreamIdenticalAcrossBatchLanes(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Backend = core.BackendTrajectory
	cfg.NumQubits = 2
	src := "mov r15, 40\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nMPG {q1}, 300\nMD {q1}, r8\nhalt\n"
	env := NewEnv()
	var ref *ProgramResult
	for _, mode := range []replay.Mode{replay.ModeOff, replay.ModeInterp, replay.ModeCompiled, replay.ModeAuto} {
		for _, lanes := range []int{0, 1, 2, 3, 8} {
			for _, sw := range []int{1, 4} {
				res, err := env.RunProgram(context.Background(), cfg, ProgramParams{Source: src, Shots: 552, Replay: mode, ShotWorkers: sw, BatchLanes: lanes})
				if err != nil {
					t.Fatalf("mode=%s lanes=%d sw=%d: %v", mode, lanes, sw, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if res.StreamHash != ref.StreamHash {
					t.Fatalf("mode=%s lanes=%d sw=%d: stream %x, want %x", mode, lanes, sw, res.StreamHash, ref.StreamHash)
				}
				if !reflect.DeepEqual(res.Ones, ref.Ones) {
					t.Fatalf("mode=%s lanes=%d sw=%d: ones %v, want %v", mode, lanes, sw, res.Ones, ref.Ones)
				}
			}
		}
	}
}

// TestBatchLanesNeutralOnDensityBackend pins the demotion half of the
// contract: the density backend has no batched executor, so any
// BatchLanes value must fall back to per-lane scalar execution with —
// as everywhere — bit-identical results.
func TestBatchLanesNeutralOnDensityBackend(t *testing.T) {
	cfg := core.DefaultConfig()
	src := "mov r15, 40\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"
	env := NewEnv()
	var ref *ProgramResult
	for _, lanes := range []int{0, 8} {
		res, err := env.RunProgram(context.Background(), cfg, ProgramParams{Source: src, Shots: 552, ShotWorkers: 4, BatchLanes: lanes})
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.StreamHash != ref.StreamHash {
			t.Fatalf("lanes=%d: stream %x, want %x", lanes, res.StreamHash, ref.StreamHash)
		}
	}
}

// TestSweepBitIdenticalAcrossBatchLanes runs the T1 sweep with batching
// enabled and demands the full result struct match the scalar engine.
func TestSweepBitIdenticalAcrossBatchLanes(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Backend = core.BackendTrajectory
	p := DefaultSweepParams()
	p.Rounds = 600
	p.DelaysCycles = []int{0, 800, 1600}
	var baseline *T1Result
	for _, lanes := range []int{0, 2, 8} {
		p.BatchLanes = lanes
		res, err := NewEnv().RunT1(context.Background(), cfg, p)
		if err != nil {
			t.Fatalf("BatchLanes=%d: %v", lanes, err)
		}
		res.Params.BatchLanes = 0
		if baseline == nil {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(res, baseline) {
			t.Fatalf("BatchLanes=%d result differs from scalar engine", lanes)
		}
	}
}

// TestRepCodeBitIdenticalAcrossBatchLanes covers the chunked-variant
// path (repetition code) under lane batching.
func TestRepCodeBitIdenticalAcrossBatchLanes(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Backend = core.BackendTrajectory
	p := DefaultRepCodeParams()
	p.Rounds = 600
	var baseline *RepCodeResult
	for _, lanes := range []int{0, 4} {
		p.BatchLanes = lanes
		res, err := RunRepCode(cfg, p)
		if err != nil {
			t.Fatalf("BatchLanes=%d: %v", lanes, err)
		}
		res.Params.BatchLanes = 0
		if baseline == nil {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(res, baseline) {
			t.Fatalf("BatchLanes=%d result differs from scalar engine", lanes)
		}
	}
}

// TestShardOverheadAccounting pins the Stats.Lead/Overhead bookkeeping
// (the sharding-overhead half of the metrics bugfix). An at-or-below-
// threshold job runs one stream and must report zero shard overhead; a
// sharded job pays the lead once per shard, and everything beyond the
// first shard's lead is overhead. The shard plan itself is
// schema-frozen, so these numbers are exact, not bounds.
func TestShardOverheadAccounting(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Backend = core.BackendTrajectory
	env := NewEnv()
	prog, err := env.progs.get("mov r15, 40\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	pool := env.poolFor(cfg)

	// At threshold: legacy single stream, lead paid once, zero overhead.
	st, err := runShotJobSharded(context.Background(), pool, cfg.Seed, prog, ShotShardSize, ShotShardPlan(ShotShardSize), 4, 0, replay.ModeAuto, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Safe || st.Lead == 0 {
		t.Fatalf("single-stream job not replayed: %+v", st)
	}
	if st.Overhead != 0 {
		t.Fatalf("single-stream job reports shard overhead %d, want 0", st.Overhead)
	}
	leadPerStream := st.Lead

	// Sharded (600 → 3 shards): lead once per shard, overhead = the lead
	// of every shard after the first. Identical with and without lanes.
	for _, lanes := range []int{0, 8} {
		plan := ShotShardPlan(600)
		st, err := runShotJobSharded(context.Background(), pool, cfg.Seed, prog, 600, plan, 4, lanes, replay.ModeAuto, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := leadPerStream * len(plan); st.Lead != want {
			t.Errorf("lanes=%d: merged Lead = %d, want %d", lanes, st.Lead, want)
		}
		if want := leadPerStream * (len(plan) - 1); st.Overhead != want {
			t.Errorf("lanes=%d: merged Overhead = %d, want %d", lanes, st.Overhead, want)
		}
	}

	// ModeOff never engages replay: every shot is ordinary full-pipeline
	// work, so no lead and no overhead, sharded or not.
	st, err = runShotJobSharded(context.Background(), pool, cfg.Seed, prog, 600, ShotShardPlan(600), 4, 0, replay.ModeOff, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lead != 0 || st.Overhead != 0 {
		t.Errorf("ModeOff job reports Lead=%d Overhead=%d, want 0/0", st.Lead, st.Overhead)
	}
}

// TestShardPlanMismatchRejected pins the runner's self-check: a plan
// that does not cover the shot range is a programming error, reported —
// not silently truncated.
func TestShardPlanMismatchRejected(t *testing.T) {
	cfg := core.DefaultConfig()
	env := NewEnv()
	prog, err := env.progs.get("mov r1, 1\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = runShotJobSharded(context.Background(), env.poolFor(cfg), 1, prog, 500, []int{100, 100}, 2, 0, replay.ModeAuto, nil, nil, nil)
	if err == nil {
		t.Fatal("mismatched shard plan accepted")
	}
}

// TestShardSeedDerivation pins the per-shard seed rule the docs promise:
// shard k of point seed s runs ResetState(DeriveSeed(s, k)), equal to
// DeriveSeed2 composition used by the chunked experiments.
func TestShardSeedDerivation(t *testing.T) {
	for v := 0; v < 4; v++ {
		for k := 0; k < 4; k++ {
			if got, want := DeriveSeed(DeriveSeed(7, v+1), k), DeriveSeed2(7, v+1, k); got != want {
				t.Fatalf("DeriveSeed(DeriveSeed(7,%d),%d) = %d, DeriveSeed2 = %d", v+1, k, got, want)
			}
		}
	}
}

// BenchmarkShardedT1Point measures one sharded sweep point end to end
// (engine overhead, not physics: small rounds keep it in the smoke
// budget).
func BenchmarkShardedT1Point(b *testing.B) {
	cfg := core.DefaultConfig()
	env := NewEnv()
	prog, err := env.progs.get("mov r15, 40\nQNopReg r15\nPulse {q0}, X180\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n")
	if err != nil {
		b.Fatal(err)
	}
	pool := env.poolFor(cfg)
	shots := 600
	plan := ShotShardPlan(shots)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runShotJobSharded(context.Background(), pool, 1, prog, shots, plan, 0, 0, replay.ModeAuto, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchedRepCode is the tentpole's perf gate: compiled-replay
// repetition-code shots through the sharded runner, swept over lane
// widths against the scalar sharded baseline (lanes 0) at two code
// sizes. ShotWorkers is pinned to 1 so the numbers isolate the
// lockstep SoA executor's per-shot win, not goroutine parallelism; the
// seeds and shard plan are identical across the sweep, so every
// variant computes the same result bytes. Run with -benchmem: steady
// state must not allocate per shot. The batched win grows with state
// size — at d=3 (dim 32) the 4 KiB state leaves per-op orchestration
// and the per-lane variate draws un-amortized (~1.4x at 8 lanes on the
// reference box); at d=5 (dim 512) the span kernels dominate and 8
// lanes clears 1.8x.
func BenchmarkBatchedRepCode(b *testing.B) {
	for _, dq := range []int{3, 5} {
		cfg := core.DefaultConfig()
		cfg.Backend = core.BackendTrajectory
		p := DefaultRepCodeParams()
		p.DataQubits = dq
		cfg.NumQubits = 2*dq - 1
		for len(cfg.Qubit) < cfg.NumQubits {
			cfg.Qubit = append(cfg.Qubit, qphys.DefaultQubitParams())
		}
		env := NewEnv()
		prog, err := env.progs.get(RepCodeShotProgram(p, false))
		if err != nil {
			b.Fatal(err)
		}
		pool := env.poolFor(cfg)
		const shots = 2048
		plan := ShotShardPlan(shots)
		for _, lanes := range []int{0, 1, 4, 8} {
			name := "scalar"
			if lanes > 0 {
				name = fmt.Sprintf("lanes-%d", lanes)
			}
			b.Run(fmt.Sprintf("d%d/%s", dq, name), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := runShotJobSharded(context.Background(), pool, 7, prog, shots, plan, 1, lanes, replay.ModeAuto, nil, nil, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/shots, "ns/shot")
			})
		}
	}
}
