package expt

import (
	"context"
	"testing"

	"quma/internal/asm"
	"quma/internal/core"
	"quma/internal/qphys"
	"quma/internal/replay"
)

// Fallback-path coverage: feedback programs — the corrected repetition
// code here, the phase code's active reset and the examples/feedback
// cycle in the package-level replay tests — must stay bit-identical
// across every -replay mode AND under machine pooling via ResetState,
// because the sweep engine serves them from pooled machines with the
// compiled engine enabled by default.

// runShots executes the program for `shots` on m and returns the full
// measurement history plus the engine stats.
func runShots(t *testing.T, m *core.Machine, src string, shots int, mode replay.Mode) (replay.Stats, [][]replay.MD) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var hist [][]replay.MD
	st, err := replay.Run(context.Background(), m, prog, replay.Options{Shots: shots, Mode: mode, OnShot: func(_ int, md []replay.MD) {
		hist = append(hist, append([]replay.MD(nil), md...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	return st, hist
}

func requireSameHistory(t *testing.T, label string, want, got [][]replay.MD) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: shot counts differ: %d vs %d", label, len(want), len(got))
	}
	for s := range want {
		if len(want[s]) != len(got[s]) {
			t.Fatalf("%s: shot %d MD counts differ", label, s)
		}
		for k := range want[s] {
			if want[s][k] != got[s][k] {
				t.Fatalf("%s: shot %d md %d: %+v vs %+v", label, s, k, want[s][k], got[s][k])
			}
		}
	}
}

// TestCorrectedRepCodeFallbackAcrossModesAndPooling runs the
// feedback-corrected repetition-code shot program — whose pulse schedule
// depends on the measured syndromes, the canonical replay-unsafe case —
// on fresh and on pooled (ResetState after unrelated work) machines
// under every replay mode. All six combinations must produce the same
// measurement stream bit for bit, and none may replay.
func TestCorrectedRepCodeFallbackAcrossModesAndPooling(t *testing.T) {
	p := DefaultRepCodeParams()
	src := RepCodeShotProgram(p, true)
	const shots, seed = 25, 42
	for _, backend := range []core.Backend{core.BackendDensity, core.BackendTrajectory} {
		cfg := core.DefaultConfig()
		cfg.Backend = backend
		cfg.NumQubits = 5
		for len(cfg.Qubit) < 5 {
			cfg.Qubit = append(cfg.Qubit, qphys.DefaultQubitParams())
		}
		cfg.Seed = seed
		mRef, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, want := runShots(t, mRef, src, shots, replay.ModeOff)
		for _, mode := range []replay.Mode{replay.ModeOff, replay.ModeInterp, replay.ModeCompiled, replay.ModeAuto} {
			// Fresh machine.
			mf, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st, got := runShots(t, mf, src, shots, mode)
			if st.Safe {
				t.Fatalf("%s/%s: corrected repcode must fall back: %+v", backend, mode, st)
			}
			requireSameHistory(t, string(backend)+"/"+string(mode)+"/fresh", want, got)
			// Pooled machine: other seed, unrelated replay-safe work, then
			// ResetState to the reference seed.
			cp := cfg
			cp.Seed = seed + 99
			mp, err := core.New(cp)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := replay.Run(context.Background(), mp, asm.MustAssemble(RepCodeShotProgram(p, false)), replay.Options{Shots: 8, Mode: mode}); err != nil {
				t.Fatal(err)
			}
			mp.ResetState(seed)
			stP, gotP := runShots(t, mp, src, shots, mode)
			if stP.Safe {
				t.Fatalf("%s/%s: corrected repcode must fall back on a pooled machine: %+v", backend, mode, stP)
			}
			requireSameHistory(t, string(backend)+"/"+string(mode)+"/pooled", want, gotP)
		}
	}
}

// TestPhaseCodeActiveResetAcrossAllModes pins the phase code — whose
// active-reset prologue consumes the previous shot's readout registers —
// to identical results across every mode, including the compiled engine.
func TestPhaseCodeActiveResetAcrossAllModes(t *testing.T) {
	p := DefaultRepCodeParams()
	p.Rounds = 60
	p.WaitCycles = 800
	var want *PhaseCodeResult
	for _, mode := range []replay.Mode{replay.ModeOff, replay.ModeInterp, replay.ModeCompiled} {
		cfg := core.DefaultConfig()
		for i := 0; i < 5; i++ {
			cfg.Qubit = append(cfg.Qubit, DephasingQubit(20e-6))
		}
		q := p
		q.Replay = mode
		res, err := RunPhaseCode(cfg, q)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		if want.Bare != res.Bare || want.Protected != res.Protected {
			t.Fatalf("%s: rates differ: %+v vs %+v", mode, want, res)
		}
	}
}
