package expt

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"quma/internal/core"
	"quma/internal/qphys"
)

func TestAllXYPairsStructure(t *testing.T) {
	pairs := AllXYPairs()
	if len(pairs) != 21 {
		t.Fatalf("got %d pairs, want 21", len(pairs))
	}
	zeros, halves, ones := 0, 0, 0
	for _, p := range pairs {
		switch p.Ideal {
		case 0:
			zeros++
		case 0.5:
			halves++
		case 1:
			ones++
		default:
			t.Errorf("pair %s has ideal %v", p.Label, p.Ideal)
		}
	}
	if zeros != 5 || halves != 12 || ones != 4 {
		t.Errorf("staircase counts %d/%d/%d, want 5/12/4", zeros, halves, ones)
	}
	if pairs[0].Label != "II" || pairs[17].Label != "XI" || pairs[20].Label != "yy" {
		t.Error("Fig. 9 label order broken")
	}
}

func TestAllXYProgramShape(t *testing.T) {
	p := DefaultAllXYParams()
	src := AllXYProgram(p)
	if got := strings.Count(src, "MPG"); got != 42 {
		t.Errorf("program has %d MPG instructions, want 42", got)
	}
	if got := strings.Count(src, "Pulse"); got != 84 {
		t.Errorf("program has %d Pulse instructions, want 84", got)
	}
	if !strings.Contains(src, "QNopReg r15") || !strings.Contains(src, "bne r1, r2, Outer_Loop") {
		t.Error("program missing Algorithm 3 control structure")
	}
}

func TestAllXYCalibratedStaircase(t *testing.T) {
	// E1 / Figure 9: with calibrated pulses the rescaled fidelities
	// reproduce the 0 / ½ / 1 staircase with small deviation.
	cfg := core.DefaultConfig()
	p := DefaultAllXYParams()
	p.Rounds = 120
	res, err := RunAllXY(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fidelities) != 42 {
		t.Fatalf("got %d points, want 42", len(res.Fidelities))
	}
	if res.Deviation > 0.08 {
		t.Errorf("deviation = %v, want < 0.08\n%s", res.Deviation, res.Staircase())
	}
	// Per-level sanity.
	for i, f := range res.Fidelities {
		ideal := res.Ideal[i]
		if math.Abs(f-ideal) > 0.2 {
			t.Errorf("point %d: F=%v, ideal %v", i, f, ideal)
		}
	}
	if res.MemoryBytes != 420 {
		t.Errorf("memory = %d, want 420", res.MemoryBytes)
	}
	// 2 pulses per measurement × 42 × rounds.
	if res.PulsesPlayed != uint64(84*p.Rounds) {
		t.Errorf("pulses = %d, want %d", res.PulsesPlayed, 84*p.Rounds)
	}
}

func TestAllXYAmplitudeErrorSignature(t *testing.T) {
	// A -10% amplitude miscalibration must show the classic AllXY
	// signature: deviation well above the calibrated case, with the
	// π-pulse pairs (indices 1–4: XX, YY, XY, YX) pulled up from 0.
	cfg := core.DefaultConfig()
	cfg.AmplitudeError = -0.10
	p := DefaultAllXYParams()
	p.Rounds = 120
	res, err := RunAllXY(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deviation < 0.03 {
		t.Errorf("amplitude error produced deviation %v, expected a visible signature", res.Deviation)
	}
	// XX combination (two under-rotated π pulses) leaves residual
	// population: 2×0.9π rotation → P(1) = sin²(0.1π)... ≈ 0.095 above 0.
	xx := (res.Fidelities[2] + res.Fidelities[3]) / 2
	if xx < 0.03 {
		t.Errorf("XX fidelity %v shows no under-rotation signature", xx)
	}
}

func TestAllXYDetuningSignature(t *testing.T) {
	// Frequency detuning leaves the π-pairs mostly alone but tilts the
	// equator combinations — overall deviation must grow.
	cfg := core.DefaultConfig()
	qp := qphys.DefaultQubitParams()
	qp.FreqDetuningHz = 150e3
	cfg.Qubit = []qphys.QubitParams{qp}
	p := DefaultAllXYParams()
	p.Rounds = 120
	res, err := RunAllXY(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deviation < 0.02 {
		t.Errorf("detuning produced deviation %v, expected a visible signature", res.Deviation)
	}
}

func TestAllXYUndoubled(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultAllXYParams()
	p.Doubled = false
	p.Rounds = 60
	res, err := RunAllXY(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fidelities) != 21 {
		t.Errorf("got %d points, want 21", len(res.Fidelities))
	}
}

func TestAllXYRejectsBadParams(t *testing.T) {
	if _, err := RunAllXY(core.DefaultConfig(), AllXYParams{Rounds: 0}); err == nil {
		t.Error("Rounds=0 must fail")
	}
}

func TestCliffordGroupComplete(t *testing.T) {
	g := CliffordGroup()
	if len(g) != 24 {
		t.Fatalf("group has %d elements", len(g))
	}
	// All distinct up to phase, all unitary, identity present.
	for i, a := range g {
		if !a.U.IsUnitary(1e-9) {
			t.Errorf("element %d not unitary", i)
		}
		for j := i + 1; j < len(g); j++ {
			if a.U.EqualUpToGlobalPhase(g[j].U, 1e-9) {
				t.Errorf("elements %d and %d coincide", i, j)
			}
		}
	}
	if !g[0].U.EqualUpToGlobalPhase(qphys.Identity(2), 1e-9) {
		t.Error("element 0 must be the identity")
	}
	if g[0].Pulses[0] != "I" {
		t.Error("identity must decompose to the I pulse")
	}
}

func TestCliffordClosure(t *testing.T) {
	// The product of any two elements is again in the group.
	g := CliffordGroup()
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 50; k++ {
		a := g[rng.Intn(24)]
		b := g[rng.Intn(24)]
		prod := a.U.Mul(b.U)
		found := false
		for _, c := range g {
			if c.U.EqualUpToGlobalPhase(prod, 1e-9) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("product of %d and %d not in group", a.Index, b.Index)
		}
	}
}

func TestCliffordDecompositionsMatchUnitaries(t *testing.T) {
	for _, c := range CliffordGroup() {
		u := qphys.Identity(2)
		for _, p := range c.Pulses {
			u = primitiveGate(p).Mul(u)
		}
		if !u.EqualUpToGlobalPhase(c.U, 1e-9) {
			t.Errorf("element %d: pulse decomposition %v does not reproduce unitary", c.Index, c.Pulses)
		}
		if len(c.Pulses) > 3 {
			t.Errorf("element %d needs %d pulses; BFS should find ≤3", c.Index, len(c.Pulses))
		}
	}
}

func TestInverseClifford(t *testing.T) {
	g := CliffordGroup()
	for _, c := range g {
		inv := InverseClifford(c.U)
		if !inv.U.Mul(c.U).EqualUpToGlobalPhase(qphys.Identity(2), 1e-9) {
			t.Errorf("inverse of %d wrong", c.Index)
		}
	}
}

func TestRandomCliffordSequenceRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		pulses, elements := RandomCliffordSequence(rng.Intn(20)+1, rng)
		u := qphys.Identity(2)
		for _, p := range pulses {
			u = primitiveGate(p).Mul(u)
		}
		if !u.EqualUpToGlobalPhase(qphys.Identity(2), 1e-9) {
			t.Fatalf("trial %d: sequence of %d elements does not recover identity", trial, len(elements))
		}
	}
}

func TestT1Experiment(t *testing.T) {
	cfg := core.DefaultConfig()
	qp := qphys.DefaultQubitParams() // T1 = 30 µs
	cfg.Qubit = []qphys.QubitParams{qp}
	p := DefaultSweepParams()
	p.Rounds = 600 // cheap now that shots replay; keeps the fit well inside ±15%
	res, err := RunT1(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fit.Tau-qp.T1)/qp.T1 > 0.15 {
		t.Errorf("fitted T1 = %v, want %v ±15%%", res.Fit.Tau, qp.T1)
	}
	if res.Excited[0] < 0.9 {
		t.Errorf("initial population %v, want ~1", res.Excited[0])
	}
}

func TestRamseyExperiment(t *testing.T) {
	cfg := core.DefaultConfig()
	qp := qphys.DefaultQubitParams()
	qp.FreqDetuningHz = 100e3 // artificial detuning → 100 kHz fringes
	cfg.Qubit = []qphys.QubitParams{qp}
	p := DefaultSweepParams()
	// Denser, shorter sweep to resolve the fringes: 0..40 µs in 1 µs
	// steps (200 cycles).
	p.DelaysCycles = nil
	for i := 0; i < 40; i++ {
		p.DelaysCycles = append(p.DelaysCycles, i*200)
	}
	p.Rounds = 150
	res, err := RunRamsey(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fit.Freq-100e3)/100e3 > 0.1 {
		t.Errorf("fringe frequency = %v, want 100 kHz ±10%%", res.Fit.Freq)
	}
	// T2* should be near the configured T2 (20 µs).
	if res.Fit.Tau < 10e-6 || res.Fit.Tau > 40e-6 {
		t.Errorf("fitted T2* = %v, want ≈ 20 µs", res.Fit.Tau)
	}
}

func TestEchoExperiment(t *testing.T) {
	cfg := core.DefaultConfig()
	qp := qphys.DefaultQubitParams()
	qp.FreqDetuningHz = 100e3 // echo refocuses this
	cfg.Qubit = []qphys.QubitParams{qp}
	p := DefaultSweepParams()
	p.Rounds = 150
	res, err := RunEcho(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// The echoed coherence decays with T2 (Markovian dephasing is not
	// refocusable, so tau ≈ T2 here), ending at P≈0.5.
	if res.Fit.Tau < 10e-6 || res.Fit.Tau > 45e-6 {
		t.Errorf("fitted echo tau = %v s", res.Fit.Tau)
	}
	if math.Abs(res.Fit.C-0.5) > 0.15 {
		t.Errorf("echo floor = %v, want ~0.5", res.Fit.C)
	}
	if res.Excited[0] < 0.85 {
		t.Errorf("zero-delay echo population %v, want ~1", res.Excited[0])
	}
}

func TestRBDecayAndErrorRate(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultRBParams()
	res, err := RunRB(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit.P <= 0 || res.Fit.P >= 1 {
		t.Fatalf("decay p = %v outside (0,1)", res.Fit.P)
	}
	// Survival must be monotone-ish: first point well above last.
	first, last := res.Survival[0], res.Survival[len(res.Survival)-1]
	if first < 0.8 {
		t.Errorf("m=1 survival %v, want > 0.8", first)
	}
	if last >= first {
		t.Errorf("no decay: survival %v -> %v", first, last)
	}
	if !strings.Contains(res.Table(), "error per Clifford") {
		t.Error("table rendering broken")
	}
}

func TestRBWorseWithMiscalibration(t *testing.T) {
	p := DefaultRBParams()
	p.Lengths = []int{1, 4, 8, 16}
	p.Trials = 3
	p.Rounds = 50

	good, err := RunRB(core.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	bad := core.DefaultConfig()
	bad.AmplitudeError = -0.05
	worse, err := RunRB(bad, p)
	if err != nil {
		t.Fatal(err)
	}
	if worse.Fit.ErrorPerClifford() <= good.Fit.ErrorPerClifford() {
		t.Errorf("miscalibrated error/Clifford %v not worse than calibrated %v",
			worse.Fit.ErrorPerClifford(), good.Fit.ErrorPerClifford())
	}
}

func TestRBRejectsBadParams(t *testing.T) {
	if _, err := RunRB(core.DefaultConfig(), RBParams{Lengths: []int{1}}); err == nil {
		t.Error("too few lengths must fail")
	}
}
