package expt

import (
	"math"
	"testing"

	"quma/internal/core"
	"quma/internal/qphys"
)

// Cross-backend agreement: the trajectory backend samples one Kraus
// operator per channel application, so per-shot results differ from the
// exact density backend, but experiment means must converge to the same
// physics within sampling tolerance. Every test runs at a fixed seed, so
// failures are reproducible, and the tolerances carry ≥4σ margin at the
// configured round counts.

func TestT1BackendsAgree(t *testing.T) {
	p := DefaultSweepParams()
	p.Rounds = 600 // cheap now that shots replay; tightens both fits
	run := func(b core.Backend) *T1Result {
		t.Helper()
		cfg := core.DefaultConfig()
		cfg.Backend = b
		res, err := RunT1(cfg, p)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		return res
	}
	den := run(core.BackendDensity)
	trj := run(core.BackendTrajectory)
	if den.Fit.Tau <= 0 || trj.Fit.Tau <= 0 {
		t.Fatalf("non-positive fitted T1: density %v, trajectory %v", den.Fit.Tau, trj.Fit.Tau)
	}
	if r := trj.Fit.Tau / den.Fit.Tau; r < 0.7 || r > 1.4 {
		t.Errorf("fitted T1 disagrees: density %v s, trajectory %v s", den.Fit.Tau, trj.Fit.Tau)
	}
	var sum float64
	for i := range den.Excited {
		sum += math.Abs(den.Excited[i] - trj.Excited[i])
	}
	if mean := sum / float64(len(den.Excited)); mean > 0.08 {
		t.Errorf("mean |density − trajectory| population gap = %v, want < 0.08", mean)
	}
}

func TestRamseyBackendsAgree(t *testing.T) {
	qp := qphys.DefaultQubitParams()
	qp.FreqDetuningHz = 100e3
	p := DefaultSweepParams()
	p.Rounds = 150
	p.DelaysCycles = nil
	for k := 0; k < 40; k++ {
		p.DelaysCycles = append(p.DelaysCycles, k*200)
	}
	run := func(b core.Backend) *RamseyResult {
		t.Helper()
		cfg := core.DefaultConfig()
		cfg.Backend = b
		cfg.Qubit = []qphys.QubitParams{qp}
		res, err := RunRamsey(cfg, p)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		return res
	}
	den := run(core.BackendDensity)
	trj := run(core.BackendTrajectory)
	// Both backends must resolve the 100 kHz detuning fringe.
	for _, res := range []*RamseyResult{den, trj} {
		if res.Fit.Freq < 80e3 || res.Fit.Freq > 120e3 {
			t.Errorf("fitted fringe %v Hz, want ≈ 100 kHz", res.Fit.Freq)
		}
	}
	if r := trj.Fit.Freq / den.Fit.Freq; r < 0.85 || r > 1.18 {
		t.Errorf("fringe frequency disagrees: density %v, trajectory %v", den.Fit.Freq, trj.Fit.Freq)
	}
}

func TestAllXYBackendsAgree(t *testing.T) {
	p := DefaultAllXYParams()
	p.Rounds = 150
	run := func(b core.Backend) *AllXYResult {
		t.Helper()
		cfg := core.DefaultConfig()
		cfg.Backend = b
		res, err := RunAllXY(cfg, p)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		return res
	}
	den := run(core.BackendDensity)
	trj := run(core.BackendTrajectory)
	var ss float64
	for i := range den.Fidelities {
		d := den.Fidelities[i] - trj.Fidelities[i]
		ss += d * d
	}
	if rms := math.Sqrt(ss / float64(len(den.Fidelities))); rms > 0.08 {
		t.Errorf("RMS fidelity gap between backends = %v, want < 0.08", rms)
	}
	// The trajectory staircase must still be a faithful AllXY signature.
	if trj.Deviation > 3*den.Deviation+0.05 {
		t.Errorf("trajectory deviation %v far above density %v", trj.Deviation, den.Deviation)
	}
}

func TestRabiTrajectoryBackendCalibrates(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Backend = core.BackendTrajectory
	p := DefaultRabiParams()
	p.Rounds = 120
	res, err := RunRabi(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PiScale-1) > 0.06 {
		t.Errorf("trajectory-backend π scale = %v, want ≈ 1", res.PiScale)
	}
}

func TestTrajectoryExperimentsDeterministicAcrossWorkers(t *testing.T) {
	// The sweep contract must hold with stochastic channel unwinding:
	// per-point seeds fix each trajectory, so results are bit-identical
	// for any worker count.
	t.Run("T1", func(t *testing.T) {
		p := DefaultSweepParams()
		p.Rounds = 40
		var prev []float64
		for _, workers := range []int{1, 3} {
			cfg := core.DefaultConfig()
			cfg.Backend = core.BackendTrajectory
			q := p
			q.Workers = workers
			res, err := RunT1(cfg, q)
			if err != nil {
				t.Fatal(err)
			}
			if prev == nil {
				prev = res.Excited
				continue
			}
			for i := range prev {
				if prev[i] != res.Excited[i] {
					t.Fatalf("point %d differs across worker counts: %v vs %v", i, prev[i], res.Excited[i])
				}
			}
		}
	})
	t.Run("RepCode", func(t *testing.T) {
		p := DefaultRepCodeParams()
		p.Rounds = 100
		var prev *RepCodeResult
		for _, workers := range []int{1, 4} {
			cfg := core.DefaultConfig()
			cfg.Backend = core.BackendTrajectory
			q := p
			q.Workers = workers
			res, err := RunRepCode(cfg, q)
			if err != nil {
				t.Fatal(err)
			}
			if prev == nil {
				prev = res
				continue
			}
			if res.Unprotected != prev.Unprotected || res.Uncorrected != prev.Uncorrected || res.Protected != prev.Protected {
				t.Fatalf("rates differ across worker counts: %+v vs %+v", prev, res)
			}
		}
	})
}

func TestRepCodeNineQubitsRunsOnTrajectoryOnly(t *testing.T) {
	// Five data qubits (9 total) sit past the density backend's memory
	// wall but run on the trajectory backend.
	p := DefaultRepCodeParams()
	p.DataQubits = 5
	p.Rounds = 60
	p.WaitCycles = 800

	cfg := core.DefaultConfig()
	if _, err := RunRepCode(cfg, p); err == nil {
		t.Fatal("9-qubit repetition code must fail on the density backend")
	}

	cfg.Backend = core.BackendTrajectory
	res, err := RunRepCode(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"unprotected": res.Unprotected,
		"uncorrected": res.Uncorrected,
		"protected":   res.Protected,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s logical error %v outside [0,1]", name, v)
		}
	}
	if res.PhysicalP <= 0 {
		t.Errorf("analytic decay probability = %v, want > 0", res.PhysicalP)
	}
	// Sanity: the bare qubit decays at roughly the analytic rate here too.
	if res.Unprotected < res.PhysicalP*0.5 || res.Unprotected > res.PhysicalP*1.5+0.05 {
		t.Errorf("bare error %v far from analytic %v", res.Unprotected, res.PhysicalP)
	}
}

func TestRepCodeDistanceFiveSyndromeDecode(t *testing.T) {
	// Deterministic check of the generic decoder: on a noiseless
	// 9-qubit machine each injected single-qubit X error must be
	// corrected by its matched syndrome pattern.
	for _, inject := range []string{"", "q0", "q1", "q2", "q3", "q4"} {
		cfg := core.DefaultConfig()
		cfg.Backend = core.BackendTrajectory
		cfg.NumQubits = 9
		cfg.Qubit = make([]qphys.QubitParams, 9) // noiseless
		cfg.Readout.NoiseSigma = 0
		m, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := RepCodeParams{DataQubits: 5, Rounds: 1, WaitCycles: 8, InitCycles: 40, MeasureCycles: 300}
		if err := m.RunAssembly(repCodeProgram(p, inject, true)); err != nil {
			t.Fatalf("inject %q: %v", inject, err)
		}
		// r13 counts logical errors: the correction must leave |1⟩_L.
		if errs := m.Controller.Regs[13]; errs != 0 {
			t.Errorf("inject %q: logical error after correction", inject)
		}
	}
}

func TestRepCodeRejectsEvenDistance(t *testing.T) {
	p := DefaultRepCodeParams()
	p.DataQubits = 4
	if _, err := RunRepCode(core.DefaultConfig(), p); err == nil {
		t.Error("even DataQubits must fail (majority vote needs odd)")
	}
}
