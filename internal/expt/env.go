package expt

// env.go promotes the sweep engine's per-call caches to caller-controlled
// lifetime. Every experiment entry point is a method on Env; the plain
// RunX functions construct a fresh Env per call (the historical per-sweep
// behaviour), while a long-lived caller — the batch experiment service in
// internal/service — holds one Env for its whole life so that:
//
//   - each distinct program text assembles exactly once per Env, not once
//     per request (programCache), and the resulting *isa.Program pointer
//     is stable, which is what keys the per-machine compiled-schedule
//     memo (core.Machine.ReplayCache) across requests;
//   - machines are pooled across requests, not just across the points of
//     one sweep: construction (waveform synthesis, LUT upload, MDU
//     calibration) is paid once per (config, worker) instead of once per
//     request.
//
// Sharing machines across requests is only sound because of two standing
// invariants. First, Machine.ResetState(seed) returns a pooled machine
// to a state bit-identical to a fresh core.New with that seed, so which
// pool (or no pool) served a sweep point can never change a result.
// Second, pools are sharded by the full machine configuration *minus the
// seed* (envKey): a request only ever receives a machine built from a
// config identical to its own, and the seed — the one field requests
// legitimately vary — is applied per point via ResetState. Custom LUT
// uploads and µop definitions survive pooling (see Machine.ResetState);
// experiments that customize the machine (Rabi) re-apply the
// customization unconditionally on every point, and standard-library
// programs never address the spare entries, so a machine previously used
// by Rabi still behaves bit-identically to fresh for every other
// experiment.

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"quma/internal/core"
	"quma/internal/replay"
)

// Env is a shared experiment execution environment: an assembly cache
// plus machine pools, with lifetime controlled by the caller. The zero
// value is not usable; construct with NewEnv. All methods are safe for
// concurrent use — concurrent experiments draw disjoint machines from
// the pools and results are bit-identical to serial execution.
//
// Every experiment method takes a context.Context as its first
// parameter and honors it mid-sweep: cancellation or deadline expiry
// preempts the sweep between points and, inside the replay engine,
// within a bounded number of shots, returning a wrapped ctx error and
// no result. A method that returns a non-nil result was never
// preempted, so its result is bit-identical to an uncancellable run —
// cancellation can only abort, never perturb. The ctx-lint test
// (ctxlint_test.go) rejects any new Env method that omits the context.
type Env struct {
	progs *programCache

	// faults, when non-nil, is copied into every machine pool the Env
	// creates — the fault-injection hook points (chaos tests only).
	faults *FaultHooks

	mu    sync.Mutex
	pools map[string]*machinePool
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{progs: newProgramCache(), pools: make(map[string]*machinePool)}
}

// SetFaults installs fault-injection hooks (see FaultHooks) on the Env
// and on every pool it has already created. It must not be called while
// experiments are running — install the hooks before the first request
// (the chaos suite passes them at server construction).
func (e *Env) SetFaults(h *FaultHooks) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.faults = h
	for _, p := range e.pools {
		p.faults = h
	}
}

// envKey is the machine-pool shard key: the complete machine
// configuration with the seed zeroed. Two configs with the same key
// build bit-identical machines up to ResetState(seed), which is exactly
// the condition for sharing a pool.
func envKey(cfg core.Config) string {
	c := cfg
	c.Seed = 0
	return fmt.Sprintf("%v", c)
}

// maxPoolShards bounds the pool map: requests vary configs freely (every
// distinct t1_sec, scale set, backend... is a new shard), so a
// service-lifetime Env flushes all shards on overflow. Machines held
// only by a flushed sync.Pool become garbage; the next request of any
// config pays one construction again. Determinism is untouched — pools
// only ever amortize cost.
const maxPoolShards = 64

// poolFor returns the (possibly shared) machine pool for cfg, creating
// it on first use.
func (e *Env) poolFor(cfg core.Config) *machinePool {
	key := envKey(cfg)
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.pools[key]
	if !ok {
		if len(e.pools) >= maxPoolShards {
			e.pools = make(map[string]*machinePool)
		}
		p = newMachinePool(cfg)
		p.faults = e.faults
		e.pools[key] = p
	}
	return p
}

// ProgramParams configures a raw-assembly shot run: the service's (and
// the conformance suite's) escape hatch from the fixed experiment menu.
type ProgramParams struct {
	// Source is the combined classical + QuMIS assembly text.
	Source string
	// Shots is the number of engine shots (must be positive).
	Shots int
	// Replay selects the shot-replay engine mode ("" = auto). Results
	// are bit-identical for any value, as for every experiment.
	Replay replay.Mode
	// ShotWorkers bounds the shot-shard parallelism when Shots exceeds
	// ShotShardSize (0 = one worker per CPU). The shard plan is a pure
	// function of Shots, so results are bit-identical for any value —
	// see shotshard.go.
	ShotWorkers int
	// BatchLanes, when > 1, runs groups of up to that many equal-size
	// shot shards in lockstep on the batched SoA executor (one lane per
	// shard — same seeds, same streams). Results are bit-identical for
	// any value: the knob trades nothing but throughput, exactly like
	// ShotWorkers.
	BatchLanes int
}

// ProgramResult summarizes a raw-assembly shot run. Everything in it is
// derived from the engine's per-shot measurement stream, which is
// bit-identical across replay modes, worker counts, and machine pooling.
type ProgramResult struct {
	Params ProgramParams `json:"params"`
	// Shots echoes the executed shot count.
	Shots int `json:"shots"`
	// MDPerShot is the largest number of per-qubit measurements any shot
	// produced. Feedback programs may measure different counts per shot
	// (MDVaries reports that); replay-safe programs always measure
	// MDPerShot times.
	MDPerShot int `json:"md_per_shot"`
	// MDVaries reports that shots disagreed on measurement count or
	// addressed qubits (only possible for replay-unsafe programs): the
	// positional Ones columns then mix measurement contexts and only
	// StreamHash summarizes the stream faithfully.
	MDVaries bool `json:"md_varies,omitempty"`
	// Qubits[i] is the qubit addressed by measurement i of the first
	// shot that reached position i.
	Qubits []int `json:"qubits,omitempty"`
	// Ones[i] counts shots whose i-th measurement discriminated |1⟩.
	Ones []int `json:"ones,omitempty"`
	// StreamHash is an FNV-1a hash over the complete (shot, index, qubit,
	// result) measurement stream — a strong witness for bit-identity
	// between two runs (column sums alone could coincide).
	StreamHash uint64 `json:"stream_hash"`
	// Replayed/Safe/Compiled report what the engine did (performance
	// telemetry; never affects the measured results).
	Replayed int  `json:"replayed"`
	Safe     bool `json:"safe"`
	Compiled bool `json:"compiled"`
}

// RunProgram assembles and runs a raw program p.Shots times, collecting
// the engine's measurement stream. Up to ShotShardSize shots run on one
// pooled machine seeded with cfg.Seed (the legacy single stream); larger
// shot counts split across the fixed shard plan, one pooled machine per
// shard seeded DeriveSeed(cfg.Seed, shard), merged in shard order — see
// shotshard.go. The program must halt and must not rely on
// classical register contents surviving into the caller (replayed shots
// perform no classical execution); results come exclusively from the
// measurement stream.
func (e *Env) RunProgram(ctx context.Context, cfg core.Config, p ProgramParams) (*ProgramResult, error) {
	if p.Shots <= 0 {
		return nil, fmt.Errorf("expt: program Shots must be positive, got %d", p.Shots)
	}
	prog, err := e.progs.get(p.Source)
	if err != nil {
		return nil, err
	}
	res := &ProgramResult{Params: p, Shots: p.Shots}
	h := fnv.New64a()
	pool := e.poolFor(cfg)
	stats, err := runShotJobSharded(ctx, pool, cfg.Seed, prog, p.Shots, ShotShardPlan(p.Shots), p.ShotWorkers, p.BatchLanes, p.Replay, nil,
		func(shot int, md []replay.MD) {
			if shot > 0 && len(md) != res.MDPerShot {
				res.MDVaries = true
			}
			for i, r := range md {
				if i == len(res.Ones) {
					// A shot reached a position no earlier shot did
					// (feedback programs may branch around measurements).
					res.Qubits = append(res.Qubits, r.Qubit)
					res.Ones = append(res.Ones, 0)
					if shot > 0 {
						res.MDVaries = true
					}
				} else if res.Qubits[i] != r.Qubit {
					res.MDVaries = true
				}
				res.Ones[i] += r.Result
				h.Write([]byte{byte(r.Qubit), byte(r.Result)})
			}
			if len(md) > res.MDPerShot {
				res.MDPerShot = len(md)
			}
			// Shot separator: streams that differ only in shot boundaries
			// must hash differently.
			h.Write([]byte{0xFF})
		}, nil)
	if err != nil {
		return nil, err
	}
	res.Replayed = stats.Replayed
	res.Safe = stats.Safe
	res.Compiled = stats.Compiled
	res.StreamHash = h.Sum64()
	return res, nil
}

// RunProgram runs a raw-assembly shot program on a fresh environment
// with no cancellation (context.Background()), preserving the
// historical entry-point shape.
func RunProgram(cfg core.Config, p ProgramParams) (*ProgramResult, error) {
	return NewEnv().RunProgram(context.Background(), cfg, p)
}
