package expt

// Cancellation determinism: a context can abort an experiment, never
// perturb one. The tests here pin the three halves of that contract —
// a canceled experiment returns a wrapped ctx error and no result; a
// pool that served a canceled sweep stays sound (ResetState makes its
// machines bit-identical to fresh ones for the next caller); and an
// experiment that completes while a concurrent duplicate is canceled is
// bit-identical to an uncancellable run. CI runs this file under -race.

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"quma/internal/core"
)

// cancelParams is a sweep big enough that randomized cancellation lands
// at many different interior points.
func cancelParams(workers int) SweepParams {
	p := DefaultSweepParams()
	p.Rounds = 40
	p.DelaysCycles = []int{0, 200, 400, 800, 1200, 1600, 2400, 3200}
	p.Workers = workers
	return p
}

// sameT1 compares two T1 results up to the worker counts echoed in
// Params — the fields the determinism contract explicitly excludes.
func sameT1(a, b *T1Result) bool {
	ac, bc := *a, *b
	ac.Params.Workers, bc.Params.Workers = 0, 0
	ac.Params.ShotWorkers, bc.Params.ShotWorkers = 0, 0
	return reflect.DeepEqual(ac, bc)
}

func TestPreCanceledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewEnv().RunT1(ctx, core.DefaultConfig(), cancelParams(1))
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, not errors.Is context.Canceled", err)
	}
}

// TestRandomizedMidSweepCancelNeverLeaksPartialResults cancels the same
// sweep at a ladder of randomized interior moments, serial and
// parallel: every preempted run must return (nil, wrapped ctx error);
// a run the cancel misses entirely must be bit-identical to baseline.
func TestRandomizedMidSweepCancelNeverLeaksPartialResults(t *testing.T) {
	cfg := core.DefaultConfig()
	baseline, err := RunT1(cfg, cancelParams(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for trial := 0; trial < 6; trial++ {
			// Deterministically "random" cancel delays spread across the
			// sweep's runtime (sub-ms to tens of ms).
			delay := time.Duration(DeriveSeed2(99, workers, trial)%20000) * time.Microsecond
			ctx, cancel := context.WithTimeout(context.Background(), delay)
			res, err := NewEnv().RunT1(ctx, cfg, cancelParams(workers))
			cancel()
			if err == nil {
				// The cancel landed after completion; the result must be
				// untouched by the racing deadline.
				if !sameT1(res, baseline) {
					t.Fatalf("workers=%d trial=%d: late-cancel result differs from baseline", workers, trial)
				}
				continue
			}
			if res != nil {
				t.Fatalf("workers=%d trial=%d: preempted run returned a result alongside %v", workers, trial, err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("workers=%d trial=%d: err = %v, not a wrapped ctx error", workers, trial, err)
			}
		}
	}
}

// TestPoolStaysSoundAfterCancel interrupts a sweep on a shared Env,
// then reruns the full experiment on the same Env — its pooled machines
// served the canceled sweep and were returned mid-state — and demands
// bit-identity with a fresh-Env baseline (the ResetState guarantee).
func TestPoolStaysSoundAfterCancel(t *testing.T) {
	cfg := core.DefaultConfig()
	baseline, err := RunT1(cfg, cancelParams(2))
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	if res, err := env.RunT1(ctx, cfg, cancelParams(2)); err == nil {
		// The cancel can lose the race on a fast machine; the run is then
		// complete and must already match baseline.
		if !sameT1(res, baseline) {
			t.Fatal("uncanceled first run differs from baseline")
		}
	}
	res, err := env.RunT1(context.Background(), cfg, cancelParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if !sameT1(res, baseline) {
		t.Fatal("rerun on a pool that served a canceled sweep differs from fresh baseline")
	}
}

// shardedCancelParams is a sweep whose points each exceed ShotShardSize
// (2000 rounds → 8 shards per point), so randomized cancellation lands
// inside the sharded shot loops, not just between sweep points.
func shardedCancelParams(workers, shotWorkers int) SweepParams {
	p := DefaultSweepParams()
	p.Rounds = 2000
	p.InitCycles = 400
	p.DelaysCycles = []int{0, 400, 800}
	p.Workers = workers
	p.ShotWorkers = shotWorkers
	return p
}

// TestShardedMidSweepCancelNeverLeaksPartialResults is the sharded twin
// of the randomized cancel ladder: deadlines land inside the per-shard
// replay loops, siblings abort via the shard context, and every
// preempted run must return (nil, wrapped ctx error) while a run the
// deadline misses must be bit-identical to baseline.
func TestShardedMidSweepCancelNeverLeaksPartialResults(t *testing.T) {
	cfg := core.DefaultConfig()
	baseline, err := RunT1(cfg, shardedCancelParams(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, shotWorkers := range []int{2, 0} {
		for trial := 0; trial < 5; trial++ {
			delay := time.Duration(DeriveSeed2(7, shotWorkers, trial)%30000) * time.Microsecond
			ctx, cancel := context.WithTimeout(context.Background(), delay)
			res, err := NewEnv().RunT1(ctx, cfg, shardedCancelParams(2, shotWorkers))
			cancel()
			if err == nil {
				if !sameT1(res, baseline) {
					t.Fatalf("shotWorkers=%d trial=%d: late-cancel result differs from baseline", shotWorkers, trial)
				}
				continue
			}
			if res != nil {
				t.Fatalf("shotWorkers=%d trial=%d: preempted run returned a result alongside %v", shotWorkers, trial, err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("shotWorkers=%d trial=%d: err = %v, not a wrapped ctx error", shotWorkers, trial, err)
			}
		}
	}
}

// TestPoolStaysSoundAfterShardedCancel preempts a sharded sweep on a
// shared Env — its pooled machines were mid-shard when the context died
// — then reruns on the same Env and demands bit-identity with a
// fresh-Env baseline.
func TestPoolStaysSoundAfterShardedCancel(t *testing.T) {
	cfg := core.DefaultConfig()
	baseline, err := RunT1(cfg, shardedCancelParams(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	if res, err := env.RunT1(ctx, cfg, shardedCancelParams(2, 2)); err == nil {
		if !sameT1(res, baseline) {
			t.Fatal("uncanceled first run differs from baseline")
		}
	}
	res, err := env.RunT1(context.Background(), cfg, shardedCancelParams(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !sameT1(res, baseline) {
		t.Fatal("rerun on a pool that served a canceled sharded sweep differs from fresh baseline")
	}
}

// TestConcurrentDuplicateSurvivesCancelOfTwin runs two identical
// experiments concurrently on one Env, cancels one mid-flight, and
// asserts the survivor is bit-identical to baseline — cancellation of a
// neighbor sharing pools and programs must not perturb anyone else.
func TestConcurrentDuplicateSurvivesCancelOfTwin(t *testing.T) {
	cfg := core.DefaultConfig()
	baseline, err := RunT1(cfg, cancelParams(2))
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The canceled twin: any outcome is legal except a wrong result.
		if res, err := env.RunT1(ctx, cfg, cancelParams(2)); err == nil {
			if !sameT1(res, baseline) {
				t.Error("twin escaped cancellation with a perturbed result")
			}
		} else if res != nil {
			t.Error("canceled twin returned a result alongside its error")
		}
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	res, err := env.RunT1(context.Background(), cfg, cancelParams(2))
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !sameT1(res, baseline) {
		t.Fatal("surviving duplicate differs from baseline")
	}
}
