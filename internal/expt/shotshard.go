package expt

// shotshard.go is the shot-sharding layer of the sweep engine:
// parallelism *inside* one sweep point. A large shot range is split by a
// fixed shard plan — a pure function of the shot count, never of the
// worker count, exactly like chunkRounds one level up — and every shard
// runs on its own pooled machine, seeded with DeriveSeed(pointSeed,
// shardIndex), through its own replay.Run invocation (lead/detect shots
// plus its slice of the replay loop). Results merge in shard order, so
// the outcome is bit-identical for any ShotWorkers value given the same
// plan. The contract, extending the sweep determinism contract:
//
//   - The shard plan depends only on the total shot count (auto
//     experiments: ShotShardPlan) or on the experiment's own fixed
//     chunking (repcode/phasecode: chunkRounds(rounds, 50), which this
//     layer inherited unchanged — those seeds and chunk sizes predate
//     sharding and stay bit-identical to every earlier release).
//   - Shard k's machine runs in the ResetState(DeriveSeed(pointSeed, k))
//     condition. This is a different PRNG stream layout than the single
//     stream a pre-sharding engine consumed, so crossing the auto-shard
//     threshold changes sampled results (never their statistics — the
//     conformance suite pins sharded vs unsharded agreement at 5σ).
//     Below the threshold the legacy single stream is kept bit-for-bit.
//   - Per-shot callbacks are buffered per shard and delivered after the
//     last shard completes, in shard order, with global shot indices
//     (the engine numbers each shard's shots from its global offset via
//     replay.Options.BaseShot) — so order-sensitive consumers (the
//     RunProgram stream hash) observe one deterministic merged stream.
//   - Cancellation and failure: the first failing shard cancels its
//     siblings' context (they abort within the engine's bounded-
//     staleness window); a shard panic is recovered into *PanicError at
//     the shard boundary (its machine is discarded, not pooled — the
//     runShotJob unwind rule). The job's error is the outer ctx error
//     if the caller was preempted, else the lowest-index non-ctx shard
//     error — so a panic is never masked by the sibling aborts it
//     caused, and the service taxonomy (internal vs canceled) is stable
//     under sharding.
//   - Lane batching (BatchLanes > 1): consecutive equal-size shards may
//     run as one lockstep batch through replay.RunBatch — one compiled
//     schedule, per-lane machines/seeds/PRNG streams (lane k IS shard
//     k: same DeriveSeed(pointSeed, k), same BaseShot, same buffered
//     stream slot). Because the plan, the seeds, and the merge order
//     are untouched, changing the lane grouping can never change result
//     bytes — batching is a throughput knob with the same neutrality
//     contract as ShotWorkers. A panic inside a batch discards every
//     machine of the group (the unwind passes all the puts) and cancels
//     sibling groups; a group error is attributed to its first shard
//     index for the lowest-index selection rule.

import (
	"context"
	"errors"
	"fmt"

	"quma/internal/core"
	"quma/internal/isa"
	"quma/internal/replay"
)

// ShotShardSize is the fixed shard size of the automatic shot-shard
// plan. Each shard pays the engine's lead/detect shots (three
// full-pipeline executions) before replaying its remainder, so the size
// balances that per-shard overhead (~6% at 256 for a compiled repcode
// shot) against shard-count parallelism and against test affordability
// (exceeding the threshold must not require huge shot counts).
const ShotShardSize = 256

// ShotShardPlan returns the automatic shard plan for a shot count: nil
// when shots ≤ ShotShardSize — the job then runs as a single legacy
// stream, machine seeded with the point seed itself, bit-identical to
// the pre-sharding engine — and fixed ShotShardSize chunks above it.
// The plan is a pure function of shots: results are bit-identical for
// any ShotWorkers value because the plan, the per-shard seeds, and the
// shard merge order never depend on scheduling.
func ShotShardPlan(shots int) []int {
	if shots <= ShotShardSize {
		return nil
	}
	return chunkRounds(shots, ShotShardSize)
}

// shardShots returns the shot count of shard k of a plan, treating a
// nil plan as one shard holding the whole range.
func shardShots(plan []int, k, total int) int {
	if plan == nil {
		return total
	}
	return plan[k]
}

// shardCount returns the number of shards of a plan (1 for nil: the
// legacy single stream).
func shardCount(plan []int) int {
	if plan == nil {
		return 1
	}
	return len(plan)
}

// shardStream buffers one shard's per-shot measurement streams: the
// flattened MD records plus per-shot lengths, appended live by the
// shard's engine callback and replayed to the caller's OnShot after all
// shards complete.
type shardStream struct {
	md   []replay.MD
	lens []int
}

// LaneGroups partitions the shards of a plan into lockstep batch
// groups: maximal runs of consecutive equal-size shards, sliced to at
// most lanes members each. Each group is a [start, end) shard-index
// range. lanes <= 1 yields singleton groups (the scalar per-shard
// path). Grouping is a pure function of (plan, lanes) — but results do
// not depend on it at all: every lane of a batch is bit-identical to
// its scalar shard, so any grouping produces the same bytes.
func LaneGroups(plan []int, lanes int) [][2]int {
	groups := make([][2]int, 0, len(plan))
	if lanes < 1 {
		lanes = 1
	}
	for k := 0; k < len(plan); {
		end := k + 1
		for end < len(plan) && plan[end] == plan[k] && end-k < lanes {
			end++
		}
		groups = append(groups, [2]int{k, end})
		k = end
	}
	return groups
}

// runShotJobSharded executes one sweep point with its shot range split
// across the shard plan: shard k runs plan[k] shots on its own pooled
// machine seeded DeriveSeed(pointSeed, k), up to shotWorkers shards
// concurrently (0 = one per CPU), and the per-shot streams, engine
// stats, and finishShard extractions merge in shard order. A nil plan
// is the legacy unsharded path: one machine seeded pointSeed, live
// callback delivery, bit-identical to the pre-sharding engine.
//
// batchLanes > 1 opts eligible shards into lockstep batching: groups of
// consecutive equal-size shards (LaneGroups) run as one replay.RunBatch
// invocation — per-lane machines, seeds, and streams unchanged — with
// up to shotWorkers groups in flight instead of shards. Modes without a
// batched executor (off, interp) ignore the knob. Result bytes are
// identical for every batchLanes value by the per-lane bit-identity
// contract.
//
// setup runs on every shard's machine (the pooled-machine rule for
// machine customization). onShot, when non-nil, receives every shot in
// global order after the run completes; the fault-injection Shot hook,
// by contrast, fires live inside each shard's loop (runShotJob wraps
// the per-shard callback), so injected panics and slowness land
// mid-shard. finishShard runs per shard, with that shard's machine
// still in hand, as the shard completes — callers must write only
// shard-indexed slots from it. The returned stats are the shard-order
// merge (replay.Stats.Merge).
func runShotJobSharded(ctx context.Context, mp *machinePool, pointSeed int64, prog *isa.Program, shots int, plan []int, shotWorkers, batchLanes int, mode replay.Mode,
	setup func(*core.Machine) error,
	onShot func(int, []replay.MD),
	finishShard func(shard int, m *core.Machine, stats replay.Stats) error) (replay.Stats, error) {
	var merged replay.Stats
	if plan == nil || len(plan) == 1 {
		// Single stream: nil plan keeps the legacy seed (pointSeed);
		// a one-shard plan uses the sharded seed rule. Either way the
		// callback is live — order is already global.
		seed := pointSeed
		if plan != nil {
			seed = DeriveSeed(pointSeed, 0)
		}
		err := runShotJob(ctx, mp, seed, prog, shots, 0, mode, setup, onShot,
			func(m *core.Machine, st replay.Stats) error {
				merged = st
				if finishShard != nil {
					return finishShard(0, m, st)
				}
				return nil
			})
		return merged, err
	}
	if total := sum(plan); total != shots {
		return merged, fmt.Errorf("expt: shard plan covers %d shots, job has %d", total, shots)
	}
	starts := make([]int, len(plan))
	for k := 1; k < len(plan); k++ {
		starts[k] = starts[k-1] + plan[k-1]
	}
	// The first failing shard cancels its siblings: they abort at the
	// engine's next bounded-staleness check instead of finishing work
	// whose job already failed.
	sctx, cancelShards := context.WithCancel(ctx)
	defer cancelShards()
	lanes := batchLanes
	if mode == replay.ModeOff || mode == replay.ModeInterp {
		// No batched executor for these modes: singleton groups keep the
		// per-shard scheduling (one shard per pool slot).
		lanes = 1
	}
	groups := LaneGroups(plan, lanes)
	bufs := make([]shardStream, len(plan))
	statsv := make([]replay.Stats, len(plan))
	errs := make([]error, len(plan))
	runShard := func(k int) error {
		var s shardStream
		var cb func(int, []replay.MD)
		if onShot != nil {
			s.lens = make([]int, 0, plan[k])
			cb = func(_ int, md []replay.MD) {
				s.md = append(s.md, md...)
				s.lens = append(s.lens, len(md))
			}
		}
		err := runShotJob(sctx, mp, DeriveSeed(pointSeed, k), prog, plan[k], starts[k], mode, setup, cb,
			func(m *core.Machine, st replay.Stats) error {
				statsv[k] = st
				if finishShard != nil {
					return finishShard(k, m, st)
				}
				return nil
			})
		if err == nil {
			bufs[k] = s
		}
		return err
	}
	// runBatchGroup runs shards [g0, g1) as one lockstep batch: lane j is
	// shard g0+j, with its sharded seed, global BaseShot, buffered stream
	// slot, and live fault hook — exactly the scalar shard's wiring. The
	// machine returns are deliberately not deferred (the runShotJob
	// unwind rule): a panic anywhere in the batch discards every machine
	// of the group.
	runBatchGroup := func(g0, g1 int) error {
		n := g1 - g0
		ms := make([]*core.Machine, 0, n)
		bl := make([]replay.BatchLane, 0, n)
		ss := make([]shardStream, n)
		for k := g0; k < g1; k++ {
			m, err := mp.get(DeriveSeed(pointSeed, k))
			if err != nil {
				for _, pm := range ms {
					mp.put(pm)
				}
				return err
			}
			ms = append(ms, m)
			if setup != nil {
				if err := setup(m); err != nil {
					for _, pm := range ms {
						mp.put(pm)
					}
					return err
				}
			}
			var cb func(int, []replay.MD)
			if onShot != nil {
				s := &ss[k-g0]
				s.lens = make([]int, 0, plan[k])
				cb = func(_ int, md []replay.MD) {
					s.md = append(s.md, md...)
					s.lens = append(s.lens, len(md))
				}
			}
			if h := mp.faults; h != nil && h.Shot != nil {
				inner := cb
				cb = func(shot int, md []replay.MD) {
					if inner != nil {
						inner(shot, md)
					}
					h.Shot(shot)
				}
			}
			bl = append(bl, replay.BatchLane{M: m, BaseShot: starts[k], OnShot: cb})
		}
		sts, err := replay.RunBatch(sctx, prog, bl, plan[g0], mode)
		if err == nil {
			for j := 0; j < n; j++ {
				statsv[g0+j] = sts[j]
				if finishShard != nil {
					if err = finishShard(g0+j, ms[j], sts[j]); err != nil {
						break
					}
				}
			}
		}
		for _, m := range ms {
			mp.put(m)
		}
		if err != nil {
			return err
		}
		for j := 0; j < n; j++ {
			bufs[g0+j] = ss[j]
		}
		return nil
	}
	poolErr := runPool(sctx, len(groups), shotWorkers, func(gi int) error {
		g0, g1 := groups[gi][0], groups[gi][1]
		// Recover panics here, not only in runPool, so the recovery
		// reaches cancelShards: a panicking shard must abort its
		// siblings exactly like an erroring one. The machine discard
		// happens regardless — the panic unwinds past the puts.
		err := recoverJob(func(int) error {
			if g1-g0 == 1 {
				return runShard(g0)
			}
			return runBatchGroup(g0, g1)
		}, gi)
		if err != nil {
			errs[g0] = err
			cancelShards()
		}
		return err
	})
	// Error selection: the caller's own preemption wins (taxonomy:
	// canceled/deadline), then the lowest-index shard error that is NOT
	// itself a ctx abort — sibling shards canceled by a panicking or
	// failing shard must not mask the root cause — then any error.
	if err := ctx.Err(); err != nil {
		return merged, fmt.Errorf("expt: sharded shot job preempted: %w", err)
	}
	var firstErr error
	for _, e := range errs {
		if e != nil && !errors.Is(e, context.Canceled) && !errors.Is(e, context.DeadlineExceeded) {
			firstErr = e
			break
		}
	}
	if firstErr == nil {
		for _, e := range errs {
			if e != nil {
				firstErr = e
				break
			}
		}
	}
	if firstErr == nil {
		firstErr = poolErr
	}
	if firstErr != nil {
		return merged, firstErr
	}
	for k := range statsv {
		merged.Merge(statsv[k])
	}
	// Deliver the buffered streams in shard order with global indices:
	// one deterministic merged stream, independent of shard scheduling.
	if onShot != nil {
		for k := range bufs {
			off := 0
			for i, n := range bufs[k].lens {
				onShot(starts[k]+i, bufs[k].md[off:off+n:off+n])
				off += n
			}
		}
	}
	return merged, nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
