package expt

// shotshard.go is the shot-sharding layer of the sweep engine:
// parallelism *inside* one sweep point. A large shot range is split by a
// fixed shard plan — a pure function of the shot count, never of the
// worker count, exactly like chunkRounds one level up — and every shard
// runs on its own pooled machine, seeded with DeriveSeed(pointSeed,
// shardIndex), through its own replay.Run invocation (lead/detect shots
// plus its slice of the replay loop). Results merge in shard order, so
// the outcome is bit-identical for any ShotWorkers value given the same
// plan. The contract, extending the sweep determinism contract:
//
//   - The shard plan depends only on the total shot count (auto
//     experiments: ShotShardPlan) or on the experiment's own fixed
//     chunking (repcode/phasecode: chunkRounds(rounds, 50), which this
//     layer inherited unchanged — those seeds and chunk sizes predate
//     sharding and stay bit-identical to every earlier release).
//   - Shard k's machine runs in the ResetState(DeriveSeed(pointSeed, k))
//     condition. This is a different PRNG stream layout than the single
//     stream a pre-sharding engine consumed, so crossing the auto-shard
//     threshold changes sampled results (never their statistics — the
//     conformance suite pins sharded vs unsharded agreement at 5σ).
//     Below the threshold the legacy single stream is kept bit-for-bit.
//   - Per-shot callbacks are buffered per shard and delivered after the
//     last shard completes, in shard order, with global shot indices
//     (the engine numbers each shard's shots from its global offset via
//     replay.Options.BaseShot) — so order-sensitive consumers (the
//     RunProgram stream hash) observe one deterministic merged stream.
//   - Cancellation and failure: the first failing shard cancels its
//     siblings' context (they abort within the engine's bounded-
//     staleness window); a shard panic is recovered into *PanicError at
//     the shard boundary (its machine is discarded, not pooled — the
//     runShotJob unwind rule). The job's error is the outer ctx error
//     if the caller was preempted, else the lowest-index non-ctx shard
//     error — so a panic is never masked by the sibling aborts it
//     caused, and the service taxonomy (internal vs canceled) is stable
//     under sharding.

import (
	"context"
	"errors"
	"fmt"

	"quma/internal/core"
	"quma/internal/isa"
	"quma/internal/replay"
)

// ShotShardSize is the fixed shard size of the automatic shot-shard
// plan. Each shard pays the engine's lead/detect shots (three
// full-pipeline executions) before replaying its remainder, so the size
// balances that per-shard overhead (~6% at 256 for a compiled repcode
// shot) against shard-count parallelism and against test affordability
// (exceeding the threshold must not require huge shot counts).
const ShotShardSize = 256

// ShotShardPlan returns the automatic shard plan for a shot count: nil
// when shots ≤ ShotShardSize — the job then runs as a single legacy
// stream, machine seeded with the point seed itself, bit-identical to
// the pre-sharding engine — and fixed ShotShardSize chunks above it.
// The plan is a pure function of shots: results are bit-identical for
// any ShotWorkers value because the plan, the per-shard seeds, and the
// shard merge order never depend on scheduling.
func ShotShardPlan(shots int) []int {
	if shots <= ShotShardSize {
		return nil
	}
	return chunkRounds(shots, ShotShardSize)
}

// shardShots returns the shot count of shard k of a plan, treating a
// nil plan as one shard holding the whole range.
func shardShots(plan []int, k, total int) int {
	if plan == nil {
		return total
	}
	return plan[k]
}

// shardCount returns the number of shards of a plan (1 for nil: the
// legacy single stream).
func shardCount(plan []int) int {
	if plan == nil {
		return 1
	}
	return len(plan)
}

// shardStream buffers one shard's per-shot measurement streams: the
// flattened MD records plus per-shot lengths, appended live by the
// shard's engine callback and replayed to the caller's OnShot after all
// shards complete.
type shardStream struct {
	md   []replay.MD
	lens []int
}

// runShotJobSharded executes one sweep point with its shot range split
// across the shard plan: shard k runs plan[k] shots on its own pooled
// machine seeded DeriveSeed(pointSeed, k), up to shotWorkers shards
// concurrently (0 = one per CPU), and the per-shot streams, engine
// stats, and finishShard extractions merge in shard order. A nil plan
// is the legacy unsharded path: one machine seeded pointSeed, live
// callback delivery, bit-identical to the pre-sharding engine.
//
// setup runs on every shard's machine (the pooled-machine rule for
// machine customization). onShot, when non-nil, receives every shot in
// global order after the run completes; the fault-injection Shot hook,
// by contrast, fires live inside each shard's loop (runShotJob wraps
// the per-shard callback), so injected panics and slowness land
// mid-shard. finishShard runs per shard, with that shard's machine
// still in hand, as the shard completes — callers must write only
// shard-indexed slots from it. The returned stats are the shard-order
// merge (replay.Stats.Merge).
func runShotJobSharded(ctx context.Context, mp *machinePool, pointSeed int64, prog *isa.Program, shots int, plan []int, shotWorkers int, mode replay.Mode,
	setup func(*core.Machine) error,
	onShot func(int, []replay.MD),
	finishShard func(shard int, m *core.Machine, stats replay.Stats) error) (replay.Stats, error) {
	var merged replay.Stats
	if plan == nil || len(plan) == 1 {
		// Single stream: nil plan keeps the legacy seed (pointSeed);
		// a one-shard plan uses the sharded seed rule. Either way the
		// callback is live — order is already global.
		seed := pointSeed
		if plan != nil {
			seed = DeriveSeed(pointSeed, 0)
		}
		err := runShotJob(ctx, mp, seed, prog, shots, 0, mode, setup, onShot,
			func(m *core.Machine, st replay.Stats) error {
				merged = st
				if finishShard != nil {
					return finishShard(0, m, st)
				}
				return nil
			})
		return merged, err
	}
	if total := sum(plan); total != shots {
		return merged, fmt.Errorf("expt: shard plan covers %d shots, job has %d", total, shots)
	}
	starts := make([]int, len(plan))
	for k := 1; k < len(plan); k++ {
		starts[k] = starts[k-1] + plan[k-1]
	}
	// The first failing shard cancels its siblings: they abort at the
	// engine's next bounded-staleness check instead of finishing work
	// whose job already failed.
	sctx, cancelShards := context.WithCancel(ctx)
	defer cancelShards()
	bufs := make([]shardStream, len(plan))
	statsv := make([]replay.Stats, len(plan))
	errs := make([]error, len(plan))
	poolErr := runPool(sctx, len(plan), shotWorkers, func(k int) error {
		// Recover panics here, not only in runPool, so the recovery
		// reaches cancelShards: a panicking shard must abort its
		// siblings exactly like an erroring one. The machine discard
		// happens regardless — the panic unwinds past runShotJob's put.
		err := recoverJob(func(int) error {
			var s shardStream
			var cb func(int, []replay.MD)
			if onShot != nil {
				s.lens = make([]int, 0, plan[k])
				cb = func(_ int, md []replay.MD) {
					s.md = append(s.md, md...)
					s.lens = append(s.lens, len(md))
				}
			}
			err := runShotJob(sctx, mp, DeriveSeed(pointSeed, k), prog, plan[k], starts[k], mode, setup, cb,
				func(m *core.Machine, st replay.Stats) error {
					statsv[k] = st
					if finishShard != nil {
						return finishShard(k, m, st)
					}
					return nil
				})
			if err == nil {
				bufs[k] = s
			}
			return err
		}, k)
		if err != nil {
			errs[k] = err
			cancelShards()
		}
		return err
	})
	// Error selection: the caller's own preemption wins (taxonomy:
	// canceled/deadline), then the lowest-index shard error that is NOT
	// itself a ctx abort — sibling shards canceled by a panicking or
	// failing shard must not mask the root cause — then any error.
	if err := ctx.Err(); err != nil {
		return merged, fmt.Errorf("expt: sharded shot job preempted: %w", err)
	}
	var firstErr error
	for _, e := range errs {
		if e != nil && !errors.Is(e, context.Canceled) && !errors.Is(e, context.DeadlineExceeded) {
			firstErr = e
			break
		}
	}
	if firstErr == nil {
		for _, e := range errs {
			if e != nil {
				firstErr = e
				break
			}
		}
	}
	if firstErr == nil {
		firstErr = poolErr
	}
	if firstErr != nil {
		return merged, firstErr
	}
	for k := range statsv {
		merged.Merge(statsv[k])
	}
	// Deliver the buffered streams in shard order with global indices:
	// one deterministic merged stream, independent of shard scheduling.
	if onShot != nil {
		for k := range bufs {
			off := 0
			for i, n := range bufs[k].lens {
				onShot(starts[k]+i, bufs[k].md[off:off+n:off+n])
				off += n
			}
		}
	}
	return merged, nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
