package expt

import (
	"context"
	"fmt"
	"strings"

	"quma/internal/core"
	"quma/internal/fit"
	"quma/internal/readout"
	"quma/internal/replay"
)

// SweepParams configures a delay-sweep coherence experiment (T1, Ramsey,
// Echo).
type SweepParams struct {
	Qubit int
	// Rounds is the averaging count per delay point.
	Rounds int
	// InitCycles is the per-shot initialization wait.
	InitCycles int
	// DelaysCycles are the swept delays in 5 ns cycles. For phase-
	// coherent pulse trains these should be multiples of 4 cycles (one
	// SSB period).
	DelaysCycles []int
	// MeasureCycles is the MPG duration.
	MeasureCycles int
	// Workers bounds the sweep parallelism (0 = one worker per CPU).
	// Results are identical for any value; see sweep.go.
	Workers int
	// ShotWorkers bounds the shot-shard parallelism inside each delay
	// point when Rounds exceeds ShotShardSize (0 = one worker per CPU).
	// Results are identical for any value; see shotshard.go.
	ShotWorkers int
	// BatchLanes, when > 1, runs groups of up to that many equal-size
	// shot shards in lockstep on the batched SoA executor (one lane per
	// shard — same seeds, same streams). Results are bit-identical for
	// any value; see shotshard.go.
	BatchLanes int
	// Replay selects the shot-replay engine mode: replay.ModeOff,
	// ModeInterp, or ModeCompiled (default auto = compiled). Results are
	// bit-identical for any value — see internal/replay; interp vs
	// compiled is the A/B knob for the per-schedule compiler.
	Replay replay.Mode
}

// DefaultSweepParams returns a 16-point sweep to 60 µs, 200 rounds.
func DefaultSweepParams() SweepParams {
	delays := make([]int, 16)
	for i := range delays {
		delays[i] = i * 800 // 0 .. 60 µs in 4 µs steps
	}
	return SweepParams{Qubit: 0, Rounds: 200, InitCycles: 40000, DelaysCycles: delays, MeasureCycles: 300}
}

// SweepResult holds a fitted delay sweep.
type SweepResult struct {
	Params SweepParams
	// DelaysSec are the delays in seconds.
	DelaysSec []float64
	// Excited is the measured |1⟩ population per delay (readout-
	// uncorrected; the simulated readout is high fidelity).
	Excited []float64
}

// shotProgram emits the per-shot program for one delay point: one
// init-wait, body, measure. The averaging loop lives in the replay
// engine (Shots = Rounds), not in the assembly.
//
// shape: body(delay) must emit the pulses; it receives the delay in
// cycles.
func shotProgram(p SweepParams, delayCycles int, body func(b *strings.Builder, delayCycles int)) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mov r15, %d\n", p.InitCycles)
	fmt.Fprintf(&b, "QNopReg r15\n")
	body(&b, delayCycles)
	fmt.Fprintf(&b, "MPG {q%d}, %d\n", p.Qubit, p.MeasureCycles)
	fmt.Fprintf(&b, "MD {q%d}, r7\n", p.Qubit)
	fmt.Fprintf(&b, "halt\n")
	return b.String()
}

// runSweep executes a delay sweep on the parallel sweep engine — one
// pooled machine per delay point, seeded with DeriveSeed(cfg.Seed, point),
// running Rounds shots through the replay engine — and converts averaged
// integration results to populations via the MDU's two calibration
// levels. The calibration means depend only on the shared config, so they
// are computed once, outside the worker closures. Machines and assembled
// programs come from env, whose lifetime the caller controls (per call
// for the plain RunX functions, service lifetime for internal/service).
func runSweep(ctx context.Context, env *Env, cfg core.Config, p SweepParams, body func(b *strings.Builder, delayCycles int)) (*SweepResult, error) {
	if len(p.DelaysCycles) == 0 || p.Rounds <= 0 {
		return nil, fmt.Errorf("expt: empty sweep")
	}
	cfg.CollectK = 1
	if cfg.NumQubits <= p.Qubit {
		cfg.NumQubits = p.Qubit + 1
	}
	if cfg.Readout.IntegrationSamples == 0 {
		cfg.Readout = readout.DefaultParams()
	}
	// Analytic calibration (the AllXY experiment demonstrates the
	// in-experiment calibration path): per-point machines share the
	// readout config, so the two calibration levels are per-sweep
	// constants.
	w := readout.Calibrate(cfg.Readout).Weight
	s0 := real(cfg.Readout.Mean0 * w)
	s1 := real(cfg.Readout.Mean1 * w)
	if s1 == s0 {
		return nil, fmt.Errorf("expt: degenerate readout calibration (S0 = S1 = %v)", s0)
	}
	res := &SweepResult{
		Params:    p,
		DelaysSec: make([]float64, len(p.DelaysCycles)),
		Excited:   make([]float64, len(p.DelaysCycles)),
	}
	pool := env.poolFor(cfg)
	plan := ShotShardPlan(p.Rounds)
	err := runPool(ctx, len(p.DelaysCycles), p.Workers, func(i int) error {
		d := p.DelaysCycles[i]
		prog, err := env.progs.get(shotProgram(p, d, body))
		if err != nil {
			return err
		}
		// Each shard's collector is merged exactly: shard sums and
		// counts added in shard order, divided once. With one shard this
		// reproduces Averages()[0] bit for bit.
		sums := make([]float64, shardCount(plan))
		counts := make([]int, shardCount(plan))
		_, err = runShotJobSharded(ctx, pool, DeriveSeed(cfg.Seed, i), prog, p.Rounds, plan, p.ShotWorkers, p.BatchLanes, p.Replay, nil, nil,
			func(k int, m *core.Machine, _ replay.Stats) error {
				sums[k] = m.Collector.Sums()[0]
				counts[k] = m.Collector.Counts()[0]
				return nil
			})
		if err != nil {
			return err
		}
		var sum float64
		var n int
		for k := range sums {
			sum += sums[k]
			n += counts[k]
		}
		avg := 0.0
		if n > 0 {
			avg = sum / float64(n)
		}
		res.DelaysSec[i] = float64(d) * 5e-9
		res.Excited[i] = (avg - s0) / (s1 - s0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// T1Result is a fitted T1 relaxation measurement.
type T1Result struct {
	SweepResult
	Fit fit.ExpDecay
}

// RunT1 measures energy relaxation: X180, wait τ, measure; P(1) decays as
// e^{-τ/T1}.
func RunT1(cfg core.Config, p SweepParams) (*T1Result, error) {
	return NewEnv().RunT1(context.Background(), cfg, p)
}

// RunT1 runs the T1 experiment on the environment's shared pools.
func (e *Env) RunT1(ctx context.Context, cfg core.Config, p SweepParams) (*T1Result, error) {
	sr, err := runSweep(ctx, e, cfg, p, func(b *strings.Builder, d int) {
		fmt.Fprintf(b, "Pulse {q%d}, X180\nWait 4\n", p.Qubit)
		if d > 0 {
			fmt.Fprintf(b, "Wait %d\n", d)
		}
	})
	if err != nil {
		return nil, err
	}
	f, err := fit.FitExpDecay(sr.DelaysSec, sr.Excited)
	if err != nil {
		return nil, fmt.Errorf("expt: T1 fit: %w", err)
	}
	return &T1Result{SweepResult: *sr, Fit: f}, nil
}

// RamseyResult is a fitted T2* Ramsey measurement.
type RamseyResult struct {
	SweepResult
	Fit fit.DampedCosine
}

// RunRamsey measures dephasing: X90, wait τ, X90, measure. With a drive
// detuning Δ (set via cfg.Qubit[q].FreqDetuningHz) the population
// oscillates at Δ under an e^{-τ/T2*} envelope.
func RunRamsey(cfg core.Config, p SweepParams) (*RamseyResult, error) {
	return NewEnv().RunRamsey(context.Background(), cfg, p)
}

// RunRamsey runs the Ramsey experiment on the environment's shared pools.
func (e *Env) RunRamsey(ctx context.Context, cfg core.Config, p SweepParams) (*RamseyResult, error) {
	sr, err := runSweep(ctx, e, cfg, p, func(b *strings.Builder, d int) {
		fmt.Fprintf(b, "Pulse {q%d}, X90\nWait 4\n", p.Qubit)
		if d > 0 {
			fmt.Fprintf(b, "Wait %d\n", d)
		}
		fmt.Fprintf(b, "Pulse {q%d}, X90\nWait 4\n", p.Qubit)
	})
	if err != nil {
		return nil, err
	}
	f, err := fit.FitDampedCosine(sr.DelaysSec, sr.Excited)
	if err != nil {
		return nil, fmt.Errorf("expt: Ramsey fit: %w", err)
	}
	return &RamseyResult{SweepResult: *sr, Fit: f}, nil
}

// EchoResult is a fitted T2 echo measurement.
type EchoResult struct {
	SweepResult
	Fit fit.ExpDecay
}

// RunEcho measures echo coherence: X90, wait τ/2, X180, wait τ/2, X90.
// The π pulse refocuses static detuning, so the envelope decays with the
// echo time constant instead of oscillating.
func RunEcho(cfg core.Config, p SweepParams) (*EchoResult, error) {
	return NewEnv().RunEcho(context.Background(), cfg, p)
}

// RunEcho runs the echo experiment on the environment's shared pools.
func (e *Env) RunEcho(ctx context.Context, cfg core.Config, p SweepParams) (*EchoResult, error) {
	sr, err := runSweep(ctx, e, cfg, p, func(b *strings.Builder, d int) {
		half := d / 2
		half -= half % 4 // keep the π pulse SSB-phase aligned
		fmt.Fprintf(b, "Pulse {q%d}, X90\nWait 4\n", p.Qubit)
		if half > 0 {
			fmt.Fprintf(b, "Wait %d\n", half)
		}
		fmt.Fprintf(b, "Pulse {q%d}, Y180\nWait 4\n", p.Qubit)
		if half > 0 {
			fmt.Fprintf(b, "Wait %d\n", half)
		}
		fmt.Fprintf(b, "Pulse {q%d}, X90\nWait 4\n", p.Qubit)
	})
	if err != nil {
		return nil, err
	}
	f, err := fit.FitExpDecay(sr.DelaysSec, sr.Excited)
	if err != nil {
		return nil, fmt.Errorf("expt: echo fit: %w", err)
	}
	return &EchoResult{SweepResult: *sr, Fit: f}, nil
}
