package expt

// sweep.go is the shared parallel experiment sweep engine. Every
// experiment in this package decomposes into independent sweep points
// (delay values, AllXY pairs, RB (length, trial) pairs, repetition-code
// round chunks), and each point runs on its own core.Machine with a
// deterministically derived seed. The contract:
//
//   - Point i of a sweep with base seed S always runs on a machine seeded
//     with DeriveSeed(S, i) (experiments with several sub-streams derive
//     nested seeds via DeriveSeed2). Seeds depend only on (S, i), never
//     on scheduling.
//   - runPool writes each point's result into its own slot and runs every
//     job even if another fails, returning the lowest-index error — so
//     results and errors are bit-identical regardless of worker count.
//   - Config values handed to workers are deep-copied (the Qubit slice is
//     the only reference field) so concurrent machines share nothing.
//   - cfg.Backend rides through the copy: every experiment runs on either
//     state backend unchanged. The trajectory backend samples its Kraus
//     unwinding from the per-point machine PRNG, so the bit-identical
//     contract holds there too.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"quma/internal/core"
	"quma/internal/qphys"
)

// DeriveSeed deterministically derives an independent PRNG seed for sweep
// point `index` of a sweep with the given base seed, using the splitmix64
// finalizer for mixing. The result is non-negative and depends only on
// (base, index).
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}

// DeriveSeed2 derives a seed from a base and two indices (e.g. a variant
// and a chunk within it).
func DeriveSeed2(base int64, a, b int) int64 {
	return DeriveSeed(DeriveSeed(base, a), b)
}

// sweepConfig returns a copy of cfg seeded for sweep point i, with the
// Qubit slice deep-copied so concurrently built machines never append
// into shared backing storage.
func sweepConfig(cfg core.Config, seed int64) core.Config {
	c := cfg
	c.Seed = seed
	c.Qubit = append([]qphys.QubitParams(nil), cfg.Qubit...)
	return c
}

// runPool executes jobs 0..n-1 on up to `workers` goroutines (workers <= 0
// means one per available CPU). Jobs must be independent and write results
// into per-index slots. Every job runs exactly once even when others fail;
// the returned error is the lowest-index failure. Both properties make the
// sweep outcome independent of the worker count.
func runPool(n, workers int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var firstErr error
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// chunkRounds partitions `total` rounds into fixed-size chunks. The
// partition depends only on (total, size), keeping chunked sweeps
// deterministic across worker counts.
func chunkRounds(total, size int) []int {
	if size <= 0 {
		size = total
	}
	var out []int
	for total > 0 {
		c := size
		if total < size {
			c = total
		}
		out = append(out, c)
		total -= c
	}
	return out
}
