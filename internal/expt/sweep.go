package expt

// sweep.go is the shared parallel experiment sweep engine. Every
// experiment in this package decomposes into independent sweep points
// (delay values, AllXY pairs, RB (length, trial) pairs, repetition-code
// round chunks); each point runs its per-shot program through the
// shot-replay engine (internal/replay) on a pooled core.Machine with a
// deterministically derived seed. The contract:
//
//   - Point i of a sweep with base seed S always runs on a machine in
//     the ResetState(DeriveSeed(S, i)) condition (experiments with
//     several sub-streams derive nested seeds via DeriveSeed2). Seeds
//     depend only on (S, i), never on scheduling — and ResetState makes
//     a pooled machine bit-identical to a fresh one, so neither does
//     machine reuse.
//   - The shot loop lives in the engine (Shots = Rounds), not in the
//     program text: per-shot programs carry no round counters and no
//     classical result accumulation. Per-shot results arrive as the
//     engine's measurement stream, and experiments count in Go — which
//     is exactly what keeps feedback-free programs replay-safe.
//   - runPool writes each point's result into its own slot and runs every
//     job even if another fails, returning the lowest-index error — so
//     results and errors are bit-identical regardless of worker count.
//     The one early exit is cancellation: a done context skips remaining
//     points and fails the sweep with the ctx error, so a canceled
//     experiment never returns a partial result. Worker panics are
//     recovered into *PanicError (the panicking point's machine is
//     discarded, not pooled) so one bad point cannot kill the process.
//   - Config values handed to workers are deep-copied (the Qubit slice is
//     the only reference field) so concurrent machines share nothing;
//     each distinct program text assembles once per sweep (programCache).
//   - cfg.Backend and Params.Replay ride through unchanged: every
//     experiment runs on either state backend, with replay on or off,
//     with bit-identical results (replay_test.go enforces this).

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"quma/internal/asm"
	"quma/internal/core"
	"quma/internal/isa"
	"quma/internal/qphys"
	"quma/internal/replay"
)

// DeriveSeed deterministically derives an independent PRNG seed for sweep
// point `index` of a sweep with the given base seed, using the splitmix64
// finalizer for mixing. The result is non-negative and depends only on
// (base, index).
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}

// DeriveSeed2 derives a seed from a base and two indices (e.g. a variant
// and a chunk within it).
func DeriveSeed2(base int64, a, b int) int64 {
	return DeriveSeed(DeriveSeed(base, a), b)
}

// sweepConfig returns a copy of cfg seeded for sweep point i, with the
// Qubit slice deep-copied so concurrently built machines never append
// into shared backing storage.
func sweepConfig(cfg core.Config, seed int64) core.Config {
	c := cfg
	c.Seed = seed
	c.Qubit = append([]qphys.QubitParams(nil), cfg.Qubit...)
	return c
}

// PanicError wraps a panic recovered from a sweep worker: the panic
// value and the stack captured at the recovery site. Converting the
// panic into an error keeps one failing sweep point from killing the
// whole process — the sweep fails like any other erroring job, the
// machine the point was running on is discarded instead of returned to
// its pool, and callers (the batch service) map it to a structured
// `internal` failure.
type PanicError struct {
	// Value is the formatted panic value.
	Value string
	// Stack is the goroutine stack captured by the recovery handler.
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in sweep worker: %s", e.Value)
}

// recoverJob runs job(i), converting a panic into a *PanicError. A
// panicking job unwinds past runShotJob's machine-return path, so the
// machine it was driving — whose state is unknowable mid-panic — is
// discarded to the garbage collector rather than pooled.
func recoverJob(job func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return job(i)
}

// runPool executes jobs 0..n-1 on up to `workers` goroutines (workers <= 0
// means one per available CPU). Jobs must be independent and write results
// into per-index slots. Every job runs exactly once even when others fail —
// unless ctx is done, which is the one early exit: remaining jobs are
// skipped and their slots record the ctx error, so a canceled sweep always
// returns a non-nil error (and therefore no result escapes the experiment).
// The returned error is the lowest-index failure; with cancellation in
// play that is the ctx error of the first skipped job or the preemption
// error of an interrupted one — either way errors.Is-matchable against
// context.Canceled / context.DeadlineExceeded. A panicking job is
// recovered into a *PanicError instead of crossing the goroutine boundary
// and killing the process. All properties together keep the sweep outcome
// independent of the worker count.
func runPool(ctx context.Context, n, workers int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("expt: sweep point %d skipped: %w", i, err)
				}
				break
			}
			if err := recoverJob(job, i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = fmt.Errorf("expt: sweep point %d skipped: %w", i, err)
					continue
				}
				errs[i] = recoverJob(job, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// programCache assembles each distinct program text once per cache
// lifetime (per sweep for the plain RunX functions, per service for an
// Env held by internal/service). Sweep points that share a program
// (every repetition-code chunk of a variant, every Rabi amplitude point,
// every shot-hoisted program reused across worker jobs) hit the cache;
// assembled programs are immutable, so concurrent machines share them
// safely.
type programCache struct {
	mu    sync.Mutex
	progs map[string]*isa.Program
}

// maxCachedPrograms bounds the cache: a service-lifetime Env fed a
// stream of distinct program texts (e.g. asm requests with unique
// literals) must not grow without bound. On overflow the whole map is
// flushed — an epoch reset, not LRU: program pointers stay stable within
// an epoch (what the per-machine ReplayCache keying wants), and a flush
// only costs re-assembly, never correctness.
const maxCachedPrograms = 1024

func newProgramCache() *programCache {
	return &programCache{progs: make(map[string]*isa.Program)}
}

func (c *programCache) get(src string) (*isa.Program, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.progs[src]; ok {
		return p, nil
	}
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	if len(c.progs) >= maxCachedPrograms {
		c.progs = make(map[string]*isa.Program)
	}
	c.progs[src] = p
	return p, nil
}

// FaultHooks are the narrow fault-injection points of the sweep engine,
// consumed by internal/faultinject's deterministic fault plans. A nil
// *FaultHooks (the default everywhere outside chaos tests) costs one nil
// check per sweep point — the hooks never appear on the per-shot hot
// path unless installed. Install with Env.SetFaults before the first
// experiment on that Env.
type FaultHooks struct {
	// PoolGet runs before every machine-pool acquisition; a non-nil error
	// fails that sweep point exactly as a machine-construction error
	// would (exercising the error path between the pool and the runner).
	PoolGet func() error
	// Shot runs after every engine shot of every sweep point, with the
	// shot index. It has no error return on purpose: its two fault modes
	// are panicking (exercising worker panic isolation — the machine is
	// discarded, the job fails `internal`, the process survives) and
	// sleeping (forcing a deadline to expire mid-sweep).
	Shot func(shot int)
}

// machinePool reuses core.Machine instances across the points of one
// sweep via Machine.ResetState: construction (waveform synthesis, LUT
// upload, MDU calibration) is paid once per worker instead of once per
// point, while ResetState(seed) guarantees a pooled machine behaves
// bit-identically to a fresh core.New with that seed — so the sweep
// determinism contract (results independent of worker count and of which
// machine served which point) is preserved. Two caveats ride along:
// custom LUT uploads and µop definitions survive the reset, so a
// runShotJob setup that customizes the machine must do so
// unconditionally on every point (see Machine.ResetState); and a machine
// whose job panicked is never returned here — its state is unknowable,
// so it is discarded and the pool rebuilds on the next get.
type machinePool struct {
	cfg    core.Config
	faults *FaultHooks
	pool   sync.Pool
}

func newMachinePool(cfg core.Config) *machinePool {
	cfg.Qubit = append([]qphys.QubitParams(nil), cfg.Qubit...)
	return &machinePool{cfg: cfg}
}

func (mp *machinePool) get(seed int64) (*core.Machine, error) {
	if h := mp.faults; h != nil && h.PoolGet != nil {
		if err := h.PoolGet(); err != nil {
			return nil, err
		}
	}
	if v := mp.pool.Get(); v != nil {
		m := v.(*core.Machine)
		m.ResetState(seed)
		return m, nil
	}
	return core.New(sweepConfig(mp.cfg, seed))
}

func (mp *machinePool) put(m *core.Machine) { mp.pool.Put(m) }

// runShotJob executes one sweep point (or one shard of a shot-sharded
// point — see runShotJobSharded): acquire a pooled machine under the
// given seed, run optional per-point setup (e.g. a pulse upload), execute
// the per-shot program `shots` times through the replay engine, and hand
// the machine to finish for result extraction before returning it to the
// pool. base is the global index of this job's first shot (0 for an
// unsharded point): the engine reports shot indices offset by it, so
// OnShot callbacks and the fault-injection Shot hook observe global shot
// numbering whichever shard they run on.
//
// The machine return is deliberately not deferred: a panic anywhere in
// the point (engine, callbacks, injected fault) unwinds past the put, so
// a machine in an unknowable post-panic state is discarded rather than
// pooled. Every non-panic exit returns the machine — including a
// canceled run, because ResetState restores a preempted machine to a
// state bit-identical to fresh construction (the cancellation tests
// reuse a pool across a cancel and assert bit-identity).
func runShotJob(ctx context.Context, mp *machinePool, seed int64, prog *isa.Program, shots, base int, mode replay.Mode,
	setup func(*core.Machine) error,
	onShot func(int, []replay.MD),
	finish func(*core.Machine, replay.Stats) error) error {
	m, err := mp.get(seed)
	if err != nil {
		return err
	}
	if h := mp.faults; h != nil && h.Shot != nil {
		inner := onShot
		onShot = func(shot int, md []replay.MD) {
			if inner != nil {
				inner(shot, md)
			}
			h.Shot(shot)
		}
	}
	if setup != nil {
		if err := setup(m); err != nil {
			mp.put(m)
			return err
		}
	}
	stats, err := replay.Run(ctx, m, prog, replay.Options{Shots: shots, Mode: mode, OnShot: onShot, BaseShot: base})
	if err == nil && finish != nil {
		err = finish(m, stats)
	}
	mp.put(m)
	return err
}

// chunkRounds partitions `total` rounds into fixed-size chunks. The
// partition depends only on (total, size), keeping chunked sweeps
// deterministic across worker counts.
func chunkRounds(total, size int) []int {
	if size <= 0 {
		size = total
	}
	var out []int
	for total > 0 {
		c := size
		if total < size {
			c = total
		}
		out = append(out, c)
		total -= c
	}
	return out
}
