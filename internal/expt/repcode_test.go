package expt

import (
	"testing"

	"quma/internal/core"
)

func TestRepCodeSyndromeTable(t *testing.T) {
	// The textbook decoding table, end to end through the machine: each
	// injected single-qubit X error produces its syndrome and the
	// feedback restores |111⟩.
	cases := []struct {
		inject string
		s0, s1 int
	}{
		{"", 0, 0},
		{"q0", 1, 0},
		{"q1", 1, 1},
		{"q2", 0, 1},
	}
	for _, c := range cases {
		out, err := RunRepCodeInjection(c.inject)
		if err != nil {
			t.Fatalf("inject %q: %v", c.inject, err)
		}
		if out.S0 != c.s0 || out.S1 != c.s1 {
			t.Errorf("inject %q: syndrome (%d,%d), want (%d,%d)", c.inject, out.S0, out.S1, c.s0, c.s1)
		}
		for q, v := range out.Data {
			if v != 1 {
				t.Errorf("inject %q: data q%d = %d after correction, want 1", c.inject, q, v)
			}
		}
	}
}

func TestRepCodeProtectsMemory(t *testing.T) {
	cfg := core.DefaultConfig()
	p := DefaultRepCodeParams()
	p.Rounds = 200
	res, err := RunRepCode(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the bare qubit decays at roughly the analytic rate.
	if res.Unprotected < res.PhysicalP*0.5 || res.Unprotected > res.PhysicalP*1.5+0.05 {
		t.Errorf("bare error %v far from analytic %v", res.Unprotected, res.PhysicalP)
	}
	// The headline: feedback correction beats the bare qubit.
	if res.Protected >= res.Unprotected {
		t.Errorf("correction did not help: protected %v vs bare %v\n%s",
			res.Protected, res.Unprotected, res.Table())
	}
	// And beats the same code without feedback.
	if res.Protected >= res.Uncorrected {
		t.Errorf("feedback did not help: %v vs %v", res.Protected, res.Uncorrected)
	}
}

func TestRepCodeRejectsBadParams(t *testing.T) {
	if _, err := RunRepCode(core.DefaultConfig(), RepCodeParams{}); err == nil {
		t.Error("Rounds=0 must fail")
	}
}
