package expt

import (
	"context"
	"fmt"
	"strings"

	"quma/internal/core"
	"quma/internal/fit"
	"quma/internal/readout"
	"quma/internal/replay"
)

// AllXYPair is one of the 21 gate pairs of the AllXY sequence.
type AllXYPair struct {
	Label  string // Fig. 9 label: upper case = π, lower case = π/2
	First  string // Table 1 pulse name
	Second string
	Ideal  float64 // ideal |1⟩ fidelity after the pair
}

// AllXYPairs returns the 21 gate pairs in the paper's Figure 9 order:
// the first 5 return the qubit to |0⟩, the next 12 leave it on the
// equator (fidelity ½), and the final 4 drive it to |1⟩.
func AllXYPairs() []AllXYPair {
	return []AllXYPair{
		{"II", "I", "I", 0},
		{"XX", "X180", "X180", 0},
		{"YY", "Y180", "Y180", 0},
		{"XY", "X180", "Y180", 0},
		{"YX", "Y180", "X180", 0},
		{"xI", "X90", "I", 0.5},
		{"yI", "Y90", "I", 0.5},
		{"xy", "X90", "Y90", 0.5},
		{"yx", "Y90", "X90", 0.5},
		{"xY", "X90", "Y180", 0.5},
		{"yX", "Y90", "X180", 0.5},
		{"Xy", "X180", "Y90", 0.5},
		{"Yx", "Y180", "X90", 0.5},
		{"xX", "X90", "X180", 0.5},
		{"Xx", "X180", "X90", 0.5},
		{"yY", "Y90", "Y180", 0.5},
		{"Yy", "Y180", "Y90", 0.5},
		{"XI", "X180", "I", 1},
		{"YI", "Y180", "I", 1},
		{"xx", "X90", "X90", 1},
		{"yy", "Y90", "Y90", 1},
	}
}

// AllXYParams configures an AllXY run.
type AllXYParams struct {
	// Qubit is the driven qubit index (the paper uses qubit 2 of its
	// 10-qubit chip).
	Qubit int
	// Rounds is N, the number of averaging rounds (paper: 25600).
	Rounds int
	// InitCycles is the initialization wait per shot (paper: 40000 cycles
	// = 200 µs ≈ 6–7 T1).
	InitCycles int
	// Doubled repeats each combination twice back to back, as in the
	// paper's run ("each of the 21 combinations is measured twice to make
	// a direct visual distinction between systematic errors and low
	// signal-to-noise"), giving K = 42 points.
	Doubled bool
	// MeasureCycles is the MPG duration (paper: 300).
	MeasureCycles int
	// Workers bounds the sweep parallelism across the 21 pairs (0 = one
	// worker per CPU). Results are identical for any value; see sweep.go.
	Workers int
	// ShotWorkers bounds the shot-shard parallelism inside each pair when
	// Rounds exceeds ShotShardSize (0 = one worker per CPU). Results are
	// identical for any value; see shotshard.go.
	ShotWorkers int
	// BatchLanes, when > 1, runs groups of up to that many equal-size
	// shot shards in lockstep on the batched SoA executor (one lane per
	// shard — same seeds, same streams). Results are bit-identical for
	// any value; see shotshard.go.
	BatchLanes int
	// Replay selects the shot-replay engine mode: replay.ModeOff,
	// ModeInterp, or ModeCompiled (default auto = compiled). Results are
	// bit-identical for any value — see internal/replay; interp vs
	// compiled is the A/B knob for the per-schedule compiler.
	Replay replay.Mode
}

// DefaultAllXYParams returns the paper's settings with a reduced round
// count suitable for tests (the cmd tools crank Rounds back up).
func DefaultAllXYParams() AllXYParams {
	return AllXYParams{Qubit: 0, Rounds: 100, InitCycles: 40000, Doubled: true, MeasureCycles: 300}
}

// points returns the measurement-index count per round.
func (p AllXYParams) points() int {
	if p.Doubled {
		return 42
	}
	return 21
}

// emitAllXYPair writes one round's worth of a single gate pair (twice
// when Doubled): the shot body shared by the monolithic AllXYProgram and
// the per-pair sweep programs, so the two paths cannot drift apart.
func emitAllXYPair(b *strings.Builder, p AllXYParams, pair AllXYPair) {
	reps := 1
	if p.Doubled {
		reps = 2
	}
	for r := 0; r < reps; r++ {
		fmt.Fprintf(b, "# %s\n", pair.Label)
		fmt.Fprintf(b, "QNopReg r15\n")
		fmt.Fprintf(b, "Pulse {q%d}, %s\n", p.Qubit, pair.First)
		fmt.Fprintf(b, "Wait 4\n")
		fmt.Fprintf(b, "Pulse {q%d}, %s\n", p.Qubit, pair.Second)
		fmt.Fprintf(b, "Wait 4\n")
		fmt.Fprintf(b, "MPG {q%d}, %d\n", p.Qubit, p.MeasureCycles)
		fmt.Fprintf(b, "MD {q%d}, r7\n", p.Qubit)
	}
}

// allXYHeader/allXYFooter wrap pair bodies in the Algorithm 3 averaging
// loop.
func allXYHeader(b *strings.Builder, p AllXYParams) {
	fmt.Fprintf(b, "mov r15, %d  # init wait\n", p.InitCycles)
	fmt.Fprintf(b, "mov r1, 0     # loop counter\n")
	fmt.Fprintf(b, "mov r2, %d  # number of averages\n", p.Rounds)
	fmt.Fprintf(b, "\nOuter_Loop:\n")
}

func allXYFooter(b *strings.Builder) {
	fmt.Fprintf(b, "addi r1, r1, 1\n")
	fmt.Fprintf(b, "bne r1, r2, Outer_Loop\n")
	fmt.Fprintf(b, "halt\n")
}

// AllXYProgram emits the combined classical + QuMIS assembly of the
// paper's Algorithm 3: the inner 21-combination loop unrolled, the outer
// averaging loop implemented with auxiliary classical instructions.
func AllXYProgram(p AllXYParams) string {
	var b strings.Builder
	allXYHeader(&b, p)
	for _, pair := range AllXYPairs() {
		emitAllXYPair(&b, p, pair)
	}
	allXYFooter(&b)
	return b.String()
}

// allXYPairProgram emits the program for one sweep point of the parallel
// engine: Rounds averaging rounds of a single gate pair (twice per round
// when Doubled, matching AllXYProgram's point order).
func allXYPairProgram(p AllXYParams, pair AllXYPair) string {
	var b strings.Builder
	allXYHeader(&b, p)
	emitAllXYPair(&b, p, pair)
	allXYFooter(&b)
	return b.String()
}

// allXYPairShotProgram emits the per-shot program for one gate pair: one
// averaging round (the pair twice when Doubled); the round loop lives in
// the replay engine.
func allXYPairShotProgram(p AllXYParams, pair AllXYPair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mov r15, %d  # init wait\n", p.InitCycles)
	emitAllXYPair(&b, p, pair)
	fmt.Fprintf(&b, "halt\n")
	return b.String()
}

// AllXYResult holds the analyzed outcome of an AllXY run.
type AllXYResult struct {
	Params AllXYParams
	// Raw are the averaged integration results S̄_i (K points).
	Raw []float64
	// Fidelities are the readout-rescaled |1⟩ fidelities (K points).
	Fidelities []float64
	// Ideal is the staircase the fidelities are compared against.
	Ideal []float64
	// Deviation is the RMS deviation from the ideal staircase — the
	// number quoted in the paper's Figure 9 (0.012 on hardware).
	Deviation float64
	// PulsesPlayed and MemoryBytes record the scalability accounting.
	PulsesPlayed uint64
	MemoryBytes  int
}

// RunAllXY executes the AllXY experiment on the parallel sweep engine:
// each of the 21 gate pairs runs on its own pooled machine seeded with
// DeriveSeed(cfg.Seed, pair), with the Rounds averaging loop hoisted into
// the shot-replay engine. cfg.CollectK and cfg.NumQubits are set as
// needed.
func RunAllXY(cfg core.Config, p AllXYParams) (*AllXYResult, error) {
	return NewEnv().RunAllXY(context.Background(), cfg, p)
}

// RunAllXY runs the AllXY experiment on the environment's shared pools.
func (e *Env) RunAllXY(ctx context.Context, cfg core.Config, p AllXYParams) (*AllXYResult, error) {
	if p.Rounds <= 0 {
		return nil, fmt.Errorf("expt: Rounds must be positive")
	}
	pairs := AllXYPairs()
	reps := 1
	if p.Doubled {
		reps = 2
	}
	cfg.CollectK = reps
	if cfg.NumQubits <= p.Qubit {
		cfg.NumQubits = p.Qubit + 1
	}
	raw := make([]float64, len(pairs)*reps)
	pulses := make([]uint64, len(pairs))
	memBytes := make([]int, len(pairs))
	pool := e.poolFor(cfg)
	plan := ShotShardPlan(p.Rounds)
	err := runPool(ctx, len(pairs), p.Workers, func(i int) error {
		prog, err := e.progs.get(allXYPairShotProgram(p, pairs[i]))
		if err != nil {
			return err
		}
		// Per-shard collector sums and counts, merged exactly in shard
		// order after the job (one shard reproduces Averages() bit for
		// bit). Pulse counts sum across shards; the LUT footprint is a
		// per-config constant, so shard 0's value stands for the point.
		nshards := shardCount(plan)
		sums := make([][]float64, nshards)
		counts := make([][]int, nshards)
		shardPulses := make([]uint64, nshards)
		_, err = runShotJobSharded(ctx, pool, DeriveSeed(cfg.Seed, i), prog, p.Rounds, plan, p.ShotWorkers, p.BatchLanes, p.Replay, nil, nil,
			func(k int, m *core.Machine, _ replay.Stats) error {
				want := shardShots(plan, k, p.Rounds)
				if got := m.Collector.Rounds(); got != want {
					return fmt.Errorf("expt: pair %s shard %d collected %d rounds, want %d", pairs[i].Label, k, got, want)
				}
				sums[k] = m.Collector.Sums()
				counts[k] = m.Collector.Counts()
				shardPulses[k] = m.PulsesPlayed
				if k == 0 {
					memBytes[i] = m.MemoryFootprintBytes()
				}
				return nil
			})
		if err != nil {
			return err
		}
		for _, n := range shardPulses {
			pulses[i] += n
		}
		for r := 0; r < reps; r++ {
			var sum float64
			var n int
			for k := 0; k < nshards; k++ {
				sum += sums[k][r]
				n += counts[k][r]
			}
			if n > 0 {
				raw[i*reps+r] = sum / float64(n)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var totalPulses uint64
	for _, n := range pulses {
		totalPulses += n
	}
	return analyzeAllXY(p, raw, totalPulses, memBytes[0])
}

// analyzeAllXY turns the per-point averaged integration results into the
// calibrated staircase. memBytes is the LUT footprint of one machine (all
// sweep machines are identically calibrated).
func analyzeAllXY(p AllXYParams, raw []float64, totalPulses uint64, memBytes int) (*AllXYResult, error) {
	reps := 1
	if p.Doubled {
		reps = 2
	}
	// Calibration points, as in the paper's Section 8: the II
	// combination gives S̄_|0⟩; the XI and YI combinations give S̄_|1⟩.
	cal0 := 0.0
	for r := 0; r < reps; r++ {
		cal0 += raw[0*reps+r]
	}
	cal0 /= float64(reps)
	cal1 := 0.0
	for _, combo := range []int{17, 18} {
		for r := 0; r < reps; r++ {
			cal1 += raw[combo*reps+r]
		}
	}
	cal1 /= float64(2 * reps)
	if cal1 == cal0 {
		return nil, fmt.Errorf("expt: degenerate calibration points (S0 = S1 = %v)", cal0)
	}
	fid := readout.RescaleToFidelity(raw, cal0, cal1)
	ideal := make([]float64, 0, len(fid))
	for _, pair := range AllXYPairs() {
		for r := 0; r < reps; r++ {
			ideal = append(ideal, pair.Ideal)
		}
	}
	return &AllXYResult{
		Params:       p,
		Raw:          raw,
		Fidelities:   fid,
		Ideal:        ideal,
		Deviation:    fit.RMSDeviation(fid, ideal),
		PulsesPlayed: totalPulses,
		MemoryBytes:  memBytes,
	}, nil
}

// Staircase renders the result as an ASCII table: one row per point with
// label, ideal, and measured fidelity.
func (r *AllXYResult) Staircase() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %-9s %s\n", "idx", "pair", "ideal", "measured F|1>")
	reps := 1
	if r.Params.Doubled {
		reps = 2
	}
	pairs := AllXYPairs()
	for i, f := range r.Fidelities {
		pair := pairs[i/reps]
		fmt.Fprintf(&b, "%-4d %-6s %-9.2f %.4f\n", i, pair.Label, pair.Ideal, f)
	}
	fmt.Fprintf(&b, "Deviation: %.4f\n", r.Deviation)
	return b.String()
}
