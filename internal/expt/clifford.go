// Package expt implements the quantum experiments the paper runs to
// validate QuMA (Section 8): AllXY, T1, T2 Ramsey, T2 Echo, and
// randomized benchmarking — each as a program generator that emits the
// combined classical + QuMIS assembly executed by the machine, plus the
// analysis that turns averaged measurement results into the paper's
// figures.
package expt

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"quma/internal/qphys"
)

// Clifford is one element of the single-qubit Clifford group: its unitary
// and a decomposition into Table 1 primitive pulses (time order).
type Clifford struct {
	// Index is the element's position in the canonical enumeration.
	Index int
	// Pulses is the primitive-pulse decomposition in time order.
	Pulses []string
	// U is the unitary (up to global phase).
	U qphys.Matrix
}

// cliffordGroup is the lazily built group table; cliffordOnce guards the
// build so parallel sweep workers can share it.
var (
	cliffordGroup []Clifford
	cliffordOnce  sync.Once
)

// primitiveGate returns the unitary for a Table 1 pulse name.
func primitiveGate(name string) qphys.Matrix {
	switch name {
	case "I":
		return qphys.Identity(2)
	case "X180":
		return qphys.RX(math.Pi)
	case "X90":
		return qphys.RX(math.Pi / 2)
	case "Xm90":
		return qphys.RX(-math.Pi / 2)
	case "Y180":
		return qphys.RY(math.Pi)
	case "Y90":
		return qphys.RY(math.Pi / 2)
	case "Ym90":
		return qphys.RY(-math.Pi / 2)
	}
	panic(fmt.Sprintf("expt: unknown primitive %q", name))
}

// CliffordGroup returns the 24 single-qubit Cliffords, each with a
// shortest decomposition into the Table 1 pulse set. The table is built
// once by breadth-first closure over the generators.
func CliffordGroup() []Clifford {
	cliffordOnce.Do(buildCliffordGroup)
	return cliffordGroup
}

func buildCliffordGroup() {
	gens := []string{"X90", "Y90", "Xm90", "Ym90", "X180", "Y180"}
	type node struct {
		pulses []string
		u      qphys.Matrix
	}
	frontier := []node{{pulses: nil, u: qphys.Identity(2)}}
	var group []node
	seen := func(u qphys.Matrix) bool {
		for _, g := range group {
			if g.u.EqualUpToGlobalPhase(u, 1e-9) {
				return true
			}
		}
		return false
	}
	for len(group) < 24 && len(frontier) > 0 {
		var next []node
		for _, n := range frontier {
			if seen(n.u) {
				continue
			}
			group = append(group, n)
			for _, g := range gens {
				u2 := primitiveGate(g).Mul(n.u) // apply g after n
				pulses := append(append([]string{}, n.pulses...), g)
				next = append(next, node{pulses: pulses, u: u2})
			}
		}
		frontier = next
	}
	if len(group) != 24 {
		panic(fmt.Sprintf("expt: Clifford closure found %d elements, want 24", len(group)))
	}
	cliffordGroup = make([]Clifford, 24)
	for i, g := range group {
		pulses := g.pulses
		if len(pulses) == 0 {
			pulses = []string{"I"}
		}
		cliffordGroup[i] = Clifford{Index: i, Pulses: pulses, U: g.u}
	}
}

// InverseClifford returns the group element whose unitary inverts the
// product u (i.e. inv·u ∝ I).
func InverseClifford(u qphys.Matrix) Clifford {
	inv := u.Dagger()
	for _, c := range CliffordGroup() {
		if c.U.EqualUpToGlobalPhase(inv, 1e-9) {
			return c
		}
	}
	panic("expt: matrix is not a Clifford")
}

// RandomCliffordSequence draws m uniformly random Cliffords plus the
// recovery element that returns the qubit to |0⟩, and returns the full
// pulse list (time order) and the total element count including recovery.
func RandomCliffordSequence(m int, rng *rand.Rand) (pulses []string, elements []Clifford) {
	group := CliffordGroup()
	total := qphys.Identity(2)
	for i := 0; i < m; i++ {
		c := group[rng.Intn(len(group))]
		elements = append(elements, c)
		pulses = append(pulses, c.Pulses...)
		total = c.U.Mul(total)
	}
	rec := InverseClifford(total)
	elements = append(elements, rec)
	pulses = append(pulses, rec.Pulses...)
	return pulses, elements
}

// AvgPulsesPerClifford returns the mean primitive-pulse count over the
// group — a figure of merit for the decomposition (≈ 1.875 for the
// standard generator set... the exact value depends on the closure
// order; it is reported, not asserted).
func AvgPulsesPerClifford() float64 {
	total := 0
	for _, c := range CliffordGroup() {
		total += len(c.Pulses)
	}
	return float64(total) / 24
}
