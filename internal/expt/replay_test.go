package expt

import (
	"fmt"
	"testing"

	"quma/internal/core"
	"quma/internal/qphys"
	"quma/internal/replay"
)

// Property: for every experiment, on both backends and for any worker
// count, results produced with the shot-replay engine — interpreted
// (interp) or compiled (compiled/auto) — are bit-identical to full
// per-shot simulation (off). This is the engine's contract — replay may
// only change speed, never a single bit of output — and it holds whether
// the experiment replays (T1/Ramsey/AllXY/RB/uncorrected repcode) or is
// detected unsafe and falls back (corrected repcode, phase code).

// replayModes are the engine modes every experiment must agree across.
var replayModes = []replay.Mode{replay.ModeOff, replay.ModeInterp, replay.ModeCompiled}

func forBackendsAndWorkers(t *testing.T, f func(t *testing.T, backend core.Backend, workers int)) {
	for _, b := range []core.Backend{core.BackendDensity, core.BackendTrajectory} {
		for _, w := range []int{1, 3} {
			b, w := b, w
			t.Run(fmt.Sprintf("%s/workers-%d", b, w), func(t *testing.T) {
				f(t, b, w)
			})
		}
	}
}

func TestT1ReplayMatchesFullSimulation(t *testing.T) {
	forBackendsAndWorkers(t, func(t *testing.T, backend core.Backend, workers int) {
		p := DefaultSweepParams()
		p.Rounds = 60
		p.Workers = workers
		var prev []float64
		for _, mode := range replayModes {
			cfg := core.DefaultConfig()
			cfg.Backend = backend
			q := p
			q.Replay = mode
			res, err := RunT1(cfg, q)
			if err != nil {
				t.Fatal(err)
			}
			if prev == nil {
				prev = res.Excited
				continue
			}
			for i := range prev {
				if prev[i] != res.Excited[i] {
					t.Fatalf("point %d: off=%v auto=%v", i, prev[i], res.Excited[i])
				}
			}
		}
	})
}

func TestRamseyReplayMatchesFullSimulation(t *testing.T) {
	forBackendsAndWorkers(t, func(t *testing.T, backend core.Backend, workers int) {
		qp := qphys.DefaultQubitParams()
		qp.FreqDetuningHz = 100e3
		p := DefaultSweepParams()
		p.Rounds = 50
		p.Workers = workers
		p.DelaysCycles = nil
		for k := 0; k < 20; k++ {
			p.DelaysCycles = append(p.DelaysCycles, k*200)
		}
		var prev []float64
		for _, mode := range replayModes {
			cfg := core.DefaultConfig()
			cfg.Backend = backend
			cfg.Qubit = []qphys.QubitParams{qp}
			q := p
			q.Replay = mode
			res, err := RunRamsey(cfg, q)
			if err != nil {
				t.Fatal(err)
			}
			if prev == nil {
				prev = res.Excited
				continue
			}
			for i := range prev {
				if prev[i] != res.Excited[i] {
					t.Fatalf("point %d: off=%v auto=%v", i, prev[i], res.Excited[i])
				}
			}
		}
	})
}

func TestAllXYReplayMatchesFullSimulation(t *testing.T) {
	forBackendsAndWorkers(t, func(t *testing.T, backend core.Backend, workers int) {
		p := DefaultAllXYParams()
		p.Rounds = 40
		p.Workers = workers
		var prev *AllXYResult
		for _, mode := range replayModes {
			cfg := core.DefaultConfig()
			cfg.Backend = backend
			q := p
			q.Replay = mode
			res, err := RunAllXY(cfg, q)
			if err != nil {
				t.Fatal(err)
			}
			if prev == nil {
				prev = res
				continue
			}
			for i := range prev.Raw {
				if prev.Raw[i] != res.Raw[i] {
					t.Fatalf("raw %d: off=%v auto=%v", i, prev.Raw[i], res.Raw[i])
				}
			}
			if prev.PulsesPlayed != res.PulsesPlayed {
				t.Fatalf("pulses: off=%d auto=%d", prev.PulsesPlayed, res.PulsesPlayed)
			}
		}
	})
}

func TestRBReplayMatchesFullSimulation(t *testing.T) {
	forBackendsAndWorkers(t, func(t *testing.T, backend core.Backend, workers int) {
		p := DefaultRBParams()
		p.Lengths = []int{1, 4, 8, 16}
		p.Trials = 2
		p.Rounds = 40
		p.Workers = workers
		var prev *RBResult
		for _, mode := range replayModes {
			cfg := core.DefaultConfig()
			cfg.Backend = backend
			q := p
			q.Replay = mode
			res, err := RunRB(cfg, q)
			if err != nil {
				t.Fatal(err)
			}
			if prev == nil {
				prev = res
				continue
			}
			for i := range prev.Survival {
				if prev.Survival[i] != res.Survival[i] {
					t.Fatalf("length %d: off=%v auto=%v", i, prev.Survival[i], res.Survival[i])
				}
			}
		}
	})
}

func TestRepCodeReplayMatchesFullSimulation(t *testing.T) {
	forBackendsAndWorkers(t, func(t *testing.T, backend core.Backend, workers int) {
		p := DefaultRepCodeParams()
		p.Rounds = 120
		p.Workers = workers
		var prev *RepCodeResult
		for _, mode := range replayModes {
			cfg := core.DefaultConfig()
			cfg.Backend = backend
			q := p
			q.Replay = mode
			res, err := RunRepCode(cfg, q)
			if err != nil {
				t.Fatal(err)
			}
			if prev == nil {
				prev = res
				continue
			}
			if prev.Unprotected != res.Unprotected || prev.Uncorrected != res.Uncorrected || prev.Protected != res.Protected {
				t.Fatalf("rates differ: off=%+v auto=%+v", prev, res)
			}
		}
	})
}

func TestPhaseCodeReplayMatchesFullSimulation(t *testing.T) {
	// The phase code's active reset is cross-shot feedback: it must fall
	// back — and still produce bit-identical results.
	p := DefaultRepCodeParams()
	p.Rounds = 80
	p.WaitCycles = 800
	var prev *PhaseCodeResult
	for _, mode := range replayModes {
		cfg := core.DefaultConfig()
		for i := 0; i < 5; i++ {
			cfg.Qubit = append(cfg.Qubit, DephasingQubit(20e-6))
		}
		q := p
		q.Replay = mode
		res, err := RunPhaseCode(cfg, q)
		if err != nil {
			t.Fatal(err)
		}
		if prev == nil {
			prev = res
			continue
		}
		if prev.Bare != res.Bare || prev.Protected != res.Protected {
			t.Fatalf("rates differ: off=%+v auto=%+v", prev, res)
		}
	}
}

func TestRepCodeShotProgramSafety(t *testing.T) {
	// Structural check of the safety split: the syndromes-only per-shot
	// program never consumes a measurement register; the corrected one
	// branches on syndromes.
	p := DefaultRepCodeParams()
	plain := RepCodeShotProgram(p, false)
	corrected := RepCodeShotProgram(p, true)
	for _, bad := range []string{"beq", "bne", "blt", "add "} {
		if containsInstr(plain, bad) {
			t.Errorf("uncorrected shot program contains %q:\n%s", bad, plain)
		}
	}
	if !containsInstr(corrected, "beq") {
		t.Error("corrected shot program lost its feedback branches")
	}
}

func containsInstr(src, instr string) bool {
	for _, line := range splitLines(src) {
		if len(line) >= len(instr) && line[:len(instr)] == instr {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
