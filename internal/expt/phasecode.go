package expt

import (
	"context"
	"fmt"
	"math"
	"strings"

	"quma/internal/core"
	"quma/internal/qphys"
	"quma/internal/replay"
)

// Phase-flip repetition code: the dual of the bit-flip code, protecting
// against dephasing (Z errors) by conjugating the code with Hadamards.
// Data is stored in the |±⟩ basis during the memory time, where pure
// dephasing acts as a bit flip on the encoded information; rotating back
// before syndrome extraction reduces decoding to the bit-flip machinery
// already exercised by RunRepCode. Every Hadamard is the microcoded
// three-pulse emulation from the Q control store.

// phaseCodeShotProgram builds the per-shot protected phase-memory
// program. The round loop and the majority count live in the engine; the
// active-reset prologue reads the previous shot's readout registers
// (fresh machines start with all-zero registers, so shot 0 resets
// nothing, exactly like the zeroed prologue of the old in-assembly loop).
// That cross-shot feedback is the whole point of the program — and is
// also precisely what the replay-safety detector flags, so phase-code
// shots always run on the full pipeline.
func phaseCodeShotProgram(p RepCodeParams, correct bool) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("mov r15, %d", p.InitCycles)
	w("mov r6, 0")
	w("QNopReg r15")
	// Dephasing-dominated qubits do not relax back to |0⟩ by waiting
	// (T1 ≫ init time), so initialization is feedback-based active
	// reset: every qubit's post-measurement state equals its last
	// readout register, and a conditional π pulse returns it to ground —
	// the paper's future-work feedback applied as state preparation.
	for i, reg := range []string{"r9", "r10", "r11", "r7", "r8"} {
		w("beq %s, r6, Reset_Done_%d", reg, i)
		w("Pulse {q%d}, X180", i)
		w("Wait 4")
		w("Reset_Done_%d:", i)
	}
	// Encode |1⟩_L in the bit basis, then rotate into the |±⟩ basis.
	w("Pulse {q0}, X180")
	w("Wait 4")
	w("Apply2 CNOT, q1, q0")
	w("Apply2 CNOT, q2, q0")
	w("Apply H, q0")
	w("Apply H, q1")
	w("Apply H, q2")
	// Memory time: dephasing flips |+⟩ ↔ |−⟩.
	if p.WaitCycles > 0 {
		w("Wait %d", p.WaitCycles)
	}
	// Rotate back; dephasing errors now look like bit flips.
	w("Apply H, q0")
	w("Apply H, q1")
	w("Apply H, q2")
	// Standard bit-flip syndrome extraction and correction.
	w("Apply2 CNOT, q3, q0")
	w("Apply2 CNOT, q3, q1")
	w("Apply2 CNOT, q4, q1")
	w("Apply2 CNOT, q4, q2")
	w("Measure q3, r7")
	w("Measure q4, r8")
	w("Wait 340")
	if correct {
		w("beq r7, r6, S0_Zero")
		w("beq r8, r6, Flip_D0")
		w("Pulse {q1}, X180")
		w("Wait 4")
		w("jmp Readout")
		w("Flip_D0:")
		w("Pulse {q0}, X180")
		w("Wait 4")
		w("jmp Readout")
		w("S0_Zero:")
		w("beq r8, r6, Readout")
		w("Pulse {q2}, X180")
		w("Wait 4")
		w("Readout:")
	}
	w("Measure q0, r9")
	w("Measure q1, r10")
	w("Measure q2, r11")
	w("Wait 340")
	w("halt")
	return b.String()
}

// barePhaseShotProgram stores a superposition on one qubit for τ per
// shot: X90, wait, Xm90 — ideally returning to |0⟩, reading 1 with
// probability (1−e^{−τ/T2})/2 (the flip count happens in Go). Like the
// code variant it opens with an active reset off the previous shot's
// readout register, so it too always falls back to full simulation.
func barePhaseShotProgram(p RepCodeParams) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("mov r15, %d", p.InitCycles)
	w("mov r6, 0")
	w("QNopReg r15")
	// Active reset from the previous shot's readout (see
	// phaseCodeShotProgram): waiting does not reinitialize a dephasing-
	// dominated qubit.
	w("beq r9, r6, Reset_Done")
	w("Pulse {q0}, X180")
	w("Wait 4")
	w("Reset_Done:")
	w("Pulse {q0}, X90")
	w("Wait 4")
	if p.WaitCycles > 0 {
		w("Wait %d", p.WaitCycles)
	}
	w("Pulse {q0}, Xm90")
	w("Wait 4")
	w("Measure q0, r9")
	w("Wait 340")
	w("halt")
	return b.String()
}

// PhaseCodeResult summarizes the phase-memory experiment.
type PhaseCodeResult struct {
	Params RepCodeParams
	// PhysicalP is the analytic per-qubit phase-flip probability
	// (1−e^{−2τ/Tφ})/2 for pure dephasing.
	PhysicalP float64
	// Bare is the measured error of an unencoded superposition.
	Bare float64
	// Protected is the measured logical error with feedback correction.
	Protected float64
}

// DephasingQubit returns parameters for a dephasing-dominated qubit
// (T1 effectively infinite, T2 = tphi·2... the package uses total T2):
// the channel the phase code is built to fight.
func DephasingQubit(t2 float64) qphys.QubitParams {
	return qphys.QubitParams{T1: 10, T2: t2} // T1 = 10 s: negligible decay
}

// RunPhaseCode compares a bare superposition against the feedback-
// corrected phase-flip code on dephasing-dominated qubits.
func RunPhaseCode(cfg core.Config, p RepCodeParams) (*PhaseCodeResult, error) {
	return NewEnv().RunPhaseCode(context.Background(), cfg, p)
}

// RunPhaseCode runs the phase-code memory experiment on the
// environment's shared pools.
func (e *Env) RunPhaseCode(ctx context.Context, cfg core.Config, p RepCodeParams) (*PhaseCodeResult, error) {
	if p.Rounds <= 0 {
		return nil, fmt.Errorf("expt: Rounds must be positive")
	}
	if d := p.dataQubits(); d != 3 {
		return nil, fmt.Errorf("expt: the phase code is fixed at 3 data qubits, got %d", d)
	}
	cfg.NumQubits = 5
	if len(cfg.Qubit) == 0 {
		for i := 0; i < 5; i++ {
			cfg.Qubit = append(cfg.Qubit, DephasingQubit(20e-6))
		}
	}
	for len(cfg.Qubit) < 5 {
		cfg.Qubit = append(cfg.Qubit, cfg.Qubit[0])
	}
	variants := []chunkVariant{
		{src: barePhaseShotProgram(p), isError: func(md []replay.MD) bool {
			return len(md) < 1 || md[0].Result == 1 // read 1: phase flipped
		}},
		{src: phaseCodeShotProgram(p, true), isError: func(md []replay.MD) bool {
			if len(md) < 3 {
				return true
			}
			ones := 0
			for _, r := range md[len(md)-3:] {
				ones += r.Result
			}
			return ones < 2
		}},
	}
	errors, err := runChunkedVariants(ctx, e, cfg, p.Rounds, p.Workers, p.ShotWorkers, p.BatchLanes, p.Replay, variants)
	if err != nil {
		return nil, err
	}
	res := &PhaseCodeResult{Params: p}
	tau := float64(p.WaitCycles) * 5e-9
	if t2 := cfg.Qubit[0].T2; t2 > 0 {
		// Coherence decays as e^{−τ/Tφ'} with 1/Tφ' = 1/T2 − 1/(2·T1);
		// the equivalent phase-flip probability is (1 − coherence)/2.
		invTphi := 1/t2 - 1/(2*cfg.Qubit[0].T1)
		res.PhysicalP = (1 - math.Exp(-tau*invTphi)) / 2
	}
	res.Bare, res.Protected = errors[0], errors[1]
	return res, nil
}

// Table renders the comparison.
func (r *PhaseCodeResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memory time: %d cycles (%.1f µs), physical phase-flip p = %.3f\n",
		r.Params.WaitCycles, float64(r.Params.WaitCycles)*5e-3, r.PhysicalP)
	fmt.Fprintf(&b, "%-30s %.4f\n", "bare superposition", r.Bare)
	fmt.Fprintf(&b, "%-30s %.4f\n", "phase code + feedback", r.Protected)
	return b.String()
}
