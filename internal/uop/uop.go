// Package uop implements QuMA's micro-operation unit: the last decoding
// stage before the analog-digital interface, which expands each
// micro-operation into a sequence of codeword triggers with predefined
// relative timing (paper Section 5.3.2).
//
// For every micro-operation uOp_i the unit stores a sequence
//
//	Seq_i : ([0, cw0]; [Δt1, cw1]; [Δt2, cw2]; …)
//
// where Δt_j is the interval in cycles between codewords cw_{j-1} and
// cw_j. Triggering uOp_i at deterministic time T emits cw0 at T+Δ, cw1 at
// T+Δ+Δt1, and so on, where Δ is the unit's fixed processing delay. This
// lets commonly-used operations that are not primitive (the paper's
// example: Z = X·Y up to global phase, SeqZ = ([0,1];[4,4])) be emulated
// locally inside the AWG, reducing traffic between the timing control
// unit and the analog-digital interface.
package uop

import (
	"fmt"
	"sort"

	"quma/internal/awg"
	"quma/internal/clock"
)

// SeqStep is one element of a micro-operation's codeword sequence.
type SeqStep struct {
	// Delta is the interval in cycles after the previous codeword
	// (ignored for the first step, which the paper fixes at 0).
	Delta clock.Cycle
	// CW is the codeword to emit.
	CW awg.Codeword
}

// Sequence is the stored expansion of one micro-operation.
type Sequence []SeqStep

// TotalDuration returns the span in cycles from the first to the last
// codeword trigger of the sequence.
func (s Sequence) TotalDuration() clock.Cycle {
	var d clock.Cycle
	for i, st := range s {
		if i == 0 {
			continue
		}
		d += st.Delta
	}
	return d
}

// Trigger is one codeword emission scheduled at an absolute cycle time.
type Trigger struct {
	CW awg.Codeword
	At clock.Cycle
}

// Unit is a micro-operation unit for one drive channel.
type Unit struct {
	// Delay is the fixed processing latency Δ between receiving a
	// micro-operation and emitting its first codeword.
	Delay clock.Cycle

	seqs map[string]Sequence
}

// DefaultDelay is the modelled micro-operation unit latency. It is chosen
// as 4 cycles (20 ns) — one full period of the -50 MHz single-sideband
// modulation — so that, like the CTPG's 80 ns delay, it shifts every pulse
// by a whole number of carrier periods and leaves the drive frame
// unrotated. (Any *uniform* delay only rotates the global frame, which is
// unobservable in population measurements, but period alignment keeps the
// simulated unitaries exactly equal to their nominal gates, which the
// tests rely on.)
const DefaultDelay clock.Cycle = 4

// NewUnit returns an empty micro-operation unit with the default delay.
func NewUnit() *Unit {
	return &Unit{Delay: DefaultDelay, seqs: make(map[string]Sequence)}
}

// Define stores (or replaces) the codeword sequence for a micro-operation.
// The first step's Delta must be zero, matching the paper's Seq format.
func (u *Unit) Define(name string, seq Sequence) error {
	if len(seq) == 0 {
		return fmt.Errorf("uop: empty sequence for %q", name)
	}
	if seq[0].Delta != 0 {
		return fmt.Errorf("uop: first step of %q must have Δt=0, got %d", name, seq[0].Delta)
	}
	cp := make(Sequence, len(seq))
	copy(cp, seq)
	u.seqs[name] = cp
	return nil
}

// DefinePrimitive registers a micro-operation that forwards directly to a
// single codeword — the configuration used in the paper's AllXY run,
// where "the micro-operation unit simply forwards the codewords to the
// wave memory without translation".
func (u *Unit) DefinePrimitive(name string, cw awg.Codeword) {
	u.seqs[name] = Sequence{{Delta: 0, CW: cw}}
}

// DefineStandardLibrary registers pass-through entries for the whole
// Table 1 pulse library.
func (u *Unit) DefineStandardLibrary() {
	for _, p := range awg.StandardLibrary() {
		u.DefinePrimitive(p.Name, p.Codeword)
	}
}

// Lookup returns the stored sequence for a micro-operation.
func (u *Unit) Lookup(name string) (Sequence, bool) {
	s, ok := u.seqs[name]
	return s, ok
}

// Names returns the defined micro-operation names in sorted order.
func (u *Unit) Names() []string {
	out := make([]string, 0, len(u.seqs))
	for n := range u.seqs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Expand translates a micro-operation triggered at deterministic time at
// into its scheduled codeword triggers.
func (u *Unit) Expand(name string, at clock.Cycle) ([]Trigger, error) {
	seq, ok := u.seqs[name]
	if !ok {
		return nil, fmt.Errorf("uop: unknown micro-operation %q", name)
	}
	out := make([]Trigger, 0, len(seq))
	t := at + u.Delay
	for i, st := range seq {
		if i > 0 {
			t += st.Delta
		}
		out = append(out, Trigger{CW: st.CW, At: t})
	}
	return out, nil
}

// SeqZ is the paper's worked example: emulating a Z gate as a Y gate
// followed by an X gate (Z = X·Y up to global phase) with the Table 1
// lookup content, Seq_Z : ([0,1];[4,4]).
func SeqZ() Sequence {
	return Sequence{{Delta: 0, CW: 1}, {Delta: 4, CW: 4}}
}
