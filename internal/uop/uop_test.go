package uop

import (
	"math"
	"testing"

	"quma/internal/awg"
	"quma/internal/pulse"
	"quma/internal/qphys"
)

func TestDefineRejectsEmptyAndNonZeroFirstDelta(t *testing.T) {
	u := NewUnit()
	if err := u.Define("bad", nil); err == nil {
		t.Error("empty sequence must be rejected")
	}
	if err := u.Define("bad", Sequence{{Delta: 3, CW: 0}}); err == nil {
		t.Error("non-zero first Δt must be rejected")
	}
}

func TestPrimitivePassThrough(t *testing.T) {
	u := NewUnit()
	u.DefinePrimitive("X180", 1)
	trs, err := u.Expand("X180", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 1 || trs[0].CW != 1 || trs[0].At != 100+DefaultDelay {
		t.Errorf("expansion = %+v", trs)
	}
}

func TestExpandUnknown(t *testing.T) {
	u := NewUnit()
	if _, err := u.Expand("nope", 0); err == nil {
		t.Error("expected error for unknown uOp")
	}
}

func TestSeqZSchedule(t *testing.T) {
	u := NewUnit()
	if err := u.Define("Z", SeqZ()); err != nil {
		t.Fatal(err)
	}
	trs, err := u.Expand("Z", 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 {
		t.Fatalf("len = %d", len(trs))
	}
	if trs[0].CW != 1 || trs[1].CW != 4 {
		t.Errorf("codewords = %d,%d, want 1,4 (paper SeqZ)", trs[0].CW, trs[1].CW)
	}
	if trs[1].At-trs[0].At != 4 {
		t.Errorf("spacing = %d cycles, want 4", trs[1].At-trs[0].At)
	}
}

func TestSeqZPhysicallyImplementsZ(t *testing.T) {
	// End-to-end: expand SeqZ, trigger the CTPG for each codeword, apply
	// the resulting playbacks to a simulated qubit, and check the net
	// unitary equals Z up to global phase (paper Section 5.3.2, E12).
	u := NewUnit()
	if err := u.Define("Z", SeqZ()); err != nil {
		t.Fatal(err)
	}
	ctpg := awg.NewCTPG()
	if err := ctpg.UploadStandardLibrary(0); err != nil {
		t.Fatal(err)
	}
	trs, err := u.Expand("Z", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Prepare a superposition so a Z gate has an observable effect.
	d := qphys.NewDensity(1)
	d.Apply1(qphys.RY(math.Pi/2), 0)
	want := qphys.NewDensity(1)
	want.Apply1(qphys.RY(math.Pi/2), 0)
	want.Apply1(qphys.PauliZ(), 0)

	for _, tr := range trs {
		pb, err := ctpg.Trigger(tr.CW, tr.At)
		if err != nil {
			t.Fatal(err)
		}
		// Carrier-phase bookkeeping matters: the CTPG waveforms are
		// played at their absolute start times. SeqZ's 4-cycle (20 ns)
		// spacing is exactly one SSB period, so the axes are preserved.
		phi, theta := pulse.Rotation(pb.Wave, ctpg.SSBHz, pb.Start)
		d.Apply1(qphys.REquator(phi, theta), 0)
	}
	if d.Rho.MaxAbsDiff(want.Rho) > 1e-3 {
		t.Errorf("SeqZ did not implement Z:\ngot %v\nwant %v", d.Rho, want.Rho)
	}
}

func TestDefineStandardLibrary(t *testing.T) {
	u := NewUnit()
	u.DefineStandardLibrary()
	names := u.Names()
	if len(names) != 7 {
		t.Fatalf("names = %v", names)
	}
	seq, ok := u.Lookup("Ym90")
	if !ok || len(seq) != 1 || seq[0].CW != 6 {
		t.Errorf("Ym90 lookup = %+v, %v", seq, ok)
	}
}

func TestTotalDuration(t *testing.T) {
	s := Sequence{{0, 1}, {4, 2}, {6, 3}}
	if d := s.TotalDuration(); d != 10 {
		t.Errorf("duration = %d, want 10", d)
	}
	if d := (Sequence{{0, 1}}).TotalDuration(); d != 0 {
		t.Errorf("single-step duration = %d, want 0", d)
	}
}

func TestExpandDelayApplied(t *testing.T) {
	u := NewUnit()
	u.Delay = 3
	u.DefinePrimitive("I", 0)
	trs, _ := u.Expand("I", 50)
	if trs[0].At != 53 {
		t.Errorf("At = %d, want 53 (TD+Δ)", trs[0].At)
	}
}

func TestDefineCopiesSequence(t *testing.T) {
	u := NewUnit()
	seq := Sequence{{0, 1}, {4, 4}}
	if err := u.Define("Z", seq); err != nil {
		t.Fatal(err)
	}
	seq[1].CW = 99 // mutate caller's slice
	got, _ := u.Lookup("Z")
	if got[1].CW != 4 {
		t.Error("Define must copy the sequence")
	}
}

func TestRedefineReplaces(t *testing.T) {
	u := NewUnit()
	u.DefinePrimitive("g", 1)
	u.DefinePrimitive("g", 2)
	trs, _ := u.Expand("g", 0)
	if trs[0].CW != 2 {
		t.Error("redefinition must replace")
	}
	if len(u.Names()) != 1 {
		t.Error("redefinition must not duplicate")
	}
}
