package isa

import "testing"

// FuzzEncodeDecode fuzzes the 32-bit binary encoding both ways:
//
//   - word → instruction → word → instruction must round-trip: any word
//     that decodes must re-encode without error into a canonical word
//     that decodes to the same instruction (garbage in reserved bits is
//     allowed to normalize away, but never to change a decoded field).
//   - wide-mask rejection: forcing a quantum instruction's QubitMask
//     beyond the binary format's 8-bit QAddr field must fail to encode
//     exactly when the mask exceeds 0xff — the paper's field widths are
//     a hard format constraint, not a silent truncation.
func FuzzEncodeDecode(f *testing.F) {
	syms := StandardSymbols()
	seed := []Instruction{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpMov, Rd: 15, Imm: 40000},
		{Op: OpAddi, Rd: 1, Rs: 1, Imm: -1},
		{Op: OpBne, Rs: 1, Rt: 2, Imm: 3},
		{Op: OpLoad, Rd: 9, Rs: 3, Imm: 1},
		{Op: OpPulse, QAddr: MaskQ(0), UOp: "X180"},
		{Op: OpPulse, QAddr: MaskQ(0, 1, 7), UOp: "CZ"},
		{Op: OpApply2, QAddr: MaskQ(0, 1), UOp: "CNOT"},
		{Op: OpMPG, QAddr: MaskQ(2), Imm: 300},
		{Op: OpMD, QAddr: MaskQ(2), Rd: 7},
		{Op: OpQNopReg, Rs: 15},
	}
	for _, in := range seed {
		w, err := Encode(in, syms)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(w, uint16(1))
	}
	f.Add(uint32(0xffffffff), uint16(0xffff))
	f.Add(uint32(31)<<opcodeShift, uint16(0x100))

	f.Fuzz(func(t *testing.T, w uint32, wide uint16) {
		in, err := Decode(w, syms)
		if err != nil {
			return // invalid opcode / unknown operation id: rejection is fine
		}
		w2, err := Encode(in, syms)
		if err != nil {
			t.Fatalf("decoded %q (from %#x) does not re-encode: %v", in, w, err)
		}
		in2, err := Decode(w2, syms)
		if err != nil {
			t.Fatalf("canonical word %#x of %q does not decode: %v", w2, in, err)
		}
		if in2 != in {
			t.Fatalf("round trip changed the instruction: %#x -> %q -> %#x -> %q", w, in, w2, in2)
		}
		// Canonical words are a fixed point.
		w3, err := Encode(in2, syms)
		if err != nil || w3 != w2 {
			t.Fatalf("canonical word is not a fixed point: %#x -> %#x (%v)", w2, w3, err)
		}

		// Wide-mask rejection on the quantum field.
		switch in.Op {
		case OpPulse, OpApply, OpApply2, OpMPG, OpMD, OpMeasure:
			in.QAddr = QubitMask(wide)
			_, err := Encode(in, syms)
			if wide > 0xff && err == nil {
				t.Fatalf("mask %#x exceeds the 8-bit QAddr field but encoded", wide)
			}
			if wide <= 0xff && err != nil {
				t.Fatalf("mask %#x fits the QAddr field but failed to encode: %v", wide, err)
			}
		}
	})
}
