package isa

import (
	"fmt"
	"sort"
)

// Binary encoding: every instruction packs into one 32-bit word, with the
// opcode in the top 5 bits and per-opcode field layouts below:
//
//	R-type  (add …):   rd[26:23] rs[22:19] rt[18:15]
//	I-type  (mov …):   rd[26:23] rs[22:19] imm[18:0]  (signed 19-bit)
//	Branch:            rs[22:19] rt[18:15] target[14:0] (absolute index)
//	Pulse/Apply:       qaddr[26:19] uopid[18:11]
//	Apply2:            qaddr[26:19] uopid[18:11] ctrl[10:7]
//	MPG:               qaddr[26:19] dur[18:0]
//	MD/Measure:        qaddr[26:19] rd[18:15]
//	QNopReg/WaitReg:   rs[22:19]
//
// Micro-operation and gate names are carried as 8-bit indices into a
// SymbolTable that both the assembler and the control box share, mirroring
// how the real device's codeword/uOp numbering is configuration state.

const (
	opcodeShift = 27
	immBits     = 19
	immMask     = (1 << immBits) - 1
	immMax      = 1<<(immBits-1) - 1
	immMin      = -(1 << (immBits - 1))
)

// SymbolTable maps micro-operation/gate names to the 8-bit identifiers
// used in the binary encoding.
type SymbolTable struct {
	names []string
	index map[string]int
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{index: make(map[string]int)}
}

// StandardSymbols returns a table pre-populated with the Table 1 pulse
// library and the composite operations used by the microcode unit.
func StandardSymbols() *SymbolTable {
	t := NewSymbolTable()
	for _, n := range []string{
		"I", "X180", "X90", "Xm90", "Y180", "Y90", "Ym90",
		"Z", "Z90", "Zm90", "H", "CZ", "CNOT", "Meas",
	} {
		t.Intern(n)
	}
	return t
}

// Intern returns the id for name, assigning the next free id if new.
func (t *SymbolTable) Intern(name string) int {
	if id, ok := t.index[name]; ok {
		return id
	}
	id := len(t.names)
	if id > 255 {
		panic("isa: symbol table overflow (max 256 operation names)")
	}
	t.names = append(t.names, name)
	t.index[name] = id
	return id
}

// Lookup returns the id for name if present.
func (t *SymbolTable) Lookup(name string) (int, bool) {
	id, ok := t.index[name]
	return id, ok
}

// Name returns the name for id.
func (t *SymbolTable) Name(id int) (string, bool) {
	if id < 0 || id >= len(t.names) {
		return "", false
	}
	return t.names[id], true
}

// Names returns all interned names sorted by id.
func (t *SymbolTable) Names() []string {
	out := append([]string{}, t.names...)
	return out
}

// Len returns the number of interned names.
func (t *SymbolTable) Len() int { return len(t.names) }

// SortedNames returns the names alphabetically (for listings).
func (t *SymbolTable) SortedNames() []string {
	out := append([]string{}, t.names...)
	sort.Strings(out)
	return out
}

// encQAddr narrows a qubit mask into the binary format's 8-bit QAddr
// field. In-memory programs address MaxQubits qubits, but the 32-bit word
// layout keeps the paper's field widths, so wide masks are only reachable
// through the assembly path.
func encQAddr(in Instruction) (uint32, error) {
	if in.QAddr > 0xff {
		return 0, fmt.Errorf("isa: qubit mask %s exceeds the 8-qubit binary QAddr field in %q", in.QAddr, in)
	}
	return uint32(in.QAddr), nil
}

// Encode packs the instruction into a 32-bit word. Names are interned
// into the symbol table on the fly.
func Encode(in Instruction, syms *SymbolTable) (uint32, error) {
	if in.Op >= numOpcodes {
		return 0, fmt.Errorf("isa: cannot encode invalid opcode %d", in.Op)
	}
	w := uint32(in.Op) << opcodeShift
	encImm := func(v int64) (uint32, error) {
		if v < immMin || v > immMax {
			return 0, fmt.Errorf("isa: immediate %d out of 19-bit range in %q", v, in)
		}
		return uint32(v) & immMask, nil
	}
	switch in.Op {
	case OpNop, OpHalt:
		return w, nil
	case OpMovReg:
		return w | uint32(in.Rd)<<23 | uint32(in.Rs)<<19, nil
	case OpAdd, OpSub, OpAnd, OpOr, OpXor:
		return w | uint32(in.Rd)<<23 | uint32(in.Rs)<<19 | uint32(in.Rt)<<15, nil
	case OpMov, OpAddi, OpLoad, OpStore, OpWait, OpHostLoad, OpHostStore:
		imm, err := encImm(in.Imm)
		if err != nil {
			return 0, err
		}
		return w | uint32(in.Rd)<<23 | uint32(in.Rs)<<19 | imm, nil
	case OpBeq, OpBne, OpBlt, OpJmp:
		// Branch targets are absolute instruction indices in a 15-bit
		// field below the rt register.
		if in.Imm < 0 || in.Imm >= 1<<15 {
			return 0, fmt.Errorf("isa: branch target %d out of 15-bit range in %q", in.Imm, in)
		}
		return w | uint32(in.Rs)<<19 | uint32(in.Rt)<<15 | uint32(in.Imm), nil
	case OpQNopReg, OpWaitReg:
		return w | uint32(in.Rs)<<19, nil
	case OpPulse, OpApply:
		qaddr, err := encQAddr(in)
		if err != nil {
			return 0, err
		}
		id := syms.Intern(in.UOp)
		return w | qaddr<<19 | uint32(id)<<11, nil
	case OpApply2:
		qaddr, err := encQAddr(in)
		if err != nil {
			return 0, err
		}
		// Imm carries the first-listed operand (the control qubit); the
		// binary word preserves it in the 4-bit ctrl field — dropping it
		// would silently swap control and target on decode.
		if in.Imm < 0 || in.Imm > 0xf {
			return 0, fmt.Errorf("isa: Apply2 control qubit %d out of 4-bit ctrl field in %q", in.Imm, in)
		}
		id := syms.Intern(in.UOp)
		return w | qaddr<<19 | uint32(id)<<11 | uint32(in.Imm)<<7, nil
	case OpMPG:
		qaddr, err := encQAddr(in)
		if err != nil {
			return 0, err
		}
		imm, err := encImm(in.Imm)
		if err != nil {
			return 0, err
		}
		if imm&^uint32((1<<11)-1) != 0 {
			return 0, fmt.Errorf("isa: MPG duration %d exceeds 11-bit field", in.Imm)
		}
		return w | qaddr<<19 | imm, nil
	case OpMD, OpMeasure:
		qaddr, err := encQAddr(in)
		if err != nil {
			return 0, err
		}
		return w | qaddr<<19 | uint32(in.Rd)<<15, nil
	}
	return 0, fmt.Errorf("isa: no encoding for opcode %s", in.Op)
}

// Decode unpacks a 32-bit word back into an Instruction.
func Decode(w uint32, syms *SymbolTable) (Instruction, error) {
	op := Opcode(w >> opcodeShift)
	if op >= numOpcodes {
		return Instruction{}, fmt.Errorf("isa: invalid opcode %d in word %#x", op, w)
	}
	in := Instruction{Op: op}
	decImm := func() int64 {
		v := int64(w & immMask)
		if v > immMax {
			v -= 1 << immBits
		}
		return v
	}
	switch op {
	case OpNop, OpHalt:
	case OpMovReg:
		in.Rd = Reg(w >> 23 & 0xf)
		in.Rs = Reg(w >> 19 & 0xf)
	case OpAdd, OpSub, OpAnd, OpOr, OpXor:
		in.Rd = Reg(w >> 23 & 0xf)
		in.Rs = Reg(w >> 19 & 0xf)
		in.Rt = Reg(w >> 15 & 0xf)
	case OpMov, OpAddi, OpLoad, OpStore, OpWait, OpHostLoad, OpHostStore:
		in.Rd = Reg(w >> 23 & 0xf)
		in.Rs = Reg(w >> 19 & 0xf)
		in.Imm = decImm()
	case OpBeq, OpBne, OpBlt, OpJmp:
		in.Rs = Reg(w >> 19 & 0xf)
		in.Rt = Reg(w >> 15 & 0xf)
		in.Imm = int64(w & (1<<15 - 1))
	case OpQNopReg, OpWaitReg:
		in.Rs = Reg(w >> 19 & 0xf)
	case OpPulse, OpApply, OpApply2:
		in.QAddr = QubitMask(w >> 19 & 0xff)
		name, ok := syms.Name(int(w >> 11 & 0xff))
		if !ok {
			return Instruction{}, fmt.Errorf("isa: unknown operation id %d in word %#x", w>>11&0xff, w)
		}
		in.UOp = name
		if op == OpApply2 {
			in.Imm = int64(w >> 7 & 0xf)
		}
	case OpMPG:
		in.QAddr = QubitMask(w >> 19 & 0xff)
		in.Imm = int64(w & ((1 << 11) - 1))
	case OpMD, OpMeasure:
		in.QAddr = QubitMask(w >> 19 & 0xff)
		in.Rd = Reg(w >> 15 & 0xf)
	}
	return in, nil
}

// EncodeProgram encodes all instructions of a program.
func EncodeProgram(p *Program, syms *SymbolTable) ([]uint32, error) {
	out := make([]uint32, 0, len(p.Instrs))
	for i, in := range p.Instrs {
		w, err := Encode(in, syms)
		if err != nil {
			return nil, fmt.Errorf("instr %d: %w", i, err)
		}
		out = append(out, w)
	}
	return out, nil
}

// DecodeProgram decodes a word sequence into a program (labels are not
// recoverable from binary).
func DecodeProgram(words []uint32, syms *SymbolTable) (*Program, error) {
	p := &Program{Labels: map[string]int{}}
	for i, w := range words {
		in, err := Decode(w, syms)
		if err != nil {
			return nil, fmt.Errorf("word %d: %w", i, err)
		}
		p.Instrs = append(p.Instrs, in)
	}
	return p, nil
}
