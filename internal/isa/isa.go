// Package isa defines QuMA's instruction set: the auxiliary classical
// instructions used for arithmetic and program flow, the quantum
// instructions of the QIS (technology-independent gates applied to
// qubits), and the QuMIS quantum microinstruction set of Table 6 (Wait,
// Pulse, MPG, MD) plus QNopReg, the register-timed wait of Algorithm 3.
//
// The combination of auxiliary classical instructions and QuMIS
// instructions is exactly what the paper's prototype loads into the
// quantum instruction cache; the higher-level QIS gate instructions
// (Apply, Measure, CNOT, …) are expanded by the physical microcode unit
// in package microcode.
package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Reg names one of the 16 general-purpose registers r0–r15 of the
// execution controller's register file.
type Reg uint8

// NumRegs is the register-file size.
const NumRegs = 16

func (r Reg) String() string { return fmt.Sprintf("r%d", r) }

// Valid reports whether the register index is in range.
func (r Reg) Valid() bool { return r < NumRegs }

// MaxQubits is the widest qubit address the instruction set carries. The
// paper's control box has 8 digital outputs; the simulated box doubles
// the address width so trajectory-backend registers (which scale past the
// density-matrix wall) stay addressable.
const MaxQubits = 16

// QubitMask selects the qubits addressed by a horizontal quantum
// instruction — the paper's QAddr field. Bit q set means qubit q is
// targeted. Up to MaxQubits qubits; the 32-bit binary encoding keeps the
// paper's 8-bit QAddr field and rejects wider masks (see encode.go).
type QubitMask uint16

// MaskQ returns a mask selecting the given qubits.
func MaskQ(qubits ...int) QubitMask {
	var m QubitMask
	for _, q := range qubits {
		if q < 0 || q >= MaxQubits {
			panic(fmt.Sprintf("isa: qubit index %d out of range", q))
		}
		m |= 1 << q
	}
	return m
}

// Qubits returns the selected qubit indices in ascending order.
func (m QubitMask) Qubits() []int {
	var out []int
	for q := 0; q < MaxQubits; q++ {
		if m&(1<<q) != 0 {
			out = append(out, q)
		}
	}
	return out
}

// Contains reports whether qubit q is selected.
func (m QubitMask) Contains(q int) bool { return q >= 0 && q < MaxQubits && m&(1<<q) != 0 }

func (m QubitMask) String() string {
	qs := m.Qubits()
	parts := make([]string, len(qs))
	for i, q := range qs {
		parts[i] = fmt.Sprintf("q%d", q)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Opcode enumerates every instruction of the combined set.
type Opcode uint8

const (
	// OpNop does nothing for one issue slot.
	OpNop Opcode = iota
	// OpMov writes an immediate into Rd: mov rd, imm.
	OpMov
	// OpMovReg copies Rs into Rd: movr rd, rs.
	OpMovReg
	// OpAdd is rd ← rs + rt.
	OpAdd
	// OpAddi is rd ← rs + imm.
	OpAddi
	// OpSub is rd ← rs − rt.
	OpSub
	// OpAnd is rd ← rs & rt.
	OpAnd
	// OpOr is rd ← rs | rt.
	OpOr
	// OpXor is rd ← rs ^ rt.
	OpXor
	// OpLoad reads data memory: load rd, rs[imm].
	OpLoad
	// OpStore writes data memory: store rs, rd[imm] (rd holds the base).
	OpStore
	// OpBeq branches to Imm (absolute instruction index after assembly)
	// when rs == rt.
	OpBeq
	// OpBne branches when rs != rt.
	OpBne
	// OpBlt branches when rs < rt (signed).
	OpBlt
	// OpJmp branches unconditionally.
	OpJmp
	// OpHalt stops the execution controller.
	OpHalt
	// OpHostLoad reads host shared memory: hld rd, imm. It is the data
	// exchange instruction the paper's Section 6 proposes for extending
	// QuMA into a heterogeneous platform ("adding extra data exchange
	// instructions to interact with the host CPU and the main memory").
	OpHostLoad
	// OpHostStore writes host shared memory: hst rs, imm.
	OpHostStore

	// OpApply is the QIS gate instruction: Apply gate, q. The physical
	// microcode unit expands it via the Q control store.
	OpApply
	// OpApply2 is the two-qubit QIS gate instruction: Apply2 gate, qa, qb
	// (e.g. CNOT qt, qc in the paper's Algorithm 2 discussion).
	OpApply2
	// OpMeasure is the QIS measurement: Measure q, rd. It expands into
	// MPG + MD microinstructions.
	OpMeasure

	// OpQNopReg stalls the quantum timeline by the number of cycles held
	// in Rs, read at issue time: QNopReg rs (Algorithm 3). It decodes
	// into a Wait with a runtime-computed interval.
	OpQNopReg
	// OpWait is the QuMIS Wait Interval instruction (Table 6).
	OpWait
	// OpWaitReg is Wait with a register interval (the decoded form of
	// QNopReg; also directly usable).
	OpWaitReg
	// OpPulse is the QuMIS Pulse (QAddr, uOp) instruction (Table 6). The
	// micro-operation name is carried in UOp.
	OpPulse
	// OpMPG is the QuMIS measurement-pulse-generation instruction:
	// MPG QAddr, D with D the pulse duration in cycles (Table 6).
	OpMPG
	// OpMD is the QuMIS measurement-discrimination instruction:
	// MD QAddr, $rd (Table 6). The binary result lands in Rd.
	OpMD

	numOpcodes
)

var opNames = map[Opcode]string{
	OpNop: "nop", OpMov: "mov", OpMovReg: "movr", OpAdd: "add",
	OpAddi: "addi", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpLoad: "load", OpStore: "store", OpBeq: "beq", OpBne: "bne",
	OpBlt: "blt", OpJmp: "jmp", OpHalt: "halt",
	OpHostLoad: "hld", OpHostStore: "hst",
	OpApply: "Apply", OpApply2: "Apply2", OpMeasure: "Measure",
	OpQNopReg: "QNopReg", OpWait: "Wait", OpWaitReg: "WaitReg",
	OpPulse: "Pulse", OpMPG: "MPG", OpMD: "MD",
}

func (o Opcode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsQuantum reports whether the instruction is handled by the physical
// execution layer rather than the classical pipeline.
func (o Opcode) IsQuantum() bool {
	switch o {
	case OpApply, OpApply2, OpMeasure, OpQNopReg, OpWait, OpWaitReg, OpPulse, OpMPG, OpMD:
		return true
	}
	return false
}

// IsBranch reports whether the instruction may redirect control flow.
func (o Opcode) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpJmp:
		return true
	}
	return false
}

// Instruction is one decoded instruction. Unused fields are zero.
type Instruction struct {
	Op         Opcode
	Rd, Rs, Rt Reg
	Imm        int64     // immediate / branch target / duration
	QAddr      QubitMask // qubit address of quantum instructions
	UOp        string    // micro-operation or gate name
	Label      string    // unresolved branch target (assembly only)
}

// String renders the instruction in the paper's assembly syntax.
func (in Instruction) String() string {
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpMov:
		return fmt.Sprintf("mov %s, %d", in.Rd, in.Imm)
	case OpMovReg:
		return fmt.Sprintf("movr %s, %s", in.Rd, in.Rs)
	case OpAdd, OpSub, OpAnd, OpOr, OpXor:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs, in.Rt)
	case OpAddi:
		return fmt.Sprintf("addi %s, %s, %d", in.Rd, in.Rs, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load %s, %s[%d]", in.Rd, in.Rs, in.Imm)
	case OpHostLoad:
		return fmt.Sprintf("hld %s, %d", in.Rd, in.Imm)
	case OpHostStore:
		return fmt.Sprintf("hst %s, %d", in.Rs, in.Imm)
	case OpStore:
		return fmt.Sprintf("store %s, %s[%d]", in.Rs, in.Rd, in.Imm)
	case OpBeq, OpBne, OpBlt:
		tgt := in.Label
		if tgt == "" {
			tgt = fmt.Sprintf("%d", in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rs, in.Rt, tgt)
	case OpJmp:
		tgt := in.Label
		if tgt == "" {
			tgt = fmt.Sprintf("%d", in.Imm)
		}
		return fmt.Sprintf("jmp %s", tgt)
	case OpApply:
		return fmt.Sprintf("Apply %s, q%d", in.UOp, firstQubit(in.QAddr))
	case OpApply2:
		qs := in.QAddr.Qubits()
		if len(qs) == 2 {
			// Imm names the first-listed operand (the control), so the
			// rendering preserves operand order instead of mask order.
			a, b := qs[0], qs[1]
			if int64(b) == in.Imm {
				a, b = b, a
			}
			return fmt.Sprintf("Apply2 %s, q%d, q%d", in.UOp, a, b)
		}
		return fmt.Sprintf("Apply2 %s, %s", in.UOp, in.QAddr)
	case OpMeasure:
		return fmt.Sprintf("Measure q%d, %s", firstQubit(in.QAddr), in.Rd)
	case OpQNopReg:
		return fmt.Sprintf("QNopReg %s", in.Rs)
	case OpWait:
		return fmt.Sprintf("Wait %d", in.Imm)
	case OpWaitReg:
		return fmt.Sprintf("WaitReg %s", in.Rs)
	case OpPulse:
		return fmt.Sprintf("Pulse %s, %s", in.QAddr, in.UOp)
	case OpMPG:
		return fmt.Sprintf("MPG %s, %d", in.QAddr, in.Imm)
	case OpMD:
		return fmt.Sprintf("MD %s, %s", in.QAddr, in.Rd)
	}
	return in.Op.String()
}

func firstQubit(m QubitMask) int {
	qs := m.Qubits()
	if len(qs) == 0 {
		return 0
	}
	return qs[0]
}

// Program is an instruction sequence with optional label metadata.
type Program struct {
	Instrs []Instruction
	// Labels maps label name → instruction index.
	Labels map[string]int
}

// Validate checks structural well-formedness: register indices in range,
// branch targets within the program, and quantum fields only on quantum
// opcodes.
func (p *Program) Validate() error {
	n := int64(len(p.Instrs))
	for i, in := range p.Instrs {
		if in.Op >= numOpcodes {
			return fmt.Errorf("isa: instr %d: invalid opcode %d", i, in.Op)
		}
		if !in.Rd.Valid() || !in.Rs.Valid() || !in.Rt.Valid() {
			return fmt.Errorf("isa: instr %d (%s): register out of range", i, in)
		}
		if in.Op.IsBranch() {
			if in.Imm < 0 || in.Imm >= n {
				return fmt.Errorf("isa: instr %d (%s): branch target %d outside program [0,%d)", i, in, in.Imm, n)
			}
		}
		switch in.Op {
		case OpPulse, OpApply, OpApply2:
			if in.UOp == "" {
				return fmt.Errorf("isa: instr %d (%s): missing operation name", i, in)
			}
			if in.QAddr == 0 {
				return fmt.Errorf("isa: instr %d (%s): empty qubit address", i, in)
			}
		case OpMPG, OpMD, OpMeasure:
			if in.QAddr == 0 {
				return fmt.Errorf("isa: instr %d (%s): empty qubit address", i, in)
			}
		}
	}
	return nil
}

// LabelsSorted returns label names sorted by target index (for listings).
func (p *Program) LabelsSorted() []string {
	out := make([]string, 0, len(p.Labels))
	for l := range p.Labels {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return p.Labels[out[i]] < p.Labels[out[j]] })
	return out
}

// String renders the whole program with labels interleaved.
func (p *Program) String() string {
	byIndex := map[int][]string{}
	for l, i := range p.Labels {
		byIndex[i] = append(byIndex[i], l)
	}
	var b strings.Builder
	for i, in := range p.Instrs {
		for _, l := range byIndex[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "    %s\n", in)
	}
	return b.String()
}
