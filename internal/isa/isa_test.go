package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMaskQ(t *testing.T) {
	m := MaskQ(0, 2, 7)
	if !m.Contains(0) || !m.Contains(2) || !m.Contains(7) || m.Contains(1) {
		t.Errorf("mask = %08b", m)
	}
	qs := m.Qubits()
	if len(qs) != 3 || qs[0] != 0 || qs[1] != 2 || qs[2] != 7 {
		t.Errorf("qubits = %v", qs)
	}
	if m.String() != "{q0, q2, q7}" {
		t.Errorf("string = %s", m)
	}
}

func TestMaskQPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for qubit 16")
		}
	}()
	MaskQ(MaxQubits)
}

func TestMaskQAddressesSixteenQubits(t *testing.T) {
	m := MaskQ(8, 15)
	if !m.Contains(8) || !m.Contains(15) || m.Contains(7) {
		t.Errorf("mask = %016b", m)
	}
	if qs := m.Qubits(); len(qs) != 2 || qs[0] != 8 || qs[1] != 15 {
		t.Errorf("qubits = %v", m.Qubits())
	}
}

func TestEncodeRejectsWideMask(t *testing.T) {
	syms := StandardSymbols()
	in := Instruction{Op: OpPulse, QAddr: MaskQ(9), UOp: "X180"}
	if _, err := Encode(in, syms); err == nil {
		t.Error("binary encoding must reject masks beyond the 8-bit QAddr field")
	}
}

func TestInstructionStringsMatchPaperSyntax(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpMov, Rd: 15, Imm: 40000}, "mov r15, 40000"},
		{Instruction{Op: OpQNopReg, Rs: 15}, "QNopReg r15"},
		{Instruction{Op: OpPulse, QAddr: MaskQ(2), UOp: "X180"}, "Pulse {q2}, X180"},
		{Instruction{Op: OpWait, Imm: 4}, "Wait 4"},
		{Instruction{Op: OpMPG, QAddr: MaskQ(2), Imm: 300}, "MPG {q2}, 300"},
		{Instruction{Op: OpMD, QAddr: MaskQ(2), Rd: 7}, "MD {q2}, r7"},
		{Instruction{Op: OpAdd, Rd: 9, Rs: 9, Rt: 7}, "add r9, r9, r7"},
		{Instruction{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1}, "addi r1, r1, 1"},
		{Instruction{Op: OpBne, Rs: 1, Rt: 2, Label: "Outer_Loop"}, "bne r1, r2, Outer_Loop"},
		{Instruction{Op: OpLoad, Rd: 9, Rs: 3, Imm: 0}, "load r9, r3[0]"},
		{Instruction{Op: OpStore, Rs: 9, Rd: 3, Imm: 1}, "store r9, r3[1]"},
		{Instruction{Op: OpApply, QAddr: MaskQ(0), UOp: "X180"}, "Apply X180, q0"},
		{Instruction{Op: OpMeasure, QAddr: MaskQ(0), Rd: 7}, "Measure q0, r7"},
		{Instruction{Op: OpApply2, QAddr: MaskQ(0, 1), UOp: "CNOT"}, "Apply2 CNOT, q0, q1"},
		{Instruction{Op: OpPulse, QAddr: MaskQ(0, 1), UOp: "CZ"}, "Pulse {q0, q1}, CZ"},
		{Instruction{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	p := &Program{Instrs: []Instruction{
		{Op: OpBne, Rs: 1, Rt: 2, Imm: 5},
		{Op: OpHalt},
	}}
	if err := p.Validate(); err == nil {
		t.Error("branch target outside program must fail validation")
	}
}

func TestValidateCatchesEmptyPulse(t *testing.T) {
	p := &Program{Instrs: []Instruction{{Op: OpPulse, UOp: "X180"}}}
	if err := p.Validate(); err == nil {
		t.Error("Pulse with empty QAddr must fail")
	}
	p = &Program{Instrs: []Instruction{{Op: OpPulse, QAddr: MaskQ(0)}}}
	if err := p.Validate(); err == nil {
		t.Error("Pulse with empty name must fail")
	}
}

func TestValidateAcceptsAlgorithm3Fragment(t *testing.T) {
	p := &Program{
		Instrs: []Instruction{
			{Op: OpMov, Rd: 15, Imm: 40000},
			{Op: OpMov, Rd: 1, Imm: 0},
			{Op: OpMov, Rd: 2, Imm: 25600},
			{Op: OpQNopReg, Rs: 15},
			{Op: OpPulse, QAddr: MaskQ(2), UOp: "I"},
			{Op: OpWait, Imm: 4},
			{Op: OpPulse, QAddr: MaskQ(2), UOp: "I"},
			{Op: OpWait, Imm: 4},
			{Op: OpMPG, QAddr: MaskQ(2), Imm: 300},
			{Op: OpMD, QAddr: MaskQ(2), Rd: 7},
			{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1},
			{Op: OpBne, Rs: 1, Rt: 2, Imm: 3},
			{Op: OpHalt},
		},
		Labels: map[string]int{"Outer_Loop": 3},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "Outer_Loop:") {
		t.Error("program listing must include label")
	}
}

func TestEncodeDecodeRoundTripExamples(t *testing.T) {
	syms := StandardSymbols()
	cases := []Instruction{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpMov, Rd: 15, Imm: 40000},
		{Op: OpMov, Rd: 1, Imm: -17},
		{Op: OpMovReg, Rd: 3, Rs: 14},
		{Op: OpAdd, Rd: 9, Rs: 9, Rt: 7},
		{Op: OpSub, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpAnd, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpOr, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpXor, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1},
		{Op: OpLoad, Rd: 9, Rs: 3, Imm: 20},
		{Op: OpStore, Rs: 9, Rd: 3, Imm: 21},
		{Op: OpBeq, Rs: 1, Rt: 2, Imm: 77},
		{Op: OpBne, Rs: 1, Rt: 2, Imm: 3},
		{Op: OpBlt, Rs: 4, Rt: 5, Imm: 0},
		{Op: OpJmp, Imm: 12},
		{Op: OpQNopReg, Rs: 15},
		{Op: OpWait, Imm: 40000},
		{Op: OpWaitReg, Rs: 15},
		{Op: OpPulse, QAddr: MaskQ(2), UOp: "X180"},
		{Op: OpPulse, QAddr: MaskQ(0, 1), UOp: "CZ"},
		{Op: OpMPG, QAddr: MaskQ(2), Imm: 300},
		{Op: OpMD, QAddr: MaskQ(2), Rd: 7},
		{Op: OpApply, QAddr: MaskQ(0), UOp: "H"},
		{Op: OpApply2, QAddr: MaskQ(0, 1), UOp: "CNOT"},
		{Op: OpMeasure, QAddr: MaskQ(0), Rd: 7},
		{Op: OpHostLoad, Rd: 3, Imm: 17},
		{Op: OpHostStore, Rs: 4, Imm: 18},
	}
	for _, in := range cases {
		w, err := Encode(in, syms)
		if err != nil {
			t.Fatalf("encode %q: %v", in, err)
		}
		out, err := Decode(w, syms)
		if err != nil {
			t.Fatalf("decode %q: %v", in, err)
		}
		if out.String() != in.String() {
			t.Errorf("round trip %q -> %q", in, out)
		}
	}
}

func TestEncodeRejectsHugeImmediate(t *testing.T) {
	syms := NewSymbolTable()
	if _, err := Encode(Instruction{Op: OpMov, Rd: 1, Imm: 1 << 20}, syms); err == nil {
		t.Error("expected range error")
	}
	if _, err := Encode(Instruction{Op: OpMPG, QAddr: MaskQ(0), Imm: 5000}, syms); err == nil {
		t.Error("expected MPG duration range error")
	}
	if _, err := Encode(Instruction{Op: OpJmp, Imm: 1 << 16}, syms); err == nil {
		t.Error("expected branch range error")
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode(0xffffffff, NewSymbolTable()); err == nil {
		t.Error("expected invalid opcode error")
	}
}

func TestDecodeUnknownSymbol(t *testing.T) {
	syms := NewSymbolTable()
	w, err := Encode(Instruction{Op: OpPulse, QAddr: MaskQ(0), UOp: "X180"}, syms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(w, NewSymbolTable()); err == nil {
		t.Error("decoding with a mismatched symbol table must fail")
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	syms := StandardSymbols()
	p := &Program{Instrs: []Instruction{
		{Op: OpMov, Rd: 15, Imm: 40000},
		{Op: OpQNopReg, Rs: 15},
		{Op: OpPulse, QAddr: MaskQ(2), UOp: "X180"},
		{Op: OpWait, Imm: 4},
		{Op: OpMPG, QAddr: MaskQ(2), Imm: 300},
		{Op: OpMD, QAddr: MaskQ(2), Rd: 7},
		{Op: OpHalt},
	}}
	words, err := EncodeProgram(p, syms)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(words, syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Instrs) != len(p.Instrs) {
		t.Fatal("length mismatch")
	}
	for i := range p.Instrs {
		if back.Instrs[i].String() != p.Instrs[i].String() {
			t.Errorf("instr %d: %q != %q", i, back.Instrs[i], p.Instrs[i])
		}
	}
}

func TestSymbolTable(t *testing.T) {
	s := NewSymbolTable()
	a := s.Intern("X180")
	b := s.Intern("Y180")
	if a2 := s.Intern("X180"); a2 != a {
		t.Error("re-intern must return same id")
	}
	if a == b {
		t.Error("distinct names must get distinct ids")
	}
	if n, ok := s.Name(b); !ok || n != "Y180" {
		t.Errorf("Name(%d) = %q, %v", b, n, ok)
	}
	if _, ok := s.Name(99); ok {
		t.Error("out-of-range id must miss")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("unknown name must miss")
	}
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
}

// Property: encode/decode round-trips for randomly generated valid
// instructions.
func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	syms := StandardSymbols()
	uops := []string{"I", "X180", "X90", "Y90", "CZ", "H"}
	f := func(opRaw uint8, rd, rs, rt uint8, immRaw int32, maskRaw uint8, uopIdx uint8) bool {
		ops := []Opcode{
			OpNop, OpMov, OpMovReg, OpAdd, OpAddi, OpSub, OpAnd, OpOr,
			OpXor, OpLoad, OpStore, OpBeq, OpBne, OpBlt, OpJmp, OpHalt,
			OpApply, OpApply2, OpMeasure, OpQNopReg, OpWait, OpWaitReg,
			OpPulse, OpMPG, OpMD,
		}
		in := Instruction{
			Op: ops[int(opRaw)%len(ops)],
			Rd: Reg(rd % 16), Rs: Reg(rs % 16), Rt: Reg(rt % 16),
		}
		switch in.Op {
		case OpMov, OpAddi, OpLoad, OpStore, OpWait:
			in.Imm = int64(immRaw % 200000)
		case OpBeq, OpBne, OpBlt, OpJmp:
			v := int64(immRaw) % (1 << 15)
			if v < 0 {
				v = -v
			}
			in.Imm = v
		case OpMPG:
			v := int64(immRaw) % 2000
			if v < 0 {
				v = -v
			}
			in.Imm = v
			in.QAddr = QubitMask(maskRaw | 1)
		case OpPulse, OpApply, OpApply2:
			in.QAddr = QubitMask(maskRaw | 1)
			in.UOp = uops[int(uopIdx)%len(uops)]
		case OpMD, OpMeasure:
			in.QAddr = QubitMask(maskRaw | 1)
		}
		w, err := Encode(in, syms)
		if err != nil {
			return false
		}
		out, err := Decode(w, syms)
		if err != nil {
			return false
		}
		return out.String() == in.String()
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
