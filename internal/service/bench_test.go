package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServeBatch measures end-to-end service throughput: submit a
// mixed batch over HTTP, poll to completion, fetch the result. Because
// the Env lives across iterations, later iterations run entirely from
// warmed caches — pooled machines and memoized compiled schedules — so
// the steady-state number is what a long-lived deployment sees. Wired
// into the CI bench smoke (BENCH_smoke.json).
func BenchmarkServeBatch(b *testing.B) {
	s := New(Config{Workers: 2, QueueSize: 64}).Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Drain()

	// The t1/asm seeds vary per iteration so every batch is a distinct
	// canonical form — each misses the result cache and executes cold;
	// the warmed-repeat path is BenchmarkServeBatchCached. The rb
	// experiment keeps its known-good seed (its decay fit is only
	// guaranteed to converge for sane sequences, not every PRNG stream).
	batch := func(seed int64) SubmitRequest {
		return SubmitRequest{Experiments: []ExperimentRequest{
			{Type: "t1", Seed: seed, Backend: "trajectory", Rounds: 60},
			{Type: "asm", Seed: seed + 4, Backend: "trajectory", Rounds: 200,
				Program: "mov r15, 40000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
			{Type: "rb", Seed: 2, Backend: "trajectory", SeqSeed: 7, Lengths: []int{1, 4, 8}, Trials: 2, Rounds: 60},
		}}
	}
	experimentsPerBatch := len(batch(0).Experiments)

	runOne := func(seed int64) {
		body, err := json.Marshal(batch(seed))
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit status %d", resp.StatusCode)
		}
		for {
			sr, err := http.Get(hs.URL + "/v1/jobs/" + acc.ID)
			if err != nil {
				b.Fatal(err)
			}
			var st struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			sr.Body.Close()
			if st.Status == StatusDone {
				break
			}
			if st.Status == StatusFailed {
				b.Fatalf("job failed: %s", st.Error)
			}
			time.Sleep(time.Millisecond)
		}
	}

	runOne(5) // warm the shared caches outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(int64(1000 + i*16))
	}
	b.StopTimer()
	b.ReportMetric(float64(experimentsPerBatch)*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
}

// BenchmarkServeBatchCached measures the warmed repeat-submission path:
// the same batch as BenchmarkServeBatch, submitted once cold and then
// resubmitted — every timed iteration is a content-addressed cache hit
// answered terminal-immediately, including the result fetch. The gap to
// BenchmarkServeBatch is what the cache saves a repeat caller (the
// acceptance floor is 5x; in practice it is orders of magnitude).
func BenchmarkServeBatchCached(b *testing.B) {
	s := New(Config{Workers: 2, QueueSize: 64}).Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Drain()

	req := SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "t1", Seed: 5, Backend: "trajectory", Rounds: 60},
		{Type: "asm", Seed: 9, Backend: "trajectory", Rounds: 200,
			Program: "mov r15, 40000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
		{Type: "rb", Seed: 2, Backend: "trajectory", SeqSeed: 7, Lengths: []int{1, 4, 8}, Trials: 2, Rounds: 60},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}

	// Cold submission populates the cache.
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("cold submit status %d", resp.StatusCode)
	}
	for {
		sr, err := http.Get(hs.URL + "/v1/jobs/" + acc.ID)
		if err != nil {
			b.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		sr.Body.Close()
		if st.Status == StatusDone {
			break
		}
		if st.Status == StatusFailed {
			b.Fatalf("cold job failed: %s", st.Error)
		}
		time.Sleep(time.Millisecond)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var env struct {
			ID     string `json:"id"`
			Cache  string `json:"cache"`
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || env.Cache != "hit" || env.Status != StatusDone {
			b.Fatalf("iteration %d: status %d cache %q job status %q, want a terminal-immediate hit", i, resp.StatusCode, env.Cache, env.Status)
		}
		rr, err := http.Get(hs.URL + "/v1/jobs/" + env.ID + "/result")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, rr.Body); err != nil {
			b.Fatal(err)
		}
		rr.Body.Close()
		if rr.StatusCode != http.StatusOK {
			b.Fatalf("iteration %d: result status %d", i, rr.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(req.Experiments))*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
}
