package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServeBatch measures end-to-end service throughput: submit a
// mixed batch over HTTP, poll to completion, fetch the result. Because
// the Env lives across iterations, later iterations run entirely from
// warmed caches — pooled machines and memoized compiled schedules — so
// the steady-state number is what a long-lived deployment sees. Wired
// into the CI bench smoke (BENCH_smoke.json).
func BenchmarkServeBatch(b *testing.B) {
	s := New(Config{Workers: 2, QueueSize: 64}).Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Drain()

	req := SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "t1", Seed: 5, Backend: "trajectory", Rounds: 60},
		{Type: "asm", Seed: 9, Backend: "trajectory", Rounds: 200,
			Program: "mov r15, 40000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
		{Type: "rb", Seed: 2, Backend: "trajectory", SeqSeed: 7, Lengths: []int{1, 4, 8}, Trials: 2, Rounds: 60},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}

	runOne := func() {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit status %d", resp.StatusCode)
		}
		for {
			sr, err := http.Get(hs.URL + "/v1/jobs/" + acc.ID)
			if err != nil {
				b.Fatal(err)
			}
			var st struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			sr.Body.Close()
			if st.Status == StatusDone {
				break
			}
			if st.Status == StatusFailed {
				b.Fatalf("job failed: %s", st.Error)
			}
			time.Sleep(time.Millisecond)
		}
	}

	runOne() // warm the shared caches outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(req.Experiments))*float64(b.N)/b.Elapsed().Seconds(), "experiments/s")
}
